/**
 * @file
 * Determinism tests for the parallel simulation core: sharding the SMs
 * across a worker pool (SimOptions::sim_threads > 1) must produce
 * results bit-identical to a serial run — every cycle stamp, memory
 * counter, stall counter and macro-latency sample — across
 * memory-pressure configs, multi-stream event DAGs, functional
 * (data-carrying) kernels, resumable runs, and both the idle-skip and
 * lockstep main loops.
 */

#include <gtest/gtest.h>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

/** The memory-bound config the mem_pressure scenarios use: a tiny L1
 *  keeps transactions (and MIO-head refusals) in flight for most of
 *  the run, which is exactly where cross-SM ordering could leak. */
GpuConfig
mem_bound_config(int sms)
{
    GpuConfig cfg = small_titan_v(sms);
    cfg.l1_size = 16 * 1024;
    cfg.dram_latency = 400;
    return cfg;
}

void
expect_identical_kernel(const LaunchStats& a, const LaunchStats& b)
{
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.start_cycle, b.start_cycle);
    EXPECT_EQ(a.finish_cycle, b.finish_cycle);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        EXPECT_EQ(a.stalls[r], b.stalls[r])
            << a.kernel << ": " << stall_reason_name(r);
    }
    // Macro-latency histograms must hold the same samples in the same
    // order (the aggregation order across SM shards is canonical).
    ASSERT_EQ(a.macro_latency.size(), b.macro_latency.size());
    for (const auto& [mc, ha] : a.macro_latency) {
        auto it = b.macro_latency.find(mc);
        ASSERT_NE(it, b.macro_latency.end());
        EXPECT_EQ(ha.samples(), it->second.samples());
    }
}

void
expect_identical(const EngineStats& a, const EngineStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    // A bounded advance (run_until) ticks at each chunk boundary where
    // an unbounded run idle-skips straight past it, so the tick/skip
    // split is chunking-dependent; the covered-cycle sum is the
    // invariant.
    EXPECT_EQ(a.ticks + a.skipped_cycles, b.ticks + b.skipped_cycles);
    EXPECT_EQ(a.current_cycle, b.current_cycle);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    EXPECT_EQ(a.mem.l2_hits, b.mem.l2_hits);
    EXPECT_EQ(a.mem.l2_misses, b.mem.l2_misses);
    EXPECT_EQ(a.mem.dram_bytes, b.mem.dram_bytes);
    EXPECT_EQ(a.mem.global_sectors, b.mem.global_sectors);
    EXPECT_EQ(a.mem.mshr_merges, b.mem.mshr_merges);
    EXPECT_EQ(a.mem.mshr_peak, b.mem.mshr_peak);
    EXPECT_EQ(a.mem.noc_queue_cycles, b.mem.noc_queue_cycles);
    EXPECT_EQ(a.mem.l2_queue_cycles, b.mem.l2_queue_cycles);
    EXPECT_EQ(a.mem.dram_queue_cycles, b.mem.dram_queue_cycles);
    EXPECT_EQ(a.mem.dram_turnarounds, b.mem.dram_turnarounds);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        EXPECT_EQ(a.stalls[r], b.stalls[r]) << stall_reason_name(r);
    }
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (size_t k = 0; k < a.kernels.size(); ++k)
        expect_identical_kernel(a.kernels[k], b.kernels[k]);
}

/** Run one timing-only naive GEMM through the stream engine. */
EngineStats
run_gemm(const GpuConfig& cfg, SimOptions opts, int mnk = 128)
{
    Gpu gpu(cfg, opts);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = mnk;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    gpu.default_stream().enqueue(make_wmma_gemm_naive(kc, buf));
    return gpu.run();
}

/** Identity of @p serial-vs-threaded runs for every thread count in
 *  @p threads, in both idle-skip and lockstep modes. */
void
expect_thread_identity(const GpuConfig& cfg,
                       std::initializer_list<int> threads)
{
    for (bool idle_skip : {true, false}) {
        SimOptions serial;
        serial.idle_skip = idle_skip;
        serial.sim_threads = 1;
        EngineStats base = run_gemm(cfg, serial);
        for (int t : threads) {
            SimOptions par = serial;
            par.sim_threads = t;
            EngineStats es = run_gemm(cfg, par);
            SCOPED_TRACE("sim_threads=" + std::to_string(t) +
                         " idle_skip=" + std::to_string(idle_skip));
            expect_identical(base, es);
        }
    }
}

TEST(ParallelIdentity, MemoryBoundGemm)
{
    expect_thread_identity(mem_bound_config(8), {2, 4});
}

TEST(ParallelIdentity, HeavyBackpressure)
{
    // Constrict every memory level so refusals and retry cycles
    // dominate: the serial Phase-A drain order is what keeps the
    // accept/refuse decisions canonical.
    GpuConfig cfg = mem_bound_config(8);
    cfg.l1_mshr_entries = 4;
    cfg.noc_bytes_per_cycle = 16.0;
    cfg.noc_queue_depth = 8;
    cfg.l2_bank_queue_depth = 2;
    cfg.dram_queue_depth = 4;
    cfg.l2_size = 64 * 1024;
    expect_thread_identity(cfg, {3});
}

TEST(ParallelIdentity, MoreThreadsThanSms)
{
    expect_thread_identity(mem_bound_config(2), {8});
}

TEST(ParallelIdentity, FunctionalEventDagAcrossStreams)
{
    // Functional kernels carry real data through the shared global
    // memory (the staged-commit path), on two streams gated by an
    // event: both the timing and the computed matrices must match a
    // serial run exactly.
    auto run = [](int threads) {
        SimOptions opts;
        opts.sim_threads = threads;
        Gpu gpu(mem_bound_config(4), opts);
        GemmProblem<float> p1(64, 64, 64, Layout::kRowMajor,
                              Layout::kRowMajor);
        GemmProblem<float> p2(64, 64, 64, Layout::kRowMajor,
                              Layout::kRowMajor);
        GemmKernelConfig kc;
        kc.m = kc.n = kc.k = 64;
        kc.functional = true;
        GemmBuffers b1 = p1.upload(&gpu.mem());
        GemmBuffers b2 = p2.upload(&gpu.mem());
        Stream& s1 = gpu.default_stream();
        Stream& s2 = gpu.create_stream();
        Event& e = gpu.create_event("producer_done");
        KernelDesc k1 = make_wmma_gemm_naive(kc, b1);
        k1.name = "producer";
        s1.enqueue(std::move(k1));
        s1.record(e);
        s2.wait(e);
        KernelDesc k2 = make_wmma_gemm_naive(kc, b2);
        k2.name = "consumer";
        s2.enqueue(std::move(k2));
        EngineStats es = gpu.run();
        EXPECT_LE(p1.verify(gpu.mem(), b1.d), 1e-3);
        EXPECT_LE(p2.verify(gpu.mem(), b2.d), 1e-3);
        return es;
    };
    EngineStats serial = run(1);
    EngineStats threaded = run(4);
    expect_identical(serial, threaded);
    ASSERT_EQ(serial.kernels.size(), 2u);
}

TEST(ParallelIdentity, ResumableRunMatchesOneShot)
{
    // Pausing and resuming with run_until must not perturb the
    // sharded tick: a threaded chunked run equals a serial one-shot.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions serial;
    EngineStats base = run_gemm(cfg, serial, 64);

    SimOptions par;
    par.sim_threads = 4;
    Gpu gpu(cfg, par);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 64;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    gpu.default_stream().enqueue(make_wmma_gemm_naive(kc, buf));
    EngineStats es = gpu.run_until(base.cycles / 2);
    EXPECT_TRUE(gpu.run_active());
    es = gpu.run();
    expect_identical(base, es);
}

TEST(ParallelIdentity, AutoThreadCountRuns)
{
    // sim_threads = 0 resolves to the host's hardware concurrency;
    // whatever that is, results must equal the serial run.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions serial;
    SimOptions autov;
    autov.sim_threads = 0;
    expect_identical(run_gemm(cfg, serial, 64), run_gemm(cfg, autov, 64));
}

}  // namespace
}  // namespace tcsim
