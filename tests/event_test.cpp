/**
 * @file
 * Tests for the CUDA-runtime-style event & synchronization API:
 * cross-stream happens-before via record/wait, event cycle stamps and
 * elapsed_cycles, host callbacks, resumable runs (run_until /
 * synchronize) with bit-identical timing, deadlock detection with the
 * wait graph, per-kernel stall attribution, and the event edge cases
 * (never-recorded wait, re-record, record+wait on one stream).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

KernelDesc
stress(const char* name, int ctas = 1, int warps = 2, int wmma = 16)
{
    KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, ctas,
                                     warps, wmma, /*accumulators=*/4);
    kd.name = name;
    return kd;
}

KernelDesc
small_gemm(Gpu* gpu, GemmProblem<float>* prob, const char* name)
{
    GemmKernelConfig cfg;
    cfg.m = prob->m();
    cfg.n = prob->n();
    cfg.k = prob->k();
    GemmBuffers buf = prob->upload(&gpu->mem());
    KernelDesc kd = make_wmma_gemm_shared(cfg, buf);
    kd.name = name;
    return kd;
}

TEST(Event, CrossStreamHappensBefore)
{
    // consumer waits on an event recorded after producer: its window
    // must start strictly after the producer finished, even though the
    // streams would otherwise overlap.
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& done = gpu.create_event("done");

    s1.enqueue(stress("producer"));
    s1.record(done);
    s2.wait(done);
    s2.enqueue(stress("consumer"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[0].kernel, "producer");
    EXPECT_EQ(es.kernels[1].kernel, "consumer");
    EXPECT_GT(es.kernels[1].start_cycle, es.kernels[0].finish_cycle);
    EXPECT_TRUE(done.complete());
    EXPECT_GT(done.cycle(), es.kernels[0].finish_cycle);
    EXPECT_LE(done.cycle(), es.kernels[1].start_cycle);
}

TEST(Event, WithoutWaitStreamsStillOverlap)
{
    // Same workload minus the wait: the two streams overlap.  Guards
    // against the event machinery accidentally serializing everything.
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& done = gpu.create_event("done");
    s1.enqueue(stress("producer"));
    s1.record(done);
    s2.enqueue(stress("consumer"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[0].start_cycle, 0u);
    EXPECT_EQ(es.kernels[1].start_cycle, 0u);
}

TEST(Event, ElapsedCyclesTimesSubWindow)
{
    // Events recorded before and after a kernel time its window, the
    // cudaEventElapsedTime analog.
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    Event& t0 = gpu.create_event("t0");
    Event& t1 = gpu.create_event("t1");

    s.record(t0);
    s.enqueue(stress("k"));
    s.record(t1);
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 1u);
    ASSERT_TRUE(t0.complete());
    ASSERT_TRUE(t1.complete());
    // t0 completes on the first promote tick, t1 on the tick after the
    // kernel retires: the span covers exactly the kernel's cycles.
    EXPECT_EQ(Event::elapsed_cycles(t0, t1), es.kernels[0].cycles);
}

TEST(Event, WaitOnNeverRecordedEventReportsDeadlock)
{
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Event& never = gpu.create_event("never");
    s1.wait(never);
    s1.enqueue(stress("blocked"));

    try {
        gpu.run();
        FAIL() << "expected EngineDeadlockError";
    } catch (const EngineDeadlockError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
        EXPECT_NE(what.find("\"never\""), std::string::npos) << what;
        EXPECT_NE(what.find("never recorded"), std::string::npos) << what;
    }
}

TEST(Event, CyclicWaitReportsWaitGraph)
{
    // s1 waits on an event s2 records only after its own blocked wait,
    // and vice versa: a true dependency cycle.  The report names both
    // streams and both events.
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& ea = gpu.create_event("ea");
    Event& eb = gpu.create_event("eb");

    s1.wait(eb);
    s1.enqueue(stress("k1"));
    s1.record(ea);
    s2.wait(ea);
    s2.enqueue(stress("k2"));
    s2.record(eb);

    try {
        gpu.run();
        FAIL() << "expected EngineDeadlockError";
    } catch (const EngineDeadlockError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("\"ea\""), std::string::npos) << what;
        EXPECT_NE(what.find("\"eb\""), std::string::npos) << what;
        EXPECT_NE(what.find("record queued on stream"), std::string::npos)
            << what;
    }
}

TEST(Event, ReRecordedEventLastWins)
{
    // The same event recorded on two streams: after the run its stamp
    // is the later record's, and a second run may re-record it again.
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& e = gpu.create_event("e");

    s1.enqueue(stress("short"));
    s1.record(e);
    s2.enqueue(stress("long", /*ctas=*/1, /*warps=*/4, /*wmma=*/64));
    s2.record(e);
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    uint64_t last_finish = 0;
    for (const LaunchStats& k : es.kernels)
        last_finish = std::max(last_finish, k.finish_cycle);
    ASSERT_TRUE(e.complete());
    // The surviving stamp is from the later (slower) stream's record.
    EXPECT_GT(e.cycle(), last_finish);

    // Host-side re-record resets completion until processed again.
    s1.record(e);
    EXPECT_FALSE(e.complete());
    s1.clear();
}

TEST(Event, RecordThenWaitSameStreamIsNoop)
{
    // A stream waiting on an event it just recorded must not deadlock
    // or change timing: in-stream order already provides the edge.
    Gpu plain(small_titan_v(2));
    plain.default_stream().enqueue(stress("a"));
    plain.default_stream().enqueue(stress("b"));
    EngineStats base = plain.run();

    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    Event& e = gpu.create_event("e");
    s.enqueue(stress("a"));
    s.record(e);
    s.wait(e);
    s.enqueue(stress("b"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[0].cycles, base.kernels[0].cycles);
    EXPECT_EQ(es.kernels[1].cycles, base.kernels[1].cycles);
    EXPECT_TRUE(e.complete());
}

TEST(Event, CallbackFiresAfterPriorWork)
{
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    std::vector<uint64_t> fired;
    s.enqueue(stress("k"));
    s.add_callback([&](uint64_t cycle) { fired.push_back(cycle); });
    EngineStats es = gpu.run();

    ASSERT_EQ(fired.size(), 1u);
    EXPECT_GT(fired[0], es.kernels[0].finish_cycle);
}

TEST(Event, CallbackMayEnqueueMoreWork)
{
    // A callback that chains another launch onto the stream: the
    // engine picks it up within the same run.
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    s.enqueue(stress("first"));
    s.add_callback([&](uint64_t) { s.enqueue(stress("chained")); });
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[1].kernel, "chained");
    EXPECT_GT(es.kernels[1].start_cycle, es.kernels[0].finish_cycle);
}

TEST(Event, CallbackEnqueuedKernelGetsFullChip)
{
    // A kernel injected by a callback must run on an SM array sized
    // for it, not for the work visible when the run began: its timing
    // matches the same kernel enqueued up front.
    Gpu upfront(small_titan_v(4));
    upfront.default_stream().enqueue(stress("tiny", /*ctas=*/1));
    upfront.default_stream().enqueue(stress("wide", /*ctas=*/4));
    EngineStats ref = upfront.run();

    Gpu chained(small_titan_v(4));
    Stream& s = chained.default_stream();
    s.enqueue(stress("tiny", /*ctas=*/1));
    s.add_callback([&](uint64_t) { s.enqueue(stress("wide", 4)); });
    EngineStats es = chained.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    ASSERT_EQ(ref.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[1].kernel, "wide");
    EXPECT_EQ(es.kernels[1].cycles, ref.kernels[1].cycles);
}

TEST(Event, CallbackCreatedStreamJoinsTheRun)
{
    // A callback that creates a stream and enqueues onto it: the run
    // must execute that work before reporting itself drained.
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    s.enqueue(stress("first"));
    s.add_callback([&](uint64_t) {
        gpu.create_stream().enqueue(stress("on_new_stream"));
    });
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[1].kernel, "on_new_stream");
    EXPECT_FALSE(gpu.run_active());
}

TEST(Resume, RunUntilThenResumeIsBitIdentical)
{
    // The same two-stream workload run in one shot and in many
    // run_until increments must retire every kernel on identical
    // cycles — pausing is timing-invisible.
    GemmProblem<float> pa(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmProblem<float> pb(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);

    Gpu one(small_titan_v(2));
    one.create_stream().enqueue(small_gemm(&one, &pa, "a"));
    one.create_stream().enqueue(small_gemm(&one, &pb, "b"));
    EngineStats whole = one.run();

    Gpu chunked(small_titan_v(2));
    chunked.create_stream().enqueue(small_gemm(&chunked, &pa, "a"));
    chunked.create_stream().enqueue(small_gemm(&chunked, &pb, "b"));
    EngineStats step1 = chunked.run_until(1000);
    EXPECT_TRUE(chunked.run_active());
    EXPECT_GT(step1.current_cycle, 1000u);
    EngineStats step2 = chunked.run_until(5000);
    EngineStats final = chunked.run();
    EXPECT_FALSE(chunked.run_active());

    ASSERT_EQ(final.kernels.size(), whole.kernels.size());
    for (size_t i = 0; i < whole.kernels.size(); ++i) {
        EXPECT_EQ(final.kernels[i].kernel, whole.kernels[i].kernel);
        EXPECT_EQ(final.kernels[i].start_cycle,
                  whole.kernels[i].start_cycle);
        EXPECT_EQ(final.kernels[i].finish_cycle,
                  whole.kernels[i].finish_cycle);
        EXPECT_EQ(final.kernels[i].instructions,
                  whole.kernels[i].instructions);
    }
    EXPECT_EQ(final.cycles, whole.cycles);
    EXPECT_EQ(final.instructions, whole.instructions);
    // Progress snapshots are monotone prefixes of the final result.
    EXPECT_LE(step1.kernels.size(), step2.kernels.size());
    EXPECT_LE(step2.kernels.size(), final.kernels.size());
}

TEST(Resume, WorkEnqueuedBetweenAdvancesJoinsTheRun)
{
    // Service-style operation: a paused run accepts new launches and
    // keeps its warm memory timing (second identical GEMM is no
    // slower), unlike separate runs which reset at the boundary.
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor,
                            Layout::kRowMajor);
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.default_stream();
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    GemmBuffers buf = prob.upload(&gpu.mem());
    s.enqueue(make_wmma_gemm_naive(cfg, buf));
    EngineStats mid = gpu.run_until(10);
    ASSERT_TRUE(gpu.run_active());

    s.enqueue(make_wmma_gemm_naive(cfg, buf));  // same operands: warm
    EngineStats final = gpu.run();

    ASSERT_EQ(final.kernels.size(), 2u);
    EXPECT_LT(final.kernels[1].mem.l2_misses,
              final.kernels[0].mem.l2_misses);
    EXPECT_LE(final.kernels[1].cycles, final.kernels[0].cycles);
    EXPECT_LE(mid.kernels.size(), 1u);
}

TEST(Resume, SynchronizeStreamDrainsOnlyThatStream)
{
    Gpu gpu(small_titan_v(2));
    Stream& fast = gpu.create_stream();
    Stream& slow = gpu.create_stream();
    fast.enqueue(stress("fast"));
    slow.enqueue(stress("slow", /*ctas=*/1, /*warps=*/4, /*wmma=*/128));

    EngineStats at_sync = gpu.synchronize(fast);
    EXPECT_TRUE(fast.empty());
    // The fast kernel retired; the slow one may still be in flight.
    ASSERT_GE(at_sync.kernels.size(), 1u);
    EXPECT_EQ(at_sync.kernels[0].kernel, "fast");

    EngineStats final = gpu.run();
    ASSERT_EQ(final.kernels.size(), 2u);
    EXPECT_FALSE(gpu.run_active());
}

TEST(Resume, SynchronizeIdleStreamIsNoop)
{
    // cudaStreamSynchronize on an idle stream: no run begins, no
    // timing resets, and a later launch() still works.
    Gpu gpu(small_titan_v(2));
    Stream& busy = gpu.create_stream();
    Stream& idle = gpu.create_stream();
    busy.enqueue(stress("queued"));

    EngineStats es = gpu.synchronize(idle);
    EXPECT_TRUE(es.kernels.empty());
    EXPECT_FALSE(gpu.run_active());
    EXPECT_EQ(busy.depth(), 1u);  // Queued work untouched.

    LaunchStats solo = gpu.launch(stress("solo"));  // Must not throw.
    EXPECT_GT(solo.cycles, 0u);
    EngineStats final = gpu.run();
    EXPECT_EQ(final.kernels.size(), 1u);
}

TEST(Resume, SynchronizeEventStopsAtCompletion)
{
    Gpu gpu(small_titan_v(2));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& e = gpu.create_event("phase");
    s1.enqueue(stress("first"));
    s1.record(e);
    s1.enqueue(stress("second", /*ctas=*/1, /*warps=*/4, /*wmma=*/64));
    s2.enqueue(stress("other"));

    EngineStats at_event = gpu.synchronize(e);
    EXPECT_TRUE(e.complete());
    EXPECT_TRUE(gpu.run_active());
    EXPECT_GE(at_event.current_cycle, e.cycle());

    EngineStats final = gpu.run();
    EXPECT_EQ(final.kernels.size(), 3u);
}

TEST(Resume, RunUntilPausesOnHostResolvableWait)
{
    // A bounded advance hitting a wait on a not-yet-recorded event
    // pauses instead of throwing: the host records and resumes.
    Gpu gpu(small_titan_v(2));
    Stream& s = gpu.create_stream();
    Event& e = gpu.create_event("host_gate");
    s.wait(e);
    s.enqueue(stress("gated"));

    EngineStats paused = gpu.run_until(1000);
    EXPECT_TRUE(gpu.run_active());
    EXPECT_TRUE(paused.kernels.empty());

    // Host resolves the wait: record on an idle stream and resume
    // with the full-drain call (which would throw were it unresolved).
    gpu.create_stream().record(e);
    EngineStats final = gpu.run();
    ASSERT_EQ(final.kernels.size(), 1u);
    EXPECT_EQ(final.kernels[0].kernel, "gated");
    EXPECT_FALSE(gpu.run_active());
}

TEST(Resume, SynchronizeNeverRecordedEventThrows)
{
    Gpu gpu(small_titan_v(2));
    gpu.default_stream().enqueue(stress("k"));
    Event& never = gpu.create_event("never");
    EXPECT_THROW(gpu.synchronize(never), EngineDeadlockError);
}

TEST(Resume, LaunchWhilePausedThrows)
{
    Gpu gpu(small_titan_v(2));
    gpu.default_stream().enqueue(stress("k"));
    gpu.run_until(10);
    ASSERT_TRUE(gpu.run_active());
    EXPECT_THROW(gpu.launch(stress("solo")), std::runtime_error);
    gpu.run();  // Drain so the Gpu tears down cleanly.
}

TEST(Stalls, PerKernelAttributionFilledInMultiKernelRuns)
{
    // Two concurrent GEMMs: each kernel's LaunchStats carries its own
    // stall attribution (not just Gpu::launch()'s chip-wide copy), and
    // the per-kernel counts are bounded by the chip-wide total.
    GemmProblem<float> pa(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmProblem<float> pb(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    Gpu gpu(small_titan_v(2));
    gpu.create_stream().enqueue(small_gemm(&gpu, &pa, "a"));
    gpu.create_stream().enqueue(small_gemm(&gpu, &pb, "b"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_GT(es.stalls.total(), 0u);
    uint64_t per_kernel = 0;
    for (const LaunchStats& k : es.kernels) {
        EXPECT_GT(k.stalls.total(), 0u) << k.kernel;
        per_kernel += k.stalls.total();
    }
    // Unattributable stalls (empty sub-cores, drained warps) stay
    // chip-wide only.
    EXPECT_LE(per_kernel, es.stalls.total());
    // Named accessor: a memory-bound WMMA GEMM spends cycles blocked
    // on the scoreboard.
    EXPECT_GT(es.stalls.cycles(SubCore::StallReason::kScoreboard), 0u);
}

TEST(Stalls, LaunchKeepsChipWideAttribution)
{
    // Gpu::launch() preserves the legacy semantics: the single
    // kernel's stall array equals the chip-wide one.
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor,
                            Layout::kRowMajor);
    Gpu gpu(small_titan_v(2));
    LaunchStats s = gpu.launch(small_gemm(&gpu, &prob, "solo"));
    EXPECT_GT(s.stalls.total(), 0u);
}

}  // namespace
}  // namespace tcsim
