/**
 * @file
 * Tests for the table/CSV emitters used by the bench harness.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace tcsim {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("Title");
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Column alignment: "value" column starts at the same offset in
    // each data line.
    auto pos1 = s.find("1");
    auto pos22 = s.find("22");
    ASSERT_NE(pos1, std::string::npos);
    ASSERT_NE(pos22, std::string::npos);
}

TEST(TextTable, Csv)
{
    TextTable t;
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumRows)
{
    TextTable t;
    EXPECT_EQ(t.num_rows(), 0u);
    t.add_row({"x"});
    EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_double(2.0, 0), "2");
    EXPECT_EQ(fmt_double(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace tcsim
