/**
 * @file
 * Tests for the table/CSV emitters used by the bench harness.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace tcsim {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("Title");
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Column alignment: "value" column starts at the same offset in
    // each data line.
    auto pos1 = s.find("1");
    auto pos22 = s.find("22");
    ASSERT_NE(pos1, std::string::npos);
    ASSERT_NE(pos22, std::string::npos);
}

TEST(TextTable, MaxColWidthTruncatesWithEllipsis)
{
    TextTable t;
    t.set_header({"name", "value"});
    t.add_row({"a_scenario_name_far_longer_than_the_cap", "1"});
    t.add_row({"short", "22"});
    t.set_max_col_width(0, 16);
    std::string s = t.render();
    // The oversized cell is clipped to the cap with a ".." tail; the
    // full text never reaches the output.
    EXPECT_EQ(s.find("a_scenario_name_far_longer_than_the_cap"),
              std::string::npos);
    EXPECT_NE(s.find("a_scenario_nam.."), std::string::npos);
    // Short cells and other columns are untouched.
    EXPECT_NE(s.find("short"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    // Every rendered line fits the capped layout: no line exceeds
    // cap + separator + widest value column.
    size_t start = 0;
    while (start < s.size()) {
        size_t end = s.find('\n', start);
        if (end == std::string::npos)
            end = s.size();
        EXPECT_LE(end - start, 16u + 2u + 5u);
        start = end + 1;
    }
    // CSV output is raw data: the cap is render-only.
    EXPECT_NE(t.render_csv().find("a_scenario_name_far_longer_than_the_cap"),
              std::string::npos);
}

TEST(TextTable, Csv)
{
    TextTable t;
    t.set_header({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumRows)
{
    TextTable t;
    EXPECT_EQ(t.num_rows(), 0u);
    t.add_row({"x"});
    EXPECT_EQ(t.num_rows(), 1u);
}

TEST(FmtDouble, Precision)
{
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_double(2.0, 0), "2");
    EXPECT_EQ(fmt_double(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace tcsim
