/**
 * @file
 * Unit tests for the memory-system substrates: coalescer, sectored
 * caches, DRAM bandwidth model, banked shared memory, and the
 * functional global memory.
 */

#include <gtest/gtest.h>

#include "sim/mem/cache.h"
#include "sim/mem/coalescer.h"
#include "sim/mem/dram.h"
#include "sim/mem/global_memory.h"
#include "sim/mem/memory_system.h"
#include "sim/mem/mshr.h"
#include "sim/mem/queueing.h"
#include "sim/mem/shared_memory.h"

namespace tcsim {
namespace {

Instruction
make_load(std::array<uint64_t, kWarpSize> addrs, int width_bits,
          Opcode op = Opcode::kLdg)
{
    Instruction inst;
    inst.op = op;
    inst.width_bits = static_cast<uint16_t>(width_bits);
    inst.n_dst = 1;
    inst.dst[0] = 8;
    inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>(addrs);
    return inst;
}

TEST(Coalescer, FullyCoalescedWarp)
{
    // 32 lanes x 4B contiguous = 128 B = 4 sectors.
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 0x1000 + 4 * static_cast<uint64_t>(i);
    auto sectors = coalesce_sectors(make_load(a, 32));
    EXPECT_EQ(sectors.size(), 4u);
    EXPECT_EQ(sectors.front(), 0x1000u);
}

TEST(Coalescer, SameAddressBroadcast)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(0x2000);
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 1u);
}

TEST(Coalescer, ScatteredAccesses)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = static_cast<uint64_t>(i) * 256;
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 32u);
}

TEST(Coalescer, InactiveLanesSkipped)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(kNoAddr);
    a[3] = 0x40;
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 1u);
}

TEST(Coalescer, LoopIterationAdvancesAddresses)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i);
    Instruction inst = make_load(a, 32);
    inst.loop_stride = 128;
    auto s0 = coalesce_sectors(inst, 32, 0);
    auto s1 = coalesce_sectors(inst, 32, 1);
    EXPECT_EQ(s0.front() + 128, s1.front());
}

TEST(Cache, HitAfterFill)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    cfg.assoc = 4;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kHit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SectorMissWithinCachedLine)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    // Same 128B line, different 32B sector.
    EXPECT_EQ(c.access(0x120, false), CacheOutcome::kSectorMiss);
    EXPECT_EQ(c.access(0x120, false), CacheOutcome::kHit);
}

TEST(Cache, LruEviction)
{
    CacheConfig cfg;
    cfg.size_bytes = 1024;  // 2 sets x 4 ways
    cfg.assoc = 4;
    Cache c(cfg);
    // Fill all 4 ways of set 0 (line addresses with even line index).
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * 2 * 128, false);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(i * 2 * 128, false), CacheOutcome::kHit);
    // A fifth line evicts the LRU (line 0).
    c.access(4 * 2 * 128, false);
    EXPECT_EQ(c.access(0, false), CacheOutcome::kLineMiss);
}

TEST(Cache, WriteNoAllocate)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    cfg.write_allocate = false;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, true), CacheOutcome::kLineMiss);
    // Still a miss: the write did not allocate.
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
}

TEST(Cache, FlushResets)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    Cache c(cfg);
    c.access(0x100, false);
    c.flush();
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.misses(), 1u);  // counters reset by flush
}

TEST(Dram, LatencyOnly)
{
    DramModel d(4, 16.0, 200);
    uint64_t t = d.access(0, 32, false, 1000);
    EXPECT_EQ(t, 1000 + 2 + 200u);  // 32B at 16B/cyc = 2 cycles + latency
}

TEST(Dram, BandwidthQueueing)
{
    DramModel d(1, 16.0, 200);
    // Ten back-to-back 32B requests to one partition serialize at
    // 2 cycles each.
    uint64_t last = 0;
    for (int i = 0; i < 10; ++i)
        last = d.access(0, 32, false, 0);
    EXPECT_EQ(last, 20 + 200u);
    EXPECT_EQ(d.total_bytes(), 320u);
    EXPECT_EQ(d.queue_cycles(), 2u + 4 + 6 + 8 + 10 + 12 + 14 + 16 + 18);
}

TEST(Dram, PartitionInterleaving)
{
    DramModel d(2, 16.0, 100, 256);
    // Addresses 0 and 256 hit different partitions: both complete at
    // the unloaded latency.
    uint64_t t0 = d.access(0, 32, false, 0);
    uint64_t t1 = d.access(256, 32, false, 0);
    EXPECT_EQ(t0, t1);
    // 256 B interleave: addresses 256 B apart land on distinct
    // partitions, wrapping after num_partitions.
    EXPECT_EQ(d.partition(0), 0);
    EXPECT_EQ(d.partition(256), 1);
    EXPECT_EQ(d.partition(512), 0);
    EXPECT_EQ(d.partition(255), 0);  // Same 256 B block, same partition.
}

TEST(Dram, ContentionIsolatedPerPartition)
{
    DramModel d(2, 16.0, 100, 256, /*queue_depth=*/128);
    // Hammer partition 0 with 64 requests; partition 1 must still
    // answer at the unloaded latency.
    uint64_t p0_last = 0;
    for (int i = 0; i < 64; ++i)
        p0_last = d.access(0, 32, false, 0);
    uint64_t p1 = d.access(256, 32, false, 0);
    EXPECT_EQ(p1, 2 + 100u);             // Unloaded: service + latency.
    EXPECT_EQ(p0_last, 64 * 2 + 100u);   // Fully serialized.
}

TEST(Dram, QueueDepthBackpressure)
{
    DramModel d(1, 16.0, 100, 256, /*queue_depth=*/4);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(d.can_accept(0, 0));
        d.access(0, 32, false, 0);
    }
    // All four slots held by unfinished requests: refuse, and report
    // the cycle the oldest one's service completes (2 cycles each).
    EXPECT_FALSE(d.can_accept(0, 0));
    EXPECT_EQ(d.retry_cycle(0, 0), 2u);
    // At the retry cycle a slot has freed.
    EXPECT_TRUE(d.can_accept(0, 2));
    // The other partition-independent path: a second partition is
    // unaffected by partition 0's full queue.
    EXPECT_TRUE(d.can_accept(256, 0));
}

TEST(Dram, ReadWriteTurnaround)
{
    DramModel d(1, 16.0, 100, 256, 32, /*rw_turnaround=*/8);
    uint64_t r1 = d.access(0, 32, false, 0);   // read: 0..2, done 102
    EXPECT_EQ(r1, 2 + 100u);
    uint64_t w1 = d.access(0, 32, true, 0);    // +8 turnaround: 10..12
    EXPECT_EQ(w1, 2 + 8 + 2 + 100u);
    uint64_t w2 = d.access(0, 32, true, 0);    // same direction: no penalty
    EXPECT_EQ(w2, w1 + 2);
    EXPECT_EQ(d.turnarounds(), 1u);
}

TEST(BoundedChannel, QueueingAndBackpressure)
{
    BoundedChannel ch(32.0, /*depth=*/2);  // 1 cycle per 32 B sector.
    EXPECT_TRUE(ch.can_accept(0));
    EXPECT_EQ(ch.submit(0, 32), 0.0);  // starts immediately
    EXPECT_EQ(ch.submit(0, 32), 1.0);  // queues one cycle
    EXPECT_FALSE(ch.can_accept(0));    // both slots held
    EXPECT_EQ(ch.retry_cycle(0), 1u);  // first service completes at 1
    EXPECT_TRUE(ch.can_accept(1));
    EXPECT_EQ(ch.queue_cycles(), 1u);
}

TEST(Mshr, MergeOnSectorOneEntryPerLine)
{
    // Four sector misses to one 128 B line occupy ONE entry.
    MshrFile m(/*entries=*/2, 128, 32);
    m.track(0x1000, 0, 500);
    m.track(0x1020, 0, 510);
    m.track(0x1040, 0, 520);
    m.track(0x1060, 0, 530);
    EXPECT_EQ(m.occupancy(0), 1u);
    EXPECT_EQ(m.peak(), 1u);
    // A second line takes the second entry.
    m.track(0x2000, 0, 540);
    EXPECT_EQ(m.occupancy(0), 2u);
    // A redundant request to a pending sector merges at its fill time
    // and generates no new entry or traffic.
    EXPECT_EQ(m.merge(0x1020, 100), 510u);
    EXPECT_EQ(m.merges(), 1u);
    // Once the fill has arrived the MSHR no longer answers (the L1
    // tag store does).
    EXPECT_EQ(m.merge(0x1020, 510), 0u);
}

TEST(Mshr, FullAndRetry)
{
    MshrFile m(2, 128, 32);
    m.track(0x1000, 0, 300);
    m.track(0x2000, 0, 400);
    // Both entries held: a third *line* cannot be tracked...
    EXPECT_FALSE(m.can_track(0x3000, 0));
    EXPECT_EQ(m.retry_cycle(0), 300u);
    // ...but a sector of an already-tracked line still merges in.
    EXPECT_TRUE(m.can_track(0x1060, 0));
    // At cycle 300 the first entry's fill arrived and it frees.
    EXPECT_TRUE(m.can_track(0x3000, 300));
    EXPECT_EQ(m.occupancy(300), 1u);
}

TEST(SharedMemory, ConflictFree)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i);  // one word per bank
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 1);
}

TEST(SharedMemory, Broadcast)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(64);  // all lanes read the same word: broadcast, no conflict
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 1);
}

TEST(SharedMemory, WorstCaseConflict)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 128 * static_cast<uint64_t>(i);  // all lanes in bank 0
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)),
              32);
}

TEST(SharedMemory, TwoWayConflict)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i % 16) + 64 * (i / 16) * 4;
    // Lanes i and i+16 share a bank with different words.
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 2);
}

TEST(SharedMemoryStorage, ReadWrite)
{
    SharedMemoryStorage s(1024);
    uint32_t v = 0xdeadbeef;
    s.write(64, &v, 4);
    uint32_t r = 0;
    s.read(64, &r, 4);
    EXPECT_EQ(r, v);
}

TEST(GlobalMemory, AllocAlignment)
{
    GlobalMemory g;
    uint64_t a = g.alloc(100);
    uint64_t b = g.alloc(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(GlobalMemory, ReadWriteRoundTrip)
{
    GlobalMemory g;
    uint64_t a = g.alloc(64);
    g.write_u32(a + 8, 42);
    EXPECT_EQ(g.read_u32(a + 8), 42u);
}

TEST(MemorySystem, L1HitFasterThanMiss)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    MemAccessResult miss = ms.access_sector(0, 0x10000, false, 0);
    ASSERT_EQ(miss.status, MemAccept::kAccepted);
    EXPECT_GT(miss.cycle, 0u + cfg.l2_hit_latency);  // went to DRAM
    MemAccessResult hit = ms.access_sector(0, 0x10000, false, miss.cycle);
    ASSERT_EQ(hit.status, MemAccept::kAccepted);
    EXPECT_EQ(hit.cycle - miss.cycle,
              static_cast<uint64_t>(cfg.l1_hit_latency));
}

TEST(MemorySystem, HitUnderMissMergesWithInflightFill)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    MemAccessResult miss = ms.access_sector(0, 0x10000, false, 0);
    ASSERT_EQ(miss.status, MemAccept::kAccepted);
    // A second request to the same sector while the fill is in flight
    // rides the same MSHR entry home: it completes with the fill, not
    // at the L1 hit latency, and moves no new data.
    uint64_t dram_before = ms.stats().dram_bytes;
    MemAccessResult merged = ms.access_sector(0, 0x10000, false, 10);
    ASSERT_EQ(merged.status, MemAccept::kAccepted);
    EXPECT_EQ(merged.cycle, miss.cycle);
    EXPECT_EQ(ms.stats().dram_bytes, dram_before);
    EXPECT_EQ(ms.stats().mshr_merges, 1u);
}

TEST(MemorySystem, MshrFullRefusesWithRetry)
{
    GpuConfig cfg = titan_v_config();
    cfg.l1_mshr_entries = 2;
    MemorySystem ms(cfg);
    ASSERT_EQ(ms.access_sector(0, 0 << 7, false, 0).status,
              MemAccept::kAccepted);
    ASSERT_EQ(ms.access_sector(0, 1 << 7, false, 0).status,
              MemAccept::kAccepted);
    // Two line fills outstanding = the whole file; a third line is
    // refused with the earliest cycle an entry frees.
    MemAccessResult r = ms.access_sector(0, 2 << 7, false, 0);
    EXPECT_EQ(r.status, MemAccept::kMshrFull);
    EXPECT_GT(r.cycle, 0u);
    // A refused access has no side effects: the same sector is
    // accepted once an entry frees, and another SM's MSHR file is
    // independent of SM0's.
    EXPECT_EQ(ms.access_sector(1, 2 << 7, false, 0).status,
              MemAccept::kAccepted);
    EXPECT_EQ(ms.access_sector(0, 2 << 7, false, r.cycle).status,
              MemAccept::kAccepted);
}

TEST(MemorySystem, L2SharedAcrossSms)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    ASSERT_EQ(ms.access_sector(0, 0x20000, false, 0).status,
              MemAccept::kAccepted);  // SM0 fills L2
    MemAccessResult r = ms.access_sector(1, 0x20000, false, 1000);
    ASSERT_EQ(r.status, MemAccept::kAccepted);
    // SM1 misses its L1 but hits L2.
    EXPECT_EQ(r.cycle - 1000, static_cast<uint64_t>(cfg.l2_hit_latency));
}

TEST(MemorySystem, StatsAccumulate)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    uint64_t now = 0;
    for (uint64_t addr : {0x0u, 0x20u, 0x40u})
        ms.access_sector(0, addr, false, now++);
    MemStats s = ms.stats();
    EXPECT_EQ(s.global_sectors, 3u);
    EXPECT_EQ(s.l1_misses, 3u);
    EXPECT_EQ(s.mshr_peak, 1u);  // Three sectors of one line: one entry.
    ms.reset_timing();
    EXPECT_EQ(ms.stats().global_sectors, 0u);
    EXPECT_EQ(ms.stats().mshr_peak, 0u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    Cache c(cfg);
    EXPECT_EQ(c.probe(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    // probe did not fill: the first real access still line-misses.
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.probe(0x100, false), CacheOutcome::kHit);
    EXPECT_EQ(c.probe(0x120, false), CacheOutcome::kSectorMiss);
}

TEST(Cache, FlushResetsLruClock)
{
    // Regression: flush() used to leave tick_ and per-line lru stamps
    // behind.  Eviction order after a flush must match a fresh cache
    // exactly; drive both through an LRU-sensitive pattern and compare
    // every outcome.
    CacheConfig cfg;
    cfg.size_bytes = 1024;  // 2 sets x 4 ways
    cfg.assoc = 4;
    Cache flushed(cfg);
    // Warm with a pattern that leaves staggered lru stamps, then flush.
    for (uint64_t i = 0; i < 8; ++i)
        flushed.access(i * 2 * 128, false);
    flushed.flush();

    Cache fresh(cfg);
    auto drive = [](Cache& c) {
        std::vector<CacheOutcome> out;
        // Fill set 0, touch way 0 to make way 1 the LRU victim, then
        // evict and re-probe every line.
        for (uint64_t i = 0; i < 4; ++i)
            out.push_back(c.access(i * 2 * 128, false));
        out.push_back(c.access(0, false));            // refresh line 0
        out.push_back(c.access(4 * 2 * 128, false));  // evicts line 2*128
        for (uint64_t i = 0; i < 5; ++i)
            out.push_back(c.access(i * 2 * 128, false));
        return out;
    };
    EXPECT_EQ(drive(flushed), drive(fresh));
    EXPECT_EQ(flushed.hits(), fresh.hits());
    EXPECT_EQ(flushed.misses(), fresh.misses());
}

}  // namespace
}  // namespace tcsim
