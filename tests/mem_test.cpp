/**
 * @file
 * Unit tests for the memory-system substrates: coalescer, sectored
 * caches, DRAM bandwidth model, banked shared memory, and the
 * functional global memory.
 */

#include <gtest/gtest.h>

#include "sim/mem/cache.h"
#include "sim/mem/coalescer.h"
#include "sim/mem/dram.h"
#include "sim/mem/global_memory.h"
#include "sim/mem/memory_system.h"
#include "sim/mem/shared_memory.h"

namespace tcsim {
namespace {

Instruction
make_load(std::array<uint64_t, kWarpSize> addrs, int width_bits,
          Opcode op = Opcode::kLdg)
{
    Instruction inst;
    inst.op = op;
    inst.width_bits = static_cast<uint16_t>(width_bits);
    inst.n_dst = 1;
    inst.dst[0] = 8;
    inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>(addrs);
    return inst;
}

TEST(Coalescer, FullyCoalescedWarp)
{
    // 32 lanes x 4B contiguous = 128 B = 4 sectors.
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 0x1000 + 4 * static_cast<uint64_t>(i);
    auto sectors = coalesce_sectors(make_load(a, 32));
    EXPECT_EQ(sectors.size(), 4u);
    EXPECT_EQ(sectors.front(), 0x1000u);
}

TEST(Coalescer, SameAddressBroadcast)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(0x2000);
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 1u);
}

TEST(Coalescer, ScatteredAccesses)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = static_cast<uint64_t>(i) * 256;
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 32u);
}

TEST(Coalescer, InactiveLanesSkipped)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(kNoAddr);
    a[3] = 0x40;
    EXPECT_EQ(coalesce_sectors(make_load(a, 32)).size(), 1u);
}

TEST(Coalescer, LoopIterationAdvancesAddresses)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i);
    Instruction inst = make_load(a, 32);
    inst.loop_stride = 128;
    auto s0 = coalesce_sectors(inst, 32, 0);
    auto s1 = coalesce_sectors(inst, 32, 1);
    EXPECT_EQ(s0.front() + 128, s1.front());
}

TEST(Cache, HitAfterFill)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    cfg.assoc = 4;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kHit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SectorMissWithinCachedLine)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    // Same 128B line, different 32B sector.
    EXPECT_EQ(c.access(0x120, false), CacheOutcome::kSectorMiss);
    EXPECT_EQ(c.access(0x120, false), CacheOutcome::kHit);
}

TEST(Cache, LruEviction)
{
    CacheConfig cfg;
    cfg.size_bytes = 1024;  // 2 sets x 4 ways
    cfg.assoc = 4;
    Cache c(cfg);
    // Fill all 4 ways of set 0 (line addresses with even line index).
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * 2 * 128, false);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(i * 2 * 128, false), CacheOutcome::kHit);
    // A fifth line evicts the LRU (line 0).
    c.access(4 * 2 * 128, false);
    EXPECT_EQ(c.access(0, false), CacheOutcome::kLineMiss);
}

TEST(Cache, WriteNoAllocate)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    cfg.write_allocate = false;
    Cache c(cfg);
    EXPECT_EQ(c.access(0x100, true), CacheOutcome::kLineMiss);
    // Still a miss: the write did not allocate.
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
}

TEST(Cache, FlushResets)
{
    CacheConfig cfg;
    cfg.size_bytes = 4096;
    Cache c(cfg);
    c.access(0x100, false);
    c.flush();
    EXPECT_EQ(c.access(0x100, false), CacheOutcome::kLineMiss);
    EXPECT_EQ(c.misses(), 1u);  // counters reset by flush
}

TEST(Dram, LatencyOnly)
{
    DramModel d(4, 16.0, 200);
    uint64_t t = d.access(0, 32, 1000);
    EXPECT_EQ(t, 1000 + 2 + 200u);  // 32B at 16B/cyc = 2 cycles + latency
}

TEST(Dram, BandwidthQueueing)
{
    DramModel d(1, 16.0, 200);
    // Ten back-to-back 32B requests to one partition serialize at
    // 2 cycles each.
    uint64_t last = 0;
    for (int i = 0; i < 10; ++i)
        last = d.access(0, 32, 0);
    EXPECT_EQ(last, 20 + 200u);
    EXPECT_EQ(d.total_bytes(), 320u);
}

TEST(Dram, PartitionInterleaving)
{
    DramModel d(2, 16.0, 100, 256);
    // Addresses 0 and 256 hit different partitions: both complete at
    // the unloaded latency.
    uint64_t t0 = d.access(0, 32, 0);
    uint64_t t1 = d.access(256, 32, 0);
    EXPECT_EQ(t0, t1);
}

TEST(SharedMemory, ConflictFree)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i);  // one word per bank
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 1);
}

TEST(SharedMemory, Broadcast)
{
    std::array<uint64_t, kWarpSize> a{};
    a.fill(64);  // all lanes read the same word: broadcast, no conflict
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 1);
}

TEST(SharedMemory, WorstCaseConflict)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 128 * static_cast<uint64_t>(i);  // all lanes in bank 0
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)),
              32);
}

TEST(SharedMemory, TwoWayConflict)
{
    std::array<uint64_t, kWarpSize> a{};
    for (int i = 0; i < kWarpSize; ++i)
        a[i] = 4 * static_cast<uint64_t>(i % 16) + 64 * (i / 16) * 4;
    // Lanes i and i+16 share a bank with different words.
    EXPECT_EQ(shared_bank_conflict_degree(make_load(a, 32, Opcode::kLds)), 2);
}

TEST(SharedMemoryStorage, ReadWrite)
{
    SharedMemoryStorage s(1024);
    uint32_t v = 0xdeadbeef;
    s.write(64, &v, 4);
    uint32_t r = 0;
    s.read(64, &r, 4);
    EXPECT_EQ(r, v);
}

TEST(GlobalMemory, AllocAlignment)
{
    GlobalMemory g;
    uint64_t a = g.alloc(100);
    uint64_t b = g.alloc(100);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(GlobalMemory, ReadWriteRoundTrip)
{
    GlobalMemory g;
    uint64_t a = g.alloc(64);
    g.write_u32(a + 8, 42);
    EXPECT_EQ(g.read_u32(a + 8), 42u);
}

TEST(MemorySystem, L1HitFasterThanMiss)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    std::vector<uint64_t> sectors = {0x10000};
    uint64_t t_miss = ms.access_global(0, sectors, false, 0);
    uint64_t t_hit = ms.access_global(0, sectors, false, t_miss);
    EXPECT_GT(t_miss, 0u + cfg.l2_hit_latency);  // went to DRAM
    EXPECT_EQ(t_hit - t_miss, static_cast<uint64_t>(cfg.l1_hit_latency));
}

TEST(MemorySystem, L2SharedAcrossSms)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    std::vector<uint64_t> sectors = {0x20000};
    ms.access_global(0, sectors, false, 0);  // SM0 fills L2
    uint64_t t = ms.access_global(1, sectors, false, 1000);
    // SM1 misses its L1 but hits L2.
    EXPECT_EQ(t - 1000, static_cast<uint64_t>(cfg.l2_hit_latency));
}

TEST(MemorySystem, StatsAccumulate)
{
    GpuConfig cfg = titan_v_config();
    MemorySystem ms(cfg);
    std::vector<uint64_t> sectors = {0x0, 0x20, 0x40};
    ms.access_global(0, sectors, false, 0);
    MemStats s = ms.stats();
    EXPECT_EQ(s.global_sectors, 3u);
    EXPECT_EQ(s.l1_misses, 3u);
    ms.reset_timing();
    EXPECT_EQ(ms.stats().global_sectors, 0u);
}

}  // namespace
}  // namespace tcsim
