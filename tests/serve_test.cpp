/**
 * @file
 * Serving-simulator tests: batching-policy decision tables, Poisson
 * trace determinism, percentile math on known distributions, the
 * engine's idle fast-forward (advance_idle_to), and end-to-end
 * run_serving behaviour -- empty trace, single request, static
 * timeout flush, continuous join, and bit-identity between serial and
 * multi-threaded simulation.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "arch/gpu_config.h"
#include "kernels/kernel_registry.h"
#include "serve/batching.h"
#include "serve/latency_stats.h"
#include "serve/request_trace.h"
#include "serve/serving_engine.h"
#include "sim/gpu.h"

using namespace tcsim;
using namespace tcsim::serve;

namespace {

/** Small GPU + serial sim so end-to-end runs stay fast. */
GpuConfig
small_gpu()
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 4;
    return cfg;
}

SimOptions
serial_sim()
{
    SimOptions sim;
    sim.sim_threads = 1;
    return sim;
}

/** Two 64-wide linear layers, one row per request: each wavefront is
 *  two chained 64x64x64 GEMMs. */
model::ModelGraph
tiny_mlp()
{
    model::ModelGraph g;
    g.name = "tiny";
    g.tokens_per_request = 1;
    g.input_features = 64;
    for (int i = 0; i < 2; ++i) {
        model::LayerSpec l;
        l.kind = model::LayerKind::kLinear;
        l.name = "fc" + std::to_string(i);
        l.out_features = 64;
        g.layers.push_back(l);
    }
    return g;
}

std::vector<Request>
at_cycles(std::initializer_list<uint64_t> cycles)
{
    std::vector<Request> trace;
    for (uint64_t c : cycles)
        trace.push_back({static_cast<int>(trace.size()), c});
    return trace;
}

}  // namespace

// --- Policies --------------------------------------------------------

TEST(Batching, StaticAdmitTable)
{
    StaticBatcher p(4, 1000);
    // Full batch ready, nothing running: admit exactly `batch`.
    EXPECT_EQ(p.admit(0, {5, 0, 0}), 4);
    // Under-full and young: wait.
    EXPECT_EQ(p.admit(500, {2, 100, 0}), 0);
    // Timeout flush: the partial batch goes out.
    EXPECT_EQ(p.admit(1100, {2, 100, 0}), 2);
    // One batch in flight at a time.
    EXPECT_EQ(p.admit(0, {5, 0, 1}), 0);
    // Deadline tracks the oldest queued request, idle only.
    EXPECT_EQ(p.next_deadline({2, 100, 0}), 1100u);
    EXPECT_EQ(p.next_deadline({2, 100, 1}), UINT64_MAX);
    EXPECT_EQ(p.next_deadline({0, 0, 0}), UINT64_MAX);
}

TEST(Batching, ContinuousAdmitTable)
{
    ContinuousBatcher p(8, 2);
    EXPECT_EQ(p.admit(0, {3, 0, 0}), 3);
    EXPECT_EQ(p.admit(0, {12, 0, 1}), 8);   // Capped at max_batch.
    EXPECT_EQ(p.admit(0, {3, 0, 2}), 0);    // At max_in_flight.
    EXPECT_EQ(p.next_deadline({3, 0, 0}), UINT64_MAX);
}

// --- Traces ----------------------------------------------------------

TEST(RequestTrace, PoissonDeterministicAndSorted)
{
    std::vector<Request> a = poisson_trace(42, 500, 1000.0);
    std::vector<Request> b = poisson_trace(42, 500, 1000.0);
    ASSERT_EQ(a.size(), 500u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_cycle, b[i].arrival_cycle);
        EXPECT_EQ(a[i].id, static_cast<int>(i));
        if (i > 0)
            EXPECT_GE(a[i].arrival_cycle, a[i - 1].arrival_cycle);
    }
    // Mean inter-arrival gap converges on the requested mean.
    const double mean =
        static_cast<double>(a.back().arrival_cycle) / 500.0;
    EXPECT_NEAR(mean, 1000.0, 100.0);
    // A different seed is a different trace.
    EXPECT_NE(poisson_trace(43, 500, 1000.0)[10].arrival_cycle,
              a[10].arrival_cycle);
}

// --- Percentiles -----------------------------------------------------

TEST(LatencyStats, NearestRankPercentiles)
{
    // 1..100: nearest-rank p-th percentile is exactly p.
    std::vector<uint64_t> v(100);
    std::iota(v.begin(), v.end(), 1);
    EXPECT_EQ(percentile_nearest_rank(v, 50.0), 50u);
    EXPECT_EQ(percentile_nearest_rank(v, 95.0), 95u);
    EXPECT_EQ(percentile_nearest_rank(v, 99.0), 99u);
    EXPECT_EQ(percentile_nearest_rank(v, 100.0), 100u);
    // Small samples: ceil(rank) clamps into [1, n].
    EXPECT_EQ(percentile_nearest_rank({7}, 99.0), 7u);
    EXPECT_EQ(percentile_nearest_rank({10, 20}, 50.0), 10u);
    EXPECT_EQ(percentile_nearest_rank({10, 20}, 51.0), 20u);
    EXPECT_EQ(percentile_nearest_rank({}, 99.0), 0u);
    // Order-independent.
    EXPECT_EQ(percentile_nearest_rank({30, 10, 20}, 99.0), 30u);
}

TEST(LatencyStats, NearestRankBoundaries)
{
    // 1..1000: exact rank boundaries of the tail percentiles.  p99.9
    // is the 999th sample (ceil(0.999 * 1000) = 999), not the max.
    std::vector<uint64_t> v(1000);
    std::iota(v.begin(), v.end(), 1);
    EXPECT_EQ(percentile_nearest_rank(v, 99.9), 999u);
    EXPECT_EQ(percentile_nearest_rank(v, 99.91), 1000u);
    // With n = 10 the p99.9 rank clamps to the max sample.
    std::vector<uint64_t> w(10);
    std::iota(w.begin(), w.end(), 1);
    EXPECT_EQ(percentile_nearest_rank(w, 99.9), 10u);
    EXPECT_EQ(percentile_nearest_rank(w, 90.0), 9u);
    // Exact multiples never round up to the next rank.
    EXPECT_EQ(percentile_nearest_rank(w, 50.0), 5u);
    EXPECT_EQ(percentile_nearest_rank(w, 50.01), 6u);
}

TEST(LatencyStats, ExtraPercentilesInRequestOrder)
{
    std::vector<RequestRecord> reqs;
    for (int i = 0; i < 1000; ++i) {
        RequestRecord r;
        r.arrival_cycle = 0;
        r.admit_cycle = 0;
        r.finish_cycle = static_cast<uint64_t>(i + 1);
        reqs.push_back(r);
    }
    LatencySummary s =
        summarize_latency(reqs, {}, 1000, {90.0, 99.5, 50.0});
    EXPECT_EQ(s.latency_p999, 999u);
    ASSERT_EQ(s.latency_extra.size(), 3u);
    EXPECT_DOUBLE_EQ(s.latency_extra[0].first, 90.0);
    EXPECT_EQ(s.latency_extra[0].second, 900u);
    EXPECT_DOUBLE_EQ(s.latency_extra[1].first, 99.5);
    EXPECT_EQ(s.latency_extra[1].second, 995u);
    EXPECT_DOUBLE_EQ(s.latency_extra[2].first, 50.0);
    EXPECT_EQ(s.latency_extra[2].second, 500u);
}

TEST(LatencyStats, SummaryOnKnownRecords)
{
    std::vector<RequestRecord> reqs;
    for (int i = 0; i < 4; ++i) {
        RequestRecord r;
        r.arrival_cycle = 0;
        r.admit_cycle = static_cast<uint64_t>(10 * (i + 1));
        r.finish_cycle = static_cast<uint64_t>(100 * (i + 1));
        reqs.push_back(r);
    }
    std::vector<QueueSample> queue = {{0, 4}, {40, 0}};
    LatencySummary s = summarize_latency(reqs, queue, 400);
    EXPECT_EQ(s.latency_p50, 200u);
    EXPECT_EQ(s.latency_p99, 400u);
    EXPECT_EQ(s.latency_max, 400u);
    EXPECT_DOUBLE_EQ(s.latency_mean, 250.0);
    EXPECT_EQ(s.queue_wait_p50, 20u);
    EXPECT_EQ(s.queue_wait_max, 40u);
    EXPECT_EQ(s.queue_depth_peak, 4);
    // Depth 4 for 40 of 400 cycles.
    EXPECT_DOUBLE_EQ(s.queue_depth_mean, 0.4);
}

// --- Engine idle fast-forward ---------------------------------------

TEST(AdvanceIdleTo, JumpsBlockedRunsAndAccountsSkips)
{
    Gpu gpu(small_gpu(), serial_sim());
    Event& keepalive = gpu.create_event("keepalive");
    gpu.create_stream().wait(keepalive);
    gpu.run_until(0);  // Pauses blocked: only a host-resolvable wait.

    gpu.advance_idle_to(5000);
    EXPECT_EQ(gpu.current_cycle(), 5000u);
    gpu.advance_idle_to(100);  // Backwards: no-op.
    EXPECT_EQ(gpu.current_cycle(), 5000u);

    gpu.default_stream().record(keepalive);
    EngineStats stats = gpu.run();
    EXPECT_GE(stats.skipped_cycles, 5000u);
}

TEST(AdvanceIdleTo, RejectsRunnableWorkAndBadTargets)
{
    GpuConfig cfg = small_gpu();
    SimOptions sim = serial_sim();
    sim.max_cycles = 1000000;
    Gpu gpu(cfg, sim);
    // Not inside a resumable run.
    EXPECT_THROW(gpu.advance_idle_to(100), std::exception);

    Event& keepalive = gpu.create_event("keepalive");
    gpu.create_stream().wait(keepalive);

    // A resident kernel means the chip is not idle.
    const KernelFamilyInfo* info = find_kernel_family("wmma_naive");
    ASSERT_NE(info, nullptr);
    GemmKernelConfig kc;
    kc.arch = cfg.arch;
    kc.m = kc.n = kc.k = 16;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(16 * 16 * 2);
    buf.b = gpu.mem().alloc(16 * 16 * 2);
    buf.c = gpu.mem().alloc(16 * 16 * 4);
    buf.d = gpu.mem().alloc(16 * 16 * 4);
    gpu.default_stream().enqueue(
        build_gemm_kernel(info->family, kc, buf, /*warps_per_cta=*/8));
    gpu.run_until(1);
    EXPECT_THROW(gpu.advance_idle_to(5000), std::exception);

    // Drain the kernel; then a jump past max_cycles is rejected.
    gpu.run_until(sim.max_cycles);
    EXPECT_THROW(gpu.advance_idle_to(sim.max_cycles + 1), std::exception);
    gpu.default_stream().record(keepalive);
    gpu.run();
}

// --- End-to-end serving ---------------------------------------------

TEST(Serving, EmptyTrace)
{
    StaticBatcher policy(4, 1000);
    ServingResult r =
        run_serving(small_gpu(), serial_sim(), tiny_mlp(), {}, policy);
    EXPECT_EQ(r.report.requests, 0);
    EXPECT_EQ(r.report.completed, 0);
    EXPECT_EQ(r.report.batches, 0);
    EXPECT_EQ(r.report.latency.latency_p99, 0u);
    EXPECT_EQ(r.report.busy_cycles, 0u);
}

TEST(Serving, SingleRequest)
{
    StaticBatcher policy(1, 0);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({100}), policy);
    EXPECT_EQ(r.report.completed, 1);
    ASSERT_EQ(r.report.batches, 1);
    const BatchRecord& b = r.report.batch_records[0];
    EXPECT_EQ(b.size, 1);
    EXPECT_EQ(b.admit_cycle, 100u);
    EXPECT_GT(b.finish_cycle, b.admit_cycle);
    const RequestRecord& q = r.report.request_records[0];
    EXPECT_EQ(q.arrival_cycle, 100u);
    EXPECT_EQ(q.admit_cycle, 100u);
    EXPECT_EQ(q.finish_cycle, b.finish_cycle);
    EXPECT_EQ(q.batch, 0);
    // Latency percentiles of one sample are that sample.
    EXPECT_EQ(r.report.latency.latency_p50,
              q.finish_cycle - q.arrival_cycle);
    EXPECT_EQ(r.report.latency.latency_p99,
              r.report.latency.latency_p50);
    // The arrival gap was fast-forwarded, not simulated.
    EXPECT_GE(r.totals.skipped_cycles, 99u);
}

TEST(Serving, StaticTimeoutFlushesPartialBatch)
{
    // Two requests, batch 4: only the timeout gets them admitted, as
    // one partial batch at exactly oldest_arrival + timeout.
    StaticBatcher policy(4, 50000);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({1000, 2000}), policy);
    EXPECT_EQ(r.report.completed, 2);
    ASSERT_EQ(r.report.batches, 1);
    EXPECT_EQ(r.report.batch_records[0].size, 2);
    EXPECT_EQ(r.report.batch_records[0].admit_cycle, 51000u);
    EXPECT_EQ(r.report.latency.queue_wait_max, 50000u);
}

TEST(Serving, StaticFullBatchNeedsNoTimeout)
{
    StaticBatcher policy(2, 1000000);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({1000, 2000}), policy);
    ASSERT_EQ(r.report.batches, 1);
    // Admitted the moment the second request arrives.
    EXPECT_EQ(r.report.batch_records[0].admit_cycle, 2000u);
}

TEST(Serving, ContinuousOverlapsAndJoinsOnCompletion)
{
    // Three back-to-back requests, one request per batch, two batches
    // in flight: b0 and b1 launch immediately, b2 joins when the first
    // completion frees a slot -- while the other batch is still on the
    // GPU.
    ContinuousBatcher policy(1, 2);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0, 0, 0}), policy);
    EXPECT_EQ(r.report.completed, 3);
    ASSERT_EQ(r.report.batches, 3);
    const std::vector<BatchRecord>& b = r.report.batch_records;
    EXPECT_EQ(b[0].admit_cycle, 0u);
    EXPECT_EQ(b[1].admit_cycle, 0u);
    const uint64_t first_done =
        std::min(b[0].finish_cycle, b[1].finish_cycle);
    EXPECT_EQ(b[2].admit_cycle, first_done);
    EXPECT_LT(b[2].admit_cycle,
              std::max(b[0].finish_cycle, b[1].finish_cycle));
    // Two kernels were concurrently resident at some point.
    int peak = 0;
    for (const OccupancySample& o : r.report.occupancy)
        peak = std::max(peak, o.running);
    EXPECT_GE(peak, 2);
}

TEST(Serving, WedgedPolicyThrows)
{
    // batch > queued and an effectively infinite timeout: the policy
    // can never admit, which must be a loud error, not a hang.
    StaticBatcher policy(4, UINT64_MAX / 2);
    EXPECT_THROW(run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                             at_cycles({0}), policy),
                 ServingError);
}

TEST(Serving, BitIdenticalAcrossSimThreads)
{
    StaticBatcher policy(2, 30000);
    std::vector<Request> trace = poisson_trace(11, 6, 20000.0);
    SimOptions threaded;
    threaded.sim_threads = 4;
    ServingResult serial =
        run_serving(small_gpu(), serial_sim(), tiny_mlp(), trace, policy);
    ServingResult par =
        run_serving(small_gpu(), threaded, tiny_mlp(), trace, policy);
    EXPECT_EQ(serial.totals.cycles, par.totals.cycles);
    EXPECT_EQ(serial.totals.instructions, par.totals.instructions);
    ASSERT_EQ(serial.report.request_records.size(),
              par.report.request_records.size());
    for (size_t i = 0; i < serial.report.request_records.size(); ++i) {
        const RequestRecord& a = serial.report.request_records[i];
        const RequestRecord& b = par.report.request_records[i];
        EXPECT_EQ(a.admit_cycle, b.admit_cycle);
        EXPECT_EQ(a.finish_cycle, b.finish_cycle);
        EXPECT_EQ(a.batch, b.batch);
    }
    EXPECT_EQ(serial.report.latency.latency_p99,
              par.report.latency.latency_p99);
}

TEST(Serving, WedgeErrorCarriesLoopStateSnapshot)
{
    // The wedge diagnostic must say what the loop was looking at:
    // queue depth, in-flight count, and the policy's next deadline.
    StaticBatcher policy(4, UINT64_MAX / 2);
    try {
        run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                    at_cycles({0}), policy);
        FAIL() << "expected ServingError";
    } catch (const ServingError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("[serving state:"), std::string::npos);
        EXPECT_NE(what.find("queued=1"), std::string::npos);
        EXPECT_NE(what.find("in_flight=0"), std::string::npos);
        EXPECT_NE(what.find("policy \"static\""), std::string::npos);
    }
}

// --- Batcher deadline edge cases -------------------------------------

TEST(Serving, StaticTimeoutOfZeroFlushesAtArrival)
{
    // timeout == 0: the deadline IS the arrival cycle.  Each request
    // must flush the moment it arrives, never wait a policy tick.
    StaticBatcher policy(4, 0);
    EXPECT_EQ(policy.next_deadline({1, 700, 0}), 700u);
    EXPECT_EQ(policy.admit(700, {1, 700, 0}), 1);

    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({500}), policy);
    EXPECT_EQ(r.report.completed, 1);
    ASSERT_EQ(r.report.batches, 1);
    EXPECT_EQ(r.report.batch_records[0].admit_cycle, 500u);
    EXPECT_EQ(r.report.latency.queue_wait_max, 0u);
}

TEST(Serving, NoDeadlineWithNonEmptyQueueWakesOnCompletion)
{
    // One batch in flight, one request queued: StaticBatcher reports
    // next_deadline == UINT64_MAX (deadlines apply when idle only).
    // The loop must wake on batch completion, not spin or wedge.
    StaticBatcher policy(1, UINT64_MAX / 2);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0, 0}), policy);
    EXPECT_EQ(r.report.completed, 2);
    ASSERT_EQ(r.report.batches, 2);
    const std::vector<BatchRecord>& b = r.report.batch_records;
    EXPECT_EQ(b[0].admit_cycle, 0u);
    // Admitted exactly when the in-flight batch finished.
    EXPECT_EQ(b[1].admit_cycle, b[0].finish_cycle);
}

TEST(Serving, ContinuousAdmitsAtFinalLayerBoundary)
{
    // In-flight cap reached when the second request arrives: the only
    // remaining decision point of the running batch is its final
    // layer's completion callback, which must admit the latecomer.
    ContinuousBatcher policy(1, 1);
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0, 10}), policy);
    EXPECT_EQ(r.report.completed, 2);
    ASSERT_EQ(r.report.batches, 2);
    const std::vector<BatchRecord>& b = r.report.batch_records;
    EXPECT_EQ(b[1].admit_cycle, b[0].finish_cycle);
}

// --- Resilience: deadlines, shedding, retries ------------------------

TEST(ServingResilience, DeadlineMissAccounting)
{
    StaticBatcher policy(1, 0);
    ServingResilience strict;
    strict.deadline_cycles = 1;  // Nothing finishes this fast.
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0, 1000}), policy, {}, strict);
    EXPECT_TRUE(r.report.resilience);
    EXPECT_EQ(r.report.completed, 2);
    EXPECT_EQ(r.report.deadline_miss, 2);
    EXPECT_DOUBLE_EQ(r.report.goodput, 0.0);
    EXPECT_TRUE(r.report.request_records[0].deadline_missed);

    ServingResilience lax;
    lax.deadline_cycles = UINT64_MAX / 2;
    ServingResult ok = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                   at_cycles({0, 1000}), policy, {}, lax);
    EXPECT_EQ(ok.report.deadline_miss, 0);
    EXPECT_DOUBLE_EQ(ok.report.goodput, 1.0);
}

TEST(ServingResilience, ShedsArrivalsPastQueueDepth)
{
    // Queue cap 2 with five simultaneous arrivals: two join, three are
    // shed at the door; the shed ones never admit and count as missed.
    StaticBatcher policy(4, 40000);
    ServingResilience res;
    res.shed_queue_depth = 2;
    ServingResult r =
        run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                    at_cycles({0, 0, 0, 0, 0}), policy, {}, res);
    EXPECT_EQ(r.report.requests, 5);
    EXPECT_EQ(r.report.completed, 2);
    EXPECT_EQ(r.report.shed, 3);
    EXPECT_EQ(r.report.deadline_miss, 3);  // Shed always miss.
    EXPECT_DOUBLE_EQ(r.report.goodput, 2.0 / 5.0);
    ASSERT_EQ(r.report.batches, 1);
    EXPECT_EQ(r.report.batch_records[0].size, 2);
    int shed = 0;
    for (const RequestRecord& q : r.report.request_records)
        shed += q.shed;
    EXPECT_EQ(shed, 3);
}

TEST(ServingResilience, HangKillRetryCompletes)
{
    // Wavefront b0's first kernel hangs.  The batch timeout kills the
    // batch; the request re-queues after the backoff and its retry
    // wavefront (b1, unmatched by the hang rule) completes.
    FaultSpec faults;
    faults.enabled = true;
    faults.hangs.push_back({"b0.", 1.0, 1});

    StaticBatcher policy(1, 0);
    ServingResilience res;
    res.batch_timeout_cycles = 50000;
    res.max_retries = 2;
    res.retry_backoff_cycles = 1000;
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0}), policy, {}, res, faults);
    EXPECT_TRUE(r.faults_enabled);
    EXPECT_EQ(r.faults.hangs, 1u);
    EXPECT_EQ(r.report.completed, 1);
    EXPECT_EQ(r.report.retries, 1);
    EXPECT_EQ(r.report.killed_batches, 1);
    EXPECT_EQ(r.report.dropped, 0);
    ASSERT_EQ(r.report.batches, 2);
    EXPECT_TRUE(r.report.batch_records[0].killed);
    EXPECT_FALSE(r.report.batch_records[1].killed);
    // Kill at admit + timeout, retry admitted after the backoff.
    EXPECT_EQ(r.report.batch_records[0].finish_cycle, 50000u);
    EXPECT_GE(r.report.batch_records[1].admit_cycle, 51000u);
    const RequestRecord& q = r.report.request_records[0];
    EXPECT_EQ(q.retries, 1);
    EXPECT_EQ(q.batch, 1);
    EXPECT_DOUBLE_EQ(r.report.goodput, 1.0);
}

TEST(ServingResilience, RetryBudgetExhaustionDrops)
{
    // Every wavefront's first-layer kernel hangs (count 0 = all): the
    // original admit and the single permitted retry both die, then the
    // request is dropped and the loop terminates cleanly.
    FaultSpec faults;
    faults.enabled = true;
    faults.hangs.push_back({"fc0", 1.0, 0});

    StaticBatcher policy(1, 0);
    ServingResilience res;
    res.batch_timeout_cycles = 20000;
    res.max_retries = 1;
    res.retry_backoff_cycles = 500;
    ServingResult r = run_serving(small_gpu(), serial_sim(), tiny_mlp(),
                                  at_cycles({0}), policy, {}, res, faults);
    EXPECT_EQ(r.report.completed, 0);
    EXPECT_EQ(r.report.dropped, 1);
    EXPECT_EQ(r.report.retries, 1);
    EXPECT_EQ(r.report.killed_batches, 2);
    EXPECT_EQ(r.report.deadline_miss, 1);
    EXPECT_DOUBLE_EQ(r.report.goodput, 0.0);
    EXPECT_TRUE(r.report.request_records[0].dropped);
}

TEST(ServingResilience, FaultyServingIsBitIdenticalAcrossSimThreads)
{
    FaultSpec faults;
    faults.enabled = true;
    faults.disabled_sms = {0};
    faults.ecc_prob = 0.02;
    faults.ecc_extra_cycles = 60;
    faults.hangs.push_back({"b0.", 1.0, 1});

    StaticBatcher policy(2, 30000);
    ServingResilience res;
    res.deadline_cycles = 400000;
    res.batch_timeout_cycles = 60000;
    res.max_retries = 2;
    res.retry_backoff_cycles = 2000;
    std::vector<Request> trace = poisson_trace(5, 6, 20000.0);

    SimOptions threaded;
    threaded.sim_threads = 4;
    ServingResult serial = run_serving(small_gpu(), serial_sim(),
                                       tiny_mlp(), trace, policy, {}, res,
                                       faults);
    ServingResult par = run_serving(small_gpu(), threaded, tiny_mlp(),
                                    trace, policy, {}, res, faults);
    EXPECT_EQ(serial.report.killed_batches, par.report.killed_batches);
    EXPECT_EQ(serial.report.retries, par.report.retries);
    EXPECT_EQ(serial.report.deadline_miss, par.report.deadline_miss);
    EXPECT_EQ(serial.faults.ecc_retries, par.faults.ecc_retries);
    ASSERT_EQ(serial.report.request_records.size(),
              par.report.request_records.size());
    for (size_t i = 0; i < serial.report.request_records.size(); ++i) {
        const RequestRecord& a = serial.report.request_records[i];
        const RequestRecord& b = par.report.request_records[i];
        EXPECT_EQ(a.admit_cycle, b.admit_cycle);
        EXPECT_EQ(a.finish_cycle, b.finish_cycle);
        EXPECT_EQ(a.retries, b.retries);
        EXPECT_EQ(a.deadline_missed, b.deadline_missed);
    }
}
