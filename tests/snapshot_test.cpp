/**
 * @file
 * Snapshot/restore correctness: a run forked from a Snapshot must be
 * bit-identical — every cycle stamp, memory counter, stall counter and
 * macro-latency sample — to the same run advanced without
 * interruption, for every sim-thread count and both main loops.  Also
 * pins the failure modes (version/config/scheduler mismatch, queued
 * callbacks, idle capture), the reset audit (restoring onto a dirty
 * Gpu equals restoring onto a fresh one), and the sampled-SM
 * fast-forward mode (SimOptions::detailed_sms).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"
#include "sim/snapshot.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

/** Memory-bound config: a tiny L1 keeps MSHRs, NoC/DRAM queues and
 *  MIO retries in flight for most of the run — exactly the state a
 *  snapshot has to carry faithfully. */
GpuConfig
mem_bound_config(int sms)
{
    GpuConfig cfg = small_titan_v(sms);
    cfg.l1_size = 16 * 1024;
    cfg.dram_latency = 400;
    return cfg;
}

void
expect_identical_kernel(const LaunchStats& a, const LaunchStats& b)
{
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.start_cycle, b.start_cycle);
    EXPECT_EQ(a.finish_cycle, b.finish_cycle);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        EXPECT_EQ(a.stalls[r], b.stalls[r])
            << a.kernel << ": " << stall_reason_name(r);
    }
    ASSERT_EQ(a.macro_latency.size(), b.macro_latency.size());
    for (const auto& [mc, ha] : a.macro_latency) {
        auto it = b.macro_latency.find(mc);
        ASSERT_NE(it, b.macro_latency.end());
        EXPECT_EQ(ha.samples(), it->second.samples());
    }
}

void
expect_identical(const EngineStats& a, const EngineStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    // A bounded advance (run_until) ticks at each chunk boundary where
    // an unbounded run idle-skips straight past it, so the tick/skip
    // split is chunking-dependent; the covered-cycle sum is the
    // invariant.
    EXPECT_EQ(a.ticks + a.skipped_cycles, b.ticks + b.skipped_cycles);
    EXPECT_EQ(a.current_cycle, b.current_cycle);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    EXPECT_EQ(a.mem.l2_hits, b.mem.l2_hits);
    EXPECT_EQ(a.mem.l2_misses, b.mem.l2_misses);
    EXPECT_EQ(a.mem.dram_bytes, b.mem.dram_bytes);
    EXPECT_EQ(a.mem.global_sectors, b.mem.global_sectors);
    EXPECT_EQ(a.mem.mshr_merges, b.mem.mshr_merges);
    EXPECT_EQ(a.mem.mshr_peak, b.mem.mshr_peak);
    EXPECT_EQ(a.mem.noc_queue_cycles, b.mem.noc_queue_cycles);
    EXPECT_EQ(a.mem.l2_queue_cycles, b.mem.l2_queue_cycles);
    EXPECT_EQ(a.mem.dram_queue_cycles, b.mem.dram_queue_cycles);
    EXPECT_EQ(a.mem.dram_turnarounds, b.mem.dram_turnarounds);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        EXPECT_EQ(a.stalls[r], b.stalls[r]) << stall_reason_name(r);
    }
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (size_t k = 0; k < a.kernels.size(); ++k)
        expect_identical_kernel(a.kernels[k], b.kernels[k]);
}

GemmBuffers
alloc_gemm_buffers(Gpu& gpu, int mnk)
{
    uint64_t n = static_cast<uint64_t>(mnk);
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(n * n * 2);
    buf.b = gpu.mem().alloc(n * n * 2);
    buf.c = gpu.mem().alloc(n * n * 4);
    buf.d = gpu.mem().alloc(n * n * 4);
    return buf;
}

/** Enqueue one timing-only naive GEMM on the default stream. */
void
enqueue_gemm(Gpu& gpu, int mnk, const std::string& name = "")
{
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = mnk;
    kc.functional = false;
    KernelDesc k = make_wmma_gemm_naive(kc, alloc_gemm_buffers(gpu, mnk));
    if (!name.empty())
        k.name = name;
    gpu.default_stream().enqueue(std::move(k));
}

/** Two timing-only GEMMs on two streams gated by an event (a
 *  producer/consumer DAG).  Returns the gating event. */
Event&
enqueue_event_dag(Gpu& gpu, int mnk)
{
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = mnk;
    kc.functional = false;
    auto alloc = [&] {
        GemmBuffers buf;
        buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
        buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
        buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
        buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
        return buf;
    };
    Stream& s1 = gpu.default_stream();
    Stream& s2 = gpu.create_stream();
    Event& e = gpu.create_event("producer_done");
    KernelDesc k1 = make_wmma_gemm_naive(kc, alloc());
    k1.name = "producer";
    s1.enqueue(std::move(k1));
    s1.record(e);
    s2.wait(e);
    KernelDesc k2 = make_wmma_gemm_naive(kc, alloc());
    k2.name = "consumer";
    s2.enqueue(std::move(k2));
    return e;
}

/** Run the single-GEMM workload cold (uninterrupted) with @p opts. */
EngineStats
cold_gemm(const GpuConfig& cfg, const SimOptions& opts, int mnk)
{
    Gpu gpu(cfg, opts);
    enqueue_gemm(gpu, mnk);
    return gpu.run();
}

TEST(Snapshot, ForkedRunMatchesColdRun)
{
    GpuConfig cfg = mem_bound_config(8);
    for (bool idle_skip : {true, false}) {
        SCOPED_TRACE("idle_skip=" + std::to_string(idle_skip));
        SimOptions opts;
        opts.idle_skip = idle_skip;
        EngineStats base = cold_gemm(cfg, opts, 128);

        // Capture mid-kernel, then finish both the capturing Gpu and
        // a fresh Gpu restored from the snapshot.
        Gpu gpu(cfg, opts);
        enqueue_gemm(gpu, 128);
        gpu.run_until(base.cycles / 2);
        ASSERT_TRUE(gpu.run_active());
        Snapshot snap = gpu.snapshot();
        EXPECT_GT(snap.size_bytes(), 0u);

        expect_identical(base, gpu.run());

        Gpu fork(cfg, opts);
        fork.restore(snap);
        ASSERT_TRUE(fork.run_active());
        expect_identical(base, fork.run());
    }
}

TEST(Snapshot, ForkRunsIdenticallyAtEveryThreadCount)
{
    // A snapshot captured by a serial run must resume bit-identically
    // under the parallel tick (and vice versa): SimOptions other than
    // the scheduler are free to differ between capture and restore.
    GpuConfig cfg = mem_bound_config(8);
    SimOptions serial;
    EngineStats base = cold_gemm(cfg, serial, 128);

    Gpu gpu(cfg, serial);
    enqueue_gemm(gpu, 128);
    gpu.run_until(base.cycles / 2);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    for (int threads : {2, 4}) {
        SCOPED_TRACE("sim_threads=" + std::to_string(threads));
        SimOptions par = serial;
        par.sim_threads = threads;
        Gpu fork(cfg, par);
        fork.restore(snap);
        expect_identical(base, fork.run());
    }
}

TEST(Snapshot, DoubleRestoreFromOneSnapshot)
{
    // One snapshot feeds many forks (the sweep runner's pattern); the
    // global-memory blob is shared copy-on-write, not duplicated.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    EngineStats base = cold_gemm(cfg, opts, 64);

    Gpu gpu(cfg, opts);
    enqueue_gemm(gpu, 64);
    gpu.run_until(base.cycles / 2);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();
    Snapshot copy = snap;
    EXPECT_EQ(copy.gmem_data.get(), snap.gmem_data.get());

    Gpu fork1(cfg, opts);
    fork1.restore(snap);
    Gpu fork2(cfg, opts);
    fork2.restore(copy);
    expect_identical(base, fork1.run());
    expect_identical(base, fork2.run());
}

TEST(Snapshot, InPlaceRewindAcrossEventBoundary)
{
    // Restoring onto the capturing Gpu rewinds it: rerunning the tail
    // reproduces the identical result, including the event stamp.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    Gpu gpu(cfg, opts);
    Event& e = enqueue_event_dag(gpu, 64);

    // Pause exactly when the producer's record completes, snapshot,
    // then finish; rewind and finish again.
    gpu.synchronize(e);
    ASSERT_TRUE(gpu.run_active());
    ASSERT_TRUE(e.complete());
    uint64_t event_cycle = e.cycle();
    Snapshot snap = gpu.snapshot();

    EngineStats first = gpu.run();
    ASSERT_EQ(first.kernels.size(), 2u);

    gpu.restore(snap);
    ASSERT_TRUE(gpu.run_active());
    EXPECT_TRUE(e.complete());
    EXPECT_EQ(e.cycle(), event_cycle);
    EngineStats second = gpu.run();
    expect_identical(first, second);
    EXPECT_EQ(e.cycle(), event_cycle);
}

TEST(Snapshot, EventBoundaryForkOntoFreshGpu)
{
    // Fork at the event boundary: the fresh Gpu recreates the streams
    // and events from the archive and finishes identically to an
    // uninterrupted run.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    EngineStats base = [&] {
        Gpu gpu(cfg, opts);
        enqueue_event_dag(gpu, 64);
        return gpu.run();
    }();

    Gpu gpu(cfg, opts);
    Event& e = enqueue_event_dag(gpu, 64);
    gpu.synchronize(e);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    Gpu fork(cfg, opts);
    fork.restore(snap);
    expect_identical(base, fork.run());
}

TEST(Snapshot, FunctionalKernelsForkWithMemoryContents)
{
    // Functional kernels carry real data through global memory; the
    // snapshot's copy-on-write image must hand the fork bytes that let
    // the consumer produce a verifiable result.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 64;
    kc.functional = true;

    auto build = [&](Gpu& gpu, GemmProblem<float>& p1,
                     GemmProblem<float>& p2, GemmBuffers* b1,
                     GemmBuffers* b2) {
        *b1 = p1.upload(&gpu.mem());
        *b2 = p2.upload(&gpu.mem());
        Stream& s1 = gpu.default_stream();
        Stream& s2 = gpu.create_stream();
        Event& e = gpu.create_event("producer_done");
        KernelDesc k1 = make_wmma_gemm_naive(kc, *b1);
        k1.name = "producer";
        s1.enqueue(std::move(k1));
        s1.record(e);
        s2.wait(e);
        KernelDesc k2 = make_wmma_gemm_naive(kc, *b2);
        k2.name = "consumer";
        s2.enqueue(std::move(k2));
    };

    GemmProblem<float> p1(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmProblem<float> p2(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);

    EngineStats base = [&] {
        Gpu gpu(cfg, opts);
        GemmBuffers b1, b2;
        build(gpu, p1, p2, &b1, &b2);
        return gpu.run();
    }();

    Gpu gpu(cfg, opts);
    GemmBuffers b1, b2;
    build(gpu, p1, p2, &b1, &b2);
    gpu.run_until(base.cycles / 2);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    Gpu fork(cfg, opts);
    fork.restore(snap);
    expect_identical(base, fork.run());
    EXPECT_LE(p1.verify(fork.mem(), b1.d), 1e-3);
    EXPECT_LE(p2.verify(fork.mem(), b2.d), 1e-3);

    // The capturing Gpu was never advanced past the fork point by the
    // fork's run: finishing it still verifies too.
    expect_identical(base, gpu.run());
    EXPECT_LE(p1.verify(gpu.mem(), b1.d), 1e-3);
}

TEST(Snapshot, RestoreOntoDirtyGpuEqualsFreshRestore)
{
    // The reset audit: load_state must fully overwrite cache arrays,
    // MSHR files, queue rings and DRAM state left behind by an earlier
    // completed run — a dirty Gpu and a fresh Gpu restore identically.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    EngineStats base = cold_gemm(cfg, opts, 64);

    Gpu gpu(cfg, opts);
    enqueue_gemm(gpu, 64);
    gpu.run_until(base.cycles / 2);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    Gpu fresh(cfg, opts);
    fresh.restore(snap);

    Gpu dirty(cfg, opts);
    enqueue_gemm(dirty, 96, "warmup");  // Different footprint on purpose.
    dirty.run();
    dirty.restore(snap);

    EngineStats a = fresh.run();
    EngineStats b = dirty.run();
    expect_identical(base, a);
    expect_identical(base, b);
}

TEST(Snapshot, ReusedGpuSecondRunEqualsFreshRun)
{
    // Companion reset audit without snapshots: run boundaries reset
    // all timing state, so a reused Gpu replays a workload exactly
    // like a fresh one.
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    Gpu reused(cfg, opts);
    enqueue_gemm(reused, 64);
    reused.run();
    enqueue_gemm(reused, 64);
    EngineStats second = reused.run();

    // Give the fresh Gpu the same address layout: pad with the first
    // run's allocations, enqueue only the replay.
    Gpu fresh(cfg, opts);
    (void)alloc_gemm_buffers(fresh, 64);
    enqueue_gemm(fresh, 64);
    expect_identical(second, fresh.run());
}

TEST(Snapshot, CaptureRequiresActiveRun)
{
    Gpu idle(mem_bound_config(2));
    EXPECT_THROW(idle.snapshot(), SnapshotError);

    Gpu done(mem_bound_config(2));
    enqueue_gemm(done, 64);
    done.run();
    EXPECT_THROW(done.snapshot(), SnapshotError);
}

TEST(Snapshot, QueuedHostCallbackRefused)
{
    Gpu gpu(mem_bound_config(2));
    enqueue_gemm(gpu, 64);
    gpu.default_stream().add_callback([](uint64_t) {});
    gpu.run_until(16);
    ASSERT_TRUE(gpu.run_active());
    EXPECT_THROW(gpu.snapshot(), SnapshotError);
    gpu.run();  // Drain so teardown is clean.
}

TEST(Snapshot, MismatchesRejectedBeforeMutation)
{
    GpuConfig cfg = mem_bound_config(4);
    SimOptions opts;
    EngineStats base = cold_gemm(cfg, opts, 64);

    Gpu gpu(cfg, opts);
    enqueue_gemm(gpu, 64);
    gpu.run_until(base.cycles / 2);
    Snapshot snap = gpu.snapshot();

    // Empty snapshot.
    Gpu target(cfg, opts);
    EXPECT_THROW(target.restore(Snapshot{}), SnapshotError);

    // Format version.
    Snapshot bad_version = snap;
    bad_version.version = kSnapshotVersion + 1;
    EXPECT_THROW(target.restore(bad_version), SnapshotError);

    // GpuConfig.
    Gpu other_config(mem_bound_config(8), opts);
    EXPECT_THROW(other_config.restore(snap), SnapshotError);

    // Scheduler policy (baked into sub-cores at construction).
    SimOptions lrr = opts;
    lrr.scheduler = SchedulerPolicy::kLrr;
    Gpu other_sched(cfg, lrr);
    EXPECT_THROW(other_sched.restore(snap), SnapshotError);

    // All rejections happen before mutation: the pristine target
    // still restores and runs identically afterwards.
    target.restore(snap);
    expect_identical(base, target.run());
}

TEST(SampledSms, ApproximatesFullRunAndExtrapolatesCounts)
{
    // 32 CTAs on 8 SMs, only 2 simulated in detail: shadows must take
    // real work (less detailed memory traffic), instruction totals
    // extrapolate exactly for a homogeneous grid, and total cycles
    // stay within a loose factor of the full-detail run.
    GpuConfig cfg = small_titan_v(8);
    SimOptions full;
    EngineStats detailed = cold_gemm(cfg, full, 256);

    SimOptions sampled = full;
    sampled.detailed_sms = 2;
    EngineStats approx = cold_gemm(cfg, sampled, 256);

    EXPECT_LT(approx.mem.global_sectors, detailed.mem.global_sectors);
    EXPECT_EQ(approx.instructions, detailed.instructions);
    EXPECT_EQ(approx.hmma_instructions, detailed.hmma_instructions);

    double err =
        std::abs(static_cast<double>(approx.cycles) -
                 static_cast<double>(detailed.cycles)) /
        static_cast<double>(detailed.cycles);
    EXPECT_LE(err, 0.25) << "sampled cycles " << approx.cycles
                         << " vs full " << detailed.cycles;
}

TEST(SampledSms, DeterministicAndSnapshotable)
{
    // Sampled mode is still deterministic (same options -> identical
    // stats) and its shadow state snapshots/restores faithfully.
    GpuConfig cfg = small_titan_v(8);
    SimOptions opts;
    opts.detailed_sms = 2;
    EngineStats base = cold_gemm(cfg, opts, 256);
    expect_identical(base, cold_gemm(cfg, opts, 256));

    Gpu gpu(cfg, opts);
    enqueue_gemm(gpu, 256);
    gpu.run_until(base.cycles / 2);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    Gpu fork(cfg, opts);
    fork.restore(snap);
    expect_identical(base, fork.run());
}

TEST(SampledSms, RejectsFunctionalKernels)
{
    Gpu gpu(small_titan_v(4), [] {
        SimOptions opts;
        opts.detailed_sms = 1;
        return opts;
    }());
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 64;
    kc.functional = true;
    GemmProblem<float> p(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmBuffers buf = p.upload(&gpu.mem());
    gpu.default_stream().enqueue(make_wmma_gemm_naive(kc, buf));
    EXPECT_THROW(gpu.run(), std::runtime_error);
}

}  // namespace
}  // namespace tcsim
