/**
 * @file
 * Unit tests for the SM pipeline components: scoreboard hazards,
 * scheduler policies, execution units, tensor core unit cadence, and
 * the measured HMMA timing tables.
 */

#include <gtest/gtest.h>

#include "sass/hmma_decomposer.h"
#include "sass/hmma_timing.h"
#include "sim/core/exec_unit.h"
#include "sim/core/scheduler.h"
#include "sim/core/scoreboard.h"
#include "sim/tc/tensor_core_unit.h"

namespace tcsim {
namespace {

Instruction
alu(uint8_t dst, uint8_t s0, uint8_t s1)
{
    Instruction inst;
    inst.op = Opcode::kFadd;
    inst.n_dst = 1;
    inst.dst[0] = dst;
    inst.n_src = 2;
    inst.src[0] = s0;
    inst.src[1] = s1;
    return inst;
}

TEST(Scoreboard, RawHazardBlocks)
{
    Scoreboard sb(1);
    Instruction producer = alu(10, 1, 2);
    Instruction consumer = alu(11, 10, 3);
    EXPECT_TRUE(sb.can_issue(0, producer));
    sb.issue(0, producer);
    EXPECT_FALSE(sb.can_issue(0, consumer));  // RAW on R10
    sb.complete(0, producer);
    EXPECT_TRUE(sb.can_issue(0, consumer));
}

TEST(Scoreboard, WawHazardBlocks)
{
    Scoreboard sb(1);
    Instruction first = alu(10, 1, 2);
    Instruction second = alu(10, 3, 4);
    sb.issue(0, first);
    EXPECT_FALSE(sb.can_issue(0, second));  // WAW on R10
}

TEST(Scoreboard, IndependentWarps)
{
    Scoreboard sb(2);
    Instruction inst = alu(10, 1, 2);
    sb.issue(0, inst);
    EXPECT_TRUE(sb.can_issue(1, inst));  // different warp, no hazard
}

TEST(Scoreboard, LoadMarksFullWidth)
{
    Scoreboard sb(1);
    Instruction load;
    load.op = Opcode::kLdg;
    load.width_bits = 128;  // writes R8..R11
    load.n_dst = 1;
    load.dst[0] = 8;
    sb.issue(0, load);
    EXPECT_TRUE(sb.reg_pending(0, 8));
    EXPECT_TRUE(sb.reg_pending(0, 11));
    EXPECT_FALSE(sb.reg_pending(0, 12));
    Instruction use = alu(20, 11, 1);
    EXPECT_FALSE(sb.can_issue(0, use));
    sb.complete(0, load);
    EXPECT_TRUE(sb.can_issue(0, use));
}

TEST(Scoreboard, HmmaGroupSemantics)
{
    // The group head checks/marks all fragments; intra-group HMMAs
    // bypass; only the tail releases the D registers.
    Scoreboard sb(1);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    EXPECT_TRUE(sb.can_issue(0, group.front()));
    sb.issue(0, group.front());
    EXPECT_TRUE(sb.reg_pending(0, 4));
    EXPECT_TRUE(sb.reg_pending(0, 11));  // D fragment spans 8 registers
    // Mid-group HMMAs bypass hazard checks.
    EXPECT_TRUE(sb.can_issue(0, group[5]));
    // An unrelated consumer of D is blocked.
    Instruction use = alu(40, 4, 1);
    EXPECT_FALSE(sb.can_issue(0, use));
    // Completion of a mid-group HMMA does not release.
    sb.complete(0, group[5]);
    EXPECT_FALSE(sb.can_issue(0, use));
    // Tail completion releases.
    sb.complete(0, group.back());
    EXPECT_TRUE(sb.can_issue(0, use));
}

TEST(Scheduler, GtoPrefersLastIssued)
{
    WarpScheduler s(SchedulerPolicy::kGto);
    std::vector<int> order;
    s.order(4, &order);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    s.issued(2);
    s.order(4, &order);
    EXPECT_EQ(order.front(), 2);
}

TEST(Scheduler, LrrRotates)
{
    WarpScheduler s(SchedulerPolicy::kLrr);
    std::vector<int> order;
    s.issued(0);
    s.order(4, &order);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(ExecUnit, InitiationInterval)
{
    ExecUnit u(2, 4);
    EXPECT_TRUE(u.ready(0));
    EXPECT_EQ(u.issue(0), 4u);
    EXPECT_FALSE(u.ready(1));
    EXPECT_TRUE(u.ready(2));
}

TEST(HmmaTimingTables, VoltaFig9)
{
    auto mixed = volta_cumulative_cycles(TcMode::kMixed);
    ASSERT_EQ(mixed.size(), 16u);
    EXPECT_EQ(mixed.front(), 10);
    EXPECT_EQ(mixed.back(), 54);  // Fig 9a total latency
    auto fp16 = volta_cumulative_cycles(TcMode::kFp16);
    ASSERT_EQ(fp16.size(), 8u);
    EXPECT_EQ(fp16.back(), 64);  // Fig 9b total latency
    // "The latency of wmma.mma API in mixed precision mode is ten
    //  cycles lower than in FP16 mode."
    EXPECT_EQ(fp16.back() - mixed.back(), 10);
}

TEST(HmmaTimingTables, TuringTable1)
{
    // Spot-check Table I values.
    EXPECT_EQ(turing_set_cumulative_cycles(TcMode::kMixed, kShape16x16x16),
              (std::vector<int>{42, 56, 78, 99}));
    EXPECT_EQ(turing_set_cumulative_cycles(TcMode::kFp16, kShape16x16x16),
              (std::vector<int>{44, 52, 60, 74}));
    EXPECT_EQ(turing_set_cumulative_cycles(TcMode::kInt8, kShape8x32x16),
              (std::vector<int>{38, 42, 46, 56}));
    EXPECT_EQ(turing_set_cumulative_cycles(TcMode::kInt4, kShape8x8x32),
              (std::vector<int>{230}));
}

TEST(HmmaTimingTables, TuringSlowerThanVolta)
{
    // "the latency of wmma.mma in mixed precision mode on Turing, 99
    //  cycles, is more than on Volta, 54 cycles".
    EXPECT_GT(hmma_timing(Arch::kTuring, TcMode::kMixed, kShape16x16x16)
                  .group_latency(),
              hmma_timing(Arch::kVolta, TcMode::kMixed, kShape16x16x16)
                  .group_latency());
}

TEST(HmmaTimingTables, ThroughputParity)
{
    // FP16 and mixed precision sustain the same FLOP rate: equal
    // occupancy per group (Section V-C measured 109.6 vs 108.7
    // TFLOPS).
    auto& mixed = hmma_timing(Arch::kVolta, TcMode::kMixed, kShape16x16x16);
    auto& fp16 = hmma_timing(Arch::kVolta, TcMode::kFp16, kShape16x16x16);
    EXPECT_EQ(mixed.group_occupancy(), fp16.group_occupancy());
}

TEST(TensorCoreUnit, GroupCadence)
{
    TensorCoreUnit tc(Arch::kVolta);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    auto expected = volta_cumulative_cycles(TcMode::kMixed);

    uint64_t now = 100;
    for (size_t i = 0; i < group.size(); ++i) {
        // The cadence gate: issue attempts before the interval fail.
        if (i > 0)
            EXPECT_FALSE(tc.try_issue(0, group[i], now - 1).has_value());
        auto done = tc.try_issue(0, group[i], now);
        ASSERT_TRUE(done.has_value()) << i;
        EXPECT_EQ(*done, 100u + static_cast<uint64_t>(expected[i])) << i;
        now += 2;
    }
    EXPECT_FALSE(tc.group_active());
}

TEST(TensorCoreUnit, RejectsOtherWarpMidGroup)
{
    TensorCoreUnit tc(Arch::kVolta);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    ASSERT_TRUE(tc.try_issue(0, group[0], 0).has_value());
    // Warp 1 tries to start a group while warp 0's is active.
    EXPECT_FALSE(tc.try_issue(1, group[0], 2).has_value());
    // Warp 0 continues.
    EXPECT_TRUE(tc.try_issue(0, group[1], 2).has_value());
}

TEST(TensorCoreUnit, BackToBackGroupsRespectOccupancy)
{
    TensorCoreUnit tc(Arch::kVolta);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    uint64_t now = 0;
    for (size_t i = 0; i < group.size(); ++i, now += 2)
        ASSERT_TRUE(tc.try_issue(0, group[i], now).has_value());
    // Next group head may start at the 32-cycle occupancy boundary
    // (16 HMMAs x II 2) plus the inter-group issue gap.
    uint64_t boundary = 32 + TensorCoreUnit::kInterGroupGap;
    EXPECT_FALSE(tc.try_issue(1, group[0], boundary - 1).has_value());
    EXPECT_TRUE(tc.try_issue(1, group[0], boundary).has_value());
    EXPECT_EQ(tc.groups_issued(), 1u);
}

TEST(TensorCoreUnit, SingleHmmaGroupInt4)
{
    TensorCoreUnit tc(Arch::kTuring);
    WmmaRegs regs{.a = 20, .b = 22, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kTuring, TcMode::kInt4,
                                    kShape8x8x32, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    ASSERT_EQ(group.size(), 1u);
    auto done = tc.try_issue(0, group[0], 0);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done, 230u);  // Table I 4-bit latency
    EXPECT_FALSE(tc.group_active());
}

}  // namespace
}  // namespace tcsim
