/**
 * @file
 * Pins the deterministic RNG (src/common/rng.h) to the bit.  The
 * serving simulator's Poisson arrival traces, and therefore every
 * committed serving scenario band and BENCH_serving baseline, depend
 * on these exact sequences — a failure here means those artifacts
 * must be regenerated in the same commit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace tcsim {
namespace {

// First 64 draws of Pcg32(42, 0) — PCG-XSH-RR 64/32 reference output.
const uint32_t kPcg32Seed42[64] = {
    0x21b756eeu, 0xc15ef750u, 0x9548a9bdu, 0x35db428du,
    0xf0071649u, 0xa243807fu, 0xb4c5bdd2u, 0x103ca9d2u,
    0x46728146u, 0x01359d10u, 0x3040341eu, 0x81057f59u,
    0x517d3f81u, 0x24eb7d97u, 0x1578335eu, 0x3644b315u,
    0xac5282a6u, 0xa998ea37u, 0xa60b4379u, 0xab5cd024u,
    0xa1f07a0du, 0x47c356c1u, 0xd5d13056u, 0x09d37c77u,
    0x1ff9aeb4u, 0xb380fd77u, 0xf39bf093u, 0x85d1f46bu,
    0x48e7a787u, 0x4566ca48u, 0x4932b86eu, 0x12a6b721u,
    0xd3c2d309u, 0x3ac2c42fu, 0xce423f48u, 0x1f657e92u,
    0xb36fdf40u, 0x79dab9d4u, 0x070b713du, 0xecfb2412u,
    0x38a72b3bu, 0x5e75bfb2u, 0x9d512595u, 0xfb6e1e23u,
    0x2e233ef5u, 0x793d9afdu, 0xf44e00bau, 0xd6fd5d22u,
    0x6c591f8fu, 0x6311275au, 0xf4334c98u, 0x405bf7e9u,
    0xf6e0fb5eu, 0xb95ab530u, 0xfb6bfdd1u, 0x0119e509u,
    0x2b4a945au, 0x9420a60bu, 0xa8c67086u, 0xfd969c2fu,
    0x80a49fafu, 0xcd550523u, 0xb62ff2feu, 0x784a2d0eu,
};

// First 8 draws of splitmix64 from state 12345.
const uint64_t kSplitMixSeed12345[8] = {
    0x22118258a9d111a0ull, 0x346edce5f713f8edull,
    0x1e9a57bc80e6721dull, 0x2d160e7e5c3f42caull,
    0x81c2e6dc980d78ebull, 0x5647e55ad933f62eull,
    0x1f6622b40cb38e42ull, 0x6e7411b06820371cull,
};

TEST(Rng, Pcg32First64DrawsPinned)
{
    Pcg32 rng(42, 0);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(rng.next_u32(), kPcg32Seed42[i]) << "draw " << i;
}

TEST(Rng, SplitMix64First8DrawsPinned)
{
    SplitMix64 rng(12345);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rng.next(), kSplitMixSeed12345[i]) << "draw " << i;
}

TEST(Rng, StreamsAreIndependent)
{
    Pcg32 s0(42, 0);
    Pcg32 s1(42, 1);
    // Same seed, different stream: disjoint sequences.
    EXPECT_EQ(s1.next_u32(), 0x4df1ccf9u);
    EXPECT_NE(s0.next_u32(), 0x4df1ccf9u);
    // And reproducible: a fresh generator replays the stream.
    Pcg32 s1b(42, 1);
    s1b.next_u32();
    EXPECT_EQ(s1b.next_u32(), 0xe5838752u);
}

TEST(Rng, UniformStaysInHalfOpenUnitInterval)
{
    Pcg32 rng(7, 3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ExponentialIsPositiveWithRoughlyCorrectMean)
{
    Pcg32 rng(99, 0);
    const double mean = 250.0;
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
        const double x = rng.exponential(mean);
        ASSERT_GE(x, 0.0);
        ASSERT_TRUE(std::isfinite(x));
        sum += x;
    }
    // 20k draws of an exponential: sample mean within a few percent.
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05);
}

TEST(Rng, Next64CombinesTwoDraws)
{
    Pcg32 a(42, 0);
    Pcg32 b(42, 0);
    const uint64_t hi = b.next_u32();
    const uint64_t lo = b.next_u32();
    EXPECT_EQ(a.next_u64(), (hi << 32) | lo);
}

}  // namespace
}  // namespace tcsim
