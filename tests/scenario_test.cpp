/**
 * @file
 * Scenario driver unit tests: the JSON parser (malformed input, escape
 * handling, error positions), the strict scenario schema (unknown
 * keys, invalid values), assertion evaluation on real runs, and the
 * bench JsonEmitter round-tripping through the driver parser.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "driver/json.h"
#include "driver/runner.h"
#include "driver/scenario.h"

using namespace tcsim;
using namespace tcsim::driver;

// ---- JSON parser --------------------------------------------------------

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(json_parse("null").is_null());
    EXPECT_EQ(json_parse("true").as_bool(), true);
    EXPECT_EQ(json_parse("false").as_bool(), false);
    EXPECT_DOUBLE_EQ(json_parse("-2.5e3").as_number(), -2500.0);
    EXPECT_EQ(json_parse("42").as_int(), 42);
    EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested)
{
    JsonValue v = json_parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})");
    ASSERT_TRUE(v.is_object());
    const JsonValue* a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->as_array().size(), 3u);
    EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
    EXPECT_TRUE(v.find("d")->as_object().empty());
}

TEST(Json, AllowsLineComments)
{
    JsonValue v = json_parse("{\n  // a comment\n  \"a\": 1\n}");
    EXPECT_EQ(v.find("a")->as_int(), 1);
}

TEST(Json, EscapeRoundTrips)
{
    std::string nasty = "quote\" back\\slash\nnew\ttab\x01ctl";
    JsonValue obj = JsonValue::object();
    obj.set(nasty, JsonValue(nasty));
    JsonValue parsed = json_parse(obj.dump());
    EXPECT_EQ(parsed.find(nasty)->as_string(), nasty);
}

TEST(Json, RejectsMalformedWithPosition)
{
    EXPECT_THROW(json_parse(""), JsonError);
    EXPECT_THROW(json_parse("{"), JsonError);
    EXPECT_THROW(json_parse("{\"a\": 1,}"), JsonError);
    EXPECT_THROW(json_parse("[1 2]"), JsonError);
    EXPECT_THROW(json_parse("\"unterminated"), JsonError);
    EXPECT_THROW(json_parse("nul"), JsonError);
    EXPECT_THROW(json_parse("1.e5"), JsonError);
    EXPECT_THROW(json_parse("0123"), JsonError);
    EXPECT_THROW(json_parse("-0123"), JsonError);
    EXPECT_THROW(json_parse("1e999"), JsonError);
    EXPECT_DOUBLE_EQ(json_parse("0.5").as_number(), 0.5);
    EXPECT_EQ(json_parse("0").as_int(), 0);
    EXPECT_THROW(json_parse("{} trailing"), JsonError);
    EXPECT_THROW(json_parse(R"({"a": 1, "a": 2})"), JsonError);
    try {
        json_parse("{\n  \"a\": tru\n}");
        FAIL() << "expected JsonError";
    } catch (const JsonError& e) {
        EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
            << e.what();
    }
}

TEST(Json, TypeMismatchThrows)
{
    JsonValue v = json_parse("[1]");
    EXPECT_THROW(v.as_object(), JsonError);
    EXPECT_THROW(v.as_string(), JsonError);
    EXPECT_THROW(json_parse("1.5").as_int(), JsonError);
}

// ---- Scenario schema ----------------------------------------------------

namespace {

const char* kMinimalScenario = R"({
  "name": "tiny",
  "gpu": {"preset": "titan_v", "num_sms": 1},
  "kernels": [
    {"kernel": "wmma_naive", "name": "g", "m": 16, "n": 16, "k": 16,
     "warps_per_cta": 1}
  ]
})";

}  // namespace

TEST(Scenario, ParsesMinimal)
{
    Scenario sc = parse_scenario_text(kMinimalScenario);
    EXPECT_EQ(sc.name, "tiny");
    EXPECT_EQ(sc.kernels.size(), 1u);
    EXPECT_EQ(sc.kernels[0].family, "wmma_naive");
    EXPECT_EQ(sc.kernels[0].stream, 0);
    EXPECT_FALSE(sc.kernels[0].functional);
    EXPECT_EQ(sc.gpu_config().num_sms, 1);
    EXPECT_EQ(sc.sim.scheduler, SchedulerPolicy::kGto);
}

TEST(Scenario, DefaultsKernelName)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress"}]
    })");
    EXPECT_EQ(sc.kernels[0].name, "hmma_stress_0");
}

TEST(Scenario, AppliesGpuOverrides)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "s",
      "gpu": {"preset": "rtx2080", "num_sms": 4, "clock_ghz": 2.0,
              "l1_size": 65536},
      "kernels": [{"kernel": "hmma_stress"}]
    })");
    GpuConfig cfg = sc.gpu_config();
    EXPECT_EQ(cfg.arch, Arch::kTuring);
    EXPECT_EQ(cfg.num_sms, 4);
    EXPECT_DOUBLE_EQ(cfg.clock_ghz, 2.0);
    EXPECT_EQ(cfg.l1_size, 65536u);
}

TEST(Scenario, RejectsInapplicableKernelKeys)
{
    // warps_per_cta is fixed by every family except wmma_naive.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_shared", "warps_per_cta": 4}]
    })"),
                 ScenarioError);
    // hmma_stress knobs are meaningless on GEMM families...
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_naive", "ctas": 4}]
    })"),
                 ScenarioError);
    // ...and GEMM shape/layout keys on hmma_stress.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "m": 64}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "functional": false}]
    })"),
                 ScenarioError);
}

TEST(Scenario, RejectsFractionalIntegerOverrides)
{
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "gpu": {"num_sms": 0.9},
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "gpu": {"max_warps_per_sm": 2.5},
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
    // Genuinely fractional fields stay fractional.
    Scenario sc = parse_scenario_text(R"({
      "name": "s", "gpu": {"clock_ghz": 1.47},
      "kernels": [{"kernel": "hmma_stress"}]
    })");
    EXPECT_DOUBLE_EQ(sc.gpu_config().clock_ghz, 1.47);
}

TEST(Scenario, RejectsUnknownKeys)
{
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "typo_key": 1,
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "warp_count": 4}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "gpu": {"sm_count": 4},
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "sim": {"policy": "gto"},
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
}

TEST(Scenario, RejectsInvalidValues)
{
    // Missing name.
    EXPECT_THROW(
        parse_scenario_text(R"({"kernels": [{"kernel": "hmma_stress"}]})"),
        ScenarioError);
    // Missing / empty kernels.
    EXPECT_THROW(parse_scenario_text(R"({"name": "s"})"), ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({"name": "s", "kernels": []})"),
                 ScenarioError);
    // Unknown kernel family.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "dgemm"}]
    })"),
                 ScenarioError);
    // Bad enum strings.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_shared", "mode": "fp64"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_shared", "a_layout": "rowmajor"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "sim": {"scheduler": "fifo"},
      "kernels": [{"kernel": "hmma_stress"}]
    })"),
                 ScenarioError);
    // CTA tile divisibility.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_shared", "m": 96, "n": 64, "k": 16}]
    })"),
                 ScenarioError);
    // Duplicate kernel names.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "name": "k"},
                  {"kernel": "hmma_stress", "name": "k"}]
    })"),
                 ScenarioError);
    // The SIMT baselines and hmma_stress are timing-only.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "sgemm_ffma", "functional": true}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hgemm_hfma2", "functional": true}]
    })"),
                 ScenarioError);
    // int8 needs the Turing preset; int4 has no registered family.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "mode": "int8"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "gpu": {"preset": "rtx2080"},
      "kernels": [{"kernel": "hmma_stress", "mode": "int4"}]
    })"),
                 ScenarioError);
}

TEST(Scenario, RejectsBadExpectations)
{
    // Unknown kernel reference.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "hmma_stress", "name": "k"}],
      "expect": [{"metric": "kernel.other.cycles", "min": 1}]
    })"),
                 ScenarioError);
    // verify.* without a functional kernel.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "hmma_stress"}],
      "expect": [{"metric": "verify.max_rel_err", "max": 0.1}]
    })"),
                 ScenarioError);
    // kernel.<name>.verify_rel_err on a timing-only kernel would pass
    // vacuously against the -1 sentinel; rejected at parse time.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "wmma_naive", "name": "g"}],
      "expect": [{"metric": "kernel.g.verify_rel_err", "max": 0.01}]
    })"),
                 ScenarioError);
    // No bound at all / contradictory bounds.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "hmma_stress"}],
      "expect": [{"metric": "total.cycles"}]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "hmma_stress"}],
      "expect": [{"metric": "total.cycles", "equals": 5, "min": 1}]
    })"),
                 ScenarioError);
    // Bad metric prefix.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s", "kernels": [{"kernel": "hmma_stress"}],
      "expect": [{"metric": "cycles", "min": 1}]
    })"),
                 ScenarioError);
}

// ---- Assertion evaluation on real runs ----------------------------------

namespace {

Scenario
tiny_stress_scenario(const std::string& extra_expect)
{
    std::string text = R"({
      "name": "tiny_stress",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "kernels": [
        {"kernel": "hmma_stress", "name": "s", "ctas": 1,
         "warps_per_cta": 1, "wmma_per_warp": 8}
      ],
      "expect": [)" + extra_expect + R"(]
    })";
    return parse_scenario_text(text);
}

}  // namespace

TEST(ScenarioRun, AssertionsPass)
{
    ScenarioResult r = run_scenario(tiny_stress_scenario(
        R"({"metric": "total.cycles", "min": 1, "max": 1000000},
           {"metric": "kernel.s.hmma_instructions", "min": 1},
           {"metric": "kernel.s.stream", "equals": 0})"));
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.passed);
    ASSERT_EQ(r.assertions.size(), 3u);
    for (const AssertionResult& a : r.assertions)
        EXPECT_TRUE(a.passed) << a.metric;
    EXPECT_GT(r.totals.cycles, 0u);
    ASSERT_EQ(r.kernels.size(), 1u);
    EXPECT_EQ(r.kernels[0].stats.cycles, r.totals.cycles);
}

TEST(ScenarioRun, AssertionFailureFailsScenario)
{
    ScenarioResult r = run_scenario(
        tiny_stress_scenario(R"({"metric": "total.cycles", "max": 1})"));
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_FALSE(r.passed);
    ASSERT_EQ(r.assertions.size(), 1u);
    EXPECT_FALSE(r.assertions[0].passed);
    EXPECT_GT(r.assertions[0].value, 1.0);
}

TEST(ScenarioRun, FunctionalVerificationFeedsAssertions)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "verify64",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 16, "n": 16, "k": 16,
         "warps_per_cta": 1, "functional": true}
      ],
      "expect": [{"metric": "verify.max_rel_err", "max": 0.01}]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.error.empty()) << r.error;
    EXPECT_TRUE(r.passed);
    EXPECT_GE(r.verify_max_rel_err, 0.0);
    // Implicit tolerance assertion plus the explicit one.
    EXPECT_EQ(r.assertions.size(), 2u);
}

TEST(ScenarioRun, MaxCyclesExceededReportsErrorInsteadOfAborting)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "runaway",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "sim": {"max_cycles": 10},
      "kernels": [{"kernel": "hmma_stress", "name": "s", "ctas": 1,
                   "warps_per_cta": 1, "wmma_per_warp": 64}]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.error.find("max_cycles"), std::string::npos) << r.error;
}

TEST(ScenarioRun, OversubscribedKernelReportsErrorInsteadOfAborting)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "warps_per_cta": 4}]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.error.find("exceeds SM resources"), std::string::npos)
        << r.error;
}

// ---- JsonEmitter round-trip ---------------------------------------------

TEST(JsonEmitter, RoundTripsThroughDriverParser)
{
    const std::string path = "BENCH_emitter_roundtrip.json";
    {
        bench::JsonEmitter json("emitter_roundtrip");
        json.add("plain", 1.25);
        json.add("quote\"key", 2.0);
        json.add("back\\slash\nnewline", -3.5);
        json.add("not_finite", std::nan(""));
    }
    JsonValue doc = json_parse_file(path);
    EXPECT_EQ(doc.find("bench")->as_string(), "emitter_roundtrip");
    const JsonValue* metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->find("plain")->as_number(), 1.25);
    EXPECT_DOUBLE_EQ(metrics->find("quote\"key")->as_number(), 2.0);
    EXPECT_DOUBLE_EQ(metrics->find("back\\slash\nnewline")->as_number(),
                     -3.5);
    EXPECT_TRUE(metrics->find("not_finite")->is_null());
    // Atomic write: no temp file left behind.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

// ---- Event & synchronization schema -------------------------------------

TEST(Scenario, ParsesEventKeys)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "dag",
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "stream": 1,
         "record_event": "e0"},
        {"kernel": "hmma_stress", "name": "q", "stream": 2,
         "wait_event": "e0", "record_event": "e1"},
        {"kernel": "hmma_stress", "name": "r", "stream": 3,
         "wait_event": ["e0", "e1"], "sync": true}
      ]
    })");
    EXPECT_EQ(sc.kernels[0].record_event, "e0");
    EXPECT_TRUE(sc.kernels[0].wait_events.empty());
    ASSERT_EQ(sc.kernels[1].wait_events.size(), 1u);
    EXPECT_EQ(sc.kernels[1].wait_events[0], "e0");
    ASSERT_EQ(sc.kernels[2].wait_events.size(), 2u);
    EXPECT_TRUE(sc.kernels[2].sync);
    EXPECT_FALSE(sc.kernels[1].sync);
}

TEST(Scenario, RejectsWaitOnEventNobodyRecords)
{
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [
        {"kernel": "hmma_stress", "name": "k", "wait_event": "ghost"}
      ]
    })"),
                 ScenarioError);
}

TEST(Scenario, RejectsBadEventMetrics)
{
    // event metric referencing an unrecorded event.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [{"kernel": "hmma_stress", "name": "k"}],
      "expect": [{"metric": "event.ghost.cycle", "min": 1}]
    })"),
                 ScenarioError);
    // Only .cycle exists on events.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "kernels": [
        {"kernel": "hmma_stress", "name": "k", "record_event": "e"}
      ],
      "expect": [{"metric": "event.e.latency", "min": 1}]
    })"),
                 ScenarioError);
}

TEST(ScenarioRun, EventDagGatesAndExposesEventMetrics)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "dag_run",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "stream": 1, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "record_event": "e"},
        {"kernel": "hmma_stress", "name": "c", "stream": 2, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "wait_event": "e"}
      ],
      "expect": [
        {"metric": "event.e.cycle", "min": 1},
        {"metric": "kernel.c.start_cycle", "min": 1}
      ]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
    ASSERT_EQ(r.events.size(), 1u);
    EXPECT_EQ(r.events[0].name, "e");
    // Happens-before: the consumer starts only after the event.
    const LaunchStats* producer = nullptr;
    const LaunchStats* consumer = nullptr;
    for (const KernelResult& k : r.kernels) {
        if (k.name == "p")
            producer = &k.stats;
        if (k.name == "c")
            consumer = &k.stats;
    }
    ASSERT_NE(producer, nullptr);
    ASSERT_NE(consumer, nullptr);
    EXPECT_GT(consumer->start_cycle, producer->finish_cycle);
    EXPECT_LE(r.events[0].cycle, consumer->start_cycle);
}

TEST(ScenarioRun, SyncJoinsAllPriorLaunches)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "sync_join",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "hmma_stress", "name": "a", "stream": 1, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16},
        {"kernel": "hmma_stress", "name": "b", "stream": 2, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 48},
        {"kernel": "hmma_stress", "name": "join", "stream": 3, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "sync": true}
      ]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
    uint64_t join_start = 0, max_finish = 0;
    for (const KernelResult& k : r.kernels) {
        if (k.name == "join")
            join_start = k.stats.start_cycle;
        else
            max_finish = std::max(max_finish, k.stats.finish_cycle);
    }
    EXPECT_GT(join_start, max_finish);
}

TEST(ScenarioRun, StallCyclesMetricResolves)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "stall_metric",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 32, "n": 32, "k": 32}
      ],
      "expect": [
        {"metric": "total.stall_cycles", "min": 1},
        {"metric": "kernel.g.stall_cycles", "min": 1}
      ]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(Scenario, ParsesMemoryHierarchyKnobs)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "knobs",
      "gpu": {"preset": "titan_v", "l1_mshr_entries": 8, "l2_banks": 4,
              "l2_bank_bytes_per_cycle": 16.5, "l2_bank_queue_depth": 2,
              "noc_bytes_per_cycle": 8, "noc_queue_depth": 4,
              "dram_queue_depth": 2, "dram_rw_turnaround": 0},
      "kernels": [{"kernel": "wmma_naive", "m": 32, "n": 32, "k": 32}]
    })");
    GpuConfig cfg = sc.gpu_config();
    EXPECT_EQ(cfg.l1_mshr_entries, 8);
    EXPECT_EQ(cfg.l2_banks, 4);
    EXPECT_DOUBLE_EQ(cfg.l2_bank_bytes_per_cycle, 16.5);
    EXPECT_EQ(cfg.l2_bank_queue_depth, 2);
    EXPECT_DOUBLE_EQ(cfg.noc_bytes_per_cycle, 8.0);
    EXPECT_EQ(cfg.noc_queue_depth, 4);
    EXPECT_EQ(cfg.dram_queue_depth, 2);
    EXPECT_EQ(cfg.dram_rw_turnaround, 0);  // 0 = disabled is legal.
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "bad", "gpu": {"dram_queue_depth": 0},
      "kernels": [{"kernel": "wmma_naive", "m": 32, "n": 32, "k": 32}]
    })"),
                 ScenarioError);
}

TEST(ScenarioRun, MemMetricsResolve)
{
    // The tiny-L1 streaming GEMM exercises the whole transaction path,
    // so every mem.* counter the schema exposes resolves (and the
    // traffic ones are nonzero).
    Scenario sc = parse_scenario_text(R"({
      "name": "mem_metrics",
      "gpu": {"preset": "titan_v", "num_sms": 2, "l1_size": 16384},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64, "k": 64}
      ],
      "expect": [
        {"metric": "mem.global_sectors", "min": 1},
        {"metric": "mem.l1_misses", "min": 1},
        {"metric": "mem.l2_misses", "min": 1},
        {"metric": "mem.dram_bytes", "min": 1},
        {"metric": "mem.mshr_peak", "min": 1},
        {"metric": "mem.mshr_merges", "min": 0},
        {"metric": "mem.l1_hits", "min": 0},
        {"metric": "mem.l2_hits", "min": 0},
        {"metric": "mem.noc_queue_cycles", "min": 0},
        {"metric": "mem.l2_queue_cycles", "min": 0},
        {"metric": "mem.dram_queue_cycles", "min": 0},
        {"metric": "mem.dram_turnarounds", "min": 0}
      ]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(ScenarioRun, PerReasonStallMetricsResolve)
{
    // Constrict the MSHR file so the new back-pressure stall reason is
    // observable through both total.stall.* and kernel.<n>.stall.*.
    Scenario sc = parse_scenario_text(R"({
      "name": "stall_reasons",
      "gpu": {"preset": "titan_v", "num_sms": 2, "l1_size": 16384,
              "l1_mshr_entries": 2},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64, "k": 64}
      ],
      "expect": [
        {"metric": "total.stall.mshr_full", "min": 1},
        {"metric": "total.stall.scoreboard", "min": 1},
        {"metric": "kernel.g.stall.mshr_full", "min": 1}
      ]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(ScenarioRun, UnknownMemAndStallMetricsFail)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "bad_mem_metric",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 32, "n": 32, "k": 32}
      ],
      "expect": [{"metric": "mem.no_such_counter", "min": 0}]
    })");
    ScenarioResult r = run_scenario(sc);
    EXPECT_FALSE(r.passed);
    EXPECT_NE(r.error.find("unknown mem metric"), std::string::npos)
        << r.error;

    Scenario sc2 = parse_scenario_text(R"({
      "name": "bad_stall_metric",
      "gpu": {"preset": "titan_v", "num_sms": 1},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 32, "n": 32, "k": 32}
      ],
      "expect": [{"metric": "total.stall.no_such_reason", "min": 0}]
    })");
    ScenarioResult r2 = run_scenario(sc2);
    EXPECT_FALSE(r2.passed);
    EXPECT_NE(r2.error.find("unknown stall reason"), std::string::npos)
        << r2.error;
}
