/**
 * @file
 * Tests for the Titan V analytical model, the paper-measurement
 * tables, the metrics helpers, and the cooperative staging planner.
 */

#include <map>

#include <gtest/gtest.h>

#include "hwref/paper_tables.h"
#include "hwref/titanv_model.h"
#include "kernels/staging.h"
#include "metrics/metrics.h"

namespace tcsim {
namespace {

hwref::GemmWorkload
cutlass_workload(int size)
{
    hwref::GemmWorkload w;
    w.family = hwref::KernelFamily::kCutlass;
    w.m = w.n = w.k = size;
    return w;
}

TEST(TitanVModel, CyclesGrowWithSize)
{
    hwref::TitanVModel model(titan_v_config());
    double prev = 0.0;
    for (int size : {256, 512, 1024, 2048, 4096}) {
        double c = model.predict(cutlass_workload(size)).cycles;
        EXPECT_GT(c, prev) << size;
        prev = c;
    }
}

TEST(TitanVModel, TflopsSaturateBelowPeak)
{
    hwref::TitanVModel model(titan_v_config());
    double t8k = model.predict(cutlass_workload(8192)).tflops;
    double t16k = model.predict(cutlass_workload(16384)).tflops;
    EXPECT_GT(t8k, 20.0);
    EXPECT_LT(t8k, 125.0);
    // Saturation: the last doubling changes throughput by < 15%.
    EXPECT_NEAR(t16k / t8k, 1.0, 0.15);
}

TEST(TitanVModel, TensorCoreKernelsBeatSimt)
{
    hwref::TitanVModel model(titan_v_config());
    auto tc = cutlass_workload(4096);
    auto simt = tc;
    simt.family = hwref::KernelFamily::kSgemmSimt;
    double ratio = model.predict(tc).tflops / model.predict(simt).tflops;
    // Paper: 3-6x SGEMM.
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 8.0);
}

TEST(TitanVModel, PipeliningHelps)
{
    // Small threadblocks at a modest size: the K-loop latency floor
    // binds, so the un-pipelined variant must be slower.
    hwref::TitanVModel model(titan_v_config());
    auto pipe = cutlass_workload(256);
    pipe.block_m = pipe.block_n = 64;
    auto nopipe = pipe;
    nopipe.double_buffer = false;
    EXPECT_LT(model.predict(pipe).cycles, model.predict(nopipe).cycles);
}

TEST(TitanVModel, SmallGridsLoseOccupancy)
{
    // One CTA cannot use 80 SMs: per-FLOP cycles must be much worse
    // at 128 than at 2048.
    hwref::TitanVModel model(titan_v_config());
    auto small = model.predict(cutlass_workload(128));
    auto large = model.predict(cutlass_workload(2048));
    double small_cpf = small.cycles / (2.0 * 128 * 128 * 128);
    double large_cpf = large.cycles / (2.0 * 2048 * 2048 * 2048.0);
    EXPECT_GT(small_cpf, 10.0 * large_cpf);
}

TEST(PaperTables, Fig12cShape)
{
    auto hw = hwref::fig12c_hw_cycles();
    ASSERT_EQ(hw.size(), 8u);
    // Flat through 4 warps, then rising.
    EXPECT_LT(hw[3] / hw[0], 1.2);
    EXPECT_GT(hw[7] / hw[3], 2.0);
}

TEST(PaperTables, Fig17SeriesConsistent)
{
    auto sizes = hwref::fig17_sizes();
    for (const auto& s : hwref::fig17_hw_series()) {
        EXPECT_EQ(s.tflops.size(), sizes.size()) << s.name;
        for (double v : s.tflops)
            EXPECT_LE(v, hwref::kPeakTensorTflops) << s.name;
    }
}

TEST(Metrics, PerfectCorrelation)
{
    std::vector<metrics::IpcPoint> pts;
    for (int i = 1; i <= 10; ++i)
        pts.push_back({"p" + std::to_string(i), 10.0 * i, 10.0 * i});
    auto r = metrics::correlate(pts);
    EXPECT_NEAR(r.correlation_pct, 100.0, 1e-9);
    EXPECT_NEAR(r.mean_abs_rel_err_pct, 0.0, 1e-9);
    EXPECT_EQ(r.points, 10u);
}

TEST(Metrics, ScatterTableRows)
{
    std::vector<metrics::IpcPoint> pts = {{"a", 1.0, 2.0}, {"b", 3.0, 3.0}};
    TextTable t = metrics::scatter_table("x", pts);
    EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Metrics, Tflops)
{
    // 2e12 FLOPs in 1e9 cycles at 1 GHz = 1 second = 2 TFLOPS.
    EXPECT_DOUBLE_EQ(metrics::tflops(2e12, 1e9, 1.0), 2.0);
}

TEST(Staging, BytesAccountForPadding)
{
    EXPECT_EQ(staged_block_bytes(Layout::kRowMajor, 64, 16, 2, 8),
              64u * 24 * 2);
    EXPECT_EQ(staged_block_bytes(Layout::kColMajor, 64, 16, 2, 8),
              16u * 72 * 2);
}

TEST(Staging, CoversBlockExactlyOnce)
{
    // Union of all warps' LDG lanes covers each block element once.
    WarpBuilder builders[8] = {WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta),
                               WarpBuilder(Arch::kVolta)};
    std::map<uint64_t, int> touched;
    for (int w = 0; w < 8; ++w) {
        StageBlockParams p;
        p.block_base = 0;
        p.layout = Layout::kRowMajor;
        p.ld_global = 64;
        p.rows = 64;
        p.cols = 32;
        p.warp = w;
        p.num_warps = 8;
        p.ebytes = 2;
        p.reg = 40;
        stage_block(&builders[w], p);
        WarpProgram prog = builders[w].take();
        for (const auto& inst : prog) {
            if (inst.op != Opcode::kLdg)
                continue;
            int bytes = inst.width_bits / 8;
            for (int lane = 0; lane < kWarpSize; ++lane) {
                uint64_t a = (*inst.addr)[lane];
                for (int b = 0; b < bytes; b += 2)
                    touched[a + static_cast<uint64_t>(b)]++;
            }
        }
    }
    // 64 x 32 halfs, each exactly once.
    EXPECT_EQ(touched.size(), 64u * 32);
    for (const auto& [addr, count] : touched)
        EXPECT_EQ(count, 1) << addr;
}

}  // namespace
}  // namespace tcsim
