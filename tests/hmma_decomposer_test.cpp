/**
 * @file
 * Tests of the wmma.mma -> HMMA decomposition against Section III-C/D
 * of the paper: group sizes, set/step structure (Figs 9/10), octet
 * geometry (Table II), and the per-step outer products (Table III).
 */

#include <gtest/gtest.h>

#include "sass/hmma_decomposer.h"
#include "tensor/mapping_volta.h"

namespace tcsim {
namespace {

TEST(GroupSize, VoltaMixedIs16)
{
    // "each PTX wmma.mma instruction is broken into 16 HMMA
    //  instructions ... organized as four sets of four".
    EXPECT_EQ(hmma_group_size(Arch::kVolta, TcMode::kMixed), 16);
}

TEST(GroupSize, VoltaFp16Is8)
{
    // "a single PTX wmma.mma instruction is broken into four sets
    //  consisting of only 2 steps".
    EXPECT_EQ(hmma_group_size(Arch::kVolta, TcMode::kFp16), 8);
}

TEST(GroupSize, TuringIsFourExceptInt4)
{
    // "each PTX wmma.mma instruction is broken into a group of four
    //  HMMA instructions for all modes except 4-bit".
    EXPECT_EQ(hmma_group_size(Arch::kTuring, TcMode::kMixed), 4);
    EXPECT_EQ(hmma_group_size(Arch::kTuring, TcMode::kFp16), 4);
    EXPECT_EQ(hmma_group_size(Arch::kTuring, TcMode::kInt8), 4);
    EXPECT_EQ(hmma_group_size(Arch::kTuring, TcMode::kInt4), 1);
}

TEST(Decompose, VoltaMixedSetStepOrder)
{
    WmmaRegs regs{.a = 20, .b = 12, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kColMajor);
    ASSERT_EQ(group.size(), 16u);
    for (int i = 0; i < 16; ++i) {
        const auto& h = group[i].hmma;
        EXPECT_EQ(h.set, i / 4);
        EXPECT_EQ(h.step, i % 4);
        EXPECT_EQ(h.a_reg, 20);
        EXPECT_EQ(h.d_reg, 4);
    }
    EXPECT_TRUE(group.front().hmma.first_in_group);
    EXPECT_TRUE(group.back().hmma.last_in_group);
    EXPECT_TRUE(group.back().macro_end);
    // Only the endpoints are marked.
    for (int i = 1; i < 15; ++i) {
        EXPECT_FALSE(group[i].hmma.first_in_group);
        EXPECT_FALSE(group[i].hmma.last_in_group);
    }
}

TEST(Decompose, DisasmRendersStepAnnotations)
{
    WmmaRegs regs{.a = 24, .b = 22, .c = 8, .d = 8};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kColMajor,
                                    Layout::kRowMajor);
    // Mirrors Fig 9a: "HMMA.884.F32.F32.STEP0 R8, R24, R22, R8".
    EXPECT_EQ(group[0].disasm(), "HMMA.884.F32.F32.SET0.STEP0 R8, R24, R22, R8");
    EXPECT_EQ(group[3].disasm(), "HMMA.884.F32.F32.SET0.STEP3 R8, R24, R22, R8");
    EXPECT_EQ(group[15].disasm(),
              "HMMA.884.F32.F32.SET3.STEP3 R8, R24, R22, R8");
}

TEST(VoltaSteps, Table3OuterProducts)
{
    // Table III, octet 0 (threadgroups 0 and 4), set s, steps 0..3:
    //   tg0 step0: a[0:1] x A   -> A rows 0-1, B cols 0-3
    //   tg0 step2: a[0:1] x E   -> A rows 0-1, B cols 4-7
    //   tg4 step1: e[2:3] x A   -> A rows 6-7, B cols 0-3
    for (int set = 0; set < 4; ++set) {
        int k0 = 4 * set;
        auto s0 = volta_step_compute(TcMode::kMixed, 0, set, 0);
        EXPECT_EQ(s0.a, (SubtileRange{0, 1, k0, k0 + 3}));
        EXPECT_EQ(s0.b, (SubtileRange{k0, k0 + 3, 0, 3}));
        EXPECT_EQ(s0.cd, (SubtileRange{0, 1, 0, 3}));

        auto s2 = volta_step_compute(TcMode::kMixed, 0, set, 2);
        EXPECT_EQ(s2.a, (SubtileRange{0, 1, k0, k0 + 3}));
        EXPECT_EQ(s2.b, (SubtileRange{k0, k0 + 3, 4, 7}));

        auto t4s1 = volta_step_compute(TcMode::kMixed, 4, set, 1);
        EXPECT_EQ(t4s1.a, (SubtileRange{6, 7, k0, k0 + 3}));
        EXPECT_EQ(t4s1.b, (SubtileRange{k0, k0 + 3, 0, 3}));
        EXPECT_EQ(t4s1.cd, (SubtileRange{6, 7, 0, 3}));
    }
}

TEST(VoltaSteps, SetCoversFourByEightPerThreadgroup)
{
    // Fig 10a: per set, each threadgroup multiplies a 4x4 subtile of A
    // with a 4x8 subtile of B accumulating a 4x8 region of C/D.
    for (int tg = 0; tg < 8; ++tg) {
        for (int set = 0; set < 4; ++set) {
            int rmin = 16, rmax = -1, cmin = 16, cmax = -1;
            for (int step = 0; step < 4; ++step) {
                auto sc = volta_step_compute(TcMode::kMixed, tg, set, step);
                rmin = std::min(rmin, sc.cd.row0);
                rmax = std::max(rmax, sc.cd.row1);
                cmin = std::min(cmin, sc.cd.col0);
                cmax = std::max(cmax, sc.cd.col1);
            }
            EXPECT_EQ(rmax - rmin + 1, 4);
            EXPECT_EQ(cmax - cmin + 1, 8);
        }
    }
}

TEST(VoltaSteps, Fp16StepIsFourByFour)
{
    // Fig 10c: in FP16 mode each step is a full 4x4 x 4x4 product.
    for (int tg = 0; tg < 8; ++tg) {
        for (int step = 0; step < 2; ++step) {
            auto sc = volta_step_compute(TcMode::kFp16, tg, 0, step);
            EXPECT_EQ(sc.a.rows(), 4);
            EXPECT_EQ(sc.a.cols(), 4);
            EXPECT_EQ(sc.b.rows(), 4);
            EXPECT_EQ(sc.b.cols(), 4);
            EXPECT_EQ(sc.cd.rows(), 4);
            EXPECT_EQ(sc.cd.cols(), 4);
        }
    }
}

TEST(VoltaOctets, Table2Ranges)
{
    // Table II.
    EXPECT_EQ(volta_octet_a_range(0), (SubtileRange{0, 7, 0, 15}));
    EXPECT_EQ(volta_octet_b_range(0), (SubtileRange{0, 15, 0, 7}));
    EXPECT_EQ(volta_octet_a_range(1), (SubtileRange{8, 15, 0, 15}));
    EXPECT_EQ(volta_octet_b_range(1), (SubtileRange{0, 15, 0, 7}));
    EXPECT_EQ(volta_octet_a_range(2), (SubtileRange{0, 7, 0, 15}));
    EXPECT_EQ(volta_octet_b_range(2), (SubtileRange{0, 15, 8, 15}));
    EXPECT_EQ(volta_octet_a_range(3), (SubtileRange{8, 15, 0, 15}));
    EXPECT_EQ(volta_octet_b_range(3), (SubtileRange{0, 15, 8, 15}));
}

TEST(VoltaOctets, StepsStayInsideOctetFootprint)
{
    // Property: every step's operand ranges lie inside the octet's
    // Table II footprint, for both modes.
    for (TcMode mode : {TcMode::kMixed, TcMode::kFp16}) {
        for (int tg = 0; tg < 8; ++tg) {
            int octet = octet_of_threadgroup(tg);
            auto arange = volta_octet_a_range(octet);
            auto brange = volta_octet_b_range(octet);
            for (int set = 0; set < 4; ++set) {
                for (int step = 0; step < volta_steps_per_set(mode); ++step) {
                    auto sc = volta_step_compute(mode, tg, set, step);
                    EXPECT_GE(sc.a.row0, arange.row0);
                    EXPECT_LE(sc.a.row1, arange.row1);
                    EXPECT_GE(sc.b.col0, brange.col0);
                    EXPECT_LE(sc.b.col1, brange.col1);
                }
            }
        }
    }
}

TEST(VoltaSteps, GroupCoversWholeTileExactlyOnce)
{
    // Property: across all 8 threadgroups, 4 sets and all steps, every
    // (row, col, k) MAC of the 16x16x16 product is performed exactly
    // once.
    for (TcMode mode : {TcMode::kMixed, TcMode::kFp16}) {
        std::vector<int> macs(16 * 16 * 16, 0);
        for (int tg = 0; tg < 8; ++tg) {
            for (int set = 0; set < 4; ++set) {
                for (int step = 0; step < volta_steps_per_set(mode); ++step) {
                    auto sc = volta_step_compute(mode, tg, set, step);
                    for (int r = sc.cd.row0; r <= sc.cd.row1; ++r)
                        for (int c = sc.cd.col0; c <= sc.cd.col1; ++c)
                            for (int k = sc.a.col0; k <= sc.a.col1; ++k)
                                ++macs[(r * 16 + c) * 16 + k];
                }
            }
        }
        for (int v : macs)
            EXPECT_EQ(v, 1) << tc_mode_name(mode);
    }
}

TEST(TuringSets, WholeTileCoveredExactlyOnce)
{
    struct Case
    {
        TileShape shape;
        TcMode mode;
    };
    for (const auto& [shape, mode] :
         {Case{kShape16x16x16, TcMode::kMixed},
          Case{kShape16x16x16, TcMode::kFp16},
          Case{kShape16x16x16, TcMode::kInt8},
          Case{kShape32x8x16, TcMode::kMixed},
          Case{kShape32x8x16, TcMode::kInt8},
          Case{kShape8x32x16, TcMode::kFp16},
          Case{kShape8x32x16, TcMode::kInt8},
          Case{kShape8x8x32, TcMode::kInt4}}) {
        std::vector<int> macs(
            static_cast<size_t>(shape.m) * shape.n * shape.k, 0);
        for (int set = 0; set < turing_num_sets(mode); ++set) {
            auto sc = turing_set_compute(mode, shape, set);
            for (int r = sc.cd.row0; r <= sc.cd.row1; ++r)
                for (int c = sc.cd.col0; c <= sc.cd.col1; ++c)
                    for (int k = sc.a.col0; k <= sc.a.col1; ++k)
                        ++macs[(static_cast<size_t>(r) * shape.n + c) *
                                   shape.k +
                               k];
        }
        for (int v : macs)
            EXPECT_EQ(v, 1) << shape.str() << " " << tc_mode_name(mode);
    }
}

TEST(TuringSets, SubtileShapesMatchFig11)
{
    // FP16/mixed 16x16x16: 16x8 A subtile x 8x8 B subtile.
    auto sc = turing_set_compute(TcMode::kFp16, kShape16x16x16, 0);
    EXPECT_EQ(sc.a.rows(), 16);
    EXPECT_EQ(sc.a.cols(), 8);
    EXPECT_EQ(sc.b.rows(), 8);
    EXPECT_EQ(sc.b.cols(), 8);
    // 8-bit: 8x16 A x 16x8 B.
    sc = turing_set_compute(TcMode::kInt8, kShape16x16x16, 0);
    EXPECT_EQ(sc.a.rows(), 8);
    EXPECT_EQ(sc.a.cols(), 16);
    EXPECT_EQ(sc.b.rows(), 16);
    EXPECT_EQ(sc.b.cols(), 8);
    // 32x8x16 FP: 16x8 A x 8x8 B.
    sc = turing_set_compute(TcMode::kMixed, kShape32x8x16, 0);
    EXPECT_EQ(sc.a.rows(), 16);
    EXPECT_EQ(sc.a.cols(), 8);
    // 8x32x16 FP: 8x8 A x 8x16 B.
    sc = turing_set_compute(TcMode::kFp16, kShape8x32x16, 0);
    EXPECT_EQ(sc.a.rows(), 8);
    EXPECT_EQ(sc.a.cols(), 8);
    EXPECT_EQ(sc.b.cols(), 16);
}

}  // namespace
}  // namespace tcsim
