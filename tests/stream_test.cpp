/**
 * @file
 * Tests for the stream-aware execution engine: compatibility of the
 * single-launch wrapper, in-stream ordering, cross-stream overlap,
 * per-kernel statistics attribution, warm-cache semantics within a
 * run, and the event-driven main loop's cycle skipping.
 */

#include <gtest/gtest.h>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

KernelDesc
small_gemm(Gpu* gpu, GemmProblem<float>* prob, bool shared = false,
           const char* name = nullptr)
{
    GemmKernelConfig cfg;
    cfg.m = prob->m();
    cfg.n = prob->n();
    cfg.k = prob->k();
    GemmBuffers buf = prob->upload(&gpu->mem());
    KernelDesc kd = shared ? make_wmma_gemm_shared(cfg, buf)
                           : make_wmma_gemm_naive(cfg, buf);
    if (name)
        kd.name = name;
    return kd;
}

TEST(Engine, RunMatchesCompatLaunch)
{
    // A single kernel through run() and through the compatibility
    // launch() wrapper must report identical timing.
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);

    Gpu gpu1(small_titan_v(2));
    LaunchStats via_launch = gpu1.launch(small_gemm(&gpu1, &prob));

    Gpu gpu2(small_titan_v(2));
    gpu2.default_stream().enqueue(small_gemm(&gpu2, &prob));
    EngineStats es = gpu2.run();

    ASSERT_EQ(es.kernels.size(), 1u);
    EXPECT_EQ(es.kernels[0].cycles, via_launch.cycles);
    EXPECT_EQ(es.kernels[0].instructions, via_launch.instructions);
    EXPECT_EQ(es.cycles, via_launch.cycles);
    EXPECT_EQ(es.kernels[0].start_cycle, 0u);
}

TEST(Engine, EmptyRunIsNoop)
{
    Gpu gpu(small_titan_v(1));
    gpu.create_stream();
    EngineStats es = gpu.run();
    EXPECT_EQ(es.cycles, 0u);
    EXPECT_TRUE(es.kernels.empty());
}

TEST(Engine, SameStreamRunsInOrder)
{
    // Launches on one stream execute back-to-back: disjoint cycle
    // windows, in enqueue order.
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    Stream& s = gpu.default_stream();
    s.enqueue(small_gemm(&gpu, &prob, false, "first"));
    s.enqueue(small_gemm(&gpu, &prob, false, "second"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_EQ(es.kernels[0].kernel, "first");
    EXPECT_EQ(es.kernels[1].kernel, "second");
    EXPECT_GT(es.kernels[1].start_cycle, es.kernels[0].finish_cycle);
    EXPECT_EQ(es.cycles, es.kernels[1].finish_cycle + 1);
    EXPECT_EQ(es.instructions,
              es.kernels[0].instructions + es.kernels[1].instructions);
}

TEST(Engine, SecondLaunchSeesWarmCaches)
{
    // Within one run, memory timing persists across launches: the
    // second identical GEMM hits in L2 where the first missed.
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    GemmBuffers buf = prob.upload(&gpu.mem());  // same operands twice
    Stream& s = gpu.default_stream();
    s.enqueue(make_wmma_gemm_naive(cfg, buf));
    s.enqueue(make_wmma_gemm_naive(cfg, buf));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_LT(es.kernels[1].mem.l2_misses, es.kernels[0].mem.l2_misses);
    // Warm caches can only help: the second launch is no slower.
    EXPECT_LE(es.kernels[1].cycles, es.kernels[0].cycles);
}

TEST(Engine, IndependentStreamsOverlap)
{
    // Two single-CTA kernels on separate streams spread across the
    // chip and overlap in time; on one stream they serialize.
    auto stress = [] {
        return make_hmma_stress(Arch::kVolta, TcMode::kMixed, /*ctas=*/1,
                                /*warps=*/4, /*wmma_per_warp=*/64,
                                /*accumulators=*/4);
    };

    Gpu serial(small_titan_v(2));
    serial.default_stream().enqueue(stress());
    serial.default_stream().enqueue(stress());
    EngineStats es_serial = serial.run();

    Gpu overlap(small_titan_v(2));
    overlap.create_stream().enqueue(stress());
    overlap.create_stream().enqueue(stress());
    EngineStats es_overlap = overlap.run();

    ASSERT_EQ(es_overlap.kernels.size(), 2u);
    // Windows overlap: the second kernel starts before the first ends.
    uint64_t first_finish = es_overlap.kernels[0].finish_cycle;
    uint64_t second_start = es_overlap.kernels[1].start_cycle;
    EXPECT_LE(second_start, first_finish);
    // And the whole run is markedly faster than the serialized one.
    EXPECT_LT(es_overlap.cycles, es_serial.cycles * 3 / 4);
    // Same total work either way.
    EXPECT_EQ(es_overlap.instructions, es_serial.instructions);
}

TEST(Engine, ConcurrentKernelsShareOneSm)
{
    // With a single SM, CTAs of both streams' kernels become
    // co-resident (concurrent kernel execution), not time-sliced:
    // both kernels' windows overlap.
    auto stress = [](const char* name) {
        KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1,
                                         /*warps=*/2, /*wmma_per_warp=*/32,
                                         /*accumulators=*/4);
        kd.name = name;
        return kd;
    };
    Gpu gpu(small_titan_v(1));
    gpu.create_stream().enqueue(stress("a"));
    gpu.create_stream().enqueue(stress("b"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    const LaunchStats* a = &es.kernels[0];
    const LaunchStats* b = &es.kernels[1];
    if (a->kernel != "a")
        std::swap(a, b);
    EXPECT_LE(b->start_cycle, a->finish_cycle);
    // Per-kernel attribution: each stress kernel's HMMA count is its
    // own (2 warps x 32 wmma x 16 HMMA per group).
    EXPECT_EQ(a->hmma_instructions, 2u * 32u * 16u);
    EXPECT_EQ(b->hmma_instructions, 2u * 32u * 16u);
}

TEST(Engine, FunctionalResultsCorrectAcrossConcurrentStreams)
{
    // Two different GEMMs on different streams, both verified against
    // the host reference: concurrent execution must not corrupt
    // either kernel's functional state.
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> pa(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    GemmProblem<float> pb(32, 32, 32, Layout::kRowMajor, Layout::kColMajor);

    GemmKernelConfig ca;
    ca.m = ca.n = ca.k = 64;
    GemmBuffers ba = pa.upload(&gpu.mem());

    GemmKernelConfig cb;
    cb.m = cb.n = cb.k = 32;
    cb.b_layout = Layout::kColMajor;
    GemmBuffers bb = pb.upload(&gpu.mem());

    gpu.create_stream().enqueue(make_wmma_gemm_naive(ca, ba));
    gpu.create_stream().enqueue(make_wmma_gemm_naive(cb, bb));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    EXPECT_LT(pa.verify(gpu.mem(), ba.d), 1e-3);
    EXPECT_LT(pb.verify(gpu.mem(), bb.d), 1e-3);
}

TEST(Engine, EventLoopSkipsStalledCycles)
{
    // A one-CTA kernel leaves the chip fully stalled during memory
    // round trips; the event-driven loop must simulate fewer ticks
    // than the cycle count, with the difference accounted.
    Gpu gpu(small_titan_v(1));
    GemmProblem<float> prob(16, 16, 16, Layout::kRowMajor, Layout::kRowMajor);
    gpu.default_stream().enqueue(small_gemm(&gpu, &prob));
    EngineStats es = gpu.run();

    EXPECT_GT(es.skipped_cycles, 0u);
    EXPECT_LT(es.ticks, es.cycles);
}

TEST(Engine, DefaultStreamDistinctFromCreatedStreams)
{
    // default_stream() is the implicit stream 0, never an alias of a
    // create_stream() stream: work on it overlaps with created
    // streams instead of serializing behind them.
    auto stress = [](const char* name) {
        KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1,
                                         4, 64, 4);
        kd.name = name;
        return kd;
    };
    Gpu gpu(small_titan_v(2));
    Stream& created = gpu.create_stream();
    EXPECT_NE(&created, &gpu.default_stream());
    EXPECT_NE(created.id(), gpu.default_stream().id());

    created.enqueue(stress("on_created"));
    gpu.default_stream().enqueue(stress("on_default"));
    EngineStats es = gpu.run();

    ASSERT_EQ(es.kernels.size(), 2u);
    // Both start at cycle 0: they ran concurrently, not serialized.
    EXPECT_EQ(es.kernels[0].start_cycle, 0u);
    EXPECT_EQ(es.kernels[1].start_cycle, 0u);
}

TEST(Engine, StreamClearDropsQueuedWork)
{
    // clear() empties a mis-built queue so the stream can be reused
    // without running the stale work.
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    Stream& s = gpu.default_stream();
    Event& e = gpu.create_event("e");

    s.enqueue(small_gemm(&gpu, &prob, false, "stale"));
    s.record(e);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_FALSE(s.empty());
    s.clear();
    EXPECT_EQ(s.depth(), 0u);
    EXPECT_TRUE(s.empty());

    EngineStats es = gpu.run();
    EXPECT_TRUE(es.kernels.empty());

    s.enqueue(small_gemm(&gpu, &prob, false, "fresh"));
    EngineStats es2 = gpu.run();
    ASSERT_EQ(es2.kernels.size(), 1u);
    EXPECT_EQ(es2.kernels[0].kernel, "fresh");
}

TEST(Engine, EnqueueMovesDescriptor)
{
    // enqueue takes by value and moves: a moved-in descriptor's trace
    // (a std::function) transfers without copying its state.
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    KernelDesc kd = small_gemm(&gpu, &prob, false, "moved");
    gpu.default_stream().enqueue(std::move(kd));
    EngineStats es = gpu.run();
    ASSERT_EQ(es.kernels.size(), 1u);
    EXPECT_EQ(es.kernels[0].kernel, "moved");
}

TEST(Engine, StreamsReusableAcrossRuns)
{
    Gpu gpu(small_titan_v(2));
    GemmProblem<float> prob(64, 64, 64, Layout::kRowMajor, Layout::kRowMajor);
    Stream& s = gpu.default_stream();

    s.enqueue(small_gemm(&gpu, &prob));
    EngineStats first = gpu.run();
    EXPECT_TRUE(s.empty());

    s.enqueue(small_gemm(&gpu, &prob));
    EngineStats second = gpu.run();

    ASSERT_EQ(first.kernels.size(), 1u);
    ASSERT_EQ(second.kernels.size(), 1u);
    // Cache timing resets at run boundaries: identical runs, identical
    // timing.
    EXPECT_EQ(first.cycles, second.cycles);
}

}  // namespace
}  // namespace tcsim
