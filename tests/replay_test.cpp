/**
 * @file
 * Kernel-timing replay cache (sim/replay/): profile and archive codec
 * round-trips, fingerprint isolation across GpuConfigs, the
 * bit-identity contract for same-context hits, determinism under the
 * parallel tick, verify mode, and snapshot/restore with a replayed
 * kernel in flight (including restoring onto a replay-off engine).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"
#include "sim/replay/replay_cache.h"
#include "sim/snapshot.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

/** Enqueue one timing-only shared-memory GEMM (it carries a
 *  timing_key, so it is cacheable) on the default stream. */
void
enqueue_gemm(Gpu& gpu, int mnk, const std::string& name = "")
{
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = mnk;
    kc.functional = false;
    uint64_t n = static_cast<uint64_t>(mnk);
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(n * n * 2);
    buf.b = gpu.mem().alloc(n * n * 2);
    buf.c = gpu.mem().alloc(n * n * 4);
    buf.d = gpu.mem().alloc(n * n * 4);
    KernelDesc k = make_wmma_gemm_shared(kc, buf);
    if (!name.empty())
        k.name = name;
    gpu.default_stream().enqueue(std::move(k));
}

EngineStats
run_serial_gemms(const GpuConfig& cfg, const SimOptions& opts, int count,
                 int mnk)
{
    Gpu gpu(cfg, opts);
    for (int i = 0; i < count; ++i)
        enqueue_gemm(gpu, mnk, "g" + std::to_string(i));
    return gpu.run();
}

KernelTimingProfile
sample_profile()
{
    KernelTimingProfile p;
    p.cycles = 12345;
    p.instructions = 777;
    p.hmma_instructions = 111;
    p.mem.l1_hits = 5;
    p.mem.l1_misses = 3;
    p.mem.dram_bytes = 4096;
    p.stalls[StallReason::kScoreboard] = 42;
    Histogram h;
    h.add(10);
    h.add(20);
    p.macro_latency[MacroClass::kWmmaMma] = h;
    p.occupancy.push_back({0, 8});
    p.occupancy.push_back({6000, 4});
    return p;
}

void
expect_profiles_equal(const KernelTimingProfile& a,
                      const KernelTimingProfile& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    EXPECT_EQ(a.mem.dram_bytes, b.mem.dram_bytes);
    EXPECT_EQ(a.stalls[StallReason::kScoreboard],
              b.stalls[StallReason::kScoreboard]);
    ASSERT_EQ(a.macro_latency.size(), b.macro_latency.size());
    for (const auto& [mc, ha] : a.macro_latency) {
        auto it = b.macro_latency.find(mc);
        ASSERT_NE(it, b.macro_latency.end());
        EXPECT_EQ(ha.samples(), it->second.samples());
    }
    EXPECT_EQ(a.occupancy, b.occupancy);
}

TEST(ReplayCache, ProfileCodecRoundTrip)
{
    KernelTimingProfile p = sample_profile();
    SnapshotWriter w;
    save_profile(w, p);
    std::vector<uint8_t> bytes = w.take();
    SnapshotReader r(bytes);
    KernelTimingProfile q = load_profile(r);
    EXPECT_TRUE(r.done());
    expect_profiles_equal(p, q);
}

TEST(ReplayCache, DurationSequenceServedInPromotionOrder)
{
    ReplayCache cache;
    KernelTimingProfile p = sample_profile();
    // Slots recorded out of order (launches can retire out of
    // promotion order); slot 1 is a hole.
    p.cycles = 300;
    cache.record("k", 2, p);
    p.cycles = 100;
    cache.record("k", 0, p);

    KernelTimingProfile out;
    ASSERT_TRUE(cache.lookup("k", 0, &out));
    EXPECT_EQ(out.cycles, 100u);
    // Counter fields always come from the first recording.
    EXPECT_EQ(out.instructions, 777u);
    // An unfilled slot falls back to the first-recorded duration.
    ASSERT_TRUE(cache.lookup("k", 1, &out));
    EXPECT_EQ(out.cycles, 300u);
    ASSERT_TRUE(cache.lookup("k", 2, &out));
    EXPECT_EQ(out.cycles, 300u);
    // Past the end the sequence cycles.
    ASSERT_TRUE(cache.lookup("k", 3, &out));
    EXPECT_EQ(out.cycles, 100u);
    EXPECT_FALSE(cache.lookup("other", 0, &out));
}

TEST(ReplayCache, ArchiveRoundTripAndCorruptionRejected)
{
    ReplayCache cache;
    KernelTimingProfile p = sample_profile();
    cache.record("a", 0, p);
    p.cycles = 999;
    cache.record("a", 1, p);
    p.cycles = 555;
    cache.record("b", 0, p);

    std::vector<uint8_t> bytes = cache.serialize();
    ReplayCache back;
    back.deserialize(bytes);
    EXPECT_EQ(back.size(), 2u);
    KernelTimingProfile out;
    ASSERT_TRUE(back.lookup("a", 0, &out));
    EXPECT_EQ(out.cycles, 12345u);
    expect_profiles_equal(out, sample_profile());
    ASSERT_TRUE(back.lookup("a", 1, &out));
    EXPECT_EQ(out.cycles, 999u);
    ASSERT_TRUE(back.lookup("b", 0, &out));
    EXPECT_EQ(out.cycles, 555u);

    // Bad magic and truncation are loud failures, not quiet misses.
    std::vector<uint8_t> bad = bytes;
    bad[0] = 'X';
    ReplayCache reject;
    EXPECT_THROW(reject.deserialize(bad), SnapshotError);
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + 12);
    EXPECT_THROW(reject.deserialize(cut), SnapshotError);

    // File + directory round trip (only *.rpc files are merged).
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "tcsim_replay_cache_test";
    fs::create_directories(dir);
    ASSERT_TRUE(cache.save_file((dir / "profiles.rpc").string()));
    ReplayCache loaded;
    EXPECT_EQ(loaded.load_dir(dir.string()), 1u);
    EXPECT_EQ(loaded.size(), 2u);
    ASSERT_TRUE(loaded.lookup("a", 1, &out));
    EXPECT_EQ(out.cycles, 999u);
    EXPECT_EQ(loaded.load_dir((dir / "missing").string()), 0u);
    fs::remove_all(dir);
}

TEST(Replay, RecordingDoesNotPerturbExecution)
{
    GpuConfig cfg = small_titan_v(4);
    SimOptions detailed;
    EngineStats base = run_serial_gemms(cfg, detailed, 3, 64);

    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    EngineStats rec = run_serial_gemms(cfg, record, 3, 64);

    EXPECT_EQ(rec.cycles, base.cycles);
    EXPECT_EQ(rec.instructions, base.instructions);
    EXPECT_EQ(rec.hmma_instructions, base.hmma_instructions);
    ASSERT_EQ(rec.kernels.size(), base.kernels.size());
    for (size_t i = 0; i < base.kernels.size(); ++i) {
        EXPECT_EQ(rec.kernels[i].start_cycle,
                  base.kernels[i].start_cycle);
        EXPECT_EQ(rec.kernels[i].finish_cycle,
                  base.kernels[i].finish_cycle);
    }
    // Three serial launches of one shape: cold (w0), self-warmed twice
    // (w1 x2) -> two fingerprints, each with every occurrence recorded.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(rec.replay_misses, 2u);
    EXPECT_EQ(rec.replay_hits, 1u);
}

TEST(Replay, WarmSameContextReplayIsBitIdentical)
{
    GpuConfig cfg = small_titan_v(4);
    SimOptions detailed;
    EngineStats base = run_serial_gemms(cfg, detailed, 3, 64);

    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    run_serial_gemms(cfg, record, 3, 64);

    SimOptions replay;
    replay.replay_mode = SimOptions::ReplayMode::kReplay;
    replay.replay_cache = &cache;
    EngineStats rep = run_serial_gemms(cfg, replay, 3, 64);

    // Same trace, same context: every launch is served its own
    // recorded duration and deltas — results are bit-identical.
    EXPECT_EQ(rep.replay_hits, 3u);
    EXPECT_EQ(rep.replay_misses, 0u);
    EXPECT_EQ(rep.cycles, base.cycles);
    EXPECT_EQ(rep.instructions, base.instructions);
    EXPECT_EQ(rep.hmma_instructions, base.hmma_instructions);
    EXPECT_EQ(rep.mem.l1_hits, base.mem.l1_hits);
    EXPECT_EQ(rep.mem.l1_misses, base.mem.l1_misses);
    EXPECT_EQ(rep.mem.dram_bytes, base.mem.dram_bytes);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        // Idle-attribution stalls (empty / drained) accrue per SM
        // tick and a replayed launch never ticks an SM: the replay
        // contract covers launch-attributed counters, not chip idle
        // accounting.
        if (r == StallReason::kEmpty || r == StallReason::kDrained)
            continue;
        EXPECT_EQ(rep.stalls[r], base.stalls[r]) << stall_reason_name(r);
    }
    ASSERT_EQ(rep.kernels.size(), base.kernels.size());
    for (size_t i = 0; i < base.kernels.size(); ++i) {
        EXPECT_EQ(rep.kernels[i].start_cycle,
                  base.kernels[i].start_cycle);
        EXPECT_EQ(rep.kernels[i].finish_cycle,
                  base.kernels[i].finish_cycle);
        EXPECT_EQ(rep.kernels[i].instructions,
                  base.kernels[i].instructions);
    }
}

TEST(Replay, DifferentConfigNeverHits)
{
    // The fingerprint embeds the GpuConfig hash: profiles recorded on
    // one chip must never replay on another.
    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    run_serial_gemms(small_titan_v(4), record, 2, 64);
    EXPECT_GT(cache.size(), 0u);

    SimOptions replay;
    replay.replay_mode = SimOptions::ReplayMode::kReplay;
    replay.replay_cache = &cache;
    EngineStats rep = run_serial_gemms(small_titan_v(8), replay, 2, 64);
    EXPECT_EQ(rep.replay_hits, 0u);
    EXPECT_EQ(rep.replay_misses, 2u);
}

TEST(Replay, WarmthClassSeparatesColdFromWarm)
{
    // The first (cold-cache) occurrence and the self-warmed repeats
    // are distinct fingerprints: a cache warmed only by repeats can
    // never serve the cold launch.
    GpuConfig cfg = small_titan_v(4);
    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    run_serial_gemms(cfg, record, 1, 64);
    // One launch -> only the w0 (cold) fingerprint exists.
    EXPECT_EQ(cache.size(), 1u);

    SimOptions replay;
    replay.replay_mode = SimOptions::ReplayMode::kReplay;
    replay.replay_cache = &cache;
    EngineStats rep = run_serial_gemms(cfg, replay, 2, 64);
    // Cold launch hits w0; the second launch is w1 — a miss.
    EXPECT_EQ(rep.replay_hits, 1u);
    EXPECT_EQ(rep.replay_misses, 1u);
}

TEST(Replay, DeterministicAcrossSimThreads)
{
    GpuConfig cfg = small_titan_v(8);
    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    run_serial_gemms(cfg, record, 3, 64);

    SimOptions serial;
    serial.replay_mode = SimOptions::ReplayMode::kReplay;
    serial.replay_cache = &cache;
    serial.sim_threads = 1;
    EngineStats a = run_serial_gemms(cfg, serial, 3, 64);
    for (int t : {2, 4}) {
        SCOPED_TRACE("sim_threads=" + std::to_string(t));
        SimOptions par = serial;
        par.sim_threads = t;
        EngineStats b = run_serial_gemms(cfg, par, 3, 64);
        EXPECT_EQ(b.cycles, a.cycles);
        EXPECT_EQ(b.instructions, a.instructions);
        EXPECT_EQ(b.replay_hits, a.replay_hits);
        ASSERT_EQ(b.kernels.size(), a.kernels.size());
        for (size_t i = 0; i < a.kernels.size(); ++i)
            EXPECT_EQ(b.kernels[i].finish_cycle,
                      a.kernels[i].finish_cycle);
    }
}

TEST(Replay, VerifyModePassesOnExactProfilesAndCounts)
{
    GpuConfig cfg = small_titan_v(4);
    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    EngineStats base = run_serial_gemms(cfg, record, 3, 64);

    SimOptions verify;
    verify.replay_mode = SimOptions::ReplayMode::kVerify;
    verify.replay_cache = &cache;
    verify.replay_verify_every = 2;
    EngineStats v = run_serial_gemms(cfg, verify, 3, 64);
    // Same context, exact profiles: verification re-simulates without
    // failing, and verified launches still count as hits.
    EXPECT_EQ(v.replay_hits, 3u);
    EXPECT_GT(v.replay_verified, 0u);
    EXPECT_EQ(v.cycles, base.cycles);
    EXPECT_EQ(v.instructions, base.instructions);
}

TEST(Replay, SnapshotMidReplayedKernelRoundTrips)
{
    GpuConfig cfg = small_titan_v(4);
    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    EngineStats base = run_serial_gemms(cfg, record, 3, 64);

    SimOptions replay;
    replay.replay_mode = SimOptions::ReplayMode::kReplay;
    replay.replay_cache = &cache;

    // Pause inside the second (replayed) kernel's window, snapshot,
    // and finish three ways: the original, a restored replay engine,
    // and a restored replay-OFF engine (the in-flight profile rides
    // in the snapshot, so its completion no longer needs the cache).
    ASSERT_GE(base.kernels.size(), 2u);
    uint64_t mid = (base.kernels[1].start_cycle +
                    base.kernels[1].finish_cycle) / 2;
    Gpu gpu(cfg, replay);
    for (int i = 0; i < 3; ++i)
        enqueue_gemm(gpu, 64, "g" + std::to_string(i));
    gpu.run_until(mid);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    EngineStats straight = gpu.run();
    EXPECT_EQ(straight.cycles, base.cycles);
    EXPECT_EQ(straight.replay_hits, 3u);

    Gpu fork(cfg, replay);
    fork.restore(snap);
    EngineStats forked = fork.run();
    EXPECT_EQ(forked.cycles, base.cycles);
    EXPECT_EQ(forked.instructions, base.instructions);
    EXPECT_EQ(forked.replay_hits, 3u);
    ASSERT_EQ(forked.kernels.size(), base.kernels.size());
    for (size_t i = 0; i < base.kernels.size(); ++i)
        EXPECT_EQ(forked.kernels[i].finish_cycle,
                  base.kernels[i].finish_cycle);

    SimOptions off;
    Gpu plain(cfg, off);
    plain.restore(snap);
    EngineStats mixed = plain.run();
    // The already-replayed kernel completes from its profile; the
    // still-queued third kernel runs in detail on the replay-off
    // engine.  Same context — the timeline is unchanged.
    EXPECT_EQ(mixed.cycles, base.cycles);
    EXPECT_EQ(mixed.instructions, base.instructions);
    ASSERT_EQ(mixed.kernels.size(), base.kernels.size());
    for (size_t i = 0; i < base.kernels.size(); ++i)
        EXPECT_EQ(mixed.kernels[i].finish_cycle,
                  base.kernels[i].finish_cycle);
}

TEST(Replay, SnapshotMidRecordingKeepsSequenceSlots)
{
    // Snapshot taken while a recording launch is in flight: the
    // restored engine must finish the recording into the *same*
    // sequence slot (record_seq rides in the snapshot), so a replay
    // of the full trace still walks the recorded sequence exactly.
    GpuConfig cfg = small_titan_v(4);
    SimOptions detailed;
    EngineStats base = run_serial_gemms(cfg, detailed, 3, 64);

    ReplayCache cache;
    SimOptions record;
    record.replay_mode = SimOptions::ReplayMode::kRecord;
    record.replay_cache = &cache;
    Gpu gpu(cfg, record);
    for (int i = 0; i < 3; ++i)
        enqueue_gemm(gpu, 64, "g" + std::to_string(i));
    uint64_t mid = (base.kernels[1].start_cycle +
                    base.kernels[1].finish_cycle) / 2;
    gpu.run_until(mid);
    ASSERT_TRUE(gpu.run_active());
    Snapshot snap = gpu.snapshot();

    Gpu fork(cfg, record);
    fork.restore(snap);
    fork.run();
    // Recording resumed on the fork: the w1 fingerprint holds both
    // repeat occurrences in their promotion-order slots.
    KernelTimingProfile out;
    EXPECT_EQ(cache.size(), 2u);

    SimOptions replay;
    replay.replay_mode = SimOptions::ReplayMode::kReplay;
    replay.replay_cache = &cache;
    EngineStats rep = run_serial_gemms(cfg, replay, 3, 64);
    EXPECT_EQ(rep.replay_hits, 3u);
    EXPECT_EQ(rep.cycles, base.cycles);
    (void)out;
}

TEST(Replay, SampledModeIsMutuallyExclusive)
{
    GpuConfig cfg = small_titan_v(4);
    SimOptions opts;
    opts.replay_mode = SimOptions::ReplayMode::kReplay;
    opts.detailed_sms = 2;
    EXPECT_THROW(
        {
            Gpu gpu(cfg, opts);
            enqueue_gemm(gpu, 64);
            gpu.run();
        },
        std::runtime_error);
}

}  // namespace
}  // namespace tcsim
