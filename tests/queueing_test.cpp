/**
 * @file
 * BoundedChannel edge behavior after the ring-buffer swap: lazy
 * pruning exactly at slot-full boundaries, retire_on_submit with
 * out-of-order arrival epochs (the DRAM admission pattern), occupancy
 * after long idle gaps, and ring-wrap correctness over many times the
 * slot capacity.
 */

#include <gtest/gtest.h>

#include "sim/mem/queueing.h"

namespace tcsim {
namespace {

TEST(BoundedChannel, FillsToDepthAndRefuses)
{
    // 1 byte/cycle, 3 slots: three 10-byte transfers submitted at t=0
    // complete at 10, 20, 30 (service serializes on the horizon).
    BoundedChannel ch(1.0, 3);
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(ch.can_accept(0));
        ch.submit(0, 10);
    }
    EXPECT_EQ(ch.occupancy(0), 3u);
    EXPECT_FALSE(ch.can_accept(0));
    // The oldest request retires at its completion horizon (cycle 10);
    // a slot is free strictly after that.
    EXPECT_EQ(ch.retry_cycle(0), 10u);
}

TEST(BoundedChannel, LazyPruneAtSlotFullBoundary)
{
    BoundedChannel ch(1.0, 2);
    ch.submit(0, 10);  // completes at 10
    ch.submit(0, 10);  // completes at 20
    // One cycle before the oldest completion the channel is still
    // full; at the completion cycle the lazy prune frees the slot.
    EXPECT_FALSE(ch.can_accept(9));
    EXPECT_EQ(ch.retry_cycle(9), 10u);
    EXPECT_TRUE(ch.can_accept(10));
    EXPECT_EQ(ch.occupancy(10), 1u);
    // Refill the freed slot: full again until cycle 20.
    ch.submit(10, 10);  // queues behind horizon 20, completes at 30
    EXPECT_FALSE(ch.can_accept(19));
    EXPECT_EQ(ch.retry_cycle(19), 20u);
    EXPECT_TRUE(ch.can_accept(20));
}

TEST(BoundedChannel, QueueingDelayBehindEarlierWork)
{
    // The second transfer arrives while the first is in service: its
    // start is the first's horizon and the wait is accounted.
    BoundedChannel ch(2.0, 4);
    double s0 = ch.submit(0, 32);   // service [0, 16)
    double s1 = ch.submit(4, 32);   // waits 12, service [16, 32)
    EXPECT_DOUBLE_EQ(s0, 0.0);
    EXPECT_DOUBLE_EQ(s1, 16.0);
    EXPECT_EQ(ch.queue_cycles(), 12u);
    EXPECT_EQ(ch.total_bytes(), 64u);
    EXPECT_EQ(ch.total_requests(), 2u);
}

TEST(BoundedChannel, RetireOnSubmitOutOfOrderEpochs)
{
    // DRAM-partition pattern: admission is checked at the L1 port
    // cycle but arrivals carry later (and non-monotone) epochs.  A
    // submit at a *later* epoch retires completed slots; a subsequent
    // submit at an *earlier* epoch must still find the ring
    // consistent (pruning is monotone — nothing already retired can
    // come back).
    BoundedChannel ch(1.0, 2, /*retire_on_submit=*/true);
    ch.submit(0, 5);    // completes at 5
    ch.submit(0, 5);    // completes at 10
    EXPECT_EQ(ch.occupancy(0), 2u);
    // Arrival at epoch 12 retires both completed slots at submit time
    // (no explicit can_accept needed to make room).
    ch.submit(12, 5);   // completes at 17
    EXPECT_EQ(ch.occupancy(12), 1u);
    // Out-of-order arrival at epoch 11 — earlier than the previous
    // submit.  The prune at 11 retires nothing (the live slot
    // completes at 17); the request queues behind the horizon.
    double start = ch.submit(11, 5);
    EXPECT_DOUBLE_EQ(start, 17.0);
    EXPECT_EQ(ch.occupancy(11), 2u);
    EXPECT_EQ(ch.occupancy(17), 1u);   // first retires at its horizon
    EXPECT_EQ(ch.occupancy(22), 0u);
}

TEST(BoundedChannel, OccupancyAfterLongIdleGap)
{
    BoundedChannel ch(4.0, 3);
    for (int i = 0; i < 3; ++i)
        ch.submit(0, 64);
    EXPECT_FALSE(ch.can_accept(1));
    // A query far in the future retires everything in one prune.
    EXPECT_EQ(ch.occupancy(1'000'000), 0u);
    EXPECT_TRUE(ch.can_accept(1'000'000));
    // The channel stays usable after the gap: service restarts at the
    // arrival epoch, not at the stale horizon.
    double start = ch.submit(1'000'000, 64);
    EXPECT_DOUBLE_EQ(start, 1'000'000.0);
    EXPECT_EQ(ch.occupancy(1'000'000), 1u);
}

TEST(BoundedChannel, RingWrapsManyTimesOverCapacity)
{
    // Push far more requests than slots, pruning between bursts: the
    // ring indices wrap repeatedly and retry_cycle must always report
    // the oldest *outstanding* completion.
    BoundedChannel ch(1.0, 4);
    uint64_t now = 0;
    for (int burst = 0; burst < 16; ++burst) {
        std::vector<double> completions;
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(ch.can_accept(now));
            ch.submit(now, 3);
            completions.push_back(ch.horizon());
        }
        ASSERT_FALSE(ch.can_accept(now));
        // Oldest outstanding completion gates the next slot.
        EXPECT_EQ(ch.retry_cycle(now),
                  static_cast<uint64_t>(completions.front()));
        // Advance past half the burst: exactly two slots free.
        now = static_cast<uint64_t>(completions[1]);
        EXPECT_EQ(ch.occupancy(now), 2u);
        // Drain fully before the next burst.
        now = static_cast<uint64_t>(completions.back()) + 1;
        EXPECT_EQ(ch.occupancy(now), 0u);
    }
    EXPECT_EQ(ch.total_requests(), 64u);
}

TEST(BoundedChannel, ResetClearsSlotsAndCounters)
{
    BoundedChannel ch(1.0, 2);
    ch.submit(0, 8);
    ch.submit(0, 8);
    ch.reset();
    EXPECT_EQ(ch.occupancy(0), 0u);
    EXPECT_TRUE(ch.can_accept(0));
    EXPECT_EQ(ch.queue_cycles(), 0u);
    EXPECT_EQ(ch.total_bytes(), 0u);
    EXPECT_EQ(ch.total_requests(), 0u);
    EXPECT_DOUBLE_EQ(ch.horizon(), 0.0);
    // Post-reset service timeline restarts from scratch.
    EXPECT_DOUBLE_EQ(ch.submit(5, 8), 5.0);
}

}  // namespace
}  // namespace tcsim
