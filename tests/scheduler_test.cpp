/**
 * @file
 * WarpScheduler policy tests: GTO greediness, LRR rotation, and the
 * two-level fetch-group policy, plus end-to-end runs of each policy
 * through the full simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "kernels/gemm_kernels.h"
#include "sim/core/scheduler.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

std::vector<int>
visit_order(const WarpScheduler& s, int n)
{
    std::vector<int> order;
    s.order(n, &order);
    return order;
}

// ---- GTO ---------------------------------------------------------------

TEST(GtoPolicy, OldestFirstBeforeAnyIssue)
{
    WarpScheduler s(SchedulerPolicy::kGto);
    EXPECT_EQ(visit_order(s, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(GtoPolicy, StaysGreedyOnLastIssuer)
{
    WarpScheduler s(SchedulerPolicy::kGto);
    s.issued(2);
    auto order = visit_order(s, 4);
    EXPECT_EQ(order, (std::vector<int>{2, 0, 1, 3}));
    // Greedy persists while the same warp keeps issuing.
    s.issued(2);
    EXPECT_EQ(visit_order(s, 4).front(), 2);
}

TEST(GtoPolicy, FallsBackToOldestWhenIssuerGone)
{
    WarpScheduler s(SchedulerPolicy::kGto);
    s.issued(7);
    // Warp 7 no longer resident (e.g. finished): plain age order.
    EXPECT_EQ(visit_order(s, 4), (std::vector<int>{0, 1, 2, 3}));
}

// ---- LRR ---------------------------------------------------------------

TEST(LrrPolicy, RotatesPastLastIssuer)
{
    WarpScheduler s(SchedulerPolicy::kLrr);
    s.issued(0);
    EXPECT_EQ(visit_order(s, 4), (std::vector<int>{1, 2, 3, 0}));
    s.issued(3);
    EXPECT_EQ(visit_order(s, 4), (std::vector<int>{0, 1, 2, 3}));
}

TEST(LrrPolicy, FullRotationVisitsEveryWarpEqually)
{
    WarpScheduler s(SchedulerPolicy::kLrr);
    std::vector<int> firsts;
    for (int round = 0; round < 4; ++round) {
        auto order = visit_order(s, 4);
        firsts.push_back(order.front());
        s.issued(order.front());
    }
    EXPECT_EQ(firsts, (std::vector<int>{0, 1, 2, 3}));
}

// ---- Two-level ---------------------------------------------------------

TEST(TwoLevelPolicy, SmallPoolDegeneratesToLrr)
{
    // With at most kFetchGroupSize warps there is no pending pool.
    WarpScheduler s(SchedulerPolicy::kTwoLevel);
    s.issued(1);
    EXPECT_EQ(visit_order(s, 4), (std::vector<int>{2, 3, 0, 1}));
}

TEST(TwoLevelPolicy, PendingWarpsRankAfterFetchGroup)
{
    WarpScheduler s(SchedulerPolicy::kTwoLevel);
    int g = WarpScheduler::kFetchGroupSize;
    auto order = visit_order(s, g + 4);
    ASSERT_EQ(order.size(), static_cast<size_t>(g + 4));
    // The first g visited warps are exactly the fetch group 0..g-1.
    std::vector<int> head(order.begin(), order.begin() + g);
    std::sort(head.begin(), head.end());
    for (int i = 0; i < g; ++i)
        EXPECT_EQ(head[static_cast<size_t>(i)], i);
    // The pending pool follows in age order.
    std::vector<int> tail(order.begin() + g, order.end());
    EXPECT_EQ(tail, (std::vector<int>{g, g + 1, g + 2, g + 3}));
}

TEST(TwoLevelPolicy, RotatesWithinFetchGroupOnly)
{
    WarpScheduler s(SchedulerPolicy::kTwoLevel);
    int g = WarpScheduler::kFetchGroupSize;
    s.issued(3);
    auto order = visit_order(s, g + 2);
    EXPECT_EQ(order.front(), 4);  // LRR successor within the group
    // Issuing a pending-pool warp does not change group rotation.
    s.issued(g + 1);
    EXPECT_EQ(visit_order(s, g + 2).front(), 0);
}

// ---- End-to-end: every policy completes with correct results -----------

class PolicyEndToEnd : public ::testing::TestWithParam<SchedulerPolicy>
{
};

TEST_P(PolicyEndToEnd, SharedGemmCompletesAndVerifies)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 2;
    SimOptions opts;
    opts.scheduler = GetParam();
    Gpu gpu(cfg, opts);

    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 64;
    GemmProblem<float> prob(64, 64, 64, kc.a_layout, kc.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());
    LaunchStats s = gpu.launch(make_wmma_gemm_shared(kc, buf));

    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_LT(prob.verify(gpu.mem(), buf.d), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyEndToEnd,
                         ::testing::Values(SchedulerPolicy::kGto,
                                           SchedulerPolicy::kLrr,
                                           SchedulerPolicy::kTwoLevel));

TEST(TwoLevelPolicy, ManyWarpKernelCompletes)
{
    // More resident warps per sub-core than the fetch group size:
    // pending-pool promotion must keep every warp making progress
    // (no starvation, run completes).
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 1;
    SimOptions opts;
    opts.scheduler = SchedulerPolicy::kTwoLevel;
    Gpu gpu(cfg, opts);

    GemmKernelConfig kc;
    kc.m = kc.n = 256;
    kc.k = 64;
    kc.functional = false;
    GemmProblem<float> prob(256, 256, 64, kc.a_layout, kc.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());
    LaunchStats s = gpu.launch(make_wmma_gemm_naive(kc, buf));
    EXPECT_GT(s.cycles, 0u);
    // All (256/16)*(256/16)*(64/16) tile products ran.
    EXPECT_EQ(s.hmma_instructions, 256u / 16 * (256 / 16) * (64 / 16) * 16);
}

}  // namespace
}  // namespace tcsim
