/**
 * @file
 * Batch runner tests: N scenarios on 4 worker threads must produce
 * per-scenario cycle counts identical to serial execution (each worker
 * owns a full simulator instance; the only cross-thread state is the
 * mutex-guarded decode/timing memoization caches), plus report
 * structure and error isolation.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/runner.h"
#include "driver/scenario.h"

using namespace tcsim;
using namespace tcsim::driver;

namespace {

/** A small mixed bag of workloads, cheap enough for unit tests. */
std::vector<Scenario>
make_suite()
{
    std::vector<Scenario> suite;
    auto add = [&](const std::string& text) {
        suite.push_back(parse_scenario_text(text));
    };
    for (int i = 0; i < 3; ++i) {
        add(R"({
          "name": "stress_)" + std::to_string(i) + R"(",
          "gpu": {"preset": "titan_v", "num_sms": 2},
          "kernels": [
            {"kernel": "hmma_stress", "name": "s", "ctas": )" +
            std::to_string(2 + i) + R"(, "warps_per_cta": 2,
             "wmma_per_warp": 16}
          ]
        })");
    }
    add(R"({
      "name": "naive_gemm64",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64, "k": 64}
      ]
    })");
    add(R"({
      "name": "two_streams",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "hmma_stress", "name": "a", "stream": 1, "ctas": 2,
         "warps_per_cta": 2, "wmma_per_warp": 16},
        {"kernel": "hmma_stress", "name": "b", "stream": 2, "ctas": 2,
         "warps_per_cta": 2, "wmma_per_warp": 16}
      ]
    })");
    add(R"({
      "name": "lrr_gemm64",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "sim": {"scheduler": "lrr"},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64, "k": 64}
      ]
    })");
    // Event-DAG scenarios: cross-stream record/wait dependencies and a
    // sync join must stay bit-identical between serial and parallel
    // batch execution too.
    add(R"({
      "name": "event_chain",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "stream": 1, "ctas": 2,
         "warps_per_cta": 2, "wmma_per_warp": 16, "record_event": "e"},
        {"kernel": "hmma_stress", "name": "c", "stream": 2, "ctas": 2,
         "warps_per_cta": 2, "wmma_per_warp": 16, "wait_event": "e"}
      ]
    })");
    add(R"({
      "name": "event_fork_join",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [
        {"kernel": "hmma_stress", "name": "root", "stream": 1, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "record_event": "r"},
        {"kernel": "hmma_stress", "name": "fa", "stream": 2, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "wait_event": "r"},
        {"kernel": "hmma_stress", "name": "fb", "stream": 3, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "wait_event": "r"},
        {"kernel": "hmma_stress", "name": "join", "stream": 1, "ctas": 1,
         "warps_per_cta": 2, "wmma_per_warp": 16, "sync": true}
      ]
    })");
    return suite;
}

}  // namespace

TEST(BatchRunner, ParallelCyclesMatchSerial)
{
    std::vector<Scenario> suite = make_suite();
    BatchReport serial = run_batch(suite, 1);
    BatchReport parallel = run_batch(suite, 4);

    ASSERT_EQ(serial.results.size(), suite.size());
    ASSERT_EQ(parallel.results.size(), suite.size());
    EXPECT_EQ(serial.failed(), 0);
    EXPECT_EQ(parallel.failed(), 0);

    for (size_t i = 0; i < suite.size(); ++i) {
        const ScenarioResult& a = serial.results[i];
        const ScenarioResult& b = parallel.results[i];
        // Input order is preserved by both modes.
        EXPECT_EQ(a.name, suite[i].name);
        EXPECT_EQ(b.name, suite[i].name);
        EXPECT_EQ(a.totals.cycles, b.totals.cycles) << a.name;
        EXPECT_EQ(a.totals.instructions, b.totals.instructions) << a.name;
        ASSERT_EQ(a.kernels.size(), b.kernels.size());
        for (size_t k = 0; k < a.kernels.size(); ++k) {
            EXPECT_EQ(a.kernels[k].stats.cycles, b.kernels[k].stats.cycles)
                << a.name << "/" << a.kernels[k].name;
            EXPECT_EQ(a.kernels[k].stats.instructions,
                      b.kernels[k].stats.instructions)
                << a.name << "/" << a.kernels[k].name;
        }
    }
}

TEST(BatchRunner, RepeatedParallelRunsAreDeterministic)
{
    std::vector<Scenario> suite = make_suite();
    BatchReport r1 = run_batch(suite, 4);
    BatchReport r2 = run_batch(suite, 4);
    for (size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(r1.results[i].totals.cycles, r2.results[i].totals.cycles)
            << r1.results[i].name;
}

TEST(BatchRunner, FailingScenarioDoesNotPoisonTheBatch)
{
    std::vector<Scenario> suite = make_suite();
    // Oversubscribed: reported as a per-scenario error, not a fatal().
    suite.insert(suite.begin() + 1, parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "warps_per_cta": 4}]
    })"));

    BatchReport report = run_batch(suite, 4);
    EXPECT_EQ(report.failed(), 1);
    EXPECT_FALSE(report.results[1].passed);
    EXPECT_FALSE(report.results[1].error.empty());
    for (size_t i = 0; i < report.results.size(); ++i) {
        if (i != 1) {
            EXPECT_TRUE(report.results[i].passed)
                << report.results[i].name << ": "
                << report.results[i].error;
        }
    }
}

TEST(BatchRunner, FailFastStopsSerialBatchAtFirstFailure)
{
    std::vector<Scenario> suite = make_suite();
    // Fail the second scenario; everything after it must be skipped.
    suite.insert(suite.begin() + 1, parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "warps_per_cta": 4}]
    })"));

    BatchReport report = run_batch(suite, 1, /*fail_fast=*/true);
    EXPECT_EQ(report.failed(), 1);
    EXPECT_EQ(report.skipped(),
              static_cast<int>(suite.size()) - 2);
    EXPECT_TRUE(report.results[0].passed);
    EXPECT_FALSE(report.results[1].passed);
    EXPECT_FALSE(report.results[1].skipped);
    for (size_t i = 2; i < report.results.size(); ++i) {
        EXPECT_TRUE(report.results[i].skipped) << report.results[i].name;
        EXPECT_FALSE(report.results[i].passed);
        EXPECT_EQ(report.results[i].name, suite[i].name);
    }
}

TEST(BatchRunner, FailFastParallelSkipsScenariosNotYetStarted)
{
    std::vector<Scenario> suite = make_suite();
    suite.insert(suite.begin(), parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "warps_per_cta": 4}]
    })"));

    // Workers finish scenarios already in flight, so the exact skip
    // count depends on timing; the invariants are: the failure is
    // recorded, nothing reports as passed-and-skipped, and the batch
    // still fails.
    BatchReport report = run_batch(suite, 2, /*fail_fast=*/true);
    EXPECT_GE(report.failed(), 1);
    EXPECT_FALSE(report.results[0].passed);
    for (const ScenarioResult& r : report.results)
        EXPECT_FALSE(r.passed && r.skipped);
}

TEST(BatchRunner, NoFailFastRunsEverythingDespiteFailure)
{
    std::vector<Scenario> suite = make_suite();
    suite.insert(suite.begin(), parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "warps_per_cta": 4}]
    })"));
    BatchReport report = run_batch(suite, 1);
    EXPECT_EQ(report.failed(), 1);
    EXPECT_EQ(report.skipped(), 0);
}

TEST(BatchRunner, ReportJsonRoundTrips)
{
    std::vector<Scenario> suite = make_suite();
    suite.resize(2);
    BatchReport report = run_batch(suite, 2);
    JsonValue doc = json_parse(report_to_json(report).dump(2));

    EXPECT_EQ(doc.find("schema")->as_string(), "tcsim-batch-report-v1");
    EXPECT_EQ(doc.find("scenarios")->as_int(), 2);
    EXPECT_EQ(doc.find("failed")->as_int(), 0);
    const auto& results = doc.find("results")->as_array();
    ASSERT_EQ(results.size(), 2u);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].find("name")->as_string(), suite[i].name);
        EXPECT_EQ(
            static_cast<uint64_t>(
                results[i].find("total")->find("cycles")->as_int()),
            report.results[i].totals.cycles);
        // Speed telemetry rides in a dedicated "sim" block so the
        // serial-vs-threaded CI diff can strip it wholesale.
        const JsonValue* sim = results[i].find("sim");
        ASSERT_NE(sim, nullptr);
        EXPECT_NE(sim->find("wall_ms"), nullptr);
        EXPECT_NE(sim->find("ticks_per_sec"), nullptr);
        EXPECT_EQ(sim->find("sim_threads")->as_int(), 1);
    }
}

TEST(BatchRunner, ThreadBudgetClampsJobs)
{
    std::vector<Scenario> suite = make_suite();

    // 8-core budget, 4 intra-sim threads -> at most 2 batch workers.
    BatchOptions opts;
    opts.jobs = 8;
    opts.fail_fast = false;
    opts.sim_threads = 4;
    opts.thread_budget = 8;
    EXPECT_EQ(effective_jobs(opts, suite), 2);

    // Intra-sim width wins: never below one batch worker.
    opts.sim_threads = 32;
    EXPECT_EQ(effective_jobs(opts, suite), 1);

    // Serial sims use the whole budget for batch workers.
    opts.sim_threads = 1;
    EXPECT_EQ(effective_jobs(opts, suite), 8);

    // Default budget floors at the explicit jobs request: a batch of
    // serial sims may deliberately oversubscribe the host.
    opts.thread_budget = 0;
    opts.jobs = 64;
    EXPECT_EQ(effective_jobs(opts, suite), 64);

    // No override: the widest per-scenario sim.sim_threads counts.
    opts.jobs = 8;
    opts.thread_budget = 8;
    opts.sim_threads = -1;
    suite[0].sim.sim_threads = 4;
    EXPECT_EQ(effective_jobs(opts, suite), 2);
}

TEST(BatchRunner, SimThreadsOverrideKeepsResultsIdentical)
{
    std::vector<Scenario> suite = make_suite();
    BatchOptions serial;
    serial.jobs = 1;
    serial.sim_threads = 1;
    serial.thread_budget = 1;
    BatchOptions threaded;
    threaded.jobs = 1;
    threaded.sim_threads = 3;
    threaded.thread_budget = 3;

    BatchReport a = run_batch(suite, serial);
    BatchReport b = run_batch(suite, threaded);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_TRUE(b.results[i].passed) << b.results[i].name;
        EXPECT_EQ(a.results[i].totals.cycles, b.results[i].totals.cycles)
            << a.results[i].name;
        EXPECT_EQ(a.results[i].totals.instructions,
                  b.results[i].totals.instructions);
        EXPECT_EQ(a.results[i].totals.ticks, b.results[i].totals.ticks);
        EXPECT_EQ(b.results[i].sim_threads, 3);
    }
}

TEST(BatchRunner, OversubscribedScenarioIsATypedErrorRow)
{
    // SM-resource overflow is scenario input: the batch must finish
    // with one structured error row naming the offending kernel and
    // the limit, never a process-level fatal().
    std::vector<Scenario> suite = make_suite();
    suite.insert(suite.begin() + 2, parse_scenario_text(R"({
      "name": "too_big",
      "gpu": {"preset": "titan_v", "num_sms": 1, "registers_per_sm": 1024},
      "kernels": [{"kernel": "hmma_stress", "name": "fat",
                   "warps_per_cta": 4}]
    })"));

    BatchReport report = run_batch(suite, 4);
    EXPECT_EQ(report.failed(), 1);
    const ScenarioResult& bad = report.results[2];
    EXPECT_EQ(bad.name, "too_big");
    EXPECT_FALSE(bad.passed);
    EXPECT_NE(bad.error.find("exceeds SM resources"), std::string::npos)
        << bad.error;
    for (size_t i = 0; i < report.results.size(); ++i)
        if (i != 2)
            EXPECT_TRUE(report.results[i].passed)
                << report.results[i].name << ": "
                << report.results[i].error;
}

TEST(BatchRunner, HungScenarioIsContainedByTheWallWatchdog)
{
    // An injected kernel hang wedges one scenario; the per-scenario
    // wall budget (the simrunner --timeout-ms flag) cuts it short
    // with a SimHangError row while the rest of the batch completes.
    std::vector<Scenario> suite = make_suite();
    suite.insert(suite.begin(), parse_scenario_text(R"({
      "name": "hung",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "faults": {"hangs": [{"match": "s", "count": 1}]},
      "kernels": [
        {"kernel": "hmma_stress", "name": "s", "ctas": 2,
         "warps_per_cta": 2, "wmma_per_warp": 16}
      ]
    })"));

    BatchOptions opts;
    opts.jobs = 2;
    opts.timeout_ms = 2000;
    BatchReport report = run_batch(suite, opts);
    EXPECT_EQ(report.failed(), 1);
    const ScenarioResult& hung = report.results[0];
    EXPECT_FALSE(hung.passed);
    // The hang is detected as terminal (the chip wedges with only the
    // hung launch resident) or by the wall budget -- either way the
    // row carries the diagnostic dump.
    EXPECT_NE(hung.error.find("resident kernel"), std::string::npos)
        << hung.error;
    for (size_t i = 1; i < report.results.size(); ++i)
        EXPECT_TRUE(report.results[i].passed) << report.results[i].name;
}

TEST(BatchRunner, FaultMetricsSurfaceInScenarioResults)
{
    // A fault-injected scenario reports fault.* counters and stays
    // deterministic across batch parallelism.
    Scenario sc = parse_scenario_text(R"({
      "name": "degraded",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "faults": {"disabled_sms": [0],
                 "slowdowns": [{"match": "g", "factor": 2.0}]},
      "kernels": [
        {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64, "k": 64}
      ],
      "expect": [
        {"metric": "fault.disabled_sms", "equals": 1},
        {"metric": "fault.slowdowns", "equals": 1},
        {"metric": "fault.slowdown_extra_cycles", "min": 1}
      ]
    })");

    ScenarioResult serial = run_scenario(sc, 1);
    ScenarioResult threaded = run_scenario(sc, 3);
    EXPECT_TRUE(serial.passed) << serial.error;
    EXPECT_TRUE(threaded.passed) << threaded.error;
    EXPECT_TRUE(serial.has_faults);
    EXPECT_EQ(serial.fault_counters.slowdown_extra_cycles,
              threaded.fault_counters.slowdown_extra_cycles);
    EXPECT_EQ(serial.totals.cycles, threaded.totals.cycles);
}
