/**
 * @file
 * Unit and property tests for the IEEE binary16 library (substrate
 * S1): conversion exactness, rounding behaviour, special values, and
 * round-trip invariants across the full 16-bit pattern space.
 */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "fp16/half.h"

namespace tcsim {
namespace {

using fp16_literals::operator""_h;

TEST(Fp16, ZeroAndSign)
{
    EXPECT_EQ(half(0.0f).bits(), 0x0000);
    EXPECT_EQ(half(-0.0f).bits(), 0x8000);
    EXPECT_TRUE(half(-0.0f).is_zero());
    EXPECT_TRUE(half(-0.0f).signbit());
    EXPECT_FALSE(half(0.0f).signbit());
    EXPECT_EQ(half(0.0f), half(-0.0f));  // IEEE: +0 == -0
}

TEST(Fp16, KnownEncodings)
{
    EXPECT_EQ(half(1.0f).bits(), 0x3c00);
    EXPECT_EQ(half(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(half(2.0f).bits(), 0x4000);
    EXPECT_EQ(half(0.5f).bits(), 0x3800);
    EXPECT_EQ(half(65504.0f).bits(), 0x7bff);  // max normal
    EXPECT_EQ(half(-65504.0f).bits(), 0xfbff);
}

TEST(Fp16, ExactSmallIntegers)
{
    // All integers up to 2048 are exactly representable (11-bit
    // significand).
    for (int i = -2048; i <= 2048; ++i) {
        half h(static_cast<float>(i));
        EXPECT_EQ(h.to_float(), static_cast<float>(i)) << "i=" << i;
    }
}

TEST(Fp16, Infinity)
{
    half inf = std::numeric_limits<half>::infinity();
    EXPECT_TRUE(inf.is_inf());
    EXPECT_FALSE(inf.is_nan());
    EXPECT_EQ(inf.to_float(), std::numeric_limits<float>::infinity());
    EXPECT_EQ((-inf).to_float(), -std::numeric_limits<float>::infinity());
    // Overflow rounds to infinity.
    EXPECT_TRUE(half(1e9f).is_inf());
    EXPECT_TRUE(half(-1e9f).is_inf());
    EXPECT_TRUE(half(-1e9f).signbit());
    EXPECT_TRUE(half(std::numeric_limits<float>::infinity()).is_inf());
}

TEST(Fp16, OverflowBoundary)
{
    // 65520 is the rounding boundary between max (65504) and infinity.
    EXPECT_EQ(half(65519.0f).bits(), 0x7bff);
    EXPECT_TRUE(half(65520.0f).is_inf());
    EXPECT_TRUE(half(65536.0f).is_inf());
}

TEST(Fp16, NaN)
{
    half nan = std::numeric_limits<half>::quiet_NaN();
    EXPECT_TRUE(nan.is_nan());
    EXPECT_FALSE(nan.is_inf());
    EXPECT_TRUE(std::isnan(nan.to_float()));
    EXPECT_TRUE(half(std::numeric_limits<float>::quiet_NaN()).is_nan());
    // NaN compares unordered.
    EXPECT_FALSE(nan == nan);
    EXPECT_TRUE(nan != nan);
    EXPECT_FALSE(nan < nan);
}

TEST(Fp16, Subnormals)
{
    half dmin = std::numeric_limits<half>::denorm_min();
    EXPECT_TRUE(dmin.is_subnormal());
    EXPECT_FLOAT_EQ(dmin.to_float(), std::ldexp(1.0f, -24));
    half min_norm = std::numeric_limits<half>::min();
    EXPECT_FALSE(min_norm.is_subnormal());
    EXPECT_FLOAT_EQ(min_norm.to_float(), std::ldexp(1.0f, -14));

    // Values below half the smallest subnormal flush to zero under
    // round-to-nearest-even.
    EXPECT_TRUE(half(std::ldexp(1.0f, -26)).is_zero());
    // Exactly 2^-25 ties to even -> zero.
    EXPECT_TRUE(half(std::ldexp(1.0f, -25)).is_zero());
    // Just above 2^-25 rounds up to the smallest subnormal.
    EXPECT_EQ(half(std::ldexp(1.2f, -25)).bits(), 0x0001);
}

TEST(Fp16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to
    // the even mantissa (1.0).
    EXPECT_EQ(half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is
    // 1+2^-9 (mantissa 0b10).
    EXPECT_EQ(half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02);
    // Slightly above the halfway point rounds up.
    EXPECT_EQ(half(1.0f + std::ldexp(1.1f, -11)).bits(), 0x3c01);
}

TEST(Fp16, RoundTripAllPatterns)
{
    // Property: every binary16 value converts to float and back to the
    // identical bit pattern (NaNs keep NaN-ness).
    for (uint32_t b = 0; b <= 0xffff; ++b) {
        half h = half::from_bits(static_cast<uint16_t>(b));
        half rt(h.to_float());
        if (h.is_nan()) {
            EXPECT_TRUE(rt.is_nan()) << "bits=" << b;
        } else {
            EXPECT_EQ(rt.bits(), h.bits()) << "bits=" << b;
        }
    }
}

TEST(Fp16, ConversionMonotonic)
{
    // Property: to_float is strictly increasing over positive normals
    // and subnormals.
    float prev = half::from_bits(0x0000).to_float();
    for (uint16_t b = 1; b < 0x7c00; ++b) {
        float cur = half::from_bits(b).to_float();
        EXPECT_GT(cur, prev) << "bits=" << b;
        prev = cur;
    }
}

TEST(Fp16, Arithmetic)
{
    EXPECT_EQ((1.5_h + 2.5_h).to_float(), 4.0f);
    EXPECT_EQ((2.0_h * 3.0_h).to_float(), 6.0f);
    EXPECT_EQ((7.0_h - 2.0_h).to_float(), 5.0f);
    EXPECT_EQ((6.0_h / 3.0_h).to_float(), 2.0f);
    half x = 1.0_h;
    x += 1.0_h;
    EXPECT_EQ(x.to_float(), 2.0f);
    EXPECT_EQ((-x).to_float(), -2.0f);
}

TEST(Fp16, ArithmeticRounds)
{
    // 2048 + 1 = 2049 is not representable (ulp at 2048 is 2);
    // round-to-nearest-even gives 2048.
    EXPECT_EQ((half(2048.0f) + half(1.0f)).to_float(), 2048.0f);
    // 2048 + 3 = 2051 is exactly halfway between 2050 and 2052;
    // ties-to-even picks the even mantissa (2052).
    EXPECT_EQ((half(2048.0f) + half(3.0f)).to_float(), 2052.0f);
    // 2048 + 4 is exact.
    EXPECT_EQ((half(2048.0f) + half(4.0f)).to_float(), 2052.0f);
}

TEST(Fp16, Comparisons)
{
    EXPECT_LT(1.0_h, 2.0_h);
    EXPECT_GT(-1.0_h, -2.0_h);
    EXPECT_LE(1.0_h, 1.0_h);
    EXPECT_GE(2.0_h, 1.0_h);
}

/** Parameterized sweep: float -> half conversion matches the
 *  arithmetic definition of round-to-nearest-even for a lattice of
 *  exponents and mantissa offsets. */
class Fp16RoundingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Fp16RoundingSweep, MatchesNearestRepresentable)
{
    int exp = GetParam();
    // Scan a few hundred floats in [2^exp, 2^(exp+1)) and verify the
    // conversion picks one of the two neighbouring half values and the
    // closer one when not a tie.
    for (int i = 0; i < 257; ++i) {
        float f = std::ldexp(1.0f + static_cast<float>(i) / 257.0f, exp);
        half h(f);
        float back = h.to_float();
        // Next representable half below/above.
        half lo = half::from_bits(static_cast<uint16_t>(h.bits() - 1));
        half hi = half::from_bits(static_cast<uint16_t>(h.bits() + 1));
        if (!h.is_inf()) {
            double err = std::abs(static_cast<double>(back) - f);
            if (!lo.is_nan() && !lo.is_inf()) {
                EXPECT_LE(err,
                          std::abs(static_cast<double>(lo.to_float()) - f));
            }
            if (!hi.is_nan() && !hi.is_inf()) {
                EXPECT_LE(err,
                          std::abs(static_cast<double>(hi.to_float()) - f));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, Fp16RoundingSweep,
                         ::testing::Values(-14, -10, -5, -1, 0, 1, 5, 10, 14));

}  // namespace
}  // namespace tcsim
