/**
 * @file
 * Tests for counters, histograms, and the correlation/error math used
 * by the evaluation harness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace tcsim {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c("x");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BasicMoments)
{
    Histogram h("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        h.add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.median(), 3.0);
    EXPECT_NEAR(h.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(Histogram, MedianEvenCount)
{
    Histogram h;
    h.add(1.0);
    h.add(2.0);
    h.add(10.0);
    h.add(20.0);
    EXPECT_DOUBLE_EQ(h.median(), 6.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 0; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
}

TEST(Histogram, SingleSample)
{
    Histogram h;
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.median(), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(StatsMath, PearsonPerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {2, 4, 6, 8, 10};
    EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
    std::vector<double> yn = {-2, -4, -6, -8, -10};
    EXPECT_NEAR(stats::pearson(x, yn), -1.0, 1e-12);
}

TEST(StatsMath, PearsonNoise)
{
    // Near-linear data with small perturbations should stay highly
    // correlated (this is the Fig 14b metric).
    std::vector<double> x, y;
    for (int i = 1; i <= 50; ++i) {
        x.push_back(i);
        y.push_back(2.0 * i + ((i % 3) - 1) * 0.05 * i);
    }
    double r = stats::pearson(x, y);
    EXPECT_GT(r, 0.99);
    EXPECT_LT(r, 1.0);
}

TEST(StatsMath, PearsonConstantSeries)
{
    std::vector<double> x = {1, 1, 1};
    std::vector<double> y = {1, 2, 3};
    EXPECT_DOUBLE_EQ(stats::pearson(x, y), 0.0);
}

TEST(StatsMath, RelativeErrors)
{
    std::vector<double> ref = {100, 200, 400};
    std::vector<double> meas = {110, 190, 400};
    EXPECT_NEAR(stats::mean_abs_rel_error_pct(ref, meas),
                (10.0 + 5.0 + 0.0) / 3.0, 1e-9);
    // rel errors: +0.10, -0.05, 0.0; mean = 0.0166..
    double m = (0.10 - 0.05 + 0.0) / 3.0;
    double var = ((0.10 - m) * (0.10 - m) + (-0.05 - m) * (-0.05 - m) +
                  (0.0 - m) * (0.0 - m)) /
                 3.0;
    EXPECT_NEAR(stats::rel_stddev_pct(ref, meas), 100.0 * std::sqrt(var),
                1e-9);
}

TEST(StatRegistry, NamedAccess)
{
    StatRegistry reg;
    reg.counter("cycles").inc(10);
    reg.counter("cycles").inc(5);
    EXPECT_EQ(reg.counter("cycles").value(), 15u);
    reg.histogram("lat").add(3.0);
    EXPECT_EQ(reg.histogram("lat").count(), 1u);
    reg.reset();
    EXPECT_EQ(reg.counters().size(), 0u);
}

}  // namespace
}  // namespace tcsim
