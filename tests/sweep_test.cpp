/**
 * @file
 * Sweep-driver tests: schema validation of the "sweep" key, point
 * materialization, attach_sweep (the --grid form), and the central
 * runtime contract — every forked point's statistics are bit-identical
 * to a cold run of prefix + point from cycle 0, at every thread count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/runner.h"
#include "driver/scenario.h"

using namespace tcsim;
using namespace tcsim::driver;

namespace {

/** A cheap two-point sweep on a narrow chip.  @p extra is spliced
 *  into the scenario object (lead with a comma). */
std::string
sweep_text(const std::string& extra = "")
{
    return R"({
      "name": "mini_sweep",
      "gpu": {"preset": "titan_v", "num_sms": 4},
      "kernels": [
        {"kernel": "wmma_naive", "name": "warm", "m": 64, "n": 64,
         "k": 64, "record_event": "warm_done"}
      ],
      "sweep": {
        "fork_cycle": 200,
        "points": [
          {"name": "small",
           "kernels": [
             {"kernel": "hmma_stress", "name": "s", "ctas": 2,
              "warps_per_cta": 2, "wmma_per_warp": 16,
              "wait_event": "warm_done"}
           ],
           "expect": [
             {"metric": "kernel.s.hmma_instructions", "min": 1}
           ]},
          {"name": "large",
           "kernels": [
             {"kernel": "wmma_naive", "name": "g", "m": 64, "n": 64,
              "k": 128}
           ]}
        ]
      })" + extra + R"(
    })";
}

/** Everything timing-relevant a report would carry must agree. */
void
expect_point_identical(const ScenarioResult& a, const ScenarioResult& b)
{
    ASSERT_TRUE(a.error.empty()) << a.name << ": " << a.error;
    ASSERT_TRUE(b.error.empty()) << b.name << ": " << b.error;
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.totals.cycles, b.totals.cycles) << a.name;
    EXPECT_EQ(a.totals.ticks, b.totals.ticks) << a.name;
    EXPECT_EQ(a.totals.instructions, b.totals.instructions) << a.name;
    EXPECT_EQ(a.totals.hmma_instructions, b.totals.hmma_instructions)
        << a.name;
    EXPECT_EQ(a.totals.skipped_cycles, b.totals.skipped_cycles) << a.name;
    EXPECT_EQ(a.totals.stalls.total(), b.totals.stalls.total()) << a.name;
    EXPECT_EQ(a.totals.mem.global_sectors, b.totals.mem.global_sectors)
        << a.name;
    EXPECT_EQ(a.totals.mem.l2_misses, b.totals.mem.l2_misses) << a.name;
    EXPECT_EQ(a.totals.mem.dram_bytes, b.totals.mem.dram_bytes) << a.name;
    ASSERT_EQ(a.kernels.size(), b.kernels.size());
    for (size_t i = 0; i < a.kernels.size(); ++i) {
        EXPECT_EQ(a.kernels[i].name, b.kernels[i].name);
        EXPECT_EQ(a.kernels[i].stats.start_cycle,
                  b.kernels[i].stats.start_cycle)
            << a.name << "/" << a.kernels[i].name;
        EXPECT_EQ(a.kernels[i].stats.finish_cycle,
                  b.kernels[i].stats.finish_cycle)
            << a.name << "/" << a.kernels[i].name;
        EXPECT_EQ(a.kernels[i].stats.instructions,
                  b.kernels[i].stats.instructions);
    }
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].name, b.events[i].name);
        EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
    }
    ASSERT_EQ(a.assertions.size(), b.assertions.size());
    for (size_t i = 0; i < a.assertions.size(); ++i)
        EXPECT_EQ(a.assertions[i].value, b.assertions[i].value)
            << a.name << ": " << a.assertions[i].metric;
    EXPECT_EQ(a.passed, b.passed) << a.name;
}

TEST(SweepParse, InlineKeyRoundTrips)
{
    Scenario sc = parse_scenario_text(sweep_text());
    ASSERT_TRUE(sc.is_sweep());
    EXPECT_EQ(sc.sweep.fork_cycle, 200u);
    ASSERT_EQ(sc.sweep.points.size(), 2u);
    EXPECT_EQ(sc.sweep.points[0].name, "small");
    EXPECT_EQ(sc.sweep.points[0].kernels.size(), 1u);
    EXPECT_EQ(sc.sweep.points[0].expect.size(), 1u);

    Scenario pt = materialize_sweep_point(sc, 1);
    EXPECT_FALSE(pt.is_sweep());
    EXPECT_EQ(pt.name, "mini_sweep/large");
    ASSERT_EQ(pt.kernels.size(), 2u);
    EXPECT_EQ(pt.kernels[0].name, "warm");
    EXPECT_EQ(pt.kernels[1].name, "g");
}

TEST(SweepParse, RejectsBadSweeps)
{
    auto rejects = [](const std::string& text, const std::string& why) {
        EXPECT_THROW(parse_scenario_text(text), ScenarioError) << why;
    };
    // fork_cycle must exist and be >= 1.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"points": [{"name": "p", "kernels":
                  [{"kernel": "wmma_naive", "name": "g"}]}]}})",
            "missing fork_cycle");
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 0, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g"}]}]}})",
            "fork_cycle 0");
    // Timing-only: functional kernels are rejected in the prefix and
    // in points.
    rejects(R"({"name": "x", "kernels":
                 [{"kernel": "wmma_shared", "functional": true}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g"}]}]}})",
            "functional prefix");
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_shared", "name": "g",
                               "functional": true}]}]}})",
            "functional point");
    // A point may not mint stream ids the prefix never used.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g",
                               "stream": 3}]}]}})",
            "new stream id");
    // Kernel names must not collide with the prefix.
    rejects(R"({"name": "x", "kernels":
                 [{"kernel": "wmma_naive", "name": "warm"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "warm"}]}]}})",
            "name collision");
    // Waits must resolve against prefix or same-point records.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g",
                               "wait_event": "ghost"}]}]}})",
            "unknown wait event");
    // Point expectations resolve against the merged kernel set.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g"}],
                  "expect": [{"metric": "kernel.nope.cycles",
                              "min": 1}]}]}})",
            "unknown kernel in point expect");
    // verify.* needs a functional kernel, which sweeps forbid.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [{"name": "p",
                  "kernels": [{"kernel": "wmma_naive", "name": "g"}],
                  "expect": [{"metric": "verify.max_rel_err",
                              "max": 0.1}]}]}})",
            "verify metric in sweep");
    // Duplicate point names.
    rejects(R"({"name": "x", "kernels": [{"kernel": "wmma_naive"}],
                "sweep": {"fork_cycle": 10, "points": [
                  {"name": "p", "kernels":
                    [{"kernel": "wmma_naive", "name": "g"}]},
                  {"name": "p", "kernels":
                    [{"kernel": "wmma_naive", "name": "h"}]}]}})",
            "duplicate point name");
}

TEST(SweepParse, AttachSweepMatchesInline)
{
    Scenario base = parse_scenario_text(R"({
      "name": "mini_sweep",
      "gpu": {"preset": "titan_v", "num_sms": 4},
      "kernels": [
        {"kernel": "wmma_naive", "name": "warm", "m": 64, "n": 64,
         "k": 64, "record_event": "warm_done"}
      ]
    })");
    ASSERT_FALSE(base.is_sweep());
    JsonValue grid = json_parse(R"({
      "fork_cycle": 200,
      "points": [
        {"name": "small", "kernels":
          [{"kernel": "hmma_stress", "name": "s", "ctas": 2,
            "warps_per_cta": 2, "wmma_per_warp": 16,
            "wait_event": "warm_done"}]}
      ]
    })");
    attach_sweep(&base, grid, "grid.json");
    ASSERT_TRUE(base.is_sweep());
    EXPECT_EQ(base.sweep.fork_cycle, 200u);
    ASSERT_EQ(base.sweep.points.size(), 1u);
    // A second sweep cannot be attached on top.
    EXPECT_THROW(attach_sweep(&base, grid, "grid.json"), ScenarioError);
}

TEST(SweepRun, ForkedMatchesColdAtEveryThreadCount)
{
    Scenario sc = parse_scenario_text(sweep_text());
    std::vector<ScenarioResult> cold =
        run_sweep(sc, /*jobs=*/1, /*sim_threads=*/-1,
                  /*detailed_sms=*/-1, /*cold_sweep=*/true);
    ASSERT_EQ(cold.size(), 2u);
    for (const ScenarioResult& r : cold) {
        EXPECT_FALSE(r.sweep_forked);
        EXPECT_TRUE(r.passed) << r.name << ": " << r.error;
    }

    // Forked, serial and threaded, point-parallel and not: all four
    // configurations must reproduce the cold statistics exactly.
    for (int jobs : {1, 2}) {
        for (int threads : {-1, 2}) {
            std::vector<ScenarioResult> forked =
                run_sweep(sc, jobs, threads, -1, false);
            ASSERT_EQ(forked.size(), cold.size());
            for (size_t i = 0; i < forked.size(); ++i) {
                EXPECT_TRUE(forked[i].sweep_forked);
                EXPECT_EQ(forked[i].sweep_point, sc.sweep.points[i].name);
                expect_point_identical(forked[i], cold[i]);
            }
        }
    }
}

TEST(SweepRun, LateForkCycleFailsEveryPoint)
{
    Scenario sc = parse_scenario_text(sweep_text());
    sc.sweep.fork_cycle = 50'000'000;  // Far past the prefix drain.
    std::vector<ScenarioResult> out = run_sweep(sc);
    ASSERT_EQ(out.size(), 2u);
    for (const ScenarioResult& r : out) {
        EXPECT_FALSE(r.passed);
        EXPECT_NE(r.error.find("fork_cycle"), std::string::npos) << r.error;
    }
}

TEST(SweepRun, BatchExpandsPointsInOrder)
{
    std::vector<Scenario> suite;
    suite.push_back(parse_scenario_text(R"({
      "name": "plain",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "kernels": [{"kernel": "hmma_stress", "name": "s", "ctas": 2,
                   "warps_per_cta": 2, "wmma_per_warp": 16}]
    })"));
    suite.push_back(parse_scenario_text(sweep_text()));

    for (int jobs : {1, 2}) {
        BatchOptions opts;
        opts.jobs = jobs;
        BatchReport report = run_batch(suite, opts);
        ASSERT_EQ(report.results.size(), 3u) << "jobs=" << jobs;
        EXPECT_EQ(report.results[0].name, "plain");
        EXPECT_EQ(report.results[1].name, "mini_sweep/small");
        EXPECT_EQ(report.results[2].name, "mini_sweep/large");
        EXPECT_EQ(report.failed(), 0) << "jobs=" << jobs;
    }
}

}  // namespace
