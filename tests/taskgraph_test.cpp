/**
 * @file
 * Task-graph compiler tests: hazard derivation (RAW/WAR/WAW, no edge
 * for read-after-read), view-declared overlap, multi-writer and
 * undeclared-aliasing rejection (with source line:col through the
 * scenario layer), diamond stream coloring and event placement,
 * Gpu::launch_graph cycle identity against the hand-written plan, the
 * declarative scenario frontend, and the --dump-dag JSON round-trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <regex>

#include "driver/json.h"
#include "driver/runner.h"
#include "driver/scenario.h"
#include "driver/taskgraph.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"
#include "sim/graph/task_graph.h"

using namespace tcsim;
using namespace tcsim::driver;

namespace {

bool
has_edge(const TaskGraph::Compiled& plan, int from, int to, HazardKind kind)
{
    return std::any_of(plan.edges.begin(), plan.edges.end(),
                       [&](const TaskGraph::Edge& e) {
                           return e.from == from && e.to == to &&
                                  e.kind == kind;
                       });
}

bool
has_any_edge(const TaskGraph::Compiled& plan, int from, int to)
{
    return std::any_of(plan.edges.begin(), plan.edges.end(),
                       [&](const TaskGraph::Edge& e) {
                           return e.from == from && e.to == to;
                       });
}

/** The message carries a "<line>:<col>:" source position. */
bool
has_line_col(const std::string& msg)
{
    static const std::regex re("(^|:)[0-9]+:[0-9]+:");
    return std::regex_search(msg, re);
}

}  // namespace

// ---- Hazard derivation --------------------------------------------------

TEST(TaskGraph, RawEdgeSharesStream)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int a = g.add_task("a");
    g.task_writes(a, t);
    int b = g.add_task("b");
    g.task_reads(b, t);
    g.task_writes(b, u);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_TRUE(has_edge(plan, a, b, HazardKind::kRaw));
    // A chain needs one stream and zero events.
    EXPECT_EQ(plan.num_streams, 1);
    EXPECT_EQ(plan.stream_of[0], plan.stream_of[1]);
    EXPECT_TRUE(plan.record_event[static_cast<size_t>(a)].empty());
    EXPECT_TRUE(plan.wait_events[static_cast<size_t>(b)].empty());
}

TEST(TaskGraph, WarEdgeOrdersWriterAfterReader)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int reader = g.add_task("reader");
    g.task_reads(reader, t);
    g.task_writes(reader, u);
    int writer = g.add_task("writer");
    g.task_writes(writer, t);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_TRUE(has_edge(plan, reader, writer, HazardKind::kWar));
    EXPECT_FALSE(has_any_edge(plan, writer, reader));
}

TEST(TaskGraph, WawAllowedWhenReadConsumesBetween)
{
    // write T -> read-modify-write T: the interleaved read disambiguates
    // the double write, so it compiles with both RAW and WAW edges.
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int init = g.add_task("init");
    g.task_writes(init, t);
    int rmw = g.add_task("rmw");
    g.task_reads(rmw, t);
    g.task_writes(rmw, t);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_TRUE(has_edge(plan, init, rmw, HazardKind::kRaw));
    EXPECT_TRUE(has_edge(plan, init, rmw, HazardKind::kWaw));
}

TEST(TaskGraph, ReadAfterReadNeedsNoEdge)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int v = g.declare_tensor("V", 1024);
    int r1 = g.add_task("r1");
    g.task_reads(r1, t);
    g.task_writes(r1, u);
    int r2 = g.add_task("r2");
    g.task_reads(r2, t);
    g.task_writes(r2, v);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_FALSE(has_any_edge(plan, r1, r2));
    EXPECT_FALSE(has_any_edge(plan, r2, r1));
    // Independent readers overlap on separate streams.
    EXPECT_EQ(plan.num_streams, 2);
    EXPECT_NE(plan.stream_of[0], plan.stream_of[1]);
}

TEST(TaskGraph, DisjointViewsOverlapOnlyWithBase)
{
    // Two writers of disjoint halves run in parallel; a reader of the
    // whole tensor orders after both.
    TaskGraph g;
    int base = g.declare_tensor("A", 2048);
    int lo = g.declare_view("A_lo", base, 0, 1024);
    int hi = g.declare_view("A_hi", base, 1024, 1024);
    int out = g.declare_tensor("OUT", 1024);
    int wlo = g.add_task("wlo");
    g.task_writes(wlo, lo);
    int whi = g.add_task("whi");
    g.task_writes(whi, hi);
    int rd = g.add_task("rd");
    g.task_reads(rd, base);
    g.task_writes(rd, out);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_FALSE(has_any_edge(plan, wlo, whi));
    EXPECT_TRUE(has_edge(plan, wlo, rd, HazardKind::kRaw));
    EXPECT_TRUE(has_edge(plan, whi, rd, HazardKind::kRaw));
    EXPECT_NE(plan.stream_of[0], plan.stream_of[1]);
    // Exactly one cross-stream edge needs an event (the other rides
    // the reader's own stream order).
    int events = 0;
    for (const TaskGraph::Edge& e : plan.edges)
        if (e.needs_event)
            ++events;
    EXPECT_EQ(events, 1);
}

TEST(TaskGraph, DiamondColorsTwoStreamsAndPlacesEvents)
{
    // a -> {b, c} -> d: b shares a's stream, c gets its own, and the
    // two cross-stream edges (a->c, c->d) each carry one event.
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int v = g.declare_tensor("V", 1024);
    int w = g.declare_tensor("W", 1024);
    int a = g.add_task("a");
    g.task_writes(a, t);
    int b = g.add_task("b");
    g.task_reads(b, t);
    g.task_writes(b, u);
    int c = g.add_task("c");
    g.task_reads(c, t);
    g.task_writes(c, v);
    int d = g.add_task("d");
    g.task_reads(d, u);
    g.task_reads(d, v);
    g.task_writes(d, w);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_EQ(plan.num_streams, 2);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(a)], 1);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(b)], 1);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(c)], 2);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(d)], 1);
    EXPECT_EQ(plan.record_event[static_cast<size_t>(a)], "a_done");
    EXPECT_EQ(plan.record_event[static_cast<size_t>(c)], "c_done");
    ASSERT_EQ(plan.wait_events[static_cast<size_t>(c)].size(), 1u);
    EXPECT_EQ(plan.wait_events[static_cast<size_t>(c)][0], "a_done");
    ASSERT_EQ(plan.wait_events[static_cast<size_t>(d)].size(), 1u);
    EXPECT_EQ(plan.wait_events[static_cast<size_t>(d)][0], "c_done");
    // b -> d rides stream order; a -> b likewise.
    EXPECT_TRUE(plan.wait_events[static_cast<size_t>(b)].empty());
}

TEST(TaskGraph, TransitiveEdgeEmitsNoEvent)
{
    // a -> b -> c plus the direct hazard a -> c: the direct edge is
    // implied and must not wait on a second event.
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int a = g.add_task("a");
    g.task_writes(a, t);
    int b = g.add_task("b");
    g.task_reads(b, t);
    g.task_writes(b, u);
    int c = g.add_task("c");
    g.task_reads(c, t);
    g.task_reads(c, u);
    g.task_writes(c, t);

    TaskGraph::Compiled plan = g.compile();
    EXPECT_TRUE(has_any_edge(plan, a, c));
    // One chain, one stream: no events at all.
    EXPECT_EQ(plan.num_streams, 1);
    for (const TaskGraph::Edge& e : plan.edges)
        EXPECT_FALSE(e.needs_event);
}

TEST(TaskGraph, CompileIsDeterministic)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 4096);
    std::vector<int> outs;
    for (int i = 0; i < 6; ++i)
        outs.push_back(g.declare_tensor("O" + std::to_string(i), 1024));
    int src = g.add_task("src");
    g.task_writes(src, t);
    for (int i = 0; i < 6; ++i) {
        int k = g.add_task("k" + std::to_string(i));
        g.task_reads(k, t);
        g.task_writes(k, outs[static_cast<size_t>(i)]);
    }
    TaskGraph::Compiled p1 = g.compile();
    TaskGraph::Compiled p2 = g.compile();
    EXPECT_EQ(p1.stream_of, p2.stream_of);
    EXPECT_EQ(p1.record_event, p2.record_event);
    EXPECT_EQ(p1.wait_events, p2.wait_events);
    EXPECT_EQ(p1.edges.size(), p2.edges.size());
}

// ---- Rejection ----------------------------------------------------------

TEST(TaskGraph, RejectsBlindDoubleWrite)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int w1 = g.add_task("w1");
    g.task_writes(w1, t);
    int w2 = g.add_task("w2");
    g.task_writes(w2, t);
    try {
        g.compile();
        FAIL() << "expected TaskGraphError";
    } catch (const TaskGraphError& e) {
        EXPECT_EQ(e.task(), w2);
        EXPECT_NE(std::string(e.what()).find("multi-writer"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TaskGraph, RejectsUndeclaredAliasing)
{
    TaskGraph g;
    g.place_tensor("A", 0, 2048);
    int b = g.place_tensor("B", 1024, 1024);  // Overlaps A, not a view.
    int k = g.add_task("k");
    g.task_writes(k, b);
    try {
        g.compile();
        FAIL() << "expected TaskGraphError";
    } catch (const TaskGraphError& e) {
        EXPECT_EQ(e.tensor(), b);
        EXPECT_NE(std::string(e.what()).find("alias"), std::string::npos)
            << e.what();
    }
}

TEST(TaskGraph, RejectsViewOutsideBase)
{
    TaskGraph g;
    int base = g.declare_tensor("A", 1024);
    EXPECT_THROW(g.declare_view("V", base, 512, 1024), TaskGraphError);
}

TEST(TaskGraph, RejectsTaskTouchingNothing)
{
    TaskGraph g;
    g.declare_tensor("T", 1024);
    g.add_task("idle");
    EXPECT_THROW(g.compile(), TaskGraphError);
}

TEST(TaskGraph, ReportsFalseSerialization)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int u = g.declare_tensor("U", 1024);
    int a = g.add_task("a");
    g.task_writes(a, t);
    int b = g.add_task("b");
    g.task_writes(b, u);
    int c = g.add_task("c");
    g.task_reads(c, t);
    g.task_writes(c, t);
    g.declare_edge(a, b);  // No data flows a -> b.
    g.declare_edge(a, c);  // Backed by the RAW on T.

    TaskGraph::Compiled plan = g.compile();
    ASSERT_EQ(plan.false_serialization.size(), 1u);
    EXPECT_EQ(plan.false_serialization[0].from, a);
    EXPECT_EQ(plan.false_serialization[0].to, b);
}

// ---- Gpu::launch_graph --------------------------------------------------

namespace {

GpuConfig
small_titan_v(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

KernelDesc
small_gemm(Gpu* gpu, GemmProblem<float>* prob, const char* name)
{
    GemmKernelConfig cfg;
    cfg.m = prob->m();
    cfg.n = prob->n();
    cfg.k = prob->k();
    KernelDesc kd = make_wmma_gemm_shared(cfg, prob->upload(&gpu->mem()));
    kd.name = name;
    return kd;
}

}  // namespace

TEST(LaunchGraph, ForkJoinMatchesHandWrittenPlan)
{
    // conv -> {branch_a, branch_b} -> head, built once declaratively
    // and once with the streams/events the compiler is expected to
    // derive. Cycle timing must be bit-identical.
    GemmProblem<float> conv_p(128, 128, 128, Layout::kRowMajor,
                              Layout::kRowMajor);
    GemmProblem<float> branch_p(64, 128, 128, Layout::kRowMajor,
                                Layout::kRowMajor);
    GemmProblem<float> head_p(64, 64, 256, Layout::kRowMajor,
                              Layout::kRowMajor);

    TaskGraph g;
    int x = g.declare_tensor("X", 32768);
    int act = g.declare_tensor("ACT", 32768);
    int ba = g.declare_tensor("Ba", 16384);
    int bb = g.declare_tensor("Bb", 16384);
    int out = g.declare_tensor("OUT", 8192);
    int conv = g.add_task("conv");
    g.task_reads(conv, x);
    g.task_writes(conv, act);
    int branch_a = g.add_task("branch_a");
    g.task_reads(branch_a, act);
    g.task_writes(branch_a, ba);
    int branch_b = g.add_task("branch_b");
    g.task_reads(branch_b, act);
    g.task_writes(branch_b, bb);
    int head = g.add_task("head");
    g.task_reads(head, ba);
    g.task_reads(head, bb);
    g.task_writes(head, out);

    Gpu gpu1(small_titan_v(4));
    std::vector<KernelDesc> kernels;
    kernels.push_back(small_gemm(&gpu1, &conv_p, "conv"));
    kernels.push_back(small_gemm(&gpu1, &branch_p, "branch_a"));
    kernels.push_back(small_gemm(&gpu1, &branch_p, "branch_b"));
    kernels.push_back(small_gemm(&gpu1, &head_p, "head"));
    TaskGraph::Compiled plan = gpu1.launch_graph(g, kernels);
    EngineStats derived = gpu1.run();

    // The plan the compiler must derive: conv/branch_a/head chained on
    // stream 1, branch_b on stream 2 gated by conv's event, head
    // waiting for branch_b's event.
    EXPECT_EQ(plan.num_streams, 2);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(conv)], 1);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(branch_a)], 1);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(branch_b)], 2);
    EXPECT_EQ(plan.stream_of[static_cast<size_t>(head)], 1);

    Gpu gpu2(small_titan_v(4));
    Stream& s1 = gpu2.create_stream();
    Stream& s2 = gpu2.create_stream();
    Event& conv_done = gpu2.create_event("conv_done");
    Event& bb_done = gpu2.create_event("branch_b_done");
    s1.enqueue(small_gemm(&gpu2, &conv_p, "conv"));
    s1.record(conv_done);
    s1.enqueue(small_gemm(&gpu2, &branch_p, "branch_a"));
    s2.wait(conv_done);
    s2.enqueue(small_gemm(&gpu2, &branch_p, "branch_b"));
    s2.record(bb_done);
    s1.wait(bb_done);
    s1.enqueue(small_gemm(&gpu2, &head_p, "head"));
    EngineStats manual = gpu2.run();

    EXPECT_EQ(derived.cycles, manual.cycles);
    ASSERT_EQ(derived.kernels.size(), manual.kernels.size());
    for (size_t i = 0; i < derived.kernels.size(); ++i) {
        EXPECT_EQ(derived.kernels[i].cycles, manual.kernels[i].cycles) << i;
        EXPECT_EQ(derived.kernels[i].start_cycle,
                  manual.kernels[i].start_cycle)
            << i;
        EXPECT_EQ(derived.kernels[i].finish_cycle,
                  manual.kernels[i].finish_cycle)
            << i;
        EXPECT_EQ(derived.kernels[i].stalls.counts,
                  manual.kernels[i].stalls.counts)
            << i;
    }
}

TEST(LaunchGraph, RejectsKernelCountMismatch)
{
    TaskGraph g;
    int t = g.declare_tensor("T", 1024);
    int a = g.add_task("a");
    g.task_writes(a, t);

    Gpu gpu(small_titan_v(1));
    EXPECT_THROW(gpu.launch_graph(g, {}), std::invalid_argument);
}

// ---- Declarative scenario frontend --------------------------------------

TEST(ScenarioTaskGraph, CompilesDeclarativeForm)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "decl",
      "gpu": {"preset": "titan_v", "num_sms": 2},
      "tensors": [
        {"name": "T", "bytes": 1024},
        {"name": "U", "bytes": 1024},
        {"name": "V", "bytes": 1024}
      ],
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "writes": ["T"]},
        {"kernel": "hmma_stress", "name": "c1",
         "reads": ["T"], "writes": ["U"]},
        {"kernel": "hmma_stress", "name": "c2",
         "reads": ["T"], "writes": ["V"]}
      ]
    })");
    EXPECT_TRUE(sc.declarative);
    EXPECT_TRUE(sc.dag.compiled);
    EXPECT_EQ(sc.dag.num_streams, 2);
    // Lowered onto the legacy KernelSpec fields.
    EXPECT_EQ(sc.kernels[0].stream, 1);
    EXPECT_EQ(sc.kernels[1].stream, 1);
    EXPECT_EQ(sc.kernels[2].stream, 2);
    EXPECT_EQ(sc.kernels[0].record_event, "p_done");
    ASSERT_EQ(sc.kernels[2].wait_events.size(), 1u);
    EXPECT_EQ(sc.kernels[2].wait_events[0], "p_done");
    // The arena resolved every tensor to a concrete address.
    ASSERT_EQ(sc.dag.tensors.size(), 3u);
    EXPECT_NE(sc.dag.tensors[1].address, sc.dag.tensors[0].address);
    // And the lowered scenario actually runs.
    ScenarioResult r = run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
}

TEST(ScenarioTaskGraph, RejectsStreamKeysInDeclarativeForm)
{
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "tensors": [{"name": "T", "bytes": 64}],
      "kernels": [
        {"kernel": "hmma_stress", "name": "k", "writes": ["T"],
         "stream": 1}
      ]
    })"),
                 ScenarioError);
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "tensors": [{"name": "T", "bytes": 64}],
      "kernels": [
        {"kernel": "hmma_stress", "name": "k", "writes": ["T"],
         "sync": true}
      ]
    })"),
                 ScenarioError);
}

TEST(ScenarioTaskGraph, RejectsSweepInDeclarativeForm)
{
    EXPECT_THROW(parse_scenario_text(R"({
      "name": "s",
      "tensors": [{"name": "T", "bytes": 64}],
      "kernels": [
        {"kernel": "hmma_stress", "name": "k", "writes": ["T"]}
      ],
      "sweep": {"fork_cycle": 0, "points": []}
    })"),
                 ScenarioError);
}

TEST(ScenarioTaskGraph, MultiWriterRejectionCarriesLineCol)
{
    try {
        parse_scenario_text(R"({
          "name": "s",
          "tensors": [{"name": "T", "bytes": 64}],
          "kernels": [
            {"kernel": "hmma_stress", "name": "w1", "writes": ["T"]},
            {"kernel": "hmma_stress", "name": "w2", "writes": ["T"]}
          ]
        })");
        FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
        std::string msg = e.what();
        EXPECT_TRUE(has_line_col(msg)) << msg;
        EXPECT_NE(msg.find("multi-writer"), std::string::npos) << msg;
    }
}

TEST(ScenarioTaskGraph, UndeclaredAliasingRejectionCarriesLineCol)
{
    try {
        parse_scenario_text(R"({
          "name": "s",
          "tensors": [
            {"name": "A", "address": 0, "bytes": 2048},
            {"name": "B", "address": 1024, "bytes": 1024}
          ],
          "kernels": [
            {"kernel": "hmma_stress", "name": "k", "writes": ["B"]}
          ]
        })");
        FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
        std::string msg = e.what();
        EXPECT_TRUE(has_line_col(msg)) << msg;
        EXPECT_NE(msg.find("alias"), std::string::npos) << msg;
    }
}

TEST(ScenarioTaskGraph, UnknownTensorRejectionCarriesLineCol)
{
    try {
        parse_scenario_text(R"({
          "name": "s",
          "tensors": [{"name": "T", "bytes": 64}],
          "kernels": [
            {"kernel": "hmma_stress", "name": "k", "writes": ["ghost"]}
          ]
        })");
        FAIL() << "expected ScenarioError";
    } catch (const ScenarioError& e) {
        std::string msg = e.what();
        EXPECT_TRUE(has_line_col(msg)) << msg;
        EXPECT_NE(msg.find("ghost"), std::string::npos) << msg;
    }
}

TEST(ScenarioTaskGraph, ExplicitWaitIsAuditOnlyAnnotation)
{
    // a -> b has no data hazard: the declared wait is reported as
    // false serialization and the lowered plan does not order b.
    Scenario sc = parse_scenario_text(R"({
      "name": "audit",
      "tensors": [
        {"name": "T", "bytes": 64},
        {"name": "U", "bytes": 64}
      ],
      "kernels": [
        {"kernel": "hmma_stress", "name": "a", "writes": ["T"],
         "record_event": "a_done"},
        {"kernel": "hmma_stress", "name": "b", "writes": ["U"],
         "wait_event": "a_done"}
      ]
    })");
    ASSERT_EQ(sc.dag.false_serialization.size(), 1u);
    EXPECT_EQ(sc.dag.false_serialization[0].first, "a");
    EXPECT_EQ(sc.dag.false_serialization[0].second, "b");
    EXPECT_TRUE(sc.kernels[1].wait_events.empty());
    EXPECT_NE(sc.kernels[0].stream, sc.kernels[1].stream);
    // The explicit record_event name is honoured so event.<n>.cycle
    // metrics keep resolving.
    EXPECT_EQ(sc.kernels[0].record_event, "a_done");
}

TEST(ScenarioTaskGraph, CompiledPlanMatchesHandWrittenScenarioCycles)
{
    // The same tensor-parallel MLP layer written both ways: the
    // declarative form must reproduce the legacy form cycle-exactly.
    Scenario decl = parse_scenario_text(R"({
      "name": "mlp_decl",
      "gpu": {"preset": "titan_v", "num_sms": 4},
      "tensors": [
        {"name": "X",  "bytes": 32768},
        {"name": "A1", "bytes": 32768},
        {"name": "A1a", "alias_of": "A1", "offset": 0, "bytes": 16384},
        {"name": "A1b", "alias_of": "A1", "offset": 16384, "bytes": 16384},
        {"name": "A2", "bytes": 16384}
      ],
      "kernels": [
        {"kernel": "wmma_shared", "name": "l1a", "m": 64, "n": 128,
         "k": 256, "reads": ["X"], "writes": ["A1a"]},
        {"kernel": "wmma_shared", "name": "l1b", "m": 64, "n": 128,
         "k": 256, "reads": ["X"], "writes": ["A1b"]},
        {"kernel": "wmma_shared", "name": "l2", "m": 64, "n": 64,
         "k": 256, "reads": ["A1"], "writes": ["A2"]}
      ]
    })");
    Scenario legacy = parse_scenario_text(R"({
      "name": "mlp_legacy",
      "gpu": {"preset": "titan_v", "num_sms": 4},
      "kernels": [
        {"kernel": "wmma_shared", "name": "l1a", "m": 64, "n": 128,
         "k": 256, "stream": 1},
        {"kernel": "wmma_shared", "name": "l1b", "m": 64, "n": 128,
         "k": 256, "stream": 2, "record_event": "l1b_done"},
        {"kernel": "wmma_shared", "name": "l2", "m": 64, "n": 64,
         "k": 256, "stream": 1, "wait_event": "l1b_done"}
      ]
    })");
    ScenarioResult rd = run_scenario(decl);
    ScenarioResult rl = run_scenario(legacy);
    ASSERT_TRUE(rd.error.empty()) << rd.error;
    ASSERT_TRUE(rl.error.empty()) << rl.error;
    EXPECT_EQ(rd.totals.cycles, rl.totals.cycles);
    EXPECT_EQ(rd.totals.stalls.counts, rl.totals.stalls.counts);
    ASSERT_EQ(rd.kernels.size(), rl.kernels.size());
    for (size_t i = 0; i < rd.kernels.size(); ++i) {
        EXPECT_EQ(rd.kernels[i].stats.cycles, rl.kernels[i].stats.cycles)
            << rd.kernels[i].name;
        EXPECT_EQ(rd.kernels[i].stats.start_cycle,
                  rl.kernels[i].stats.start_cycle)
            << rd.kernels[i].name;
        EXPECT_EQ(rd.kernels[i].stats.finish_cycle,
                  rl.kernels[i].stats.finish_cycle)
            << rd.kernels[i].name;
    }
}

TEST(ScenarioTaskGraph, LegacyPlumbingStillParses)
{
    // The deprecated explicit form keeps working (warn-only).
    Scenario sc = parse_scenario_text(R"({
      "name": "legacy",
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "stream": 1,
         "record_event": "e"},
        {"kernel": "hmma_stress", "name": "c", "stream": 2,
         "wait_event": "e"}
      ]
    })");
    EXPECT_FALSE(sc.declarative);
    EXPECT_EQ(sc.kernels[1].wait_events.size(), 1u);
}

// ---- DAG dump -----------------------------------------------------------

TEST(DagDump, JsonRoundTripsThroughDriverParser)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "dump_me",
      "tensors": [
        {"name": "T", "bytes": 1024},
        {"name": "U", "bytes": 1024}
      ],
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "writes": ["T"]},
        {"kernel": "hmma_stress", "name": "c",
         "reads": ["T"], "writes": ["U"]}
      ]
    })");
    TaskGraphDag dag = build_dag(sc);
    EXPECT_TRUE(dag.compiled);

    JsonValue doc = json_parse(dag_to_json(sc, dag).dump());
    EXPECT_EQ(doc.find("scenario")->as_string(), "dump_me");
    EXPECT_EQ(doc.find("declarative")->as_bool(), true);
    EXPECT_EQ(doc.find("num_streams")->as_int(), 1);
    ASSERT_NE(doc.find("tasks"), nullptr);
    ASSERT_EQ(doc.find("tasks")->as_array().size(), 2u);
    const JsonValue& edge = doc.find("edges")->as_array().at(0);
    EXPECT_EQ(edge.find("from")->as_string(), "p");
    EXPECT_EQ(edge.find("to")->as_string(), "c");
    EXPECT_EQ(edge.find("kind")->as_string(), "raw");
    ASSERT_NE(doc.find("tensors"), nullptr);
    EXPECT_EQ(doc.find("tensors")->as_array().size(), 2u);

    std::string dot = dag_to_dot(sc, dag);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"p\" -> \"c\""), std::string::npos);
}

TEST(DagDump, LegacyScenarioSynthesizesDag)
{
    Scenario sc = parse_scenario_text(R"({
      "name": "legacy_dag",
      "kernels": [
        {"kernel": "hmma_stress", "name": "p", "stream": 1,
         "record_event": "e"},
        {"kernel": "hmma_stress", "name": "c", "stream": 2,
         "wait_event": "e"},
        {"kernel": "hmma_stress", "name": "j", "stream": 3, "sync": true}
      ]
    })");
    TaskGraphDag dag = build_dag(sc);
    EXPECT_FALSE(dag.compiled);
    EXPECT_EQ(dag.num_streams, 3);
    bool event_edge = false, sync_edge = false;
    for (const DagEdge& e : dag.edges) {
        if (e.from == "p" && e.to == "c" && e.kind == "event")
            event_edge = true;
        if (e.to == "j" && e.kind == "sync")
            sync_edge = true;
    }
    EXPECT_TRUE(event_edge);
    EXPECT_TRUE(sync_edge);
    JsonValue doc = json_parse(dag_to_json(sc, dag).dump());
    EXPECT_EQ(doc.find("declarative")->as_bool(), false);
}
