/**
 * @file
 * Tests that the GPU configuration presets reproduce the published
 * Titan V / RTX 2080 resource numbers the paper quotes.
 */

#include <gtest/gtest.h>

#include "arch/gpu_config.h"

namespace tcsim {
namespace {

TEST(TitanV, ResourceNumbers)
{
    GpuConfig c = titan_v_config();
    EXPECT_EQ(c.arch, Arch::kVolta);
    EXPECT_EQ(c.num_sms, 80);
    EXPECT_EQ(c.subcores_per_sm, 4);
    EXPECT_EQ(c.tensor_cores_per_subcore, 2);
    // "The Tesla Titan V GPU contains 640 tensor cores distributed
    //  across 80 SMs, with eight tensor cores per SM" (Section II-D).
    EXPECT_EQ(c.total_tensor_cores(), 640);
    EXPECT_EQ(c.subcores_per_sm * c.tensor_cores_per_subcore, 8);
}

TEST(TitanV, PeakTensorTflops)
{
    // "... providing a theoretical performance of 125 TFLOPS at an
    //  operational frequency of 1530 MHz" (Section II-D).
    GpuConfig c = titan_v_config();
    EXPECT_NEAR(c.peak_tensor_tflops(), 125.0, 1.0);
}

TEST(TitanV, PeakFp32Tflops)
{
    // 5120 FP32 lanes * 2 FLOP * 1.53 GHz = 15.7 TFLOPS.
    GpuConfig c = titan_v_config();
    EXPECT_NEAR(c.peak_fp32_tflops(), 15.7, 0.2);
}

TEST(TitanV, TensorCoreMicroarchConstants)
{
    GpuConfig c = titan_v_config();
    // Section IV: 16 FEDP units per tensor core, 4-stage pipeline,
    // HMMA initiation interval of 2 cycles, 4 HMMA warps per SM.
    EXPECT_EQ(c.fedp_units_per_tc, 16);
    EXPECT_EQ(c.fedp_pipeline_stages, 4);
    EXPECT_EQ(c.hmma_issue_interval, 2);
    EXPECT_EQ(c.max_tc_warps_per_sm, 4);
}

TEST(Rtx2080, Preset)
{
    GpuConfig c = rtx2080_config();
    EXPECT_EQ(c.arch, Arch::kTuring);
    EXPECT_EQ(c.num_sms, 46);
    EXPECT_GT(c.peak_tensor_tflops(), 0.0);
}

TEST(TcModeNames, AllNamed)
{
    EXPECT_STREQ(tc_mode_name(TcMode::kFp16), "fp16");
    EXPECT_STREQ(tc_mode_name(TcMode::kMixed), "mixed");
    EXPECT_STREQ(tc_mode_name(TcMode::kInt8), "int8");
    EXPECT_STREQ(tc_mode_name(TcMode::kInt4), "int4");
}

}  // namespace
}  // namespace tcsim
