/**
 * @file
 * Engine-level tests of the transaction-queued memory hierarchy:
 * constricting MSHR entries / NoC bandwidth / DRAM queue depth must
 * slow memory-bound kernels monotonically and surface the matching
 * back-pressure stall reasons, and the event-driven engine's
 * idle-skip must stay bit-identical to a lockstep (tick every cycle)
 * run while transactions are in flight.
 */

#include <gtest/gtest.h>

#include "arch/gpu_config.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

/** Small memory-bound workload: the naive WMMA GEMM streams A/B from
 *  global memory every iteration, on a chip slice with a tiny L1 so
 *  most sectors miss. */
GpuConfig
mem_bound_config()
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 4;
    cfg.l1_size = 16 * 1024;
    return cfg;
}

LaunchStats
run_gemm(const GpuConfig& cfg, SimOptions opts = {})
{
    Gpu gpu(cfg, opts);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 128;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    return gpu.launch(make_wmma_gemm_naive(kc, buf));
}

TEST(MemBackpressure, MshrConstrictionSlowsMonotonically)
{
    GpuConfig cfg = mem_bound_config();
    LaunchStats wide = run_gemm(cfg);
    cfg.l1_mshr_entries = 8;
    LaunchStats mid = run_gemm(cfg);
    cfg.l1_mshr_entries = 2;
    LaunchStats narrow = run_gemm(cfg);

    // An unconstricted run never blocks on the MSHR file.
    EXPECT_EQ(wide.stalls[StallReason::kMshrFull], 0u);
    // Constriction costs cycles, monotonically...
    EXPECT_GE(mid.cycles, wide.cycles);
    EXPECT_GT(narrow.cycles, wide.cycles);
    EXPECT_GE(narrow.cycles, mid.cycles);
    // ...and the warps observe the new stall reason.
    EXPECT_GT(narrow.stalls[StallReason::kMshrFull], 0u);
}

TEST(MemBackpressure, NocConstrictionSlowsMonotonically)
{
    GpuConfig cfg = mem_bound_config();
    LaunchStats wide = run_gemm(cfg);
    cfg.noc_bytes_per_cycle = 32.0;
    cfg.noc_queue_depth = 16;
    LaunchStats mid = run_gemm(cfg);
    cfg.noc_bytes_per_cycle = 8.0;
    LaunchStats narrow = run_gemm(cfg);

    EXPECT_GE(mid.cycles, wide.cycles);
    EXPECT_GT(narrow.cycles, wide.cycles);
    EXPECT_GE(narrow.cycles, mid.cycles);
    EXPECT_GT(narrow.stalls[StallReason::kNocBusy], 0u);
    // Queueing delay at the interconnect is visible in the counters.
    EXPECT_GT(narrow.mem.noc_queue_cycles, wide.mem.noc_queue_cycles);
}

TEST(MemBackpressure, DramQueueConstrictionSlowsMonotonically)
{
    GpuConfig cfg = mem_bound_config();
    cfg.l2_size = 64 * 1024;  // Force traffic through to DRAM.
    LaunchStats wide = run_gemm(cfg);
    cfg.dram_queue_depth = 2;
    cfg.dram_bytes_per_cycle_per_partition = 1.0;
    cfg.num_mem_partitions = 1;
    LaunchStats narrow = run_gemm(cfg);

    EXPECT_GT(narrow.cycles, wide.cycles);
    EXPECT_GT(narrow.stalls[StallReason::kDramQueue], 0u);
    // Note: dram_queue_cycles (waiting *inside* the queue) shrinks
    // under a shallow queue — refusals move the waiting upstream into
    // the kDramQueue stall counter instead.
}

TEST(MemBackpressure, ComputeBoundKernelUnaffectedByNarrowQueues)
{
    // The register-resident HMMA stress kernel touches no global
    // memory: narrow memory queues must not change its timing.
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 4;
    SimOptions opts;
    Gpu a(cfg, opts);
    LaunchStats sa = a.launch(make_hmma_stress(cfg.arch, TcMode::kMixed,
                                               8, 4, 32));
    cfg.l1_mshr_entries = 1;
    cfg.noc_bytes_per_cycle = 1.0;
    cfg.dram_queue_depth = 1;
    Gpu b(cfg, opts);
    LaunchStats sb = b.launch(make_hmma_stress(cfg.arch, TcMode::kMixed,
                                               8, 4, 32));
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sb.stalls[StallReason::kMshrFull], 0u);
    EXPECT_EQ(sb.stalls[StallReason::kNocBusy], 0u);
    EXPECT_EQ(sb.stalls[StallReason::kDramQueue], 0u);
}

/** Full-stats comparison of one launch under idle-skip vs lockstep. */
void
expect_bit_identical(const GpuConfig& cfg)
{
    SimOptions skip;
    skip.idle_skip = true;
    SimOptions lockstep;
    lockstep.idle_skip = false;

    LaunchStats a = run_gemm(cfg, skip);
    LaunchStats b = run_gemm(cfg, lockstep);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.start_cycle, b.start_cycle);
    EXPECT_EQ(a.finish_cycle, b.finish_cycle);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hmma_instructions, b.hmma_instructions);
    EXPECT_EQ(a.mem.l1_hits, b.mem.l1_hits);
    EXPECT_EQ(a.mem.l1_misses, b.mem.l1_misses);
    EXPECT_EQ(a.mem.l2_hits, b.mem.l2_hits);
    EXPECT_EQ(a.mem.l2_misses, b.mem.l2_misses);
    EXPECT_EQ(a.mem.dram_bytes, b.mem.dram_bytes);
    EXPECT_EQ(a.mem.mshr_merges, b.mem.mshr_merges);
    EXPECT_EQ(a.mem.noc_queue_cycles, b.mem.noc_queue_cycles);
    EXPECT_EQ(a.mem.l2_queue_cycles, b.mem.l2_queue_cycles);
    EXPECT_EQ(a.mem.dram_queue_cycles, b.mem.dram_queue_cycles);
    for (size_t i = 0; i < kNumStallReasons; ++i) {
        StallReason r = static_cast<StallReason>(i);
        EXPECT_EQ(a.stalls[r], b.stalls[r]) << stall_reason_name(r);
    }
}

TEST(IdleSkip, BitIdenticalWithTransactionsInFlight)
{
    // The memory-bound GEMM keeps transactions in flight (and MIO
    // heads blocked on refusals) for most of the run; skipping over
    // the stalled cycles must not change a single counter.
    expect_bit_identical(mem_bound_config());
}

TEST(IdleSkip, BitIdenticalUnderHeavyBackpressure)
{
    // Constrict every level so refusals (and their retry-cycle jumps)
    // dominate: the retry times folded into next_event must land on
    // exactly the cycles the lockstep run acts on.
    GpuConfig cfg = mem_bound_config();
    cfg.l1_mshr_entries = 2;
    cfg.noc_bytes_per_cycle = 16.0;
    cfg.noc_queue_depth = 8;
    cfg.l2_bank_queue_depth = 2;
    cfg.dram_queue_depth = 4;
    cfg.l2_size = 64 * 1024;
    expect_bit_identical(cfg);
}

TEST(IdleSkip, SkipsCyclesWhileMemoryInFlight)
{
    // Sanity: the event-driven loop actually jumps while the only
    // outstanding work is in-flight memory (ticks < cycles).
    GpuConfig cfg = mem_bound_config();
    SimOptions opts;
    Gpu gpu(cfg, opts);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 128;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    gpu.default_stream().enqueue(make_wmma_gemm_naive(kc, buf));
    EngineStats es = gpu.run();
    EXPECT_GT(es.skipped_cycles, 0u);
    EXPECT_LT(es.ticks, es.cycles);
}

}  // namespace
}  // namespace tcsim
