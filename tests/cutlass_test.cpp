/**
 * @file
 * Mini-CUTLASS template tests: functional verification of every
 * configuration in the default sweep (threadblock/warp tilings x
 * operand layouts x pipelining), mirroring the CUTLASS unit-test
 * suite the paper ran on GPGPU-Sim (Section V-B), plus structural
 * checks on the generated kernels.
 */

#include <gtest/gtest.h>

#include "cutlass/gemm.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

GpuConfig
small_titan_v(int sms = 2)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

class CutlassSweep : public ::testing::TestWithParam<cutlass::GemmTemplate>
{
};

TEST_P(CutlassSweep, FunctionalGemm)
{
    const cutlass::GemmTemplate& t = GetParam();
    // Problem sized to exercise a 2x2 CTA grid and >= 2 K blocks.
    const int m = 2 * t.block_m;
    const int n = 2 * t.block_n;
    const int k = std::max(2 * t.block_k, 64);

    Gpu gpu(small_titan_v());
    if (t.mode == TcMode::kMixed) {
        GemmProblem<float> prob(m, n, k, t.a_layout, t.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        LaunchStats s = gpu.launch(cutlass::make_gemm(t, m, n, k, buf));
        EXPECT_LT(prob.verify(gpu.mem(), buf.d), 1e-3) << t.name();
        uint64_t wmma_ops =
            static_cast<uint64_t>(m / 16) * (n / 16) * (k / 16);
        EXPECT_EQ(s.hmma_instructions, wmma_ops * 16) << t.name();
    } else {
        GemmProblem<half> prob(m, n, k, t.a_layout, t.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        gpu.launch(cutlass::make_gemm(t, m, n, k, buf));
        EXPECT_LT(prob.verify(gpu.mem(), buf.d), 0.05) << t.name();
    }
}

std::vector<cutlass::GemmTemplate>
sweep_both_modes()
{
    auto v = cutlass::default_sweep(TcMode::kMixed);
    auto f = cutlass::default_sweep(TcMode::kFp16);
    v.insert(v.end(), f.begin(), f.end());
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    DefaultSweep, CutlassSweep, ::testing::ValuesIn(sweep_both_modes()),
    [](const ::testing::TestParamInfo<cutlass::GemmTemplate>& info) {
        return info.param.name();
    });

TEST(CutlassTemplate, NameEncodesConfiguration)
{
    cutlass::GemmTemplate t;
    t.block_m = 128;
    t.block_n = 64;
    t.block_k = 32;
    t.warp_m = 32;
    t.warp_n = 32;
    t.double_buffer = true;
    EXPECT_EQ(t.name(), "cutlass_gemm_mixed_128x64x32_w32x32_rowrow_pipe2");
}

TEST(CutlassTemplate, WarpsPerCta)
{
    cutlass::GemmTemplate t;
    t.block_m = 128;
    t.block_n = 128;
    t.warp_m = 32;
    t.warp_n = 64;
    EXPECT_EQ(t.warps_per_cta(), 8);
}

TEST(CutlassTemplate, DefaultSweepIsSubstantial)
{
    // The paper verified ~680 CUTLASS test cases; our sweep instantiates
    // 48 configurations per mode, each verified functionally.
    EXPECT_GE(cutlass::default_sweep(TcMode::kMixed).size(), 48u);
}

TEST(CutlassPipelining, DoubleBufferReducesCycles)
{
    // Software pipelining overlaps staging with compute: fewer cycles
    // for the same math.
    cutlass::GemmTemplate t;
    t.block_m = t.block_n = 64;
    t.block_k = 32;
    t.warp_m = t.warp_n = 32;

    const int m = 128, n = 128, k = 512;
    GemmProblem<float> prob(m, n, k, t.a_layout, t.b_layout);

    t.double_buffer = false;
    Gpu gpu1(small_titan_v());
    GemmBuffers b1 = prob.upload(&gpu1.mem());
    uint64_t c1 = gpu1.launch(cutlass::make_gemm(t, m, n, k, b1, false))
                      .cycles;

    t.double_buffer = true;
    Gpu gpu2(small_titan_v());
    GemmBuffers b2 = prob.upload(&gpu2.mem());
    uint64_t c2 = gpu2.launch(cutlass::make_gemm(t, m, n, k, b2, false))
                      .cycles;

    EXPECT_LT(c2, c1);
}

TEST(CutlassPipelining, PipelinedBeatsPlainWmmaKernel)
{
    // The CUTLASS-style kernel should outperform the simple
    // shared-memory WMMA kernel (cuBLAS > WMMA in Fig 17 terms).
    cutlass::GemmTemplate t;
    t.block_m = t.block_n = 128;
    t.block_k = 32;
    t.warp_m = 32;
    t.warp_n = 64;
    t.double_buffer = true;

    const int m = 256, n = 256, k = 256;
    GemmProblem<float> prob(m, n, k, t.a_layout, t.b_layout);

    Gpu gpu1(small_titan_v(4));
    GemmBuffers b1 = prob.upload(&gpu1.mem());
    uint64_t cutlass_cycles =
        gpu1.launch(cutlass::make_gemm(t, m, n, k, b1, false)).cycles;

    Gpu gpu2(small_titan_v(4));
    GemmBuffers b2 = prob.upload(&gpu2.mem());
    GemmKernelConfig plain;
    plain.m = m;
    plain.n = n;
    plain.k = k;
    plain.functional = false;
    uint64_t plain_cycles =
        gpu2.launch(make_wmma_gemm_shared(plain, b2)).cycles;

    EXPECT_LT(cutlass_cycles, plain_cycles);
}

}  // namespace
}  // namespace tcsim
