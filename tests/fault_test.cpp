/**
 * @file
 * Fault-injection tests: FaultPlan compilation (random picks are
 * seed-deterministic, unsatisfiable plans are rejected), kernel rule
 * budgets, the stateless ECC hash, and end-to-end engine behaviour --
 * disabled/degraded SMs slow a multi-CTA kernel, slowdowns stretch
 * completion, hangs block the run until kill_stream() or a watchdog
 * contains them, and every faulty run stays bit-identical across
 * sim_threads.
 */

#include <gtest/gtest.h>

#include "arch/gpu_config.h"
#include "common/sim_error.h"
#include "kernels/kernel_registry.h"
#include "sim/fault/fault_plan.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

GpuConfig
small_gpu(int sms = 4)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

SimOptions
serial_sim()
{
    SimOptions sim;
    sim.sim_threads = 1;
    return sim;
}

/** A multi-CTA GEMM so SM-level faults have something to slow down. */
KernelDesc
gemm_kernel(Gpu& gpu, const GpuConfig& cfg, int mn = 128)
{
    const KernelFamilyInfo* info = find_kernel_family("wmma_naive");
    EXPECT_NE(info, nullptr);
    GemmKernelConfig kc;
    kc.arch = cfg.arch;
    kc.m = kc.n = mn;
    kc.k = 64;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    KernelDesc desc =
        build_gemm_kernel(info->family, kc, buf, /*warps_per_cta=*/8);
    return desc;
}

/** Cycles to run one GEMM to completion under @p faults. */
uint64_t
faulty_cycles(const FaultSpec& faults, FaultCounters* counters = nullptr,
              int sim_threads = 1)
{
    GpuConfig cfg = small_gpu();
    SimOptions sim = serial_sim();
    sim.sim_threads = sim_threads;
    Gpu gpu(cfg, sim, faults);
    gpu.default_stream().enqueue(gemm_kernel(gpu, cfg));
    EngineStats stats = gpu.run();
    if (counters)
        *counters = gpu.fault_counters();
    return stats.cycles;
}

}  // namespace

// --- FaultPlan compilation -------------------------------------------

TEST(FaultPlan, RandomPicksAreSeedDeterministic)
{
    GpuConfig cfg = small_gpu(16);
    FaultSpec spec;
    spec.enabled = true;
    spec.seed = 7;
    spec.random_disabled_sms = 3;
    spec.random_degraded_sms = 2;
    spec.degraded_warp_slots = 4;

    FaultPlan a(spec, cfg);
    FaultPlan b(spec, cfg);
    int disabled = 0, degraded = 0;
    for (int sm = 0; sm < cfg.num_sms; ++sm) {
        EXPECT_EQ(a.sm_disabled(sm), b.sm_disabled(sm));
        EXPECT_EQ(a.warp_slot_cap(sm), b.warp_slot_cap(sm));
        disabled += a.sm_disabled(sm);
        degraded += a.warp_slot_cap(sm) != 0;
    }
    EXPECT_EQ(disabled, 3);
    EXPECT_EQ(degraded, 2);
    EXPECT_EQ(a.counters().disabled_sms, 3u);
    EXPECT_EQ(a.counters().degraded_sms, 2u);
}

TEST(FaultPlan, RejectsUnsatisfiablePlans)
{
    GpuConfig cfg = small_gpu(4);
    FaultSpec bad_id;
    bad_id.enabled = true;
    bad_id.disabled_sms = {4};  // Out of range on a 4-SM chip.
    EXPECT_THROW(FaultPlan(bad_id, cfg), SimError);

    FaultSpec all_dead;
    all_dead.enabled = true;
    all_dead.disabled_sms = {0, 1, 2};
    all_dead.random_disabled_sms = 1;  // Would disable every SM.
    EXPECT_THROW(FaultPlan(all_dead, cfg), SimError);

    FaultSpec bad_degrade;
    bad_degrade.enabled = true;
    bad_degrade.degraded_sms = {{7, 4}};
    EXPECT_THROW(FaultPlan(bad_degrade, cfg), SimError);
}

TEST(FaultPlan, KernelRuleBudgets)
{
    GpuConfig cfg = small_gpu();
    FaultSpec spec;
    spec.enabled = true;
    spec.hangs.push_back({"fc0", 1.0, 2});
    spec.slowdowns.push_back({"gemm", 3.0, 1});
    FaultPlan plan(spec, cfg);

    // Hang budget: two matches, then exhausted; non-matches never hit.
    EXPECT_FALSE(plan.take_hang("other"));
    EXPECT_TRUE(plan.take_hang("b0.fc0.k0"));
    EXPECT_TRUE(plan.take_hang("b1.fc0.k0"));
    EXPECT_FALSE(plan.take_hang("b2.fc0.k0"));
    EXPECT_EQ(plan.counters().hangs, 2u);

    // Slowdown budget: first match gets the factor, later ones don't.
    EXPECT_DOUBLE_EQ(plan.take_slowdown("gemm_0"), 3.0);
    EXPECT_DOUBLE_EQ(plan.take_slowdown("gemm_1"), 1.0);
    EXPECT_EQ(plan.counters().slowdowns, 1u);
}

TEST(FaultPlan, EccHashIsStatelessAndDeterministic)
{
    GpuConfig cfg = small_gpu();
    FaultSpec spec;
    spec.enabled = true;
    spec.ecc_prob = 0.5;
    spec.ecc_extra_cycles = 40;
    FaultPlan a(spec, cfg);
    FaultPlan b(spec, cfg);

    uint64_t hits = 0;
    for (uint64_t addr = 0; addr < 256 * 32; addr += 32) {
        const uint64_t da = a.ecc_delay(1, addr, 1000);
        // Same (sm, addr, cycle) -> same decision in any plan instance,
        // regardless of what either plan was asked before.
        EXPECT_EQ(da, b.ecc_delay(1, addr, 1000));
        EXPECT_TRUE(da == 0 || da == 40);
        hits += da != 0;
    }
    // p = 0.5 over 256 draws: comfortably away from 0 and 256.
    EXPECT_GT(hits, 64u);
    EXPECT_LT(hits, 192u);
    EXPECT_EQ(a.counters().ecc_retries, hits);
    EXPECT_EQ(a.counters().ecc_extra_cycles, hits * 40);
}

// --- End-to-end engine behaviour -------------------------------------

TEST(FaultEngine, DisabledAndDegradedSmsSlowTheChip)
{
    const uint64_t healthy = faulty_cycles(FaultSpec{});

    FaultSpec disabled;
    disabled.enabled = true;
    disabled.disabled_sms = {0, 1, 2};
    FaultCounters dc;
    const uint64_t one_sm = faulty_cycles(disabled, &dc);
    EXPECT_GT(one_sm, healthy);
    EXPECT_EQ(dc.disabled_sms, 3u);

    // Cap every SM to one CTA's worth of warp slots: the chip still
    // finishes, just with far less concurrency.
    FaultSpec degraded;
    degraded.enabled = true;
    for (int sm = 0; sm < 4; ++sm)
        degraded.degraded_sms.push_back({sm, 8});
    FaultCounters gc;
    const uint64_t capped = faulty_cycles(degraded, &gc);
    EXPECT_GT(capped, healthy);
    EXPECT_EQ(gc.degraded_sms, 4u);
}

TEST(FaultEngine, UndispatchableDegradedPlanIsATypedError)
{
    // Warp caps below the kernel's warps-per-CTA on every SM: no CTA
    // can ever dispatch.  Scenario input, so a typed SimError (with
    // the diagnostic dump), never a process abort.
    FaultSpec starved;
    starved.enabled = true;
    for (int sm = 0; sm < 4; ++sm)
        starved.degraded_sms.push_back({sm, 2});
    try {
        faulty_cycles(starved);
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("undispatchable"),
                  std::string::npos);
    }
}

TEST(FaultEngine, SlowdownStretchesCompletion)
{
    const uint64_t healthy = faulty_cycles(FaultSpec{});

    FaultSpec slow;
    slow.enabled = true;
    slow.slowdowns.push_back({"wmma", 2.0, 0});
    FaultCounters fc;
    const uint64_t stretched = faulty_cycles(slow, &fc);
    EXPECT_EQ(fc.slowdowns, 1u);
    EXPECT_GT(fc.slowdown_extra_cycles, 0u);
    // Held to ~2x its natural duration.
    EXPECT_GE(stretched, healthy + fc.slowdown_extra_cycles);
    EXPECT_GT(stretched, healthy * 3 / 2);
}

TEST(FaultEngine, FaultyRunsAreBitIdenticalAcrossSimThreads)
{
    FaultSpec faults;
    faults.enabled = true;
    faults.disabled_sms = {1};
    faults.degraded_sms = {{2, 4}};
    faults.slowdowns.push_back({"wmma", 1.5, 0});
    faults.ecc_prob = 0.05;
    faults.ecc_extra_cycles = 60;

    FaultCounters serial_c, par_c;
    const uint64_t serial = faulty_cycles(faults, &serial_c, 1);
    const uint64_t par = faulty_cycles(faults, &par_c, 4);
    EXPECT_EQ(serial, par);
    EXPECT_EQ(serial_c.ecc_retries, par_c.ecc_retries);
    EXPECT_EQ(serial_c.ecc_extra_cycles, par_c.ecc_extra_cycles);
    EXPECT_EQ(serial_c.slowdown_extra_cycles, par_c.slowdown_extra_cycles);
}

TEST(FaultEngine, EccRetriesAddLatencyDeterministically)
{
    const uint64_t healthy = faulty_cycles(FaultSpec{});

    FaultSpec ecc;
    ecc.enabled = true;
    ecc.ecc_prob = 0.5;
    ecc.ecc_extra_cycles = 100;
    FaultCounters c1, c2;
    const uint64_t a = faulty_cycles(ecc, &c1);
    const uint64_t b = faulty_cycles(ecc, &c2);
    EXPECT_EQ(a, b);
    EXPECT_EQ(c1.ecc_retries, c2.ecc_retries);
    EXPECT_GT(c1.ecc_retries, 0u);
    EXPECT_GT(a, healthy);
}

TEST(FaultEngine, HangBlocksRunUntilAndKillStreamRecovers)
{
    GpuConfig cfg = small_gpu();
    Gpu gpu(cfg, serial_sim(), [] {
        FaultSpec f;
        f.enabled = true;
        f.hangs.push_back({"doomed", 1.0, 1});
        return f;
    }());

    Stream& victim = gpu.create_stream();
    KernelDesc doomed = gemm_kernel(gpu, cfg, 64);
    doomed.name = "doomed";
    victim.enqueue(doomed);

    // A resumable advance pauses blocked once the hung launch is the
    // only thing left on the chip -- it never retires on its own.
    gpu.run_until(50'000'000);
    EXPECT_TRUE(gpu.run_active());
    EXPECT_EQ(gpu.fault_counters().hangs, 1u);
    EXPECT_TRUE(gpu.stream_quiescent(victim));

    // Host containment: kill the stream, then healthy work completes.
    gpu.kill_stream(victim);
    gpu.default_stream().enqueue(gemm_kernel(gpu, cfg, 64));
    EngineStats stats = gpu.run();
    EXPECT_EQ(stats.kernels.size(), 1u);
}

TEST(FaultEngine, HangIsTerminalForRunToCompletion)
{
    GpuConfig cfg = small_gpu();
    FaultSpec f;
    f.enabled = true;
    f.hangs.push_back({"wmma", 1.0, 1});
    Gpu gpu(cfg, serial_sim(), f);
    gpu.default_stream().enqueue(gemm_kernel(gpu, cfg, 64));
    try {
        gpu.run();
        FAIL() << "expected SimHangError";
    } catch (const SimHangError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("injected kernel hang"), std::string::npos);
        EXPECT_NE(what.find("resident kernel"), std::string::npos);
    }
}

TEST(FaultEngine, MaxCyclesWatchdogCarriesDiagnosticDump)
{
    GpuConfig cfg = small_gpu();
    SimOptions sim = serial_sim();
    sim.max_cycles = 200;  // Far below one GEMM's duration.
    Gpu gpu(cfg, sim);
    gpu.default_stream().enqueue(gemm_kernel(gpu, cfg, 64));
    try {
        gpu.run();
        FAIL() << "expected SimHangError";
    } catch (const SimHangError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("max_cycles"), std::string::npos);
        EXPECT_NE(what.find("resident kernel"), std::string::npos);
        EXPECT_NE(what.find("busy SM"), std::string::npos);
    }
}

TEST(FaultEngine, FaultsAreTimingOnly)
{
    // A heavily faulted run still completes and verifies: faults are
    // timing-only and must never corrupt functional results.
    GpuConfig cfg = small_gpu();
    FaultSpec faults;
    faults.enabled = true;
    faults.disabled_sms = {0, 3};
    faults.ecc_prob = 0.3;
    faults.ecc_extra_cycles = 80;
    faults.slowdowns.push_back({"wmma", 2.0, 0});
    Gpu gpu(cfg, serial_sim(), faults);
    KernelDesc k = gemm_kernel(gpu, cfg, 64);
    gpu.default_stream().enqueue(k);
    EngineStats stats = gpu.run();
    EXPECT_EQ(stats.kernels.size(), 1u);
    EXPECT_GT(gpu.fault_counters().ecc_retries, 0u);
}
