/**
 * @file
 * End-to-end integration tests: full WMMA GEMM kernels executed on
 * the cycle-level simulator with functional verification against the
 * host reference, across sizes, layouts, modes and kernel variants.
 */

#include <gtest/gtest.h>

#include "kernels/gemm_kernels.h"
#include "sass/hmma_decomposer.h"
#include "sim/gpu.h"

namespace tcsim {
namespace {

/** Small Titan V (fewer SMs) keeps unit-test runtime low without
 *  changing per-SM behaviour. */
GpuConfig
small_titan_v(int sms = 4)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

struct E2eCase
{
    int m, n, k;
    TcMode mode;
    Layout a_layout, b_layout;
    bool shared;
};

class GemmEndToEnd : public ::testing::TestWithParam<E2eCase>
{
};

TEST_P(GemmEndToEnd, SimulatedResultMatchesReference)
{
    const E2eCase& tc = GetParam();
    Gpu gpu(small_titan_v());

    GemmKernelConfig cfg;
    cfg.mode = tc.mode;
    cfg.m = tc.m;
    cfg.n = tc.n;
    cfg.k = tc.k;
    cfg.a_layout = tc.a_layout;
    cfg.b_layout = tc.b_layout;

    LaunchStats stats;
    double err;
    if (tc.mode == TcMode::kMixed) {
        GemmProblem<float> prob(tc.m, tc.n, tc.k, tc.a_layout, tc.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        KernelDesc kd = tc.shared ? make_wmma_gemm_shared(cfg, buf)
                                  : make_wmma_gemm_naive(cfg, buf);
        stats = gpu.launch(kd);
        err = prob.verify(gpu.mem(), buf.d);
        EXPECT_LT(err, 1e-3);
    } else {
        GemmProblem<half> prob(tc.m, tc.n, tc.k, tc.a_layout, tc.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        KernelDesc kd = tc.shared ? make_wmma_gemm_shared(cfg, buf)
                                  : make_wmma_gemm_naive(cfg, buf);
        stats = gpu.launch(kd);
        err = prob.verify(gpu.mem(), buf.d);
        // FP16 accumulation differs from the float reference by
        // rounding; a 16-deep K at magnitude ~4 stays well under 5%.
        EXPECT_LT(err, 0.05);
    }

    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.instructions, 0u);
    // Every 16x16x16 tile product runs one wmma.mma.
    uint64_t wmma_ops = static_cast<uint64_t>(tc.m / 16) * (tc.n / 16) *
                        (tc.k / 16);
    uint64_t per_group =
        static_cast<uint64_t>(hmma_group_size(Arch::kVolta, tc.mode));
    EXPECT_EQ(stats.hmma_instructions, wmma_ops * per_group);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmEndToEnd,
    ::testing::Values(
        // Naive kernel: layout cross product at 32^3.
        E2eCase{32, 32, 32, TcMode::kMixed, Layout::kRowMajor,
                Layout::kRowMajor, false},
        E2eCase{32, 32, 32, TcMode::kMixed, Layout::kRowMajor,
                Layout::kColMajor, false},
        E2eCase{32, 32, 32, TcMode::kMixed, Layout::kColMajor,
                Layout::kRowMajor, false},
        E2eCase{32, 32, 32, TcMode::kMixed, Layout::kColMajor,
                Layout::kColMajor, false},
        E2eCase{32, 32, 32, TcMode::kFp16, Layout::kRowMajor,
                Layout::kRowMajor, false},
        E2eCase{32, 32, 32, TcMode::kFp16, Layout::kColMajor,
                Layout::kColMajor, false},
        // Non-square and deeper K.
        E2eCase{48, 80, 64, TcMode::kMixed, Layout::kRowMajor,
                Layout::kColMajor, false},
        E2eCase{16, 16, 128, TcMode::kMixed, Layout::kRowMajor,
                Layout::kRowMajor, false},
        // Shared-memory kernel (64-multiple sizes).
        E2eCase{64, 64, 64, TcMode::kMixed, Layout::kRowMajor,
                Layout::kRowMajor, true},
        E2eCase{64, 64, 64, TcMode::kMixed, Layout::kRowMajor,
                Layout::kColMajor, true},
        E2eCase{64, 64, 64, TcMode::kMixed, Layout::kColMajor,
                Layout::kColMajor, true},
        E2eCase{64, 64, 64, TcMode::kFp16, Layout::kRowMajor,
                Layout::kRowMajor, true},
        E2eCase{128, 128, 64, TcMode::kMixed, Layout::kRowMajor,
                Layout::kRowMajor, true},
        E2eCase{128, 64, 128, TcMode::kFp16, Layout::kColMajor,
                Layout::kRowMajor, true}));

TEST(GemmKernels, SharedUsesFewerGlobalSectors)
{
    // The whole point of the shared-memory kernel: operand reuse
    // moves traffic from global to shared memory.
    Gpu gpu1(small_titan_v());
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 128;
    GemmProblem<float> prob(128, 128, 128, cfg.a_layout, cfg.b_layout);

    GemmBuffers buf1 = prob.upload(&gpu1.mem());
    LaunchStats naive = gpu1.launch(make_wmma_gemm_naive(cfg, buf1));

    Gpu gpu2(small_titan_v());
    GemmBuffers buf2 = prob.upload(&gpu2.mem());
    LaunchStats shared = gpu2.launch(make_wmma_gemm_shared(cfg, buf2));

    EXPECT_LT(shared.mem.global_sectors, naive.mem.global_sectors);
}

TEST(GemmKernels, BaselinesRun)
{
    Gpu gpu(small_titan_v(2));
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    GemmProblem<float> prob(64, 64, 64, cfg.a_layout, cfg.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());

    LaunchStats s1 = gpu.launch(make_sgemm_ffma(cfg, buf));
    EXPECT_GT(s1.cycles, 0u);
    EXPECT_EQ(s1.hmma_instructions, 0u);  // no tensor cores

    LaunchStats s2 = gpu.launch(make_hgemm_hfma2(cfg, buf));
    EXPECT_GT(s2.cycles, 0u);
    // HFMA2 does two MACs per instruction: fewer issues than SGEMM.
    EXPECT_LT(s2.instructions, s1.instructions);
}

TEST(GemmKernels, TensorCoreBeatsSimtBaseline)
{
    // The headline claim: tensor cores give a substantial speedup
    // over FP32 SIMT GEMM (3-6x in the paper, Fig 17).
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 256;
    GemmProblem<float> prob(256, 256, 256, cfg.a_layout, cfg.b_layout);

    Gpu gpu1(small_titan_v());
    GemmBuffers buf1 = prob.upload(&gpu1.mem());
    cfg.functional = false;
    LaunchStats tc = gpu1.launch(make_wmma_gemm_shared(cfg, buf1));

    Gpu gpu2(small_titan_v());
    GemmBuffers buf2 = prob.upload(&gpu2.mem());
    LaunchStats simt = gpu2.launch(make_sgemm_ffma(cfg, buf2));

    EXPECT_GT(static_cast<double>(simt.cycles) / tc.cycles, 2.0);
}

TEST(GemmKernels, MacroLatenciesRecorded)
{
    Gpu gpu(small_titan_v(1));
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    GemmProblem<float> prob(64, 64, 64, cfg.a_layout, cfg.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());
    LaunchStats s = gpu.launch(make_wmma_gemm_shared(cfg, buf));

    ASSERT_TRUE(s.macro_latency.contains(MacroClass::kWmmaMma));
    ASSERT_TRUE(s.macro_latency.contains(MacroClass::kWmmaLoadA));
    ASSERT_TRUE(s.macro_latency.contains(MacroClass::kWmmaStoreD));
    const Histogram& mma = s.macro_latency.at(MacroClass::kWmmaMma);
    // One sample per wmma.mma: (64/16)^3 tiles x ... each warp runs
    // 2 mma per iteration x 4 iterations x 8 warps x 1 CTA... = 64.
    EXPECT_EQ(mma.count(), 64u);
    // Minimum latency is at least the Fig 9a pipeline latency.
    EXPECT_GE(mma.min(), 54.0);
}

TEST(HmmaStress, WarpScalingSaturatesAtFourWarps)
{
    // Fig 12c: with <= 4 warps per CTA (one per sub-core) HMMA
    // executes fully parallel; beyond 4 warps the tensor core pairs
    // serialize.
    std::vector<uint64_t> cycles;
    for (int warps = 1; warps <= 8; ++warps) {
        Gpu gpu(small_titan_v(1));
        LaunchStats s = gpu.launch(
            make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1, warps,
                             /*wmma_per_warp=*/4, /*accumulators=*/4));
        cycles.push_back(s.cycles);
    }
    // Flat region: warps 1-4 within a small tolerance of each other.
    for (int w = 1; w < 4; ++w)
        EXPECT_NEAR(static_cast<double>(cycles[w]),
                    static_cast<double>(cycles[0]), 8.0)
            << w + 1 << " warps";
    // 8 warps is markedly slower than 4 (two groups per sub-core).
    EXPECT_GT(cycles[7], cycles[3] + 24);
}

TEST(HmmaStress, SteadyStateThroughput)
{
    // Back-to-back wmma.mma with rotating accumulators should approach
    // the 32-cycle group occupancy per sub-core (Section IV).
    Gpu gpu(small_titan_v(1));
    const int ops = 256;
    LaunchStats s = gpu.launch(
        make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1, 4, ops, 4));
    // 4 warps on 4 sub-cores: ideal cycles = ops * 32 + drain.
    double ideal = ops * 32.0;
    EXPECT_LT(static_cast<double>(s.cycles), ideal * 1.25);
    EXPECT_GT(static_cast<double>(s.cycles), ideal * 0.95);
}

TEST(Gpu, MultiSmDistribution)
{
    // CTAs spread across SMs: more SMs => fewer cycles.  The grid must
    // be large enough that throughput (not one CTA's latency) binds.
    GemmKernelConfig cfg;
    cfg.m = cfg.n = 512;
    cfg.k = 64;
    cfg.functional = false;
    GemmProblem<float> prob(512, 512, 64, cfg.a_layout, cfg.b_layout);

    Gpu gpu1(small_titan_v(1));
    GemmBuffers b1 = prob.upload(&gpu1.mem());
    uint64_t c1 = gpu1.launch(make_wmma_gemm_naive(cfg, b1)).cycles;

    Gpu gpu4(small_titan_v(4));
    GemmBuffers b4 = prob.upload(&gpu4.mem());
    uint64_t c4 = gpu4.launch(make_wmma_gemm_naive(cfg, b4)).cycles;

    EXPECT_LT(static_cast<double>(c4), 0.6 * static_cast<double>(c1));
}

TEST(Gpu, TimingOnlyMatchesFunctionalTiming)
{
    // Functional execution must not alter timing.
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    GemmProblem<float> prob(64, 64, 64, cfg.a_layout, cfg.b_layout);

    Gpu gpu1(small_titan_v(2));
    GemmBuffers b1 = prob.upload(&gpu1.mem());
    cfg.functional = true;
    uint64_t c_func = gpu1.launch(make_wmma_gemm_shared(cfg, b1)).cycles;

    Gpu gpu2(small_titan_v(2));
    GemmBuffers b2 = prob.upload(&gpu2.mem());
    cfg.functional = false;
    uint64_t c_time = gpu2.launch(make_wmma_gemm_shared(cfg, b2)).cycles;

    EXPECT_EQ(c_func, c_time);
}

}  // namespace
}  // namespace tcsim
