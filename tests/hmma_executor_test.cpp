/**
 * @file
 * Functional tests of the HMMA executor: full-tile GEMM correctness
 * for every supported mode/layout on both architectures, numerical
 * semantics (FEDP rounding), and the value-perturbation experiment
 * the paper used to discover octet structure (Section III-E).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sass/hmma_decomposer.h"
#include "sass/hmma_executor.h"
#include "tensor/fragment_io.h"
#include "tensor/matrix.h"

namespace tcsim {
namespace {

/** Deterministic pseudo-random half values in [-2, 2). */
half
rand_half(uint32_t seed)
{
    seed = seed * 1664525u + 1013904223u;
    float v = static_cast<float>((seed >> 8) % 1024) / 256.0f - 2.0f;
    return half(v);
}

/** Naive reference with float accumulation (tolerance comparisons). */
template <typename Acc>
HostMatrix<Acc>
naive_gemm(const HostMatrix<half>& a, const HostMatrix<half>& b,
           const HostMatrix<Acc>& c)
{
    HostMatrix<Acc> d(c.rows(), c.cols(), c.layout());
    reference_gemm(a, b, c, d);
    return d;
}

struct VoltaCase
{
    TcMode mode;
    Layout a_layout;
    Layout b_layout;
};

class VoltaExecutor : public ::testing::TestWithParam<VoltaCase>
{
};

TEST_P(VoltaExecutor, MixedGemmMatchesReference)
{
    auto [mode, a_layout, b_layout] = GetParam();

    HostMatrix<half> a(16, 16, a_layout);
    HostMatrix<half> b(16, 16, b_layout);
    a.fill([](int r, int c) { return rand_half(r * 16 + c); });
    b.fill([](int r, int c) { return rand_half(1000 + r * 16 + c); });

    HmmaExecutor exec(Arch::kVolta, mode, kShape16x16x16, a_layout, b_layout);
    WarpRegState regs(64);
    WmmaRegs wregs{.a = 20, .b = 36, .c = 4, .d = 4};
    pack_fragment_h16(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &regs, wregs.b);

    auto group = decompose_wmma_mma(Arch::kVolta, mode, kShape16x16x16, wregs,
                                    a_layout, b_layout);

    if (mode == TcMode::kMixed) {
        HostMatrix<float> c(16, 16);
        c.fill([](int r, int c2) { return 0.25f * (r - c2); });
        pack_fragment_f32(exec.cd_map(), c, &regs, wregs.c);
        exec.execute_group(group, regs);
        HostMatrix<float> d(16, 16);
        unpack_fragment_f32(exec.cd_map(), regs, wregs.d, &d);
        HostMatrix<float> ref = naive_gemm(a, b, c);
        for (int r = 0; r < 16; ++r)
            for (int cc = 0; cc < 16; ++cc)
                EXPECT_NEAR(d.at(r, cc), ref.at(r, cc),
                            1e-3 * (1.0 + std::abs(ref.at(r, cc))))
                    << r << "," << cc;
    } else {
        HostMatrix<half> c(16, 16);
        c.fill([](int r, int c2) { return half(0.25f * (r - c2)); });
        pack_fragment_h16(exec.cd_map(), c, &regs, wregs.c);
        exec.execute_group(group, regs);
        HostMatrix<half> d(16, 16);
        unpack_fragment_h16(exec.cd_map(), regs, wregs.d, &d);
        HostMatrix<half> ref = naive_gemm(a, b, c);
        for (int r = 0; r < 16; ++r)
            for (int cc = 0; cc < 16; ++cc)
                EXPECT_NEAR(d.at(r, cc).to_float(), ref.at(r, cc).to_float(),
                            0.25 * (1.0 + std::abs(ref.at(r, cc).to_float())))
                    << r << "," << cc;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayoutModeCombos, VoltaExecutor,
    ::testing::Values(
        VoltaCase{TcMode::kMixed, Layout::kRowMajor, Layout::kRowMajor},
        VoltaCase{TcMode::kMixed, Layout::kRowMajor, Layout::kColMajor},
        VoltaCase{TcMode::kMixed, Layout::kColMajor, Layout::kRowMajor},
        VoltaCase{TcMode::kMixed, Layout::kColMajor, Layout::kColMajor},
        VoltaCase{TcMode::kFp16, Layout::kRowMajor, Layout::kRowMajor},
        VoltaCase{TcMode::kFp16, Layout::kRowMajor, Layout::kColMajor},
        VoltaCase{TcMode::kFp16, Layout::kColMajor, Layout::kRowMajor},
        VoltaCase{TcMode::kFp16, Layout::kColMajor, Layout::kColMajor}));

TEST(VoltaExecutorExact, MixedIdentityTimesMatrix)
{
    // A = I: D must equal B + C exactly (products are exact and each
    // output element accumulates exactly one nonzero product).
    HostMatrix<half> a(16, 16);
    a.fill([](int r, int c) { return half(r == c ? 1.0f : 0.0f); });
    HostMatrix<half> b(16, 16);
    b.fill([](int r, int c) { return rand_half(77 + r * 16 + c); });
    HostMatrix<float> c(16, 16);
    c.fill([](int r, int c2) { return static_cast<float>(r + c2); });

    HmmaExecutor exec(Arch::kVolta, TcMode::kMixed, kShape16x16x16,
                      Layout::kRowMajor, Layout::kRowMajor);
    WarpRegState regs(64);
    WmmaRegs wregs{.a = 20, .b = 36, .c = 4, .d = 4};
    pack_fragment_h16(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &regs, wregs.b);
    pack_fragment_f32(exec.cd_map(), c, &regs, wregs.c);
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, wregs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    exec.execute_group(group, regs);
    HostMatrix<float> d(16, 16);
    unpack_fragment_f32(exec.cd_map(), regs, wregs.d, &d);
    for (int r = 0; r < 16; ++r)
        for (int cc = 0; cc < 16; ++cc)
            EXPECT_EQ(d.at(r, cc), b.at(r, cc).to_float() + c.at(r, cc));
}

TEST(VoltaExecutorExact, SeparateDRegistersLeaveCIntact)
{
    // When D registers differ from C registers, C must not be
    // modified and D must hold the result.
    HostMatrix<half> a(16, 16), b(16, 16);
    a.fill([](int r, int c) { return half(r == c ? 2.0f : 0.0f); });
    b.fill([](int, int) { return half(1.0f); });
    HostMatrix<float> c(16, 16);
    c.fill([](int, int) { return 10.0f; });

    HmmaExecutor exec(Arch::kVolta, TcMode::kMixed, kShape16x16x16,
                      Layout::kRowMajor, Layout::kRowMajor);
    WarpRegState regs(64);
    WmmaRegs wregs{.a = 20, .b = 36, .c = 4, .d = 12};
    pack_fragment_h16(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &regs, wregs.b);
    pack_fragment_f32(exec.cd_map(), c, &regs, wregs.c);
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, wregs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    exec.execute_group(group, regs);

    HostMatrix<float> d(16, 16), c_after(16, 16);
    unpack_fragment_f32(exec.cd_map(), regs, wregs.d, &d);
    unpack_fragment_f32(exec.cd_map(), regs, wregs.c, &c_after);
    for (int r = 0; r < 16; ++r) {
        for (int cc = 0; cc < 16; ++cc) {
            EXPECT_EQ(d.at(r, cc), 12.0f);       // 2*1 + 10
            EXPECT_EQ(c_after.at(r, cc), 10.0f); // untouched
        }
    }
}

TEST(VoltaExecutorOctets, PerturbingOneCopyAffectsOnlyConsumingOctet)
{
    // Section III-E methodology: alter the value held in one thread's
    // registers (one of the two copies of a B element) and observe
    // which output elements change.  Only the octet that consumes that
    // copy may be affected.
    HostMatrix<half> a(16, 16), b(16, 16);
    a.fill([](int, int) { return half(1.0f); });
    b.fill([](int, int) { return half(1.0f); });
    HostMatrix<float> c(16, 16);
    c.fill([](int, int) { return 0.0f; });

    HmmaExecutor exec(Arch::kVolta, TcMode::kMixed, kShape16x16x16,
                      Layout::kRowMajor, Layout::kRowMajor);
    WmmaRegs wregs{.a = 20, .b = 36, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, wregs, Layout::kRowMajor,
                                    Layout::kRowMajor);

    // Baseline.
    WarpRegState base_regs(64);
    pack_fragment_h16(exec.a_map(), a, &base_regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &base_regs, wregs.b);
    pack_fragment_f32(exec.cd_map(), c, &base_regs, wregs.c);
    exec.execute_group(group, base_regs);
    HostMatrix<float> d_base(16, 16);
    unpack_fragment_f32(exec.cd_map(), base_regs, wregs.d, &d_base);

    // Perturb B element (0, 0) as held by threadgroup 0 only (the
    // other copy, in threadgroup 1, stays 1.0).
    WarpRegState pert_regs(64);
    pack_fragment_h16(exec.a_map(), a, &pert_regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &pert_regs, wregs.b);
    pack_fragment_f32(exec.cd_map(), c, &pert_regs, wregs.c);
    bool perturbed = false;
    for (const auto& loc : exec.b_map().locate(0, 0)) {
        if (threadgroup_of_lane(loc.lane) == 0) {
            pert_regs.write_h16(loc.lane, wregs.b + loc.slot / 2,
                                loc.slot % 2, half(100.0f));
            perturbed = true;
        }
    }
    ASSERT_TRUE(perturbed);
    exec.execute_group(group, pert_regs);
    HostMatrix<float> d_pert(16, 16);
    unpack_fragment_f32(exec.cd_map(), pert_regs, wregs.d, &d_pert);

    // Only octet 0's D region (rows 0-7, cols 0-7) may change, and
    // within it only column 0 (B[0,0] feeds column 0 outputs).
    for (int r = 0; r < 16; ++r) {
        for (int cc = 0; cc < 16; ++cc) {
            bool changed = d_base.at(r, cc) != d_pert.at(r, cc);
            bool in_octet0 = r < 8 && cc < 8;
            if (!in_octet0) {
                EXPECT_FALSE(changed) << r << "," << cc;
            } else if (cc == 0) {
                EXPECT_TRUE(changed) << r << "," << cc;
            } else {
                EXPECT_FALSE(changed) << r << "," << cc;
            }
        }
    }
}

struct TuringExecCase
{
    TileShape shape;
    TcMode mode;
};

class TuringExecutor : public ::testing::TestWithParam<TuringExecCase>
{
};

TEST_P(TuringExecutor, FpGemmMatchesReference)
{
    auto [shape, mode] = GetParam();
    HostMatrix<half> a(shape.m, shape.k);
    HostMatrix<half> b(shape.k, shape.n);
    a.fill([&](int r, int c) { return rand_half(r * shape.k + c); });
    b.fill([&](int r, int c) { return rand_half(555 + r * shape.n + c); });

    HmmaExecutor exec(Arch::kTuring, mode, shape, Layout::kRowMajor,
                      Layout::kRowMajor);
    WarpRegState regs(80);
    WmmaRegs wregs{.a = 20, .b = 40, .c = 4, .d = 4};
    pack_fragment_h16(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_h16(exec.b_map(), b, &regs, wregs.b);

    auto group = decompose_wmma_mma(Arch::kTuring, mode, shape, wregs,
                                    Layout::kRowMajor, Layout::kRowMajor);

    if (mode == TcMode::kMixed) {
        HostMatrix<float> c(shape.m, shape.n);
        c.fill([](int r, int c2) { return 0.125f * (c2 - r); });
        pack_fragment_f32(exec.cd_map(), c, &regs, wregs.c);
        exec.execute_group(group, regs);
        HostMatrix<float> d(shape.m, shape.n);
        unpack_fragment_f32(exec.cd_map(), regs, wregs.d, &d);
        HostMatrix<float> ref = naive_gemm(a, b, c);
        for (int r = 0; r < shape.m; ++r)
            for (int cc = 0; cc < shape.n; ++cc)
                EXPECT_NEAR(d.at(r, cc), ref.at(r, cc),
                            1e-3 * (1.0 + std::abs(ref.at(r, cc))));
    } else {
        HostMatrix<half> c(shape.m, shape.n);
        c.fill([](int, int) { return half(0.5f); });
        pack_fragment_h16(exec.cd_map(), c, &regs, wregs.c);
        exec.execute_group(group, regs);
        HostMatrix<half> d(shape.m, shape.n);
        unpack_fragment_h16(exec.cd_map(), regs, wregs.d, &d);
        HostMatrix<half> ref = naive_gemm(a, b, c);
        for (int r = 0; r < shape.m; ++r)
            for (int cc = 0; cc < shape.n; ++cc)
                EXPECT_NEAR(d.at(r, cc).to_float(), ref.at(r, cc).to_float(),
                            0.25 *
                                (1.0 + std::abs(ref.at(r, cc).to_float())));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TuringExecutor,
    ::testing::Values(TuringExecCase{kShape16x16x16, TcMode::kMixed},
                      TuringExecCase{kShape16x16x16, TcMode::kFp16},
                      TuringExecCase{kShape32x8x16, TcMode::kMixed},
                      TuringExecCase{kShape32x8x16, TcMode::kFp16},
                      TuringExecCase{kShape8x32x16, TcMode::kMixed},
                      TuringExecCase{kShape8x32x16, TcMode::kFp16}));

TEST(TuringExecutorInt8, ExactIntegerGemm)
{
    TileShape shape = kShape16x16x16;
    HostMatrix<int8_t> a(shape.m, shape.k), b(shape.k, shape.n);
    a.fill([](int r, int c) { return static_cast<int8_t>((r * 7 + c * 3) % 255 - 127); });
    b.fill([](int r, int c) { return static_cast<int8_t>((r * 5 + c * 11) % 255 - 127); });
    HostMatrix<int32_t> c(shape.m, shape.n);
    c.fill([](int r, int c2) { return r - c2; });

    HmmaExecutor exec(Arch::kTuring, TcMode::kInt8, shape, Layout::kRowMajor,
                      Layout::kRowMajor);
    WarpRegState regs(80);
    WmmaRegs wregs{.a = 20, .b = 30, .c = 4, .d = 4};
    pack_fragment_i8(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_i8(exec.b_map(), b, &regs, wregs.b);
    pack_fragment_i32(exec.cd_map(), c, &regs, wregs.c);

    auto group = decompose_wmma_mma(Arch::kTuring, TcMode::kInt8, shape,
                                    wregs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    exec.execute_group(group, regs);

    HostMatrix<int32_t> d(shape.m, shape.n);
    unpack_fragment_i32(exec.cd_map(), regs, wregs.d, &d);
    for (int r = 0; r < shape.m; ++r) {
        for (int cc = 0; cc < shape.n; ++cc) {
            int32_t ref = c.at(r, cc);
            for (int k = 0; k < shape.k; ++k)
                ref += static_cast<int32_t>(a.at(r, k)) * b.at(k, cc);
            EXPECT_EQ(d.at(r, cc), ref) << r << "," << cc;
        }
    }
}

TEST(TuringExecutorInt4, ExactIntegerGemm)
{
    TileShape shape = kShape8x8x32;
    HostMatrix<int8_t> a(shape.m, shape.k), b(shape.k, shape.n);
    a.fill([](int r, int c) { return static_cast<int8_t>((r + c) % 16 - 8); });
    b.fill([](int r, int c) { return static_cast<int8_t>((r * 3 + c) % 16 - 8); });
    HostMatrix<int32_t> c(shape.m, shape.n);
    c.fill([](int, int) { return 5; });

    HmmaExecutor exec(Arch::kTuring, TcMode::kInt4, shape, Layout::kRowMajor,
                      Layout::kRowMajor);
    WarpRegState regs(80);
    WmmaRegs wregs{.a = 20, .b = 24, .c = 4, .d = 4};
    pack_fragment_i4(exec.a_map(), a, &regs, wregs.a);
    pack_fragment_i4(exec.b_map(), b, &regs, wregs.b);
    pack_fragment_i32(exec.cd_map(), c, &regs, wregs.c);

    auto group = decompose_wmma_mma(Arch::kTuring, TcMode::kInt4, shape,
                                    wregs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    ASSERT_EQ(group.size(), 1u);  // single HMMA in 4-bit mode
    exec.execute_group(group, regs);

    HostMatrix<int32_t> d(shape.m, shape.n);
    unpack_fragment_i32(exec.cd_map(), regs, wregs.d, &d);
    for (int r = 0; r < shape.m; ++r) {
        for (int cc = 0; cc < shape.n; ++cc) {
            int32_t ref = c.at(r, cc);
            for (int k = 0; k < shape.k; ++k)
                ref += static_cast<int32_t>(a.at(r, k)) * b.at(k, cc);
            EXPECT_EQ(d.at(r, cc), ref);
        }
    }
}

}  // namespace
}  // namespace tcsim
