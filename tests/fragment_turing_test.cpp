/**
 * @file
 * Tests of the Turing fragment map against Fig 8: single-load
 * ownership, round-robin row/column assignment to threadgroups, and
 * the Turing-only tile shapes and integer modes.
 */

#include <set>

#include <gtest/gtest.h>

#include "tensor/fragment.h"

namespace tcsim {
namespace {

struct TuringCase
{
    TileShape shape;
    TcMode mode;
};

class TuringShapes : public ::testing::TestWithParam<TuringCase>
{
};

TEST_P(TuringShapes, EveryElementLoadedExactlyOnce)
{
    auto [shape, mode] = GetParam();
    for (WmmaOperand op : {WmmaOperand::kA, WmmaOperand::kB, WmmaOperand::kC}) {
        FragmentMap map =
            turing_fragment_map(op, shape, mode, Layout::kRowMajor);
        for (int r = 0; r < shape.rows(op); ++r)
            for (int c = 0; c < shape.cols(op); ++c)
                EXPECT_EQ(map.locate(r, c).size(), 1u)
                    << operand_name(op) << " (" << r << "," << c << ")";
    }
}

TEST_P(TuringShapes, FragmentSizesConsistent)
{
    auto [shape, mode] = GetParam();
    for (WmmaOperand op : {WmmaOperand::kA, WmmaOperand::kB, WmmaOperand::kC}) {
        FragmentMap map =
            turing_fragment_map(op, shape, mode, Layout::kRowMajor);
        int total = shape.rows(op) * shape.cols(op);
        EXPECT_EQ(map.elems_per_thread() * kWarpSize, total)
            << operand_name(op);
    }
}

TEST_P(TuringShapes, ConsecutiveThreadgroupsOwnConsecutiveRowsOrCols)
{
    auto [shape, mode] = GetParam();
    // A: row r owned by threadgroup r % 8.
    FragmentMap a = turing_fragment_map(WmmaOperand::kA, shape, mode,
                                        Layout::kRowMajor);
    for (int r = 0; r < shape.m; ++r) {
        auto loc = a.locate(r, 0);
        ASSERT_EQ(loc.size(), 1u);
        EXPECT_EQ(threadgroup_of_lane(loc[0].lane), r % 8) << "row " << r;
    }
    // B: column c owned by threadgroup c % 8.
    FragmentMap b = turing_fragment_map(WmmaOperand::kB, shape, mode,
                                        Layout::kRowMajor);
    for (int c = 0; c < shape.n; ++c) {
        auto loc = b.locate(0, c);
        ASSERT_EQ(loc.size(), 1u);
        EXPECT_EQ(threadgroup_of_lane(loc[0].lane), c % 8) << "col " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fp16AndInt8, TuringShapes,
    ::testing::Values(TuringCase{kShape16x16x16, TcMode::kFp16},
                      TuringCase{kShape16x16x16, TcMode::kMixed},
                      TuringCase{kShape16x16x16, TcMode::kInt8},
                      TuringCase{kShape32x8x16, TcMode::kFp16},
                      TuringCase{kShape32x8x16, TcMode::kMixed},
                      TuringCase{kShape32x8x16, TcMode::kInt8},
                      TuringCase{kShape8x32x16, TcMode::kFp16},
                      TuringCase{kShape8x32x16, TcMode::kMixed},
                      TuringCase{kShape8x32x16, TcMode::kInt8}));

TEST(TuringInt4, Shape8x8x32)
{
    FragmentMap a = turing_fragment_map(WmmaOperand::kA, kShape8x8x32,
                                        TcMode::kInt4, Layout::kRowMajor);
    // 8x32 elements / 32 threads = 8 int4 per thread = 1 register.
    EXPECT_EQ(a.elems_per_thread(), 8);
    EXPECT_EQ(a.regs_per_thread(), 1);
    FragmentMap c = turing_fragment_map(WmmaOperand::kC, kShape8x8x32,
                                        TcMode::kInt4, Layout::kRowMajor);
    // 8x8 INT32 accumulators / 32 threads = 2 registers.
    EXPECT_EQ(c.elems_per_thread(), 2);
    EXPECT_EQ(c.regs_per_thread(), 2);
}

TEST(TuringFragment, ThreadChunksAreContiguous)
{
    // Within a threadgroup, thread t takes the t-th contiguous quarter
    // of each owned row (operand A).
    FragmentMap a = turing_fragment_map(WmmaOperand::kA, kShape16x16x16,
                                        TcMode::kFp16, Layout::kRowMajor);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        int t = lane % 4;
        const auto& elems = a.fragment(lane).elems;
        // 2 owned rows x 4 columns each.
        ASSERT_EQ(elems.size(), 8u);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(elems[i].col, 4 * t + (i % 4));
    }
}

TEST(TuringFragment, Volta16x16x16DiffersFromTuring)
{
    // The paper stresses Turing "behaves differently from the Volta
    // tensor cores": Volta loads each element twice, Turing once.
    FragmentMap volta = fragment_map(Arch::kVolta, WmmaOperand::kA,
                                     kShape16x16x16, TcMode::kFp16,
                                     Layout::kRowMajor);
    FragmentMap turing = fragment_map(Arch::kTuring, WmmaOperand::kA,
                                      kShape16x16x16, TcMode::kFp16,
                                      Layout::kRowMajor);
    EXPECT_EQ(volta.locate(0, 0).size(), 2u);
    EXPECT_EQ(turing.locate(0, 0).size(), 1u);
}

}  // namespace
}  // namespace tcsim
