/**
 * @file
 * Tests of the Volta fragment map against Fig 7 and Tables II/III of
 * the paper: threadgroup segment assignments, double-loading of A/B
 * elements, octet pooling, layout-dependent intra-threadgroup
 * distribution, and C/D accumulator blocks.
 */

#include <set>

#include <gtest/gtest.h>

#include "tensor/fragment.h"
#include "tensor/mapping_volta.h"

namespace tcsim {
namespace {

/** All lanes holding element (r,c), as threadgroup ids. */
std::set<int>
owner_tgs(const FragmentMap& map, int r, int c)
{
    std::set<int> tgs;
    for (const auto& loc : map.locate(r, c))
        tgs.insert(threadgroup_of_lane(loc.lane));
    return tgs;
}

class VoltaAbLayouts
    : public ::testing::TestWithParam<std::tuple<WmmaOperand, Layout, TcMode>>
{
};

TEST_P(VoltaAbLayouts, EveryElementLoadedByTwoThreadgroups)
{
    auto [op, layout, mode] = GetParam();
    FragmentMap map = volta_fragment_map(op, mode, layout);
    for (int r = 0; r < 16; ++r) {
        for (int c = 0; c < 16; ++c) {
            auto locs = map.locate(r, c);
            // "each element of the A and B operand matrices are loaded
            //  by two different threads in a warp on Volta"
            EXPECT_EQ(locs.size(), 2u) << "(" << r << "," << c << ")";
            auto tgs = owner_tgs(map, r, c);
            EXPECT_EQ(tgs.size(), 2u);
        }
    }
}

TEST_P(VoltaAbLayouts, SixteenElementsPerThread)
{
    auto [op, layout, mode] = GetParam();
    FragmentMap map = volta_fragment_map(op, mode, layout);
    EXPECT_EQ(map.elems_per_thread(), 16);
    EXPECT_EQ(map.regs_per_thread(), 8);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, VoltaAbLayouts,
    ::testing::Combine(::testing::Values(WmmaOperand::kA, WmmaOperand::kB),
                       ::testing::Values(Layout::kRowMajor,
                                         Layout::kColMajor),
                       ::testing::Values(TcMode::kFp16, TcMode::kMixed)));

TEST(VoltaMappingA, RowSegmentAssignments)
{
    // Fig 7a: rows 0-3 -> threadgroups 0 and 2; rows 4-7 -> 4 and 6;
    // rows 8-11 -> 1 and 3; rows 12-15 -> 5 and 7.
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    EXPECT_EQ(owner_tgs(map, 0, 0), (std::set<int>{0, 2}));
    EXPECT_EQ(owner_tgs(map, 3, 15), (std::set<int>{0, 2}));
    EXPECT_EQ(owner_tgs(map, 4, 5), (std::set<int>{4, 6}));
    EXPECT_EQ(owner_tgs(map, 7, 0), (std::set<int>{4, 6}));
    EXPECT_EQ(owner_tgs(map, 8, 8), (std::set<int>{1, 3}));
    EXPECT_EQ(owner_tgs(map, 11, 1), (std::set<int>{1, 3}));
    EXPECT_EQ(owner_tgs(map, 12, 0), (std::set<int>{5, 7}));
    EXPECT_EQ(owner_tgs(map, 15, 15), (std::set<int>{5, 7}));
}

TEST(VoltaMappingA, OwnershipIndependentOfLayout)
{
    // The set of elements per threadgroup does not change with layout
    // (only the per-thread split within the threadgroup does).
    FragmentMap row =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    FragmentMap col =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kColMajor);
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 16; ++c)
            EXPECT_EQ(owner_tgs(row, r, c), owner_tgs(col, r, c));
}

TEST(VoltaMappingA, RowMajorThreadHoldsContiguousRow)
{
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    // Thread 1 of threadgroup 0 holds row 1 in column order.
    const auto& f = map.fragment(1);
    for (int c = 0; c < 16; ++c) {
        EXPECT_EQ(f.elems[c].row, 1);
        EXPECT_EQ(f.elems[c].col, c);
    }
}

TEST(VoltaMappingA, ColMajorThreadHoldsStridedColumns)
{
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kColMajor);
    // Thread 2 of threadgroup 0: block k covers column 4k+2,
    // rows 0..3 (Fig 7a circled 3).
    const auto& f = map.fragment(2);
    for (int k = 0; k < 4; ++k) {
        for (int j = 0; j < 4; ++j) {
            EXPECT_EQ(f.elems[4 * k + j].row, j);
            EXPECT_EQ(f.elems[4 * k + j].col, 4 * k + 2);
        }
    }
}

TEST(VoltaMappingB, ColumnStripesPoolToOctetRanges)
{
    // Table II: octet X covers B columns [0:7] (octets 0,1) or [8:15]
    // (octets 2,3), pooled from two 4-wide threadgroup stripes.
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kB, TcMode::kMixed, Layout::kColMajor);
    for (int c = 0; c < 16; ++c) {
        auto tgs = owner_tgs(map, 0, c);
        for (int tg : tgs) {
            int octet = octet_of_threadgroup(tg);
            int expect_lo = (octet == 0 || octet == 1) ? 0 : 8;
            EXPECT_GE(c, expect_lo) << "col " << c << " tg " << tg;
            EXPECT_LT(c, expect_lo + 8) << "col " << c << " tg " << tg;
        }
    }
}

TEST(VoltaMappingB, StripeStartsMatchModel)
{
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kB, TcMode::kFp16, Layout::kColMajor);
    for (int tg = 0; tg < 8; ++tg) {
        int lane = tg * 4;  // thread 0 of the threadgroup
        const auto& f = map.fragment(lane);
        // Thread 0 holds column kVoltaBColStart[tg] top to bottom.
        for (int r = 0; r < 16; ++r) {
            EXPECT_EQ(f.elems[r].row, r);
            EXPECT_EQ(f.elems[r].col, kVoltaBColStart[tg]);
        }
    }
}

TEST(VoltaMappingC, SingleOwnerPerElement)
{
    for (TcMode mode : {TcMode::kFp16, TcMode::kMixed}) {
        FragmentMap map =
            volta_fragment_map(WmmaOperand::kC, mode, Layout::kRowMajor);
        for (int r = 0; r < 16; ++r)
            for (int c = 0; c < 16; ++c)
                EXPECT_EQ(map.locate(r, c).size(), 1u)
                    << tc_mode_name(mode) << " (" << r << "," << c << ")";
    }
}

TEST(VoltaMappingC, ThreadgroupBlocksMatchFig10b)
{
    // D-matrix blocks (Fig 10b): rows 0-3 -> tg {0 | 2}, rows 4-7 ->
    // {4 | 6}, rows 8-11 -> {1 | 3}, rows 12-15 -> {5 | 7}, columns
    // split 0-7 / 8-15.
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kC, TcMode::kMixed, Layout::kRowMajor);
    auto block_tg = [&](int r, int c) {
        auto tgs = owner_tgs(map, r, c);
        EXPECT_EQ(tgs.size(), 1u);
        return *tgs.begin();
    };
    EXPECT_EQ(block_tg(0, 0), 0);
    EXPECT_EQ(block_tg(3, 7), 0);
    EXPECT_EQ(block_tg(0, 8), 2);
    EXPECT_EQ(block_tg(4, 0), 4);
    EXPECT_EQ(block_tg(4, 8), 6);
    EXPECT_EQ(block_tg(8, 0), 1);
    EXPECT_EQ(block_tg(8, 8), 3);
    EXPECT_EQ(block_tg(12, 0), 5);
    EXPECT_EQ(block_tg(12, 8), 7);
}

TEST(VoltaMappingC, LayoutIndependent)
{
    // "the specific distribution ... is independent of the layout".
    for (TcMode mode : {TcMode::kFp16, TcMode::kMixed}) {
        FragmentMap row =
            volta_fragment_map(WmmaOperand::kC, mode, Layout::kRowMajor);
        FragmentMap col =
            volta_fragment_map(WmmaOperand::kC, mode, Layout::kColMajor);
        for (int lane = 0; lane < kWarpSize; ++lane)
            EXPECT_EQ(row.fragment(lane).elems, col.fragment(lane).elems);
    }
}

TEST(VoltaMappingC, RegisterCounts)
{
    FragmentMap fp32 =
        volta_fragment_map(WmmaOperand::kC, TcMode::kMixed, Layout::kRowMajor);
    EXPECT_EQ(fp32.elems_per_thread(), 8);
    EXPECT_EQ(fp32.regs_per_thread(), 8);  // one FP32 per register
    FragmentMap fp16 =
        volta_fragment_map(WmmaOperand::kC, TcMode::kFp16, Layout::kRowMajor);
    EXPECT_EQ(fp16.elems_per_thread(), 8);
    EXPECT_EQ(fp16.regs_per_thread(), 4);  // two halfs per register
}

TEST(VoltaMappingC, Fp16ThreadHoldsOneRow)
{
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kC, TcMode::kFp16, Layout::kRowMajor);
    // Thread t of tg holds local row t of the threadgroup's 4x8 block.
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& f = map.fragment(lane);
        int t = lane % 4;
        int tg = threadgroup_of_lane(lane);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(f.elems[i].row, kVoltaCRowStart[tg] + t);
            EXPECT_EQ(f.elems[i].col, kVoltaCColStart[tg] + i);
        }
    }
}

TEST(VoltaMappingC, MixedStepPairsAreAdjacentColumns)
{
    // In mixed precision each register pair (slots 2s, 2s+1) holds two
    // horizontally adjacent elements of the step-s 2x4 block.
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kC, TcMode::kMixed, Layout::kRowMajor);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& f = map.fragment(lane);
        for (int s = 0; s < 4; ++s) {
            EXPECT_EQ(f.elems[2 * s].row, f.elems[2 * s + 1].row);
            EXPECT_EQ(f.elems[2 * s].col + 1, f.elems[2 * s + 1].col);
        }
    }
}

TEST(VoltaMappingAB, RowMajorAEqualsColMajorBPattern)
{
    // "The distribution ... for operand matrix A stored in row-major
    //  layout is the same as the distribution of operand matrix B
    //  stored in column-major layout" -- in the transposed sense:
    // thread fragments of B(col) are A(row) fragments with row/col
    // meaning swapped and the B column stripe replacing the A row band.
    FragmentMap a =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    FragmentMap b =
        volta_fragment_map(WmmaOperand::kB, TcMode::kMixed, Layout::kColMajor);
    // Both are "contiguous" patterns: 16 consecutive elements along
    // the leading dimension per thread.
    for (int lane = 0; lane < kWarpSize; ++lane) {
        const auto& fa = a.fragment(lane).elems;
        const auto& fb = b.fragment(lane).elems;
        for (int i = 0; i < 16; ++i) {
            EXPECT_EQ(fa[i].col, i);   // A: fixed row, all columns
            EXPECT_EQ(fb[i].row, i);   // B: fixed column, all rows
        }
    }
}

}  // namespace
}  // namespace tcsim
