/**
 * @file
 * Tests of the NOP-patching / clock-injection microbenchmark
 * utilities (the paper's Figs 5 and 6 methodology, re-homed from
 * radare2 binary patching to instruction traces).
 */

#include <gtest/gtest.h>

#include "sass/hmma_decomposer.h"
#include "sass/microbench.h"

namespace tcsim {
namespace {

WarpProgram
make_program()
{
    WmmaRegs regs{.a = 20, .b = 36, .c = 4, .d = 4};
    WarpProgram prog;
    Instruction mov;
    mov.op = Opcode::kMov;
    mov.n_dst = 1;
    mov.dst[0] = 1;
    prog.push_back(mov);
    auto group = decompose_wmma_mma(Arch::kVolta, TcMode::kMixed,
                                    kShape16x16x16, regs, Layout::kRowMajor,
                                    Layout::kRowMajor);
    for (auto& inst : group)
        prog.push_back(std::move(inst));
    Instruction exit;
    exit.op = Opcode::kExit;
    prog.push_back(exit);
    return prog;
}

TEST(FindHmma, LocatesAllSixteen)
{
    WarpProgram prog = make_program();
    auto idx = find_hmma_indices(prog);
    ASSERT_EQ(idx.size(), 16u);
    EXPECT_EQ(idx.front(), 1u);   // after the MOV
    EXPECT_EQ(idx.back(), 16u);
}

TEST(PatchNops, KeepsExactlyOneHmma)
{
    // Fig 5: replace all HMMA operations except one with NOPs.
    for (size_t keep = 0; keep < 16; ++keep) {
        WarpProgram prog = make_program();
        int patched = patch_nops_except(&prog, keep);
        EXPECT_EQ(patched, 15);
        auto idx = find_hmma_indices(prog);
        ASSERT_EQ(idx.size(), 1u);
        // The surviving HMMA is the keep-th of the original order.
        EXPECT_EQ(idx[0], 1u + keep);
        // Program length unchanged (NOPs substituted in place).
        EXPECT_EQ(prog.size(), 18u);
    }
}

TEST(PatchNops, SurvivorRetainsAnnotations)
{
    WarpProgram prog = make_program();
    patch_nops_except(&prog, 6);  // set 1, step 2
    auto idx = find_hmma_indices(prog);
    ASSERT_EQ(idx.size(), 1u);
    const auto& h = prog[idx[0]].hmma;
    EXPECT_EQ(h.set, 1);
    EXPECT_EQ(h.step, 2);
}

TEST(InjectClocks, WrapsFirstNHmmas)
{
    // Fig 6: read the clock register before the 1st and after the nth
    // HMMA instruction.
    WarpProgram prog = make_program();
    inject_clocks(&prog, 4, /*reg_start=*/60, /*reg_end=*/61);
    EXPECT_EQ(prog.size(), 20u);
    // CS2R before the first HMMA.
    EXPECT_EQ(prog[1].op, Opcode::kCs2r);
    EXPECT_EQ(prog[1].dst[0], 60);
    // First HMMA shifted by one.
    EXPECT_EQ(prog[2].op, Opcode::kHmma);
    // CS2R right after the 4th HMMA (positions 2,3,4,5).
    EXPECT_EQ(prog[6].op, Opcode::kCs2r);
    EXPECT_EQ(prog[6].dst[0], 61);
    EXPECT_EQ(prog[7].op, Opcode::kHmma);
}

TEST(InjectClocks, FullGroup)
{
    WarpProgram prog = make_program();
    inject_clocks(&prog, 16, 60, 61);
    auto idx = find_hmma_indices(prog);
    EXPECT_EQ(idx.size(), 16u);
    EXPECT_EQ(prog[idx.back() + 1].op, Opcode::kCs2r);
}

}  // namespace
}  // namespace tcsim
