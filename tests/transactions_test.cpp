/**
 * @file
 * Tests of the wmma.load/store -> SASS memory-op expansion against
 * Section III-C of the paper: instruction widths and counts per
 * layout, and coalesced transaction counting (Section V-A).
 */

#include <gtest/gtest.h>

#include "tensor/transactions.h"

namespace tcsim {
namespace {

TEST(VoltaLoadA, RowMajorUsesTwo128BitLoads)
{
    // "wmma.load PTX instructions are broken into either four 64-bit
    //  loads (LD.E.64) or two 128-bit loads (LD.E.128)".
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    auto ops = wmma_memory_ops(map, 16);
    ASSERT_EQ(ops.size(), 2u);
    for (const auto& op : ops) {
        EXPECT_EQ(op.width_bits, 128);
        EXPECT_STREQ(op.mnemonic(false), "LD.E.128");
    }
}

TEST(VoltaLoadA, ColMajorUsesFour64BitLoads)
{
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kColMajor);
    auto ops = wmma_memory_ops(map, 16);
    ASSERT_EQ(ops.size(), 4u);
    for (const auto& op : ops) {
        EXPECT_EQ(op.width_bits, 64);
        EXPECT_STREQ(op.mnemonic(false), "LD.E.64");
    }
}

TEST(VoltaLoadA, ColMajorStrideIs64Elements)
{
    // "four coalesced 64-bit wide load instructions, each with a
    //  stride distance of 64 elements".
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kColMajor);
    auto ops = wmma_memory_ops(map, 16);
    ASSERT_EQ(ops.size(), 4u);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        for (size_t i = 1; i < ops.size(); ++i) {
            int64_t delta =
                ops[i].lane_offset[lane] - ops[i - 1].lane_offset[lane];
            EXPECT_EQ(delta, 64 * 2) << "lane " << lane;  // 64 halfs
        }
    }
}

TEST(VoltaLoadB, MirrorsAcrossLayouts)
{
    FragmentMap col =
        volta_fragment_map(WmmaOperand::kB, TcMode::kMixed, Layout::kColMajor);
    EXPECT_EQ(wmma_memory_ops(col, 16).size(), 2u);  // LD.E.128 x2
    FragmentMap row =
        volta_fragment_map(WmmaOperand::kB, TcMode::kMixed, Layout::kRowMajor);
    EXPECT_EQ(wmma_memory_ops(row, 16).size(), 4u);  // LD.E.64 x4
}

TEST(VoltaLoadC, Uses32BitAccessesBothModes)
{
    // "32-bit wide (partially coalesced) load instructions are used to
    //  access elements of matrix C in both modes of operation."
    for (TcMode mode : {TcMode::kFp16, TcMode::kMixed}) {
        FragmentMap map =
            volta_fragment_map(WmmaOperand::kC, mode, Layout::kRowMajor);
        auto ops = wmma_memory_ops(map, 16);
        size_t expect = mode == TcMode::kMixed ? 8u : 4u;
        EXPECT_EQ(ops.size(), expect) << tc_mode_name(mode);
        for (const auto& op : ops)
            EXPECT_EQ(op.width_bits, 32) << tc_mode_name(mode);
    }
}

TEST(VoltaLoadA, TransactionCountRowMajor)
{
    // Row-major A, ld = 16 halfs: each 32-byte row is one sector; the
    // first 128-bit load covers its low half and the second its high
    // half, so each instruction touches all 16 row-sectors.
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    auto ops = wmma_memory_ops(map, 16);
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(sectors_for_access(ops[0], 0), 16u);
    EXPECT_EQ(sectors_for_access(ops[1], 0), 16u);
    EXPECT_EQ(count_transactions(ops, /*base=*/0), 32u);
}

TEST(VoltaLoadA, TransactionCountLargeLeadingDimension)
{
    // With ld = 1024 halfs, each row sits in its own pair of sectors:
    // 16 rows x 2 accesses wide = 32 sectors (each row is 32 B, and
    // the two 128-bit loads split it into two 16 B halves that share
    // a sector only when aligned together; at 2048-byte row pitch the
    // two halves of one row land in the same 32 B sector).
    FragmentMap map =
        volta_fragment_map(WmmaOperand::kA, TcMode::kMixed, Layout::kRowMajor);
    auto ops = wmma_memory_ops(map, 1024);
    ASSERT_EQ(ops.size(), 2u);
    // First load touches 16 different rows: addresses r*2048 .. +16B.
    // Each row contributes one distinct sector; two threads (dual
    // ownership) share it.
    EXPECT_EQ(sectors_for_access(ops[0], 0), 16u);
    EXPECT_EQ(sectors_for_access(ops[1], 0), 16u);
}

TEST(Transactions, SectorSharingAcrossLanes)
{
    // All lanes reading the same 4 bytes is one transaction.
    MemAccessDesc op;
    op.width_bits = 32;
    for (int lane = 0; lane < kWarpSize; ++lane)
        op.lane_offset[lane] = 0;
    EXPECT_EQ(sectors_for_access(op, 0), 1u);
    // Fully scattered 32-bit accesses, one sector each.
    for (int lane = 0; lane < kWarpSize; ++lane)
        op.lane_offset[lane] = lane * 128;
    EXPECT_EQ(sectors_for_access(op, 0), 32u);
}

TEST(Transactions, UnalignedAccessSpansTwoSectors)
{
    MemAccessDesc op;
    op.width_bits = 128;
    for (int lane = 0; lane < kWarpSize; ++lane)
        op.lane_offset[lane] = kInactiveLane;
    op.lane_offset[0] = 24;  // 16-byte access at offset 24: sectors 0,1
    EXPECT_EQ(sectors_for_access(op, 0), 2u);
}

TEST(ElementBytes, PerOperandAndMode)
{
    EXPECT_EQ(element_bytes(WmmaOperand::kA, TcMode::kFp16), 2);
    EXPECT_EQ(element_bytes(WmmaOperand::kA, TcMode::kMixed), 2);
    EXPECT_EQ(element_bytes(WmmaOperand::kA, TcMode::kInt8), 1);
    EXPECT_EQ(element_bytes(WmmaOperand::kC, TcMode::kMixed), 4);
    EXPECT_EQ(element_bytes(WmmaOperand::kC, TcMode::kFp16), 2);
    EXPECT_EQ(element_bytes(WmmaOperand::kC, TcMode::kInt8), 4);
}

TEST(TuringLoadA, RowMajor16x16x16)
{
    FragmentMap map = turing_fragment_map(WmmaOperand::kA, kShape16x16x16,
                                          TcMode::kFp16, Layout::kRowMajor);
    auto ops = wmma_memory_ops(map, 16);
    // 8 elements per thread in 4-element contiguous chunks: 2 64-bit
    // loads.
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].width_bits, 64);
}

TEST(TuringLoadA, ColMajorScatters)
{
    // In column-major the row chunks scatter: accesses degrade to
    // 16-bit element loads.
    FragmentMap map = turing_fragment_map(WmmaOperand::kA, kShape16x16x16,
                                          TcMode::kFp16, Layout::kColMajor);
    auto ops = wmma_memory_ops(map, 16);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].width_bits, 16);
}

}  // namespace
}  // namespace tcsim
