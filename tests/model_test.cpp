/**
 * @file
 * Model-graph frontend tests: lowering of each layer kind to
 * GEMM-shaped launches (im2col/flattening identities, wmma tile
 * padding), activation chaining and its error cases, name prefixing
 * (the serving engine's per-wavefront namespace), and the scenario
 * "model" key end-to-end through the task-graph compiler.
 */

#include <gtest/gtest.h>

#include <set>

#include "driver/runner.h"
#include "driver/scenario.h"
#include "model/model_graph.h"

using namespace tcsim;
using namespace tcsim::model;

namespace {

ModelGraph
mlp(int input, std::vector<int> widths, int tokens = 1)
{
    ModelGraph g;
    g.name = "mlp";
    g.tokens_per_request = tokens;
    g.input_features = input;
    for (size_t i = 0; i < widths.size(); ++i) {
        LayerSpec l;
        l.kind = LayerKind::kLinear;
        l.name = "fc" + std::to_string(i);
        l.out_features = widths[i];
        g.layers.push_back(l);
    }
    return g;
}

}  // namespace

TEST(ModelLowering, LinearShapesAndPadding)
{
    // 100 -> 60, batch 3, 1 token: every GEMM dim pads to the
    // wmma_shared tile grid (m,n % 64, k % 16 -- the lowering uses 64
    // for k too, the conservative choice valid for every family).
    ModelGraph g = mlp(100, {60});
    LoweredModel lm = lower_model(g, 3);
    ASSERT_EQ(lm.kernels.size(), 1u);
    const LoweredKernel& k = lm.kernels[0];
    EXPECT_EQ(k.family, "wmma_shared");
    EXPECT_EQ(k.m, 64);   // pad(3 rows)
    EXPECT_EQ(k.n, 64);   // pad(60)
    EXPECT_EQ(k.k, 128);  // pad(100)
    EXPECT_DOUBLE_EQ(k.flops, 2.0 * 64 * 64 * 128);
    EXPECT_DOUBLE_EQ(lm.total_flops, k.flops);

    // Tensors: input, weight, output -- with unpadded logical bytes.
    ASSERT_EQ(lm.tensors.size(), 3u);
    EXPECT_EQ(lm.tensors[0].name, "in");
    EXPECT_EQ(lm.tensors[0].bytes, 3u * 100 * 2);
    EXPECT_EQ(lm.tensors[1].name, "fc0.w");
    EXPECT_EQ(lm.tensors[1].bytes, 100u * 60 * 2);
    EXPECT_EQ(lm.tensors[2].name, "fc0.out");
    EXPECT_EQ(lm.tensors[2].bytes, 3u * 60 * 2);

    EXPECT_EQ(k.reads, (std::vector<std::string>{"in", "fc0.w"}));
    EXPECT_EQ(k.writes, (std::vector<std::string>{"fc0.out"}));
}

TEST(ModelLowering, ChainsActivationsAndRowsScaleWithTokens)
{
    ModelGraph g = mlp(64, {64, 64}, /*tokens=*/8);
    LoweredModel lm = lower_model(g, 16);  // 16 requests * 8 tokens.
    ASSERT_EQ(lm.kernels.size(), 2u);
    EXPECT_EQ(lm.kernels[0].m, 128);
    EXPECT_EQ(lm.kernels[1].m, 128);
    // Layer 1 reads layer 0's activation.
    EXPECT_EQ(lm.kernels[1].reads,
              (std::vector<std::string>{"fc0.out", "fc1.w"}));
    ASSERT_EQ(lm.last_kernel_of_layer, (std::vector<int>{0, 1}));
    EXPECT_EQ(lm.num_layers, 2);
}

TEST(ModelLowering, InFeaturesMismatchThrows)
{
    ModelGraph g = mlp(64, {64, 64});
    g.layers[1].in_features = 100;  // Actual incoming width is 64.
    EXPECT_THROW(lower_model(g, 1), ModelError);
}

TEST(ModelLowering, Conv2dIm2colShapes)
{
    ModelGraph g;
    g.name = "conv";
    LayerSpec c;
    c.kind = LayerKind::kConv2d;
    c.name = "c0";
    c.in_channels = 3;
    c.out_channels = 32;
    c.kernel = 3;
    c.stride = 1;
    c.height = 16;
    c.width = 16;
    g.layers.push_back(c);
    LoweredModel lm = lower_model(g, 2);
    ASSERT_EQ(lm.kernels.size(), 1u);
    const LoweredKernel& k = lm.kernels[0];
    // oh = ow = (16-3)/1+1 = 14; m = pad(2*14*14) = 448; n = pad(32);
    // k = pad(3*3*3, 16) = 32.
    EXPECT_EQ(k.m, 448);
    EXPECT_EQ(k.n, 64);
    EXPECT_EQ(k.k, 32);

    // A second conv infers its input from the first's output.
    LayerSpec c2 = c;
    c2.name = "c1";
    c2.in_channels = 0;
    c2.height = 0;
    c2.width = 0;
    g.layers.push_back(c2);
    lm = lower_model(g, 2);
    ASSERT_EQ(lm.kernels.size(), 2u);
    // Incoming 32x14x14: oh = ow = 12; k = pad(32*9, 16) = 288.
    EXPECT_EQ(lm.kernels[1].m, 320);  // pad(2*12*12 = 288)
    EXPECT_EQ(lm.kernels[1].k, 288);
    EXPECT_EQ(lm.kernels[1].reads[0], "c0.out");
}

TEST(ModelLowering, FirstConvRequiresDims)
{
    ModelGraph g;
    LayerSpec c;
    c.kind = LayerKind::kConv2d;
    c.out_channels = 8;
    g.layers.push_back(c);
    EXPECT_THROW(lower_model(g, 1), ModelError);
}

TEST(ModelLowering, LinearFlattensImage)
{
    ModelGraph g;
    LayerSpec c;
    c.kind = LayerKind::kConv2d;
    c.name = "c0";
    c.in_channels = 4;
    c.out_channels = 8;
    c.kernel = 3;
    c.height = 10;
    c.width = 10;
    g.layers.push_back(c);
    LayerSpec fc;
    fc.kind = LayerKind::kLinear;
    fc.name = "fc";
    fc.out_features = 10;
    g.layers.push_back(fc);
    LoweredModel lm = lower_model(g, 5);
    // Flattened: 8 channels * 8x8 = 512 features, one row per request.
    EXPECT_EQ(lm.kernels[1].m, 64);   // pad(5 rows)
    EXPECT_EQ(lm.kernels[1].k, 512);
}

TEST(ModelLowering, AttentionExpandsToFourGemms)
{
    ModelGraph g;
    g.input_features = 128;
    g.tokens_per_request = 32;
    LayerSpec a;
    a.kind = LayerKind::kAttention;
    a.name = "att";
    a.embed_dim = 128;
    a.heads = 4;
    g.layers.push_back(a);
    LoweredModel lm = lower_model(g, 2);  // 64 rows total.
    ASSERT_EQ(lm.kernels.size(), 4u);
    EXPECT_EQ(lm.kernels[0].name, "att.qkv");
    EXPECT_EQ(lm.kernels[1].name, "att.scores");
    EXPECT_EQ(lm.kernels[2].name, "att.ctx");
    EXPECT_EQ(lm.kernels[3].name, "att.proj");
    // qkv: [rows x e] * [e x 3e] -> n = 384.
    EXPECT_EQ(lm.kernels[0].m, 64);
    EXPECT_EQ(lm.kernels[0].n, 384);
    EXPECT_EQ(lm.kernels[0].k, 128);
    // scores: n = pad(tokens) = 64; ctx swaps n and k.
    EXPECT_EQ(lm.kernels[1].n, 64);
    EXPECT_EQ(lm.kernels[1].k, 128);
    EXPECT_EQ(lm.kernels[2].n, 128);
    EXPECT_EQ(lm.kernels[2].k, 64);
    // One layer, whose boundary is the projection.
    ASSERT_EQ(lm.last_kernel_of_layer, (std::vector<int>{3}));
}

TEST(ModelLowering, AttentionHeadsMustDivide)
{
    ModelGraph g;
    g.input_features = 100;
    LayerSpec a;
    a.kind = LayerKind::kAttention;
    a.heads = 3;
    g.layers.push_back(a);
    EXPECT_THROW(lower_model(g, 1), ModelError);
}

TEST(ModelLowering, ElementwiseIsThinNaiveGemm)
{
    ModelGraph g = mlp(64, {64});
    LayerSpec e;
    e.kind = LayerKind::kElementwise;
    e.name = "relu";
    g.layers.push_back(e);
    LoweredModel lm = lower_model(g, 1);
    ASSERT_EQ(lm.kernels.size(), 2u);
    EXPECT_EQ(lm.kernels[1].family, "wmma_naive");
    EXPECT_EQ(lm.kernels[1].k, 16);
    EXPECT_EQ(lm.kernels[1].reads, (std::vector<std::string>{"fc0.out"}));
    EXPECT_EQ(lm.kernels[1].writes, (std::vector<std::string>{"relu.out"}));
}

TEST(ModelLowering, PrefixNamespacesEverything)
{
    // The serving engine lowers each wavefront under "b<id>." -- every
    // tensor, kernel, read and write must carry the prefix exactly
    // once, and reads must resolve against the declared tensors.
    ModelGraph g = mlp(64, {64, 64});
    LoweredModel lm = lower_model(g, 1, "b7.");
    std::set<std::string> tensors;
    for (const LoweredTensor& t : lm.tensors) {
        EXPECT_EQ(t.name.rfind("b7.", 0), 0u) << t.name;
        tensors.insert(t.name);
    }
    for (const LoweredKernel& k : lm.kernels) {
        EXPECT_EQ(k.name.rfind("b7.", 0), 0u) << k.name;
        for (const std::string& r : k.reads)
            EXPECT_TRUE(tensors.count(r)) << r;
        for (const std::string& w : k.writes)
            EXPECT_TRUE(tensors.count(w)) << w;
    }
}

TEST(ModelLowering, RejectsIntPrecisionAndBadInput)
{
    ModelGraph g = mlp(64, {64});
    g.precision = TcMode::kInt8;
    EXPECT_THROW(lower_model(g, 1), ModelError);

    ModelGraph h = mlp(0, {64});  // Sequence model without a width.
    EXPECT_THROW(lower_model(h, 1), ModelError);

    EXPECT_THROW(lower_model(mlp(64, {64}), 0), ModelError);
}

// --- Scenario "model" key ------------------------------------------

TEST(ModelScenario, LowersToDeclarativeForm)
{
    driver::Scenario sc = driver::parse_scenario_text(R"({
        "name": "m",
        "model": {
            "batch": 2,
            "tokens_per_request": 32,
            "input_features": 64,
            "layers": [
                {"type": "linear", "name": "fc0", "out_features": 64},
                {"type": "linear", "name": "fc1", "out_features": 64}
            ]
        },
        "expect": [{"metric": "kernel.fc1.cycles", "min": 1}]
    })");
    EXPECT_TRUE(sc.declarative);
    ASSERT_EQ(sc.kernels.size(), 2u);
    EXPECT_EQ(sc.kernels[0].name, "fc0");
    EXPECT_EQ(sc.kernels[0].m, 64);
    // in + per-layer weight and activation.
    ASSERT_EQ(sc.tensors.size(), 5u);
    // The task-graph compiler derived the chain: fc1 waits on fc0.
    EXPECT_FALSE(sc.dag.edges.empty());

    driver::ScenarioResult r = driver::run_scenario(sc);
    EXPECT_TRUE(r.passed) << r.error;
    EXPECT_GT(r.totals.cycles, 0u);
}

TEST(ModelScenario, SchemaErrors)
{
    // "model" excludes hand-written kernels.
    EXPECT_THROW(driver::parse_scenario_text(R"({
        "name": "m",
        "model": {"input_features": 64,
                  "layers": [{"type": "linear", "out_features": 64}]},
        "kernels": [{"family": "wmma_shared"}]
    })"),
                 driver::ScenarioError);
    // Unknown layer type.
    EXPECT_THROW(driver::parse_scenario_text(R"({
        "name": "m",
        "model": {"input_features": 64,
                  "layers": [{"type": "softmax"}]}
    })"),
                 driver::ScenarioError);
    // Layer keys are kind-checked strictly.
    EXPECT_THROW(driver::parse_scenario_text(R"({
        "name": "m",
        "model": {"input_features": 64,
                  "layers": [{"type": "linear", "out_features": 64,
                              "kernel": 3}]}
    })"),
                 driver::ScenarioError);
}
