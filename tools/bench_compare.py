#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json snapshots to baselines.

The per-figure bench binaries emit machine-readable metric snapshots
(``BENCH_<name>.json``, written by bench_util.h's JsonEmitter).  CI
checks fresh snapshots against the committed baselines in
``bench/baselines/`` and fails the job when a metric drifts beyond its
tolerance class:

* cycle/instruction counts (key contains ``cycles``, ``instructions``
  or ``count``) must match **exactly** — the simulator is
  deterministic, so any drift is a real modelling change;
* wall-time metrics (key contains ``wall`` or ends with ``_ms``) get
  a wide relative tolerance (default +/-25%) — machine noise;
* everything else (TFLOPS, IPC, correlation statistics) gets a small
  relative tolerance (default 1e-6) that absorbs cross-compiler
  floating-point wiggle but nothing more.

A deliberate metric change must update the baseline file in the same
commit, which makes the perf trajectory reviewable in the diff.

Usage:
    tools/bench_compare.py <baseline_dir> <current_dir>
        [--wall-tol 0.25] [--rel-tol 1e-6]

Exit status: 0 when every baseline metric matches, 1 otherwise.
"""

import argparse
import glob
import json
import os
import sys


def classify(key):
    """Return the tolerance class of a metric key."""
    low = key.lower()
    if "wall" in low or low.endswith("_ms"):
        return "wall"
    if "cycles" in low or "instructions" in low or "count" in low:
        return "exact"
    return "float"


def within(baseline, current, tolerance):
    if baseline == current:
        return True
    if baseline is None or current is None:
        return False
    scale = max(abs(baseline), abs(current))
    return abs(baseline - current) <= tolerance * scale


def load_snapshot(path, role):
    """Parse one snapshot file.  Returns (doc, error): an unreadable or
    truncated file becomes one clear per-file failure line instead of a
    traceback that aborts the whole gate."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        return None, "{}: unreadable {} file: {}".format(
            os.path.basename(path), role, e.strerror or e)
    if not text.strip():
        return None, "{}: {} file is empty (truncated write?)".format(
            os.path.basename(path), role)
    try:
        return json.loads(text), None
    except json.JSONDecodeError as e:
        return None, ("{}: {} file is not valid JSON (line {}: {}) — "
                      "truncated or corrupt snapshot?".format(
                          os.path.basename(path), role, e.lineno, e.msg))


def compare_file(base_path, cur_path, wall_tol, rel_tol):
    failures = []
    base, err = load_snapshot(base_path, "baseline")
    if err:
        return [err]
    if not os.path.exists(cur_path):
        return ["missing snapshot {} (did the bench run?)".format(cur_path)]
    cur, err = load_snapshot(cur_path, "report")
    if err:
        return [err]

    name = os.path.basename(base_path)
    if "metrics" not in base or not isinstance(base["metrics"], dict):
        return ["{}: baseline has no 'metrics' object (corrupt "
                "baseline file?)".format(name)]
    base_metrics = base["metrics"]
    if "metrics" not in cur or not isinstance(cur["metrics"], dict):
        return ["{}: report has no 'metrics' object; all {} baseline "
                "key(s) missing: {}".format(
                    name, len(base_metrics),
                    ", ".join(sorted(base_metrics)))]
    cur_metrics = cur["metrics"]

    # One aggregated failure for vanished keys, so a renamed metric or
    # a bench that stopped emitting reads as a clear list instead of a
    # KeyError (or N separate lines).
    missing = sorted(k for k in base_metrics if k not in cur_metrics)
    if missing:
        failures.append(
            "{}: {} baseline key(s) missing from the report: {}".format(
                name, len(missing), ", ".join(missing)))
    for key, want in base_metrics.items():
        if key not in cur_metrics:
            continue
        got = cur_metrics[key]
        cls = classify(key)
        if cls == "exact":
            ok = want == got
            bound = "exact"
        elif cls == "wall":
            ok = within(want, got, wall_tol)
            bound = "+/-{:.0%}".format(wall_tol)
        else:
            ok = within(want, got, rel_tol)
            bound = "rel {:g}".format(rel_tol)
        if not ok:
            failures.append(
                "{}: '{}' drifted: baseline {} -> current {} ({})".format(
                    os.path.basename(base_path), key, want, got, bound))
    for key in cur_metrics:
        if key not in base_metrics:
            print("note: {} has new metric '{}' = {} (not in baseline)".
                  format(os.path.basename(cur_path), key, cur_metrics[key]))
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json snapshots to baselines")
    parser.add_argument("baseline_dir")
    parser.add_argument("current_dir")
    parser.add_argument("--wall-tol", type=float, default=0.25,
                        help="relative tolerance for wall-time metrics")
    parser.add_argument("--rel-tol", type=float, default=1e-6,
                        help="relative tolerance for float metrics")
    args = parser.parse_args()

    baselines = sorted(
        glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baselines:
        print("bench_compare: no baselines in", args.baseline_dir)
        return 1

    failures = []
    for base_path in baselines:
        cur_path = os.path.join(args.current_dir,
                                os.path.basename(base_path))
        failures += compare_file(base_path, cur_path, args.wall_tol,
                                 args.rel_tol)
        print("checked", os.path.basename(base_path))

    if failures:
        print("\nbench-regression gate FAILED:")
        for failure in failures:
            print("  ", failure)
        print("(intended change? update bench/baselines/ in this commit)")
        return 1
    print("bench-regression gate passed ({} baseline files)".format(
        len(baselines)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
