#!/usr/bin/env python3
"""Validity gate for ``simrunner --dump-dag``.

Dumps the dependency DAG of every scenario passed on the command line
and checks each artifact:

* the ``.dag.json`` parses as strict JSON and is well-formed — task
  names unique, every edge endpoint is a task, stream ids within
  ``1..num_streams`` for compiled graphs, every event named by an edge
  recorded by its producer task;
* the ``.dag.dot`` is non-empty and looks like a Graphviz digraph;
* exactly one artifact pair exists per scenario.

Usage:
    tools/check_dag_dump.py <simrunner> <scenarios...> [--workdir DIR]

Exit status: 0 when every dump is valid, 1 otherwise.
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def check_dag(path, problems):
    with open(path) as f:
        dag = json.load(f)

    for key in ("scenario", "declarative", "num_streams", "tasks", "edges",
                "false_serialization", "tensors"):
        if key not in dag:
            problems.append("{}: missing key {!r}".format(path, key))
            return

    names = [t["name"] for t in dag["tasks"]]
    if len(set(names)) != len(names):
        problems.append("{}: duplicate task names".format(path))
    by_name = {t["name"]: t for t in dag["tasks"]}

    if dag["declarative"]:
        for t in dag["tasks"]:
            if not 1 <= t["stream"] <= dag["num_streams"]:
                problems.append("{}: task {!r} stream {} outside "
                                "1..{}".format(path, t["name"], t["stream"],
                                               dag["num_streams"]))
        tensor_names = {t["name"] for t in dag["tensors"]}
        for t in dag["tasks"]:
            for ref in t.get("reads", []) + t.get("writes", []):
                if ref not in tensor_names:
                    problems.append("{}: task {!r} references unknown "
                                    "tensor {!r}".format(path, t["name"],
                                                         ref))

    for e in dag["edges"]:
        for end in (e["from"], e["to"]):
            if end not in by_name:
                problems.append("{}: edge endpoint {!r} is not a "
                                "task".format(path, end))
        if e.get("event"):
            producer = by_name.get(e["from"], {})
            if producer.get("record_event") != e["event"]:
                problems.append("{}: edge {} -> {} waits on {!r} which "
                                "its producer does not record".format(
                                    path, e["from"], e["to"], e["event"]))

    for pair in dag["false_serialization"]:
        for end in (pair["from"], pair["to"]):
            if end not in by_name:
                problems.append("{}: false-serialization endpoint {!r} is "
                                "not a task".format(path, end))


def main():
    parser = argparse.ArgumentParser(
        description="validate simrunner --dump-dag artifacts")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    dump_dir = os.path.join(args.workdir, "dag_dump")
    cmd = [args.simrunner, "--dump-dag", dump_dir] + args.inputs
    print("+", " ".join(cmd), flush=True)
    if subprocess.call(cmd) != 0:
        print("check_dag_dump: FAILED — simrunner --dump-dag exited "
              "nonzero")
        return 1

    problems = []
    jsons = sorted(glob.glob(os.path.join(dump_dir, "*.dag.json")))
    if not jsons:
        problems.append("{}: no .dag.json artifacts produced".format(
            dump_dir))
    for path in jsons:
        try:
            check_dag(path, problems)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            problems.append("{}: {}".format(path, exc))
        dot = path[:-len(".json")] + ".dot"
        if not os.path.exists(dot):
            problems.append("{}: missing DOT twin".format(dot))
        else:
            with open(dot) as f:
                text = f.read()
            if not text.startswith("digraph") or not text.rstrip().endswith("}"):
                problems.append("{}: does not look like a Graphviz "
                                "digraph".format(dot))

    if problems:
        print("check_dag_dump: FAILED")
        for p in problems[:50]:
            print("  ", p)
        return 1
    print("check_dag_dump: OK — {} DAG dump(s) valid".format(len(jsons)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
