#!/usr/bin/env python3
"""Accuracy gate for the kernel-timing replay cache (sim.replay).

Exercises the production replay flow over each scenario input: a
full-detail reference run, a ``--replay=record`` pass that persists
profiles to a cache directory, then a ``--replay`` pass warmed from
that directory (the record-once / replay-many loop the cache exists
for, including the .rpc archive round-trip).  Each input gets its own
cache directory: a key's duration sequence is indexed by per-run
occurrence order, so scenarios sharing fingerprints would overwrite
each other's slots in a shared cache.  Checks, per scenario:

  * every ``serve.latency_cycles`` percentile is within ``--bound``
    of the detailed run (the replay mode's declared accuracy envelope
    across contexts; exact-fingerprint same-context hits are exact),
  * ``total.instructions`` and ``total.hmma_instructions`` match
    *exactly* — profile counters are shape-deterministic, so replay
    may move timing but never instruction work, and
  * the replay leg actually replayed something (summed ``replay.hits``
    over the suite > 0), so the gate cannot pass vacuously.

The replay leg's own scenario assertions are advisory only: expect
bands are tuned for full-detail runs; the bound here is the contract
replay mode actually makes.  A replay scenario that fails to *run*
(error string in the report) still fails the gate.

Usage:
    tools/check_replay_error.py <simrunner> <scenarios...>
        [--bound 0.05] [--workdir DIR]

Exit status: 0 when every scenario is within bounds, 1 otherwise.
"""

import argparse
import json
import os
import subprocess
import sys


def run_leg(simrunner, inputs, report, replay=None, cache=None):
    cmd = [simrunner, "--quiet", "--jobs", "1", "--report", report]
    if replay:
        cmd += ["--replay={}".format(replay)]
    if cache:
        cmd += ["--replay-cache", cache]
    cmd += inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def by_name(report_path):
    with open(report_path) as f:
        doc = json.load(f)
    return {r["name"]: r for r in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser(
        description="replay-cache accuracy vs full detail")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--bound", type=float, default=0.05,
                        help="max |replay - full| / full on serve "
                             "latency percentiles")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    full = {}
    replay = {}
    for idx, inp in enumerate(args.inputs):
        full_path = os.path.join(
            args.workdir, "report_replay_full_{}.json".format(idx))
        record_path = os.path.join(
            args.workdir, "report_replay_record_{}.json".format(idx))
        replay_path = os.path.join(
            args.workdir, "report_replay_on_{}.json".format(idx))
        cache_dir = os.path.join(args.workdir,
                                 "replay_cache_{}".format(idx))

        rc_full = run_leg(args.simrunner, [inp], full_path)
        rc_record = run_leg(args.simrunner, [inp], record_path,
                            replay="record", cache=cache_dir)
        run_leg(args.simrunner, [inp], replay_path,
                replay="replay", cache=cache_dir)
        if rc_full != 0:
            print("check_replay_error: full-detail leg failed (rc={})"
                  .format(rc_full))
            return 1
        if rc_record != 0:
            print("check_replay_error: record leg failed (rc={}) — "
                  "recording must not perturb execution".format(rc_record))
            return 1
        full.update(by_name(full_path))
        replay.update(by_name(replay_path))

    failures = 0
    total_hits = 0
    for name, f in sorted(full.items()):
        r = replay.get(name)
        if r is None:
            print("FAIL {}: missing from the replay report".format(name))
            failures += 1
            continue
        if r.get("error"):
            print("FAIL {}: replay run errored: {}".format(
                name, r["error"]))
            failures += 1
            continue
        total_hits += r.get("replay", {}).get("hits", 0)
        for counter in ("instructions", "hmma_instructions"):
            if f["total"][counter] != r["total"][counter]:
                print("FAIL {}: total.{} full={} replay={} (profile "
                      "counters are shape-deterministic)".format(
                          name, counter, f["total"][counter],
                          r["total"][counter]))
                failures += 1
        fl = f.get("serve", {}).get("latency_cycles")
        rl = r.get("serve", {}).get("latency_cycles")
        if fl is None:
            continue  # Not a serving scenario: counters were the gate.
        for key in sorted(fl):
            fv, rv = fl[key], rl.get(key)
            if rv is None:
                print("FAIL {}: latency {} missing from replay".format(
                    name, key))
                failures += 1
                continue
            err = abs(rv - fv) / fv if fv else 0.0
            ok = err <= args.bound
            print("{} {}: latency {} full={} replay={} rel_err={:.4f} "
                  "(bound {:.2f})".format("ok  " if ok else "FAIL", name,
                                          key, fv, rv, err, args.bound))
            if not ok:
                failures += 1

    if total_hits == 0:
        print("FAIL: replay leg never hit the cache — the gate would "
              "be vacuous")
        failures += 1

    if failures:
        print("check_replay_error: FAILED — {} check(s) out of bounds"
              .format(failures))
        return 1
    print("check_replay_error: OK — replay within {:.0%} of full-detail "
          "serve percentiles, counters exact, {} hit(s)".format(
              args.bound, total_hits))
    return 0


if __name__ == "__main__":
    sys.exit(main())
