/**
 * @file
 * simrunner: the scenario driver CLI.  Loads declarative JSON
 * scenarios (files or directories), runs them on a thread-pool batch
 * runner — one simulator instance per worker — and prints per-scenario
 * tables plus an aggregate summary.  Optionally writes the full batch
 * report as JSON.
 *
 * Usage:
 *   simrunner [options] <scenario.json | dir>...
 *     --jobs N        batch worker threads (default: hardware
 *                     concurrency); shares one thread budget with
 *                     --sim-threads, so the two never oversubscribe
 *     --sim-threads N worker threads *inside* each simulation
 *                     (0 = hardware concurrency); overrides the
 *                     scenarios' sim.sim_threads.  Results are
 *                     bit-identical for every value
 *     --report FILE   write the aggregate JSON report to FILE
 *     --filter SUBS   only run scenarios whose name contains any of
 *                     the comma-separated patterns (repeatable)
 *     --replay[=MODE] override sim.replay on every scenario
 *                     (MODE: replay (default), record, verify, off)
 *     --replay-cache DIR  merge every .rpc file under DIR into a
 *                     batch-shared profile cache before running,
 *                     write DIR/profiles.rpc after; needs --replay
 *     --fail-fast     stop the batch on the first scenario failure
 *     --list          list matching scenarios and exit
 *     --quiet         only print the summary and failures
 *     --sweep FILE    base scenario for a snapshot-forked sweep
 *                     (combine with --grid; a scenario with an inline
 *                     "sweep" key sweeps without any flag)
 *     --grid FILE     standalone {"fork_cycle", "points"} document to
 *                     attach to the --sweep base
 *     --cold-sweep    run every sweep point cold (prefix + point from
 *                     cycle 0) instead of forking the prefix snapshot
 *                     — the fork-identity reference leg
 *     --detailed-sms N  override sim.detailed_sms on every scenario
 *                     (sampled-SM fast-forward; 0 = full detail)
 *     --dump-dag DIR  write the dependency DAG of every matching
 *                     scenario to DIR/<name>.dag.json and .dag.dot
 *                     (compiled plan for declarative scenarios, the
 *                     explicit record/wait/sync plumbing for legacy
 *                     ones) and exit without running
 *   --trace-out DIR write each serving scenario's per-request
 *                     lifecycle to DIR/<name>.trace.jsonl (one JSON
 *                     object per request: id, arrival/admit/finish
 *                     cycles, batch id) — the lines parse back as a
 *                     "file"-kind input trace, so a recorded run can
 *                     be replayed
 *
 * Exit status: 0 when every scenario passed, 1 otherwise.
 *
 *   ./build/simrunner scenarios/                 # the curated suite
 *   ./build/simrunner --jobs 4 scenarios/ --report report.json
 *   ./build/simrunner --sim-threads 4 scenarios/ # parallel sim core
 *   ./build/simrunner --sweep base.json --grid grid.json
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/table.h"
#include "driver/runner.h"
#include "driver/scenario.h"
#include "driver/taskgraph.h"
#include "metrics/metrics.h"
#include "sim/replay/replay_cache.h"

using namespace tcsim;

namespace {

struct Options
{
    int jobs = 0;         ///< 0 = hardware concurrency.
    int sim_threads = -1; ///< -1 = per-scenario sim.sim_threads.
    std::string report_path;
    /** --filter patterns (comma-separated and/or repeated); a
     *  scenario runs when its name contains ANY pattern. */
    std::vector<std::string> filters;
    bool fail_fast = false;
    bool list = false;
    bool quiet = false;
    std::string sweep_path;   ///< --sweep base scenario file.
    std::string grid_path;    ///< --grid standalone sweep document.
    bool cold_sweep = false;
    int detailed_sms = -1;    ///< -1 = per-scenario sim.detailed_sms.
    std::string dump_dag_dir; ///< --dump-dag output directory.
    std::string trace_out_dir; ///< --trace-out output directory.
    /** --replay mode as a SimOptions::ReplayMode int (-1 = keep the
     *  per-scenario sim.replay setting). */
    int replay_mode = -1;
    std::string replay_cache_dir; ///< --replay-cache directory.
    /** --timeout-ms per-scenario wall-clock watchdog (0 = none). */
    uint64_t timeout_ms = 0;
    std::vector<std::string> inputs;
};

void
usage(std::FILE* to)
{
    std::fprintf(
        to,
        "usage: simrunner [options] <scenario.json | dir>...\n"
        "  --jobs N        batch worker threads (default: hardware\n"
        "                  concurrency; clamped so jobs x sim-threads\n"
        "                  stays within the host's cores)\n"
        "  --sim-threads N worker threads inside each simulation\n"
        "                  (0 = hardware concurrency; results are\n"
        "                  bit-identical for every value)\n"
        "  --report FILE   write the aggregate JSON report to FILE\n"
        "  --filter SUBS   only run scenarios whose name contains any\n"
        "                  of the comma-separated patterns (repeatable)\n"
        "  --replay[=MODE] override sim.replay on every scenario.\n"
        "                  MODE: replay (default), record, verify, off\n"
        "  --replay-cache DIR  share one profile cache across the\n"
        "                  batch: merge DIR/*.rpc before running and\n"
        "                  write DIR/profiles.rpc after (needs --replay)\n"
        "  --fail-fast     stop the batch on the first scenario failure\n"
        "  --list          list matching scenarios and exit\n"
        "  --quiet         only print the summary and failures\n"
        "  --sweep FILE    base scenario for a snapshot-forked sweep\n"
        "  --grid FILE     sweep document to attach to the --sweep base\n"
        "  --cold-sweep    run sweep points cold instead of forking\n"
        "  --detailed-sms N  override sim.detailed_sms (0 = full detail)\n"
        "  --dump-dag DIR  write each scenario's dependency DAG to\n"
        "                  DIR/<name>.dag.{json,dot} and exit\n"
        "  --trace-out DIR write per-request serving traces to\n"
        "                  DIR/<name>.trace.jsonl (replayable as\n"
        "                  \"file\"-kind input traces)\n"
        "  --timeout-ms N  per-scenario wall-clock watchdog: a hung or\n"
        "                  runaway scenario becomes a structured error\n"
        "                  row while the rest of the batch completes\n");
}

bool
parse_args(int argc, char** argv, Options* opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "simrunner: %s needs a value\n",
                             arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            const char* v = value();
            if (!v)
                return false;
            opts->jobs = std::atoi(v);
            if (opts->jobs < 1) {
                std::fprintf(stderr, "simrunner: bad --jobs value\n");
                return false;
            }
        } else if (arg == "--sim-threads") {
            const char* v = value();
            if (!v)
                return false;
            opts->sim_threads = std::atoi(v);
            if (opts->sim_threads < 0 ||
                (opts->sim_threads == 0 && std::strcmp(v, "0") != 0)) {
                std::fprintf(stderr, "simrunner: bad --sim-threads value\n");
                return false;
            }
        } else if (arg == "--report") {
            const char* v = value();
            if (!v)
                return false;
            opts->report_path = v;
        } else if (arg == "--filter") {
            const char* v = value();
            if (!v)
                return false;
            // Comma-separated patterns; repeated flags accumulate.
            std::string pats = v;
            size_t start = 0;
            while (start <= pats.size()) {
                size_t comma = pats.find(',', start);
                if (comma == std::string::npos)
                    comma = pats.size();
                if (comma > start)
                    opts->filters.push_back(
                        pats.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (arg == "--replay" ||
                   arg.rfind("--replay=", 0) == 0) {
            std::string mode = arg == "--replay" ? "replay"
                                                 : arg.substr(9);
            if (mode == "off")
                opts->replay_mode = 0;
            else if (mode == "record")
                opts->replay_mode = 1;
            else if (mode == "replay")
                opts->replay_mode = 2;
            else if (mode == "verify")
                opts->replay_mode = 3;
            else {
                std::fprintf(stderr,
                             "simrunner: bad --replay mode \"%s\" "
                             "(want off|record|replay|verify)\n",
                             mode.c_str());
                return false;
            }
        } else if (arg == "--replay-cache") {
            const char* v = value();
            if (!v)
                return false;
            opts->replay_cache_dir = v;
        } else if (arg == "--sweep") {
            const char* v = value();
            if (!v)
                return false;
            opts->sweep_path = v;
        } else if (arg == "--grid") {
            const char* v = value();
            if (!v)
                return false;
            opts->grid_path = v;
        } else if (arg == "--cold-sweep") {
            opts->cold_sweep = true;
        } else if (arg == "--detailed-sms") {
            const char* v = value();
            if (!v)
                return false;
            opts->detailed_sms = std::atoi(v);
            if (opts->detailed_sms < 0 ||
                (opts->detailed_sms == 0 && std::strcmp(v, "0") != 0)) {
                std::fprintf(stderr,
                             "simrunner: bad --detailed-sms value\n");
                return false;
            }
        } else if (arg == "--timeout-ms") {
            const char* v = value();
            if (!v)
                return false;
            long long ms = std::atoll(v);
            if (ms < 1) {
                std::fprintf(stderr, "simrunner: bad --timeout-ms value\n");
                return false;
            }
            opts->timeout_ms = static_cast<uint64_t>(ms);
        } else if (arg == "--dump-dag") {
            const char* v = value();
            if (!v)
                return false;
            opts->dump_dag_dir = v;
        } else if (arg == "--trace-out") {
            const char* v = value();
            if (!v)
                return false;
            opts->trace_out_dir = v;
        } else if (arg == "--fail-fast") {
            opts->fail_fast = true;
        } else if (arg == "--list") {
            opts->list = true;
        } else if (arg == "--quiet" || arg == "-q") {
            opts->quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "simrunner: unknown option %s\n",
                         arg.c_str());
            return false;
        } else {
            opts->inputs.push_back(std::move(arg));
        }
    }
    if (!opts->grid_path.empty() && opts->sweep_path.empty()) {
        std::fprintf(stderr,
                     "simrunner: --grid needs a --sweep base scenario\n");
        return false;
    }
    if (!opts->replay_cache_dir.empty() && opts->replay_mode < 0) {
        std::fprintf(stderr,
                     "simrunner: --replay-cache needs --replay[=MODE]\n");
        return false;
    }
    if (opts->inputs.empty() && opts->sweep_path.empty()) {
        usage(stderr);
        return false;
    }
    return true;
}

/** Expand files/directories into a sorted scenario file list. */
std::vector<std::string>
collect_files(const std::vector<std::string>& inputs)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string& input : inputs) {
        fs::path p(input);
        if (fs::is_directory(p)) {
            std::vector<std::string> dir_files;
            for (const auto& entry : fs::directory_iterator(p))
                if (entry.is_regular_file() &&
                    entry.path().extension() == ".json")
                    dir_files.push_back(entry.path().string());
            std::sort(dir_files.begin(), dir_files.end());
            files.insert(files.end(), dir_files.begin(), dir_files.end());
        } else {
            files.push_back(input);
        }
    }
    return files;
}

void
print_result(const driver::ScenarioResult& r, bool quiet)
{
    if (quiet && (r.passed || r.skipped))
        return;
    std::printf("\n=== %s (%s) ===\n", r.name.c_str(),
                r.skipped ? "SKIP" : (r.passed ? "PASS" : "FAIL"));
    if (!r.error.empty()) {
        std::printf("  %s%s\n", r.skipped ? "" : "error: ",
                    r.error.c_str());
        return;
    }
    std::vector<double> flops;
    std::vector<LaunchStats> kernels;
    kernels.reserve(r.kernels.size());
    for (const driver::KernelResult& k : r.kernels) {
        flops.push_back(k.flops);
        kernels.push_back(k.stats);
    }
    std::printf(
        "%s",
        metrics::launch_table(kernels, flops, r.clock_ghz).render().c_str());
    for (const driver::EventResult& e : r.events)
        std::printf("  event %-20s completed at cycle %llu\n",
                    e.name.c_str(),
                    static_cast<unsigned long long>(e.cycle));
    std::printf("  total: %llu cycles, IPC %.2f, %.2f TFLOPS, %.1f ms "
                "wall\n",
                static_cast<unsigned long long>(r.totals.cycles),
                r.totals.ipc, r.total_tflops, r.wall_ms);
    if (r.has_serving) {
        const serve::ServingReport& s = r.serving;
        std::printf("  serve: %s, %d/%d request(s) in %d batch(es) "
                    "(mean %.2f), latency p50/p95/p99 %llu/%llu/%llu "
                    "cycles, busy %.1f%%\n",
                    s.policy.c_str(), s.completed, s.requests, s.batches,
                    s.mean_batch_size,
                    static_cast<unsigned long long>(s.latency.latency_p50),
                    static_cast<unsigned long long>(s.latency.latency_p95),
                    static_cast<unsigned long long>(s.latency.latency_p99),
                    100.0 * s.busy_frac);
    }
    std::string mem = metrics::mem_summary(r.totals.mem);
    if (!mem.empty())
        std::printf("  %s\n", mem.c_str());
    for (const driver::AssertionResult& a : r.assertions)
        std::printf("  %s %s = %.10g (want %s)\n", a.passed ? "ok " : "FAIL",
                    a.metric.c_str(), a.value, a.detail.c_str());
}

/** Write each serving result's per-request lifecycle as JSONL (the
 *  "file"-kind trace format, so dumps replay as inputs).  Returns the
 *  number of files that failed to write. */
int
write_trace_files(const driver::BatchReport& report, const std::string& dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    int failures = 0;
    for (const driver::ScenarioResult& r : report.results) {
        if (!r.has_serving)
            continue;
        std::string name = r.name;
        std::replace(name.begin(), name.end(), '/', '_');
        const std::string path = dir + "/" + name + ".trace.jsonl";
        std::string out;
        for (const serve::RequestRecord& q : r.serving.request_records) {
            driver::JsonValue line = driver::JsonValue::object();
            line.set("id", q.id);
            line.set("arrival_cycle", q.arrival_cycle);
            line.set("admit_cycle", q.admit_cycle);
            line.set("finish_cycle", q.finish_cycle);
            line.set("batch", q.batch);
            out += line.dump() + "\n";
        }
        std::FILE* f = std::fopen(path.c_str(), "w");
        bool ok = f != nullptr;
        if (f) {
            ok &= std::fwrite(out.data(), 1, out.size(), f) == out.size();
            ok &= std::fclose(f) == 0;
        }
        if (!ok) {
            std::fprintf(stderr, "simrunner: failed to write %s\n",
                         path.c_str());
            ++failures;
            continue;
        }
        std::printf("wrote %s (%zu request(s))\n", path.c_str(),
                    r.serving.request_records.size());
    }
    return failures;
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opts;
    if (!parse_args(argc, argv, &opts))
        return 1;
    if (opts.jobs == 0)
        opts.jobs = hardware_threads();

    std::vector<driver::Scenario> scenarios;
    int load_failures = 0;
    if (!opts.sweep_path.empty()) {
        try {
            driver::Scenario sc =
                driver::load_scenario_file(opts.sweep_path);
            if (!opts.grid_path.empty())
                driver::attach_sweep(&sc,
                                     driver::json_parse_file(opts.grid_path),
                                     opts.grid_path);
            if (!sc.is_sweep())
                throw driver::ScenarioError(
                    opts.sweep_path + ": scenario \"" + sc.name +
                    "\" has no sweep (add an inline \"sweep\" key or "
                    "pass --grid)");
            scenarios.push_back(std::move(sc));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "simrunner: %s\n", e.what());
            ++load_failures;
        }
    }
    for (const std::string& file : collect_files(opts.inputs)) {
        try {
            driver::Scenario sc = driver::load_scenario_file(file);
            if (!opts.filters.empty() &&
                std::none_of(opts.filters.begin(), opts.filters.end(),
                             [&](const std::string& pat) {
                                 return sc.name.find(pat) !=
                                        std::string::npos;
                             }))
                continue;
            scenarios.push_back(std::move(sc));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "simrunner: %s\n", e.what());
            ++load_failures;
        }
    }

    if (!opts.dump_dag_dir.empty()) {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::create_directories(opts.dump_dag_dir, ec);
        int dump_failures = 0;
        for (const driver::Scenario& sc : scenarios) {
            driver::TaskGraphDag dag = driver::build_dag(sc);
            std::string name = sc.name;
            std::replace(name.begin(), name.end(), '/', '_');
            std::string base = opts.dump_dag_dir + "/" + name + ".dag";
            bool ok = driver::json_write_file_atomic(
                driver::dag_to_json(sc, dag), base + ".json", /*indent=*/2);
            std::string dot = driver::dag_to_dot(sc, dag);
            if (std::FILE* f = std::fopen((base + ".dot").c_str(), "w")) {
                ok &= std::fwrite(dot.data(), 1, dot.size(), f) ==
                      dot.size();
                ok &= std::fclose(f) == 0;
            } else {
                ok = false;
            }
            if (!ok) {
                std::fprintf(stderr, "simrunner: failed to write %s.*\n",
                             base.c_str());
                ++dump_failures;
                continue;
            }
            std::printf("%s: %zu task(s), %zu edge(s), %d stream(s) -> "
                        "%s.{json,dot}\n",
                        sc.name.c_str(), sc.kernels.size(),
                        dag.edges.size(), dag.num_streams, base.c_str());
        }
        return (load_failures || dump_failures) ? 1 : 0;
    }

    if (opts.list) {
        TextTable t;
        t.set_header({"scenario", "kernels", "gpu", "file"});
        for (const driver::Scenario& sc : scenarios)
            t.add_row({sc.name, std::to_string(sc.kernels.size()),
                       sc.gpu_preset, sc.file});
        std::printf("%s", t.render().c_str());
        return load_failures ? 1 : 0;
    }

    if (scenarios.empty()) {
        std::fprintf(stderr, "simrunner: no scenarios to run\n");
        return 1;
    }

    driver::BatchOptions batch;
    batch.jobs = opts.jobs;
    batch.fail_fast = opts.fail_fast;
    batch.sim_threads = opts.sim_threads;
    batch.cold_sweep = opts.cold_sweep;
    batch.detailed_sms = opts.detailed_sms;
    batch.timeout_ms = opts.timeout_ms;
    ReplayCache replay_cache;
    if (opts.replay_mode >= 0) {
        if (!opts.replay_cache_dir.empty()) {
            size_t merged = replay_cache.load_dir(opts.replay_cache_dir);
            if (merged > 0)
                std::printf("replay cache: merged %zu file(s) from %s "
                            "(%zu profile(s))\n",
                            merged, opts.replay_cache_dir.c_str(),
                            replay_cache.size());
        }
        batch.replay.mode = opts.replay_mode;
        batch.replay.cache = &replay_cache;
    }
    int jobs = driver::effective_jobs(batch, scenarios);
    std::printf("running %zu scenario(s) on %d batch worker(s)",
                scenarios.size(), jobs);
    if (jobs < opts.jobs)
        std::printf(" (clamped from %d: shared budget with sim threads)",
                    opts.jobs);
    if (opts.sim_threads >= 0)
        std::printf(", %d sim thread(s) per scenario", opts.sim_threads);
    std::printf("%s\n", opts.fail_fast ? " (fail-fast)" : "");
    driver::BatchReport report = driver::run_batch(scenarios, batch);

    for (const driver::ScenarioResult& r : report.results)
        print_result(r, opts.quiet);

    // Aggregate report: one line per scenario with its wall time, so
    // slow scenarios are visible without digging through the JSON.
    // Suppressed by --quiet (which promises summary-and-failures only);
    // the JSON report carries per-scenario wall_ms either way.
    if (!opts.quiet) {
        char wall[32], tps[32], thr[16];
        TextTable agg;
        agg.set_header({"scenario", "status", "wall ms", "ticks/s",
                        "sim thr"});
        // Cap the name column so one long scenario name cannot push
        // the numeric columns past the terminal edge and wrap rows
        // out of alignment.
        agg.set_max_col_width(0, 48);
        for (const driver::ScenarioResult& r : report.results) {
            std::snprintf(wall, sizeof(wall), "%.1f", r.wall_ms);
            std::snprintf(tps, sizeof(tps), "%.3g", r.ticks_per_sec);
            std::snprintf(thr, sizeof(thr), "%d", r.sim_threads);
            agg.add_row({r.name,
                         r.skipped ? "SKIP" : (r.passed ? "PASS" : "FAIL"),
                         wall, r.skipped ? "-" : tps, thr});
        }
        std::printf("\n%s", agg.render().c_str());
    }

    int failed = report.failed() + load_failures;
    std::printf("\n%zu scenario(s), %d failed, %d skipped, %.1f ms wall "
                "(%d jobs)\n",
                report.results.size(), failed, report.skipped(),
                report.wall_ms, report.jobs);

    if (opts.replay_mode >= 0) {
        uint64_t hits = 0, misses = 0, verified = 0;
        for (const driver::ScenarioResult& r : report.results) {
            hits += r.totals.replay_hits;
            misses += r.totals.replay_misses;
            verified += r.totals.replay_verified;
        }
        std::printf("replay: %llu hit(s), %llu miss(es), %llu verified, "
                    "%zu profile(s) cached\n",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses),
                    static_cast<unsigned long long>(verified),
                    replay_cache.size());
        if (!opts.replay_cache_dir.empty()) {
            namespace fs = std::filesystem;
            std::error_code ec;
            fs::create_directories(opts.replay_cache_dir, ec);
            const std::string path =
                opts.replay_cache_dir + "/profiles.rpc";
            if (replay_cache.save_file(path)) {
                std::printf("wrote %s\n", path.c_str());
            } else {
                std::fprintf(stderr, "simrunner: failed to write %s\n",
                             path.c_str());
                ++failed;
            }
        }
    }

    if (!opts.trace_out_dir.empty())
        failed += write_trace_files(report, opts.trace_out_dir);

    if (!opts.report_path.empty()) {
        // A vanished report artifact must not look like a green run.
        if (driver::write_report_file(report, opts.report_path))
            std::printf("wrote %s\n", opts.report_path.c_str());
        else
            ++failed;
    }

    return failed == 0 ? 0 : 1;
}
