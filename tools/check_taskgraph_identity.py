#!/usr/bin/env python3
"""Declarative-vs-legacy identity gate for migrated task-graph scenarios.

The scenarios that were migrated to the declarative form (tensor arena
plus per-kernel ``reads``/``writes``) keep their hand-written originals
under ``scenarios/legacy/``.  This gate runs simrunner on both forms
and requires the batch reports to match on every cycle stamp, stall
counter, memory counter, event stamp and assertion value — the
end-to-end proof that the task-graph compiler lowers to the exact op
sequence the legacy plumbing spelled out.

Per-pair ignore keys, beyond report_diff.py's wall-time defaults:

* ``file`` — the two forms live at different paths;
* ``events`` — the compiler records an event per cross-stream edge,
  the hand-written form sometimes records extras (e.g. trailing
  records nothing waits on), and recording is cycle-neutral;
* ``assertions`` — the declarative files additionally assert the
  derived stream assignment, so the expect lists differ by design
  (the compared kernel/total metrics cover every asserted value);
* ``ticks``/``skipped_cycles`` — engine main-loop telemetry: the
  legacy no-op waits and trailing records add op-queue entries that
  shift tick boundaries by one without moving any cycle stamp;
* ``stream`` (fork_join_conv_gemm only) — the compiler packs the join
  head onto the conv stream, using two streams where the hand-written
  scenario spends three.  Stream *labels* may differ; cycles may not.

Usage:
    tools/check_taskgraph_identity.py <simrunner> <scenarios_dir>
        [--workdir DIR]

Exit status: 0 on identity (and all runs passing), 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

BASE_IGNORE = ["wall_ms", "ticks_per_sec", "sim_threads", "jobs", "sim",
               "file", "events", "assertions", "ticks", "skipped_cycles"]

# (scenario basename, extra ignore keys)
PAIRS = [
    ("event_dag_mlp3.json", []),
    ("fork_join_conv_gemm.json", ["stream"]),
]


def run_report(simrunner, scenario, report):
    cmd = [simrunner, "--quiet", "--jobs", "1", "--report", report,
           scenario]
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main():
    parser = argparse.ArgumentParser(
        description="declarative-vs-legacy scenario report identity")
    parser.add_argument("simrunner")
    parser.add_argument("scenarios_dir",
                        help="directory holding the declarative scenarios "
                             "and their legacy/ twins")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    failures = 0
    for basename, extra_ignore in PAIRS:
        decl = os.path.join(args.scenarios_dir, basename)
        legacy = os.path.join(args.scenarios_dir, "legacy", basename)
        stem = os.path.splitext(basename)[0]
        decl_report = os.path.join(args.workdir,
                                   "report_decl_{}.json".format(stem))
        legacy_report = os.path.join(args.workdir,
                                     "report_legacy_{}.json".format(stem))

        rc_decl = run_report(args.simrunner, decl, decl_report)
        rc_legacy = run_report(args.simrunner, legacy, legacy_report)
        rc_diff = subprocess.call(
            [sys.executable, os.path.join(HERE, "report_diff.py"),
             decl_report, legacy_report,
             "--ignore"] + BASE_IGNORE + extra_ignore)

        if rc_diff != 0:
            print("check_taskgraph_identity: FAILED — {} diverged from "
                  "its legacy twin".format(basename))
            failures += 1
        if rc_decl != 0 or rc_legacy != 0:
            print("check_taskgraph_identity: {} scenario failures "
                  "(declarative rc={}, legacy rc={})".format(
                      basename, rc_decl, rc_legacy))
            failures += 1

    if failures:
        return 1
    print("check_taskgraph_identity: OK — {} migrated scenario(s) "
          "bit-identical to their hand-written forms".format(len(PAIRS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
