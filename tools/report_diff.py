#!/usr/bin/env python3
"""Diff two simrunner batch reports, ignoring wall-time fields.

The simulator is deterministic: two runs of the same scenario suite
must produce byte-identical reports except for host-speed telemetry.
This is the comparator behind the serial-vs-threaded CI leg — a run
with ``--sim-threads N`` must match a ``--sim-threads 1`` run on every
cycle count, stall counter, memory counter and assertion value.

Ignored keys (wall-clock shaped, legitimately run-dependent):
``wall_ms``, ``ticks_per_sec``, ``sim_threads``, ``jobs``, and each
result's ``sim`` telemetry block wholesale.

Usage:
    tools/report_diff.py <a.json> <b.json> [--ignore key ...]

Exit status: 0 when the reports match modulo ignored keys, 1 otherwise.
"""

import argparse
import json
import sys

DEFAULT_IGNORE = ("wall_ms", "ticks_per_sec", "sim_threads", "jobs", "sim")


def strip(node, ignore):
    """Recursively remove ignored keys from a parsed JSON tree."""
    if isinstance(node, dict):
        return {k: strip(v, ignore) for k, v in node.items()
                if k not in ignore}
    if isinstance(node, list):
        return [strip(v, ignore) for v in node]
    return node


def diff(a, b, path="$"):
    """Yield human-readable difference lines between two JSON trees."""
    if type(a) is not type(b):
        yield "{}: type {} vs {}".format(
            path, type(a).__name__, type(b).__name__)
        return
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            sub = "{}.{}".format(path, k)
            if k not in a:
                yield "{}: only in second report".format(sub)
            elif k not in b:
                yield "{}: only in first report".format(sub)
            else:
                yield from diff(a[k], b[k], sub)
    elif isinstance(a, list):
        if len(a) != len(b):
            yield "{}: length {} vs {}".format(path, len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff(x, y, "{}[{}]".format(path, i))
    elif a != b:
        yield "{}: {} vs {}".format(path, a, b)


def main():
    parser = argparse.ArgumentParser(
        description="diff two batch reports modulo wall-time fields")
    parser.add_argument("report_a")
    parser.add_argument("report_b")
    parser.add_argument("--ignore", nargs="*", default=list(DEFAULT_IGNORE),
                        help="keys to strip everywhere before comparing")
    args = parser.parse_args()

    with open(args.report_a) as f:
        a = strip(json.load(f), set(args.ignore))
    with open(args.report_b) as f:
        b = strip(json.load(f), set(args.ignore))

    differences = list(diff(a, b))
    if differences:
        print("report_diff: {} and {} differ:".format(
            args.report_a, args.report_b))
        for line in differences[:50]:
            print("  ", line)
        if len(differences) > 50:
            print("   ... and {} more".format(len(differences) - 50))
        return 1
    print("report_diff: reports identical modulo {}".format(
        ", ".join(sorted(args.ignore))))
    return 0


if __name__ == "__main__":
    sys.exit(main())
