#!/usr/bin/env python3
"""Fault-injection determinism gate.

Runs simrunner over the fault-injected scenarios twice — fully serial
(``--jobs 1 --sim-threads 1``) and parallel (``--jobs J --sim-threads
N``) — and requires byte-identical batch reports modulo wall-time
fields (report_diff.py).  This is the end-to-end proof that injected
faults are deterministic: disabled/degraded SM picks, kernel
hang/slowdown rule matches, ECC-retry decisions, serving-loop kills,
retries, sheds and deadline misses must all land on the same cycles
however the batch is parallelized.

By default the gate selects scenarios whose report carries a fault or
resilience block (filename filter ``--filter``, default matches the
committed fault scenarios).  It additionally asserts that the serial
report actually exercised fault injection — a filter that matches no
faulty scenario would otherwise pass vacuously.

Usage:
    tools/check_fault_identity.py <simrunner> <scenarios...>
        [--threads 4] [--jobs 2] [--filter SUBSTR] [--workdir DIR]

Exit status: 0 on identity (and both runs passing), 1 otherwise.
"""

import argparse
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def run_leg(simrunner, inputs, jobs, threads, report):
    cmd = [simrunner, "--quiet", "--jobs", str(jobs),
           "--sim-threads", str(threads), "--report", report] + inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def expand_filtered(inputs, substr):
    out = []
    for inp in inputs:
        if os.path.isdir(inp):
            for name in sorted(os.listdir(inp)):
                if name.endswith(".json") and substr in name:
                    out.append(os.path.join(inp, name))
        elif substr in os.path.basename(inp):
            out.append(inp)
    return out


def count_faulty(report_path):
    """Scenario results carrying a fault or serve-resilience block."""
    with open(report_path) as f:
        doc = json.load(f)
    n = 0
    for result in doc.get("results", []):
        serve = result.get("serve") or {}
        if "fault" in result or "resilience" in serve:
            n += 1
    return n


def main():
    parser = argparse.ArgumentParser(
        description="fault-injected report identity, serial vs parallel")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only scenarios whose filename contains "
                             "SUBSTR")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    inputs = args.inputs
    if args.filter is not None:
        inputs = expand_filtered(inputs, args.filter)
        if not inputs:
            print("check_fault_identity: no scenarios match "
                  "--filter {!r}".format(args.filter))
            return 1

    os.makedirs(args.workdir, exist_ok=True)
    serial = os.path.join(args.workdir, "report_serial.json")
    parallel = os.path.join(
        args.workdir, "report_j{}t{}.json".format(args.jobs, args.threads))

    rc_serial = run_leg(args.simrunner, inputs, 1, 1, serial)
    rc_parallel = run_leg(args.simrunner, inputs, args.jobs, args.threads,
                          parallel)
    rc_diff = subprocess.call(
        [sys.executable, os.path.join(HERE, "report_diff.py"), serial,
         parallel])

    if rc_diff != 0:
        print("check_fault_identity: FAILED — jobs={} sim_threads={} "
              "diverged from serial".format(args.jobs, args.threads))
        return 1
    if rc_serial != 0 or rc_parallel != 0:
        print("check_fault_identity: scenario failures (serial rc={}, "
              "parallel rc={})".format(rc_serial, rc_parallel))
        return 1
    faulty = count_faulty(serial)
    if faulty == 0:
        print("check_fault_identity: FAILED — no scenario exercised "
              "fault injection or resilience (vacuous gate)")
        return 1
    print("check_fault_identity: OK — {} fault/resilience scenario(s) "
          "bit-identical across jobs={} x sim_threads={}".format(
              faulty, args.jobs, args.threads))
    return 0


if __name__ == "__main__":
    sys.exit(main())
