#!/usr/bin/env python3
"""Accuracy gate for sampled-SM fast-forward (sim.detailed_sms).

Runs simrunner twice over the same scenario set — full detail and
``--detailed-sms K`` — and checks, per scenario:

  * total.cycles relative error is within ``--bound`` (the sampled
    mode's declared accuracy envelope), and
  * total.instructions and total.hmma_instructions match *exactly*
    (shadow-CTA extrapolation is exact for homogeneous grids, which is
    all the curated suite launches).

The sampled leg's own scenario assertions are advisory only: expect
bands are tuned for full-detail cycle counts, and the error bound here
is the contract the sampled mode actually makes.  A sampled scenario
that fails to *run* (error string in the report) still fails the gate.

Usage:
    tools/check_sampled_error.py <simrunner> <scenarios...>
        [--detailed-sms 2] [--bound 0.25] [--workdir DIR]

Exit status: 0 when every scenario is within bounds, 1 otherwise.
"""

import argparse
import json
import os
import subprocess
import sys


def run_leg(simrunner, inputs, report, detailed_sms):
    cmd = [simrunner, "--quiet", "--jobs", "1", "--report", report]
    if detailed_sms is not None:
        cmd += ["--detailed-sms", str(detailed_sms)]
    cmd += inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def by_name(report_path):
    with open(report_path) as f:
        doc = json.load(f)
    return {r["name"]: r for r in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser(
        description="sampled-SM fast-forward accuracy vs full detail")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--detailed-sms", type=int, default=2)
    parser.add_argument("--bound", type=float, default=0.25,
                        help="max |sampled - full| / full on total.cycles")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    full_path = os.path.join(args.workdir, "report_full.json")
    sampled_path = os.path.join(
        args.workdir, "report_sampled{}.json".format(args.detailed_sms))

    rc_full = run_leg(args.simrunner, args.inputs, full_path, None)
    run_leg(args.simrunner, args.inputs, sampled_path, args.detailed_sms)
    if rc_full != 0:
        print("check_sampled_error: full-detail leg failed (rc={})"
              .format(rc_full))
        return 1

    full = by_name(full_path)
    sampled = by_name(sampled_path)
    failures = 0
    for name, f in sorted(full.items()):
        s = sampled.get(name)
        if s is None:
            print("FAIL {}: missing from the sampled report".format(name))
            failures += 1
            continue
        if s.get("error"):
            print("FAIL {}: sampled run errored: {}".format(
                name, s["error"]))
            failures += 1
            continue
        fc = f["total"]["cycles"]
        sc = s["total"]["cycles"]
        err = abs(sc - fc) / fc if fc else 0.0
        ok = err <= args.bound
        print("{} {}: cycles full={} sampled={} rel_err={:.3f} "
              "(bound {:.2f})".format("ok  " if ok else "FAIL", name, fc,
                                      sc, err, args.bound))
        if not ok:
            failures += 1
        for counter in ("instructions", "hmma_instructions"):
            if f["total"][counter] != s["total"][counter]:
                print("FAIL {}: total.{} full={} sampled={} (extrapolation "
                      "must be exact for homogeneous grids)".format(
                          name, counter, f["total"][counter],
                          s["total"][counter]))
                failures += 1

    if failures:
        print("check_sampled_error: FAILED — {} check(s) out of bounds"
              .format(failures))
        return 1
    print("check_sampled_error: OK — detailed_sms={} within {:.0%} of "
          "full-detail cycles, counters exact".format(
              args.detailed_sms, args.bound))
    return 0


if __name__ == "__main__":
    sys.exit(main())
