#!/usr/bin/env python3
"""Serial-vs-threaded identity gate for the scenario suite.

Runs simrunner twice over the same scenario set — ``--sim-threads 1``
and ``--sim-threads N`` — and requires the two batch reports to be
identical modulo wall-time fields (see report_diff.py).  This is the
end-to-end proof that the parallel simulation core is deterministic:
every cycle stamp, stall counter, memory counter, event stamp and
assertion value must match across thread counts, for every scenario in
the suite.

Usage:
    tools/check_parallel_identity.py <simrunner> <scenarios...>
        [--threads 4] [--workdir DIR]

Exit status: 0 on identity (and both runs passing), 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def run_leg(simrunner, inputs, threads, report):
    cmd = [simrunner, "--quiet", "--jobs", "1",
           "--sim-threads", str(threads), "--report", report] + inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main():
    parser = argparse.ArgumentParser(
        description="serial-vs-threaded scenario report identity")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    serial = os.path.join(args.workdir, "report_serial.json")
    threaded = os.path.join(args.workdir,
                            "report_t{}.json".format(args.threads))

    rc_serial = run_leg(args.simrunner, args.inputs, 1, serial)
    rc_threaded = run_leg(args.simrunner, args.inputs, args.threads,
                          threaded)
    # Scenario failures fail the gate too, but only after the diff ran:
    # an identity break plus a red scenario should report both.
    rc_diff = subprocess.call(
        [sys.executable, os.path.join(HERE, "report_diff.py"), serial,
         threaded])

    if rc_diff != 0:
        print("check_parallel_identity: FAILED — sim_threads={} diverged "
              "from serial".format(args.threads))
        return 1
    if rc_serial != 0 or rc_threaded != 0:
        print("check_parallel_identity: scenario failures (serial rc={}, "
              "threaded rc={})".format(rc_serial, rc_threaded))
        return 1
    print("check_parallel_identity: OK — sim_threads={} bit-identical to "
          "serial across the suite".format(args.threads))
    return 0


if __name__ == "__main__":
    sys.exit(main())
