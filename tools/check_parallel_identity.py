#!/usr/bin/env python3
"""Serial-vs-threaded identity gate for the scenario suite.

Runs simrunner twice over the same scenario set — ``--sim-threads 1``
and ``--sim-threads N`` — and requires the two batch reports to be
identical modulo wall-time fields (see report_diff.py).  This is the
end-to-end proof that the parallel simulation core is deterministic:
every cycle stamp, stall counter, memory counter, event stamp and
assertion value must match across thread counts, for every scenario in
the suite.

The parallel leg can additionally raise ``--jobs`` (process-level
scenario parallelism) so the gate covers the jobs x sim-threads grid,
and ``--filter`` narrows a directory input to scenarios whose filename
contains a substring (e.g. ``--filter serving_``).

Usage:
    tools/check_parallel_identity.py <simrunner> <scenarios...>
        [--threads 4] [--jobs 1] [--filter SUBSTR] [--workdir DIR]

Exit status: 0 on identity (and both runs passing), 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def run_leg(simrunner, inputs, jobs, threads, report):
    cmd = [simrunner, "--quiet", "--jobs", str(jobs),
           "--sim-threads", str(threads), "--report", report] + inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def expand_filtered(inputs, substr):
    """Directories become their matching .json files; explicit files
    pass through the filter too so a stale name fails loudly."""
    out = []
    for inp in inputs:
        if os.path.isdir(inp):
            for name in sorted(os.listdir(inp)):
                if name.endswith(".json") and substr in name:
                    out.append(os.path.join(inp, name))
        elif substr in os.path.basename(inp):
            out.append(inp)
    return out


def main():
    parser = argparse.ArgumentParser(
        description="serial-vs-threaded scenario report identity")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="scenario files or directories")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-level --jobs for the parallel leg "
                             "(the serial leg always uses 1)")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only scenarios whose filename contains "
                             "SUBSTR")
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    inputs = args.inputs
    if args.filter is not None:
        inputs = expand_filtered(inputs, args.filter)
        if not inputs:
            print("check_parallel_identity: no scenarios match "
                  "--filter {!r}".format(args.filter))
            return 1

    os.makedirs(args.workdir, exist_ok=True)
    serial = os.path.join(args.workdir, "report_serial.json")
    threaded = os.path.join(args.workdir,
                            "report_t{}.json".format(args.threads))

    rc_serial = run_leg(args.simrunner, inputs, 1, 1, serial)
    rc_threaded = run_leg(args.simrunner, inputs, args.jobs, args.threads,
                          threaded)
    # Scenario failures fail the gate too, but only after the diff ran:
    # an identity break plus a red scenario should report both.
    rc_diff = subprocess.call(
        [sys.executable, os.path.join(HERE, "report_diff.py"), serial,
         threaded])

    if rc_diff != 0:
        print("check_parallel_identity: FAILED — sim_threads={} diverged "
              "from serial".format(args.threads))
        return 1
    if rc_serial != 0 or rc_threaded != 0:
        print("check_parallel_identity: scenario failures (serial rc={}, "
              "threaded rc={})".format(rc_serial, rc_threaded))
        return 1
    print("check_parallel_identity: OK — sim_threads={} bit-identical to "
          "serial across the suite".format(args.threads))
    return 0


if __name__ == "__main__":
    sys.exit(main())
