#!/usr/bin/env python3
"""Forked-vs-cold identity gate for sweep scenarios.

Runs simrunner twice over the same sweep scenario set — once forking
each point from the shared-prefix snapshot (the default) and once with
``--cold-sweep`` (every point re-simulated from cycle 0) — and
requires the two batch reports to be identical modulo wall-time fields
(see report_diff.py).  This is the end-to-end proof of the snapshot
contract: restoring a captured run and extending it produces exactly
the statistics of the uncaptured simulation, for every point of every
sweep.

Usage:
    tools/check_fork_identity.py <simrunner> <scenarios...>
        [--threads N] [--workdir DIR]

``--threads`` applies the same --sim-threads to both legs, so the gate
can double as a sampled run of the parallel core over the sweep path.

Exit status: 0 on identity (and both runs passing), 1 otherwise.
"""

import argparse
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def run_leg(simrunner, inputs, report, threads, cold):
    cmd = [simrunner, "--quiet", "--jobs", "1",
           "--sim-threads", str(threads), "--report", report]
    if cold:
        cmd.append("--cold-sweep")
    cmd += inputs
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main():
    parser = argparse.ArgumentParser(
        description="forked-vs-cold sweep report identity")
    parser.add_argument("simrunner")
    parser.add_argument("inputs", nargs="+",
                        help="sweep scenario files or directories")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--workdir", default=".")
    args = parser.parse_args()

    forked = os.path.join(args.workdir, "report_forked.json")
    cold = os.path.join(args.workdir, "report_cold.json")

    rc_forked = run_leg(args.simrunner, args.inputs, forked, args.threads,
                        cold=False)
    rc_cold = run_leg(args.simrunner, args.inputs, cold, args.threads,
                      cold=True)
    # Scenario failures fail the gate too, but only after the diff ran:
    # an identity break plus a red scenario should report both.
    rc_diff = subprocess.call(
        [sys.executable, os.path.join(HERE, "report_diff.py"), forked,
         cold])

    if rc_diff != 0:
        print("check_fork_identity: FAILED — forked sweep points diverged "
              "from cold reruns")
        return 1
    if rc_forked != 0 or rc_cold != 0:
        print("check_fork_identity: scenario failures (forked rc={}, "
              "cold rc={})".format(rc_forked, rc_cold))
        return 1
    print("check_fork_identity: OK — snapshot forks bit-identical to cold "
          "reruns across the suite")
    return 0


if __name__ == "__main__":
    sys.exit(main())
