#pragma once
/**
 * @file
 * Shared helpers for the per-figure benchmark binaries, including the
 * machine-readable JSON emitter the perf-trajectory tooling consumes.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_config.h"
#include "common/table.h"
#include "hwref/titanv_model.h"
#include "sim/gpu.h"

namespace tcsim {
namespace bench {

/**
 * Collects named scalar metrics and writes them as
 * `BENCH_<name>.json` in the working directory, so bench binaries
 * leave a machine-readable record next to their human-readable tables:
 *
 *   {"bench": "fig14a", "metrics": {"rel_stddev_pct": 3.21, ...}}
 *
 * Written on destruction (or an explicit write()); emission failures
 * only warn, so benches stay usable in read-only directories.
 */
class JsonEmitter
{
  public:
    explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

    JsonEmitter(const JsonEmitter&) = delete;
    JsonEmitter& operator=(const JsonEmitter&) = delete;

    ~JsonEmitter() { write(); }

    void add(const std::string& key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    void write()
    {
        if (written_)
            return;
        written_ = true;
        std::string path = "BENCH_" + name_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\"bench\": \"%s\", \"metrics\": {", name_.c_str());
        for (size_t i = 0; i < metrics_.size(); ++i) {
            std::fprintf(f, "%s\"%s\": ", i ? ", " : "",
                         metrics_[i].first.c_str());
            // JSON has no nan/inf literals; degrade to null.
            if (std::isfinite(metrics_[i].second))
                std::fprintf(f, "%.10g", metrics_[i].second);
            else
                std::fprintf(f, "null");
        }
        std::fprintf(f, "}}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
    bool written_ = false;
};

/** Print a titled section separator. */
inline void
section(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_table(const TextTable& t)
{
    std::printf("%s", t.render().c_str());
}

/** Full-size Titan V for throughput experiments. */
inline GpuConfig
titan_v()
{
    return titan_v_config();
}

/** Reduced-SM Titan V for latency experiments (identical per-SM
 *  behaviour, faster simulation). */
inline GpuConfig
titan_v_slice(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

}  // namespace bench
}  // namespace tcsim
