#pragma once
/**
 * @file
 * Shared helpers for the per-figure benchmark binaries, including the
 * machine-readable JSON emitter the perf-trajectory tooling consumes.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_config.h"
#include "common/table.h"
#include "driver/json.h"
#include "hwref/titanv_model.h"
#include "sim/gpu.h"

namespace tcsim {
namespace bench {

/**
 * Collects named scalar metrics and writes them as
 * `BENCH_<name>.json` in the working directory, so bench binaries
 * leave a machine-readable record next to their human-readable tables:
 *
 *   {"bench": "fig14a", "metrics": {"rel_stddev_pct": 3.21, ...}}
 *
 * Written on destruction (or an explicit write()); emission failures
 * only warn, so benches stay usable in read-only directories.
 *
 * Strings are JSON-escaped and the file is written to a temp path and
 * renamed into place, so a partial failure never clobbers an existing
 * snapshot with a truncated document (the bench-regression gate in CI
 * parses these files).
 */
class JsonEmitter
{
  public:
    explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

    JsonEmitter(const JsonEmitter&) = delete;
    JsonEmitter& operator=(const JsonEmitter&) = delete;

    ~JsonEmitter() { write(); }

    void add(const std::string& key, double value)
    {
        metrics_.emplace_back(key, value);
    }

    void write()
    {
        if (written_)
            return;
        written_ = true;
        std::string path = "BENCH_" + name_ + ".json";
        // The driver's writer handles escaping, the nan/inf -> null
        // degradation, and the temp-file + rename protocol, keeping
        // snapshots round-trippable through the same parser the
        // scenario driver and bench_compare.py rely on.
        driver::JsonValue doc = driver::JsonValue::object();
        doc.set("bench", name_);
        driver::JsonValue metrics = driver::JsonValue::object();
        for (const auto& [key, value] : metrics_)
            metrics.set(key, value);
        doc.set("metrics", std::move(metrics));
        if (!driver::json_write_file_atomic(doc, path))
            std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        else
            std::printf("wrote %s\n", path.c_str());
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> metrics_;
    bool written_ = false;
};

/** Wall-clock stopwatch (steady clock, starts at construction). */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds elapsed since construction. */
    double ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Print a titled section separator. */
inline void
section(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_table(const TextTable& t)
{
    std::printf("%s", t.render().c_str());
}

/** Full-size Titan V for throughput experiments. */
inline GpuConfig
titan_v()
{
    return titan_v_config();
}

/** Reduced-SM Titan V for latency experiments (identical per-SM
 *  behaviour, faster simulation). */
inline GpuConfig
titan_v_slice(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

}  // namespace bench
}  // namespace tcsim
