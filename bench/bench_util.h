#pragma once
/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 */

#include <cstdio>
#include <string>

#include "arch/gpu_config.h"
#include "common/table.h"
#include "hwref/titanv_model.h"
#include "sim/gpu.h"

namespace tcsim {
namespace bench {

/** Print a titled section separator. */
inline void
section(const std::string& title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
print_table(const TextTable& t)
{
    std::printf("%s", t.render().c_str());
}

/** Full-size Titan V for throughput experiments. */
inline GpuConfig
titan_v()
{
    return titan_v_config();
}

/** Reduced-SM Titan V for latency experiments (identical per-SM
 *  behaviour, faster simulation). */
inline GpuConfig
titan_v_slice(int sms)
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = sms;
    return cfg;
}

}  // namespace bench
}  // namespace tcsim
