/**
 * @file
 * Experiment E13 (Fig 15): latency distribution of wmma.load,
 * wmma.mma and wmma.store during a shared-memory WMMA GEMM on a
 * 1024x1024 problem.  The paper's minimum latencies are 125 (load),
 * 70 (mma) and 120 (store) cycles.
 */

#include <cstdio>

#include "bench_util.h"
#include "hwref/paper_tables.h"
#include "kernels/gemm_kernels.h"

using namespace tcsim;

namespace {

void
print_dist(const char* name, const Histogram& h, int paper_min)
{
    std::printf("%-14s samples=%-7zu min=%-5.0f median=%-5.0f p90=%-5.0f "
                "p99=%-6.0f max=%-6.0f (paper min: %d)\n",
                name, h.count(), h.min(), h.median(), h.percentile(90),
                h.percentile(99), h.max(), paper_min);
    // Coarse histogram: 8 buckets between min and p99.
    double lo = h.min(), hi = h.percentile(99);
    if (hi <= lo)
        hi = lo + 1;
    std::vector<int> buckets(8, 0);
    for (double v : h.samples()) {
        int b = static_cast<int>((v - lo) / (hi - lo) * 8);
        buckets[static_cast<size_t>(std::clamp(b, 0, 7))]++;
    }
    int peak = *std::max_element(buckets.begin(), buckets.end());
    std::printf("  [%5.0f..%5.0f] ", lo, hi);
    for (int b : buckets) {
        int bar = peak ? (b * 8) / peak : 0;
        std::printf("%c", " .:-=+*#"[std::clamp(bar, 0, 7)]);
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("Fig 15: WMMA instruction latency distribution "
                "(1024x1024 GEMM using shared memory)\n\n");

    const int size = 1024;
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = size;
    cfg.functional = false;
    GemmProblem<float> prob(size, size, size, cfg.a_layout, cfg.b_layout);
    Gpu gpu(bench::titan_v());
    GemmBuffers buf = prob.upload(&gpu.mem());
    LaunchStats s = gpu.launch(make_wmma_gemm_shared(cfg, buf));

    // The kernel's wmma.load.a/b read from shared memory; wmma.load.c
    // and wmma.store.d go to global memory, as in the paper's kernel.
    Histogram loads("load");
    for (MacroClass mc : {MacroClass::kWmmaLoadA, MacroClass::kWmmaLoadB,
                          MacroClass::kWmmaLoadC}) {
        auto it = s.macro_latency.find(mc);
        if (it == s.macro_latency.end())
            continue;
        for (double v : it->second.samples())
            loads.add(v);
    }
    print_dist("wmma.load", loads, hwref::kMinWmmaLoadLatency);
    print_dist("wmma.mma", s.macro_latency.at(MacroClass::kWmmaMma),
               hwref::kMinWmmaMmaLatency);
    print_dist("wmma.store", s.macro_latency.at(MacroClass::kWmmaStoreD),
               hwref::kMinWmmaStoreLatency);

    std::printf("\nkernel: %llu cycles, IPC %.1f\n",
                static_cast<unsigned long long>(s.cycles), s.ipc);
    std::printf("(occasional high latencies come from scheduling and "
                "memory traffic, as in the paper)\n");

    bench::JsonEmitter json("fig15");
    json.add("cycles", static_cast<double>(s.cycles));
    json.add("ipc", s.ipc);
    json.add("wmma_load_median", loads.median());
    json.add("wmma_mma_median",
             s.macro_latency.at(MacroClass::kWmmaMma).median());
    json.add("wmma_store_median",
             s.macro_latency.at(MacroClass::kWmmaStoreD).median());
    return 0;
}
