/**
 * @file
 * Experiment E2 (Fig 8): prints the Turing operand -> thread mappings
 * for every supported tile shape and precision, demonstrating the
 * single-load distribution and round-robin threadgroup assignment.
 */

#include <cstdio>

#include "bench_util.h"
#include "tensor/fragment.h"

using namespace tcsim;

namespace {

void
print_map(TileShape shape, TcMode mode)
{
    bench::section("Turing " + shape.str() + " " + tc_mode_name(mode));
    for (WmmaOperand op :
         {WmmaOperand::kA, WmmaOperand::kB, WmmaOperand::kC}) {
        FragmentMap map =
            turing_fragment_map(op, shape, mode, Layout::kRowMajor);
        std::printf("%s: %d elems/thread, %d regs/thread, owners:\n",
                    operand_name(op), map.elems_per_thread(),
                    map.regs_per_thread());
        int rows = shape.rows(op);
        int cols = shape.cols(op);
        // Print threadgroup owner of the first element of each
        // row/column to show the round-robin pattern compactly.
        if (op == WmmaOperand::kB) {
            std::printf("  col -> tg:");
            for (int c = 0; c < cols; ++c)
                std::printf(" %d", threadgroup_of_lane(
                                       map.locate(0, c)[0].lane));
        } else {
            std::printf("  row -> tg:");
            for (int r = 0; r < rows; ++r)
                std::printf(" %d", threadgroup_of_lane(
                                       map.locate(r, 0)[0].lane));
        }
        std::printf("\n");
    }
}

}  // namespace

int
main()
{
    std::printf("Fig 8: distribution of operand matrix elements to threads "
                "(RTX 2080 / Turing)\n");
    std::printf("Every element is loaded exactly once; consecutive "
                "threadgroups own consecutive rows/columns.\n");

    for (TileShape shape : {kShape16x16x16, kShape32x8x16, kShape8x32x16})
        for (TcMode mode : {TcMode::kFp16, TcMode::kInt8})
            print_map(shape, mode);
    print_map(kShape8x8x32, TcMode::kInt4);
    return 0;
}
