/**
 * @file
 * Experiment E8 (Fig 11): the subtiles accessed by each HMMA set on
 * Turing, for every tile configuration and precision mode.
 */

#include <cstdio>

#include "bench_util.h"
#include "sass/hmma_decomposer.h"

using namespace tcsim;

namespace {

void
print_shape(TileShape shape, TcMode mode)
{
    bench::section("Turing " + shape.str() + " " + tc_mode_name(mode));
    for (int set = 0; set < turing_num_sets(mode); ++set) {
        auto sc = turing_set_compute(mode, shape, set);
        std::printf("SET%d: A[%2d:%2d,%2d:%2d] (%dx%d) x "
                    "B[%2d:%2d,%2d:%2d] (%dx%d) -> C[%2d:%2d,%2d:%2d]\n",
                    set + 1, sc.a.row0, sc.a.row1, sc.a.col0, sc.a.col1,
                    sc.a.rows(), sc.a.cols(), sc.b.row0, sc.b.row1, sc.b.col0,
                    sc.b.col1, sc.b.rows(), sc.b.cols(), sc.cd.row0,
                    sc.cd.row1, sc.cd.col0, sc.cd.col1);
    }
}

}  // namespace

int
main()
{
    std::printf("Fig 11: HMMA set analysis for Turing (RTX 2080)\n");
    for (TileShape shape : {kShape16x16x16, kShape32x8x16, kShape8x32x16}) {
        print_shape(shape, TcMode::kMixed);
        print_shape(shape, TcMode::kInt8);
    }
    print_shape(kShape8x8x32, TcMode::kInt4);

    std::printf("\nPatterns reproduced from the paper:\n"
                " - FP16/mixed: one 8x8 subtile against a 16x8 or 8x16 "
                "subtile.\n"
                " - 8-bit: 8x16 subtile of A against 16x8 subtile of B.\n"
                " - 4-bit: a single HMMA covers the whole 8x8x32 tile.\n");
    return 0;
}
