/**
 * @file
 * Experiment E3 (Fig 9): cumulative clock cycles of the HMMA groups a
 * Volta wmma.mma decomposes into.
 *
 * Three views:
 *  (a) the tensor-core timing model's per-HMMA completion offsets
 *      against the paper's measured cumulative clocks;
 *  (b) the end-to-end wmma.mma latency observed in a full SM
 *      simulation;
 *  (c) the paper's NOP-patching methodology (Fig 5) replayed on the
 *      simulator: all HMMAs but one replaced by NOPs.
 */

#include <cstdio>

#include "bench_util.h"
#include "kernels/gemm_kernels.h"
#include "sass/hmma_timing.h"
#include "sass/microbench.h"
#include "sim/tc/tensor_core_unit.h"

using namespace tcsim;

namespace {

void
cadence_table(TcMode mode)
{
    bench::section(std::string("Fig 9 cumulative clocks, ") +
                   tc_mode_name(mode) + " mode");
    auto paper = volta_cumulative_cycles(mode);
    const HmmaTiming& t = hmma_timing(Arch::kVolta, mode, kShape16x16x16);

    // Drive the TC unit at its issue cadence and record completions.
    TensorCoreUnit tc(Arch::kVolta);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kVolta, mode, kShape16x16x16, regs,
                                    Layout::kRowMajor, Layout::kColMajor);
    TextTable tbl;
    tbl.set_header({"hmma", "set", "step", "paper_cum_clk", "model_cum_clk"});
    uint64_t now = 0;
    for (size_t i = 0; i < group.size(); ++i) {
        auto done = tc.try_issue(0, group[i], now);
        tbl.add_row({std::to_string(i + 1),
                     std::to_string(int(group[i].hmma.set)),
                     std::to_string(int(group[i].hmma.step)),
                     std::to_string(paper[i]),
                     std::to_string(static_cast<long long>(*done))});
        now += static_cast<uint64_t>(t.issue_interval);
    }
    bench::print_table(tbl);
}

}  // namespace

int
main()
{
    cadence_table(TcMode::kMixed);
    cadence_table(TcMode::kFp16);

    bench::section("Full-simulation wmma.mma latency (issue -> last "
                   "writeback)");
    TextTable tbl;
    tbl.set_header({"mode", "paper_total_clk", "sim_latency"});
    for (TcMode mode : {TcMode::kMixed, TcMode::kFp16}) {
        Gpu gpu(bench::titan_v_slice(1));
        LaunchStats s = gpu.launch(
            make_hmma_stress(Arch::kVolta, mode, 1, 1, 1, 1));
        tbl.add_row({tc_mode_name(mode),
                     std::to_string(volta_cumulative_cycles(mode).back()),
                     fmt_double(s.macro_latency.at(MacroClass::kWmmaMma)
                                    .median(),
                                0)});
    }
    bench::print_table(tbl);

    bench::section("NOP-patching methodology (Fig 5) on the simulator");
    std::printf("keeping only the k-th HMMA of a mixed-precision group:\n");
    TextTable np;
    np.set_header({"kept_hmma", "sim_cycles"});
    for (size_t keep : {size_t{0}, size_t{3}, size_t{8}, size_t{15}}) {
        KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1, 1,
                                         1, 1);
        auto base_trace = kd.trace;
        kd.trace = [base_trace, keep](int c, int w) {
            WarpProgram prog = base_trace(c, w);
            patch_nops_except(&prog, keep);
            return prog;
        };
        Gpu gpu(bench::titan_v_slice(1));
        LaunchStats s = gpu.launch(kd);
        np.add_row({std::to_string(keep), std::to_string(s.cycles)});
    }
    bench::print_table(np);
    std::printf("(a lone HMMA costs the same regardless of position, as "
                "the paper observed)\n");
    return 0;
}
