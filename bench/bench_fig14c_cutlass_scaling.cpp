/**
 * @file
 * Experiment E12 (Fig 14c): CUTLASS GEMM IPC versus matrix size,
 * simulator against the Titan V stand-in.  The paper observes the
 * simulator reading slightly high at the largest sizes.
 */

#include <cstdio>

#include "bench_util.h"
#include "cutlass/gemm.h"

using namespace tcsim;

int
main()
{
    std::printf("Fig 14c: CUTLASS GEMM IPC vs square matrix size\n\n");
    hwref::TitanVModel hw(bench::titan_v());

    TextTable tbl;
    tbl.set_header({"size", "hw_ipc", "sim_ipc", "sim/hw"});
    for (int size : {128, 256, 512, 768, 1024, 2048}) {
        cutlass::GemmTemplate t;
        // Scale the threadblock tile down for the smallest size.
        t.block_m = t.block_n = size >= 256 ? 128 : 64;
        t.block_k = 32;
        t.warp_m = 32;
        t.warp_n = size >= 256 ? 64 : 32;
        t.double_buffer = true;
        if (size % t.block_k)
            continue;

        Gpu gpu(bench::titan_v());
        GemmProblem<float> prob(size, size, size, t.a_layout, t.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        LaunchStats s =
            gpu.launch(cutlass::make_gemm(t, size, size, size, buf, false));

        hwref::GemmWorkload w;
        w.family = hwref::KernelFamily::kCutlass;
        w.m = w.n = w.k = size;
        w.block_m = t.block_m;
        w.block_n = t.block_n;
        w.block_k = t.block_k;
        w.warp_m = t.warp_m;
        w.warp_n = t.warp_n;
        w.warps_per_cta = t.warps_per_cta();
        w.double_buffer = t.double_buffer;
        hwref::HwPrediction p = hw.predict(w);
        double hw_ipc = static_cast<double>(s.instructions) / p.cycles;

        tbl.add_row({std::to_string(size), fmt_double(hw_ipc, 1),
                     fmt_double(s.ipc, 1), fmt_double(s.ipc / hw_ipc, 3)});
    }
    bench::print_table(tbl);
    std::printf("\n(paper: GPGPU-Sim tends to read higher than hardware as "
                "matrix size grows)\n");
    return 0;
}
