/**
 * @file
 * Replay-cache benchmark and accuracy gate: the committed MLP-6
 * continuous-batching trace (fixed-seed Poisson, 24 requests, mean
 * inter-arrival 20us, max_batch 8, in_flight 2 — the same workload as
 * bench_serving's continuous leg) run three ways:
 *
 *  - detailed: replay off, the reference;
 *  - record:   full detail + profile recording into a shared
 *              ReplayCache.  Recording must not perturb execution, so
 *              every integer counter and latency percentile is
 *              compared exactly against the detailed leg;
 *  - replay:   the warmed cache; repeated layer kernels complete as
 *              coarse timeline events.
 *
 * Hard gates (always on):
 *  - record leg integer-identical to detailed (counters + percentiles);
 *  - replay leg instruction/HMMA totals exactly equal to detailed
 *    (profile counters are shape-deterministic);
 *  - replay leg serve.* latency percentiles (p50/p95/p99/p99.9 and
 *    the configurable p90) within TCSIM_REPLAY_ERR (default 2%) of
 *    detailed;
 *  - the replay leg actually replays (hits > 0).
 *
 * Wall-time gate: the replay leg must be >= TCSIM_REPLAY_MIN times
 * faster than detailed (default 3.0; set 0 to disable on noisy CI
 * hosts — the emitted wall metrics still chart the trajectory).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "driver/scenario.h"
#include "model/model_graph.h"
#include "serve/serving_engine.h"
#include "sim/replay/replay_cache.h"

using namespace tcsim;
using namespace tcsim::serve;

namespace {

model::ModelGraph
mlp6()
{
    model::ModelGraph g;
    g.name = "mlp6";
    g.tokens_per_request = 16;
    g.input_features = 256;
    for (int i = 1; i <= 6; ++i) {
        model::LayerSpec l;
        l.kind = model::LayerKind::kLinear;
        l.name = "fc" + std::to_string(i);
        l.out_features = 256;
        g.layers.push_back(l);
    }
    return g;
}

struct Leg
{
    std::string label;
    ServingReport rep;
    EngineStats totals;
    double wall_ms = 0;
};

Leg
run_leg(const std::string& label, const GpuConfig& cfg,
        const SimOptions& sim)
{
    model::ModelGraph graph = mlp6();
    std::vector<Request> trace = poisson_trace(
        2024, 96,
        static_cast<double>(driver::us_to_cycles(20.0, cfg.clock_ghz)));
    ContinuousBatcher policy(8, 2);
    bench::Timer t;
    ServingResult res =
        run_serving(cfg, sim, graph, trace, policy, {90.0});
    Leg leg;
    leg.label = label;
    leg.rep = res.report;
    leg.totals = res.totals;
    leg.wall_ms = t.ms();
    return leg;
}

/** The gated latency percentiles of one leg, in a fixed order. */
std::vector<std::pair<std::string, uint64_t>>
percentiles(const Leg& leg)
{
    std::vector<std::pair<std::string, uint64_t>> out = {
        {"p50", leg.rep.latency.latency_p50},
        {"p95", leg.rep.latency.latency_p95},
        {"p99", leg.rep.latency.latency_p99},
        {"p99.9", leg.rep.latency.latency_p999},
    };
    for (const auto& [pct, v] : leg.rep.latency.latency_extra) {
        char name[32];
        std::snprintf(name, sizeof(name), "p%g", pct);
        out.emplace_back(name, v);
    }
    return out;
}

}  // namespace

int
main()
{
    std::printf("Replay cache: detailed vs record vs replay on the "
                "MLP-6 continuous-batching trace\n\n");

    GpuConfig cfg = bench::titan_v_slice(8);
    ReplayCache cache;

    SimOptions detailed_sim;
    Leg detailed = run_leg("detailed", cfg, detailed_sim);

    SimOptions record_sim;
    record_sim.replay_mode = SimOptions::ReplayMode::kRecord;
    record_sim.replay_cache = &cache;
    Leg record = run_leg("record", cfg, record_sim);

    SimOptions replay_sim;
    replay_sim.replay_mode = SimOptions::ReplayMode::kReplay;
    replay_sim.replay_cache = &cache;
    Leg replay = run_leg("replay (warm cache)", cfg, replay_sim);

    TextTable tbl;
    tbl.set_header({"leg", "p50", "p99", "p99.9", "instructions",
                    "hits", "wall ms"});
    for (const Leg* leg : {&detailed, &record, &replay}) {
        tbl.add_row({leg->label,
                     std::to_string(leg->rep.latency.latency_p50),
                     std::to_string(leg->rep.latency.latency_p99),
                     std::to_string(leg->rep.latency.latency_p999),
                     std::to_string(leg->totals.instructions),
                     std::to_string(leg->totals.replay_hits),
                     fmt_double(leg->wall_ms, 1)});
    }
    bench::print_table(tbl);

    int failures = 0;

    // Recording must not perturb execution: every counter and
    // percentile of the record leg matches detailed exactly.
    auto exact = [&](const char* what, uint64_t want, uint64_t got) {
        if (want == got)
            return;
        std::fprintf(stderr, "FAIL: %s: detailed %llu vs %llu\n", what,
                     static_cast<unsigned long long>(want),
                     static_cast<unsigned long long>(got));
        ++failures;
    };
    exact("record instructions", detailed.totals.instructions,
          record.totals.instructions);
    exact("record hmma", detailed.totals.hmma_instructions,
          record.totals.hmma_instructions);
    auto dp = percentiles(detailed);
    auto rp = percentiles(record);
    for (size_t i = 0; i < dp.size(); ++i)
        exact(("record latency " + rp[i].first).c_str(), dp[i].second,
              rp[i].second);

    // Profile counters are shape-deterministic, so the replay leg's
    // instruction totals are exact even when its timing is bounded.
    exact("replay instructions", detailed.totals.instructions,
          replay.totals.instructions);
    exact("replay hmma", detailed.totals.hmma_instructions,
          replay.totals.hmma_instructions);
    if (replay.totals.replay_hits == 0) {
        std::fprintf(stderr, "FAIL: replay leg never hit the cache\n");
        ++failures;
    }

    const char* err_env = std::getenv("TCSIM_REPLAY_ERR");
    const double err_bound = err_env ? std::atof(err_env) : 0.02;
    auto pp = percentiles(replay);
    double worst = 0.0;
    for (size_t i = 0; i < dp.size(); ++i) {
        double want = static_cast<double>(dp[i].second);
        double got = static_cast<double>(pp[i].second);
        double err = want > 0 ? std::fabs(got - want) / want : 0.0;
        worst = std::max(worst, err);
        bool ok = err <= err_bound;
        std::printf("%s latency %-6s detailed=%llu replay=%llu "
                    "rel_err=%.4f (bound %.3f)\n",
                    ok ? "ok  " : "FAIL", dp[i].first.c_str(),
                    static_cast<unsigned long long>(dp[i].second),
                    static_cast<unsigned long long>(pp[i].second), err,
                    err_bound);
        if (!ok)
            ++failures;
    }

    const double speedup =
        replay.wall_ms > 0 ? detailed.wall_ms / replay.wall_ms : 0.0;
    std::printf("\nreplay wall speedup over detailed: %.1fx "
                "(%zu profile(s), %llu hit(s), %llu miss(es))\n",
                speedup, cache.size(),
                static_cast<unsigned long long>(replay.totals.replay_hits),
                static_cast<unsigned long long>(
                    replay.totals.replay_misses));

    bench::JsonEmitter json("serving_replay");
    json.add("detailed_latency_p50_cycles",
             static_cast<double>(detailed.rep.latency.latency_p50));
    json.add("detailed_latency_p99_cycles",
             static_cast<double>(detailed.rep.latency.latency_p99));
    json.add("detailed_latency_p999_cycles",
             static_cast<double>(detailed.rep.latency.latency_p999));
    json.add("replay_latency_p50_cycles",
             static_cast<double>(replay.rep.latency.latency_p50));
    json.add("replay_latency_p99_cycles",
             static_cast<double>(replay.rep.latency.latency_p99));
    json.add("replay_latency_p999_cycles",
             static_cast<double>(replay.rep.latency.latency_p999));
    json.add("replay_hit_count",
             static_cast<double>(replay.totals.replay_hits));
    json.add("replay_miss_count",
             static_cast<double>(replay.totals.replay_misses));
    json.add("profile_count", static_cast<double>(cache.size()));
    json.add("worst_percentile_rel_err", worst);
    json.add("detailed_wall_ms", detailed.wall_ms);
    json.add("replay_wall_ms", replay.wall_ms);
    json.add("wall_speedup", speedup);

    if (failures) {
        std::fprintf(stderr, "FAIL: %d replay gate(s) failed\n", failures);
        return 1;
    }
    const char* min = std::getenv("TCSIM_REPLAY_MIN");
    double need = min ? std::atof(min) : 3.0;
    if (speedup < need) {
        std::fprintf(stderr, "FAIL: wall speedup %.2fx below minimum "
                             "%.2fx (TCSIM_REPLAY_MIN)\n",
                     speedup, need);
        return 1;
    }
    return 0;
}
