/**
 * @file
 * Experiment E15 (Fig 17): achieved TFLOPS of the GEMM kernel
 * families versus matrix size.  Simulated points are produced up to
 * 2048 (1024 for the SIMT baselines); the analytical Titan V model
 * extends every series to 16384; the paper's digitized hardware
 * curves are printed alongside.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "cutlass/gemm.h"
#include "hwref/paper_tables.h"
#include "kernels/gemm_kernels.h"
#include "metrics/metrics.h"

using namespace tcsim;

namespace {

double
sim_tflops_cutlass(int size, TcMode mode)
{
    cutlass::GemmTemplate t;
    t.mode = mode;
    t.block_m = t.block_n = size >= 256 ? 128 : 64;
    t.block_k = 32;
    t.warp_m = 32;
    t.warp_n = size >= 256 ? 64 : 32;
    Gpu gpu(bench::titan_v());
    GemmProblem<float> prob(size, size, size, t.a_layout, t.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());
    LaunchStats s =
        gpu.launch(cutlass::make_gemm(t, size, size, size, buf, false));
    return metrics::tflops(2.0 * size * size * static_cast<double>(size),
                           static_cast<double>(s.cycles),
                           gpu.config().clock_ghz);
}

double
sim_tflops_kernel(int size, const char* which)
{
    GemmKernelConfig cfg;
    cfg.m = cfg.n = cfg.k = size;
    cfg.functional = false;
    Gpu gpu(bench::titan_v());
    GemmProblem<float> prob(size, size, size, cfg.a_layout, cfg.b_layout);
    GemmBuffers buf = prob.upload(&gpu.mem());
    KernelDesc kd;
    if (std::string(which) == "wmma")
        kd = make_wmma_gemm_shared(cfg, buf);
    else if (std::string(which) == "sgemm")
        kd = make_sgemm_ffma(cfg, buf);
    else
        kd = make_hgemm_hfma2(cfg, buf);
    LaunchStats s = gpu.launch(kd);
    return metrics::tflops(2.0 * size * size * static_cast<double>(size),
                           static_cast<double>(s.cycles),
                           gpu.config().clock_ghz);
}

double
sim_tflops_maxperf(TcMode mode)
{
    // Register-resident back-to-back wmma.mma (computational
    // intensity -> infinity, as the paper's max-perf kernel).
    Gpu gpu(bench::titan_v());
    const int ops = 512;
    LaunchStats s = gpu.launch(
        make_hmma_stress(Arch::kVolta, mode, 160, 4, ops, 4));
    double flops = 160.0 * 4 * ops * 2 * 16 * 16 * 16;
    return metrics::tflops(flops, static_cast<double>(s.cycles),
                           gpu.config().clock_ghz);
}

}  // namespace

int
main()
{
    std::printf("Fig 17: tensor core performance on the Titan V stand-in "
                "(TFLOPS)\n\n");

    hwref::TitanVModel hw(bench::titan_v());
    auto sizes = hwref::fig17_sizes();
    auto paper = hwref::fig17_hw_series();

    auto model_tflops = [&](hwref::KernelFamily fam, TcMode mode,
                            double size) {
        hwref::GemmWorkload w;
        w.family = fam;
        w.mode = mode;
        w.m = w.n = w.k = static_cast<int>(size);
        w.block_m = w.block_n = w.m >= 256 ? 128 : 64;
        w.block_k = 32;
        return hw.predict(w).tflops;
    };

    TextTable tbl("series x size: paper_hw / model / sim(-=not simulated)");
    std::vector<std::string> header = {"series"};
    for (double s : sizes)
        header.push_back(fmt_double(s, 0));
    tbl.set_header(header);

    // sim TFLOPS points captured during the sweep, keyed "kind@size".
    std::map<std::string, double> sim_points;
    auto add_series = [&](const char* name, hwref::KernelFamily fam,
                          TcMode mode, const char* sim_kind,
                          int sim_limit) {
        const std::vector<double>* paper_row = nullptr;
        for (const auto& p : paper)
            if (std::string(p.name) == name)
                paper_row = &p.tflops;
        std::vector<std::string> cells = {name};
        for (size_t i = 0; i < sizes.size(); ++i) {
            int size = static_cast<int>(sizes[i]);
            std::string cell =
                paper_row ? fmt_double((*paper_row)[i], 0) : "?";
            cell += "/" + fmt_double(model_tflops(fam, mode, sizes[i]), 0);
            if (size <= sim_limit) {
                double st;
                if (std::string(sim_kind) == "cutlass")
                    st = sim_tflops_cutlass(size, mode);
                else
                    st = sim_tflops_kernel(size, sim_kind);
                sim_points[std::string(sim_kind) + "@" +
                           std::to_string(size)] = st;
                cell += "/" + fmt_double(st, 0);
            } else {
                cell += "/-";
            }
            cells.push_back(cell);
        }
        tbl.add_row(cells);
    };

    add_series("CUBLAS_WITH_TC_FP32", hwref::KernelFamily::kCutlass,
               TcMode::kMixed, "cutlass", 2048);
    add_series("WMMA_OPTIMIZED", hwref::KernelFamily::kWmmaShared,
               TcMode::kMixed, "wmma", 1024);
    add_series("CUBLAS_WO_TC_FP32", hwref::KernelFamily::kSgemmSimt,
               TcMode::kMixed, "sgemm", 512);
    add_series("CUBLAS_WO_TC_FP16", hwref::KernelFamily::kHgemmSimt,
               TcMode::kFp16, "hgemm", 512);
    bench::print_table(tbl);

    bench::section("Peak kernels");
    double max_mixed = sim_tflops_maxperf(TcMode::kMixed);
    double max_fp16 = sim_tflops_maxperf(TcMode::kFp16);
    std::printf("MAX PERF (mixed): paper %.1f, sim %.1f TFLOPS\n",
                hwref::kMaxPerfMixedTflops, max_mixed);
    std::printf("MAX PERF (fp16):  paper %.1f, sim %.1f TFLOPS\n",
                hwref::kMaxPerfFp16Tflops, max_fp16);
    std::printf("THEORETICAL LIMIT: %.1f TFLOPS (config implies %.1f)\n",
                hwref::kPeakTensorTflops,
                bench::titan_v().peak_tensor_tflops());

    bench::JsonEmitter json("fig17");
    json.add("max_perf_mixed_tflops", max_mixed);
    json.add("max_perf_fp16_tflops", max_fp16);
    json.add("wmma_shared_1024_tflops", sim_points["wmma@1024"]);
    json.add("cutlass_1024_tflops", sim_points["cutlass@1024"]);

    std::printf("\nshape checks: tensor cores ~3-6x SGEMM and ~3x HGEMM "
                "(paper Section V-C)\n");
    return 0;
}
