/**
 * @file
 * Engine scaling snapshot: one large memory-bound scenario (a 256^3
 * streaming WMMA GEMM on the full 80-SM Titan V with a 16 KiB L1) run
 * with the parallel simulation core at 1, 2 and 4 worker threads.
 *
 * Two things are gated in CI from BENCH_engine_scaling.json:
 *  - determinism: the cycle and tick counts at every thread count are
 *    committed as exact-match baselines (they must all be equal, and
 *    must never drift without a deliberate model change);
 *  - speedup visibility: wall times and the 4-thread speedup are
 *    emitted for the artifact charts, but deliberately *not* gated —
 *    they measure the host, not the model.  Set TCSIM_SCALING_MIN to
 *    a factor (e.g. 2.0) to make the binary fail below that speedup
 *    on machines with enough cores.
 */

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "common/table.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

/** The mem_pressure scenario family scaled to the full chip. */
GpuConfig
big_mem_bound()
{
    GpuConfig cfg = bench::titan_v();
    cfg.l1_size = 16 * 1024;
    cfg.dram_latency = 400;
    return cfg;
}

struct Sample
{
    uint64_t cycles = 0;
    uint64_t ticks = 0;
    double wall_ms = 0.0;
};

Sample
run_with_threads(int threads)
{
    SimOptions opts;
    opts.sim_threads = threads;
    Gpu gpu(big_mem_bound(), opts);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 256;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    gpu.default_stream().enqueue(make_wmma_gemm_naive(kc, buf));

    bench::Timer timer;
    EngineStats es = gpu.run();
    Sample s;
    s.cycles = es.cycles;
    s.ticks = es.ticks;
    s.wall_ms = timer.ms();
    return s;
}

}  // namespace

int
main()
{
    unsigned hc = std::thread::hardware_concurrency();
    std::printf("Engine scaling: 256^3 naive WMMA GEMM, 80 SMs, 16 KiB L1 "
                "(memory-bound), %u hardware thread(s)\n\n", hc);

    bench::JsonEmitter json("engine_scaling");
    TextTable t;
    t.set_header({"sim_threads", "cycles", "ticks", "wall ms", "ticks/s",
                  "speedup"});

    const int kThreads[] = {1, 2, 4};
    Sample base;
    double speedup4 = 0.0;
    char key[48], buf[6][32];
    for (int threads : kThreads) {
        Sample s = run_with_threads(threads);
        if (threads == 1)
            base = s;
        double speedup = s.wall_ms > 0.0 ? base.wall_ms / s.wall_ms : 0.0;
        if (threads == 4)
            speedup4 = speedup;

        std::snprintf(key, sizeof(key), "t%d_cycles", threads);
        json.add(key, static_cast<double>(s.cycles));
        std::snprintf(key, sizeof(key), "t%d_tick_count", threads);
        json.add(key, static_cast<double>(s.ticks));
        std::snprintf(key, sizeof(key), "t%d_wall_ms", threads);
        json.add(key, s.wall_ms);

        std::snprintf(buf[0], sizeof(buf[0]), "%d", threads);
        std::snprintf(buf[1], sizeof(buf[1]), "%llu",
                      static_cast<unsigned long long>(s.cycles));
        std::snprintf(buf[2], sizeof(buf[2]), "%llu",
                      static_cast<unsigned long long>(s.ticks));
        std::snprintf(buf[3], sizeof(buf[3]), "%.1f", s.wall_ms);
        std::snprintf(buf[4], sizeof(buf[4]), "%.3g",
                      s.wall_ms > 0.0
                          ? static_cast<double>(s.ticks) / (s.wall_ms / 1e3)
                          : 0.0);
        std::snprintf(buf[5], sizeof(buf[5]), "%.2fx", speedup);
        t.add_row({buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]});

        // Determinism is the benchmark's contract: refuse to emit a
        // snapshot where the thread count changed the simulation.
        if (s.cycles != base.cycles || s.ticks != base.ticks) {
            std::printf("FAILED: sim_threads=%d diverged from serial "
                        "(%llu vs %llu cycles)\n", threads,
                        static_cast<unsigned long long>(s.cycles),
                        static_cast<unsigned long long>(base.cycles));
            return 1;
        }
    }
    json.add("speedup_4t_wall", speedup4);

    std::printf("%s\n", t.render().c_str());
    std::printf("4-thread speedup: %.2fx (wall; meaningful only with >= 4 "
                "hardware threads)\n", speedup4);

    if (const char* min = std::getenv("TCSIM_SCALING_MIN")) {
        double want = std::atof(min);
        if (speedup4 < want) {
            std::printf("FAILED: TCSIM_SCALING_MIN=%.2f not reached\n",
                        want);
            return 1;
        }
    }
    return 0;
}
