/**
 * @file
 * Snapshot-fork sweep throughput: the driver's sweep path (one shared
 * warm-up prefix simulated once, each point forked from the captured
 * snapshot) against the cold path (every point re-simulating the
 * prefix from cycle 0) on a 4-point warm-prefix sweep.
 *
 * The sweep is deliberately prefix-heavy — a 256^3 warm-up GEMM forked
 * at 90% of its solo drain cycle into four small problem sizes — the
 * shape snapshot forking exists for: the cold leg simulates the big
 * prefix four times, the forked leg once.
 *
 * Two things are gated in CI from BENCH_snapshot_fork.json:
 *  - identity: per-point cycle and instruction counts are committed as
 *    exact-match baselines, and the forked and cold legs must agree on
 *    every one of them (points_matched == point count).  Tick counts
 *    match too, by construction: a forked point's restored statistics
 *    include the prefix's ticks, so its report is indistinguishable
 *    from the cold rerun's;
 *  - the per-point totals themselves, as determinism baselines.
 *
 * Wall times and the wall speedup are emitted for the artifact charts
 * but deliberately not gated — they measure the host.  The binary
 * does fail below TCSIM_FORK_MIN (default 3.0, set 0 to disable) so
 * local runs still demonstrate the >= 3x reduction.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "driver/runner.h"
#include "driver/scenario.h"

using namespace tcsim;

namespace {

const char* kPrefixOnly = R"({
    "name": "bench_fork_prefix",
    "gpu": {"preset": "titan_v", "num_sms": 20},
    "kernels": [{"kernel": "wmma_naive", "name": "warmup",
                 "m": 256, "n": 256, "k": 256, "mode": "mixed"}]
})";

/** The warm-up prefix above plus four small points forked at
 *  @p fork_cycle. */
std::string
sweep_text(uint64_t fork_cycle)
{
    std::string points;
    const int sizes[] = {32, 48, 64, 80};
    for (int s : sizes) {
        if (!points.empty())
            points += ",";
        points += R"({"name": "p)" + std::to_string(s) + R"(",
            "kernels": [{"kernel": "wmma_naive",
                         "name": "p)" + std::to_string(s) + R"(",
                         "m": )" + std::to_string(s) +
                  R"(, "n": )" + std::to_string(s) +
                  R"(, "k": )" + std::to_string(s) +
                  R"(, "mode": "mixed"}]})";
    }
    return R"({
        "name": "bench_fork",
        "gpu": {"preset": "titan_v", "num_sms": 20},
        "kernels": [{"kernel": "wmma_naive", "name": "warmup",
                     "m": 256, "n": 256, "k": 256, "mode": "mixed"}],
        "sweep": {"fork_cycle": )" + std::to_string(fork_cycle) +
           R"(, "points": [)" + points + R"(]}
    })";
}

struct Leg
{
    double wall_ms = 0.0;
    std::vector<driver::ScenarioResult> results;
};

Leg
run_leg(const driver::Scenario& sc, bool cold)
{
    Leg leg;
    bench::Timer t;
    leg.results = driver::run_sweep(sc, /*jobs=*/1, /*sim_threads=*/-1,
                                    /*detailed_sms=*/-1, cold);
    leg.wall_ms = t.ms();
    return leg;
}

}  // namespace

int
main()
{
    bench::section("snapshot fork vs cold sweep (4-point warm-prefix)");

    // Size the fork point off the prefix's own drain cycle so the
    // bench tracks model changes instead of hard-coding a cycle.
    driver::Scenario prefix = driver::parse_scenario_text(kPrefixOnly);
    driver::ScenarioResult solo = driver::run_scenario(prefix);
    if (!solo.error.empty()) {
        std::fprintf(stderr, "FAIL: prefix run errored: %s\n",
                     solo.error.c_str());
        return 1;
    }
    uint64_t fork_cycle = solo.totals.cycles * 9 / 10;
    std::printf("prefix drains at cycle %llu; forking at %llu\n",
                static_cast<unsigned long long>(solo.totals.cycles),
                static_cast<unsigned long long>(fork_cycle));

    driver::Scenario sc = driver::parse_scenario_text(sweep_text(fork_cycle));
    Leg cold = run_leg(sc, /*cold=*/true);
    Leg forked = run_leg(sc, /*cold=*/false);

    bench::JsonEmitter em("snapshot_fork");
    TextTable table;
    table.set_header({"point", "cold cycles", "forked cycles",
                      "instructions", "match"});

    int matched = 0;
    for (size_t i = 0; i < cold.results.size(); ++i) {
        const auto& c = cold.results[i];
        const auto& f = forked.results[i];
        bool same = c.totals.cycles == f.totals.cycles &&
                    c.totals.ticks == f.totals.ticks &&
                    c.totals.instructions == f.totals.instructions &&
                    c.totals.hmma_instructions == f.totals.hmma_instructions;
        matched += same ? 1 : 0;
        table.add_row({c.sweep_point, std::to_string(c.totals.cycles),
                       std::to_string(f.totals.cycles),
                       std::to_string(f.totals.instructions),
                       same ? "yes" : "NO"});
        em.add(c.sweep_point + "_cycles",
               static_cast<double>(f.totals.cycles));
        em.add(c.sweep_point + "_instruction_count",
               static_cast<double>(f.totals.instructions));
    }
    bench::print_table(table);

    double speedup = forked.wall_ms > 0.0 ? cold.wall_ms / forked.wall_ms
                                          : 0.0;
    std::printf("\ncold:   %8.1f ms (prefix simulated %zu times)\n",
                cold.wall_ms, cold.results.size());
    std::printf("forked: %8.1f ms (prefix simulated once)\n",
                forked.wall_ms);
    std::printf("wall speedup %.2fx, %d/%zu points identical\n", speedup,
                matched, cold.results.size());

    em.add("points_matched_count", static_cast<double>(matched));
    em.add("cold_wall_ms", cold.wall_ms);
    em.add("forked_wall_ms", forked.wall_ms);
    em.add("wall_speedup", speedup);

    if (matched != static_cast<int>(cold.results.size())) {
        std::fprintf(stderr, "FAIL: forked points diverged from cold "
                             "reruns\n");
        return 1;
    }
    const char* min = std::getenv("TCSIM_FORK_MIN");
    double need = min ? std::atof(min) : 3.0;
    if (speedup < need) {
        std::fprintf(stderr, "FAIL: wall speedup %.2fx below minimum "
                             "%.2fx (TCSIM_FORK_MIN)\n", speedup, need);
        return 1;
    }
    return 0;
}
