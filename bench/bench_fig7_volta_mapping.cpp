/**
 * @file
 * Experiment E1/E16 (Fig 7, Section V-A): prints the Volta operand
 * matrix element -> thread mappings, the SASS load decomposition of
 * each wmma.load, and the coalesced transaction counts the timing
 * model generates.
 */

#include <cstdio>

#include "bench_util.h"
#include "kernels/wmma_api.h"
#include "tensor/transactions.h"

using namespace tcsim;

namespace {

void
print_owner_grid(const FragmentMap& map, const char* title)
{
    bench::section(title);
    int rows = map.shape().rows(map.op());
    int cols = map.shape().cols(map.op());
    std::printf("threadgroup owners of each element (first owner):\n");
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            auto locs = map.locate(r, c);
            std::printf("%d", threadgroup_of_lane(locs[0].lane));
            if (locs.size() > 1)
                std::printf("/%d", threadgroup_of_lane(locs[1].lane));
            std::printf(c + 1 < cols ? " " : "\n");
        }
    }
}

void
print_load_decomposition(WmmaOperand op, TcMode mode, Layout layout)
{
    const FragmentMap& map =
        cached_fragment_map(Arch::kVolta, op, kShape16x16x16, mode, layout);
    auto ops = wmma_memory_ops(map, 1024);
    std::printf("wmma.load.%s (%s, %s-major): %zu x %s per thread, "
                "%llu sectors/warp at ld=1024\n",
                operand_name(op), tc_mode_name(mode), layout_name(layout),
                ops.size(), ops.front().mnemonic(false),
                static_cast<unsigned long long>(
                    count_transactions(ops, /*base=*/0)));
}

}  // namespace

int
main()
{
    std::printf("Fig 7: distribution of operand matrix elements to threads "
                "(Titan V / Volta)\n");

    print_owner_grid(cached_fragment_map(Arch::kVolta, WmmaOperand::kA,
                                         kShape16x16x16, TcMode::kMixed,
                                         Layout::kRowMajor),
                     "Matrix A (each element held by two threadgroups)");
    print_owner_grid(cached_fragment_map(Arch::kVolta, WmmaOperand::kB,
                                         kShape16x16x16, TcMode::kMixed,
                                         Layout::kColMajor),
                     "Matrix B (each element held by two threadgroups)");
    print_owner_grid(cached_fragment_map(Arch::kVolta, WmmaOperand::kC,
                                         kShape16x16x16, TcMode::kMixed,
                                         Layout::kRowMajor),
                     "Matrix C (single owner, 4x8 block per threadgroup)");

    bench::section("wmma.load SASS decomposition (Section III-C)");
    for (Layout l : {Layout::kRowMajor, Layout::kColMajor}) {
        print_load_decomposition(WmmaOperand::kA, TcMode::kMixed, l);
        print_load_decomposition(WmmaOperand::kB, TcMode::kMixed, l);
    }
    print_load_decomposition(WmmaOperand::kC, TcMode::kMixed,
                             Layout::kRowMajor);
    print_load_decomposition(WmmaOperand::kC, TcMode::kFp16,
                             Layout::kRowMajor);

    bench::section("Per-thread fragment of thread 0 (mixed, A row-major)");
    const FragmentMap& a = cached_fragment_map(
        Arch::kVolta, WmmaOperand::kA, kShape16x16x16, TcMode::kMixed,
        Layout::kRowMajor);
    const auto& frag = a.fragment(0).elems;
    for (size_t i = 0; i < frag.size(); ++i)
        std::printf("slot %2zu -> A[%d][%d]\n", i, frag[i].row, frag[i].col);
    return 0;
}
