/**
 * @file
 * Experiment E10 (Fig 14a): cycles to execute a WMMA-based
 * matrix-multiply-accumulate kernel as matrix size varies, simulator
 * versus the Titan V stand-in (analytical hardware model).  The paper
 * reports agreement with a standard deviation below 5%.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "kernels/gemm_kernels.h"

using namespace tcsim;

int
main()
{
    std::printf("Fig 14a: WMMA GEMM kernel cycles vs square matrix size\n");
    std::printf("(simple WMMA MACC kernel, one tile per warp, as in the "
                "paper's sweep)\n\n");

    hwref::TitanVModel hw(bench::titan_v());
    TextTable tbl;
    tbl.set_header({"size", "hw_model_cycles", "sim_cycles", "sim/hw"});

    std::vector<double> hw_series, sim_series;
    for (int size : {16, 32, 64, 128, 160, 192, 224, 256, 288, 320, 384,
                     480, 512}) {
        GemmKernelConfig cfg;
        cfg.m = cfg.n = cfg.k = size;
        cfg.functional = false;
        GemmProblem<float> prob(size, size, size, cfg.a_layout, cfg.b_layout);
        Gpu gpu(bench::titan_v());
        GemmBuffers buf = prob.upload(&gpu.mem());
        LaunchStats s = gpu.launch(make_wmma_gemm_naive(cfg, buf));

        hwref::GemmWorkload w;
        w.family = hwref::KernelFamily::kWmmaNaive;
        w.m = w.n = w.k = size;
        w.block_m = w.block_n = 16;
        w.block_k = 16;
        hwref::HwPrediction p = hw.predict(w);

        hw_series.push_back(p.cycles);
        sim_series.push_back(static_cast<double>(s.cycles));
        tbl.add_row({std::to_string(size), fmt_double(p.cycles, 0),
                     std::to_string(s.cycles),
                     fmt_double(static_cast<double>(s.cycles) / p.cycles,
                                3)});
    }
    bench::print_table(tbl);

    double dev = stats::rel_stddev_pct(hw_series, sim_series);
    double mare = stats::mean_abs_rel_error_pct(hw_series, sim_series);
    double corr = stats::pearson(hw_series, sim_series);
    std::printf("\nrelative std-dev: %.2f%% (paper: < 5%%)\n", dev);
    std::printf("mean abs rel error: %.2f%%, correlation: %.2f%%\n", mare,
                100.0 * corr);

    bench::JsonEmitter json("fig14a");
    json.add("rel_stddev_pct", dev);
    json.add("mean_abs_rel_error_pct", mare);
    json.add("pearson", corr);
    return 0;
}
