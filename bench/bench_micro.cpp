/**
 * @file
 * google-benchmark microbenchmarks for the hot components of the
 * library: FP16 conversion, functional HMMA execution, the memory
 * coalescer, the sectored cache, and a small end-to-end simulation.
 */

#include <benchmark/benchmark.h>

#include "fp16/half.h"
#include "kernels/gemm_kernels.h"
#include "sass/hmma_executor.h"
#include "sim/gpu.h"
#include "sim/mem/cache.h"
#include "sim/mem/coalescer.h"

using namespace tcsim;

namespace {

void
BM_Fp16RoundTrip(benchmark::State& state)
{
    uint16_t bits = 0x3c00;
    for (auto _ : state) {
        float f = half::bits_to_float(bits);
        bits = half::float_to_bits(f * 1.0009765625f);
        benchmark::DoNotOptimize(bits);
    }
}
BENCHMARK(BM_Fp16RoundTrip);

void
BM_HmmaExecutorStep(benchmark::State& state)
{
    HmmaExecutor exec(Arch::kVolta, TcMode::kMixed, kShape16x16x16,
                      Layout::kRowMajor, Layout::kColMajor);
    WarpRegState regs(64);
    HmmaInfo info;
    info.mode = TcMode::kMixed;
    info.a_layout = Layout::kRowMajor;
    info.b_layout = Layout::kColMajor;
    info.a_reg = 20;
    info.b_reg = 36;
    info.c_reg = 4;
    info.d_reg = 4;
    for (auto _ : state) {
        exec.execute_step(info, regs);
        benchmark::DoNotOptimize(regs.read(0, 4));
    }
}
BENCHMARK(BM_HmmaExecutorStep);

void
BM_Coalescer(benchmark::State& state)
{
    Instruction inst;
    inst.op = Opcode::kLdg;
    inst.width_bits = 128;
    inst.n_dst = 1;
    inst.dst[0] = 8;
    inst.addr = std::make_unique<std::array<uint64_t, kWarpSize>>();
    for (int lane = 0; lane < kWarpSize; ++lane)
        (*inst.addr)[lane] = 4096 + static_cast<uint64_t>(lane) * 2048;
    for (auto _ : state) {
        auto sectors = coalesce_sectors(inst);
        benchmark::DoNotOptimize(sectors.size());
    }
}
BENCHMARK(BM_Coalescer);

void
BM_CacheAccess(benchmark::State& state)
{
    CacheConfig cfg;
    cfg.size_bytes = 128 * 1024;
    Cache cache(cfg);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr, false));
        addr += 32;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SimSmallGemm(benchmark::State& state)
{
    // End-to-end: 64^3 mixed GEMM on a 1-SM Titan V, functional.
    for (auto _ : state) {
        GpuConfig cfg = titan_v_config();
        cfg.num_sms = 1;
        Gpu gpu(cfg);
        GemmKernelConfig gc;
        gc.m = gc.n = gc.k = 64;
        GemmProblem<float> prob(64, 64, 64, gc.a_layout, gc.b_layout);
        GemmBuffers buf = prob.upload(&gpu.mem());
        LaunchStats s = gpu.launch(make_wmma_gemm_shared(gc, buf));
        benchmark::DoNotOptimize(s.cycles);
    }
}
BENCHMARK(BM_SimSmallGemm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
