/**
 * @file
 * Experiment E9 (Fig 12c): cycles to execute parallel HMMA operations
 * versus the number of warps in a CTA.  The curve is flat up to four
 * warps (each warp owns one sub-core's tensor core pair) and rises
 * beyond, showing each warp uses two of the SM's eight tensor cores.
 */

#include <cstdio>

#include "bench_util.h"
#include "hwref/paper_tables.h"
#include "kernels/gemm_kernels.h"

using namespace tcsim;

int
main()
{
    std::printf("Fig 12c: cycles for parallel HMMA vs warps per CTA "
                "(one SM)\n\n");
    auto hw = hwref::fig12c_hw_cycles();

    TextTable tbl;
    tbl.set_header({"warps", "hw_cycles(paper)", "sim_cycles"});
    std::vector<double> sim;
    for (int warps = 1; warps <= 8; ++warps) {
        Gpu gpu(bench::titan_v_slice(1));
        LaunchStats s = gpu.launch(make_hmma_stress(
            Arch::kVolta, TcMode::kMixed, 1, warps, /*wmma_per_warp=*/4,
            /*accumulators=*/4));
        sim.push_back(static_cast<double>(s.cycles));
        tbl.add_row({std::to_string(warps),
                     fmt_double(hw[static_cast<size_t>(warps - 1)], 0),
                     std::to_string(s.cycles)});
    }
    bench::print_table(tbl);

    bool flat = true;
    for (int w = 1; w < 4; ++w)
        flat = flat && std::abs(sim[w] - sim[0]) < 0.15 * sim[0];
    bool rises = sim[7] > 1.5 * sim[3];
    std::printf("\nshape check: flat through 4 warps: %s; rises to 8 "
                "warps: %s\n",
                flat ? "PASS" : "FAIL", rises ? "PASS" : "FAIL");
    std::printf("(absolute values differ from the paper's microbenchmark, "
                "which includes fragment loads; the saturation point at 4 "
                "warps = 2 tensor cores per warp is the modeled claim)\n");
    return flat && rises ? 0 : 1;
}
