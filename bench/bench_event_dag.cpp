/**
 * @file
 * Event-DAG benchmark: the 3-layer tensor-parallel MLP inference DAG
 * and the fork-join conv+gemm pipeline, built with the CUDA-style
 * event API (Stream::record / Stream::wait), against their serialized
 * single-stream baselines.  Emits cycle counts and the overlap
 * speedups as a BENCH_event_dag.json snapshot for the CI
 * bench-regression gate — the cycle metrics pin the timing of the
 * event-gated scheduler exactly.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

KernelDesc
gemm(Gpu* gpu, int m, int n, int k, const char* name)
{
    GemmKernelConfig cfg;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.functional = false;
    GemmProblem<float> prob(m, n, k, cfg.a_layout, cfg.b_layout);
    GemmBuffers buf = prob.upload(&gpu->mem());
    KernelDesc kd = make_wmma_gemm_shared(cfg, buf);
    kd.name = name;
    return kd;
}

/** 3-layer MLP, each layer split in half across two streams; events
 *  chain layer k onto both halves of layer k-1.  Returns total cycles. */
uint64_t
mlp3_dag(int sms)
{
    Gpu gpu(bench::titan_v_slice(sms));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Event& l1a = gpu.create_event("l1a");
    Event& l1b = gpu.create_event("l1b");
    Event& l2a = gpu.create_event("l2a");
    Event& l2b = gpu.create_event("l2b");

    s1.enqueue(gemm(&gpu, 64, 128, 256, "l1a"));
    s1.record(l1a);
    s2.enqueue(gemm(&gpu, 64, 128, 256, "l1b"));
    s2.record(l1b);

    s1.wait(l1b);
    s1.enqueue(gemm(&gpu, 64, 128, 256, "l2a"));
    s1.record(l2a);
    s2.wait(l1a);
    s2.enqueue(gemm(&gpu, 64, 128, 256, "l2b"));
    s2.record(l2b);

    s1.wait(l2b);
    s1.enqueue(gemm(&gpu, 64, 64, 256, "l3a"));
    s2.wait(l2a);
    s2.enqueue(gemm(&gpu, 64, 64, 256, "l3b"));

    return gpu.run().cycles;
}

/** The same six GEMMs back-to-back on the default stream. */
uint64_t
mlp3_serial(int sms)
{
    Gpu gpu(bench::titan_v_slice(sms));
    Stream& s = gpu.default_stream();
    s.enqueue(gemm(&gpu, 64, 128, 256, "l1a"));
    s.enqueue(gemm(&gpu, 64, 128, 256, "l1b"));
    s.enqueue(gemm(&gpu, 64, 128, 256, "l2a"));
    s.enqueue(gemm(&gpu, 64, 128, 256, "l2b"));
    s.enqueue(gemm(&gpu, 64, 64, 256, "l3a"));
    s.enqueue(gemm(&gpu, 64, 64, 256, "l3b"));
    return gpu.run().cycles;
}

/** conv -> {branch_a, branch_b} -> head fork-join. */
uint64_t
fork_join(int sms)
{
    Gpu gpu(bench::titan_v_slice(sms));
    Stream& s1 = gpu.create_stream();
    Stream& s2 = gpu.create_stream();
    Stream& s3 = gpu.create_stream();
    Event& conv_done = gpu.create_event("conv_done");
    Event& a_done = gpu.create_event("a_done");
    Event& b_done = gpu.create_event("b_done");

    s1.enqueue(gemm(&gpu, 128, 128, 128, "conv"));
    s1.record(conv_done);
    s2.wait(conv_done);
    s2.enqueue(gemm(&gpu, 64, 128, 128, "branch_a"));
    s2.record(a_done);
    s3.wait(conv_done);
    s3.enqueue(gemm(&gpu, 64, 128, 128, "branch_b"));
    s3.record(b_done);
    s1.wait(a_done);
    s1.wait(b_done);
    s1.enqueue(gemm(&gpu, 64, 64, 256, "head"));

    return gpu.run().cycles;
}

}  // namespace

int
main()
{
    std::printf("Event-DAG pipelines: cycles with cross-stream event "
                "dependencies vs serialized\n\n");
    const int sms = 8;

    uint64_t dag = mlp3_dag(sms);
    uint64_t serial = mlp3_serial(sms);
    uint64_t fj = fork_join(sms);
    double mlp_speedup = static_cast<double>(serial) /
                         static_cast<double>(dag);

    TextTable tbl;
    tbl.set_header({"pipeline", "cycles", "vs serialized"});
    tbl.add_row({"mlp3 DAG (2-way tensor-parallel)", std::to_string(dag),
                 fmt_double(mlp_speedup, 2) + "x"});
    tbl.add_row({"mlp3 serialized", std::to_string(serial), "1.00x"});
    tbl.add_row({"fork-join conv+gemm", std::to_string(fj), "-"});
    bench::print_table(tbl);

    bench::JsonEmitter json("event_dag");
    json.add("mlp3_dag_cycles", static_cast<double>(dag));
    json.add("mlp3_serial_cycles", static_cast<double>(serial));
    json.add("mlp3_overlap_speedup", mlp_speedup);
    json.add("fork_join_cycles", static_cast<double>(fj));
    return 0;
}
