/**
 * @file
 * Memory-hierarchy queueing snapshot: the tiny-L1 streaming WMMA GEMM
 * (the mem_pressure scenario family) run against the transaction path
 * with each level constricted in turn — baseline, few MSHR entries,
 * narrow NoC, shallow DRAM queues.  Emits the cycle counts and
 * per-level queueing/stall counters as BENCH_mem_latency.json for the
 * CI bench-regression gate: any drift in the queued-transaction
 * timing model shows up as an exact-match failure.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

struct Variant
{
    const char* key;
    const char* what;
    void (*tweak)(GpuConfig*);
};

const Variant kVariants[] = {
    {"base", "unconstricted transaction path", [](GpuConfig*) {}},
    {"mshr4", "4 MSHR entries per SM",
     [](GpuConfig* c) { c->l1_mshr_entries = 4; }},
    {"noc8", "8 B/cycle NoC, 16 in-flight",
     [](GpuConfig* c) {
         c->noc_bytes_per_cycle = 8.0;
         c->noc_queue_depth = 16;
     }},
    {"dramq", "1 partition, 2-deep DRAM queue, 1 B/cycle",
     [](GpuConfig* c) {
         c->num_mem_partitions = 1;
         c->dram_queue_depth = 2;
         c->dram_bytes_per_cycle_per_partition = 1.0;
         c->l2_size = 64 * 1024;
     }},
};

LaunchStats
run_variant(const Variant& v)
{
    GpuConfig cfg = bench::titan_v();
    cfg.num_sms = 8;
    cfg.l1_size = 16 * 1024;
    cfg.dram_latency = 400;
    v.tweak(&cfg);

    Gpu gpu(cfg);
    GemmKernelConfig kc;
    kc.m = kc.n = kc.k = 128;
    kc.functional = false;
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.k * 2);
    buf.b = gpu.mem().alloc(static_cast<uint64_t>(kc.k) * kc.n * 2);
    buf.c = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    buf.d = gpu.mem().alloc(static_cast<uint64_t>(kc.m) * kc.n * 4);
    return gpu.launch(make_wmma_gemm_naive(kc, buf));
}

}  // namespace

int
main()
{
    std::printf("Memory-hierarchy queueing: 128^3 naive WMMA GEMM, "
                "8 SMs, 16 KiB L1, each level constricted in turn\n\n");

    bench::JsonEmitter json("mem_latency");
    TextTable t;
    t.set_header({"variant", "cycles", "mshr_full", "noc_busy",
                  "dram_queue", "noc_qcyc", "l2_qcyc", "dram_qcyc"});
    for (const Variant& v : kVariants) {
        LaunchStats s = run_variant(v);
        t.add_row({v.key, std::to_string(s.cycles),
                   std::to_string(s.stalls[StallReason::kMshrFull]),
                   std::to_string(s.stalls[StallReason::kNocBusy]),
                   std::to_string(s.stalls[StallReason::kDramQueue]),
                   std::to_string(s.mem.noc_queue_cycles),
                   std::to_string(s.mem.l2_queue_cycles),
                   std::to_string(s.mem.dram_queue_cycles)});
        std::string p = v.key;
        json.add(p + "_cycles", static_cast<double>(s.cycles));
        json.add(p + "_stall_mshr_full_cycles",
                 static_cast<double>(s.stalls[StallReason::kMshrFull]));
        json.add(p + "_stall_noc_busy_cycles",
                 static_cast<double>(s.stalls[StallReason::kNocBusy]));
        json.add(p + "_stall_dram_queue_cycles",
                 static_cast<double>(s.stalls[StallReason::kDramQueue]));
        json.add(p + "_noc_queue_cycles",
                 static_cast<double>(s.mem.noc_queue_cycles));
        json.add(p + "_l2_queue_cycles",
                 static_cast<double>(s.mem.l2_queue_cycles));
        json.add(p + "_dram_queue_cycles",
                 static_cast<double>(s.mem.dram_queue_cycles));
        json.add(p + "_mshr_peak",
                 static_cast<double>(s.mem.mshr_peak));
        std::printf("%-6s %s\n", v.key, v.what);
    }
    std::printf("\n%s\n", t.render().c_str());
    json.write();
    return 0;
}
