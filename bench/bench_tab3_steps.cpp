/**
 * @file
 * Experiments E6/E7 (Table III, Fig 10): the outer-product
 * computation performed by each threadgroup in every set and step of
 * a Volta wmma.mma, printed in the paper's a..h / A..H subtile
 * notation.
 */

#include <cstdio>

#include "bench_util.h"
#include "sass/hmma_decomposer.h"

using namespace tcsim;

namespace {

/** Paper notation: A-subtiles a..d belong to the octet's lower
 *  threadgroup rows, e..h to the upper; B-subtiles A..D to the lower
 *  stripe, E..H to the upper (Fig 12b). */
char
a_subtile_letter(int tg, int set)
{
    bool upper = tg >= 4;
    return static_cast<char>((upper ? 'e' : 'a') + set);
}

char
b_subtile_letter(int tg, int set, int step, TcMode mode)
{
    bool own = mode == TcMode::kMixed ? step < 2 : step < 1;
    // Steps 0-1 use the lower threadgroup's stripe (A..D), steps 2-3
    // the partner's (E..H).
    return static_cast<char>((own ? 'A' : 'E') + set);
}

}  // namespace

int
main()
{
    std::printf("Table III: octet computation details (mixed precision)\n");
    std::printf("rows shown for octet 0 (threadgroups 0 and 4); all octets "
                "are isomorphic\n\n");
    TextTable tbl;
    tbl.set_header({"set", "step", "tg0 computes", "tg4 computes",
                    "tg0 D rows", "B cols"});
    for (int set = 0; set < 4; ++set) {
        for (int step = 0; step < 4; ++step) {
            auto sc0 = volta_step_compute(TcMode::kMixed, 0, set, step);
            char c0[32], c4[32], drows[16], bcols[16];
            int rowpair = (step % 2) ? 1 : 0;
            std::snprintf(c0, sizeof(c0), "%c[%d:%d] x %c",
                          a_subtile_letter(0, set), 2 * rowpair,
                          2 * rowpair + 1,
                          b_subtile_letter(0, set, step, TcMode::kMixed));
            std::snprintf(c4, sizeof(c4), "%c[%d:%d] x %c",
                          a_subtile_letter(4, set), 2 * rowpair,
                          2 * rowpair + 1,
                          b_subtile_letter(4, set, step, TcMode::kMixed));
            std::snprintf(drows, sizeof(drows), "[%d:%d]", sc0.cd.row0,
                          sc0.cd.row1);
            std::snprintf(bcols, sizeof(bcols), "[%d:%d]", sc0.b.col0,
                          sc0.b.col1);
            tbl.add_row({std::to_string(set + 1), std::to_string(step), c0,
                         c4, drows, bcols});
        }
    }
    bench::print_table(tbl);

    bench::section("Fig 10b: subtile geometry per step (threadgroup 0)");
    for (int set = 0; set < 4; ++set) {
        for (int step = 0; step < 4; ++step) {
            auto sc = volta_step_compute(TcMode::kMixed, 0, set, step);
            std::printf("set %d step %d: A[%2d:%2d,%2d:%2d] x "
                        "B[%2d:%2d,%2d:%2d] -> D[%2d:%2d,%2d:%2d]  (%dx%d)\n",
                        set + 1, step, sc.a.row0, sc.a.row1, sc.a.col0,
                        sc.a.col1, sc.b.row0, sc.b.row1, sc.b.col0, sc.b.col1,
                        sc.cd.row0, sc.cd.row1, sc.cd.col0, sc.cd.col1,
                        sc.cd.rows(), sc.cd.cols());
        }
    }

    bench::section("Fig 10c: FP16 mode steps (threadgroup 0, set 1)");
    for (int step = 0; step < 2; ++step) {
        auto sc = volta_step_compute(TcMode::kFp16, 0, 0, step);
        std::printf("step %d: A[%d:%d,%d:%d] x B[%d:%d,%d:%d] -> "
                    "D[%d:%d,%d:%d]  (%dx%d, full 4x4 per step)\n",
                    step, sc.a.row0, sc.a.row1, sc.a.col0, sc.a.col1,
                    sc.b.row0, sc.b.row1, sc.b.col0, sc.b.col1, sc.cd.row0,
                    sc.cd.row1, sc.cd.col0, sc.cd.col1, sc.cd.rows(),
                    sc.cd.cols());
    }
    return 0;
}
