/**
 * @file
 * Task-graph compiler microbenchmark: a 256-node pipeline-parallel
 * MLP (16 microbatches x 16 layers, activations double-buffered by
 * microbatch parity) is built and compiled repeatedly.  The derived
 * structure — edge count, stream count, emitted events and waits — is
 * pinned exactly in BENCH_taskgraph_compile.json for the CI
 * bench-regression gate; compile wall time is reported but gated only
 * by a generous in-binary ceiling, since hazard analysis must stay
 * interactive even for sweep-scale graphs.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/graph/task_graph.h"

using namespace tcsim;

namespace {

constexpr int kMicrobatches = 16;
constexpr int kLayers = 16;

/** Build the 256-task pipeline graph (declaration order b-major, like
 *  scenarios/taskgraph_mlp6_pipeline.json scaled up). */
TaskGraph
build_pipeline()
{
    TaskGraph g;
    std::vector<int> x, y, w;
    for (int b = 0; b < kMicrobatches; ++b) {
        x.push_back(g.declare_tensor("X" + std::to_string(b), 16384));
        y.push_back(g.declare_tensor("Y" + std::to_string(b), 16384));
    }
    for (int l = 1; l <= kLayers; ++l)
        w.push_back(g.declare_tensor("W" + std::to_string(l), 32768));
    // Two activation buffers per layer boundary, alternated by
    // microbatch parity.
    std::vector<int> act;  // [boundary * 2 + parity]
    for (int l = 1; l < kLayers; ++l) {
        act.push_back(g.declare_tensor("A" + std::to_string(l) + "e", 16384));
        act.push_back(g.declare_tensor("A" + std::to_string(l) + "o", 16384));
    }
    for (int b = 0; b < kMicrobatches; ++b) {
        const int par = b % 2;
        for (int l = 1; l <= kLayers; ++l) {
            int t = g.add_task("b" + std::to_string(b) + "l" +
                               std::to_string(l));
            g.task_reads(t, l == 1 ? x[static_cast<size_t>(b)]
                                   : act[static_cast<size_t>(
                                         (l - 2) * 2 + par)]);
            g.task_reads(t, w[static_cast<size_t>(l - 1)]);
            g.task_writes(t, l == kLayers
                                 ? y[static_cast<size_t>(b)]
                                 : act[static_cast<size_t>(
                                       (l - 1) * 2 + par)]);
        }
    }
    return g;
}

}  // namespace

int
main()
{
    std::printf("Task-graph compile: %d-node pipeline graph, hazard "
                "analysis + stream coloring + event placement\n\n",
                kMicrobatches * kLayers);

    const TaskGraph g = build_pipeline();
    TaskGraph::Compiled plan;
    constexpr int kReps = 20;
    double best_ms = 1e300;
    for (int i = 0; i < kReps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        plan = g.compile();
        auto t1 = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
        if (ms < best_ms)
            best_ms = ms;
    }

    size_t events = 0, waits = 0;
    for (const std::string& e : plan.record_event)
        events += e.empty() ? 0 : 1;
    for (const std::vector<std::string>& ws : plan.wait_events)
        waits += ws.size();

    TextTable tbl;
    tbl.set_header({"metric", "value"});
    tbl.add_row({"tasks", std::to_string(g.num_tasks())});
    tbl.add_row({"hazard edges", std::to_string(plan.edges.size())});
    tbl.add_row({"streams", std::to_string(plan.num_streams)});
    tbl.add_row({"events recorded", std::to_string(events)});
    tbl.add_row({"waits emitted", std::to_string(waits)});
    tbl.add_row({"compile best", fmt_double(best_ms, 3) + " ms"});
    bench::print_table(tbl);

    bench::JsonEmitter json("taskgraph_compile");
    json.add("tasks", static_cast<double>(g.num_tasks()));
    json.add("edge_count", static_cast<double>(plan.edges.size()));
    json.add("stream_count", static_cast<double>(plan.num_streams));
    json.add("event_count", static_cast<double>(events));
    json.add("wait_count", static_cast<double>(waits));
    json.add("compile_wall_ms", best_ms);

    // Interactivity ceiling: a 256-node graph must compile in well
    // under a quarter second even on a loaded CI box.
    if (best_ms > 250.0) {
        std::printf("FAIL: compile took %.1f ms (> 250 ms ceiling)\n",
                    best_ms);
        return 1;
    }
    return 0;
}
