/**
 * @file
 * Experiment E14 (Fig 16): median wmma.load / wmma.mma / wmma.store
 * latency versus matrix size, with and without shared memory.  The
 * paper's headline: staging operands through shared memory improves
 * median wmma.load latency by over 100x at large sizes.
 *
 * K is capped at 256 for the largest sizes: per-instruction latency
 * medians stabilize within a few K iterations, and the cap keeps the
 * cycle-level simulation tractable (DESIGN.md section 4).
 */

#include <cstdio>

#include "bench_util.h"
#include "kernels/gemm_kernels.h"

using namespace tcsim;

namespace {

double
median_of(const LaunchStats& s, std::initializer_list<MacroClass> classes)
{
    Histogram h;
    for (MacroClass mc : classes) {
        auto it = s.macro_latency.find(mc);
        if (it == s.macro_latency.end())
            continue;
        for (double v : it->second.samples())
            h.add(v);
    }
    return h.empty() ? 0.0 : h.median();
}

}  // namespace

int
main()
{
    std::printf("Fig 16: median WMMA instruction latency vs matrix size\n");
    std::printf("('with' = shared-memory kernel, 'w/o' = operands streamed "
                "from global memory)\n\n");

    TextTable tbl;
    tbl.set_header({"size", "load_with", "load_wo", "mma_with", "mma_wo",
                    "store_with", "store_wo"});

    std::vector<double> load_with, load_wo;
    for (int size : {64, 128, 256, 512, 1024, 2048}) {
        const int kdim = std::min(size, 256);

        GemmKernelConfig cfg;
        cfg.m = cfg.n = size;
        cfg.k = kdim;
        cfg.functional = false;
        GemmProblem<float> prob(size, size, kdim, cfg.a_layout, cfg.b_layout);

        Gpu gpu1(bench::titan_v());
        GemmBuffers b1 = prob.upload(&gpu1.mem());
        LaunchStats with = gpu1.launch(make_wmma_gemm_shared(cfg, b1));

        Gpu gpu2(bench::titan_v());
        GemmBuffers b2 = prob.upload(&gpu2.mem());
        LaunchStats wo = gpu2.launch(make_wmma_gemm_naive(cfg, b2));

        double lw = median_of(with, {MacroClass::kWmmaLoadA,
                                     MacroClass::kWmmaLoadB});
        double lo = median_of(wo, {MacroClass::kWmmaLoadA,
                                   MacroClass::kWmmaLoadB});
        load_with.push_back(lw);
        load_wo.push_back(lo);
        tbl.add_row({std::to_string(size), fmt_double(lw, 0),
                     fmt_double(lo, 0),
                     fmt_double(median_of(with, {MacroClass::kWmmaMma}), 0),
                     fmt_double(median_of(wo, {MacroClass::kWmmaMma}), 0),
                     fmt_double(median_of(with, {MacroClass::kWmmaStoreD}),
                                0),
                     fmt_double(median_of(wo, {MacroClass::kWmmaStoreD}),
                                0)});
    }
    bench::print_table(tbl);

    double gain_small = load_wo.front() / load_with.front();
    double gain_large = load_wo.back() / load_with.back();
    std::printf("\nwmma.load median gain from shared memory: %.1fx at %d, "
                "%.1fx at %d\n",
                gain_small, 64, gain_large, 2048);
    std::printf("(the paper reports >100x on hardware at 4096 with a "
                "log-scale plot; the shape -- widening gap as size grows "
                "-- is the reproduced claim)\n");
    return 0;
}
