/**
 * @file
 * Experiment E4 (Table I): average cumulative clock cycles to execute
 * all HMMA instructions up to SET n on Turing, per tile size and
 * precision, from the timing model driven at its issue cadence.
 */

#include <cstdio>

#include "bench_util.h"
#include "sass/hmma_decomposer.h"
#include "sass/hmma_timing.h"
#include "sim/tc/tensor_core_unit.h"

using namespace tcsim;

namespace {

void
row(TextTable* tbl, TileShape shape, TcMode mode, const char* label)
{
    auto paper = turing_set_cumulative_cycles(mode, shape);
    TensorCoreUnit tc(Arch::kTuring);
    WmmaRegs regs{.a = 20, .b = 28, .c = 4, .d = 4};
    auto group = decompose_wmma_mma(Arch::kTuring, mode, shape, regs,
                                    Layout::kRowMajor, Layout::kRowMajor);
    std::vector<std::string> cells = {shape.str(), label};
    uint64_t now = 0;
    for (size_t i = 0; i < 4; ++i) {
        if (i < group.size()) {
            auto done = tc.try_issue(0, group[i], now);
            cells.push_back(std::to_string(paper[i]) + "/" +
                            std::to_string(static_cast<long long>(*done)));
            now += 2;
        } else {
            cells.push_back("-");
        }
    }
    tbl->add_row(cells);
}

}  // namespace

int
main()
{
    std::printf("Table I: cumulative clock cycles per SET on Turing "
                "(paper/model)\n");
    TextTable tbl;
    tbl.set_header({"tile", "precision", "SET1", "SET2", "SET3", "SET4"});
    row(&tbl, kShape16x16x16, TcMode::kMixed, "16b (FP32 acc)");
    row(&tbl, kShape16x16x16, TcMode::kFp16, "16b (FP16 acc)");
    row(&tbl, kShape16x16x16, TcMode::kInt8, "8b");
    row(&tbl, kShape32x8x16, TcMode::kMixed, "16b (FP32 acc)");
    row(&tbl, kShape32x8x16, TcMode::kFp16, "16b (FP16 acc)");
    row(&tbl, kShape32x8x16, TcMode::kInt8, "8b");
    row(&tbl, kShape8x32x16, TcMode::kMixed, "16b (FP32 acc)");
    row(&tbl, kShape8x32x16, TcMode::kFp16, "16b (FP16 acc)");
    row(&tbl, kShape8x32x16, TcMode::kInt8, "8b");
    row(&tbl, kShape8x8x32, TcMode::kInt4, "4b");
    bench::print_table(tbl);

    std::printf("\nObservations reproduced:\n"
                " - 16x16x16 mixed on Turing (99) is slower than Volta "
                "(54).\n"
                " - FP16 accumulation is faster than FP32 accumulation.\n"
                " - 8-bit mode is fastest; 4-bit (experimental) is "
                "slowest.\n");
    return 0;
}
