/**
 * @file
 * Serving-simulator benchmark: the same fixed-seed Poisson trace
 * (seed 2024, 24 requests, mean inter-arrival 20us) over a 6-layer
 * 256-wide MLP, served once with the static batcher (batch 8, 200us
 * timeout) and once with continuous batching (max_batch 8,
 * max_in_flight 2) — the committed scenarios/serving_mlp6_*.json pair
 * as a perf snapshot.  Emits BENCH_serving.json: the cycle-valued
 * latency percentiles and batch counts are integer-exact and gate
 * exactly in CI, the wall-time throughput keys gate within the usual
 * tolerance band.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "driver/scenario.h"
#include "model/model_graph.h"
#include "serve/serving_engine.h"

using namespace tcsim;
using namespace tcsim::serve;

namespace {

model::ModelGraph
mlp6()
{
    model::ModelGraph g;
    g.name = "mlp6";
    g.tokens_per_request = 16;
    g.input_features = 256;
    for (int i = 1; i <= 6; ++i) {
        model::LayerSpec l;
        l.kind = model::LayerKind::kLinear;
        l.name = "fc" + std::to_string(i);
        l.out_features = 256;
        g.layers.push_back(l);
    }
    return g;
}

struct Leg
{
    std::string label;
    ServingReport rep;
    double wall_ms = 0;
};

Leg
run_leg(const std::string& label, const GpuConfig& cfg,
        const BatchingPolicy& policy)
{
    SimOptions sim;
    model::ModelGraph graph = mlp6();
    std::vector<Request> trace = poisson_trace(
        2024, 24,
        static_cast<double>(driver::us_to_cycles(20.0, cfg.clock_ghz)));
    bench::Timer t;
    ServingResult res = run_serving(cfg, sim, graph, trace, policy);
    Leg leg;
    leg.label = label;
    leg.rep = res.report;
    leg.wall_ms = t.ms();
    return leg;
}

}  // namespace

int
main()
{
    std::printf("Inference serving: static vs continuous batching, "
                "fixed-seed Poisson trace over a 6-layer MLP\n\n");

    GpuConfig cfg = bench::titan_v_slice(8);
    StaticBatcher st(8, driver::us_to_cycles(200.0, cfg.clock_ghz));
    ContinuousBatcher ct(8, 2);
    Leg s = run_leg("static (batch 8, 200us timeout)", cfg, st);
    Leg c = run_leg("continuous (max_batch 8, in_flight 2)", cfg, ct);

    TextTable tbl;
    tbl.set_header({"policy", "batches", "p50", "p99", "busy", "wall ms"});
    for (const Leg* leg : {&s, &c}) {
        tbl.add_row({leg->label, std::to_string(leg->rep.batches),
                     std::to_string(leg->rep.latency.latency_p50),
                     std::to_string(leg->rep.latency.latency_p99),
                     fmt_double(100.0 * leg->rep.busy_frac, 1) + "%",
                     fmt_double(leg->wall_ms, 1)});
    }
    bench::print_table(tbl);

    const double p99_gain = static_cast<double>(s.rep.latency.latency_p99) /
                            static_cast<double>(c.rep.latency.latency_p99);
    std::printf("\ncontinuous p99 speedup over static: %.2fx\n", p99_gain);

    bench::JsonEmitter json("serving");
    json.add("static_batch_count", s.rep.batches);
    json.add("static_latency_p50_cycles",
             static_cast<double>(s.rep.latency.latency_p50));
    json.add("static_latency_p99_cycles",
             static_cast<double>(s.rep.latency.latency_p99));
    json.add("static_queue_wait_p99_cycles",
             static_cast<double>(s.rep.latency.queue_wait_p99));
    json.add("static_makespan_cycles",
             static_cast<double>(s.rep.makespan_cycles));
    json.add("static_busy_cycles", static_cast<double>(s.rep.busy_cycles));
    json.add("continuous_batch_count", c.rep.batches);
    json.add("continuous_latency_p50_cycles",
             static_cast<double>(c.rep.latency.latency_p50));
    json.add("continuous_latency_p99_cycles",
             static_cast<double>(c.rep.latency.latency_p99));
    json.add("continuous_queue_wait_p99_cycles",
             static_cast<double>(c.rep.latency.queue_wait_p99));
    json.add("continuous_makespan_cycles",
             static_cast<double>(c.rep.makespan_cycles));
    json.add("continuous_busy_cycles",
             static_cast<double>(c.rep.busy_cycles));
    json.add("continuous_p99_speedup", p99_gain);
    json.add("static_wall_ms", s.wall_ms);
    json.add("continuous_wall_ms", c.wall_ms);
    return 0;
}
