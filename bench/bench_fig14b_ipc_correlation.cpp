/**
 * @file
 * Experiment E11 (Fig 14b): instructions-per-cycle correlation of
 * CUTLASS-style GEMM kernels, simulator versus the Titan V stand-in.
 * The paper reports 99.6% IPC correlation.
 *
 * The hardware IPC of each point uses the kernel's *exact* dynamic
 * instruction count (a static program property, identical on real
 * hardware) divided by the analytical model's predicted cycles.
 */

#include <cstdio>

#include "bench_util.h"
#include "cutlass/gemm.h"
#include "metrics/metrics.h"

using namespace tcsim;

int
main()
{
    std::printf("Fig 14b: CUTLASS GEMM IPC correlation, GPGPU-Sim-style "
                "simulator vs Titan V model\n\n");

    hwref::TitanVModel hw(bench::titan_v());
    std::vector<metrics::IpcPoint> points;

    struct Config
    {
        int bm, bn, bk, wm, wn;
        bool pipe;
    };
    const Config configs[] = {
        {64, 64, 16, 32, 32, false}, {64, 64, 32, 32, 32, true},
        {128, 64, 32, 32, 32, true}, {64, 128, 32, 32, 64, true},
        {128, 128, 32, 32, 64, true}, {128, 128, 32, 64, 64, false},
    };

    for (TcMode mode : {TcMode::kMixed, TcMode::kFp16}) {
        for (const Config& c : configs) {
            for (int size : {256, 512, 1024}) {
                if (size % c.bm || size % c.bn || size % c.bk)
                    continue;
                cutlass::GemmTemplate t;
                t.mode = mode;
                t.block_m = c.bm;
                t.block_n = c.bn;
                t.block_k = c.bk;
                t.warp_m = c.wm;
                t.warp_n = c.wn;
                t.double_buffer = c.pipe;

                Gpu gpu(bench::titan_v());
                LaunchStats s;
                if (mode == TcMode::kMixed) {
                    GemmProblem<float> prob(size, size, size, t.a_layout,
                                            t.b_layout);
                    GemmBuffers buf = prob.upload(&gpu.mem());
                    s = gpu.launch(
                        cutlass::make_gemm(t, size, size, size, buf, false));
                } else {
                    GemmProblem<half> prob(size, size, size, t.a_layout,
                                           t.b_layout);
                    GemmBuffers buf = prob.upload(&gpu.mem());
                    s = gpu.launch(
                        cutlass::make_gemm(t, size, size, size, buf, false));
                }

                hwref::GemmWorkload w;
                w.family = hwref::KernelFamily::kCutlass;
                w.mode = mode;
                w.m = w.n = w.k = size;
                w.block_m = c.bm;
                w.block_n = c.bn;
                w.block_k = c.bk;
                w.warp_m = c.wm;
                w.warp_n = c.wn;
                w.warps_per_cta = t.warps_per_cta();
                w.double_buffer = c.pipe;
                hwref::HwPrediction p = hw.predict(w);

                metrics::IpcPoint pt;
                pt.label = t.name() + "@" + std::to_string(size);
                pt.hw_ipc = static_cast<double>(s.instructions) / p.cycles;
                pt.sim_ipc = s.ipc;
                points.push_back(pt);
            }
        }
    }

    bench::print_table(metrics::scatter_table("IPC scatter", points));
    metrics::CorrelationReport r = metrics::correlate(points);
    std::printf("\nIPC correlation: %.2f%% over %zu kernels "
                "(paper: 99.60%%)\n",
                r.correlation_pct, r.points);
    std::printf("mean abs rel error: %.2f%%, rel std-dev: %.2f%%\n",
                r.mean_abs_rel_err_pct, r.rel_stddev_pct);
    return 0;
}
