/**
 * @file
 * Experiment E5 (Table II): octet composition and the operand
 * subtiles each octet accesses, derived from the fragment maps and
 * the step-compute geometry.
 */

#include <cstdio>

#include "bench_util.h"
#include "sass/hmma_decomposer.h"

using namespace tcsim;

int
main()
{
    std::printf("Table II: octet composition and elements accessed\n\n");
    TextTable tbl;
    tbl.set_header({"octet", "threadgroups", "matrix A", "matrix B"});
    for (int octet = 0; octet < kOctetsPerWarp; ++octet) {
        SubtileRange a = volta_octet_a_range(octet);
        SubtileRange b = volta_octet_b_range(octet);
        char abuf[48], bbuf[48], tgs[16];
        std::snprintf(abuf, sizeof(abuf), "[%d:%d, %d:%d]", a.row0, a.row1,
                      a.col0, a.col1);
        std::snprintf(bbuf, sizeof(bbuf), "[%d:%d, %d:%d]", b.row0, b.row1,
                      b.col0, b.col1);
        std::snprintf(tgs, sizeof(tgs), "%d and %d", octet, octet + 4);
        tbl.add_row({std::to_string(octet), tgs, abuf, bbuf});
    }
    bench::print_table(tbl);

    // Cross-check: the union of all step computations of the octet's
    // two threadgroups stays exactly within the Table II footprint.
    std::printf("\ncross-check vs per-step geometry (mixed precision): ");
    bool ok = true;
    for (int octet = 0; octet < 4; ++octet) {
        SubtileRange a = volta_octet_a_range(octet);
        SubtileRange b = volta_octet_b_range(octet);
        for (int tg : {octet, octet + 4}) {
            for (int set = 0; set < 4; ++set) {
                for (int step = 0; step < 4; ++step) {
                    auto sc = volta_step_compute(TcMode::kMixed, tg, set,
                                                 step);
                    ok = ok && sc.a.row0 >= a.row0 && sc.a.row1 <= a.row1;
                    ok = ok && sc.b.col0 >= b.col0 && sc.b.col1 <= b.col1;
                }
            }
        }
    }
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
