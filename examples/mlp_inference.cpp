/**
 * @file
 * Domain example: forward pass of a two-layer MLP (batch GEMM chain)
 * in mixed precision on the simulated tensor cores -- the inference
 * workload class that motivated Turing's tensor core extensions.
 *
 *   H = X  x W1 + B1   (batch x hidden)
 *   Y = H' x W2 + B2   (batch x classes), H' = relu(H) in FP16
 */

#include <cstdio>

#include "cutlass/gemm.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

/** One dense layer as a GEMM on the simulator. */
LaunchStats
dense_layer(Gpu* gpu, const HostMatrix<half>& x, const HostMatrix<half>& w,
            HostMatrix<half>* y, const char* name)
{
    const int m = x.rows(), k = x.cols(), n = w.cols();

    cutlass::GemmTemplate t;
    t.mode = TcMode::kFp16;
    t.block_m = t.block_n = 64;
    t.block_k = 32;
    t.warp_m = t.warp_n = 32;

    GemmBuffers buf;
    auto& mem = gpu->mem();
    buf.a = mem.alloc(x.size_bytes());
    buf.b = mem.alloc(w.size_bytes());
    HostMatrix<half> bias(m, n);
    bias.fill([](int, int c) { return half(0.01f * (c % 7)); });
    buf.c = mem.alloc(bias.size_bytes());
    buf.d = mem.alloc(bias.size_bytes());
    mem.write(buf.a, x.data(), x.size_bytes());
    mem.write(buf.b, w.data(), w.size_bytes());
    mem.write(buf.c, bias.data(), bias.size_bytes());

    LaunchStats s = gpu->launch(cutlass::make_gemm(t, m, n, k, buf));
    mem.read(buf.d, y->data(), y->size_bytes());
    std::printf("%-8s %4dx%-4dx%-4d  %8llu cycles  IPC %6.1f  %5.1f "
                "TFLOPS\n",
                name, m, n, k, static_cast<unsigned long long>(s.cycles),
                s.ipc,
                s.tflops(2.0 * m * n * static_cast<double>(k),
                         gpu->config().clock_ghz));
    return s;
}

}  // namespace

int
main()
{
    std::printf("MLP inference on simulated Volta tensor cores "
                "(FP16 mode)\n\n");
    const int batch = 256, input = 512, hidden = 512, classes = 64;

    Gpu gpu(titan_v_config());

    HostMatrix<half> x(batch, input);
    x.fill([](int r, int c) {
        return half(0.5f * static_cast<float>((r * 31 + c * 7) % 17) / 17.0f);
    });
    HostMatrix<half> w1(input, hidden);
    w1.fill([](int r, int c) {
        return half(0.1f * static_cast<float>((r + 3 * c) % 11 - 5) / 11.0f);
    });
    HostMatrix<half> w2(hidden, classes);
    w2.fill([](int r, int c) {
        return half(0.1f * static_cast<float>((2 * r + c) % 13 - 6) / 13.0f);
    });

    HostMatrix<half> h(batch, hidden);
    LaunchStats l1 = dense_layer(&gpu, x, w1, &h, "layer1");

    // ReLU on the host (the activation is not the modeled subject).
    h.fill([&](int r, int c) {
        half v = h.at(r, c);
        return v.to_float() > 0.0f ? v : half(0.0f);
    });

    HostMatrix<half> y(batch, classes);
    LaunchStats l2 = dense_layer(&gpu, h, w2, &y, "layer2");

    uint64_t total = l1.cycles + l2.cycles;
    std::printf("\nend-to-end: %llu cycles = %.1f us at %.2f GHz\n",
                static_cast<unsigned long long>(total),
                static_cast<double>(total) / (gpu.config().clock_ghz * 1e3),
                gpu.config().clock_ghz);
    std::printf("logits[0][0..3] = %.3f %.3f %.3f %.3f\n",
                y.at(0, 0).to_float(), y.at(0, 1).to_float(),
                y.at(0, 2).to_float(), y.at(0, 3).to_float());
    return 0;
}
