/**
 * @file
 * Events & synchronization walkthrough: a fork-join pipeline built
 * with the CUDA-runtime-style API —
 *
 *   - Stream::record / Stream::wait chain a producer GEMM into two
 *     concurrent consumer branches and a joining head kernel;
 *   - Event::elapsed_cycles times the branch phase, the analog of
 *     cudaEventElapsedTime;
 *   - Stream::add_callback fires a host-side hook when the producer
 *     retires;
 *   - Gpu::run_until advances the run incrementally (a service-style
 *     resumable simulation), and Gpu::synchronize(event) finishes the
 *     phase of interest before the full drain.
 */

#include <cstdio>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

KernelDesc
gemm(Gpu* gpu, int m, int n, int k, const char* name)
{
    GemmKernelConfig cfg;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.functional = false;
    GemmProblem<float> prob(m, n, k, cfg.a_layout, cfg.b_layout);
    GemmBuffers buf = prob.upload(&gpu->mem());
    KernelDesc kd = make_wmma_gemm_shared(cfg, buf);
    kd.name = name;
    return kd;
}

}  // namespace

int
main()
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 8;  // Underfill the chip so branches overlap.
    Gpu gpu(cfg);

    Stream& producer = gpu.create_stream();
    Stream& branch_a = gpu.create_stream();
    Stream& branch_b = gpu.create_stream();

    Event& fork = gpu.create_event("fork");
    Event& a_done = gpu.create_event("a_done");
    Event& b_done = gpu.create_event("b_done");

    // Producer: one conv-shaped GEMM, then the fork point.
    producer.enqueue(gemm(&gpu, 128, 128, 128, "conv"));
    producer.add_callback([](uint64_t cycle) {
        std::printf("[callback] producer drained at cycle %llu\n",
                    static_cast<unsigned long long>(cycle));
    });
    producer.record(fork);

    // Two consumer branches, gated on the fork event.
    branch_a.wait(fork);
    branch_a.enqueue(gemm(&gpu, 64, 128, 128, "branch_a"));
    branch_a.record(a_done);

    branch_b.wait(fork);
    branch_b.enqueue(gemm(&gpu, 64, 128, 128, "branch_b"));
    branch_b.record(b_done);

    // Join: the head kernel waits for both branches.
    producer.wait(a_done);
    producer.wait(b_done);
    producer.enqueue(gemm(&gpu, 64, 64, 256, "head"));

    // Advance incrementally: peek at the first 15k cycles...
    EngineStats peek = gpu.run_until(15000);
    std::printf("after run_until(15000): %zu kernel(s) retired, engine "
                "paused at cycle %llu\n",
                peek.kernels.size(),
                static_cast<unsigned long long>(peek.current_cycle));

    // ...then finish the branch phase and time it with events.
    gpu.synchronize(a_done);
    gpu.synchronize(b_done);
    uint64_t branch_phase = Event::elapsed_cycles(
        fork, a_done.cycle() > b_done.cycle() ? a_done : b_done);
    std::printf("branch phase (fork -> slower branch): %llu cycles\n",
                static_cast<unsigned long long>(branch_phase));

    // Drain the join and report per-kernel windows.
    EngineStats es = gpu.run();
    for (const LaunchStats& k : es.kernels)
        std::printf("  %-9s stream %d  [%8llu, %8llu]  ipc %.2f\n",
                    k.kernel.c_str(), k.stream,
                    static_cast<unsigned long long>(k.start_cycle),
                    static_cast<unsigned long long>(k.finish_cycle), k.ipc);
    std::printf("total: %llu cycles (%llu stalled cycles skipped by the "
                "event-driven loop)\n",
                static_cast<unsigned long long>(es.cycles),
                static_cast<unsigned long long>(es.skipped_cycles));

    // The branches must have overlapped: same start cycle.
    const LaunchStats *a = nullptr, *b = nullptr;
    for (const LaunchStats& k : es.kernels) {
        if (k.kernel == "branch_a")
            a = &k;
        if (k.kernel == "branch_b")
            b = &k;
    }
    if (!a || !b || a->start_cycle != b->start_cycle) {
        std::printf("FAIL: branches did not overlap\n");
        return 1;
    }
    std::printf("OK: branches forked together at cycle %llu\n",
                static_cast<unsigned long long>(a->start_cycle));
    return 0;
}
