/**
 * @file
 * Quickstart: simulate a mixed-precision WMMA GEMM on the modeled
 * Titan V, verify the result against the host reference, and print
 * the headline statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

int
main()
{
    // A modeled Titan V: 80 SMs, 640 tensor cores, 125 TFLOPS peak.
    Gpu gpu(titan_v_config());
    std::printf("GPU: %s, %d SMs, %d tensor cores, %.1f TFLOPS peak\n",
                gpu.config().name.c_str(), gpu.config().num_sms,
                gpu.config().total_tensor_cores(),
                gpu.config().peak_tensor_tflops());

    // D = A x B + C with FP16 operands and FP32 accumulation.
    const int m = 256, n = 256, k = 256;
    GemmProblem<float> problem(m, n, k, Layout::kRowMajor, Layout::kColMajor);
    GemmBuffers buffers = problem.upload(&gpu.mem());

    GemmKernelConfig cfg;
    cfg.m = m;
    cfg.n = n;
    cfg.k = k;
    cfg.mode = TcMode::kMixed;
    cfg.a_layout = Layout::kRowMajor;
    cfg.b_layout = Layout::kColMajor;

    LaunchStats stats = gpu.launch(make_wmma_gemm_shared(cfg, buffers));

    double err = problem.verify(gpu.mem(), buffers.d);
    std::printf("\nkernel %s: %llu cycles, %llu instructions, IPC %.1f\n",
                stats.kernel.c_str(),
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.instructions),
                stats.ipc);
    std::printf("HMMA instructions: %llu (%d per wmma.mma)\n",
                static_cast<unsigned long long>(stats.hmma_instructions), 16);
    std::printf("achieved: %.1f TFLOPS\n",
                stats.tflops(problem.flops(), gpu.config().clock_ghz));
    std::printf("max relative error vs host reference: %.2e %s\n", err,
                err < 1e-3 ? "(PASS)" : "(FAIL)");
    std::printf("wmma.mma median latency: %.0f cycles\n",
                stats.macro_latency.at(MacroClass::kWmmaMma).median());
    return err < 1e-3 ? 0 : 1;
}
