/**
 * @file
 * Domain example: 2-D convolution lowered to GEMM via im2col and
 * executed on the simulated tensor cores -- the standard way
 * frameworks map convolutions onto cuDNN/cuBLAS GEMM kernels.
 *
 *   input  : C_in x H x W feature map (FP16)
 *   filter : C_out x C_in x R x S (FP16)
 *   im2col : (H'W') x (C_in R S) patch matrix
 *   GEMM   : (H'W' x C_in R S) x (C_in R S x C_out)
 */

#include <cstdio>
#include <vector>

#include "kernels/gemm_kernels.h"
#include "sim/gpu.h"

using namespace tcsim;

int
main()
{
    const int cin = 16, h = 30, w = 30, r = 3, s = 3, cout = 64;
    const int ho = h - r + 1, wo = w - s + 1;  // valid padding

    std::printf("conv2d %dx%dx%d * %dx%dx%dx%d via im2col + WMMA GEMM\n",
                cin, h, w, cout, cin, r, s);

    // Synthetic input and filters.
    std::vector<float> input(static_cast<size_t>(cin) * h * w);
    for (size_t i = 0; i < input.size(); ++i)
        input[i] = 0.25f * static_cast<float>(i % 13) / 13.0f;
    std::vector<float> filter(static_cast<size_t>(cout) * cin * r * s);
    for (size_t i = 0; i < filter.size(); ++i)
        filter[i] = 0.5f * static_cast<float>(static_cast<int>(i % 7) - 3) /
                    7.0f;

    // im2col on the host: rows = output pixels, cols = patch elements.
    // Dimensions are padded up to multiples of 16 for the WMMA tiles.
    const int gm = (ho * wo + 15) / 16 * 16;
    const int gk = (cin * r * s + 15) / 16 * 16;
    const int gn = (cout + 15) / 16 * 16;
    HostMatrix<half> a(gm, gk);
    a.fill([&](int row, int col) {
        if (row >= ho * wo || col >= cin * r * s)
            return half(0.0f);
        int oy = row / wo, ox = row % wo;
        int c = col / (r * s), ry = (col / s) % r, rx = col % s;
        return half(input[static_cast<size_t>(c) * h * w + (oy + ry) * w +
                          (ox + rx)]);
    });
    HostMatrix<half> b(gk, gn);
    b.fill([&](int row, int col) {
        if (col >= cout || row >= cin * r * s)
            return half(0.0f);
        return half(filter[static_cast<size_t>(col) * cin * r * s + row]);
    });

    // Run the GEMM on the simulator.
    Gpu gpu(titan_v_config());
    GemmBuffers buf;
    buf.a = gpu.mem().alloc(a.size_bytes());
    buf.b = gpu.mem().alloc(b.size_bytes());
    HostMatrix<float> zero(gm, gn);
    buf.c = gpu.mem().alloc(zero.size_bytes());
    buf.d = gpu.mem().alloc(zero.size_bytes());
    gpu.mem().write(buf.a, a.data(), a.size_bytes());
    gpu.mem().write(buf.b, b.data(), b.size_bytes());
    gpu.mem().write(buf.c, zero.data(), zero.size_bytes());

    GemmKernelConfig cfg;
    cfg.m = gm;
    cfg.n = gn;
    cfg.k = gk;
    LaunchStats st = gpu.launch(make_wmma_gemm_naive(cfg, buf));

    // Verify one output pixel against a direct convolution.
    HostMatrix<float> d(gm, gn);
    gpu.mem().read(buf.d, d.data(), d.size_bytes());
    int oy = 5, ox = 7, oc = 3;
    float ref = 0.0f;
    for (int c = 0; c < cin; ++c)
        for (int ry = 0; ry < r; ++ry)
            for (int rx = 0; rx < s; ++rx)
                ref += input[static_cast<size_t>(c) * h * w + (oy + ry) * w +
                             ox + rx] *
                       filter[static_cast<size_t>(oc) * cin * r * s +
                              c * r * s + ry * s + rx];
    float got = d.at(oy * wo + ox, oc);

    std::printf("GEMM %dx%dx%d: %llu cycles, IPC %.1f, %.1f TFLOPS\n", gm,
                gn, gk, static_cast<unsigned long long>(st.cycles), st.ipc,
                st.tflops(2.0 * gm * gn * static_cast<double>(gk),
                          gpu.config().clock_ghz));
    std::printf("output[%d,%d,ch%d] = %.4f (direct conv: %.4f) %s\n", oy, ox,
                oc, got, ref,
                std::abs(got - ref) < 2e-2 ? "PASS" : "FAIL");
    return std::abs(got - ref) < 2e-2 ? 0 : 1;
}
