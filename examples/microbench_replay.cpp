/**
 * @file
 * Replays the paper's reverse-engineering methodology (Section III)
 * on the simulator:
 *
 *  - Fig 4: the "print your fragment" microbenchmark that uncovers
 *    the element -> thread mapping;
 *  - Fig 5: NOP-patching all but one HMMA;
 *  - Fig 6: reading SR_CLOCKLO around an HMMA subsequence and storing
 *    the deltas.
 */

#include <cstdio>

#include "kernels/gemm_kernels.h"
#include "kernels/kernel_builder.h"
#include "sass/hmma_timing.h"
#include "sass/microbench.h"
#include "sim/gpu.h"
#include "tensor/fragment.h"

using namespace tcsim;

int
main()
{
    // --- Fig 4: decode the fragment of a few threads -------------------
    std::printf("Fig 4 replay: 'THREAD%%d CONTAINS ...' for wmma.load.a\n");
    FragmentMap map = volta_fragment_map(WmmaOperand::kA, TcMode::kMixed,
                                         Layout::kRowMajor);
    // Initialize A[r][c] = r*16 + c so printed values reveal the map.
    for (int tid : {0, 1, 4, 31}) {
        const auto& elems = map.fragment(tid).elems;
        std::printf("THREAD%-2d CONTAINS", tid);
        for (size_t i = 0; i < 4; ++i)
            std::printf(" %.0f",
                        static_cast<double>(elems[i].row * 16 + elems[i].col));
        std::printf(" ... (%zu elements)\n", elems.size());
    }

    // --- Fig 6: clock injection around the first n HMMAs ---------------
    std::printf("\nFig 6 replay: CS2R around the first n HMMAs, measured "
                "on the simulator\n");
    for (size_t n : {size_t{1}, size_t{4}, size_t{8}, size_t{16}}) {
        // One warp, one wmma.mma; read the clock before HMMA 1 and
        // after HMMA n, then store both values to global memory.
        Gpu gpu([] {
            GpuConfig c = titan_v_config();
            c.num_sms = 1;
            return c;
        }());
        uint64_t out = gpu.mem().alloc(256);

        KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1, 1,
                                         1, 1);
        auto base = kd.trace;
        kd.functional = true;
        kd.regs_per_thread = 64;  // room for the clock registers
        kd.trace = [base, n, out](int c, int w) {
            WarpProgram prog = base(c, w);
            // Patch the group down to n HMMAs (as radare2 patching
            // does) and time them.
            truncate_hmma_group(&prog, n);
            inject_clocks(&prog, n, /*reg_start=*/60, /*reg_end=*/61);
            // Store both clock registers for host inspection.
            WarpBuilder post(Arch::kVolta);
            std::array<uint64_t, kWarpSize> a0{}, a1{};
            a0.fill(kNoAddr);
            a1.fill(kNoAddr);
            a0[0] = out;
            a1[0] = out + 4;
            post.mem(Opcode::kStg, 60, 32, a0);
            post.mem(Opcode::kStg, 61, 32, a1);
            WarpProgram tail = post.take();
            // Insert before the final EXIT.
            prog.insert(prog.end() - 1, tail.begin(), tail.end() - 1);
            return prog;
        };
        gpu.launch(kd);
        uint32_t t0 = gpu.mem().read_u32(out);
        uint32_t t1 = gpu.mem().read_u32(out + 4);
        std::printf("  n=%2zu: clock delta = %u cycles (paper cumulative: "
                    "%d)\n",
                    n, t1 - t0,
                    volta_cumulative_cycles(TcMode::kMixed)[n - 1]);
    }

    // --- Fig 5: NOP patching --------------------------------------------
    std::printf("\nFig 5 replay: disassembly after patching (keep HMMA 5)\n");
    KernelDesc kd = make_hmma_stress(Arch::kVolta, TcMode::kMixed, 1, 1, 1,
                                     1);
    WarpProgram prog = kd.trace(0, 0);
    patch_nops_except(&prog, 4);
    int shown = 0;
    for (const auto& inst : prog) {
        std::printf("  %s\n", inst.disasm().c_str());
        if (++shown >= 10)
            break;
    }
    std::printf("  ...\n");
    return 0;
}
