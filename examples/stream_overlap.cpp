/**
 * @file
 * Stream overlap demo: four small WMMA GEMMs that underfill the chip
 * individually, launched (a) back-to-back on one stream and (b) on
 * four concurrent streams.  Prints per-kernel cycle windows, IPC and
 * TFLOPS plus aggregate statistics, showing how the stream-aware
 * engine extends the paper's single-launch evaluation (Figs 14-17) to
 * realistic overlapped schedules.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/stream_overlap
 */

#include <cstdio>
#include <string>
#include <vector>

#include "kernels/gemm_kernels.h"
#include "metrics/metrics.h"
#include "sim/gpu.h"

using namespace tcsim;

namespace {

struct Workload
{
    std::string name;
    int m, n, k;
    GemmProblem<float> prob;
    GemmBuffers buf;
    double flops;

    Workload(const std::string& name_, int m_, int n_, int k_)
        : name(name_), m(m_), n(n_), k(k_),
          prob(m_, n_, k_, Layout::kRowMajor, Layout::kRowMajor),
          flops(prob.flops())
    {
    }

    KernelDesc kernel(Gpu* gpu)
    {
        GemmKernelConfig cfg;
        cfg.m = m;
        cfg.n = n;
        cfg.k = k;
        cfg.functional = false;  // timing study
        KernelDesc kd = make_wmma_gemm_shared(cfg, buf);
        kd.name = name;
        return kd;
    }
};

GpuConfig
chip()
{
    GpuConfig cfg = titan_v_config();
    cfg.num_sms = 8;  // a Titan V slice the small GEMMs underfill
    return cfg;
}

std::vector<Workload>
make_workloads()
{
    std::vector<Workload> w;
    w.emplace_back("gemm_128", 128, 128, 128);
    w.emplace_back("gemm_128b", 128, 128, 128);
    w.emplace_back("gemm_64x256", 64, 256, 128);
    w.emplace_back("gemm_192", 192, 192, 64);
    return w;
}

EngineStats
run_schedule(bool overlapped, double* total_flops)
{
    Gpu gpu(chip());
    std::vector<Workload> work = make_workloads();
    *total_flops = 0.0;
    for (Workload& w : work) {
        w.buf = w.prob.upload(&gpu.mem());
        *total_flops += w.flops;
        Stream& s = overlapped ? gpu.create_stream() : gpu.default_stream();
        s.enqueue(w.kernel(&gpu));
    }
    return gpu.run();
}

void
print_run(const char* title, const EngineStats& es, double total_flops,
          double clock_ghz)
{
    std::printf("\n=== %s ===\n", title);
    std::vector<Workload> work = make_workloads();
    std::vector<double> flops;
    for (const LaunchStats& k : es.kernels) {
        double f = 0.0;
        for (const Workload& w : work)
            if (w.name == k.kernel)
                f = w.flops;
        flops.push_back(f);
    }
    std::printf("%s", metrics::launch_table(es.kernels, flops, clock_ghz)
                          .render()
                          .c_str());
    std::printf("aggregate: %llu cycles, IPC %.2f, %.2f TFLOPS "
                "(%llu ticks simulated, %llu stalled cycles skipped)\n",
                static_cast<unsigned long long>(es.cycles), es.ipc,
                es.tflops(total_flops, clock_ghz),
                static_cast<unsigned long long>(es.ticks),
                static_cast<unsigned long long>(es.skipped_cycles));
}

}  // namespace

int
main()
{
    GpuConfig cfg = chip();
    std::printf("Stream overlap on a %d-SM %s slice\n", cfg.num_sms,
                cfg.name.c_str());

    double flops_serial = 0.0, flops_overlap = 0.0;
    EngineStats serial = run_schedule(false, &flops_serial);
    EngineStats overlap = run_schedule(true, &flops_overlap);

    print_run("serial: one stream, back-to-back", serial, flops_serial,
              cfg.clock_ghz);
    print_run("overlapped: one stream per kernel", overlap, flops_overlap,
              cfg.clock_ghz);

    double speedup = static_cast<double>(serial.cycles) /
                     static_cast<double>(overlap.cycles);
    std::printf("\noverlap speedup: %.2fx (%llu -> %llu cycles)\n", speedup,
                static_cast<unsigned long long>(serial.cycles),
                static_cast<unsigned long long>(overlap.cycles));
    return overlap.cycles < serial.cycles ? 0 : 1;
}
