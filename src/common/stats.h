#pragma once
/**
 * @file
 * Simulation statistics: counters, histograms, and the summary math
 * the evaluation harness needs (mean/median/percentiles, Pearson
 * correlation, normalized deviation).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tcsim {

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(uint64_t delta = 1) { value_ += delta; }
    uint64_t value() const { return value_; }
    const std::string& name() const { return name_; }
    void reset() { value_ = 0; }

  private:
    std::string name_;
    uint64_t value_ = 0;
};

/**
 * A sample accumulator retaining all observations.
 *
 * The paper's evaluation plots latency distributions (Fig 15) and
 * median-vs-size series (Fig 16); retaining samples keeps percentile
 * queries exact at the scales we simulate.
 */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(std::string name) : name_(std::move(name)) {}

    void add(double sample) { samples_.push_back(sample); }
    /** Append every sample of @p other (in its recorded order). */
    void merge(const Histogram& other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }
    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;
    double median() const;
    /** p in [0,100]; linear interpolation between ranks. */
    double percentile(double p) const;
    double stddev() const;

    const std::vector<double>& samples() const { return samples_; }
    const std::string& name() const { return name_; }
    void reset() { samples_.clear(); }

  private:
    std::string name_;
    std::vector<double> samples_;
};

namespace stats {

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/**
 * Mean absolute relative error of y versus reference x, in percent.
 * The paper reports "standard deviation of less than 5%" for Fig 14a;
 * we report both this and rel_stddev below.
 */
double mean_abs_rel_error_pct(const std::vector<double>& ref,
                              const std::vector<double>& measured);

/** Standard deviation of the per-point relative error, in percent. */
double rel_stddev_pct(const std::vector<double>& ref,
                      const std::vector<double>& measured);

double mean(const std::vector<double>& v);
double median(std::vector<double> v);

}  // namespace stats

/**
 * A registry grouping counters/histograms for one simulation run so
 * reports can enumerate them in a stable order.
 */
class StatRegistry
{
  public:
    Counter& counter(const std::string& name);
    Histogram& histogram(const std::string& name);

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    void reset();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

}  // namespace tcsim
