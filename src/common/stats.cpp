#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tcsim {

double
Histogram::min() const
{
    TCSIM_CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Histogram::max() const
{
    TCSIM_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Histogram::mean() const
{
    TCSIM_CHECK(!samples_.empty());
    double sum = 0.0;
    for (double s : samples_)
        sum += s;
    return sum / static_cast<double>(samples_.size());
}

double
Histogram::median() const
{
    return percentile(50.0);
}

double
Histogram::percentile(double p) const
{
    TCSIM_CHECK(!samples_.empty());
    TCSIM_CHECK(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
Histogram::stddev() const
{
    TCSIM_CHECK(!samples_.empty());
    double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

namespace stats {

double
mean(const std::vector<double>& v)
{
    TCSIM_CHECK(!v.empty());
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

double
median(std::vector<double> v)
{
    TCSIM_CHECK(!v.empty());
    std::sort(v.begin(), v.end());
    size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
pearson(const std::vector<double>& x, const std::vector<double>& y)
{
    TCSIM_CHECK(x.size() == y.size());
    TCSIM_CHECK(x.size() >= 2);
    double mx = mean(x);
    double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        double dx = x[i] - mx;
        double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
mean_abs_rel_error_pct(const std::vector<double>& ref,
                       const std::vector<double>& measured)
{
    TCSIM_CHECK(ref.size() == measured.size());
    TCSIM_CHECK(!ref.empty());
    double acc = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        TCSIM_CHECK(ref[i] != 0.0);
        acc += std::abs(measured[i] - ref[i]) / std::abs(ref[i]);
    }
    return 100.0 * acc / static_cast<double>(ref.size());
}

double
rel_stddev_pct(const std::vector<double>& ref,
               const std::vector<double>& measured)
{
    TCSIM_CHECK(ref.size() == measured.size());
    TCSIM_CHECK(!ref.empty());
    std::vector<double> rel;
    rel.reserve(ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        TCSIM_CHECK(ref[i] != 0.0);
        rel.push_back((measured[i] - ref[i]) / ref[i]);
    }
    double m = mean(rel);
    double acc = 0.0;
    for (double r : rel)
        acc += (r - m) * (r - m);
    return 100.0 * std::sqrt(acc / static_cast<double>(rel.size()));
}

}  // namespace stats

Counter&
StatRegistry::counter(const std::string& name)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, Counter(name)).first;
    return it->second;
}

Histogram&
StatRegistry::histogram(const std::string& name)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(name)).first;
    return it->second;
}

void
StatRegistry::reset()
{
    counters_.clear();
    histograms_.clear();
}

}  // namespace tcsim
