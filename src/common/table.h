#pragma once
/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harness to
 * print the rows/series each paper table and figure reports.
 */

#include <string>
#include <vector>

namespace tcsim {

/** Column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    void set_header(std::vector<std::string> header);
    void add_row(std::vector<std::string> row);

    /** Cap column @p col at @p max_width characters when rendering;
     *  longer cells are truncated with a ".." tail so one oversized
     *  cell (e.g. a long scenario name) cannot push every other
     *  column past the terminal edge and wrap rows out of alignment.
     *  Applies to render() only; render_csv() keeps full cells. */
    void set_max_col_width(size_t col, size_t max_width);

    /** Render with column alignment; returns the formatted block. */
    std::string render() const;

    /** Render as CSV (header first if present). */
    std::string render_csv() const;

    size_t num_rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    /** Per-column render width caps (0 = unlimited). */
    std::vector<size_t> max_width_;
};

/** Format a double with fixed precision (helper for table cells). */
std::string fmt_double(double v, int precision = 2);

}  // namespace tcsim
