#pragma once
/**
 * @file
 * Typed simulation errors.
 *
 * Errors reachable from *scenario input* (an over-subscribed kernel,
 * an unsatisfiable configuration, a run that exceeds its cycle or
 * wall-clock budget) throw these instead of calling fatal()/exit(1),
 * so a batch driver can contain one bad scenario to a structured
 * error row while the rest of the batch completes.  Internal
 * invariant violations still panic (common/logging.h).
 */

#include <stdexcept>
#include <string>

namespace tcsim {

/** A scenario asked the simulator for something it cannot do (e.g. a
 *  kernel whose per-CTA resources exceed any SM).  Recoverable at the
 *  driver level: report and move on. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string& what) : std::runtime_error(what)
    {
    }
};

/** The run watchdog fired: the simulation exceeded its cycle budget
 *  (SimOptions::max_cycles), its wall-clock budget
 *  (SimOptions::wall_budget_ms), or the chip wedged with fault-hung
 *  kernels nobody will ever retire.  The message carries a diagnostic
 *  dump: busy-SM list, resident grids, and the event wait graph. */
class SimHangError : public SimError
{
  public:
    explicit SimHangError(const std::string& what) : SimError(what) {}
};

}  // namespace tcsim
