#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace tcsim {

void
TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> row)
{
    if (!header_.empty())
        TCSIM_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::set_max_col_width(size_t col, size_t max_width)
{
    if (max_width_.size() <= col)
        max_width_.resize(col + 1, 0);
    // ".." needs two characters; anything tighter cannot truncate.
    max_width_[col] = std::max<size_t>(max_width, 3);
}

std::string
TextTable::render() const
{
    // A cell longer than its column's cap is truncated with a ".."
    // tail so the cap holds exactly.
    auto clip = [&](size_t col, const std::string& cell) {
        size_t cap = col < max_width_.size() ? max_width_[col] : 0;
        if (cap == 0 || cell.size() <= cap)
            return cell;
        return cell.substr(0, cap - 2) + "..";
    };

    // Compute per-column widths across header and all rows.
    size_t cols = header_.size();
    for (const auto& r : rows_)
        cols = std::max(cols, r.size());
    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], clip(i, r[i]).size());
    };
    if (!header_.empty())
        widen(header_);
    for (const auto& r : rows_)
        widen(r);

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i) {
            std::string cell = clip(i, r[i]);
            out << cell;
            if (i + 1 < r.size())
                out << std::string(width[i] - cell.size() + 2, ' ');
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t i = 0; i < cols; ++i)
            total += width[i] + (i + 1 < cols ? 2 : 0);
        out << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
    return out.str();
}

std::string
TextTable::render_csv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& r) {
        for (size_t i = 0; i < r.size(); ++i) {
            out << r[i];
            if (i + 1 < r.size())
                out << ",";
        }
        out << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_)
        emit(r);
    return out.str();
}

std::string
fmt_double(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

}  // namespace tcsim
