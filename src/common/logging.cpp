#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tcsim {

namespace {
LogLevel g_level = LogLevel::kInform;
}  // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

namespace detail {

std::string
vformat(const char* fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
format(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
log(LogLevel level, const char* tag, const std::string& msg)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "[tcsim %s] %s\n", tag, msg.c_str());
}

}  // namespace detail

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::log(LogLevel::kError, "PANIC", msg);
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::log(LogLevel::kError, "FATAL", msg);
    std::exit(1);
}

void
warn(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::log(LogLevel::kWarn, "warn", msg);
}

void
inform(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::log(LogLevel::kInform, "info", msg);
}

void
debug(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::log(LogLevel::kDebug, "debug", msg);
}

}  // namespace tcsim
