#pragma once
/**
 * @file
 * Logging and error-reporting utilities in the gem5 style.
 *
 * panic()  — internal invariant violated (a tcsim bug); aborts.
 * fatal()  — simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments); exits with code 1.
 * warn()   — something may be modeled approximately.
 * inform() — status messages.
 */

#include <cstdarg>
#include <string>

namespace tcsim {

/** Severity levels understood by the logger. */
enum class LogLevel { kDebug, kInform, kWarn, kError };

/** Global log threshold; messages below it are suppressed. */
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
/** printf-style formatting into a std::string. */
std::string vformat(const char* fmt, va_list ap);
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log(LogLevel level, const char* tag, const std::string& msg);
}  // namespace detail

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warn about approximate or suspicious behaviour. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message (suppressed unless log level is kDebug). */
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Check an invariant; panics with location info when it fails.
 * Used instead of assert() so the check survives NDEBUG builds.
 */
#define TCSIM_CHECK(cond)                                                     \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::tcsim::panic("check failed at %s:%d: %s", __FILE__, __LINE__,   \
                           #cond);                                            \
        }                                                                     \
    } while (0)

}  // namespace tcsim
