/**
 * @file
 * Deterministic, seedable random number generators for the simulator.
 *
 * Everything stochastic in the repo (Poisson arrival traces for the
 * serving simulator, randomized test fixtures) must be bit-identical
 * across platforms, `--jobs` counts and `--sim-threads` settings, so
 * std::mt19937 / std::*_distribution are off limits: libstdc++ and
 * libc++ are free to (and do) implement the distributions differently.
 * These generators are specified to the bit:
 *
 *  - splitmix64 — Steele/Lea/Flood's 64-bit mixer.  One multiply-xor
 *    pipeline per draw; used directly and to expand user seeds into
 *    well-mixed initial states.
 *  - Pcg32 — O'Neill's PCG-XSH-RR 64/32.  Small, fast, and supports
 *    independent streams via the odd increment, so every consumer
 *    (trace generator, per-test fixture) gets its own sequence from
 *    one scenario-level seed.
 *
 * The first 64 draws of canonical seeds are pinned by tests/rng_test
 * — any change to these functions is a breaking change to every
 * committed serving scenario band and bench baseline.
 */
#pragma once

#include <cmath>
#include <cstdint>

namespace tcsim {

/** One splitmix64 step: advances @p state and returns the next draw. */
inline uint64_t
splitmix64_next(uint64_t& state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Stateful splitmix64 stream. */
class SplitMix64 {
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    uint64_t next() { return splitmix64_next(state_); }

  private:
    uint64_t state_;
};

/**
 * PCG-XSH-RR 64/32 (O'Neill).  64-bit LCG state, 32-bit output via
 * xorshift-high + random rotation.  `stream` selects one of 2^63
 * independent sequences; the same (seed, stream) pair always yields
 * the same draws.
 */
class Pcg32 {
  public:
    explicit Pcg32(uint64_t seed, uint64_t stream = 0)
        : state_(0), inc_((stream << 1) | 1u)
    {
        next_u32();
        state_ += seed;
        next_u32();
    }

    uint32_t next_u32()
    {
        const uint64_t old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        const uint32_t xorshifted =
            static_cast<uint32_t>(((old >> 18) ^ old) >> 27);
        const uint32_t rot = static_cast<uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    uint64_t next_u64()
    {
        const uint64_t hi = next_u32();
        return (hi << 32) | next_u32();
    }

    /** Uniform double in [0, 1) with the full 53 bits of mantissa. */
    double uniform()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /**
     * Exponentially distributed draw with the given mean (inverse-CDF
     * method).  uniform() < 1 so the log argument stays in (0, 1].
     */
    double exponential(double mean)
    {
        return -mean * std::log(1.0 - uniform());
    }

  private:
    uint64_t state_;
    uint64_t inc_;
};

}  // namespace tcsim
