#pragma once
/**
 * @file
 * Kernel launch descriptor: grid geometry, per-CTA resources, and the
 * per-warp trace generator the simulator executes (the role nvcc +
 * the PTX/SASS toolchain plays for GPGPU-Sim).
 */

#include <cstdint>
#include <functional>
#include <string>

#include "isa/instruction.h"

namespace tcsim {

/** A kernel launch: geometry, resources, and trace generator. */
struct KernelDesc
{
    std::string name = "kernel";
    /** Number of thread blocks (CTAs) in the grid. */
    int grid_ctas = 1;
    /** Warps per CTA. */
    int warps_per_cta = 1;
    /** Shared memory per CTA, bytes. */
    uint32_t shared_mem_bytes = 0;
    /** Architectural registers per thread (bounds scoreboard state). */
    int regs_per_thread = 64;
    /** Execute instruction semantics (loads/stores/HMMA move real
     *  data).  Disable for timing-only runs at large problem sizes. */
    bool functional = true;

    /**
     * Timing fingerprint of the generated program: every builder
     * parameter the trace depends on (family, shape, precision,
     * layouts, CTA geometry, arch), set by the kernel builders.  Two
     * descriptors with equal timing_key produce identical instruction
     * traces modulo operand addresses.  Empty = uncacheable: the
     * replay cache (SimOptions::replay_mode) always simulates such
     * launches in detail.  Renaming a kernel (desc.name) does not
     * change its timing_key.
     */
    std::string timing_key;

    /** Produces the instruction trace of warp @p warp_id (within the
     *  CTA) of CTA @p cta_id.  Called lazily at CTA dispatch. */
    std::function<WarpProgram(int cta_id, int warp_id)> trace;
};

}  // namespace tcsim
