#pragma once
/**
 * @file
 * Timing model of the sub-core's tensor core pair (Section IV of the
 * paper): each warp drives two tensor cores (one per pair of octets);
 * HMMA groups issue with the measured cadence of Fig 9 / Table I and
 * occupy the pair until the last HMMA has been accepted.
 */

#include <cstdint>
#include <optional>

#include "isa/instruction.h"
#include "sass/hmma_timing.h"
#include "sim/snapshot_io.h"

namespace tcsim {

/** The two tensor cores serving one sub-core. */
class TensorCoreUnit
{
  public:
    /** Idle cycles between consecutive HMMA groups (operand collector
     *  turnaround); calibrated so sustained back-to-back wmma.mma
     *  throughput lands at the paper's measured ~110 of 125 TFLOPS. */
    static constexpr uint64_t kInterGroupGap = 4;

    explicit TensorCoreUnit(Arch arch) : arch_(arch) {}

    /**
     * Attempt to issue @p inst (an HMMA) from warp @p warp at cycle
     * @p now.  Returns the completion cycle on success, std::nullopt
     * when the unit is busy with another warp's group or the issue
     * cadence is not yet satisfied.
     */
    std::optional<uint64_t> try_issue(int warp, const Instruction& inst,
                                      uint64_t now);

    /** True if a group is mid-flight. */
    bool group_active() const { return active_warp_ >= 0; }
    int active_warp() const { return active_warp_; }

    uint64_t groups_issued() const { return groups_issued_; }

    /** Earliest cycle a blocked HMMA could be accepted: the cadence
     *  gate of the active group, or the occupancy boundary for a new
     *  group head (event-driven main loop). */
    uint64_t next_ready() const
    {
        return group_active() ? next_issue_ : unit_free_;
    }

    /** Snapshot support.  The timing-table memo is a derived cache:
     *  load drops it and the next issue repopulates it. */
    void save_state(SnapshotWriter& w) const
    {
        w.i32(active_warp_);
        w.i32(position_);
        w.u64(first_issue_);
        w.u64(next_issue_);
        w.u64(unit_free_);
        w.u64(groups_issued_);
    }

    void load_state(SnapshotReader& r)
    {
        timing_ = nullptr;
        active_warp_ = r.i32();
        position_ = r.i32();
        first_issue_ = r.u64();
        next_issue_ = r.u64();
        unit_free_ = r.u64();
        groups_issued_ = r.u64();
    }

  private:
    /** hmma_timing() for @p info, memoized per unit: the global
     *  timing-table cache sits behind a mutex, and one lookup per
     *  HMMA issue attempt is hot enough to contend when many SMs
     *  tick on worker threads.  Kernels switch shapes rarely, so a
     *  one-entry cache absorbs nearly every lookup. */
    const HmmaTiming& timing_for(const HmmaInfo& info)
    {
        if (timing_ == nullptr || info.mode != timing_mode_ ||
            !(info.shape == timing_shape_)) {
            timing_ = &hmma_timing(arch_, info.mode, info.shape);
            timing_mode_ = info.mode;
            timing_shape_ = info.shape;
        }
        return *timing_;
    }

    Arch arch_;
    const HmmaTiming* timing_ = nullptr;
    TcMode timing_mode_{};
    TileShape timing_shape_{};
    int active_warp_ = -1;
    int position_ = 0;            ///< Next expected HMMA index in group.
    uint64_t first_issue_ = 0;    ///< Cycle the group head issued.
    uint64_t next_issue_ = 0;     ///< Earliest cycle for the next HMMA.
    uint64_t unit_free_ = 0;      ///< Earliest cycle a new group may start.
    uint64_t groups_issued_ = 0;
};

}  // namespace tcsim
