#include "sim/tc/tensor_core_unit.h"

#include "common/logging.h"

namespace tcsim {

std::optional<uint64_t>
TensorCoreUnit::try_issue(int warp, const Instruction& inst, uint64_t now)
{
    TCSIM_CHECK(inst.op == Opcode::kHmma);
    const HmmaInfo& info = inst.hmma;
    const HmmaTiming& timing = timing_for(info);

    if (active_warp_ < 0) {
        // Unit idle: only a group head may start, and only once the
        // previous group has drained its issue slots.
        if (!info.first_in_group || now < unit_free_)
            return std::nullopt;
        first_issue_ = now;
        position_ = 0;
        uint64_t done = now + static_cast<uint64_t>(
                                  timing.completion_offsets[0]);
        if (info.last_in_group) {
            // Single-HMMA group (Turing INT4).
            unit_free_ = now + static_cast<uint64_t>(timing.issue_interval);
            ++groups_issued_;
        } else {
            active_warp_ = warp;
            position_ = 1;
            next_issue_ = now + static_cast<uint64_t>(timing.issue_interval);
        }
        return done;
    }

    // Group in flight: only the owning warp's next HMMA may proceed.
    if (warp != active_warp_ || info.first_in_group)
        return std::nullopt;
    if (now < next_issue_)
        return std::nullopt;

    TCSIM_CHECK(position_ < timing.group_size());
    uint64_t done = first_issue_ + static_cast<uint64_t>(
                                       timing.completion_offsets[position_]);
    // The measured cumulative-cycle tables are relative to the group
    // head; if scheduling gaps delayed this HMMA past its nominal
    // slot, completion is no earlier than issue + pipeline depth.
    uint64_t min_done =
        now + static_cast<uint64_t>(timing.completion_offsets[0]);
    if (done < min_done)
        done = min_done;

    ++position_;
    next_issue_ = now + static_cast<uint64_t>(timing.issue_interval);
    if (info.last_in_group) {
        active_warp_ = -1;
        // Back-to-back groups pay a small issue gap (operand collector
        // turnaround); this is what caps sustained throughput at
        // ~110/125 TFLOPS in the paper's max-perf measurement.
        unit_free_ = next_issue_ + kInterGroupGap;
        ++groups_issued_;
    }
    return done;
}

}  // namespace tcsim
