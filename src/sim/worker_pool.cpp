#include "sim/worker_pool.h"

namespace tcsim {

WorkerPool::WorkerPool(int threads)
{
    int extra = threads - 1;
    threads_.reserve(static_cast<size_t>(extra > 0 ? extra : 0));
    for (int i = 0; i < extra; ++i)
        threads_.emplace_back([this] { worker_main(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

void
WorkerPool::for_n(size_t n, const std::function<void(size_t)>& fn)
{
    if (n == 0)
        return;
    if (threads_.empty()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_n_ = n;
        batch_fn_ = &fn;
        next_.store(0, std::memory_order_relaxed);
        running_ = static_cast<int>(threads_.size());
        ++epoch_;
    }
    start_cv_.notify_all();
    // The caller is a worker too: claim indices until the batch is
    // exhausted, then wait for the pool threads to drain theirs.
    for (;;) {
        size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            break;
        fn(i);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    batch_fn_ = nullptr;
}

void
WorkerPool::worker_main()
{
    uint64_t seen = 0;
    for (;;) {
        const std::function<void(size_t)>* fn;
        size_t n;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(
                lock, [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            fn = batch_fn_;
            n = batch_n_;
        }
        for (;;) {
            size_t i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            (*fn)(i);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
        }
        done_cv_.notify_one();
    }
}

}  // namespace tcsim
