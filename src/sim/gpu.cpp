#include "sim/gpu.h"

#include "common/logging.h"

namespace tcsim {

Gpu::Gpu(GpuConfig cfg, SimOptions opts)
    : cfg_(std::move(cfg)), opts_(opts),
      mem_(std::make_unique<MemorySystem>(cfg_)),
      engine_(cfg_, opts_, mem_.get(), &executors_)
{
    // Host callbacks may create streams and enqueue onto them
    // mid-run; the engine re-fetches the live stream set through this
    // hook so that work joins the run instead of being dropped.
    engine_.set_stream_source([this] { return active_streams(); });
}

Gpu::~Gpu() = default;

Stream&
Gpu::create_stream()
{
    streams_.push_back(
        std::make_unique<Stream>(static_cast<int>(streams_.size()) + 1));
    return *streams_.back();
}

Stream&
Gpu::default_stream()
{
    if (!default_stream_)
        default_stream_ = std::make_unique<Stream>(0);
    return *default_stream_;
}

Event&
Gpu::create_event(std::string name)
{
    int id = static_cast<int>(events_.size());
    if (name.empty())
        name = "event" + std::to_string(id);
    events_.push_back(std::make_unique<Event>(id, std::move(name)));
    return *events_.back();
}

std::vector<Stream*>
Gpu::active_streams()
{
    std::vector<Stream*> active;
    active.reserve(streams_.size() + 1);
    if (default_stream_)
        active.push_back(default_stream_.get());
    for (auto& s : streams_)
        active.push_back(s.get());
    return active;
}

EngineStats
Gpu::run()
{
    return engine_.run(active_streams());
}

EngineStats
Gpu::run_until(uint64_t cycle)
{
    return engine_.run_until(active_streams(), cycle);
}

EngineStats
Gpu::synchronize(const Stream& stream)
{
    return engine_.synchronize(active_streams(), stream);
}

EngineStats
Gpu::synchronize(const Event& event)
{
    return engine_.synchronize(active_streams(), event);
}

LaunchStats
Gpu::launch(const KernelDesc& kernel)
{
    // Isolated single-kernel run on a private stream and engine: fresh
    // SM and cache timing state, exactly the legacy lock-step
    // semantics.  A paused resumable run shares the memory system, so
    // interleaving launch() with it would corrupt the run's timing.
    if (engine_.active())
        throw std::runtime_error(
            "Gpu::launch() called while a resumable run is paused; finish "
            "it with run()/synchronize() first");
    Stream solo(/*id=*/0);
    solo.enqueue(kernel);
    ExecutionEngine engine(cfg_, opts_, mem_.get(), &executors_);
    EngineStats es = engine.run({&solo});
    TCSIM_CHECK(es.kernels.size() == 1);
    LaunchStats stats = std::move(es.kernels.front());
    // Single-kernel run: the chip-wide stall attribution is the
    // kernel's own.
    stats.stalls = es.stalls;
    return stats;
}

}  // namespace tcsim
