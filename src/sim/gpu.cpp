#include "sim/gpu.h"

#include <cstring>

#include "common/logging.h"

namespace tcsim {

Gpu::Gpu(GpuConfig cfg, SimOptions opts)
    : cfg_(std::move(cfg)), opts_(opts),
      mem_(std::make_unique<MemorySystem>(cfg_))
{
}

Gpu::~Gpu() = default;

Stream&
Gpu::create_stream()
{
    streams_.push_back(
        std::make_unique<Stream>(static_cast<int>(streams_.size()) + 1));
    return *streams_.back();
}

Stream&
Gpu::default_stream()
{
    if (!default_stream_)
        default_stream_ = std::make_unique<Stream>(0);
    return *default_stream_;
}

EngineStats
Gpu::run()
{
    std::vector<Stream*> active;
    active.reserve(streams_.size() + 1);
    if (default_stream_)
        active.push_back(default_stream_.get());
    for (auto& s : streams_)
        active.push_back(s.get());
    ExecutionEngine engine(cfg_, opts_, mem_.get(), &executors_);
    return engine.run(active);
}

LaunchStats
Gpu::launch(const KernelDesc& kernel)
{
    // Isolated single-kernel run on a private stream: fresh SM and
    // cache timing state, exactly the legacy lock-step semantics.
    Stream solo(/*id=*/0);
    solo.enqueue(kernel);
    ExecutionEngine engine(cfg_, opts_, mem_.get(), &executors_);
    EngineStats es = engine.run({&solo});
    TCSIM_CHECK(es.kernels.size() == 1);
    LaunchStats stats = std::move(es.kernels.front());
    // Single-kernel run: the chip-wide stall attribution is the
    // kernel's own.
    std::memcpy(stats.stalls, es.stalls, sizeof(stats.stalls));
    return stats;
}

}  // namespace tcsim
