#include "sim/gpu.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace tcsim {

Gpu::Gpu(GpuConfig cfg, SimOptions opts)
    : cfg_(std::move(cfg)), opts_(opts),
      mem_(std::make_unique<MemorySystem>(cfg_))
{
}

Gpu::~Gpu() = default;

LaunchStats
Gpu::launch(const KernelDesc& kernel)
{
    TCSIM_CHECK(kernel.grid_ctas > 0);
    TCSIM_CHECK(kernel.trace != nullptr);

    mem_->reset_timing();

    GridState grid;
    grid.kernel = &kernel;

    RunStatsCollector collector;

    // SM timing state is per-launch; functional memory persists.
    int active_sms = std::min(cfg_.num_sms, kernel.grid_ctas);
    std::vector<std::unique_ptr<SM>> sms;
    sms.reserve(static_cast<size_t>(cfg_.num_sms));
    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms.push_back(std::make_unique<SM>(i, cfg_, mem_.get(), &grid,
                                           &collector, &executors_,
                                           opts_.scheduler));
    }
    (void)active_sms;

    uint64_t cycle = 0;
    bool busy = true;
    while (busy || grid.pending()) {
        busy = false;
        for (auto& sm : sms) {
            sm->cycle(cycle);
            busy = busy || sm->busy();
        }
        ++cycle;
        if (cycle > opts_.max_cycles) {
            panic("kernel %s exceeded max_cycles=%llu", kernel.name.c_str(),
                  static_cast<unsigned long long>(opts_.max_cycles));
        }
    }

    LaunchStats stats;
    stats.kernel = kernel.name;
    stats.cycles = cycle;
    stats.instructions = collector.instructions;
    stats.hmma_instructions = collector.hmma_instructions;
    stats.ipc = cycle > 0 ? static_cast<double>(collector.instructions) /
                                static_cast<double>(cycle)
                          : 0.0;
    stats.mem = mem_->stats();
    stats.macro_latency = std::move(collector.macro_latency);
    for (const auto& sm : sms)
        sm->add_stalls(stats.stalls);
    return stats;
}

}  // namespace tcsim
