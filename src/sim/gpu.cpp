#include "sim/gpu.h"

#include <cstring>
#include <map>
#include <stdexcept>

#include "common/logging.h"

namespace tcsim {

Gpu::Gpu(GpuConfig cfg, SimOptions opts)
    : cfg_(std::move(cfg)), opts_(opts),
      mem_(std::make_unique<MemorySystem>(cfg_)),
      engine_(cfg_, opts_, mem_.get(), &executors_)
{
    // Host callbacks may create streams and enqueue onto them
    // mid-run; the engine re-fetches the live stream set through this
    // hook so that work joins the run instead of being dropped.
    engine_.set_stream_source([this] { return active_streams(); });
}

Gpu::Gpu(GpuConfig cfg, SimOptions opts, const FaultSpec& faults)
    : Gpu(std::move(cfg), opts)
{
    if (!faults.enabled)
        return;
    fault_plan_ = std::make_unique<FaultPlan>(faults, cfg_);
    engine_.set_fault_plan(fault_plan_.get());
    mem_->set_fault_plan(fault_plan_.get());
}

Gpu::~Gpu() = default;

Stream&
Gpu::create_stream()
{
    streams_.push_back(
        std::make_unique<Stream>(static_cast<int>(streams_.size()) + 1));
    return *streams_.back();
}

Stream&
Gpu::default_stream()
{
    if (!default_stream_)
        default_stream_ = std::make_unique<Stream>(0);
    return *default_stream_;
}

Event&
Gpu::create_event(std::string name)
{
    int id = static_cast<int>(events_.size());
    if (name.empty())
        name = "event" + std::to_string(id);
    events_.push_back(std::make_unique<Event>(id, std::move(name)));
    return *events_.back();
}

Stream&
Gpu::stream_by_id(int id)
{
    if (id == 0)
        return default_stream();
    if (id < 1 || static_cast<size_t>(id) > streams_.size())
        throw std::out_of_range("no stream with id " + std::to_string(id));
    return *streams_[static_cast<size_t>(id) - 1];
}

Event*
Gpu::find_event(const std::string& name)
{
    for (auto& ev : events_)
        if (ev->name() == name)
            return ev.get();
    return nullptr;
}

std::vector<Stream*>
Gpu::active_streams()
{
    std::vector<Stream*> active;
    active.reserve(streams_.size() + 1);
    if (default_stream_)
        active.push_back(default_stream_.get());
    for (auto& s : streams_)
        active.push_back(s.get());
    return active;
}

EngineStats
Gpu::run()
{
    return engine_.run(active_streams());
}

EngineStats
Gpu::run_until(uint64_t cycle)
{
    return engine_.run_until(active_streams(), cycle);
}

EngineStats
Gpu::synchronize(const Stream& stream)
{
    return engine_.synchronize(active_streams(), stream);
}

EngineStats
Gpu::synchronize(const Event& event)
{
    return engine_.synchronize(active_streams(), event);
}

Snapshot
Gpu::snapshot() const
{
    if (!engine_.active())
        throw SnapshotError(
            "snapshot requires an active run paused between ticks "
            "(advance with run_until() first)");

    Snapshot snap;
    snap.config_hash = hash_config(cfg_);
    snap.scheduler = static_cast<int>(opts_.scheduler);

    // Copy-on-write global-memory image: forks share these bytes.
    auto data = std::make_shared<std::vector<uint8_t>>();
    uint64_t next = 0;
    mem_->global().save_state(&next, data.get());
    snap.gmem_data = std::move(data);
    snap.gmem_next = next;

    SnapshotWriter w;
    mem_->save_state(w);

    w.tag(kTagEvents);
    w.u64(events_.size());
    for (const auto& ev : events_) {
        w.i32(ev->id_);
        w.str(ev->name_);
        w.b(ev->recorded_);
        w.b(ev->complete_);
        w.u64(ev->cycle_);
    }

    // Stream queues.  Launch descriptors go to the kernel side table;
    // records/waits reference events by id.  Host callbacks cannot be
    // captured — refuse rather than silently drop them.
    w.tag(kTagStreams);
    w.b(default_stream_ != nullptr);
    w.u64(streams_.size());
    auto save_stream = [&](const Stream& s) {
        w.i32(s.id_);
        w.u64(s.ops_.size());
        for (const Stream::Op& op : s.ops_) {
            w.u8(static_cast<uint8_t>(op.kind));
            switch (op.kind) {
              case Stream::OpKind::kLaunch:
                w.u32(static_cast<uint32_t>(snap.kernels.size()));
                snap.kernels.push_back(op.kernel);
                break;
              case Stream::OpKind::kRecordEvent:
                w.i32(op.record->id_);
                break;
              case Stream::OpKind::kWaitEvent:
                w.i32(op.wait->id_);
                break;
              case Stream::OpKind::kCallback:
                throw SnapshotError(
                    "stream " + std::to_string(s.id_) +
                    " holds a queued host callback; callbacks are not "
                    "serializable");
            }
        }
    };
    if (default_stream_)
        save_stream(*default_stream_);
    for (const auto& s : streams_)
        save_stream(*s);

    engine_.save_state(w, &snap.kernels);
    w.tag(kTagEnd);
    snap.archive = w.take();
    return snap;
}

void
Gpu::restore(const Snapshot& snap)
{
    if (!snap.valid())
        throw SnapshotError("invalid (empty) snapshot");
    if (snap.version != kSnapshotVersion)
        throw SnapshotError("format version mismatch (snapshot v" +
                            std::to_string(snap.version) + ", this build v" +
                            std::to_string(kSnapshotVersion) + ")");
    if (snap.config_hash != hash_config(cfg_))
        throw SnapshotError(
            "GpuConfig mismatch: snapshots only restore onto an "
            "identically configured GPU");
    if (snap.scheduler != static_cast<int>(opts_.scheduler))
        throw SnapshotError(
            "scheduler policy mismatch (baked into sub-cores at "
            "construction)");

    mem_->global().load_state(snap.gmem_next, *snap.gmem_data);
    SnapshotReader r(snap.archive);
    mem_->load_state(r);

    // Events first: stream ops and the engine reference them.
    // Reconcile by id — ids are dense creation indices on both sides.
    r.tag(kTagEvents);
    uint64_t nevents = r.u64();
    for (uint64_t i = 0; i < nevents; ++i) {
        int id = r.i32();
        if (id != static_cast<int>(i))
            throw SnapshotError("event table not in id order");
        std::string name = r.str();
        if (events_.size() <= i)
            events_.push_back(std::make_unique<Event>(id, std::move(name)));
        Event& ev = *events_[i];
        ev.recorded_ = r.b();
        ev.complete_ = r.b();
        ev.cycle_ = r.u64();
    }
    // Events this Gpu created beyond the snapshot: reset.
    for (size_t i = nevents; i < events_.size(); ++i) {
        events_[i]->recorded_ = false;
        events_[i]->complete_ = false;
        events_[i]->cycle_ = 0;
    }

    // Streams: recreate by id (ids are dense: default 0, created 1..),
    // then refill the op queues.  record()/wait() are bypassed — they
    // would clobber the event state restored above.
    r.tag(kTagStreams);
    bool has_default = r.b();
    uint64_t nstreams = r.u64();
    if (has_default)
        default_stream();
    while (streams_.size() < nstreams)
        create_stream();
    if (default_stream_)
        default_stream_->ops_.clear();
    for (auto& s : streams_)
        s->ops_.clear();
    auto load_stream = [&]() {
        int id = r.i32();
        Stream* s = nullptr;
        if (id == 0)
            s = default_stream_.get();
        else if (id >= 1 && static_cast<size_t>(id) <= streams_.size())
            s = streams_[static_cast<size_t>(id) - 1].get();
        if (s == nullptr || s->id() != id)
            throw SnapshotError("stream id table mismatch");
        uint64_t nops = r.u64();
        for (uint64_t i = 0; i < nops; ++i) {
            uint8_t kind = r.u8();
            s->ops_.emplace_back();
            Stream::Op& op = s->ops_.back();
            op.kind = static_cast<Stream::OpKind>(kind);
            switch (op.kind) {
              case Stream::OpKind::kLaunch: {
                uint32_t ki = r.u32();
                if (ki >= snap.kernels.size())
                    throw SnapshotError("kernel table index out of range");
                op.kernel = snap.kernels[ki];
                break;
              }
              case Stream::OpKind::kRecordEvent: {
                int eid = r.i32();
                if (eid < 0 || static_cast<size_t>(eid) >= events_.size())
                    throw SnapshotError("record event id out of range");
                op.record = events_[static_cast<size_t>(eid)].get();
                break;
              }
              case Stream::OpKind::kWaitEvent: {
                int eid = r.i32();
                if (eid < 0 || static_cast<size_t>(eid) >= events_.size())
                    throw SnapshotError("wait event id out of range");
                op.wait = events_[static_cast<size_t>(eid)].get();
                break;
              }
              case Stream::OpKind::kCallback:
                throw SnapshotError("archive holds a host callback op");
            }
        }
    };
    if (has_default)
        load_stream();
    for (uint64_t i = 0; i < nstreams; ++i)
        load_stream();

    engine_.load_state(r, snap.kernels, active_streams());
    r.tag(kTagEnd);
    if (!r.done())
        throw SnapshotError("trailing bytes after the end tag");
}

TaskGraph::Compiled
Gpu::launch_graph(const TaskGraph& graph,
                  const std::vector<KernelDesc>& kernels)
{
    if (kernels.size() != graph.num_tasks())
        throw std::invalid_argument(
            "launch_graph: " + std::to_string(kernels.size()) +
            " kernels for " + std::to_string(graph.num_tasks()) + " tasks");
    TaskGraph::Compiled plan = graph.compile();

    std::vector<Stream*> streams;
    streams.reserve(static_cast<size_t>(plan.num_streams));
    for (int s = 0; s < plan.num_streams; ++s)
        streams.push_back(&create_stream());

    // Graph-local event table: compiled names may shadow pre-existing
    // events on this Gpu, so waits resolve against the events created
    // here, never through find_event().
    std::map<std::string, Event*> events;
    for (size_t t = 0; t < kernels.size(); ++t) {
        Stream& s = *streams[static_cast<size_t>(plan.stream_of[t] - 1)];
        for (const std::string& w : plan.wait_events[t])
            s.wait(*events.at(w));
        s.enqueue(kernels[t]);
        if (!plan.record_event[t].empty()) {
            Event& ev = create_event(plan.record_event[t]);
            events[plan.record_event[t]] = &ev;
            s.record(ev);
        }
    }
    return plan;
}

LaunchStats
Gpu::launch(const KernelDesc& kernel)
{
    // Isolated single-kernel run on a private stream and engine: fresh
    // SM and cache timing state, exactly the legacy lock-step
    // semantics.  A paused resumable run shares the memory system, so
    // interleaving launch() with it would corrupt the run's timing.
    if (engine_.active())
        throw std::runtime_error(
            "Gpu::launch() called while a resumable run is paused; finish "
            "it with run()/synchronize() first");
    Stream solo(/*id=*/0);
    solo.enqueue(kernel);
    ExecutionEngine engine(cfg_, opts_, mem_.get(), &executors_);
    EngineStats es = engine.run({&solo});
    TCSIM_CHECK(es.kernels.size() == 1);
    LaunchStats stats = std::move(es.kernels.front());
    // Single-kernel run: the chip-wide stall attribution is the
    // kernel's own.
    stats.stalls = es.stalls;
    return stats;
}

}  // namespace tcsim
