#pragma once
/**
 * @file
 * Runtime state of one resident grid (a kernel launch being executed
 * by the engine): the CTA dispenser, per-kernel statistics, and the
 * cycle window the launch occupied.  Shared between the chip-level
 * execution engine (which owns and dispatches grids) and the SM model
 * (which hosts their CTAs and attributes statistics).
 */

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.h"
#include "sim/core/stall.h"
#include "sim/kernel_desc.h"

namespace tcsim {

/**
 * One SM's slice of a grid's statistics.  During the engine's parallel
 * compute phase every SM writes only its own shard, so grids shared by
 * many SMs need no synchronization; the engine aggregates shards in
 * SM-index order, which makes the totals independent of how the SMs
 * were scheduled across worker threads.
 */
struct RunStatsShard
{
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Latency histograms of the WMMA macro classes (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;
    /** Issue-stall cycles attributed to this grid's warps (the warp
     *  that blocked the scheduler belonged to this grid). */
    StallCounts stalls;

    void record_macro(MacroClass mc, uint64_t latency)
    {
        macro_latency[mc].add(static_cast<double>(latency));
    }
};

/** Per-kernel collected statistics, sharded by SM. */
class RunStatsCollector
{
  public:
    /** Grow to at least @p n shards.  Engine thread only: called when
     *  the grid is promoted and whenever the SM array grows, never
     *  concurrently with the parallel tick phase. */
    void ensure_shards(size_t n)
    {
        if (shards_.size() < n)
            shards_.resize(n);
    }

    /** SM @p sm's private slice (the only shard that SM may write). */
    RunStatsShard& shard(int sm) { return shards_[static_cast<size_t>(sm)]; }

    /** Read-only shard access (snapshot serialization). */
    size_t shard_count() const { return shards_.size(); }
    const RunStatsShard& shard_at(size_t i) const { return shards_[i]; }

    uint64_t instructions() const
    {
        uint64_t t = 0;
        for (const RunStatsShard& s : shards_)
            t += s.instructions;
        return t;
    }

    uint64_t hmma_instructions() const
    {
        uint64_t t = 0;
        for (const RunStatsShard& s : shards_)
            t += s.hmma_instructions;
        return t;
    }

    StallCounts stalls() const
    {
        StallCounts t;
        for (const RunStatsShard& s : shards_)
            t.add(s.stalls);
        return t;
    }

    /** Macro-latency histograms merged across shards in SM-index
     *  order (deterministic sample order). */
    std::map<MacroClass, Histogram> merged_macro_latency() const
    {
        std::map<MacroClass, Histogram> merged;
        for (const RunStatsShard& s : shards_)
            for (const auto& [mc, h] : s.macro_latency)
                merged[mc].merge(h);
        return merged;
    }

  private:
    std::vector<RunStatsShard> shards_;
};

/**
 * One resident grid: CTA dispenser plus per-kernel accounting.  Grids
 * from different streams may be resident simultaneously; CTAs of all
 * resident grids compete for SM resources (concurrent kernel
 * execution).
 */
struct GridRun
{
    const KernelDesc* kernel = nullptr;
    /** Engine-unique launch id (also the dispatch priority order). */
    int grid_id = 0;
    /** Stream this launch arrived on. */
    int stream_id = 0;

    int next_cta = 0;   ///< Next CTA id to dispatch.
    int ctas_done = 0;  ///< CTAs fully completed (all warps drained).
    /** CTAs dispatched to shadow SMs (sampled mode): these never ran
     *  in detail, so per-grid instruction counts extrapolate from the
     *  detailed grid_ctas - shadow_ctas fraction at finalize. */
    int shadow_ctas = 0;

    /** Cycle the grid became resident (eligible for dispatch). */
    uint64_t start_cycle = 0;
    /** Cycle the last CTA drained (valid once done()). */
    uint64_t finish_cycle = 0;

    RunStatsCollector stats;

    bool pending() const { return next_cta < kernel->grid_ctas; }
    bool done() const { return ctas_done == kernel->grid_ctas; }
};

}  // namespace tcsim
