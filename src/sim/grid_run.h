#pragma once
/**
 * @file
 * Runtime state of one resident grid (a kernel launch being executed
 * by the engine): the CTA dispenser, per-kernel statistics, and the
 * cycle window the launch occupied.  Shared between the chip-level
 * execution engine (which owns and dispatches grids) and the SM model
 * (which hosts their CTAs and attributes statistics).
 */

#include <cstdint>
#include <map>

#include "common/stats.h"
#include "sim/core/stall.h"
#include "sim/kernel_desc.h"

namespace tcsim {

/** Per-kernel collected statistics (single-threaded simulation). */
struct RunStatsCollector
{
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Latency histograms of the WMMA macro classes (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;
    /** Issue-stall cycles attributed to this grid's warps (the warp
     *  that blocked the scheduler belonged to this grid). */
    StallCounts stalls;

    void record_macro(MacroClass mc, uint64_t latency)
    {
        macro_latency[mc].add(static_cast<double>(latency));
    }
};

/**
 * One resident grid: CTA dispenser plus per-kernel accounting.  Grids
 * from different streams may be resident simultaneously; CTAs of all
 * resident grids compete for SM resources (concurrent kernel
 * execution).
 */
struct GridRun
{
    const KernelDesc* kernel = nullptr;
    /** Engine-unique launch id (also the dispatch priority order). */
    int grid_id = 0;
    /** Stream this launch arrived on. */
    int stream_id = 0;

    int next_cta = 0;   ///< Next CTA id to dispatch.
    int ctas_done = 0;  ///< CTAs fully completed (all warps drained).

    /** Cycle the grid became resident (eligible for dispatch). */
    uint64_t start_cycle = 0;
    /** Cycle the last CTA drained (valid once done()). */
    uint64_t finish_cycle = 0;

    RunStatsCollector stats;

    bool pending() const { return next_cta < kernel->grid_ctas; }
    bool done() const { return ctas_done == kernel->grid_ctas; }
};

}  // namespace tcsim
