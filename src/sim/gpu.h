#pragma once
/**
 * @file
 * Top-level GPU simulator: owns the functional memory and the stream
 * set, and runs queued kernel launches through the stream-aware
 * execution engine, collecting the statistics the paper's evaluation
 * reports (cycles, IPC, WMMA instruction latencies, memory traffic).
 *
 * Two usage models:
 *  - Stream API: create_stream() / Stream::enqueue() / run() — kernels
 *    on different streams execute concurrently when SM occupancy
 *    allows; memory timing persists across launches within the run.
 *  - launch(): single-kernel compatibility wrapper with the legacy
 *    semantics (cold caches, isolated timing), cycle-exact with the
 *    original lock-step simulator.
 */

#include <memory>
#include <vector>

#include "arch/gpu_config.h"
#include "sim/engine.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"
#include "sim/stream.h"

namespace tcsim {

/** The simulated GPU. */
class Gpu
{
  public:
    explicit Gpu(GpuConfig cfg, SimOptions opts = {});
    ~Gpu();

    GpuConfig& config() { return cfg_; }
    const GpuConfig& config() const { return cfg_; }

    /** Device memory (persists across launches and runs). */
    GlobalMemory& mem() { return mem_->global(); }

    /** Create a new stream (an ordered launch queue).  Streams live
     *  as long as the Gpu and may be refilled between runs. */
    Stream& create_stream();

    /** The implicit stream 0 (created on first use).  Always distinct
     *  from streams returned by create_stream(). */
    Stream& default_stream();

    /** Run every launch queued on every stream to completion:
     *  launches within a stream run back-to-back, launches on
     *  different streams overlap when occupancy allows. */
    EngineStats run();

    /** Run @p kernel alone to completion and return its statistics.
     *  Compatibility wrapper: cold caches, isolated timing — does not
     *  touch kernels queued on this Gpu's streams. */
    LaunchStats launch(const KernelDesc& kernel);

  private:
    GpuConfig cfg_;
    SimOptions opts_;
    std::unique_ptr<MemorySystem> mem_;
    ExecutorCache executors_;
    /** The implicit stream (id 0), lazily created. */
    std::unique_ptr<Stream> default_stream_;
    /** Streams from create_stream(), ids 1.. */
    std::vector<std::unique_ptr<Stream>> streams_;
};

}  // namespace tcsim
