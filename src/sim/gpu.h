#pragma once
/**
 * @file
 * Top-level GPU simulator: owns the functional memory, the stream and
 * event sets, and a persistent execution engine, and runs queued
 * kernel launches through the stream-aware engine, collecting the
 * statistics the paper's evaluation reports (cycles, IPC, WMMA
 * instruction latencies, memory traffic).
 *
 * Usage models (CUDA-runtime shaped):
 *  - Stream API: create_stream() / Stream::enqueue() / run() — kernels
 *    on different streams execute concurrently when SM occupancy
 *    allows; memory timing persists across launches within the run.
 *  - Events: create_event() + Stream::record()/wait() build dependency
 *    DAGs across streams; Event::elapsed_cycles() times sub-windows.
 *  - Incremental runs: run_until(cycle) pauses a run at a cycle bound,
 *    synchronize(stream|event) drains one stream or waits for one
 *    event; the paused run resumes — and accepts newly enqueued work —
 *    on the next run()/run_until()/synchronize() call.
 *  - launch(): single-kernel compatibility wrapper with the legacy
 *    semantics (cold caches, isolated timing), cycle-exact with the
 *    original lock-step simulator.
 */

#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_config.h"
#include "sim/engine.h"
#include "sim/event.h"
#include "sim/fault/fault_plan.h"
#include "sim/graph/task_graph.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"
#include "sim/snapshot.h"
#include "sim/stream.h"

namespace tcsim {

/** The simulated GPU. */
class Gpu
{
  public:
    explicit Gpu(GpuConfig cfg, SimOptions opts = {});
    /** With fault injection: @p faults compiles into a FaultPlan
     *  against @p cfg before any run begins (throws SimError on an
     *  unsatisfiable plan).  All faults are timing-only; see
     *  sim/fault/fault_plan.h. */
    Gpu(GpuConfig cfg, SimOptions opts, const FaultSpec& faults);
    ~Gpu();

    GpuConfig& config() { return cfg_; }
    const GpuConfig& config() const { return cfg_; }

    /** Device memory (persists across launches and runs). */
    GlobalMemory& mem() { return mem_->global(); }

    /** Create a new stream (an ordered operation queue).  Streams live
     *  as long as the Gpu and may be refilled between runs. */
    Stream& create_stream();

    /** The implicit stream 0 (created on first use).  Always distinct
     *  from streams returned by create_stream(). */
    Stream& default_stream();

    /** Create an event for Stream::record()/wait() dependency edges
     *  and sub-window timing.  Events live as long as the Gpu;
     *  @p name defaults to "event<id>". */
    Event& create_event(std::string name = "");

    /** The stream with dense id @p id (0 = the default stream, which
     *  this creates on first use like default_stream()).  Throws
     *  std::out_of_range when no such stream exists — ids are creation
     *  order, the scheme restore() reconciles by. */
    Stream& stream_by_id(int id);

    /** The first event named @p name, or nullptr.  Restored snapshots
     *  recreate events with their captured names, so forks look
     *  prefix-recorded events up by name. */
    Event* find_event(const std::string& name);

    /** Run every operation queued on every stream to completion:
     *  launches within a stream run back-to-back, launches on
     *  different streams overlap when occupancy allows, and waits
     *  gate work on recorded events.  Resumes a paused run first. */
    EngineStats run();

    /** Advance the current run (beginning one if needed) while the
     *  engine clock is <= @p cycle, then pause.  Returns progress so
     *  far; the advance that drains everything returns the complete
     *  run's statistics.  Work may be enqueued between advances, and
     *  a bounded advance pauses early (instead of throwing) when the
     *  run blocks on an event only host action can record. */
    EngineStats run_until(uint64_t cycle);

    /** Advance until @p stream has no queued work and no live launch
     *  (cudaStreamSynchronize). */
    EngineStats synchronize(const Stream& stream);

    /** Advance until @p event completes (cudaEventSynchronize).
     *  Throws EngineDeadlockError when every stream drains without
     *  the event completing. */
    EngineStats synchronize(const Event& event);

    /** A paused, resumable run is in progress. */
    bool run_active() const { return engine_.active(); }

    /** Engine clock of the active run (0 when idle). */
    uint64_t current_cycle() const { return engine_.now(); }

    /** Jump the paused run's clock forward to @p cycle without
     *  simulating the gap.  Requires a run paused with the chip fully
     *  idle (only host-resolvable event waits outstanding); throws
     *  std::runtime_error otherwise.  See
     *  ExecutionEngine::advance_idle_to. */
    void advance_idle_to(uint64_t cycle)
    {
        engine_.advance_idle_to(cycle);
    }

    /** Abandon @p stream's queued and resident work without a
     *  statistics entry (host-side hung-batch containment; see
     *  ExecutionEngine::kill_stream). */
    void kill_stream(Stream& stream) { engine_.kill_stream(&stream); }

    /** True when @p stream can be kill_stream()ed safely (see
     *  ExecutionEngine::stream_quiescent). */
    bool stream_quiescent(const Stream& stream) const
    {
        return engine_.stream_quiescent(&stream);
    }

    /** Fault injection active on this Gpu. */
    bool faults_enabled() const
    {
        return fault_plan_ && fault_plan_->enabled();
    }

    /** Injected-fault telemetry (zeros when faults are off). */
    FaultCounters fault_counters() const
    {
        return fault_plan_ ? fault_plan_->counters() : FaultCounters{};
    }

    /**
     * Compile @p graph and enqueue one kernel per task: fresh streams
     * are created for the compiled stream set, events are created and
     * recorded/waited exactly as the plan dictates, and kernels are
     * enqueued in declaration order (kernels[t] is task t's launch).
     * Nothing runs yet — follow with run()/run_until() as usual.
     * Returns the compiled plan for inspection.  Throws TaskGraphError
     * on rejected graphs, std::invalid_argument on a kernel-count
     * mismatch.
     */
    TaskGraph::Compiled launch_graph(const TaskGraph& graph,
                                     const std::vector<KernelDesc>& kernels);

    /** Run @p kernel alone to completion and return its statistics.
     *  Compatibility wrapper: cold caches, isolated timing — does not
     *  touch operations queued on this Gpu's streams. */
    LaunchStats launch(const KernelDesc& kernel);

    /**
     * Capture the complete simulation state of the active run: global
     * memory (copy-on-write), the timing hierarchy, events, stream
     * queues, and the engine's run state.  Requires a run paused
     * between ticks (pause with run_until()); a Gpu restored from the
     * result and advanced produces bit-identical statistics to this
     * Gpu advanced directly.  Queued host callbacks are not
     * serializable — snapshot() throws SnapshotError if any stream
     * holds one.
     */
    Snapshot snapshot() const;

    /**
     * Replace this Gpu's simulation state with @p snap.  The target
     * must have an identical GpuConfig and the same scheduler policy
     * (other SimOptions — sim_threads, idle_skip, bounds — may
     * differ).  Restoring onto a freshly constructed Gpu recreates
     * streams and events by id; restoring onto the capturing Gpu
     * rewinds it.  Throws SnapshotError on version, config, or
     * archive mismatches; the Gpu is unspecified (do not resume) if
     * restore throws after validation passed.
     */
    void restore(const Snapshot& snap);

  private:
    /** All streams, default stream first (engine dispatch order). */
    std::vector<Stream*> active_streams();

    GpuConfig cfg_;
    SimOptions opts_;
    /** Compiled fault plan (null = healthy chip).  Constructed before
     *  the engine so warp caps apply at SM construction. */
    std::unique_ptr<FaultPlan> fault_plan_;
    std::unique_ptr<MemorySystem> mem_;
    ExecutorCache executors_;
    /** The implicit stream (id 0), lazily created. */
    std::unique_ptr<Stream> default_stream_;
    /** Streams from create_stream(), ids 1.. */
    std::vector<std::unique_ptr<Stream>> streams_;
    /** Events from create_event(), stable addresses. */
    std::vector<std::unique_ptr<Event>> events_;
    /** The persistent engine: holds the active run's RunState. */
    ExecutionEngine engine_;
};

}  // namespace tcsim
