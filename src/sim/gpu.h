#pragma once
/**
 * @file
 * Top-level GPU simulator: owns the memory system and SMs, dispatches
 * CTAs, and runs launched kernels to completion, collecting the
 * statistics the paper's evaluation reports (cycles, IPC, WMMA
 * instruction latencies, memory traffic).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "arch/gpu_config.h"
#include "common/stats.h"
#include "sim/core/scheduler.h"
#include "sim/core/sm.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"

namespace tcsim {

/** Result of one kernel launch. */
struct LaunchStats
{
    std::string kernel;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Chip-wide instructions per cycle. */
    double ipc = 0.0;
    MemStats mem;
    /** Latency distributions per WMMA macro class (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;
    /** Issue-stall attribution summed over sub-cores
     *  (index = SubCore::StallReason). */
    uint64_t stalls[8] = {0, 0, 0, 0, 0, 0, 0, 0};

    /** Achieved TFLOPS for a GEMM of the given FLOP count. */
    double tflops(double flops, double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return flops / seconds / 1e12;
    }
};

/** Options controlling one simulation run. */
struct SimOptions
{
    SchedulerPolicy scheduler = SchedulerPolicy::kGto;
    /** Abort runaway simulations after this many cycles. */
    uint64_t max_cycles = 2'000'000'000;
};

/** The simulated GPU. */
class Gpu
{
  public:
    explicit Gpu(GpuConfig cfg, SimOptions opts = {});
    ~Gpu();

    GpuConfig& config() { return cfg_; }
    const GpuConfig& config() const { return cfg_; }

    /** Device memory (persists across launches). */
    GlobalMemory& mem() { return mem_->global(); }

    /** Run @p kernel to completion and return its statistics. */
    LaunchStats launch(const KernelDesc& kernel);

  private:
    GpuConfig cfg_;
    SimOptions opts_;
    std::unique_ptr<MemorySystem> mem_;
    ExecutorCache executors_;
};

}  // namespace tcsim
