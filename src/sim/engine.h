#pragma once
/**
 * @file
 * Stream-aware multi-kernel execution engine.
 *
 * Replaces the lock-step one-kernel-at-a-time loop: streams hold
 * ordered launch queues, a chip-level dispatcher assigns CTAs from all
 * resident grids to SMs (concurrent kernel execution when occupancy
 * allows), and the main loop is event-driven — idle SMs are not
 * ticked, and when every SM is provably stalled the clock jumps to the
 * next writeback / MIO / execution-unit event.
 *
 * Memory timing (caches, DRAM queues) persists across launches within
 * one engine run; Gpu::launch() wraps a single-kernel run and so keeps
 * the old cold-cache per-launch semantics.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_config.h"
#include "common/stats.h"
#include "sim/core/scheduler.h"
#include "sim/core/sm.h"
#include "sim/grid_run.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"
#include "sim/stream.h"

namespace tcsim {

/** Result of one kernel launch. */
struct LaunchStats
{
    std::string kernel;
    /** Stream the launch ran on. */
    int stream = 0;
    /** Engine cycle window the launch occupied. */
    uint64_t start_cycle = 0;
    uint64_t finish_cycle = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Instructions per cycle over the launch's own cycle window. */
    double ipc = 0.0;
    /** Memory traffic during the launch's window (shared with any
     *  concurrently resident kernels). */
    MemStats mem;
    /** Latency distributions per WMMA macro class (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;
    /** Issue-stall attribution summed over sub-cores
     *  (index = SubCore::StallReason).  Chip-wide: only filled for
     *  single-kernel runs via Gpu::launch(). */
    uint64_t stalls[8] = {0, 0, 0, 0, 0, 0, 0, 0};

    /** Achieved TFLOPS for a GEMM of the given FLOP count. */
    double tflops(double flops, double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return flops / seconds / 1e12;
    }
};

/** Aggregate result of one engine run (all streams drained). */
struct EngineStats
{
    /** Cycle the last kernel drained, plus one (total run length). */
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Chip-wide instructions per cycle over the whole run. */
    double ipc = 0.0;
    /** Aggregate memory traffic of the run. */
    MemStats mem;
    /** Per-kernel statistics, in completion order. */
    std::vector<LaunchStats> kernels;
    /** Issue-stall attribution summed over all SMs. */
    uint64_t stalls[8] = {0, 0, 0, 0, 0, 0, 0, 0};

    /** Event-driven loop telemetry: ticks actually simulated and
     *  cycles skipped because every SM was provably stalled. */
    uint64_t ticks = 0;
    uint64_t skipped_cycles = 0;

    double tflops(double flops, double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return flops / seconds / 1e12;
    }
};

/** Options controlling one simulation run. */
struct SimOptions
{
    SchedulerPolicy scheduler = SchedulerPolicy::kGto;
    /** Stop runaway simulations after this many cycles (the engine
     *  throws std::runtime_error when exceeded). */
    uint64_t max_cycles = 2'000'000'000;
};

/**
 * One engine run: owns the per-run SM timing state and drains a set of
 * streams.  Construct fresh per run (Gpu does this); functional memory
 * and the executor cache live outside and persist.
 */
class ExecutionEngine
{
  public:
    ExecutionEngine(const GpuConfig& cfg, const SimOptions& opts,
                    MemorySystem* mem, ExecutorCache* executors);
    ~ExecutionEngine();

    /** Run every queued launch of @p streams to completion. */
    EngineStats run(const std::vector<Stream*>& streams);

  private:
    /** One in-flight launch: the owned descriptor plus grid state. */
    struct Launch
    {
        KernelDesc desc;
        GridRun grid;
        MemStats mem_base;  ///< Memory counters at residency start.
    };

    /** Per-stream progress: launches run strictly in stream order. */
    struct StreamRun
    {
        Stream* stream = nullptr;
        Launch* live = nullptr;  ///< Currently resident launch, if any.
    };

    void promote_streams(uint64_t now);
    bool dispatch_to(SM* sm);
    LaunchStats finalize(Launch& l) const;

    const GpuConfig& cfg_;
    SimOptions opts_;
    MemorySystem* mem_;
    ExecutorCache* executors_;

    std::vector<std::unique_ptr<SM>> sms_;
    std::vector<StreamRun> stream_runs_;
    /** Resident launches in dispatch-priority (launch-id) order. */
    std::vector<std::unique_ptr<Launch>> resident_;
    int next_grid_id_ = 0;
};

}  // namespace tcsim
