#pragma once
/**
 * @file
 * Stream-aware multi-kernel execution engine.
 *
 * Streams hold ordered operation queues (launches, event records,
 * event waits, host callbacks), a chip-level dispatcher assigns CTAs
 * from all resident grids to SMs (concurrent kernel execution when
 * occupancy allows), and the main loop is event-driven — idle SMs are
 * not ticked, and when every SM is provably stalled the clock jumps to
 * the next writeback / MIO / execution-unit event.  Pending memory
 * transactions fold into that jump target: in-flight completions are
 * registered writebacks, and a head transaction refused by the memory
 * system (MSHR/NoC/DRAM back-pressure) contributes its exact retry
 * cycle, so cycle-jumping stays bit-identical to a lockstep run even
 * when the only outstanding work is in the memory hierarchy
 * (SimOptions::idle_skip).
 *
 * The engine is a persistent object (Gpu owns one): per-run state
 * lives in an explicit RunState, so a run can be advanced
 * incrementally — run_until() pauses at a cycle bound, synchronize()
 * drains one stream or waits for one event — and resumed later, with
 * new work enqueued between advances.  A run begins when any advance
 * entry point finds queued work and no active run, and ends when every
 * stream has drained; memory timing (caches, DRAM queues) persists
 * across launches within one run and resets at run boundaries.
 * Gpu::launch() wraps a single-kernel run on a private engine and so
 * keeps the old cold-cache per-launch semantics.
 *
 * Dependency gating: a launch queued behind a Stream::wait() is not
 * promotable until the awaited event has been recorded and the
 * recording stream's earlier work has retired.  When no stream can
 * make progress and the chip is idle, the engine throws
 * EngineDeadlockError with the cycle-accurate wait graph.
 *
 * Parallel simulation core (SimOptions::sim_threads): each tick is a
 * two-phase transaction — the MIO drains through the shared memory
 * hierarchy on the engine thread in SM-index order (phase A), the
 * SM-local compute shards across a persistent worker pool (phase B,
 * staging functional global-memory accesses and grid completions into
 * per-SM buffers and writing statistics to per-SM shards), and the
 * staged side effects commit on the engine thread in SM-index order
 * (phase C).  Results are bit-identical for every thread count; see
 * README "Performance" for the determinism argument.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <chrono>

#include "arch/gpu_config.h"
#include "common/stats.h"
#include "sim/core/scheduler.h"
#include "sim/core/sm.h"
#include "sim/core/stall.h"
#include "sim/event.h"
#include "sim/grid_run.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"
#include "sim/replay/replay_cache.h"
#include "sim/stream.h"
#include "sim/worker_pool.h"

namespace tcsim {

class FaultPlan;

/** Result of one kernel launch. */
struct LaunchStats
{
    std::string kernel;
    /** Stream the launch ran on. */
    int stream = 0;
    /** Engine cycle window the launch occupied. */
    uint64_t start_cycle = 0;
    uint64_t finish_cycle = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Instructions per cycle over the launch's own cycle window. */
    double ipc = 0.0;
    /** Memory traffic during the launch's window (shared with any
     *  concurrently resident kernels). */
    MemStats mem;
    /** Latency distributions per WMMA macro class (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;
    /** Issue-stall cycles attributed to this kernel's warps (the warp
     *  blocking a sub-core scheduler belonged to this launch), indexed
     *  by SubCore::StallReason.  Gpu::launch() overwrites this with
     *  the chip-wide attribution (legacy single-kernel semantics). */
    StallCounts stalls;

    /** Achieved TFLOPS for a GEMM of the given FLOP count. */
    double tflops(double flops, double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return flops / seconds / 1e12;
    }
};

/** Aggregate statistics of one engine run (or a paused snapshot of
 *  one: run_until()/synchronize() return progress so far). */
struct EngineStats
{
    /** Cycle the last retired kernel drained, plus one (total length
     *  of the completed work; 0 when nothing retired yet). */
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Chip-wide instructions per cycle over the whole run. */
    double ipc = 0.0;
    /** Aggregate memory traffic of the run. */
    MemStats mem;
    /** Per-kernel statistics, in completion order. */
    std::vector<LaunchStats> kernels;
    /** Issue-stall attribution summed over all SMs, indexed by
     *  SubCore::StallReason. */
    StallCounts stalls;

    /** Event-driven loop telemetry: ticks actually simulated and
     *  cycles skipped because every SM was provably stalled. */
    uint64_t ticks = 0;
    uint64_t skipped_cycles = 0;

    /** Replay-cache telemetry (SimOptions::replay_mode): launches
     *  completed from a recorded profile, launches simulated in
     *  detail because no profile matched (these record one), and
     *  replayed launches re-simulated by verify mode. */
    uint64_t replay_hits = 0;
    uint64_t replay_misses = 0;
    uint64_t replay_verified = 0;

    /** Engine clock when this result was produced.  For a paused run
     *  (run_until/synchronize) this is the next cycle the engine will
     *  simulate on resume. */
    uint64_t current_cycle = 0;

    double tflops(double flops, double clock_ghz) const
    {
        if (cycles == 0)
            return 0.0;
        double seconds = static_cast<double>(cycles) / (clock_ghz * 1e9);
        return flops / seconds / 1e12;
    }
};

/** Options controlling one simulation run. */
struct SimOptions
{
    SchedulerPolicy scheduler = SchedulerPolicy::kGto;
    /** Stop runaway simulations after this many cycles (the engine
     *  throws SimHangError with a diagnostic dump when exceeded). */
    uint64_t max_cycles = 2'000'000'000;
    /**
     * Wall-clock watchdog (0 = off): a run that simulates longer than
     * this many milliseconds of host time throws SimHangError with
     * the same diagnostic dump.  Containment only — the check runs
     * every 4096 ticks and never influences simulated timing, so
     * enabling it cannot perturb a healthy run's results.
     */
    uint64_t wall_budget_ms = 0;
    /**
     * Jump the clock over provably stalled cycles (the event-driven
     * fast path).  The jump target folds in every pending memory
     * completion and blocked-transaction retry cycle, so results are
     * bit-identical either way; disabling it ticks every cycle and
     * exists to prove exactly that (see tests/engine_mem_test.cpp).
     */
    bool idle_skip = true;
    /**
     * Worker threads for the engine's parallel tick phase, including
     * the engine thread itself (1 = fully serial, 0 = one per
     * hardware thread).  Results are bit-identical for every value:
     * each tick shards the SMs across the pool for the compute phase
     * only, while every interaction with shared state (MIO drains
     * through the memory hierarchy, staged functional-memory commits,
     * CTA dispatch and retirement) runs on the engine thread in
     * canonical SM-index order.  See README "Performance".
     */
    int sim_threads = 1;
    /**
     * Floor on the SM-array size (0 = size purely from pending CTAs).
     * The engine normally constructs only as many SMs as pending CTAs
     * could occupy; because idle SMs still record scheduler stalls
     * while dispatch is pending, the array size is
     * timing-observable.  Sweep forks set the same floor on the forked
     * base and on every cold rerun so all of them see identical SM
     * arrays.  Clamped to GpuConfig::num_sms.
     */
    int min_sms = 0;
    /**
     * Sampled-SM fast-forward (0 = off, full detail).  When positive,
     * at most this many SMs are simulated cycle-accurately; the rest
     * of the array becomes *shadow* SMs that model occupancy only.  A
     * shadow CTA completes after the measured mean CTA latency of its
     * grid on the detailed SMs (re-sampled every sample_window
     * cycles).  Shadows accept CTAs at the same rasterizer pace as
     * detailed SMs — so occupancy matches a full-detail run — but a
     * grid must have dispatched at least one detailed CTA first, and
     * a shadow CTA's completion is only predicted once the first
     * detailed measurement lands.  Approximate by construction: total
     * cycles carry the error bound asserted in CI, per-grid
     * instruction counts are extrapolated from the detailed fraction,
     * and memory counters reflect detailed traffic only.  Rejected
     * for functional kernels (shadow CTAs execute nothing).
     */
    int detailed_sms = 0;
    /** Re-sampling window (cycles) of the shadow CTA-latency
     *  estimator: each window that observed at least one detailed CTA
     *  completion replaces the running mean. */
    uint64_t sample_window = 4096;

    /** Kernel-timing replay cache mode (see sim/replay/). */
    enum class ReplayMode {
        kOff,     ///< Always simulate in detail (the default).
        kRecord,  ///< Detail everything; record profiles into the cache.
        kReplay,  ///< Replay fingerprint hits; detail + record misses.
        kVerify,  ///< kReplay, but re-simulate 1-in-N hits in detail
                  ///< and fail the run on divergence past the bound.
                  ///< Strict by construction: the re-simulated kernel
                  ///< runs beside *replayed* neighbors (which occupy
                  ///< no SMs), so under concurrent workloads it lacks
                  ///< the contention the profile was recorded under
                  ///< and can flag divergence even when the
                  ///< end-to-end replay is exact.  Best suited to
                  ///< serial / sweep-style runs.
    };
    /**
     * Memoize detailed kernel executions and replay fingerprint-
     * matching launches as coarse timeline events: completion is
     * scheduled from the recorded duration, statistics apply as
     * recorded deltas, and stream/event/task-graph ordering is
     * untouched.  Launches with an empty KernelDesc::timing_key or
     * with functional=true (replay would skip their data movement)
     * always run in detail.  Mutually exclusive with detailed_sms
     * (the engine throws): sampled profiles would poison the cache.
     */
    ReplayMode replay_mode = ReplayMode::kOff;
    /** Verify mode: re-simulate every Nth fingerprint hit (the first
     *  hit always verifies). */
    int replay_verify_every = 8;
    /** Verify mode: maximum |replayed - detailed| / detailed cycle
     *  divergence; instruction counters must match exactly. */
    double replay_verify_bound = 0.05;
    /**
     * Cache to consult and fill (borrowed; must outlive the engine).
     * Null with replay enabled = the engine lazily owns a private
     * cache, scoped to its lifetime.  Sharing one cache across
     * scenarios makes results depend on run order — deterministic
     * drivers give each scenario its own seeded copy.
     */
    ReplayCache* replay_cache = nullptr;
};

/** Thrown when no stream can make progress: every unfinished stream
 *  is blocked on an event that will never complete.  The message is
 *  the cycle-accurate wait graph. */
class EngineDeadlockError : public std::runtime_error
{
  public:
    explicit EngineDeadlockError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The persistent execution engine: owns the per-run SM timing state
 * (inside RunState) and drains stream operation queues.  Functional
 * memory and the executor cache live outside and persist across runs.
 */
class ExecutionEngine
{
  public:
    ExecutionEngine(const GpuConfig& cfg, const SimOptions& opts,
                    MemorySystem* mem, ExecutorCache* executors);
    ~ExecutionEngine();

    ExecutionEngine(const ExecutionEngine&) = delete;
    ExecutionEngine& operator=(const ExecutionEngine&) = delete;

    /** Run every queued operation of @p streams to completion
     *  (resumes the active run first when one is paused). */
    EngineStats run(const std::vector<Stream*>& streams);

    /** Advance the active (or newly begun) run while the engine clock
     *  is <= @p cycle.  Returns progress so far; the final advance
     *  that drains every stream returns the complete run's stats.
     *  Unlike run(), a bounded advance does not treat blocked waits
     *  as fatal: when only host action can unblock the run (an event
     *  nobody has recorded yet), it pauses early instead of throwing,
     *  so the host may record/enqueue and resume. */
    EngineStats run_until(const std::vector<Stream*>& streams,
                          uint64_t cycle);

    /** Advance until @p stream has no queued ops and no live launch. */
    EngineStats synchronize(const std::vector<Stream*>& streams,
                            const Stream& stream);

    /** Advance until @p event completes.  Throws EngineDeadlockError
     *  when every stream drains without the event ever completing. */
    EngineStats synchronize(const std::vector<Stream*>& streams,
                            const Event& event);

    /** A run has begun and not yet drained (paused, resumable). */
    bool active() const { return run_ != nullptr; }

    /** Engine clock of the active run (0 when idle). */
    uint64_t now() const;

    /**
     * Jump the paused run's clock forward to @p cycle without
     * simulating the gap (host-controlled idle skip).  Requires an
     * active run whose chip is completely idle — no resident kernels
     * and no stream with a runnable front op (only host-resolvable
     * event waits may remain); throws std::runtime_error otherwise.
     * The gap is accounted as skipped_cycles, exactly like the
     * engine's own idle-skip.  A @p cycle at or before the current
     * clock is a no-op.  This is the serving simulator's tool for
     * fast-forwarding across request inter-arrival gaps while a
     * keepalive wait holds the run open.
     */
    void advance_idle_to(uint64_t cycle);

    /**
     * Serialize the active run into @p w (snapshot support).  Resident
     * launches append their KernelDesc to @p kernels and are encoded
     * by index.  Requires an active run paused between ticks
     * (run_until()); throws SnapshotError otherwise.
     */
    void save_state(SnapshotWriter& w,
                    std::vector<KernelDesc>* kernels) const;

    /**
     * Rebuild the run from @p r, discarding any active run.  @p
     * kernels is the side table save_state filled; @p streams must
     * contain a stream for every id the archive references (Gpu
     * restores streams and events before calling this).
     */
    void load_state(SnapshotReader& r,
                    const std::vector<KernelDesc>& kernels,
                    const std::vector<Stream*>& streams);

    /** Install a live stream-set provider (Gpu wires this to its
     *  stream list).  Consulted after host callbacks fire so work
     *  enqueued mid-run — even on streams created inside the callback
     *  — is validated, absorbed, and given a correctly sized SM
     *  array.  Without it the engine falls back to the stream vector
     *  passed to the last advance entry point. */
    void set_stream_source(std::function<std::vector<Stream*>()> source)
    {
        stream_source_ = std::move(source);
    }

    /** Install a fault-injection plan (borrowed; must outlive the
     *  engine).  Null = healthy chip.  Must be set before any run
     *  begins: SM warp caps apply at SM construction. */
    void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

    /**
     * Abandon @p stream's work: drop its queued ops and evict its
     * resident launch without a statistics entry (the work is lost,
     * as on a real chip after killing a hung kernel).  The launch
     * must be quiescent — all CTAs drained, held only by a fault hang
     * or awaiting retirement; throws std::runtime_error while CTAs
     * are still executing.  This is the host-side containment tool
     * the serving simulator uses to kill a hung batch and retry its
     * requests elsewhere.  No-op for streams the run has not seen.
     */
    void kill_stream(Stream* stream);

    /** True when @p stream can be kill_stream()ed safely: it has no
     *  live launch, or its live launch has drained all CTAs (it may
     *  still be fault-hung — that is exactly the killable state).
     *  Streams the run has not seen are quiescent. */
    bool stream_quiescent(const Stream* stream) const;

  private:
    /** One in-flight launch: the owned descriptor plus grid state. */
    struct Launch
    {
        KernelDesc desc;
        GridRun grid;
        MemStats mem_base;  ///< Memory counters at residency start.

        /** Replay cache (SimOptions::replay_mode).  record_key
         *  non-empty = this launch runs in detail and its profile is
         *  recorded at retire.  replay_profile non-null = a hit: no
         *  CTA ever dispatches and the grid completes at replay_done
         *  with the profile's statistics.  verify_expect non-null =
         *  a verify-mode hit running in detail; retire compares it
         *  against the profile and throws on divergence. */
        std::string record_key;
        /** Sequence slot assigned at promotion (per-run, per-key
         *  occurrence index); a recorded duration lands in this slot
         *  of the cache entry's duration sequence. */
        uint64_t record_seq = 0;
        std::unique_ptr<KernelTimingProfile> replay_profile;
        uint64_t replay_done = 0;
        std::unique_ptr<KernelTimingProfile> verify_expect;
        /** Recording scratch: CTA-retirement samples, compacted to
         *  kMaxOccupancyPhases. */
        std::vector<OccupancyPhase> occupancy;

        /** Fault injection (FaultPlan, resolved at promotion).  A
         *  hung launch never retires: its grid drains normally but
         *  the completion is never signalled, so its stream stays
         *  blocked until kill_stream() or a watchdog contains it.  A
         *  slowed launch is held past its natural finish until
         *  fault_release (finish_cycle is stretched to match at
         *  retirement).  All default-off fields: with no plan
         *  installed the retire path is bit-identical to before. */
        bool fault_hung = false;
        double fault_slowdown = 1.0;
        uint64_t fault_release = 0;  ///< 0 = not yet computed.
        bool retired = false;        ///< Finalized this tick; erase.
    };

    /** Per-stream progress: launches run strictly in stream order. */
    struct StreamRun
    {
        Stream* stream = nullptr;
        Launch* live = nullptr;  ///< Currently resident launch, if any.
    };

    /** Windowed mean CTA latency of one grid (sampled mode): each
     *  sample_window that saw at least one detailed CTA completion
     *  replaces the running mean with that window's mean. */
    struct CtaRateEstimator
    {
        uint64_t mean_sum = 0;   ///< Sum of the last closed window.
        uint64_t mean_count = 0;
        uint64_t win_start = 0;
        uint64_t win_sum = 0;
        uint64_t win_count = 0;

        void add(uint64_t now, uint64_t latency, uint64_t window)
        {
            if (win_count > 0 && now - win_start >= window) {
                mean_sum = win_sum;
                mean_count = win_count;
                win_start = now;
                win_sum = 0;
                win_count = 0;
            }
            win_sum += latency;
            ++win_count;
        }

        /** At least one detailed completion observed. */
        bool ready() const { return mean_count > 0 || win_count > 0; }

        /** Current mean CTA latency (integer cycles, >= 1). */
        uint64_t mean() const
        {
            uint64_t s = mean_count ? mean_sum : win_sum;
            uint64_t c = mean_count ? mean_count : win_count;
            return c ? std::max<uint64_t>(1, s / c) : 1;
        }
    };

    /** One CTA resident on a shadow SM (sampled mode).  A CTA may be
     *  dispatched before its grid has any latency measurement;
     *  predicted_done == 0 marks it pending until the estimator's
     *  first sample arrives. */
    struct ShadowCta
    {
        GridRun* grid = nullptr;
        uint64_t launched = 0;
        uint64_t predicted_done = 0;
    };

    /** A fast-forwarded SM: occupancy accounting, no pipeline. */
    struct ShadowSm
    {
        int used_ctas = 0;
        int used_warps = 0;
        uint64_t used_smem = 0;
        uint64_t used_regs = 0;
        std::vector<ShadowCta> resident;
    };

    /** Per-run state: everything that resets at a run boundary.  The
     *  split makes the engine itself persistent and runs resumable. */
    struct RunState
    {
        std::vector<std::unique_ptr<SM>> sms;
        std::vector<StreamRun> stream_runs;
        /** Resident launches in dispatch-priority (launch-id) order. */
        std::vector<std::unique_ptr<Launch>> resident;
        /** Indices (ascending) of SMs with work in flight: the only
         *  SMs a non-dispatch tick touches, so idle SMs on a large
         *  chip cost nothing — not even a busy() probe. */
        std::vector<int> busy_sms;
        int next_grid_id = 0;
        uint64_t now = 0;
        uint64_t last_finish = 0;
        /** Wall-clock watchdog anchor (SimOptions::wall_budget_ms). */
        std::chrono::steady_clock::time_point wall_start;
        /** Accumulates ticks/skipped_cycles and retired kernels. */
        EngineStats stats;
        /** Sampled mode: shadow SMs and per-grid-id estimators. */
        std::vector<ShadowSm> shadows;
        std::map<int, CtaRateEstimator> estimators;

        /** Replay warmth tracking: the timing_key of the most
         *  recently retired launch (empty for uncacheable kernels)
         *  and whether anything has retired at all.  Updated in
         *  residency order at retire — replayed launches update it
         *  too, so a replay run walks the same warmth sequence the
         *  detailed run recorded. */
        std::string last_finished_key;
        bool any_finished = false;
        /** Verify mode: fingerprint hits seen so far (the 1-in-N
         *  verification counter — deterministic, serialized). */
        uint64_t replay_attempts = 0;
        /** Per-key hit counters: the i-th hit of a fingerprint is
         *  served the i-th recorded duration, so replaying a recorded
         *  trace walks the recorded sequence in order (serialized). */
        std::map<std::string, uint64_t> replay_seq;
        /** Counter deltas of retired *replayed* launches: the memory
         *  system and SMs never saw this traffic, so fill_totals
         *  folds these into the run totals. */
        MemStats replay_mem;
        StallCounts replay_stalls;
    };

    /** Validate queued launches, begin a run if none is active, and
     *  absorb streams/SMs added since the run began.  False when
     *  there is neither an active run nor queued work. */
    bool prepare(const std::vector<Stream*>& streams);

    /** Add StreamRuns for streams the run has not seen yet. */
    void absorb_streams(const std::vector<Stream*>& streams);

    /** Validate every queued launch and grow the SM array to cover
     *  the CTAs now pending (queued + resident).  Re-run whenever new
     *  work can have appeared: at every advance entry and after host
     *  callbacks fire. */
    void validate_and_size();

    /** Outcome of one engine tick. */
    enum class StepResult {
        kRunning,  ///< Progress made (or clock advanced); keep going.
        kDrained,  ///< Every stream drained: the run is complete.
        kBlocked,  ///< Chip idle, streams blocked on events only host
                   ///< action can complete; the clock did not advance.
    };

    /** One engine tick.  The idle-skip fold never jumps the clock past
     *  @p bound + 1: a bounded advance (run_until) is a promise that
     *  the host has a stimulus to deliver there, and a replayed-only
     *  chip — whose sole scheduled event can be an entire kernel
     *  duration away — would otherwise leap over it. */
    StepResult step(uint64_t bound);

    /** Process stream queues at @p now until a fixpoint: promote
     *  launches, complete records, satisfy waits, fire callbacks.
     *  True when any non-launch op was processed (the clock must not
     *  jump over newly unblocked work). */
    bool promote_streams(uint64_t now);

    bool dispatch_to(SM* sm);
    /** Replay fingerprint of @p k at the current warmth class, or
     *  empty when the launch is uncacheable (no timing_key, or
     *  functional: replay would skip its data movement). */
    std::string replay_key(const KernelDesc& k) const;
    /** Classify a freshly promoted launch against the replay cache:
     *  arm it for replay (hit), detailed verification (1-in-N hit in
     *  verify mode), or record-at-retire (miss / record mode). */
    void classify_replay(Launch* l, uint64_t now);
    /** Fold this tick's CTA completions into the occupancy scratch of
     *  recording launches (record path of the profile timeline). */
    void record_occupancy(uint64_t now);
    /** Retire-side replay bookkeeping for @p l (finalized as @p ls):
     *  verify divergence, record the profile, accumulate replayed
     *  counter deltas, update warmth tracking. */
    void finish_replay(Launch& l, const LaunchStats& ls);
    /** Place one CTA on shadow SM @p sh at @p now, if any resident
     *  grid with a ready estimator fits.  Sampled mode only. */
    bool dispatch_shadow(ShadowSm& sh, uint64_t now);
    /** Retire shadow CTAs whose predicted completion has arrived and
     *  feed this tick's detailed completions to the estimators. */
    void shadow_commit(uint64_t now);
    LaunchStats finalize(Launch& l) const;
    bool drained() const;
    /** Snapshot of the active run's progress. */
    EngineStats snapshot() const;
    /** Final stats of the drained run; tears the run down. */
    EngineStats finish();
    /** Fill the aggregate fields derived from retired kernels. */
    void fill_totals(EngineStats* out) const;
    /** Advance until @p done_fn() or the run drains; returns final or
     *  snapshot stats accordingly.  When the run blocks on waits only
     *  the host can resolve, pause (snapshot) if @p pause_on_block,
     *  else throw EngineDeadlockError with the wait graph.  @p bound
     *  caps each tick's idle-skip jump (see step()). */
    template <typename DoneFn>
    EngineStats advance(DoneFn done, bool pause_on_block,
                        uint64_t bound = UINT64_MAX);
    [[noreturn]] void report_deadlock();
    /** Per-stream wait-graph lines of the current run (shared by the
     *  deadlock report and the hang dump). */
    std::string wait_graph_string() const;
    /** Watchdog diagnostic: @p reason plus busy-SM list, resident
     *  grids (with fault-hold markers), and the event wait graph. */
    std::string hang_dump(const std::string& reason) const;
    /** Any resident launch held forever by an injected hang. */
    bool any_fault_hung() const;

    const GpuConfig& cfg_;
    SimOptions opts_;
    MemorySystem* mem_;
    ExecutorCache* executors_;
    /** Fault-injection plan (borrowed from Gpu; null = healthy). */
    FaultPlan* fault_plan_ = nullptr;

    /** Replay cache in use (opts_.replay_cache, or the lazily owned
     *  private one when none was supplied); null when replay_mode is
     *  kOff. */
    ReplayCache* replay_cache_ = nullptr;
    std::unique_ptr<ReplayCache> owned_cache_;
    /** GpuConfig digest baked into every replay fingerprint. */
    uint64_t config_hash_ = 0;

    /** Resolved sim_threads (0 -> hardware concurrency). */
    int threads_ = 1;
    /** Worker pool for the parallel tick phase; created lazily on the
     *  first tick with enough cycled SMs to shard (so serial configs
     *  and tiny chips never spawn threads). */
    std::unique_ptr<WorkerPool> pool_;
    /** Scratch: SMs cycled this tick, ascending SM-index order. */
    std::vector<SM*> cycled_;
    /** Scratch: grids retiring this tick (batched forget pass). */
    std::vector<const GridRun*> retiring_;
    /** Scratch: detailed CTA completions this tick (sampled mode). */
    std::vector<CtaCompletion> completions_;

    std::unique_ptr<RunState> run_;
    /** Live stream list provider (see set_stream_source). */
    std::function<std::vector<Stream*>()> stream_source_;
    /** Streams passed at the last advance entry (callback fallback). */
    std::vector<Stream*> entry_streams_;
    /** A host callback ran during the last promote pass. */
    bool callbacks_fired_ = false;
};

}  // namespace tcsim
