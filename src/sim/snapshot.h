#pragma once
/**
 * @file
 * The value-type simulation checkpoint behind Gpu::snapshot() and
 * Gpu::restore().
 *
 * A Snapshot owns everything needed to resume a run bit-identically:
 * the serialized timing state of every subsystem (the `archive` byte
 * buffer, written by each class's save_state()), a side table of
 * KernelDesc copies (warp *programs* are regenerated from each
 * kernel's deterministic trace generator rather than serialized — a
 * KernelDesc's std::function trace is copyable but not byte-
 * serializable), and a copy-on-write blob of global-memory contents.
 *
 * Copying a Snapshot is cheap: the global-memory blob — by far the
 * largest piece — is a shared_ptr to immutable bytes, so a sweep
 * runner can hand the same snapshot to N fork workers without N
 * copies.  Restore is what pays the memcpy, once per fork.
 *
 * Compatibility is checked on restore: the format version must match
 * kSnapshotVersion exactly, and the config hash (an FNV-1a digest of
 * every GpuConfig field) must match the restoring Gpu's config — a
 * snapshot only makes sense on an identically-configured machine.
 * SimOptions may differ between capture and restore (a fork may run
 * with different sim_threads), with one exception: the warp scheduler
 * policy is baked into each sub-core at construction, so it is
 * captured and enforced.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/kernel_desc.h"
#include "sim/snapshot_io.h"

namespace tcsim {

/** Bump on any change to the archive layout. */
inline constexpr uint32_t kSnapshotVersion = 2;

struct Snapshot
{
    /** Archive layout version; restore rejects mismatches. */
    uint32_t version = kSnapshotVersion;
    /** FNV-1a hash over every GpuConfig field at capture time. */
    uint64_t config_hash = 0;
    /** SimOptions::scheduler at capture (baked into sub-cores). */
    int scheduler = 0;

    /** Kernel side table: launches and queued stream ops reference
     *  kernels by index here; warp programs regenerate via trace(). */
    std::vector<KernelDesc> kernels;

    /** Copy-on-write global memory image (contents + bump cursor).
     *  Shared, immutable: every fork restores from the same bytes. */
    std::shared_ptr<const std::vector<uint8_t>> gmem_data;
    uint64_t gmem_next = 0;

    /** Serialized timing state of every subsystem. */
    std::vector<uint8_t> archive;

    bool valid() const { return gmem_data != nullptr; }

    /** Total heap footprint, for bench reporting. */
    size_t size_bytes() const
    {
        return archive.size() + (gmem_data ? gmem_data->size() : 0);
    }
};

}  // namespace tcsim
