#pragma once
/**
 * @file
 * Shared snapshot codecs for the statistics value types (MemStats,
 * StallCounts, macro-latency histogram maps).  Both the engine's run
 * archive (save_state/load_state) and the replay-cache profile codec
 * serialize these — one definition keeps the field order from
 * diverging between the two formats.
 */

#include <map>

#include "common/stats.h"
#include "isa/instruction.h"
#include "sim/core/stall.h"
#include "sim/mem/memory_system.h"
#include "sim/snapshot_io.h"

namespace tcsim {

inline void
save_stalls(SnapshotWriter& w, const StallCounts& s)
{
    for (uint64_t c : s.counts)
        w.u64(c);
}

inline void
load_stalls(SnapshotReader& r, StallCounts* s)
{
    for (uint64_t& c : s->counts)
        c = r.u64();
}

inline void
save_mem_stats(SnapshotWriter& w, const MemStats& m)
{
    w.u64(m.l1_hits);
    w.u64(m.l1_misses);
    w.u64(m.l2_hits);
    w.u64(m.l2_misses);
    w.u64(m.dram_bytes);
    w.u64(m.global_sectors);
    w.u64(m.mshr_merges);
    w.u64(m.noc_queue_cycles);
    w.u64(m.l2_queue_cycles);
    w.u64(m.dram_queue_cycles);
    w.u64(m.dram_turnarounds);
    w.u64(m.mshr_peak);
}

inline void
load_mem_stats(SnapshotReader& r, MemStats* m)
{
    m->l1_hits = r.u64();
    m->l1_misses = r.u64();
    m->l2_hits = r.u64();
    m->l2_misses = r.u64();
    m->dram_bytes = r.u64();
    m->global_sectors = r.u64();
    m->mshr_merges = r.u64();
    m->noc_queue_cycles = r.u64();
    m->l2_queue_cycles = r.u64();
    m->dram_queue_cycles = r.u64();
    m->dram_turnarounds = r.u64();
    m->mshr_peak = r.u64();
}

inline void
save_macro_latency(SnapshotWriter& w,
                   const std::map<MacroClass, Histogram>& m)
{
    w.u64(m.size());
    for (const auto& [mc, h] : m) {
        w.i32(static_cast<int32_t>(mc));
        // Samples in recorded order: percentiles sort copies, so the
        // stored order is what merge order produced and must survive.
        w.u64(h.count());
        for (double v : h.samples())
            w.f64(v);
    }
}

inline void
load_macro_latency(SnapshotReader& r, std::map<MacroClass, Histogram>* m)
{
    m->clear();
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        MacroClass mc = static_cast<MacroClass>(r.i32());
        Histogram& h = (*m)[mc];
        uint64_t count = r.u64();
        for (uint64_t s = 0; s < count; ++s)
            h.add(r.f64());
    }
}

}  // namespace tcsim
