#pragma once
/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * A FaultSpec (parsed from a scenario's `"faults"` key) compiles into
 * a FaultPlan against a concrete GpuConfig.  All faults are
 * *timing-only* — functional results are untouched, so scenario
 * verify passes under any fault plan:
 *
 *  - Disabled SMs: the dispatcher never places a CTA there.  The SM
 *    still exists (array sizes, stall accounting for idle SMs) so a
 *    faulty chip stays timing-comparable to a healthy one.
 *  - Degraded SMs: a reduced warp-slot cap (SM::set_warp_cap), i.e.
 *    partial-core failures that cut occupancy.
 *  - Kernel slowdown: a matched launch's retirement is held past its
 *    natural completion by (factor - 1) x its own duration — clock
 *    throttling / persistent-interference faults.
 *  - Kernel hang: a matched launch never retires.  The engine's
 *    watchdog (SimOptions::max_cycles / wall_budget_ms) or the host's
 *    kill_stream() path (serving batch-kill + retry) contains it.
 *  - ECC retry: each L2/DRAM-bound sector transaction independently
 *    suffers extra latency with probability `ecc.prob`, decided by a
 *    stateless hash of (seed, SM, sector address, cycle) — no RNG
 *    stream to order, so acceptance is independent of the order the
 *    memory system services SMs and the plan stays bit-identical
 *    across --jobs and --sim-threads.
 *
 * Determinism: random SM picks draw from Pcg32(seed, stream) at
 * *compile* time (one canonical draw order), match-based faults
 * resolve at launch promotion (engine thread, stream-promotion
 * order), and every counter mutates on the engine thread only.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "arch/gpu_config.h"

namespace tcsim {

/** One kernel-matching fault rule (substring match on the kernel
 *  name).  `count` launches match (in promotion order); 0 = every
 *  launch. */
struct KernelFaultRule
{
    std::string match;
    /** Slowdown: completion stretched to factor x natural duration
     *  (> 1.0).  Ignored for hang rules. */
    double factor = 1.0;
    /** Launches affected, in promotion order (0 = all). */
    int count = 0;
};

/** Scenario-level fault description (see driver/scenario.h for the
 *  JSON schema).  Compiled into a FaultPlan against a GpuConfig. */
struct FaultSpec
{
    bool enabled = false;
    uint64_t seed = 1;

    /** Explicitly disabled SM ids. */
    std::vector<int> disabled_sms;
    /** Additionally disable this many randomly chosen SMs. */
    int random_disabled_sms = 0;

    /** Explicitly degraded SMs: {sm id, warp-slot cap}. */
    std::vector<std::pair<int, int>> degraded_sms;
    /** Additionally degrade this many randomly chosen SMs... */
    int random_degraded_sms = 0;
    /** ...to this warp-slot cap. */
    int degraded_warp_slots = 0;

    /** Kernel slowdown rules (factor > 1). */
    std::vector<KernelFaultRule> slowdowns;
    /** Kernel hang rules (factor unused). */
    std::vector<KernelFaultRule> hangs;

    /** ECC-retry probability per L2/DRAM-bound sector transaction
     *  (0 = off) and the extra latency each retry costs. */
    double ecc_prob = 0.0;
    uint64_t ecc_extra_cycles = 0;
};

/** Injected-fault telemetry, surfaced as `fault.*` metrics. */
struct FaultCounters
{
    uint64_t disabled_sms = 0;
    uint64_t degraded_sms = 0;
    uint64_t slowdowns = 0;        ///< Launches held by a slowdown rule.
    uint64_t slowdown_extra_cycles = 0;
    uint64_t hangs = 0;            ///< Launches hung (never retired).
    uint64_t ecc_retries = 0;      ///< Sector transactions hit.
    uint64_t ecc_extra_cycles = 0;
};

/**
 * A FaultSpec resolved against a concrete chip.  Owned by Gpu,
 * consulted by the engine (dispatch / promotion / retirement) and the
 * memory system (per-sector ECC delay).  All mutation happens on the
 * engine thread (phase A/C of the tick), so plain counters suffice.
 */
class FaultPlan
{
  public:
    /** Compile @p spec against @p cfg.  Random SM picks draw from
     *  Pcg32(spec.seed).  Throws SimError when the plan would leave
     *  no dispatchable SM or names an SM id out of range. */
    FaultPlan(const FaultSpec& spec, const GpuConfig& cfg);

    bool enabled() const { return spec_.enabled; }

    /** The dispatcher must skip this SM entirely. */
    bool sm_disabled(int sm) const
    {
        return sm >= 0 && sm < static_cast<int>(disabled_.size()) &&
               disabled_[static_cast<size_t>(sm)];
    }

    /** Warp-slot cap for @p sm (0 = architectural cap). */
    int warp_slot_cap(int sm) const
    {
        return (sm >= 0 && sm < static_cast<int>(warp_cap_.size()))
                   ? warp_cap_[static_cast<size_t>(sm)]
                   : 0;
    }

    /** Consume one hang-rule match for @p kernel (promotion order).
     *  True = this launch hangs.  Counts fault.hangs. */
    bool take_hang(const std::string& kernel);

    /** Slowdown factor for @p kernel, consuming one rule match
     *  (promotion order).  1.0 = unaffected.  Counts
     *  fault.slowdowns. */
    double take_slowdown(const std::string& kernel);

    bool ecc_enabled() const { return spec_.ecc_prob > 0.0; }

    /** Extra latency the ECC fault injects into the sector
     *  transaction (@p sm, @p addr) admitted at @p now — 0 almost
     *  always.  Stateless hash-Bernoulli: no draw order, so the
     *  decision is identical however SMs are serviced.  Counts
     *  fault.ecc_retries. */
    uint64_t ecc_delay(int sm, uint64_t addr, uint64_t now);

    const FaultCounters& counters() const { return counters_; }
    void add_slowdown_cycles(uint64_t c)
    {
        counters_.slowdown_extra_cycles += c;
    }

  private:
    FaultSpec spec_;
    std::vector<bool> disabled_;
    std::vector<int> warp_cap_;  ///< 0 = uncapped.
    /** Remaining match budget per rule (parallel to spec_ rules;
     *  INT_MAX for count=0). */
    std::vector<int> hang_left_;
    std::vector<int> slow_left_;
    FaultCounters counters_;
};

}  // namespace tcsim
