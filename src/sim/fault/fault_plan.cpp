#include "sim/fault/fault_plan.h"

#include <algorithm>
#include <climits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_error.h"

namespace tcsim {

FaultPlan::FaultPlan(const FaultSpec& spec, const GpuConfig& cfg)
    : spec_(spec)
{
    const int n = cfg.num_sms;
    disabled_.assign(static_cast<size_t>(n), false);
    warp_cap_.assign(static_cast<size_t>(n), 0);
    if (!spec_.enabled)
        return;

    auto check_sm = [n](int sm) {
        if (sm < 0 || sm >= n)
            throw SimError(detail::format(
                "faults: SM id %d out of range (chip has %d SMs)", sm, n));
    };

    for (int sm : spec_.disabled_sms) {
        check_sm(sm);
        disabled_[static_cast<size_t>(sm)] = true;
    }
    for (const auto& [sm, cap] : spec_.degraded_sms) {
        check_sm(sm);
        warp_cap_[static_cast<size_t>(sm)] = cap;
    }

    // Random picks: one canonical Pcg32 stream, drawn at compile time
    // in a fixed order (disables first, then degrades), so the same
    // (seed, chip) always yields the same afflicted SMs regardless of
    // how the run is later parallelized.
    Pcg32 rng(spec_.seed, /*stream=*/0);
    auto pick = [&](auto already) {
        // Rejection-sample an SM not yet picked by this pass.
        for (;;) {
            int sm = static_cast<int>(rng.next_u32() %
                                      static_cast<uint32_t>(n));
            if (!already(sm))
                return sm;
        }
    };
    for (int i = 0; i < spec_.random_disabled_sms; ++i) {
        if (static_cast<int>(std::count(disabled_.begin(), disabled_.end(),
                                        true)) >= n)
            throw SimError("faults: random_disabled_sms exceeds chip size");
        int sm = pick([&](int s) { return bool(disabled_[size_t(s)]); });
        disabled_[static_cast<size_t>(sm)] = true;
    }
    for (int i = 0; i < spec_.random_degraded_sms; ++i) {
        bool all_touched = true;
        for (int s = 0; s < n; ++s)
            all_touched = all_touched && (disabled_[size_t(s)] ||
                                          warp_cap_[size_t(s)] != 0);
        if (all_touched)
            throw SimError("faults: random_degraded_sms exceeds healthy SMs");
        int sm = pick([&](int s) {
            return disabled_[size_t(s)] || warp_cap_[size_t(s)] != 0;
        });
        warp_cap_[static_cast<size_t>(sm)] = spec_.degraded_warp_slots;
    }

    int live = 0;
    for (int s = 0; s < n; ++s)
        live += disabled_[static_cast<size_t>(s)] ? 0 : 1;
    if (live == 0)
        throw SimError(
            "faults: every SM is disabled; no CTA could ever dispatch");

    for (int s = 0; s < n; ++s) {
        counters_.disabled_sms += disabled_[static_cast<size_t>(s)] ? 1 : 0;
        counters_.degraded_sms += warp_cap_[static_cast<size_t>(s)] ? 1 : 0;
    }

    hang_left_.reserve(spec_.hangs.size());
    for (const KernelFaultRule& r : spec_.hangs)
        hang_left_.push_back(r.count > 0 ? r.count : INT_MAX);
    slow_left_.reserve(spec_.slowdowns.size());
    for (const KernelFaultRule& r : spec_.slowdowns)
        slow_left_.push_back(r.count > 0 ? r.count : INT_MAX);
}

bool
FaultPlan::take_hang(const std::string& kernel)
{
    if (!spec_.enabled)
        return false;
    for (size_t i = 0; i < spec_.hangs.size(); ++i) {
        if (hang_left_[i] > 0 &&
            kernel.find(spec_.hangs[i].match) != std::string::npos) {
            --hang_left_[i];
            ++counters_.hangs;
            return true;
        }
    }
    return false;
}

double
FaultPlan::take_slowdown(const std::string& kernel)
{
    if (!spec_.enabled)
        return 1.0;
    for (size_t i = 0; i < spec_.slowdowns.size(); ++i) {
        if (slow_left_[i] > 0 &&
            kernel.find(spec_.slowdowns[i].match) != std::string::npos) {
            --slow_left_[i];
            ++counters_.slowdowns;
            return spec_.slowdowns[i].factor;
        }
    }
    return 1.0;
}

uint64_t
FaultPlan::ecc_delay(int sm, uint64_t addr, uint64_t now)
{
    if (!ecc_enabled())
        return 0;
    // Stateless Bernoulli: hash (seed, sm, sector, cycle) through
    // splitmix64 and compare against the probability threshold.  The
    // draw depends only on the transaction's identity, never on how
    // many other transactions were decided before it.
    uint64_t h = spec_.seed;
    splitmix64_next(h);
    h ^= (static_cast<uint64_t>(static_cast<uint32_t>(sm)) << 48) ^ addr;
    splitmix64_next(h);
    h ^= now;
    const uint64_t draw = splitmix64_next(h);
    const auto threshold = static_cast<uint64_t>(
        spec_.ecc_prob * 18446744073709551616.0 /* 2^64 */);
    if (draw >= threshold)
        return 0;
    ++counters_.ecc_retries;
    counters_.ecc_extra_cycles += spec_.ecc_extra_cycles;
    return spec_.ecc_extra_cycles;
}

}  // namespace tcsim
