#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"

namespace tcsim {

ExecutionEngine::ExecutionEngine(const GpuConfig& cfg, const SimOptions& opts,
                                 MemorySystem* mem, ExecutorCache* executors)
    : cfg_(cfg), opts_(opts), mem_(mem), executors_(executors)
{
}

ExecutionEngine::~ExecutionEngine() = default;

void
ExecutionEngine::promote_streams(uint64_t now)
{
    for (StreamRun& sr : stream_runs_) {
        if (sr.live != nullptr || sr.stream->queue_.empty())
            continue;
        auto l = std::make_unique<Launch>();
        l->desc = sr.stream->pop();
        l->grid.kernel = &l->desc;
        l->grid.grid_id = next_grid_id_++;
        l->grid.stream_id = sr.stream->id();
        l->grid.start_cycle = now;
        l->mem_base = mem_->stats();
        sr.live = l.get();
        resident_.push_back(std::move(l));
    }
}

bool
ExecutionEngine::dispatch_to(SM* sm)
{
    // Resident grids compete in launch order; one CTA per SM per cycle
    // (hardware rasterizer pacing, matching the legacy distribution).
    for (auto& l : resident_) {
        if (l->grid.pending() && sm->can_accept(*l->grid.kernel)) {
            sm->launch_cta(&l->grid, l->grid.next_cta++);
            return true;
        }
    }
    return false;
}

LaunchStats
ExecutionEngine::finalize(Launch& l) const
{
    LaunchStats s;
    s.kernel = l.desc.name;
    s.stream = l.grid.stream_id;
    s.start_cycle = l.grid.start_cycle;
    s.finish_cycle = l.grid.finish_cycle;
    s.cycles = l.grid.finish_cycle - l.grid.start_cycle + 1;
    s.instructions = l.grid.stats.instructions;
    s.hmma_instructions = l.grid.stats.hmma_instructions;
    s.ipc = s.cycles > 0 ? static_cast<double>(s.instructions) /
                               static_cast<double>(s.cycles)
                         : 0.0;
    s.mem = mem_->stats().since(l.mem_base);
    s.macro_latency = std::move(l.grid.stats.macro_latency);
    return s;
}

EngineStats
ExecutionEngine::run(const std::vector<Stream*>& streams)
{
    EngineStats out;

    // Validate every queued kernel and bound the useful SM count: a
    // run whose grids total fewer CTAs than the chip has SMs never
    // occupies the excess SMs, so don't construct (or tick) them.
    uint64_t total_ctas = 0;
    size_t total_kernels = 0;
    for (Stream* s : streams) {
        for (const KernelDesc& k : s->queue_) {
            TCSIM_CHECK(k.grid_ctas > 0);
            TCSIM_CHECK(k.trace != nullptr);
            SM::check_fits(cfg_, k);
            total_ctas += static_cast<uint64_t>(k.grid_ctas);
            ++total_kernels;
        }
    }
    if (total_kernels == 0)
        return out;

    mem_->reset_timing();

    int num_sms = static_cast<int>(
        std::min<uint64_t>(cfg_.num_sms, std::max<uint64_t>(1, total_ctas)));
    sms_.clear();
    sms_.reserve(static_cast<size_t>(num_sms));
    for (int i = 0; i < num_sms; ++i) {
        sms_.push_back(std::make_unique<SM>(i, cfg_, mem_, executors_,
                                            opts_.scheduler));
    }

    stream_runs_.clear();
    for (Stream* s : streams)
        stream_runs_.push_back(StreamRun{s, nullptr});
    resident_.clear();
    next_grid_id_ = 0;

    uint64_t now = 0;
    uint64_t last_finish = 0;
    size_t completed = 0;
    out.kernels.reserve(total_kernels);

    while (completed < total_kernels) {
        promote_streams(now);

        bool dispatch_pending = false;
        for (const auto& l : resident_)
            if (l->grid.pending())
                dispatch_pending = true;

        // Tick: every SM while CTAs await dispatch (any SM may accept
        // one), otherwise only the busy ones.
        bool launched = false;
        for (auto& sm : sms_) {
            if (dispatch_pending) {
                launched |= dispatch_to(sm.get());
                sm->cycle(now);
            } else if (sm->busy()) {
                sm->cycle(now);
            }
        }
        ++out.ticks;

        // Retire launches whose last CTA drained this tick.
        bool retired = false;
        for (size_t i = 0; i < resident_.size();) {
            if (!resident_[i]->grid.done()) {
                ++i;
                continue;
            }
            Launch& l = *resident_[i];
            last_finish = std::max(last_finish, l.grid.finish_cycle);
            out.kernels.push_back(finalize(l));
            for (StreamRun& sr : stream_runs_)
                if (sr.live == &l)
                    sr.live = nullptr;
            resident_.erase(resident_.begin() +
                            static_cast<ptrdiff_t>(i));
            ++completed;
            retired = true;
        }
        if (completed == total_kernels)
            break;

        // Next tick: the successor of a retired launch becomes
        // dispatchable next cycle; otherwise jump to the next event
        // when the whole chip is provably stalled.
        uint64_t next = now + 1;
        if (!launched && !retired) {
            uint64_t e = UINT64_MAX;
            for (const auto& sm : sms_)
                e = std::min(e, sm->next_event(now));
            if (e == UINT64_MAX) {
                panic("engine stalled at cycle %llu with %zu kernels "
                      "unfinished (first: %s)",
                      static_cast<unsigned long long>(now),
                      total_kernels - completed,
                      resident_.empty() ? "<none resident>"
                                        : resident_[0]->desc.name.c_str());
            }
            if (e > now + 1) {
                uint64_t gap = e - (now + 1);
                for (auto& sm : sms_)
                    if (sm->busy())
                        sm->account_skipped(gap);
                out.skipped_cycles += gap;
            }
            next = e;
        }
        now = next;
        if (now > opts_.max_cycles) {
            // A user-settable limit, not an internal invariant: throw
            // so embedders (the scenario batch runner) can report one
            // runaway simulation without aborting the process.
            throw std::runtime_error(detail::format(
                "engine exceeded max_cycles=%llu (%zu kernels "
                "unfinished, first: %s)",
                static_cast<unsigned long long>(opts_.max_cycles),
                total_kernels - completed,
                resident_.empty() ? "<none resident>"
                                  : resident_[0]->desc.name.c_str()));
        }
    }

    out.cycles = last_finish + 1;
    for (const LaunchStats& k : out.kernels) {
        out.instructions += k.instructions;
        out.hmma_instructions += k.hmma_instructions;
    }
    out.ipc = out.cycles > 0 ? static_cast<double>(out.instructions) /
                                   static_cast<double>(out.cycles)
                             : 0.0;
    out.mem = mem_->stats();
    for (const auto& sm : sms_)
        sm->add_stalls(out.stalls);
    sms_.clear();
    return out;
}

}  // namespace tcsim
