#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/sim_error.h"
#include "sim/fault/fault_plan.h"
#include "sim/stats_codec.h"

namespace tcsim {

ExecutionEngine::ExecutionEngine(const GpuConfig& cfg, const SimOptions& opts,
                                 MemorySystem* mem, ExecutorCache* executors)
    : cfg_(cfg), opts_(opts), mem_(mem), executors_(executors)
{
    threads_ = opts_.sim_threads > 0 ? opts_.sim_threads
                                     : hardware_threads();
    config_hash_ = hash_config(cfg_);
    if (opts_.replay_mode != SimOptions::ReplayMode::kOff) {
        if (opts_.detailed_sms > 0)
            throw std::runtime_error(
                "replay_mode and detailed_sms are mutually exclusive: "
                "sampled (extrapolated) executions would poison the "
                "replay cache with approximate profiles");
        replay_cache_ = opts_.replay_cache;
        if (!replay_cache_) {
            owned_cache_ = std::make_unique<ReplayCache>();
            replay_cache_ = owned_cache_.get();
        }
    }
}

ExecutionEngine::~ExecutionEngine() = default;

uint64_t
ExecutionEngine::now() const
{
    return run_ ? run_->now : 0;
}

bool
ExecutionEngine::prepare(const std::vector<Stream*>& streams)
{
    entry_streams_ = streams;
    if (!run_) {
        bool any_work = false;
        for (Stream* s : streams)
            any_work |= !s->ops_.empty();
        if (!any_work)
            return false;
        run_ = std::make_unique<RunState>();
        run_->wall_start = std::chrono::steady_clock::now();
        mem_->reset_timing();
    }
    absorb_streams(streams);
    validate_and_size();
    return true;
}

void
ExecutionEngine::absorb_streams(const std::vector<Stream*>& streams)
{
    // Streams created since the run began join at the end (their
    // StreamRun order follows the caller's stream order on first
    // sight).
    for (Stream* s : streams) {
        bool known = false;
        for (const StreamRun& sr : run_->stream_runs)
            known |= sr.stream == s;
        if (!known)
            run_->stream_runs.push_back(StreamRun{s, nullptr});
    }
}

void
ExecutionEngine::validate_and_size()
{
    // Validate every queued launch and count the CTAs pending: a run
    // whose grids total fewer CTAs than the chip has SMs never
    // occupies the excess SMs, so don't construct (or tick) them.
    // Re-run on every advance entry and after host callbacks fire, so
    // work enqueued mid-run is checked and sized too.
    uint64_t total_ctas = 0;
    for (const StreamRun& sr : run_->stream_runs) {
        for (const Stream::Op& op : sr.stream->ops_) {
            if (op.kind != Stream::OpKind::kLaunch)
                continue;
            const KernelDesc& k = op.kernel;
            TCSIM_CHECK(k.grid_ctas > 0);
            TCSIM_CHECK(k.trace != nullptr);
            SM::check_fits(cfg_, k);
            if (opts_.detailed_sms > 0 && k.functional)
                throw std::runtime_error(detail::format(
                    "sampled mode (detailed_sms=%d) requires "
                    "functional=false kernels; \"%s\" is functional",
                    opts_.detailed_sms, k.name.c_str()));
            total_ctas += static_cast<uint64_t>(k.grid_ctas);
        }
    }
    for (const auto& l : run_->resident)
        total_ctas += static_cast<uint64_t>(l->desc.grid_ctas);

    // Grow the SM array when new work justifies it; SMs appended
    // mid-run behave exactly like SMs that had been idle all along, so
    // timing is independent of when (or whether) the excess SMs exist.
    // min_sms floors the size: sweep forks pin it so forked and cold
    // runs of every point get identical (timing-observable) arrays.
    size_t want = static_cast<size_t>(std::min<uint64_t>(
        cfg_.num_sms,
        std::max<uint64_t>(static_cast<uint64_t>(std::max(opts_.min_sms, 0)),
                           std::max<uint64_t>(1, total_ctas))));
    // Sampled mode: cap the detailed array and give the remainder of
    // the wanted size to occupancy-only shadow SMs.
    size_t detailed = want;
    if (opts_.detailed_sms > 0)
        detailed = std::min<size_t>(
            want, static_cast<size_t>(opts_.detailed_sms));
    while (run_->sms.size() < detailed) {
        const int id = static_cast<int>(run_->sms.size());
        auto sm = std::make_unique<SM>(id, cfg_, mem_, executors_,
                                       opts_.scheduler);
        if (fault_plan_)
            if (int cap = fault_plan_->warp_slot_cap(id))
                sm->set_warp_cap(cap);
        run_->sms.push_back(std::move(sm));
    }
    if (opts_.detailed_sms > 0 && want > run_->sms.size() &&
        run_->shadows.size() < want - run_->sms.size())
        run_->shadows.resize(want - run_->sms.size());
    // Every resident grid needs a stats shard per SM (growth can
    // happen mid-run when work is enqueued between advances).
    for (const auto& l : run_->resident)
        l->grid.stats.ensure_shards(run_->sms.size());
}

bool
ExecutionEngine::promote_streams(uint64_t now)
{
    RunState& rs = *run_;
    bool any_op = false;
    // Fixpoint: a record completed on one stream can unblock a wait on
    // another in the same tick, so rescan until nothing changes.
    for (bool progress = true; progress;) {
        progress = false;
        for (StreamRun& sr : rs.stream_runs) {
            while (sr.live == nullptr && !sr.stream->ops_.empty()) {
                Stream::Op& front = sr.stream->ops_.front();
                if (front.kind == Stream::OpKind::kWaitEvent) {
                    // Dependency gate: not promotable past this point
                    // until the event has been recorded and retired.
                    if (!front.wait->complete())
                        break;
                    sr.stream->ops_.pop_front();
                    any_op = progress = true;
                    continue;
                }
                if (front.kind == Stream::OpKind::kRecordEvent) {
                    // All prior work on this stream has retired:
                    // complete the event, stamped with this cycle.
                    Event* ev = front.record;
                    sr.stream->ops_.pop_front();
                    ev->complete_ = true;
                    ev->cycle_ = now;
                    any_op = progress = true;
                    continue;
                }
                if (front.kind == Stream::OpKind::kCallback) {
                    // Pop before invoking: the callback may enqueue
                    // more work onto this very stream.  step() re-runs
                    // validation/SM sizing after the promote pass.
                    auto fn = std::move(front.callback);
                    sr.stream->ops_.pop_front();
                    if (fn)
                        fn(now);
                    callbacks_fired_ = true;
                    any_op = progress = true;
                    continue;
                }
                // Validate at promotion too: launches injected by a
                // host callback never pass through prepare(), and an
                // unfittable grid must die with the check_fits
                // diagnostic, not a confusing engine-stall panic.
                TCSIM_CHECK(front.kernel.grid_ctas > 0);
                TCSIM_CHECK(front.kernel.trace != nullptr);
                SM::check_fits(cfg_, front.kernel);
                Stream::Op op = sr.stream->pop();
                auto l = std::make_unique<Launch>();
                l->desc = std::move(op.kernel);
                l->grid.kernel = &l->desc;
                l->grid.grid_id = rs.next_grid_id++;
                l->grid.stream_id = sr.stream->id();
                l->grid.start_cycle = now;
                l->grid.stats.ensure_shards(rs.sms.size());
                l->mem_base = mem_->stats();
                if (replay_cache_)
                    classify_replay(l.get(), now);
                // Fault classification: promotion happens on the
                // engine thread in canonical stream order, so the
                // per-rule match budgets drain identically however
                // the run is parallelized.
                if (fault_plan_ && fault_plan_->enabled()) {
                    if (fault_plan_->take_hang(l->desc.name))
                        l->fault_hung = true;
                    else
                        l->fault_slowdown =
                            fault_plan_->take_slowdown(l->desc.name);
                }
                sr.live = l.get();
                rs.resident.push_back(std::move(l));
                progress = true;
                break;
            }
        }
    }
    return any_op;
}

bool
ExecutionEngine::dispatch_to(SM* sm)
{
    // A fault-disabled SM never receives work (it still exists and
    // ticks idle, so chip timing stays comparable to a healthy run).
    if (fault_plan_ && fault_plan_->sm_disabled(sm->id()))
        return false;
    // Resident grids compete in launch order; one CTA per SM per cycle
    // (hardware rasterizer pacing, matching the legacy distribution).
    for (auto& l : run_->resident) {
        if (l->grid.pending() && sm->can_accept(*l->grid.kernel)) {
            sm->launch_cta(&l->grid, l->grid.next_cta++, run_->now);
            return true;
        }
    }
    return false;
}

std::string
ExecutionEngine::replay_key(const KernelDesc& k) const
{
    // Uncacheable: no builder fingerprint, or functional (a replayed
    // launch executes nothing, which would silently drop the data
    // movement functional kernels exist for).
    if (k.timing_key.empty() || k.functional)
        return {};
    const RunState& rs = *run_;
    // Memory-warmth class: w0 = nothing retired yet this run (cold
    // caches), w1 = the last retired launch had this same timing_key
    // (warmed by this very kernel), w2 = warmed by other work.
    char warmth = !rs.any_finished
                      ? '0'
                      : (rs.last_finished_key == k.timing_key ? '1' : '2');
    char cfg[24];
    std::snprintf(cfg, sizeof cfg, "%016llx",
                  static_cast<unsigned long long>(config_hash_));
    return k.timing_key + "|cfg:" + cfg + "|w" + warmth;
}

void
ExecutionEngine::classify_replay(Launch* l, uint64_t now)
{
    RunState& rs = *run_;
    std::string key = replay_key(l->desc);
    if (key.empty())
        return;  // Uncacheable: plain detailed execution.

    // Every cacheable occurrence of a key consumes one sequence slot,
    // assigned in promotion order: recordings fill their slot at
    // retire, and the i-th hit is served the i-th recorded duration —
    // so replaying a recorded trace walks the recorded sequence in
    // lockstep and hands every launch its own duration.
    uint64_t seq = 0;
    if (auto sit = rs.replay_seq.find(key); sit != rs.replay_seq.end())
        seq = sit->second;
    auto profile = std::make_unique<KernelTimingProfile>();
    const bool hit = replay_cache_->lookup(key, seq, profile.get());
    rs.replay_seq[key] = seq + 1;
    if (!hit || opts_.replay_mode == SimOptions::ReplayMode::kRecord) {
        // Miss (or record-only mode): run in detail and fold the
        // result into the cache at retire.  Record mode folds *every*
        // execution, not just the first per key, so the duration
        // sequence covers the key's full range of contention contexts.
        if (hit)
            ++rs.stats.replay_hits;
        else
            ++rs.stats.replay_misses;
        l->record_key = std::move(key);
        l->record_seq = seq;
        return;
    }

    ++rs.stats.replay_hits;
    if (opts_.replay_mode == SimOptions::ReplayMode::kVerify) {
        // Deterministic 1-in-N sampling: the first hit always
        // verifies, then every replay_verify_every-th.
        uint64_t n = std::max(1, opts_.replay_verify_every);
        bool verify = rs.replay_attempts % n == 0;
        ++rs.replay_attempts;
        if (verify) {
            l->verify_expect = std::move(profile);
            ++rs.stats.replay_verified;
            return;  // Runs in detail; retire compares.
        }
    }

    // Replay: no CTA ever dispatches (pending() is false from the
    // start); the grid completes at replay_done with the profile's
    // statistics applied as deltas.  Stream/event ordering is
    // untouched — the launch occupies its stream slot until then.
    TCSIM_CHECK(profile->cycles > 0);
    l->replay_done = now + profile->cycles - 1;
    l->replay_profile = std::move(profile);
    l->grid.next_cta = l->desc.grid_ctas;
}

void
ExecutionEngine::record_occupancy(uint64_t now)
{
    RunState& rs = *run_;
    for (const CtaCompletion& c : completions_) {
        for (auto& l : rs.resident) {
            if (&l->grid != c.grid)
                continue;
            if (l->record_key.empty())
                break;
            OccupancyPhase ph;
            ph.offset = now - l->grid.start_cycle;
            ph.ctas_left = static_cast<uint32_t>(l->desc.grid_ctas -
                                                 l->grid.ctas_done);
            // One sample per tick: completions in the same cycle
            // collapse onto the last (ctas_done already counts them
            // all by commit time).
            if (!l->occupancy.empty() &&
                l->occupancy.back().offset == ph.offset)
                l->occupancy.back() = ph;
            else
                l->occupancy.push_back(ph);
            // Compact deterministically: keep every 2nd sample once
            // the scratch outgrows the profile bound.
            if (l->occupancy.size() > kMaxOccupancyPhases) {
                size_t out = 0;
                for (size_t i = 1; i < l->occupancy.size(); i += 2)
                    l->occupancy[out++] = l->occupancy[i];
                l->occupancy.resize(out);
            }
            break;
        }
    }
    completions_.clear();
}

void
ExecutionEngine::finish_replay(Launch& l, const LaunchStats& ls)
{
    RunState& rs = *run_;
    if (l.verify_expect) {
        const KernelTimingProfile& p = *l.verify_expect;
        double detailed = static_cast<double>(ls.cycles);
        double recorded = static_cast<double>(p.cycles);
        double rel = detailed > 0
                         ? std::abs(recorded - detailed) / detailed
                         : 0.0;
        if (rel > opts_.replay_verify_bound ||
            ls.instructions != p.instructions)
            throw std::runtime_error(detail::format(
                "replay verify: kernel \"%s\" diverged from its recorded "
                "profile (cycles %llu recorded vs %llu detailed, rel err "
                "%.4f > bound %.4f%s)",
                l.desc.name.c_str(),
                static_cast<unsigned long long>(p.cycles),
                static_cast<unsigned long long>(ls.cycles), rel,
                opts_.replay_verify_bound,
                ls.instructions != p.instructions
                    ? "; instruction counters differ"
                    : ""));
    }
    if (!l.record_key.empty() && replay_cache_) {
        KernelTimingProfile p;
        p.cycles = ls.cycles;
        p.instructions = ls.instructions;
        p.hmma_instructions = ls.hmma_instructions;
        p.mem = ls.mem;
        p.stalls = ls.stalls;
        p.macro_latency = ls.macro_latency;
        p.occupancy = std::move(l.occupancy);
        replay_cache_->record(l.record_key, l.record_seq, std::move(p));
    }
    if (l.replay_profile) {
        // The memory system and SMs never saw a replayed launch's
        // traffic: accumulate its recorded deltas for fill_totals.
        rs.replay_mem.add(l.replay_profile->mem);
        rs.replay_stalls.add(l.replay_profile->stalls);
    }
    // Warmth tracking advances for *every* retiring launch (replayed
    // and uncacheable included), so a replay run walks the identical
    // warmth sequence the detailed run it mirrors did.
    rs.any_finished = true;
    rs.last_finished_key = l.desc.timing_key;
}

/** Per-CTA register demand (mirrors the SM's accounting). */
static uint64_t
shadow_cta_registers(const KernelDesc& k)
{
    return static_cast<uint64_t>(k.warps_per_cta) * kWarpSize *
           static_cast<uint64_t>(k.regs_per_thread);
}

bool
ExecutionEngine::dispatch_shadow(ShadowSm& sh, uint64_t now)
{
    RunState& rs = *run_;
    for (auto& l : rs.resident) {
        GridRun& g = l->grid;
        if (!g.pending())
            continue;
        // A grid must seed the detailed SMs before it fast-forwards:
        // the estimator needs real completions, and a pending shadow
        // CTA relies on a live detailed CTA to eventually supply the
        // measurement that prices it.
        if (g.next_cta - g.shadow_ctas == 0)
            continue;
        const KernelDesc& k = *g.kernel;
        if (sh.used_ctas >= cfg_.max_ctas_per_sm ||
            sh.used_warps + k.warps_per_cta > cfg_.max_warps_per_sm ||
            sh.used_smem + k.shared_mem_bytes > cfg_.shared_mem_per_sm ||
            sh.used_regs + shadow_cta_registers(k) > cfg_.registers_per_sm)
            continue;
        ++sh.used_ctas;
        sh.used_warps += k.warps_per_cta;
        sh.used_smem += k.shared_mem_bytes;
        sh.used_regs += shadow_cta_registers(k);
        // Price the CTA now if a measurement exists; otherwise leave
        // it pending (predicted_done = 0) for shadow_commit to price
        // when the grid's first detailed completion lands.
        auto it = rs.estimators.find(g.grid_id);
        uint64_t eta = 0;
        if (it != rs.estimators.end() && it->second.ready())
            eta = std::max(now + it->second.mean(), now + 1);
        sh.resident.push_back(ShadowCta{&g, now, eta});
        ++g.next_cta;
        ++g.shadow_ctas;
        return true;
    }
    return false;
}

void
ExecutionEngine::shadow_commit(uint64_t now)
{
    RunState& rs = *run_;
    for (const CtaCompletion& c : completions_)
        rs.estimators[c.grid->grid_id].add(now, c.latency,
                                           opts_.sample_window);
    completions_.clear();
    // Price pending shadow CTAs whose grid now has a measurement,
    // counting residency from their launch cycle.
    for (ShadowSm& sh : rs.shadows) {
        for (ShadowCta& c : sh.resident) {
            if (c.predicted_done != 0)
                continue;
            auto it = rs.estimators.find(c.grid->grid_id);
            if (it == rs.estimators.end() || !it->second.ready())
                continue;
            c.predicted_done =
                std::max(c.launched + it->second.mean(), now + 1);
        }
    }
    // Retire predicted completions, shadow order then entry order.
    for (ShadowSm& sh : rs.shadows) {
        for (size_t i = 0; i < sh.resident.size();) {
            if (sh.resident[i].predicted_done == 0 ||
                sh.resident[i].predicted_done > now) {
                ++i;
                continue;
            }
            GridRun* g = sh.resident[i].grid;
            const KernelDesc& k = *g->kernel;
            --sh.used_ctas;
            sh.used_warps -= k.warps_per_cta;
            sh.used_smem -= k.shared_mem_bytes;
            sh.used_regs -= shadow_cta_registers(k);
            if (++g->ctas_done == k.grid_ctas)
                g->finish_cycle = now;
            sh.resident.erase(sh.resident.begin() +
                              static_cast<ptrdiff_t>(i));
        }
    }
}

LaunchStats
ExecutionEngine::finalize(Launch& l) const
{
    LaunchStats s;
    s.kernel = l.desc.name;
    s.stream = l.grid.stream_id;
    s.start_cycle = l.grid.start_cycle;
    s.finish_cycle = l.grid.finish_cycle;
    s.cycles = l.grid.finish_cycle - l.grid.start_cycle + 1;
    // Replayed launch: no SM ever saw it — every statistic comes from
    // the recorded profile (the memory system's counters did not move,
    // so since(mem_base) would report concurrent kernels' traffic).
    if (l.replay_profile) {
        const KernelTimingProfile& p = *l.replay_profile;
        s.instructions = p.instructions;
        s.hmma_instructions = p.hmma_instructions;
        s.ipc = s.cycles > 0 ? static_cast<double>(s.instructions) /
                                   static_cast<double>(s.cycles)
                             : 0.0;
        s.mem = p.mem;
        s.macro_latency = p.macro_latency;
        s.stalls = p.stalls;
        return s;
    }
    s.instructions = l.grid.stats.instructions();
    s.hmma_instructions = l.grid.stats.hmma_instructions();
    // Sampled mode: shadow CTAs executed no instructions — scale the
    // detailed counts up by the full-grid fraction.  Memory counters
    // are left as-measured (detailed traffic only); total.cycles is
    // the approximate figure whose error CI bounds.
    if (l.grid.shadow_ctas > 0) {
        uint64_t total = static_cast<uint64_t>(l.desc.grid_ctas);
        uint64_t det = total - static_cast<uint64_t>(l.grid.shadow_ctas);
        TCSIM_CHECK(det > 0);
        s.instructions = s.instructions * total / det;
        s.hmma_instructions = s.hmma_instructions * total / det;
    }
    s.ipc = s.cycles > 0 ? static_cast<double>(s.instructions) /
                               static_cast<double>(s.cycles)
                         : 0.0;
    s.mem = mem_->stats().since(l.mem_base);
    s.macro_latency = l.grid.stats.merged_macro_latency();
    s.stalls = l.grid.stats.stalls();
    return s;
}

bool
ExecutionEngine::drained() const
{
    for (const StreamRun& sr : run_->stream_runs)
        if (sr.live != nullptr || !sr.stream->empty())
            return false;
    return run_->resident.empty();
}

std::string
ExecutionEngine::wait_graph_string() const
{
    const RunState& rs = *run_;
    std::string graph;
    for (const StreamRun& sr : rs.stream_runs) {
        if (sr.stream->ops_.empty())
            continue;
        const Stream::Op& front = sr.stream->ops_.front();
        if (front.kind != Stream::OpKind::kWaitEvent)
            continue;
        const Event* ev = front.wait;
        // Every stream still holding a record for this event (a
        // re-recorded event may have several).
        std::vector<int> recorders;
        for (const StreamRun& other : rs.stream_runs) {
            for (const Stream::Op& op : other.stream->ops_) {
                if (op.kind == Stream::OpKind::kRecordEvent &&
                    op.record == ev) {
                    recorders.push_back(other.stream->id());
                    break;
                }
            }
        }
        std::string why;
        if (!recorders.empty()) {
            why = recorders.size() == 1 ? "record queued on stream"
                                        : "records queued on streams";
            for (size_t r = 0; r < recorders.size(); ++r)
                why += (r == 0 ? " " : ", ") + std::to_string(recorders[r]);
            why += ", behind work that cannot start";
        } else if (ev->recorded()) {
            why = "its record was dropped before the engine reached it";
        } else {
            why = "never recorded";
        }
        graph += detail::format(
            "  stream %d: waiting on event \"%s\" (%s), %zu launch(es) "
            "gated behind it\n",
            sr.stream->id(), ev->name().c_str(), why.c_str(),
            sr.stream->depth());
    }
    return graph;
}

void
ExecutionEngine::report_deadlock()
{
    // Chip idle, streams blocked: every remaining front op is a wait
    // on an event that did not complete.  Report the wait graph.
    throw EngineDeadlockError(
        detail::format("deadlock detected at cycle %llu: no stream can "
                       "make progress\n",
                       static_cast<unsigned long long>(run_->now)) +
        wait_graph_string());
}

bool
ExecutionEngine::any_fault_hung() const
{
    if (!run_)
        return false;
    for (const auto& l : run_->resident)
        if (l->fault_hung)
            return true;
    return false;
}

std::string
ExecutionEngine::hang_dump(const std::string& reason) const
{
    const RunState& rs = *run_;
    size_t queued = 0;
    for (const StreamRun& sr : rs.stream_runs)
        queued += sr.stream->depth();
    std::string out = detail::format(
        "%s\n  cycle %llu: %zu resident kernel(s), %zu queued op(s), "
        "%zu busy SM(s)\n",
        reason.c_str(), static_cast<unsigned long long>(rs.now),
        rs.resident.size(), queued, rs.busy_sms.size());
    if (!rs.busy_sms.empty()) {
        out += "  busy SMs:";
        for (int id : rs.busy_sms)
            out += " " + std::to_string(id);
        out += "\n";
    }
    for (const auto& l : rs.resident) {
        const char* hold = l->fault_hung ? " [fault: hung]"
                           : l->fault_release > rs.now
                               ? " [fault: slowdown hold]"
                               : "";
        out += detail::format(
            "  resident: \"%s\" stream=%d grid=%d ctas %d/%d done%s\n",
            l->desc.name.c_str(), l->grid.stream_id, l->grid.grid_id,
            l->grid.ctas_done, l->desc.grid_ctas, hold);
    }
    out += wait_graph_string();
    return out;
}

ExecutionEngine::StepResult
ExecutionEngine::step(uint64_t bound)
{
    RunState& rs = *run_;
    uint64_t now = rs.now;
    bool ops = promote_streams(now);
    if (callbacks_fired_) {
        // A host callback may have enqueued work — possibly onto a
        // stream created inside the callback.  Re-fetch the live
        // stream set, validate the new launches, and grow the SM
        // array before this tick dispatches anything.
        callbacks_fired_ = false;
        absorb_streams(stream_source_ ? stream_source_() : entry_streams_);
        validate_and_size();
    }

    bool dispatch_pending = false;
    for (const auto& l : rs.resident)
        if (l->grid.pending())
            dispatch_pending = true;

    // Select the SMs that tick this cycle: every SM while CTAs await
    // dispatch (any SM may accept one — and idle SMs' schedulers
    // record the same kEmpty stalls a serial run did), otherwise only
    // the busy list.  cycled_ stays in ascending SM-index order: the
    // serial phases below rely on it for determinism.
    bool launched = false;
    cycled_.clear();
    if (dispatch_pending) {
        cycled_.reserve(rs.sms.size());
        for (auto& sm : rs.sms) {
            launched |= dispatch_to(sm.get());
            cycled_.push_back(sm.get());
        }
        // Sampled mode: shadow SMs accept after the detailed array
        // (same one-CTA-per-SM-per-cycle rasterizer pacing).
        for (ShadowSm& sh : rs.shadows)
            launched |= dispatch_shadow(sh, now);
    } else {
        cycled_.reserve(rs.busy_sms.size());
        for (int id : rs.busy_sms)
            cycled_.push_back(rs.sms[static_cast<size_t>(id)].get());
    }

    // Two-phase tick.  Phase A (engine thread, SM-index order): drain
    // the MIO heads through the shared memory hierarchy, so every
    // acceptance/refusal and retry cycle lands in the same canonical
    // order a serial run produces.
    for (SM* sm : cycled_)
        sm->begin_tick(now);

    // Phase B (worker pool): SM-local compute — writebacks, issue,
    // functional execution into per-SM staging buffers and per-SM
    // stats shards.  No shared mutable state, so any thread count and
    // any scheduling of the shards yields identical results.
    if (threads_ > 1 && !pool_ && cycled_.size() > 1)
        pool_ = std::make_unique<WorkerPool>(threads_);
    if (pool_ && cycled_.size() > 1) {
        pool_->for_n(cycled_.size(),
                     [&](size_t i) { cycled_[i]->tick_compute(now); });
    } else {
        for (SM* sm : cycled_)
            sm->tick_compute(now);
    }

    // Phase C (engine thread, SM-index order): apply the staged
    // functional global-memory accesses and grid CTA completions.
    // Sampled mode also collects each CTA's measured latency for the
    // shadow estimators and retires due shadow CTAs.
    // Replay recording also wants completions: each one becomes an
    // occupancy-timeline sample in the launch's profile.  Sampled and
    // replay modes are mutually exclusive (ctor-enforced), so the two
    // consumers never contend for the buffer.
    bool recording = false;
    for (const auto& l : rs.resident)
        if (!l->record_key.empty())
            recording = true;
    const bool sampled = !rs.shadows.empty();
    completions_.clear();
    for (SM* sm : cycled_)
        sm->commit_tick((sampled || recording) ? &completions_ : nullptr);
    if (sampled)
        shadow_commit(now);
    else if (recording)
        record_occupancy(now);

    // The busy list for the next tick (ascending, since cycled_ is).
    rs.busy_sms.clear();
    for (SM* sm : cycled_)
        if (sm->busy_cached())
            rs.busy_sms.push_back(sm->id());
    ++rs.stats.ticks;

    // Replayed launches complete by the clock, not by CTA drain: mark
    // each one done once its recorded duration elapses.  Unconditional
    // on replay_mode so a snapshot captured mid-replay resumes
    // correctly on a replay-off engine.
    for (const auto& l : rs.resident) {
        if (l->replay_profile && !l->grid.done() && now >= l->replay_done) {
            l->grid.ctas_done = l->desc.grid_ctas;
            l->grid.finish_cycle = l->replay_done;
        }
    }

    // Retire launches whose last CTA drained this tick: finalize in
    // residency order, then one forget pass over the SMs for all of
    // them together (the per-launch pass inside the erase loop was
    // O(SMs x resident^2) on grid-heavy ticks).
    bool retired = false;
    retiring_.clear();
    for (const auto& l : rs.resident) {
        if (!l->grid.done())
            continue;
        // Fault holds: a hung launch never signals completion (its
        // stream stays blocked until kill_stream() or a watchdog), a
        // slowed one is held until its stretched duration elapses.
        if (l->fault_hung)
            continue;
        if (l->fault_slowdown > 1.0 && l->fault_release == 0) {
            const uint64_t dur =
                l->grid.finish_cycle - l->grid.start_cycle + 1;
            const auto held = static_cast<uint64_t>(std::ceil(
                l->fault_slowdown * static_cast<double>(dur)));
            l->fault_release =
                l->grid.start_cycle + std::max(held, dur) - 1;
        }
        if (l->fault_release > now)
            continue;
        if (l->fault_release > l->grid.finish_cycle) {
            fault_plan_->add_slowdown_cycles(l->fault_release -
                                             l->grid.finish_cycle);
            l->grid.finish_cycle = l->fault_release;
        }
        rs.last_finish = std::max(rs.last_finish, l->grid.finish_cycle);
        rs.stats.kernels.push_back(finalize(*l));
        finish_replay(*l, rs.stats.kernels.back());
        for (StreamRun& sr : rs.stream_runs)
            if (sr.live == l.get())
                sr.live = nullptr;
        retiring_.push_back(&l->grid);
        l->retired = true;
        retired = true;
    }
    if (retired) {
        for (auto& sm : rs.sms)
            sm->forget_grids(retiring_);
        std::erase_if(rs.resident,
                      [](const std::unique_ptr<Launch>& l) {
                          return l->retired;
                      });
        retiring_.clear();
    }
    if (drained())
        return StepResult::kDrained;

    // Next tick: the successor of a retired launch (or of a processed
    // record/wait/callback) becomes dispatchable next cycle; otherwise
    // jump to the next event when the whole chip is provably stalled.
    // Only busy SMs are consulted, and each answers from the O(1)
    // next-event cache its compute phase filled in.
    uint64_t next = now + 1;
    if (!launched && !retired && !ops) {
        uint64_t e = UINT64_MAX;
        for (int id : rs.busy_sms)
            e = std::min(e, rs.sms[static_cast<size_t>(id)]
                                ->next_event_cached());
        // Shadow CTAs in flight are scheduled events too: their
        // predicted completions bound the idle-skip jump (and keep a
        // shadow-only chip from tripping the dead-chip panic).
        // (Unpriced CTAs contribute nothing: the detailed CTA that
        // will price them is itself a scheduled event.)
        for (const ShadowSm& sh : rs.shadows)
            for (const ShadowCta& c : sh.resident)
                if (c.predicted_done != 0)
                    e = std::min(e, c.predicted_done);
        // Replayed launches never touch an SM: their scheduled
        // completion is the only event that will unblock them (and a
        // replay-only chip would otherwise trip the dead-chip panic).
        for (const auto& l : rs.resident)
            if (l->replay_profile && !l->grid.done())
                e = std::min(e, l->replay_done);
        // A slowdown-held launch retires at fault_release: that is a
        // scheduled event (a hung launch schedules nothing — only
        // host action or a watchdog ends it).
        for (const auto& l : rs.resident)
            if (l->grid.done() && !l->fault_hung && l->fault_release > now)
                e = std::min(e, l->fault_release);
        if (e == UINT64_MAX) {
            if (!rs.resident.empty()) {
                bool all_hung = true;
                for (const auto& l : rs.resident)
                    all_hung &= l->grid.done() && l->fault_hung;
                if (all_hung) {
                    // Every resident kernel is an injected hang: the
                    // chip is quiescent and only host action (a
                    // kill_stream, a watchdog) can end the run.
                    // Blocked, not a bug.
                    return StepResult::kBlocked;
                }
                // An enabled fault plan can starve a pending grid for
                // good: every SM is disabled or degraded below the
                // kernel's CTA footprint.  That is scenario input, not
                // a modelling bug — throw a typed error the batch
                // driver can contain to one error row.
                if (fault_plan_ && fault_plan_->enabled()) {
                    for (const auto& l : rs.resident)
                        if (l->grid.pending())
                            throw SimError(hang_dump(detail::format(
                                "faults: kernel \"%s\" is undispatchable "
                                "— no enabled SM can accept its CTAs "
                                "under the fault plan's disabled/degraded "
                                "SMs",
                                l->desc.name.c_str())));
                }
                // Work is on the chip but no SM can ever advance: an
                // internal modelling bug, not a user-constructed
                // dependency cycle.
                size_t unfinished = rs.resident.size();
                for (const StreamRun& sr : rs.stream_runs)
                    unfinished += sr.stream->depth();
                panic("engine stalled at cycle %llu with %zu kernels "
                      "unfinished (first: %s)",
                      static_cast<unsigned long long>(rs.now), unfinished,
                      rs.resident[0]->desc.name.c_str());
            }
            // Only blocked waits remain; the clock stays put so the
            // host may record the missing event and resume.
            return StepResult::kBlocked;
        }
        // Never leap past a bounded advance's target: the host has a
        // stimulus (a request arrival, a deadline) to deliver at
        // bound + 1, and a replay-heavy chip's next scheduled event can
        // be an entire kernel duration beyond it.
        if (bound != UINT64_MAX && e > bound + 1)
            e = std::max(bound + 1, now + 1);
        if (e > now + 1 && opts_.idle_skip) {
            uint64_t gap = e - (now + 1);
            for (int id : rs.busy_sms)
                rs.sms[static_cast<size_t>(id)]->account_skipped(gap);
            rs.stats.skipped_cycles += gap;
            next = e;
        } else if (opts_.idle_skip) {
            next = e;
        }
        // Lockstep (idle_skip off): tick every cycle; e was still
        // computed so the dead-chip panic above catches real stalls.
    }
    rs.now = next;
    if (rs.now > opts_.max_cycles) {
        // A user-settable limit, not an internal invariant: throw so
        // embedders (the scenario batch runner) can report one runaway
        // simulation without aborting the process.
        throw SimHangError(hang_dump(detail::format(
            "engine exceeded max_cycles=%llu",
            static_cast<unsigned long long>(opts_.max_cycles))));
    }
    // Wall-clock watchdog (containment only): probed once per 4096
    // ticks so a healthy run pays nothing measurable.
    if (opts_.wall_budget_ms > 0 && (rs.stats.ticks & 0xFFFu) == 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - rs.wall_start)
                .count();
        if (static_cast<uint64_t>(elapsed) > opts_.wall_budget_ms)
            throw SimHangError(hang_dump(detail::format(
                "engine exceeded wall budget of %llu ms (%llu ms "
                "elapsed)",
                static_cast<unsigned long long>(opts_.wall_budget_ms),
                static_cast<unsigned long long>(elapsed))));
    }
    return StepResult::kRunning;
}

void
ExecutionEngine::fill_totals(EngineStats* out) const
{
    out->cycles = out->kernels.empty() ? 0 : run_->last_finish + 1;
    out->instructions = 0;
    out->hmma_instructions = 0;
    for (const LaunchStats& k : out->kernels) {
        out->instructions += k.instructions;
        out->hmma_instructions += k.hmma_instructions;
    }
    out->ipc = out->cycles > 0 ? static_cast<double>(out->instructions) /
                                     static_cast<double>(out->cycles)
                               : 0.0;
    out->mem = mem_->stats();
    // Replayed launches' traffic never reached the memory system or
    // any SM: fold their recorded deltas into the totals.
    out->mem.add(run_->replay_mem);
    out->stalls = StallCounts{};
    for (const auto& sm : run_->sms)
        sm->add_stalls(&out->stalls);
    out->stalls.add(run_->replay_stalls);
    out->current_cycle = run_->now;
}

EngineStats
ExecutionEngine::snapshot() const
{
    EngineStats out = run_->stats;
    fill_totals(&out);
    return out;
}

EngineStats
ExecutionEngine::finish()
{
    EngineStats out = std::move(run_->stats);
    fill_totals(&out);
    run_.reset();
    return out;
}

template <typename DoneFn>
EngineStats
ExecutionEngine::advance(DoneFn done, bool pause_on_block, uint64_t bound)
{
    while (!done()) {
        switch (step(bound)) {
          case StepResult::kDrained:
            return finish();
          case StepResult::kBlocked:
            if (!pause_on_block) {
                // A run-to-completion entry point cannot hand control
                // back to the host: an injected hang is terminal here
                // (a resumable run — run_until — pauses instead, so
                // the serving loop can kill the batch and retry).
                if (any_fault_hung())
                    throw SimHangError(hang_dump(detail::format(
                        "injected kernel hang wedged the run at cycle "
                        "%llu",
                        static_cast<unsigned long long>(run_->now))));
                report_deadlock();
            }
            return snapshot();
          case StepResult::kRunning:
            break;
        }
    }
    return snapshot();
}

EngineStats
ExecutionEngine::run(const std::vector<Stream*>& streams)
{
    if (!prepare(streams))
        return EngineStats{};
    return advance([] { return false; }, /*pause_on_block=*/false);
}

EngineStats
ExecutionEngine::run_until(const std::vector<Stream*>& streams,
                           uint64_t cycle)
{
    if (!prepare(streams))
        return EngineStats{};
    // A bounded advance pauses on host-resolvable waits instead of
    // throwing: the caller may record the missing event and resume.
    return advance([&] { return run_->now > cycle; },
                   /*pause_on_block=*/true, /*bound=*/cycle);
}

void
ExecutionEngine::advance_idle_to(uint64_t cycle)
{
    if (!run_)
        throw std::runtime_error(
            "advance_idle_to: no active run (begin one with run_until())");
    RunState& rs = *run_;
    if (cycle <= rs.now)
        return;
    // Resident launches forbid the jump — except hung ones: an
    // injected hang is quiescent (all CTAs drained) and will never
    // schedule an event, so skipping idle time past it is exact.  A
    // slowdown hold is NOT exempt: its release is a scheduled event
    // the jump would leap over.
    for (const auto& l : rs.resident)
        if (!(l->grid.done() && l->fault_hung))
            throw std::runtime_error(detail::format(
                "advance_idle_to: chip is not idle at cycle %llu (%zu "
                "kernel(s) resident)",
                static_cast<unsigned long long>(rs.now),
                rs.resident.size()));
    for (const StreamRun& sr : rs.stream_runs) {
        if (sr.stream->ops_.empty())
            continue;
        // A stream blocked behind its own hung launch cannot run
        // anything regardless of what is queued on it.
        if (sr.live != nullptr)
            continue;
        const Stream::Op& front = sr.stream->ops_.front();
        // Only waits on not-yet-complete events may remain: anything
        // else is runnable work the jump would incorrectly delay.
        if (front.kind != Stream::OpKind::kWaitEvent ||
            front.wait->complete())
            throw std::runtime_error(detail::format(
                "advance_idle_to: stream %d has runnable work queued at "
                "cycle %llu; run it (run_until) before jumping the clock",
                sr.stream->id(),
                static_cast<unsigned long long>(rs.now)));
    }
    if (cycle > opts_.max_cycles)
        throw std::runtime_error(detail::format(
            "advance_idle_to: target cycle %llu exceeds max_cycles=%llu",
            static_cast<unsigned long long>(cycle),
            static_cast<unsigned long long>(opts_.max_cycles)));
    rs.stats.skipped_cycles += cycle - rs.now;
    rs.now = cycle;
}

void
ExecutionEngine::kill_stream(Stream* stream)
{
    stream->ops_.clear();
    if (!run_)
        return;
    RunState& rs = *run_;
    for (StreamRun& sr : rs.stream_runs) {
        if (sr.stream != stream || sr.live == nullptr)
            continue;
        Launch* l = sr.live;
        if (!l->grid.done())
            throw std::runtime_error(detail::format(
                "kill_stream: launch \"%s\" on stream %d still has CTAs "
                "executing at cycle %llu (%d/%d done); killing it would "
                "leave SM state dangling",
                l->desc.name.c_str(), stream->id(),
                static_cast<unsigned long long>(rs.now), l->grid.ctas_done,
                l->desc.grid_ctas));
        // Evict without a statistics entry: the kernel never
        // completed, so its work is lost — exactly the cost a real
        // fleet pays for killing a hung batch.
        for (auto& sm : rs.sms)
            sm->forget_grid(&l->grid);
        sr.live = nullptr;
        std::erase_if(rs.resident, [l](const std::unique_ptr<Launch>& p) {
            return p.get() == l;
        });
    }
}

bool
ExecutionEngine::stream_quiescent(const Stream* stream) const
{
    if (!run_)
        return true;
    for (const StreamRun& sr : run_->stream_runs)
        if (sr.stream == stream)
            return sr.live == nullptr || sr.live->grid.done();
    return true;
}

EngineStats
ExecutionEngine::synchronize(const std::vector<Stream*>& streams,
                             const Stream& stream)
{
    // Synchronizing an idle stream is a no-op (the cudaStreamSynchronize
    // pattern): return without beginning a run — prepare() would create
    // RunState and reset memory timing for nothing.
    bool idle = stream.ops_.empty();
    if (idle && run_) {
        for (const StreamRun& sr : run_->stream_runs)
            if (sr.stream == &stream)
                idle = sr.live == nullptr;
    }
    if (idle)
        return active() ? snapshot() : EngineStats{};
    if (!prepare(streams))
        return EngineStats{};
    return advance(
        [&] {
            for (const StreamRun& sr : run_->stream_runs)
                if (sr.stream == &stream)
                    return sr.live == nullptr && sr.stream->empty();
            return true;  // Unknown stream: trivially drained.
        },
        /*pause_on_block=*/false);
}

// ---- Snapshot serialization -------------------------------------

// Scalar stat codecs (stalls / mem / macro-latency) live in
// sim/stats_codec.h, shared with the replay-profile archive so both
// formats walk the same field order.

namespace {

void
save_launch_stats(SnapshotWriter& w, const LaunchStats& k)
{
    w.str(k.kernel);
    w.i32(k.stream);
    w.u64(k.start_cycle);
    w.u64(k.finish_cycle);
    w.u64(k.cycles);
    w.u64(k.instructions);
    w.u64(k.hmma_instructions);
    w.f64(k.ipc);
    save_mem_stats(w, k.mem);
    save_macro_latency(w, k.macro_latency);
    save_stalls(w, k.stalls);
}

LaunchStats
load_launch_stats(SnapshotReader& r)
{
    LaunchStats k;
    k.kernel = r.str();
    k.stream = r.i32();
    k.start_cycle = r.u64();
    k.finish_cycle = r.u64();
    k.cycles = r.u64();
    k.instructions = r.u64();
    k.hmma_instructions = r.u64();
    k.ipc = r.f64();
    load_mem_stats(r, &k.mem);
    load_macro_latency(r, &k.macro_latency);
    load_stalls(r, &k.stalls);
    return k;
}

void
save_run_stats(SnapshotWriter& w, const RunStatsCollector& c)
{
    w.u64(c.shard_count());
    for (size_t i = 0; i < c.shard_count(); ++i) {
        const RunStatsShard& s = c.shard_at(i);
        w.u64(s.instructions);
        w.u64(s.hmma_instructions);
        save_macro_latency(w, s.macro_latency);
        save_stalls(w, s.stalls);
    }
}

void
load_run_stats(SnapshotReader& r, RunStatsCollector* c)
{
    uint64_t n = r.u64();
    c->ensure_shards(n);
    for (uint64_t i = 0; i < n; ++i) {
        RunStatsShard& s = c->shard(static_cast<int>(i));
        s.instructions = r.u64();
        s.hmma_instructions = r.u64();
        load_macro_latency(r, &s.macro_latency);
        load_stalls(r, &s.stalls);
    }
}

uint32_t
engine_grid_index(const std::vector<GridRun*>& grids, const GridRun* g)
{
    for (size_t i = 0; i < grids.size(); ++i)
        if (grids[i] == g)
            return static_cast<uint32_t>(i);
    throw SnapshotError("shadow CTA references a grid not in the "
                        "resident table");
}

}  // namespace

void
ExecutionEngine::save_state(SnapshotWriter& w,
                            std::vector<KernelDesc>* kernels) const
{
    if (!run_)
        throw SnapshotError("no active run to snapshot");
    const RunState& rs = *run_;
    w.tag(kTagEngine);
    w.u64(rs.now);
    w.u64(rs.last_finish);
    w.i32(rs.next_grid_id);
    w.u64(rs.stats.ticks);
    w.u64(rs.stats.skipped_cycles);
    w.u64(rs.stats.kernels.size());
    for (const LaunchStats& k : rs.stats.kernels)
        save_launch_stats(w, k);

    // Resident launches in dispatch-priority order.  Descriptors go
    // to the side table — their trace std::function is copyable but
    // not byte-serializable — and everything below references grids
    // by index into this residency order.
    w.u64(rs.resident.size());
    std::vector<GridRun*> grids;
    grids.reserve(rs.resident.size());
    for (const auto& l : rs.resident) {
        w.u32(static_cast<uint32_t>(kernels->size()));
        kernels->push_back(l->desc);
        const GridRun& g = l->grid;
        w.i32(g.grid_id);
        w.i32(g.stream_id);
        w.i32(g.next_cta);
        w.i32(g.ctas_done);
        w.i32(g.shadow_ctas);
        w.u64(g.start_cycle);
        w.u64(g.finish_cycle);
        save_run_stats(w, g.stats);
        save_mem_stats(w, l->mem_base);
        // Replay state: a launch may be mid-replay (profile + done
        // cycle), recording (key + occupancy scratch), or verifying.
        w.b(l->replay_profile != nullptr);
        if (l->replay_profile) {
            save_profile(w, *l->replay_profile);
            w.u64(l->replay_done);
        }
        w.str(l->record_key);
        w.u64(l->record_seq);
        w.b(l->verify_expect != nullptr);
        if (l->verify_expect)
            save_profile(w, *l->verify_expect);
        w.u64(l->occupancy.size());
        for (const OccupancyPhase& ph : l->occupancy) {
            w.u64(ph.offset);
            w.u32(ph.ctas_left);
        }
        grids.push_back(&l->grid);
    }

    w.u64(rs.stream_runs.size());
    for (const StreamRun& sr : rs.stream_runs) {
        w.i32(sr.stream->id());
        int live = -1;
        for (size_t i = 0; i < rs.resident.size(); ++i)
            if (rs.resident[i].get() == sr.live)
                live = static_cast<int>(i);
        w.i32(live);
    }

    w.u64(rs.sms.size());
    for (const auto& sm : rs.sms)
        sm->save_state(w, grids);

    w.u64(rs.busy_sms.size());
    for (int id : rs.busy_sms)
        w.i32(id);

    // Sampled mode: shadow occupancy + the per-grid estimators.
    w.tag(kTagShadow);
    w.u64(rs.shadows.size());
    for (const ShadowSm& sh : rs.shadows) {
        w.i32(sh.used_ctas);
        w.i32(sh.used_warps);
        w.u64(sh.used_smem);
        w.u64(sh.used_regs);
        w.u64(sh.resident.size());
        for (const ShadowCta& c : sh.resident) {
            w.u32(engine_grid_index(grids, c.grid));
            w.u64(c.launched);
            w.u64(c.predicted_done);
        }
    }
    w.u64(rs.estimators.size());
    for (const auto& [gid, est] : rs.estimators) {
        w.i32(gid);
        w.u64(est.mean_sum);
        w.u64(est.mean_count);
        w.u64(est.win_start);
        w.u64(est.win_sum);
        w.u64(est.win_count);
    }

    // Replay run-state: warmth trackers, verify sampling counter, the
    // hit/miss/verified tallies, and the accumulated deltas of already
    // retired replayed launches (fill_totals folds them into totals).
    w.tag(kTagReplay);
    w.str(rs.last_finished_key);
    w.b(rs.any_finished);
    w.u64(rs.replay_attempts);
    w.u64(rs.replay_seq.size());
    for (const auto& [key, seq] : rs.replay_seq) {
        w.str(key);
        w.u64(seq);
    }
    w.u64(rs.stats.replay_hits);
    w.u64(rs.stats.replay_misses);
    w.u64(rs.stats.replay_verified);
    save_mem_stats(w, rs.replay_mem);
    save_stalls(w, rs.replay_stalls);
}

void
ExecutionEngine::load_state(SnapshotReader& r,
                            const std::vector<KernelDesc>& kernels,
                            const std::vector<Stream*>& streams)
{
    r.tag(kTagEngine);
    run_ = std::make_unique<RunState>();
    run_->wall_start = std::chrono::steady_clock::now();
    RunState& rs = *run_;
    cycled_.clear();
    retiring_.clear();
    completions_.clear();
    callbacks_fired_ = false;

    rs.now = r.u64();
    rs.last_finish = r.u64();
    rs.next_grid_id = r.i32();
    rs.stats.ticks = r.u64();
    rs.stats.skipped_cycles = r.u64();
    uint64_t nkernels = r.u64();
    rs.stats.kernels.reserve(nkernels);
    for (uint64_t i = 0; i < nkernels; ++i)
        rs.stats.kernels.push_back(load_launch_stats(r));

    uint64_t nres = r.u64();
    std::vector<GridRun*> grids;
    grids.reserve(nres);
    for (uint64_t i = 0; i < nres; ++i) {
        uint32_t ki = r.u32();
        if (ki >= kernels.size())
            throw SnapshotError("kernel table index out of range");
        auto l = std::make_unique<Launch>();
        l->desc = kernels[ki];
        l->grid.kernel = &l->desc;
        l->grid.grid_id = r.i32();
        l->grid.stream_id = r.i32();
        l->grid.next_cta = r.i32();
        l->grid.ctas_done = r.i32();
        l->grid.shadow_ctas = r.i32();
        l->grid.start_cycle = r.u64();
        l->grid.finish_cycle = r.u64();
        load_run_stats(r, &l->grid.stats);
        load_mem_stats(r, &l->mem_base);
        if (r.b()) {
            l->replay_profile = std::make_unique<KernelTimingProfile>(
                load_profile(r));
            l->replay_done = r.u64();
        }
        l->record_key = r.str();
        l->record_seq = r.u64();
        if (r.b())
            l->verify_expect = std::make_unique<KernelTimingProfile>(
                load_profile(r));
        uint64_t nocc = r.u64();
        l->occupancy.reserve(nocc);
        for (uint64_t o = 0; o < nocc; ++o) {
            OccupancyPhase ph;
            ph.offset = r.u64();
            ph.ctas_left = r.u32();
            l->occupancy.push_back(ph);
        }
        rs.resident.push_back(std::move(l));
    }
    for (const auto& l : rs.resident)
        grids.push_back(&l->grid);

    uint64_t nsr = r.u64();
    for (uint64_t i = 0; i < nsr; ++i) {
        int id = r.i32();
        int live = r.i32();
        StreamRun sr;
        for (Stream* s : streams)
            if (s->id() == id)
                sr.stream = s;
        if (sr.stream == nullptr)
            throw SnapshotError("archive references unknown stream id " +
                                std::to_string(id));
        if (live >= 0) {
            if (static_cast<uint64_t>(live) >= nres)
                throw SnapshotError("live launch index out of range");
            sr.live = rs.resident[static_cast<size_t>(live)].get();
        }
        rs.stream_runs.push_back(sr);
    }

    uint64_t nsms = r.u64();
    for (uint64_t i = 0; i < nsms; ++i) {
        auto sm = std::make_unique<SM>(static_cast<int>(i), cfg_, mem_,
                                       executors_, opts_.scheduler);
        if (fault_plan_)
            if (int cap = fault_plan_->warp_slot_cap(static_cast<int>(i)))
                sm->set_warp_cap(cap);
        rs.sms.push_back(std::move(sm));
    }
    // Every resident grid carries one stats shard per SM.
    for (const auto& l : rs.resident)
        l->grid.stats.ensure_shards(rs.sms.size());
    for (auto& sm : rs.sms)
        sm->load_state(r, grids);

    uint64_t nbusy = r.u64();
    for (uint64_t i = 0; i < nbusy; ++i) {
        int id = r.i32();
        if (id < 0 || static_cast<uint64_t>(id) >= nsms)
            throw SnapshotError("busy SM index out of range");
        rs.busy_sms.push_back(id);
    }

    r.tag(kTagShadow);
    rs.shadows.resize(r.u64());
    for (ShadowSm& sh : rs.shadows) {
        sh.used_ctas = r.i32();
        sh.used_warps = r.i32();
        sh.used_smem = r.u64();
        sh.used_regs = r.u64();
        uint64_t n = r.u64();
        sh.resident.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            uint32_t gi = r.u32();
            if (gi >= grids.size())
                throw SnapshotError("shadow grid index out of range");
            uint64_t launched = r.u64();
            uint64_t done = r.u64();
            sh.resident.push_back(ShadowCta{grids[gi], launched, done});
        }
    }
    uint64_t nest = r.u64();
    for (uint64_t i = 0; i < nest; ++i) {
        int gid = r.i32();
        CtaRateEstimator est;
        est.mean_sum = r.u64();
        est.mean_count = r.u64();
        est.win_start = r.u64();
        est.win_sum = r.u64();
        est.win_count = r.u64();
        rs.estimators.emplace(gid, est);
    }

    r.tag(kTagReplay);
    rs.last_finished_key = r.str();
    rs.any_finished = r.b();
    rs.replay_attempts = r.u64();
    uint64_t nseq = r.u64();
    for (uint64_t i = 0; i < nseq; ++i) {
        std::string key = r.str();
        rs.replay_seq[std::move(key)] = r.u64();
    }
    rs.stats.replay_hits = r.u64();
    rs.stats.replay_misses = r.u64();
    rs.stats.replay_verified = r.u64();
    load_mem_stats(r, &rs.replay_mem);
    load_stalls(r, &rs.replay_stalls);
}

EngineStats
ExecutionEngine::synchronize(const std::vector<Stream*>& streams,
                             const Event& event)
{
    if (event.complete())
        return active() ? snapshot() : EngineStats{};
    if (!prepare(streams)) {
        throw EngineDeadlockError(detail::format(
            "synchronize: event \"%s\" has not completed and no work is "
            "queued that could complete it",
            event.name().c_str()));
    }
    EngineStats out = advance([&] { return event.complete(); },
                              /*pause_on_block=*/false);
    if (!event.complete()) {
        throw EngineDeadlockError(detail::format(
            "synchronize: every stream drained at cycle %llu but event "
            "\"%s\" never completed (%s)",
            static_cast<unsigned long long>(out.current_cycle),
            event.name().c_str(),
            event.recorded() ? "its record was dropped" : "never recorded"));
    }
    return out;
}

}  // namespace tcsim
