#include "sim/replay/replay_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "sim/stats_codec.h"

namespace tcsim {

namespace {

/** Archive magic + layout version.  Bump the version on any change to
 *  the profile field order (save_profile below). */
constexpr char kMagic[4] = {'T', 'C', 'R', 'P'};
constexpr uint32_t kReplayArchiveVersion = 1;

}  // namespace

void
save_profile(SnapshotWriter& w, const KernelTimingProfile& p)
{
    w.u64(p.cycles);
    w.u64(p.instructions);
    w.u64(p.hmma_instructions);
    save_mem_stats(w, p.mem);
    save_stalls(w, p.stalls);
    save_macro_latency(w, p.macro_latency);
    w.u64(p.occupancy.size());
    for (const OccupancyPhase& o : p.occupancy) {
        w.u64(o.offset);
        w.u32(o.ctas_left);
    }
}

KernelTimingProfile
load_profile(SnapshotReader& r)
{
    KernelTimingProfile p;
    p.cycles = r.u64();
    p.instructions = r.u64();
    p.hmma_instructions = r.u64();
    load_mem_stats(r, &p.mem);
    load_stalls(r, &p.stalls);
    load_macro_latency(r, &p.macro_latency);
    uint64_t n = r.u64();
    p.occupancy.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        OccupancyPhase o;
        o.offset = r.u64();
        o.ctas_left = r.u32();
        p.occupancy.push_back(o);
    }
    return p;
}

ReplayCache::ReplayCache(const ReplayCache& other)
{
    std::lock_guard<std::mutex> lk(other.mu_);
    profiles_ = other.profiles_;
}

ReplayCache&
ReplayCache::operator=(const ReplayCache& other)
{
    if (this == &other)
        return *this;
    std::map<std::string, Entry> copy;
    {
        std::lock_guard<std::mutex> lk(other.mu_);
        copy = other.profiles_;
    }
    std::lock_guard<std::mutex> lk(mu_);
    profiles_ = std::move(copy);
    return *this;
}

bool
ReplayCache::lookup(const std::string& key, uint64_t seq,
                    KernelTimingProfile* out) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = profiles_.find(key);
    if (it == profiles_.end())
        return false;
    const Entry& e = it->second;
    *out = e.profile;
    // Walk the recorded sequence: the engine's i-th occurrence of
    // this key gets the i-th recorded duration, so replaying the
    // recorded trace hands every launch its own duration; a different
    // trace cycles through the recorded empirical distribution.  A
    // slot can be unfilled (0) when its recording run was cut short
    // mid-flight — fall back to the first-recorded duration.
    uint64_t d = e.durations[seq % e.durations.size()];
    out->cycles = d > 0 ? d : e.profile.cycles;
    return true;
}

void
ReplayCache::record(const std::string& key, uint64_t seq,
                    KernelTimingProfile profile)
{
    const uint64_t cycles = profile.cycles;
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = profiles_.try_emplace(key);
    if (inserted)
        it->second.profile = std::move(profile);
    if (seq >= kMaxRecordedDurations)
        return;
    if (it->second.durations.size() <= seq)
        it->second.durations.resize(seq + 1, 0);
    it->second.durations[static_cast<size_t>(seq)] = cycles;
}

size_t
ReplayCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return profiles_.size();
}

std::vector<std::string>
ReplayCache::keys() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> out;
    out.reserve(profiles_.size());
    for (const auto& [k, p] : profiles_)
        out.push_back(k);
    return out;
}

std::vector<uint8_t>
ReplayCache::serialize() const
{
    std::lock_guard<std::mutex> lk(mu_);
    SnapshotWriter w;
    w.bytes(kMagic, sizeof kMagic);
    w.u32(kReplayArchiveVersion);
    w.u64(profiles_.size());
    for (const auto& [key, e] : profiles_) {
        w.str(key);
        save_profile(w, e.profile);
        w.u64(e.durations.size());
        for (uint64_t d : e.durations)
            w.u64(d);
    }
    return w.take();
}

void
ReplayCache::deserialize(const std::vector<uint8_t>& data)
{
    SnapshotReader r(data);
    char magic[4];
    r.bytes(magic, sizeof magic);
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw SnapshotError("replay cache: bad magic (not a TCRP archive)");
    uint32_t version = r.u32();
    if (version != kReplayArchiveVersion)
        throw SnapshotError(
            "replay cache: format version mismatch (archive v" +
            std::to_string(version) + ", this build v" +
            std::to_string(kReplayArchiveVersion) + ")");
    uint64_t n = r.u64();
    for (uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        KernelTimingProfile p = load_profile(r);
        uint64_t count = r.u64();
        if (count == 0)
            throw SnapshotError(
                "replay cache: entry \"" + key +
                "\" has no recorded durations (corrupt archive?)");
        std::vector<uint64_t> durations;
        durations.reserve(count);
        for (uint64_t d = 0; d < count; ++d)
            durations.push_back(r.u64());
        // Merge: the first-seen profile keeps the counter fields;
        // duration sequences append in file order (load_dir sorts by
        // name, so a fixed file set merges deterministically).
        std::lock_guard<std::mutex> lk(mu_);
        auto [it, inserted] = profiles_.try_emplace(std::move(key));
        if (inserted)
            it->second.profile = std::move(p);
        for (uint64_t d : durations) {
            if (it->second.durations.size() >= kMaxRecordedDurations)
                break;
            it->second.durations.push_back(d);
        }
    }
    if (!r.done())
        throw SnapshotError("replay cache: trailing bytes after entries");
}

bool
ReplayCache::save_file(const std::string& path) const
{
    std::vector<uint8_t> bytes = serialize();
    std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    size_t wrote = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = std::fclose(f) == 0 && wrote == bytes.size();
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
ReplayCache::load_file(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    for (size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    deserialize(bytes);
    return true;
}

size_t
ReplayCache::load_dir(const std::string& dir)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return 0;
    std::vector<std::string> files;
    for (const auto& entry : it) {
        if (entry.is_regular_file() && entry.path().extension() == ".rpc")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    size_t merged = 0;
    for (const std::string& f : files)
        merged += load_file(f) ? 1 : 0;
    return merged;
}

}  // namespace tcsim
