#pragma once
/**
 * @file
 * Kernel-timing replay cache: memoized results of detailed kernel
 * executions, keyed by a launch fingerprint, so repeated launches of
 * the same kernel (a serving trace re-running one model's layers
 * thousands of times, a sweep re-running one shape per point) skip
 * per-cycle simulation and complete as coarse timeline events.
 *
 * Fingerprint = the kernel builder's timing_key (family, shape,
 * precision, layouts, CTA geometry, arch) + the FNV-1a GpuConfig hash
 * + a memory-warmth class:
 *
 *   w0  nothing has retired yet in this run (cold caches),
 *   w1  the immediately preceding retired launch had the same
 *       timing_key (caches warmed by this very kernel),
 *   w2  anything else retired last (warm, but by other work).
 *
 * A replayed launch is *exact* (bit-identical counters and duration)
 * when it hits a profile recorded in the same context: same operand
 * addresses, same concurrent residency.  Across contexts — e.g. a
 * serving wavefront whose buffers were freshly allocated at different
 * addresses — the fingerprint still matches and the timing is
 * approximate-but-bounded; SimOptions::replay_mode = kVerify
 * re-simulates 1-in-N hits in detail and fails the run when the
 * divergence exceeds the configured bound.
 *
 * Profiles serialize through the snapshot_io codec ("TCRP" archives,
 * one file per scenario under --replay-cache DIR) so cross-process
 * sweep workers can share a warmed cache.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "isa/instruction.h"
#include "sim/core/stall.h"
#include "sim/mem/memory_system.h"
#include "sim/snapshot_io.h"

namespace tcsim {

/** One sample of a recorded occupancy timeline: @p ctas_left CTAs
 *  still resident @p offset cycles into the launch. */
struct OccupancyPhase
{
    uint64_t offset = 0;
    uint32_t ctas_left = 0;

    bool operator==(const OccupancyPhase&) const = default;
};

/** Everything one detailed execution taught us about a kernel: the
 *  duration the engine schedules a replayed completion from, and the
 *  counter deltas it applies in place of simulated statistics. */
struct KernelTimingProfile
{
    /** Launch duration, finish - start + 1 (>= 1 for a real run). */
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Memory traffic during the recorded window (shared with any
     *  concurrently resident kernels — part of the context a hit
     *  inherits). */
    MemStats mem;
    /** Issue-stall attribution of the recorded launch. */
    StallCounts stalls;
    /** Full per-macro-class latency histograms (kept whole so an
     *  exact-fingerprint replay reproduces Fig 15/16 distributions
     *  bit-identically). */
    std::map<MacroClass, Histogram> macro_latency;
    /** CTA-retirement timeline, compacted to <= kMaxOccupancyPhases
     *  samples (coarse phases, not per-CTA events). */
    std::vector<OccupancyPhase> occupancy;
};

/** Occupancy-timeline compaction bound (halved by keeping every 2nd
 *  sample whenever the recording scratch exceeds it). */
inline constexpr size_t kMaxOccupancyPhases = 128;

/** Per-key duration-sequence bound: recordings past this many keep
 *  the profile but stop appending (the stored prefix already covers
 *  the key's context distribution; archives stay bounded). */
inline constexpr size_t kMaxRecordedDurations = 1024;

/** Serialize/deserialize one profile (field order is the contract;
 *  also embedded per-resident-launch in engine snapshots so a
 *  snapshot taken mid-replayed-kernel round-trips). */
void save_profile(SnapshotWriter& w, const KernelTimingProfile& p);
KernelTimingProfile load_profile(SnapshotReader& r);

/**
 * The cache: fingerprint -> profile.  Counter fields (instructions,
 * HMMA, mem, stalls, occupancy) keep the first recording — they are
 * shape-deterministic, so every recording of a key agrees on them.
 * The *duration* is served from the key's recorded duration sequence:
 * one fingerprint covers launches whose contention context varies (a
 * continuous-batching trace overlaps the same layer kernel at
 * different phases), so recording keeps every execution's duration in
 * order and the engine hands the i-th hit of a key the i-th recorded
 * duration (cycling past the end).  Replaying a trace over a cache
 * recorded from that same trace therefore hands every launch its own
 * recorded duration — end-to-end serving percentiles reproduce almost
 * exactly — while a different trace samples the recorded empirical
 * distribution instead of collapsing it to one value.  Recording
 * order matters to the sequence, which is why deterministic runs give
 * every scenario / sweep point its own copy of the cache.  Copyable;
 * all entry points are internally locked.
 */
class ReplayCache
{
  public:
    ReplayCache() = default;
    ReplayCache(const ReplayCache& other);
    ReplayCache& operator=(const ReplayCache& other);

    /** Copy the profile for @p key into @p out, with cycles set to
     *  the (@p seq mod recorded-count)-th recorded duration — the
     *  engine passes its per-run, per-key hit counter so a replayed
     *  trace walks the recorded sequence in order.  False on miss. */
    bool lookup(const std::string& key, uint64_t seq,
                KernelTimingProfile* out) const;

    /** Fold @p profile into @p key's entry: the first recording keeps
     *  the whole profile, and the duration lands in sequence slot
     *  @p seq — the per-run occurrence index the engine assigned at
     *  promotion.  Slot-indexed (rather than appended) because
     *  launches can retire out of promotion order, and lookup walks
     *  slots in promotion order.  Slots past kMaxRecordedDurations
     *  are dropped. */
    void record(const std::string& key, uint64_t seq,
                KernelTimingProfile profile);

    size_t size() const;
    std::vector<std::string> keys() const;

    /** Whole-cache byte archive ("TCRP" magic + version + entries). */
    std::vector<uint8_t> serialize() const;
    /** Merge every entry of @p data into this cache (first writer
     *  wins).  Throws SnapshotError on bad magic/version/truncation. */
    void deserialize(const std::vector<uint8_t>& data);

    /** Write the archive to @p path (atomic-ish: best effort).  False
     *  on I/O failure. */
    bool save_file(const std::string& path) const;
    /** Merge one archive file.  False when the file cannot be read;
     *  throws SnapshotError on a corrupt archive. */
    bool load_file(const std::string& path);
    /** Merge every *.rpc file under @p dir (sorted name order).
     *  Returns the number of files merged; 0 for a missing dir. */
    size_t load_dir(const std::string& dir);

  private:
    /** One slot: the first-recorded profile plus every recorded
     *  duration in recording order; lookup serves
     *  durations[seq % durations.size()]. */
    struct Entry
    {
        KernelTimingProfile profile;
        std::vector<uint64_t> durations;
    };

    mutable std::mutex mu_;
    std::map<std::string, Entry> profiles_;
};

}  // namespace tcsim
