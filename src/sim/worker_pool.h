#pragma once
/**
 * @file
 * Persistent worker pool for the engine's parallel tick phase.
 *
 * The pool owns N-1 threads; the caller participates as the N-th
 * worker, so `WorkerPool(threads)` saturates exactly `threads` cores.
 * Work items are claimed from a shared atomic counter (dynamic load
 * balancing — SMs vary wildly in per-tick cost), which is safe because
 * the engine only hands the pool phases whose items touch disjoint
 * state: execution order within a phase is irrelevant by construction.
 *
 * for_n() is a full barrier: it returns only after every index in
 * [0, n) has been processed, so the engine's serial phases before and
 * after it need no further synchronization.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcsim {

/** The host's hardware thread count, never less than 1 (the shared
 *  resolution for sim_threads=0 and batch thread budgets). */
inline int
hardware_threads()
{
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
}

/** A fixed set of workers executing indexed parallel-for batches. */
class WorkerPool
{
  public:
    /** @p threads: total worker count including the calling thread
     *  (so `threads - 1` pool threads are spawned; 1 = no threads,
     *  for_n degrades to a plain loop). */
    explicit WorkerPool(int threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Run fn(i) for every i in [0, n), on the pool plus the calling
     *  thread; returns when all n calls have completed. */
    void for_n(size_t n, const std::function<void(size_t)>& fn);

    /** Total worker count including the caller. */
    int threads() const { return static_cast<int>(threads_.size()) + 1; }

  private:
    void worker_main();

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    /** Bumped per batch; workers wake when it changes. */
    uint64_t epoch_ = 0;
    /** Pool threads still inside the current batch. */
    int running_ = 0;
    bool stop_ = false;
    size_t batch_n_ = 0;
    const std::function<void(size_t)>* batch_fn_ = nullptr;
    /** Next unclaimed index of the current batch. */
    std::atomic<size_t> next_{0};
};

}  // namespace tcsim
