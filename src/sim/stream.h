#pragma once
/**
 * @file
 * CUDA-style stream: an ordered queue of kernel launches.  Launches
 * within one stream execute back-to-back in enqueue order; launches on
 * different streams may execute concurrently when SM occupancy allows,
 * mirroring `cudaStreamCreate` / kernel<<<...,stream>>> semantics.
 */

#include <deque>
#include <utility>

#include "sim/kernel_desc.h"

namespace tcsim {

/** An ordered launch queue.  Created via Gpu::create_stream(). */
class Stream
{
  public:
    explicit Stream(int id) : id_(id) {}

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    int id() const { return id_; }

    /** Append a kernel launch; it runs after all earlier launches on
     *  this stream have completed.  The descriptor is copied. */
    void enqueue(KernelDesc kernel) { queue_.push_back(std::move(kernel)); }

    /** Launches not yet started by the engine. */
    size_t depth() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }

  private:
    friend class ExecutionEngine;

    /** Engine side: pop the next launch (engine keeps it alive for the
     *  duration of the run). */
    KernelDesc pop()
    {
        KernelDesc k = std::move(queue_.front());
        queue_.pop_front();
        return k;
    }

    int id_;
    std::deque<KernelDesc> queue_;
};

}  // namespace tcsim
