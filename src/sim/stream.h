#pragma once
/**
 * @file
 * CUDA-style stream: an ordered queue of operations — kernel launches,
 * event records, event waits, and host callbacks.  Launches within one
 * stream execute back-to-back in enqueue order; launches on different
 * streams may execute concurrently when SM occupancy allows, mirroring
 * `cudaStreamCreate` / kernel<<<...,stream>>> semantics.
 *
 * Synchronization ops give streams a dependency DAG:
 *  - record(Event&)   completes the event (cycle-stamped) once every
 *    earlier launch on this stream has retired (cudaEventRecord);
 *  - wait(Event&)     blocks all later work on this stream until the
 *    event completes (cudaStreamWaitEvent, cross-stream
 *    happens-before);
 *  - add_callback(fn) invokes a host-side hook, with the engine cycle,
 *    once every earlier launch has retired (cudaStreamAddCallback).
 */

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>

#include "sim/event.h"
#include "sim/kernel_desc.h"

namespace tcsim {

/** An ordered operation queue.  Created via Gpu::create_stream(). */
class Stream
{
  public:
    explicit Stream(int id) : id_(id) {}

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    int id() const { return id_; }

    /** Append a kernel launch; it runs after all earlier work on this
     *  stream has completed (and after any preceding wait() is
     *  satisfied).  Taken by value and moved into the queue, so
     *  callers that move a descriptor pay no copy. */
    void enqueue(KernelDesc kernel)
    {
        ops_.emplace_back();
        ops_.back().kind = OpKind::kLaunch;
        ops_.back().kernel = std::move(kernel);
    }

    /** Record @p event: it completes — and is stamped with the engine
     *  cycle — once every launch enqueued on this stream before this
     *  call has retired.  Re-recording resets the event; the last
     *  record processed wins. */
    void record(Event& event)
    {
        event.recorded_ = true;
        event.complete_ = false;
        ops_.emplace_back();
        ops_.back().kind = OpKind::kRecordEvent;
        ops_.back().record = &event;
    }

    /** Block all work enqueued on this stream after this call until
     *  @p event completes.  Waiting on an event this same stream has
     *  already recorded is a no-op by construction. */
    void wait(const Event& event)
    {
        ops_.emplace_back();
        ops_.back().kind = OpKind::kWaitEvent;
        ops_.back().wait = &event;
    }

    /** Host-side hook: @p fn(cycle) is invoked (from the engine loop)
     *  once every launch enqueued before this call has retired.  The
     *  callback may enqueue further work onto streams but must not
     *  re-enter Gpu::run()/run_until()/synchronize(). */
    void add_callback(std::function<void(uint64_t)> fn)
    {
        ops_.emplace_back();
        ops_.back().kind = OpKind::kCallback;
        ops_.back().callback = std::move(fn);
    }

    /** Kernel launches not yet started by the engine. */
    size_t depth() const
    {
        size_t n = 0;
        for (const Op& op : ops_)
            n += op.kind == OpKind::kLaunch ? 1 : 0;
        return n;
    }

    /** No queued operations of any kind. */
    bool empty() const { return ops_.empty(); }

    /** Drop every queued operation (launches, records, waits,
     *  callbacks) so the stream can be rebuilt between runs.  Must not
     *  be called while an engine run is draining this stream. */
    void clear() { ops_.clear(); }

  private:
    friend class ExecutionEngine;
    friend class Gpu;  // Snapshot/restore of the op queue.

    enum class OpKind : uint8_t {
        kLaunch,
        kRecordEvent,
        kWaitEvent,
        kCallback,
    };

    /** One queued stream operation. */
    struct Op
    {
        OpKind kind = OpKind::kLaunch;
        KernelDesc kernel;             ///< kLaunch.
        Event* record = nullptr;       ///< kRecordEvent.
        const Event* wait = nullptr;   ///< kWaitEvent.
        std::function<void(uint64_t)> callback;  ///< kCallback.
    };

    /** Engine side: pop the next op (the engine keeps launches alive
     *  for the duration of their residency). */
    Op pop()
    {
        Op op = std::move(ops_.front());
        ops_.pop_front();
        return op;
    }

    int id_;
    std::deque<Op> ops_;
};

}  // namespace tcsim
