#pragma once
/**
 * @file
 * Warp scheduler policies for the sub-core: greedy-then-oldest (GTO,
 * the GPGPU-Sim default the paper's model uses), loose round-robin
 * (LRR), and a two-level scheduler that round-robins a small fetch
 * group of warps and promotes from the pending pool only when the
 * group stalls (Narasiman et al., MICRO'11 style).
 */

#include <algorithm>
#include <vector>

namespace tcsim {

enum class SchedulerPolicy { kGto, kLrr, kTwoLevel };

/**
 * Produces the warp visit order for one issue cycle over @p num_warps
 * sub-core-resident warps.
 *
 * This is the stateless reference of each policy's visit order (unit
 * tested in tests/scheduler_test.cpp); the engine's sub-core issue
 * loop (SubCore::try_issue) implements the same orders over its
 * mutable active-warp list, where kTwoLevel additionally promotes an
 * issuing pending-pool warp into the fetch group.
 */
class WarpScheduler
{
  public:
    /** Fetch-group size of the two-level policy: warps 0..G-1 of the
     *  priority order form the active set; the rest are pending. */
    static constexpr int kFetchGroupSize = 8;

    explicit WarpScheduler(SchedulerPolicy policy = SchedulerPolicy::kGto)
        : policy_(policy)
    {
    }

    /** Fill @p order with warp indices in scheduling priority order. */
    void order(int num_warps, std::vector<int>* order) const;

    /** Record which warp issued this cycle (feeds greediness/rotation). */
    void issued(int warp) { last_issued_ = warp; }

  private:
    SchedulerPolicy policy_;
    int last_issued_ = -1;
};

inline void
WarpScheduler::order(int num_warps, std::vector<int>* order) const
{
    order->clear();
    if (num_warps == 0)
        return;
    switch (policy_) {
      case SchedulerPolicy::kGto:
        // Greedy: last issued warp first, then oldest (ascending index).
        if (last_issued_ >= 0 && last_issued_ < num_warps)
            order->push_back(last_issued_);
        for (int w = 0; w < num_warps; ++w)
            if (w != last_issued_)
                order->push_back(w);
        break;

      case SchedulerPolicy::kLrr: {
        // LRR: start after the last issued warp.
        int start = last_issued_ < 0 ? 0 : (last_issued_ + 1) % num_warps;
        for (int i = 0; i < num_warps; ++i)
            order->push_back((start + i) % num_warps);
        break;
      }

      case SchedulerPolicy::kTwoLevel: {
        // Active set: warps 0..g-1, visited LRR so long-latency stalls
        // rotate within the group; pending warps (g..n-1) are only
        // considered when the whole group is blocked, in age order.
        int g = std::min(kFetchGroupSize, num_warps);
        int start = (last_issued_ >= 0 && last_issued_ < g)
                        ? (last_issued_ + 1) % g
                        : 0;
        for (int i = 0; i < g; ++i)
            order->push_back((start + i) % g);
        for (int w = g; w < num_warps; ++w)
            order->push_back(w);
        break;
      }
    }
}

}  // namespace tcsim
