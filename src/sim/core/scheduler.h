#pragma once
/**
 * @file
 * Warp scheduler policies for the sub-core: greedy-then-oldest (GTO,
 * the GPGPU-Sim default the paper's model uses) and loose round-robin
 * (LRR).
 */

#include <vector>

namespace tcsim {

enum class SchedulerPolicy { kGto, kLrr };

/**
 * Produces the warp visit order for one issue cycle over @p num_warps
 * sub-core-resident warps.
 */
class WarpScheduler
{
  public:
    explicit WarpScheduler(SchedulerPolicy policy = SchedulerPolicy::kGto)
        : policy_(policy)
    {
    }

    /** Fill @p order with warp indices in scheduling priority order. */
    void order(int num_warps, std::vector<int>* order) const;

    /** Record which warp issued this cycle (feeds greediness/rotation). */
    void issued(int warp) { last_issued_ = warp; }

  private:
    SchedulerPolicy policy_;
    int last_issued_ = -1;
};

inline void
WarpScheduler::order(int num_warps, std::vector<int>* order) const
{
    order->clear();
    if (num_warps == 0)
        return;
    if (policy_ == SchedulerPolicy::kGto) {
        // Greedy: last issued warp first, then oldest (ascending index).
        if (last_issued_ >= 0 && last_issued_ < num_warps)
            order->push_back(last_issued_);
        for (int w = 0; w < num_warps; ++w)
            if (w != last_issued_)
                order->push_back(w);
    } else {
        // LRR: start after the last issued warp.
        int start = last_issued_ < 0 ? 0 : (last_issued_ + 1) % num_warps;
        for (int i = 0; i < num_warps; ++i)
            order->push_back((start + i) % num_warps);
    }
}

}  // namespace tcsim
