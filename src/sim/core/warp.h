#pragma once
/**
 * @file
 * Warp and CTA runtime state for the SM model.
 */

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "isa/instruction.h"
#include "isa/reg_state.h"
#include "sim/grid_run.h"
#include "sim/mem/shared_memory.h"

namespace tcsim {

/** Scheduling state of one warp. */
enum class WarpState : uint8_t {
    kReady,      ///< May issue when hazards clear.
    kAtBarrier,  ///< Blocked on BAR.SYNC.
    kFinished,   ///< EXIT issued and all writes drained.
};

/** One resident warp. */
struct Warp
{
    WarpProgram prog;
    size_t pc = 0;
    /** Functional registers (null in timing-only runs). */
    std::unique_ptr<WarpRegState> regs;

    /** Grid this warp belongs to (statistics attribution, functional
     *  mode); warps from several grids may share a sub-core. */
    GridRun* grid = nullptr;
    int cta_slot = -1;    ///< Index into the SM's CTA slot table.
    int warp_in_cta = 0;

    WarpState state = WarpState::kReady;
    bool exited = false;      ///< EXIT reached (may still drain).
    int inflight = 0;         ///< Issued instructions not written back.

    /** Loop-region execution state (kLoopBegin/kLoopEnd). */
    int iter = 0;
    int loop_trips = 1;
    size_t loop_begin = 0;

    /** Issue cycle of each live WMMA macro op, keyed by
     *  (iter << 32 | macro_id). */
    std::unordered_map<uint64_t, uint64_t> macro_start;

    /** Macro bookkeeping key for an instruction issued at @p it. */
    static uint64_t macro_key(uint32_t macro_id, int it)
    {
        return (static_cast<uint64_t>(it) << 32) | macro_id;
    }

    bool issuable() const
    {
        return state == WarpState::kReady && !exited && pc < prog.size();
    }
};

/** One resident CTA. */
struct CtaSlot
{
    bool valid = false;
    GridRun* grid = nullptr;  ///< Grid the CTA came from (multi-grid SM).
    int cta_id = -1;
    int live_warps = 0;      ///< Warps not yet finished.
    int barrier_arrived = 0;
    uint64_t start_cycle = 0;  ///< Dispatch cycle (sampled-mode latency).
    std::unique_ptr<SharedMemoryStorage> shared;
};

}  // namespace tcsim
