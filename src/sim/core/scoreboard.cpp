#include "sim/core/scoreboard.h"

#include "common/logging.h"

namespace tcsim {

namespace {

/** Registers written by a load of the given width. */
int
dst_span(const Instruction& inst)
{
    if (inst.op == Opcode::kLdg || inst.op == Opcode::kLds)
        return std::max(1, inst.width_bits / 32);
    return 1;
}

/** Registers read by a store of the given width. */
int
src_span(const Instruction& inst)
{
    if (inst.op == Opcode::kStg || inst.op == Opcode::kSts)
        return std::max(1, inst.width_bits / 32);
    return 1;
}

}  // namespace

void
Scoreboard::for_each_dst(const Instruction& inst, auto&& fn)
{
    if (inst.op == Opcode::kHmma) {
        for (int r = 0; r < inst.hmma.d_nregs; ++r)
            fn(inst.hmma.d_reg + r);
        return;
    }
    for (int i = 0; i < inst.n_dst; ++i)
        for (int r = 0; r < dst_span(inst); ++r)
            fn(inst.dst[i] + r);
}

void
Scoreboard::for_each_src(const Instruction& inst, auto&& fn)
{
    if (inst.op == Opcode::kHmma) {
        for (int r = 0; r < inst.hmma.a_nregs; ++r)
            fn(inst.hmma.a_reg + r);
        for (int r = 0; r < inst.hmma.b_nregs; ++r)
            fn(inst.hmma.b_reg + r);
        for (int r = 0; r < inst.hmma.c_nregs; ++r)
            fn(inst.hmma.c_reg + r);
        return;
    }
    for (int i = 0; i < inst.n_src; ++i)
        for (int r = 0; r < src_span(inst); ++r)
            fn(inst.src[i] + r);
}

bool
Scoreboard::can_issue(int w, const Instruction& inst) const
{
    const auto& bits = pending_[w];

    if (inst.op == Opcode::kHmma && !inst.hmma.first_in_group) {
        // Intra-group accumulator reuse is forwarded inside the tensor
        // core; the group issues as a unit once its head clears.
        return true;
    }

    bool ok = true;
    for_each_src(inst, [&](int reg) { ok = ok && !bits[reg]; });
    for_each_dst(inst, [&](int reg) { ok = ok && !bits[reg]; });
    return ok;
}

void
Scoreboard::issue(int w, const Instruction& inst)
{
    if (inst.op == Opcode::kHmma && !inst.hmma.first_in_group)
        return;  // D registers were marked by the group head.
    for_each_dst(inst, [&](int reg) { pending_[w][reg] = true; });
}

void
Scoreboard::complete(int w, const Instruction& inst)
{
    if (inst.op == Opcode::kHmma && !inst.hmma.last_in_group)
        return;  // only the group tail releases the D registers
    for_each_dst(inst, [&](int reg) { pending_[w][reg] = false; });
}

}  // namespace tcsim
