#include "sim/core/subcore.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/core/sm.h"

namespace tcsim {

SubCore::SubCore(SM* sm, int index, SchedulerPolicy policy)
    : sm_(sm), index_(index), policy_(policy),
      tc_(sm->config().arch)
{
    const GpuConfig& cfg = sm->config();
    // Warp-level initiation interval = 32 threads / lanes.
    fp32_ = ExecUnit(kWarpSize / cfg.fp32_lanes, cfg.fp32_latency);
    int_ = ExecUnit(kWarpSize / cfg.int_lanes, cfg.int_latency);
    fp64_ = ExecUnit(kWarpSize / cfg.fp64_lanes, cfg.fp64_latency);
    mufu_ = ExecUnit(kWarpSize / cfg.mufu_lanes, cfg.mufu_latency);
}

int
SubCore::add_warp(std::unique_ptr<Warp> warp)
{
    int slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        warps_[static_cast<size_t>(slot)] = std::move(warp);
        scoreboard_.reset_warp(slot);
    } else {
        warps_.push_back(std::move(warp));
        scoreboard_.add_warp();
        slot = static_cast<int>(warps_.size()) - 1;
    }
    active_.push_back(slot);
    return slot;
}

bool
SubCore::busy() const
{
    return !active_.empty() || !inflight_.empty();
}

bool
SubCore::do_writebacks(uint64_t now)
{
    bool completed = false;
    for (size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].done > now) {
            ++i;
            continue;
        }
        InFlight entry = inflight_[i];
        inflight_[i] = inflight_.back();
        inflight_.pop_back();
        completed = true;

        Warp& w = *warps_[entry.warp_slot];
        scoreboard_.complete(entry.warp_slot, *entry.inst);
        --w.inflight;
        if (entry.inst->macro_id != 0 && entry.inst->macro_end) {
            uint64_t key = Warp::macro_key(entry.inst->macro_id, entry.iter);
            auto it = w.macro_start.find(key);
            if (it != w.macro_start.end()) {
                sm_->record_macro(w.grid, entry.inst->macro_class,
                                  entry.done - it->second);
                w.macro_start.erase(it);
            }
        }
        maybe_finish_warp(entry.warp_slot);
    }
    return completed;
}

void
SubCore::maybe_finish_warp(int slot)
{
    Warp& w = *warps_[slot];
    if (!w.exited || w.inflight > 0 || w.state == WarpState::kFinished)
        return;
    w.state = WarpState::kFinished;
    // Release trace and register storage eagerly; large grids recycle
    // thousands of warps per SM.
    w.prog.clear();
    w.prog.shrink_to_fit();
    w.regs.reset();
    auto it = std::find(active_.begin(), active_.end(), slot);
    TCSIM_CHECK(it != active_.end());
    active_.erase(it);
    // Recycle the slot for a later CTA.  Drop the greedy pointer so a
    // recycled warp is not mistaken for the last issuer (preserves GTO
    // order of the non-recycling model).
    free_slots_.push_back(slot);
    if (last_issued_ == slot)
        last_issued_ = -1;
    sm_->warp_finished(w.cta_slot);
}

void
SubCore::release_barrier(int warp_slot)
{
    Warp& w = *warps_[warp_slot];
    if (w.state == WarpState::kAtBarrier)
        w.state = WarpState::kReady;
}

bool
SubCore::try_issue(uint64_t now)
{
    if (active_.empty()) {
        note_stall(StallReason::kEmpty, 1, nullptr);
        return false;
    }
    last_block_ = StallReason::kDrained;
    last_block_grid_ = nullptr;

    if (policy_ == SchedulerPolicy::kGto) {
        // Greedy: stay with the last issued warp while it can issue.
        if (last_issued_ >= 0 &&
            warps_[last_issued_]->state != WarpState::kFinished) {
            if (try_issue_warp(last_issued_, now))
                return true;
        }
        for (int slot : active_) {
            if (slot == last_issued_)
                continue;
            if (try_issue_warp(slot, now))
                return true;
        }
        note_stall(last_block_, 1, last_block_grid_);
        return false;
    }

    if (policy_ == SchedulerPolicy::kLrr) {
        // LRR: rotate through the active list.
        int n = static_cast<int>(active_.size());
        for (int i = 0; i < n; ++i) {
            int slot = active_[(lrr_pos_ + i) % n];
            if (try_issue_warp(slot, now)) {
                lrr_pos_ = (lrr_pos_ + i + 1) % n;
                return true;
            }
        }
        note_stall(last_block_, 1, last_block_grid_);
        return false;
    }

    // Two-level (authoritative implementation; WarpScheduler::order in
    // scheduler.h is the stateless reference of the same visit order):
    // LRR within the fetch group (the first G active warps); the
    // pending pool is only considered when the whole group is blocked.
    // An issuing pending warp is promoted into the group in place of
    // the least-recently-scheduled member, and rotation then moves
    // past it — exactly as if a group member had issued.
    int n = static_cast<int>(active_.size());
    int g = std::min(WarpScheduler::kFetchGroupSize, n);
    for (int i = 0; i < g; ++i) {
        int pos = (lrr_pos_ + i) % g;
        if (try_issue_warp(active_[pos], now)) {
            lrr_pos_ = (pos + 1) % g;
            return true;
        }
    }
    for (int i = g; i < n; ++i) {
        if (try_issue_warp(active_[i], now)) {
            int pos = lrr_pos_ % g;
            std::swap(active_[static_cast<size_t>(i)],
                      active_[static_cast<size_t>(pos)]);
            lrr_pos_ = (pos + 1) % g;
            return true;
        }
    }
    note_stall(last_block_, 1, last_block_grid_);
    return false;
}

uint64_t
SubCore::next_event(uint64_t now) const
{
    uint64_t e = UINT64_MAX;
    for (const auto& f : inflight_)
        e = std::min(e, f.done);
    if (!active_.empty()) {
        for (const ExecUnit* u : {&fp32_, &int_, &fp64_, &mufu_})
            if (u->next_free() > now)
                e = std::min(e, u->next_free());
        if (tc_.next_ready() > now)
            e = std::min(e, tc_.next_ready());
    }
    return e;
}

void
SubCore::account_skipped(uint64_t cycles)
{
    StallReason r = active_.empty() ? StallReason::kEmpty : last_block_;
    note_stall(r, cycles, r == StallReason::kEmpty ? nullptr
                                                   : last_block_grid_);
}

void
SubCore::note_stall(StallReason r, uint64_t cycles, GridRun* grid)
{
    stalls_[r] += cycles;
    if (grid != nullptr)
        grid->stats.shard(sm_->id()).stalls[r] += cycles;
}

bool
SubCore::try_issue_warp(int slot, uint64_t now)
{
    Warp& w = *warps_[slot];
    if (!w.issuable()) {
        if (w.state == WarpState::kAtBarrier) {
            last_block_ = StallReason::kBarrier;
            last_block_grid_ = w.grid;
        }
        return false;
    }

    const Instruction& inst = w.prog[w.pc];

    if (!scoreboard_.can_issue(slot, inst)) {
        last_block_ = StallReason::kScoreboard;
        last_block_grid_ = w.grid;
        return false;
    }

    bool loop_back = false;

    switch (inst.op) {
      case Opcode::kHmma: {
        auto done = tc_.try_issue(slot, inst, now);
        if (!done) {
            last_block_ = StallReason::kTcBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(*done, slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kLdg:
      case Opcode::kStg:
      case Opcode::kLds:
      case Opcode::kSts: {
        StallReason block = sm_->mio_push(index_, slot, &inst, w.iter);
        if (block != StallReason::kNone) {
            last_block_ = block;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        ++w.inflight;
        break;
      }
      case Opcode::kFfma:
      case Opcode::kFadd:
      case Opcode::kHfma2: {
        if (!fp32_.ready(now)) {
            last_block_ = StallReason::kAluBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(fp32_.issue(now), slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kIadd:
      case Opcode::kImad:
      case Opcode::kMov:
      case Opcode::kCs2r: {
        if (!int_.ready(now)) {
            last_block_ = StallReason::kAluBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(int_.issue(now), slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kBarSync: {
        w.state = WarpState::kAtBarrier;
        break;
      }
      case Opcode::kLoopBegin: {
        TCSIM_CHECK(inst.imm >= 1);
        w.loop_trips = static_cast<int>(inst.imm);
        w.loop_begin = w.pc;
        w.iter = 0;
        break;
      }
      case Opcode::kLoopEnd: {
        if (w.iter + 1 < w.loop_trips)
            loop_back = true;
        break;
      }
      case Opcode::kNop:
        break;
      case Opcode::kExit: {
        w.exited = true;
        break;
      }
    }

    finish_issue(slot, w, inst, now);
    if (loop_back) {
        ++w.iter;
        w.pc = w.loop_begin + 1;  // finish_issue advanced past kLoopEnd
    }
    if (inst.op == Opcode::kBarSync)
        sm_->barrier_arrive(w.cta_slot);
    if (inst.op == Opcode::kExit)
        maybe_finish_warp(slot);
    return true;
}

void
SubCore::finish_issue(int slot, Warp& w, const Instruction& inst,
                      uint64_t now)
{
    if (inst.macro_id != 0) {
        uint64_t key = Warp::macro_key(inst.macro_id, w.iter);
        if (!w.macro_start.contains(key))
            w.macro_start.emplace(key, now);
    }
    if (w.grid->kernel->functional)
        sm_->execute_functional(w, inst);
    ++w.pc;
    ++issued_;
    last_issued_ = slot;
    sm_->count_issue(w, inst);
}

void
SubCore::register_writeback(uint64_t done, int warp_slot,
                            const Instruction* inst, int iter)
{
    // Writebacks at `now` must still complete; nudge to the next cycle.
    inflight_.push_back(InFlight{std::max(done, sm_->now() + 1), warp_slot,
                                 inst, iter});
}

namespace {

/** Stable index of @p g in the engine's resident-grid table.  Finished
 *  warps keep their (possibly dangling) grid pointer; callers encode
 *  those as UINT32_MAX instead of resolving them here. */
uint32_t
grid_index_of(const std::vector<GridRun*>& grids, const GridRun* g)
{
    for (size_t i = 0; i < grids.size(); ++i)
        if (grids[i] == g)
            return static_cast<uint32_t>(i);
    throw SnapshotError("grid pointer not in resident table");
}

}  // namespace

void
SubCore::save_state(SnapshotWriter& w,
                    const std::vector<GridRun*>& grids) const
{
    w.tag(kTagSubCore);
    w.u64(warps_.size());
    for (const auto& wp : warps_) {
        const Warp& wr = *wp;
        w.tag(kTagWarp);
        w.u8(static_cast<uint8_t>(wr.state));
        w.b(wr.exited);
        w.i32(wr.inflight);
        w.u64(wr.pc);
        w.i32(wr.iter);
        w.i32(wr.loop_trips);
        w.u64(wr.loop_begin);
        w.i32(wr.cta_slot);
        w.i32(wr.warp_in_cta);
        // A finished warp's grid pointer may dangle (its grid can have
        // retired); it is never dereferenced again, so drop it.
        bool finished = wr.state == WarpState::kFinished;
        w.u32(finished ? UINT32_MAX : grid_index_of(grids, wr.grid));
        w.u64(wr.prog.size());
        w.b(wr.regs != nullptr);
        if (wr.regs)
            wr.regs->save_state(w);
        // Sorted key order: lookups are by key so map order is not
        // observable, but the archive bytes must be deterministic.
        std::vector<std::pair<uint64_t, uint64_t>> macros(
            wr.macro_start.begin(), wr.macro_start.end());
        std::sort(macros.begin(), macros.end());
        w.u64(macros.size());
        for (const auto& [key, start] : macros) {
            w.u64(key);
            w.u64(start);
        }
    }
    // active_ and free_slots_ in exact runtime order: GTO/LRR visit
    // active_ in order and slots recycle LIFO, so order is behaviour.
    w.u64(active_.size());
    for (int s : active_)
        w.i32(s);
    w.u64(free_slots_.size());
    for (int s : free_slots_)
        w.i32(s);
    scoreboard_.save_state(w);
    fp32_.save_state(w);
    int_.save_state(w);
    fp64_.save_state(w);
    mufu_.save_state(w);
    tc_.save_state(w);
    // In-flight writebacks in exact vector order (do_writebacks
    // swap-erases, so the order encodes completion history).
    w.u64(inflight_.size());
    for (const InFlight& f : inflight_) {
        w.u64(f.done);
        w.i32(f.warp_slot);
        const Warp& owner = *warps_[static_cast<size_t>(f.warp_slot)];
        w.u64(static_cast<uint64_t>(f.inst - owner.prog.data()));
        w.i32(f.iter);
    }
    w.i32(last_issued_);
    w.i32(lrr_pos_);
    w.u64(issued_);
    for (uint64_t c : stalls_.counts)
        w.u64(c);
    w.u8(static_cast<uint8_t>(last_block_));
    w.u32(last_block_grid_ ? grid_index_of(grids, last_block_grid_)
                           : UINT32_MAX);
}

void
SubCore::load_state(SnapshotReader& r, const std::vector<GridRun*>& grids)
{
    r.tag(kTagSubCore);
    size_t nwarps = r.u64();
    warps_.clear();
    warps_.reserve(nwarps);
    for (size_t i = 0; i < nwarps; ++i) {
        r.tag(kTagWarp);
        auto wp = std::make_unique<Warp>();
        Warp& wr = *wp;
        wr.state = static_cast<WarpState>(r.u8());
        wr.exited = r.b();
        wr.inflight = r.i32();
        wr.pc = r.u64();
        wr.iter = r.i32();
        wr.loop_trips = r.i32();
        wr.loop_begin = r.u64();
        wr.cta_slot = r.i32();
        wr.warp_in_cta = r.i32();
        uint32_t gidx = r.u32();
        uint64_t prog_size = r.u64();
        if (gidx != UINT32_MAX) {
            if (gidx >= grids.size())
                throw SnapshotError("warp grid index out of range");
            wr.grid = grids[gidx];
            wr.prog = wr.grid->kernel->trace(
                sm_->cta_id_of_slot(wr.cta_slot), wr.warp_in_cta);
            if (wr.prog.size() != prog_size)
                throw SnapshotError(
                    "regenerated warp program length mismatch (trace "
                    "generator not deterministic?)");
        } else if (prog_size != 0) {
            throw SnapshotError("finished warp with non-empty program");
        }
        if (r.b()) {
            wr.regs = std::make_unique<WarpRegState>();
            wr.regs->load_state(r);
        }
        uint64_t nmacros = r.u64();
        for (uint64_t m = 0; m < nmacros; ++m) {
            uint64_t key = r.u64();
            wr.macro_start.emplace(key, r.u64());
        }
        warps_.push_back(std::move(wp));
    }
    active_.clear();
    size_t nactive = r.u64();
    for (size_t i = 0; i < nactive; ++i)
        active_.push_back(r.i32());
    free_slots_.clear();
    size_t nfree = r.u64();
    for (size_t i = 0; i < nfree; ++i)
        free_slots_.push_back(r.i32());
    scoreboard_.load_state(r);
    fp32_.load_state(r);
    int_.load_state(r);
    fp64_.load_state(r);
    mufu_.load_state(r);
    tc_.load_state(r);
    inflight_.clear();
    size_t ninflight = r.u64();
    for (size_t i = 0; i < ninflight; ++i) {
        InFlight f;
        f.done = r.u64();
        f.warp_slot = r.i32();
        uint64_t idx = r.u64();
        if (f.warp_slot < 0 ||
            static_cast<size_t>(f.warp_slot) >= warps_.size())
            throw SnapshotError("in-flight warp slot out of range");
        const Warp& owner = *warps_[static_cast<size_t>(f.warp_slot)];
        if (idx >= owner.prog.size())
            throw SnapshotError("in-flight instruction index out of range");
        f.inst = &owner.prog[idx];
        f.iter = r.i32();
        inflight_.push_back(f);
    }
    last_issued_ = r.i32();
    lrr_pos_ = r.i32();
    issued_ = r.u64();
    for (uint64_t& c : stalls_.counts)
        c = r.u64();
    last_block_ = static_cast<StallReason>(r.u8());
    uint32_t bgidx = r.u32();
    if (bgidx == UINT32_MAX) {
        last_block_grid_ = nullptr;
    } else {
        if (bgidx >= grids.size())
            throw SnapshotError("stall grid index out of range");
        last_block_grid_ = grids[bgidx];
    }
}

}  // namespace tcsim
