#include "sim/core/subcore.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/core/sm.h"

namespace tcsim {

SubCore::SubCore(SM* sm, int index, SchedulerPolicy policy)
    : sm_(sm), index_(index), policy_(policy),
      tc_(sm->config().arch)
{
    const GpuConfig& cfg = sm->config();
    // Warp-level initiation interval = 32 threads / lanes.
    fp32_ = ExecUnit(kWarpSize / cfg.fp32_lanes, cfg.fp32_latency);
    int_ = ExecUnit(kWarpSize / cfg.int_lanes, cfg.int_latency);
    fp64_ = ExecUnit(kWarpSize / cfg.fp64_lanes, cfg.fp64_latency);
    mufu_ = ExecUnit(kWarpSize / cfg.mufu_lanes, cfg.mufu_latency);
}

int
SubCore::add_warp(std::unique_ptr<Warp> warp)
{
    int slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        warps_[static_cast<size_t>(slot)] = std::move(warp);
        scoreboard_.reset_warp(slot);
    } else {
        warps_.push_back(std::move(warp));
        scoreboard_.add_warp();
        slot = static_cast<int>(warps_.size()) - 1;
    }
    active_.push_back(slot);
    return slot;
}

bool
SubCore::busy() const
{
    return !active_.empty() || !inflight_.empty();
}

bool
SubCore::do_writebacks(uint64_t now)
{
    bool completed = false;
    for (size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].done > now) {
            ++i;
            continue;
        }
        InFlight entry = inflight_[i];
        inflight_[i] = inflight_.back();
        inflight_.pop_back();
        completed = true;

        Warp& w = *warps_[entry.warp_slot];
        scoreboard_.complete(entry.warp_slot, *entry.inst);
        --w.inflight;
        if (entry.inst->macro_id != 0 && entry.inst->macro_end) {
            uint64_t key = Warp::macro_key(entry.inst->macro_id, entry.iter);
            auto it = w.macro_start.find(key);
            if (it != w.macro_start.end()) {
                sm_->record_macro(w.grid, entry.inst->macro_class,
                                  entry.done - it->second);
                w.macro_start.erase(it);
            }
        }
        maybe_finish_warp(entry.warp_slot);
    }
    return completed;
}

void
SubCore::maybe_finish_warp(int slot)
{
    Warp& w = *warps_[slot];
    if (!w.exited || w.inflight > 0 || w.state == WarpState::kFinished)
        return;
    w.state = WarpState::kFinished;
    // Release trace and register storage eagerly; large grids recycle
    // thousands of warps per SM.
    w.prog.clear();
    w.prog.shrink_to_fit();
    w.regs.reset();
    auto it = std::find(active_.begin(), active_.end(), slot);
    TCSIM_CHECK(it != active_.end());
    active_.erase(it);
    // Recycle the slot for a later CTA.  Drop the greedy pointer so a
    // recycled warp is not mistaken for the last issuer (preserves GTO
    // order of the non-recycling model).
    free_slots_.push_back(slot);
    if (last_issued_ == slot)
        last_issued_ = -1;
    sm_->warp_finished(w.cta_slot);
}

void
SubCore::release_barrier(int warp_slot)
{
    Warp& w = *warps_[warp_slot];
    if (w.state == WarpState::kAtBarrier)
        w.state = WarpState::kReady;
}

bool
SubCore::try_issue(uint64_t now)
{
    if (active_.empty()) {
        note_stall(StallReason::kEmpty, 1, nullptr);
        return false;
    }
    last_block_ = StallReason::kDrained;
    last_block_grid_ = nullptr;

    if (policy_ == SchedulerPolicy::kGto) {
        // Greedy: stay with the last issued warp while it can issue.
        if (last_issued_ >= 0 &&
            warps_[last_issued_]->state != WarpState::kFinished) {
            if (try_issue_warp(last_issued_, now))
                return true;
        }
        for (int slot : active_) {
            if (slot == last_issued_)
                continue;
            if (try_issue_warp(slot, now))
                return true;
        }
        note_stall(last_block_, 1, last_block_grid_);
        return false;
    }

    if (policy_ == SchedulerPolicy::kLrr) {
        // LRR: rotate through the active list.
        int n = static_cast<int>(active_.size());
        for (int i = 0; i < n; ++i) {
            int slot = active_[(lrr_pos_ + i) % n];
            if (try_issue_warp(slot, now)) {
                lrr_pos_ = (lrr_pos_ + i + 1) % n;
                return true;
            }
        }
        note_stall(last_block_, 1, last_block_grid_);
        return false;
    }

    // Two-level (authoritative implementation; WarpScheduler::order in
    // scheduler.h is the stateless reference of the same visit order):
    // LRR within the fetch group (the first G active warps); the
    // pending pool is only considered when the whole group is blocked.
    // An issuing pending warp is promoted into the group in place of
    // the least-recently-scheduled member, and rotation then moves
    // past it — exactly as if a group member had issued.
    int n = static_cast<int>(active_.size());
    int g = std::min(WarpScheduler::kFetchGroupSize, n);
    for (int i = 0; i < g; ++i) {
        int pos = (lrr_pos_ + i) % g;
        if (try_issue_warp(active_[pos], now)) {
            lrr_pos_ = (pos + 1) % g;
            return true;
        }
    }
    for (int i = g; i < n; ++i) {
        if (try_issue_warp(active_[i], now)) {
            int pos = lrr_pos_ % g;
            std::swap(active_[static_cast<size_t>(i)],
                      active_[static_cast<size_t>(pos)]);
            lrr_pos_ = (pos + 1) % g;
            return true;
        }
    }
    note_stall(last_block_, 1, last_block_grid_);
    return false;
}

uint64_t
SubCore::next_event(uint64_t now) const
{
    uint64_t e = UINT64_MAX;
    for (const auto& f : inflight_)
        e = std::min(e, f.done);
    if (!active_.empty()) {
        for (const ExecUnit* u : {&fp32_, &int_, &fp64_, &mufu_})
            if (u->next_free() > now)
                e = std::min(e, u->next_free());
        if (tc_.next_ready() > now)
            e = std::min(e, tc_.next_ready());
    }
    return e;
}

void
SubCore::account_skipped(uint64_t cycles)
{
    StallReason r = active_.empty() ? StallReason::kEmpty : last_block_;
    note_stall(r, cycles, r == StallReason::kEmpty ? nullptr
                                                   : last_block_grid_);
}

void
SubCore::note_stall(StallReason r, uint64_t cycles, GridRun* grid)
{
    stalls_[r] += cycles;
    if (grid != nullptr)
        grid->stats.shard(sm_->id()).stalls[r] += cycles;
}

bool
SubCore::try_issue_warp(int slot, uint64_t now)
{
    Warp& w = *warps_[slot];
    if (!w.issuable()) {
        if (w.state == WarpState::kAtBarrier) {
            last_block_ = StallReason::kBarrier;
            last_block_grid_ = w.grid;
        }
        return false;
    }

    const Instruction& inst = w.prog[w.pc];

    if (!scoreboard_.can_issue(slot, inst)) {
        last_block_ = StallReason::kScoreboard;
        last_block_grid_ = w.grid;
        return false;
    }

    bool loop_back = false;

    switch (inst.op) {
      case Opcode::kHmma: {
        auto done = tc_.try_issue(slot, inst, now);
        if (!done) {
            last_block_ = StallReason::kTcBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(*done, slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kLdg:
      case Opcode::kStg:
      case Opcode::kLds:
      case Opcode::kSts: {
        StallReason block = sm_->mio_push(index_, slot, &inst, w.iter);
        if (block != StallReason::kNone) {
            last_block_ = block;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        ++w.inflight;
        break;
      }
      case Opcode::kFfma:
      case Opcode::kFadd:
      case Opcode::kHfma2: {
        if (!fp32_.ready(now)) {
            last_block_ = StallReason::kAluBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(fp32_.issue(now), slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kIadd:
      case Opcode::kImad:
      case Opcode::kMov:
      case Opcode::kCs2r: {
        if (!int_.ready(now)) {
            last_block_ = StallReason::kAluBusy;
            last_block_grid_ = w.grid;
            return false;
        }
        scoreboard_.issue(slot, inst);
        register_writeback(int_.issue(now), slot, &inst, w.iter);
        ++w.inflight;
        break;
      }
      case Opcode::kBarSync: {
        w.state = WarpState::kAtBarrier;
        break;
      }
      case Opcode::kLoopBegin: {
        TCSIM_CHECK(inst.imm >= 1);
        w.loop_trips = static_cast<int>(inst.imm);
        w.loop_begin = w.pc;
        w.iter = 0;
        break;
      }
      case Opcode::kLoopEnd: {
        if (w.iter + 1 < w.loop_trips)
            loop_back = true;
        break;
      }
      case Opcode::kNop:
        break;
      case Opcode::kExit: {
        w.exited = true;
        break;
      }
    }

    finish_issue(slot, w, inst, now);
    if (loop_back) {
        ++w.iter;
        w.pc = w.loop_begin + 1;  // finish_issue advanced past kLoopEnd
    }
    if (inst.op == Opcode::kBarSync)
        sm_->barrier_arrive(w.cta_slot);
    if (inst.op == Opcode::kExit)
        maybe_finish_warp(slot);
    return true;
}

void
SubCore::finish_issue(int slot, Warp& w, const Instruction& inst,
                      uint64_t now)
{
    if (inst.macro_id != 0) {
        uint64_t key = Warp::macro_key(inst.macro_id, w.iter);
        if (!w.macro_start.contains(key))
            w.macro_start.emplace(key, now);
    }
    if (w.grid->kernel->functional)
        sm_->execute_functional(w, inst);
    ++w.pc;
    ++issued_;
    last_issued_ = slot;
    sm_->count_issue(w, inst);
}

void
SubCore::register_writeback(uint64_t done, int warp_slot,
                            const Instruction* inst, int iter)
{
    // Writebacks at `now` must still complete; nudge to the next cycle.
    inflight_.push_back(InFlight{std::max(done, sm_->now() + 1), warp_slot,
                                 inst, iter});
}

}  // namespace tcsim
