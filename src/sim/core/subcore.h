#pragma once
/**
 * @file
 * Sub-core model (Fig 1 of the paper): one warp scheduler issuing one
 * warp-instruction per clock into the FP32/INT/FP64/MUFU paths, the
 * tensor core pair, or the MIO (memory) queue, with scoreboard-based
 * hazard tracking and in-order per-warp issue.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/core/exec_unit.h"
#include "sim/core/scheduler.h"
#include "sim/core/scoreboard.h"
#include "sim/core/stall.h"
#include "sim/core/warp.h"
#include "sim/tc/tensor_core_unit.h"

namespace tcsim {

class SM;

/** One of the four processing blocks of an SM. */
class SubCore
{
  public:
    SubCore(SM* sm, int index, SchedulerPolicy policy);

    /** Add a warp at CTA launch; returns its slot index.  Slots of
     *  finished warps are recycled so long multi-kernel runs keep a
     *  bounded footprint. */
    int add_warp(std::unique_ptr<Warp> warp);

    Warp& warp(int slot) { return *warps_[slot]; }

    /** Number of warp slots (live + recycled). */
    size_t warp_count() const { return warps_.size(); }

    /** True while any resident warp is unfinished or writes are in
     *  flight. */
    bool busy() const;

    /** Complete instructions whose writeback cycle has arrived; true
     *  if any instruction completed. */
    bool do_writebacks(uint64_t now);

    /** Attempt to issue one instruction; true if something issued. */
    bool try_issue(uint64_t now);

    /** Earliest future cycle a stalled sub-core can change state: the
     *  nearest in-flight writeback or execution-unit ready time. */
    uint64_t next_event(uint64_t now) const;

    /** Attribute @p cycles of skipped stalled time to the issue-stall
     *  counters (same reason the last real attempt recorded). */
    void account_skipped(uint64_t cycles);

    /** Register a future writeback (used by the SM's MIO path too).
     *  @p iter is the loop iteration the instruction issued at. */
    void register_writeback(uint64_t done, int warp_slot,
                            const Instruction* inst, int iter);

    /** Number of instructions issued by this sub-core. */
    uint64_t issued() const { return issued_; }

    /** Issue-stall attribution (cycles no instruction issued, by the
     *  blocking reason of the last warp the scheduler considered).
     *  The enum lives in sim/core/stall.h; the alias keeps the
     *  historical SubCore::StallReason spelling working. */
    using StallReason = tcsim::StallReason;
    const StallCounts& stall_counts() const { return stalls_; }

    const TensorCoreUnit& tensor_cores() const { return tc_; }

    /** Release a warp blocked at the CTA barrier. */
    void release_barrier(int warp_slot);

    /** @p grid is retiring: drop the stall-attribution pointer if it
     *  references it (the GridRun is about to be destroyed). */
    void forget_grid(const GridRun* grid)
    {
        if (last_block_grid_ == grid)
            last_block_grid_ = nullptr;
    }

    /**
     * Serialize/restore the full sub-core state (snapshot support).
     * @p grids maps resident GridRun pointers to stable indices.  Warp
     * programs are not serialized: load regenerates them from each
     * grid's deterministic kernel trace and validates the length, so
     * the in-flight Instruction pointers (encoded as program indices)
     * re-anchor into identical programs.  Must only run between engine
     * ticks.  The containing SM must have loaded its CTA slot table
     * first (trace regeneration needs each warp's cta_id).
     */
    void save_state(SnapshotWriter& w,
                    const std::vector<GridRun*>& grids) const;
    void load_state(SnapshotReader& r, const std::vector<GridRun*>& grids);

  private:
    /** Try to issue the next instruction of one warp. */
    bool try_issue_warp(int slot, uint64_t now);

    /** Issue bookkeeping common to all instruction classes. */
    void finish_issue(int slot, Warp& w, const Instruction& inst,
                      uint64_t now);

    /** Retire a warp whose EXIT has drained. */
    void maybe_finish_warp(int slot);

    /** Count @p cycles of issue stall for @p r, attributed both to
     *  this sub-core's totals and (when known) to the grid whose warp
     *  blocked the scheduler. */
    void note_stall(StallReason r, uint64_t cycles, GridRun* grid);

    struct InFlight
    {
        uint64_t done;
        int warp_slot;
        const Instruction* inst;
        int iter;
    };

    SM* sm_;
    int index_;
    SchedulerPolicy policy_;
    std::vector<std::unique_ptr<Warp>> warps_;
    std::vector<int> active_;  ///< Slots of resident, unfinished warps.
    std::vector<int> free_slots_;  ///< Recyclable finished slots.
    Scoreboard scoreboard_{0};
    ExecUnit fp32_;
    ExecUnit int_;
    ExecUnit fp64_;
    ExecUnit mufu_;
    TensorCoreUnit tc_;
    std::vector<InFlight> inflight_;
    int last_issued_ = -1;
    int lrr_pos_ = 0;
    uint64_t issued_ = 0;
    StallCounts stalls_;
    StallReason last_block_ = StallReason::kNone;
    /** Grid of the warp that set last_block_ (stall attribution). */
    GridRun* last_block_grid_ = nullptr;
};

}  // namespace tcsim
