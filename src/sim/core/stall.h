#pragma once
/**
 * @file
 * Issue-stall taxonomy shared by the sub-core model (which records
 * stalls), GridRun (per-kernel attribution), and the engine's
 * LaunchStats/EngineStats (reporting): the reason a warp scheduler
 * issued nothing on a cycle, plus a typed counter array indexed by
 * that reason.
 */

#include <array>
#include <cstddef>
#include <cstdint>

namespace tcsim {

/** Why a sub-core's warp scheduler issued nothing this cycle (the
 *  blocking reason of the last warp the scheduler considered). */
enum class StallReason : uint8_t {
    kNone,        ///< Not stalled (bookkeeping placeholder).
    kEmpty,       ///< No resident warps at all.
    kBarrier,     ///< Blocked at a CTA-wide BAR.SYNC.
    kScoreboard,  ///< Register hazard (scoreboard busy).
    kTcBusy,      ///< Tensor-core pair not ready for the next HMMA.
    kMioFull,     ///< MIO (memory) queue full.
    kAluBusy,     ///< FP32/INT path not ready.
    kDrained,     ///< Warps exited, in-flight writes still draining.
    kMshrFull,    ///< L1 MSHR file out of entries (memory back-pressure).
    kNocBusy,     ///< SM<->L2 interconnect / L2 bank queues saturated.
    kDramQueue,   ///< DRAM partition request queue full.
};

constexpr size_t kNumStallReasons = 11;

/** Stable lower-case name of @p r (report keys, diagnostics). */
constexpr const char*
stall_reason_name(StallReason r)
{
    switch (r) {
      case StallReason::kNone: return "none";
      case StallReason::kEmpty: return "empty";
      case StallReason::kBarrier: return "barrier";
      case StallReason::kScoreboard: return "scoreboard";
      case StallReason::kTcBusy: return "tc_busy";
      case StallReason::kMioFull: return "mio_full";
      case StallReason::kAluBusy: return "alu_busy";
      case StallReason::kDrained: return "drained";
      case StallReason::kMshrFull: return "mshr_full";
      case StallReason::kNocBusy: return "noc_busy";
      case StallReason::kDramQueue: return "dram_queue";
    }
    return "?";
}

/**
 * Per-reason stall-cycle counters: a typed std::array indexed by
 * StallReason instead of the raw uint64_t[8] it replaces, so callers
 * cannot mix up reason and index.
 */
struct StallCounts
{
    std::array<uint64_t, kNumStallReasons> counts{};

    uint64_t& operator[](StallReason r)
    {
        return counts[static_cast<size_t>(r)];
    }
    uint64_t operator[](StallReason r) const
    {
        return counts[static_cast<size_t>(r)];
    }

    /** Named accessor: stall cycles attributed to @p r. */
    uint64_t cycles(StallReason r) const { return (*this)[r]; }

    /** Total stall cycles across every reason. */
    uint64_t total() const
    {
        uint64_t t = 0;
        for (uint64_t c : counts)
            t += c;
        return t;
    }

    void add(const StallCounts& other)
    {
        for (size_t i = 0; i < kNumStallReasons; ++i)
            counts[i] += other.counts[i];
    }
};

}  // namespace tcsim
