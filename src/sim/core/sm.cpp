#include "sim/core/sm.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/sim_error.h"
#include "sim/mem/coalescer.h"
#include "sim/snapshot_io.h"

namespace tcsim {

uint64_t
ExecutorCache::key(Arch arch, const HmmaInfo& info)
{
    return (static_cast<uint64_t>(arch) << 40) |
           (static_cast<uint64_t>(info.mode) << 36) |
           (static_cast<uint64_t>(info.a_layout) << 34) |
           (static_cast<uint64_t>(info.b_layout) << 32) |
           (static_cast<uint64_t>(info.shape.m) << 16) |
           (static_cast<uint64_t>(info.shape.n) << 8) |
           static_cast<uint64_t>(info.shape.k);
}

HmmaExecutor&
ExecutorCache::get(Arch arch, const HmmaInfo& info)
{
    uint64_t k = key(arch, info);
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = cache_.find(k);
        if (it != cache_.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = cache_.find(k);  // Lost the upgrade race?  Reuse.
    if (it == cache_.end()) {
        it = cache_
                 .emplace(k, std::make_unique<HmmaExecutor>(
                                 arch, info.mode, info.shape, info.a_layout,
                                 info.b_layout))
                 .first;
    }
    return *it->second;
}

SM::SM(int id, const GpuConfig& cfg, MemorySystem* mem,
       ExecutorCache* executors, SchedulerPolicy policy)
    : id_(id), cfg_(cfg), mem_(mem), executors_(executors),
      warp_cap_(cfg.max_warps_per_sm)
{
    subcores_.reserve(static_cast<size_t>(cfg.subcores_per_sm));
    for (int i = 0; i < cfg.subcores_per_sm; ++i)
        subcores_.push_back(std::make_unique<SubCore>(this, i, policy));
    cta_slots_.resize(static_cast<size_t>(cfg.max_ctas_per_sm));
    cta_warps_.resize(static_cast<size_t>(cfg.max_ctas_per_sm));
}

/** Per-CTA register demand of @p k (32-bit registers). */
static uint64_t
cta_registers(const KernelDesc& k)
{
    return static_cast<uint64_t>(k.warps_per_cta) * kWarpSize *
           static_cast<uint64_t>(k.regs_per_thread);
}

bool
SM::fits(const GpuConfig& cfg, const KernelDesc& k)
{
    TCSIM_CHECK(k.warps_per_cta > 0);
    return k.warps_per_cta <= cfg.max_warps_per_sm &&
           k.shared_mem_bytes <= cfg.shared_mem_per_sm &&
           cta_registers(k) <= cfg.registers_per_sm;
}

void
SM::check_fits(const GpuConfig& cfg, const KernelDesc& k)
{
    if (!fits(cfg, k)) {
        throw SimError(detail::format(
            "kernel %s exceeds SM resources (warps=%d smem=%u regs=%d)",
            k.name.c_str(), k.warps_per_cta, k.shared_mem_bytes,
            k.regs_per_thread));
    }
}

bool
SM::can_accept(const KernelDesc& k) const
{
    return used_ctas_ < cfg_.max_ctas_per_sm &&
           used_warps_ + k.warps_per_cta <= warp_cap_ &&
           used_smem_ + k.shared_mem_bytes <= cfg_.shared_mem_per_sm &&
           used_regs_ + cta_registers(k) <= cfg_.registers_per_sm;
}

void
SM::launch_cta(GridRun* grid, int cta_id, uint64_t now)
{
    const KernelDesc& k = *grid->kernel;
    size_t slot = 0;
    while (slot < cta_slots_.size() && cta_slots_[slot].valid)
        ++slot;
    TCSIM_CHECK(slot < cta_slots_.size());

    CtaSlot& cta = cta_slots_[slot];
    cta.valid = true;
    cta.grid = grid;
    cta.cta_id = cta_id;
    cta.live_warps = k.warps_per_cta;
    cta.barrier_arrived = 0;
    cta.start_cycle = now;
    cta.shared = k.shared_mem_bytes
                     ? std::make_unique<SharedMemoryStorage>(
                           k.shared_mem_bytes)
                     : nullptr;
    cta_warps_[slot].clear();

    ++used_ctas_;
    used_warps_ += k.warps_per_cta;
    used_smem_ += k.shared_mem_bytes;
    used_regs_ += cta_registers(k);

    for (int wi = 0; wi < k.warps_per_cta; ++wi) {
        auto w = std::make_unique<Warp>();
        w->prog = k.trace(cta_id, wi);
        TCSIM_CHECK(!w->prog.empty());
        TCSIM_CHECK(w->prog.back().op == Opcode::kExit);
        if (k.functional)
            w->regs = std::make_unique<WarpRegState>(k.regs_per_thread);
        w->grid = grid;
        w->cta_slot = static_cast<int>(slot);
        w->warp_in_cta = wi;
        int sc = wi % cfg_.subcores_per_sm;
        int warp_slot = subcores_[static_cast<size_t>(sc)]->add_warp(
            std::move(w));
        cta_warps_[slot].push_back({sc, warp_slot});
    }
}

void
SM::cycle(uint64_t now)
{
    begin_tick(now);
    tick_compute(now);
    commit_tick();
}

void
SM::begin_tick(uint64_t now)
{
    now_ = now;
    progress_ = false;
    process_mio();
}

void
SM::tick_compute(uint64_t now)
{
    for (auto& sc : subcores_) {
        if (sc->do_writebacks(now))
            progress_ = true;
        if (sc->try_issue(now))
            progress_ = true;
    }
    // Tick-end caches: computed here (possibly on a worker thread) so
    // the engine's busy-list rebuild and stalled-chip event scan read
    // one value per SM instead of re-walking SM internals serially.
    busy_cache_ = busy();
    next_event_cache_ = next_event(now);
}

void
SM::commit_tick(std::vector<CtaCompletion>* completions)
{
    for (const StagedMemOp& op : staged_mem_)
        functional_global_access(*op.warp, *op.inst, op.iter);
    staged_mem_.clear();
    for (const CtaCompletion& done : staged_cta_done_) {
        if (++done.grid->ctas_done == done.grid->kernel->grid_ctas)
            done.grid->finish_cycle = now_;
        if (completions)
            completions->push_back(done);
    }
    staged_cta_done_.clear();
}

bool
SM::busy() const
{
    for (const auto& sc : subcores_)
        if (sc->busy())
            return true;
    return !mio_shared_.empty() || !mio_global_.empty();
}

uint64_t
SM::next_event(uint64_t now) const
{
    if (!busy())
        return UINT64_MAX;
    if (progress_)
        return now + 1;
    uint64_t e = UINT64_MAX;
    if (!mio_shared_.empty())
        e = std::min(e, std::max(mio_shared_free_, now + 1));
    if (!mio_global_.empty()) {
        // A head blocked by memory back-pressure cannot progress
        // before its retry cycle; jumping straight there is exact
        // because queue slots free only at already-scheduled times.
        uint64_t t = std::max(mio_global_free_, mio_global_retry_);
        e = std::min(e, std::max(t, now + 1));
    }
    for (const auto& sc : subcores_)
        e = std::min(e, sc->next_event(now));
    return e;
}

void
SM::account_skipped(uint64_t cycles)
{
    for (auto& sc : subcores_)
        sc->account_skipped(cycles);
}

uint64_t
SM::issued() const
{
    uint64_t total = 0;
    for (const auto& sc : subcores_)
        total += sc->issued();
    return total;
}

StallReason
SM::mio_push(int subcore, int warp_slot, const Instruction* inst, int iter)
{
    auto& queue = inst->is_shared_space() ? mio_shared_ : mio_global_;
    if (static_cast<int>(queue.size()) >= cfg_.ldst_queue_depth) {
        // A full global queue caused by a refused head transaction
        // surfaces the memory system's reason, so the warp's stall is
        // attributed to the level that is actually back-pressuring.
        if (!inst->is_shared_space() &&
            mio_block_reason_ != StallReason::kNone)
            return mio_block_reason_;
        return StallReason::kMioFull;
    }
    queue.push_back(MioEntry{subcore, warp_slot, inst, iter});
    return StallReason::kNone;
}

void
SM::process_mio()
{
    // Shared-memory pipe.
    if (!mio_shared_.empty() && now_ >= mio_shared_free_) {
        MioEntry entry = mio_shared_.front();
        mio_shared_.pop_front();
        progress_ = true;
        const Instruction& inst = *entry.inst;
        int degree = shared_bank_conflict_degree(inst, cfg_.shared_mem_banks,
                                                 entry.iter);
        int words = std::max(1, inst.width_bits / 32);
        // Each conflict replay and each extra 32-bit phase serializes.
        uint64_t occupancy = static_cast<uint64_t>(degree) * words;
        uint64_t done = now_ + static_cast<uint64_t>(cfg_.shared_mem_latency) +
                        occupancy - 1;
        mio_shared_free_ = now_ + occupancy;
        subcores_[static_cast<size_t>(entry.subcore)]->register_writeback(
            done, entry.warp_slot, entry.inst, entry.iter);
    }
    // L1/global pipe: drive the head entry's sectors through the
    // transaction path.  A refused sector (MSHR / NoC / DRAM-queue
    // back-pressure) leaves the entry at the head with its progress;
    // the retry cycle feeds next_event so idle-skip stays exact.
    if (!mio_global_.empty() &&
        now_ >= std::max(mio_global_free_, mio_global_retry_)) {
        MioEntry& entry = mio_global_.front();
        if (!entry.primed) {
            entry.sectors = coalesce_sectors(*entry.inst,
                                             cfg_.l1_sector_bytes,
                                             entry.iter);
            entry.port_next = now_;
            entry.primed = true;
        }
        const bool is_write = entry.inst->op == Opcode::kStg;
        mio_global_retry_ = 0;
        mio_block_reason_ = StallReason::kNone;
        size_t accepted = 0;
        while (entry.next_sector < entry.sectors.size()) {
            // The L1 tag port serializes: one sector per cycle.
            uint64_t t0 = std::max(entry.port_next, now_);
            MemAccessResult r = mem_->access_sector(
                id_, entry.sectors[entry.next_sector], is_write, t0);
            if (r.status != MemAccept::kAccepted) {
                mio_global_retry_ = std::max(r.cycle, now_ + 1);
                mio_block_reason_ = stall_reason_of(r.status);
                break;
            }
            entry.done = std::max(entry.done, r.cycle);
            entry.port_next = t0 + 1;
            ++entry.next_sector;
            ++accepted;
        }
        if (accepted > 0)
            progress_ = true;
        // The LDST port accepts ~2 sectors per cycle.
        if (accepted > 0)
            mio_global_free_ = now_ + std::max<uint64_t>(1, accepted / 2);
        if (entry.next_sector == entry.sectors.size()) {
            progress_ = true;
            uint64_t done = std::max(entry.done, now_);
            subcores_[static_cast<size_t>(entry.subcore)]->register_writeback(
                done, entry.warp_slot, entry.inst, entry.iter);
            mio_global_.pop_front();
        }
    }
}

StallReason
SM::stall_reason_of(MemAccept status)
{
    switch (status) {
      case MemAccept::kMshrFull: return StallReason::kMshrFull;
      case MemAccept::kNocBusy: return StallReason::kNocBusy;
      case MemAccept::kDramQueue: return StallReason::kDramQueue;
      case MemAccept::kAccepted: break;
    }
    return StallReason::kNone;
}

void
SM::barrier_arrive(int cta_slot)
{
    CtaSlot& cta = cta_slots_[static_cast<size_t>(cta_slot)];
    TCSIM_CHECK(cta.valid);
    if (++cta.barrier_arrived < cta.live_warps)
        return;
    cta.barrier_arrived = 0;
    for (auto [sc, slot] : cta_warps_[static_cast<size_t>(cta_slot)])
        subcores_[static_cast<size_t>(sc)]->release_barrier(slot);
}

void
SM::warp_finished(int cta_slot)
{
    CtaSlot& cta = cta_slots_[static_cast<size_t>(cta_slot)];
    TCSIM_CHECK(cta.valid && cta.live_warps > 0);
    if (--cta.live_warps > 0)
        return;

    ++ctas_completed_;
    GridRun* grid = cta.grid;
    const KernelDesc& k = *grid->kernel;
    uint64_t latency = now_ - cta.start_cycle;
    --used_ctas_;
    used_warps_ -= k.warps_per_cta;
    used_smem_ -= k.shared_mem_bytes;
    used_regs_ -= cta_registers(k);
    cta.valid = false;
    cta.grid = nullptr;
    cta.shared.reset();

    // ctas_done / finish_cycle are shared by every SM hosting this
    // grid: the increment applies at commit_tick, in SM-index order.
    staged_cta_done_.push_back(CtaCompletion{grid, latency});
}

void
SM::count_issue(const Warp& w, const Instruction& inst)
{
    RunStatsShard& s = w.grid->stats.shard(id_);
    ++s.instructions;
    if (inst.op == Opcode::kHmma)
        ++s.hmma_instructions;
}

SharedMemoryStorage*
SM::shared(int cta_slot)
{
    return cta_slots_[static_cast<size_t>(cta_slot)].shared.get();
}

void
SM::execute_functional(Warp& w, const Instruction& inst)
{
    if (!w.regs)
        return;
    WarpRegState& regs = *w.regs;

    switch (inst.op) {
      case Opcode::kHmma: {
        // Per-SM memo of the shared executor cache: kernels switch
        // HMMA configurations rarely, and skipping the reader lock
        // keeps worker threads off a shared cache line in the
        // functional hot path (same pattern as timing_for).
        uint64_t key = ExecutorCache::key(cfg_.arch, inst.hmma);
        if (executor_memo_ == nullptr || key != executor_memo_key_) {
            executor_memo_ = &executors_->get(cfg_.arch, inst.hmma);
            executor_memo_key_ = key;
        }
        executor_memo_->execute_step(inst.hmma, regs);
        break;
      }

      case Opcode::kLdg:
      case Opcode::kStg:
        // Global memory is shared across SMs: stage the access and
        // apply it in commit_tick (engine thread, SM-index order).
        // Nothing can observe the warp's registers or the addressed
        // bytes between issue and commit — the warp issues at most
        // one instruction per tick and dependents are scoreboarded —
        // so the deferral is invisible to a serial run.
        TCSIM_CHECK(inst.addr);
        staged_mem_.push_back(StagedMemOp{&w, &inst, w.iter});
        break;

      case Opcode::kLds: {
        TCSIM_CHECK(inst.addr);
        const int bytes = inst.width_bits / 8;
        SharedMemoryStorage* shm = shared(w.cta_slot);
        TCSIM_CHECK(shm != nullptr);
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, w.iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4] = {0, 0, 0, 0};
            shm->read(a, buf, static_cast<size_t>(bytes));
            int nregs = std::max(1, inst.width_bits / 32);
            for (int r = 0; r < nregs; ++r)
                regs.write(lane, inst.dst[0] + r, buf[r]);
        }
        break;
      }

      case Opcode::kSts: {
        TCSIM_CHECK(inst.addr);
        const int bytes = inst.width_bits / 8;
        SharedMemoryStorage* shm = shared(w.cta_slot);
        TCSIM_CHECK(shm != nullptr);
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, w.iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4];
            int nregs = std::max(1, inst.width_bits / 32);
            for (int r = 0; r < nregs; ++r)
                buf[r] = regs.read(lane, inst.src[0] + r);
            shm->write(a, buf, static_cast<size_t>(bytes));
        }
        break;
      }

      case Opcode::kFfma:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            float v = regs.read_f32(lane, inst.src[0]) *
                          regs.read_f32(lane, inst.src[1]) +
                      regs.read_f32(lane, inst.src[2]);
            regs.write_f32(lane, inst.dst[0], v);
        }
        break;

      case Opcode::kFadd:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write_f32(lane, inst.dst[0],
                           regs.read_f32(lane, inst.src[0]) +
                               regs.read_f32(lane, inst.src[1]));
        }
        break;

      case Opcode::kHfma2:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            for (int hi = 0; hi < 2; ++hi) {
                half v(regs.read_h16(lane, inst.src[0], hi).to_float() *
                           regs.read_h16(lane, inst.src[1], hi).to_float() +
                       regs.read_h16(lane, inst.src[2], hi).to_float());
                regs.write_h16(lane, inst.dst[0], hi, v);
            }
        }
        break;

      case Opcode::kIadd:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write(lane, inst.dst[0],
                       regs.read(lane, inst.src[0]) +
                           regs.read(lane, inst.src[1]));
        }
        break;

      case Opcode::kImad:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write(lane, inst.dst[0],
                       regs.read(lane, inst.src[0]) *
                               regs.read(lane, inst.src[1]) +
                           regs.read(lane, inst.src[2]));
        }
        break;

      case Opcode::kMov:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint32_t v = inst.n_src == 0 ? inst.imm
                                         : regs.read(lane, inst.src[0]);
            regs.write(lane, inst.dst[0], v);
        }
        break;

      case Opcode::kCs2r:
        for (int lane = 0; lane < kWarpSize; ++lane)
            regs.write(lane, inst.dst[0], static_cast<uint32_t>(now_));
        break;

      case Opcode::kBarSync:
      case Opcode::kNop:
      case Opcode::kLoopBegin:
      case Opcode::kLoopEnd:
      case Opcode::kExit:
        break;
    }
}

void
SM::functional_global_access(Warp& w, const Instruction& inst, int iter)
{
    WarpRegState& regs = *w.regs;
    const int bytes = inst.width_bits / 8;
    const int nregs = std::max(1, inst.width_bits / 32);
    if (inst.op == Opcode::kLdg) {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4] = {0, 0, 0, 0};
            mem_->global().read(a, buf, static_cast<size_t>(bytes));
            for (int r = 0; r < nregs; ++r)
                regs.write(lane, inst.dst[0] + r, buf[r]);
        }
        return;
    }
    TCSIM_CHECK(inst.op == Opcode::kStg);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        uint64_t a = inst.effective_addr(lane, iter);
        if (a == kNoAddr)
            continue;
        uint32_t buf[4];
        for (int r = 0; r < nregs; ++r)
            buf[r] = regs.read(lane, inst.src[0] + r);
        mem_->global().write(a, buf, static_cast<size_t>(bytes));
    }
}

/** Index of @p g in the resident-grid table. */
static uint32_t
sm_grid_index(const std::vector<GridRun*>& grids, const GridRun* g)
{
    for (size_t i = 0; i < grids.size(); ++i)
        if (grids[i] == g)
            return static_cast<uint32_t>(i);
    throw SnapshotError("SM references a grid not in the resident table");
}

void
SM::save_state(SnapshotWriter& w, const std::vector<GridRun*>& grids) const
{
    if (!staged_mem_.empty() || !staged_cta_done_.empty())
        throw SnapshotError(
            "SM has staged work; snapshots only between ticks");
    w.tag(kTagSm);
    w.u64(now_);
    w.b(progress_);

    // CTA slot table first: SubCore::load_state regenerates warp
    // programs from each slot's cta_id.
    w.u64(cta_slots_.size());
    for (const CtaSlot& cta : cta_slots_) {
        w.b(cta.valid);
        if (!cta.valid)
            continue;
        w.u32(sm_grid_index(grids, cta.grid));
        w.i32(cta.cta_id);
        w.i32(cta.live_warps);
        w.i32(cta.barrier_arrived);
        w.u64(cta.start_cycle);
        w.b(cta.shared != nullptr);
        if (cta.shared) {
            uint32_t bytes = cta.shared->size();
            w.u32(bytes);
            std::vector<uint8_t> buf(bytes);
            cta.shared->read(0, buf.data(), buf.size());
            w.bytes(buf.data(), buf.size());
        }
    }
    // Barrier-release fan-out lists, verbatim (entries of freed slots
    // are stale but unobservable; they clear on the slot's next
    // launch — keeping them preserves bit-identity of future state).
    for (const auto& vec : cta_warps_) {
        w.u64(vec.size());
        for (auto [sc, slot] : vec) {
            w.i32(sc);
            w.i32(slot);
        }
    }

    w.i32(used_ctas_);
    w.i32(used_warps_);
    w.u64(used_smem_);
    w.u64(used_regs_);

    // Sub-cores before the MIO queues: queue entries hold Instruction
    // pointers into warp programs the sub-cores own.
    w.u64(subcores_.size());
    for (const auto& sc : subcores_)
        sc->save_state(w, grids);

    auto save_queue = [&](const std::deque<MioEntry>& q) {
        w.u64(q.size());
        for (const MioEntry& e : q) {
            w.i32(e.subcore);
            w.i32(e.warp_slot);
            const Warp& owner =
                subcores_[static_cast<size_t>(e.subcore)]->warp(e.warp_slot);
            size_t idx = static_cast<size_t>(e.inst - owner.prog.data());
            if (idx >= owner.prog.size())
                throw SnapshotError(
                    "MIO instruction outside its warp program");
            w.u64(idx);
            w.i32(e.iter);
            w.u64(e.sectors.size());
            for (uint64_t s : e.sectors)
                w.u64(s);
            w.u64(e.next_sector);
            w.u64(e.done);
            w.u64(e.port_next);
            w.b(e.primed);
        }
    };
    save_queue(mio_shared_);
    save_queue(mio_global_);
    w.u64(mio_shared_free_);
    w.u64(mio_global_free_);
    w.u64(mio_global_retry_);
    w.u8(static_cast<uint8_t>(mio_block_reason_));
    w.i32(ctas_completed_);
    w.b(busy_cache_);
    w.u64(next_event_cache_);
}

void
SM::load_state(SnapshotReader& r, const std::vector<GridRun*>& grids)
{
    r.tag(kTagSm);
    now_ = r.u64();
    progress_ = r.b();

    if (r.u64() != cta_slots_.size())
        throw SnapshotError("CTA slot count mismatch");
    for (CtaSlot& cta : cta_slots_) {
        cta.valid = r.b();
        if (!cta.valid) {
            cta.grid = nullptr;
            cta.cta_id = -1;
            cta.live_warps = 0;
            cta.barrier_arrived = 0;
            cta.start_cycle = 0;
            cta.shared.reset();
            continue;
        }
        uint32_t gi = r.u32();
        if (gi >= grids.size())
            throw SnapshotError("CTA grid index out of range");
        cta.grid = grids[gi];
        cta.cta_id = r.i32();
        cta.live_warps = r.i32();
        cta.barrier_arrived = r.i32();
        cta.start_cycle = r.u64();
        if (r.b()) {
            uint32_t bytes = r.u32();
            cta.shared = std::make_unique<SharedMemoryStorage>(bytes);
            std::vector<uint8_t> buf(bytes);
            r.bytes(buf.data(), buf.size());
            cta.shared->write(0, buf.data(), buf.size());
        } else {
            cta.shared.reset();
        }
    }
    for (auto& vec : cta_warps_) {
        vec.clear();
        uint64_t n = r.u64();
        vec.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            int sc = r.i32();
            int slot = r.i32();
            vec.push_back({sc, slot});
        }
    }

    used_ctas_ = r.i32();
    used_warps_ = r.i32();
    used_smem_ = r.u64();
    used_regs_ = r.u64();

    if (r.u64() != subcores_.size())
        throw SnapshotError("sub-core count mismatch");
    for (auto& sc : subcores_)
        sc->load_state(r, grids);

    auto load_queue = [&](std::deque<MioEntry>& q) {
        q.clear();
        uint64_t n = r.u64();
        for (uint64_t i = 0; i < n; ++i) {
            MioEntry e{};
            e.subcore = r.i32();
            e.warp_slot = r.i32();
            uint64_t idx = r.u64();
            e.iter = r.i32();
            uint64_t ns = r.u64();
            e.sectors.reserve(ns);
            for (uint64_t s = 0; s < ns; ++s)
                e.sectors.push_back(r.u64());
            e.next_sector = r.u64();
            e.done = r.u64();
            e.port_next = r.u64();
            e.primed = r.b();
            if (e.subcore < 0 ||
                e.subcore >= static_cast<int>(subcores_.size()))
                throw SnapshotError("MIO sub-core index out of range");
            SubCore& sc = *subcores_[static_cast<size_t>(e.subcore)];
            if (e.warp_slot < 0 ||
                static_cast<size_t>(e.warp_slot) >= sc.warp_count())
                throw SnapshotError("MIO warp slot out of range");
            Warp& owner = sc.warp(e.warp_slot);
            if (idx >= owner.prog.size())
                throw SnapshotError(
                    "MIO instruction index out of range");
            e.inst = &owner.prog[idx];
            q.push_back(std::move(e));
        }
    };
    load_queue(mio_shared_);
    load_queue(mio_global_);
    mio_shared_free_ = r.u64();
    mio_global_free_ = r.u64();
    mio_global_retry_ = r.u64();
    mio_block_reason_ = static_cast<StallReason>(r.u8());
    ctas_completed_ = r.i32();
    busy_cache_ = r.b();
    next_event_cache_ = r.u64();

    staged_mem_.clear();
    staged_cta_done_.clear();
    // Derived memo over the shared executor cache: repopulated on the
    // next functional HMMA (restores may target a different Gpu whose
    // ExecutorCache is distinct).
    executor_memo_ = nullptr;
    executor_memo_key_ = 0;
}

}  // namespace tcsim
