#include "sim/core/sm.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "sim/mem/coalescer.h"

namespace tcsim {

uint64_t
ExecutorCache::key(Arch arch, const HmmaInfo& info)
{
    return (static_cast<uint64_t>(arch) << 40) |
           (static_cast<uint64_t>(info.mode) << 36) |
           (static_cast<uint64_t>(info.a_layout) << 34) |
           (static_cast<uint64_t>(info.b_layout) << 32) |
           (static_cast<uint64_t>(info.shape.m) << 16) |
           (static_cast<uint64_t>(info.shape.n) << 8) |
           static_cast<uint64_t>(info.shape.k);
}

HmmaExecutor&
ExecutorCache::get(Arch arch, const HmmaInfo& info)
{
    uint64_t k = key(arch, info);
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = cache_.find(k);
        if (it != cache_.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = cache_.find(k);  // Lost the upgrade race?  Reuse.
    if (it == cache_.end()) {
        it = cache_
                 .emplace(k, std::make_unique<HmmaExecutor>(
                                 arch, info.mode, info.shape, info.a_layout,
                                 info.b_layout))
                 .first;
    }
    return *it->second;
}

SM::SM(int id, const GpuConfig& cfg, MemorySystem* mem,
       ExecutorCache* executors, SchedulerPolicy policy)
    : id_(id), cfg_(cfg), mem_(mem), executors_(executors)
{
    subcores_.reserve(static_cast<size_t>(cfg.subcores_per_sm));
    for (int i = 0; i < cfg.subcores_per_sm; ++i)
        subcores_.push_back(std::make_unique<SubCore>(this, i, policy));
    cta_slots_.resize(static_cast<size_t>(cfg.max_ctas_per_sm));
    cta_warps_.resize(static_cast<size_t>(cfg.max_ctas_per_sm));
}

/** Per-CTA register demand of @p k (32-bit registers). */
static uint64_t
cta_registers(const KernelDesc& k)
{
    return static_cast<uint64_t>(k.warps_per_cta) * kWarpSize *
           static_cast<uint64_t>(k.regs_per_thread);
}

bool
SM::fits(const GpuConfig& cfg, const KernelDesc& k)
{
    TCSIM_CHECK(k.warps_per_cta > 0);
    return k.warps_per_cta <= cfg.max_warps_per_sm &&
           k.shared_mem_bytes <= cfg.shared_mem_per_sm &&
           cta_registers(k) <= cfg.registers_per_sm;
}

void
SM::check_fits(const GpuConfig& cfg, const KernelDesc& k)
{
    if (!fits(cfg, k)) {
        fatal("kernel %s exceeds SM resources (warps=%d smem=%u regs=%d)",
              k.name.c_str(), k.warps_per_cta, k.shared_mem_bytes,
              k.regs_per_thread);
    }
}

bool
SM::can_accept(const KernelDesc& k) const
{
    return used_ctas_ < cfg_.max_ctas_per_sm &&
           used_warps_ + k.warps_per_cta <= cfg_.max_warps_per_sm &&
           used_smem_ + k.shared_mem_bytes <= cfg_.shared_mem_per_sm &&
           used_regs_ + cta_registers(k) <= cfg_.registers_per_sm;
}

void
SM::launch_cta(GridRun* grid, int cta_id)
{
    const KernelDesc& k = *grid->kernel;
    size_t slot = 0;
    while (slot < cta_slots_.size() && cta_slots_[slot].valid)
        ++slot;
    TCSIM_CHECK(slot < cta_slots_.size());

    CtaSlot& cta = cta_slots_[slot];
    cta.valid = true;
    cta.grid = grid;
    cta.cta_id = cta_id;
    cta.live_warps = k.warps_per_cta;
    cta.barrier_arrived = 0;
    cta.shared = k.shared_mem_bytes
                     ? std::make_unique<SharedMemoryStorage>(
                           k.shared_mem_bytes)
                     : nullptr;
    cta_warps_[slot].clear();

    ++used_ctas_;
    used_warps_ += k.warps_per_cta;
    used_smem_ += k.shared_mem_bytes;
    used_regs_ += cta_registers(k);

    for (int wi = 0; wi < k.warps_per_cta; ++wi) {
        auto w = std::make_unique<Warp>();
        w->prog = k.trace(cta_id, wi);
        TCSIM_CHECK(!w->prog.empty());
        TCSIM_CHECK(w->prog.back().op == Opcode::kExit);
        if (k.functional)
            w->regs = std::make_unique<WarpRegState>(k.regs_per_thread);
        w->grid = grid;
        w->cta_slot = static_cast<int>(slot);
        w->warp_in_cta = wi;
        int sc = wi % cfg_.subcores_per_sm;
        int warp_slot = subcores_[static_cast<size_t>(sc)]->add_warp(
            std::move(w));
        cta_warps_[slot].push_back({sc, warp_slot});
    }
}

void
SM::cycle(uint64_t now)
{
    begin_tick(now);
    tick_compute(now);
    commit_tick();
}

void
SM::begin_tick(uint64_t now)
{
    now_ = now;
    progress_ = false;
    process_mio();
}

void
SM::tick_compute(uint64_t now)
{
    for (auto& sc : subcores_) {
        if (sc->do_writebacks(now))
            progress_ = true;
        if (sc->try_issue(now))
            progress_ = true;
    }
    // Tick-end caches: computed here (possibly on a worker thread) so
    // the engine's busy-list rebuild and stalled-chip event scan read
    // one value per SM instead of re-walking SM internals serially.
    busy_cache_ = busy();
    next_event_cache_ = next_event(now);
}

void
SM::commit_tick()
{
    for (const StagedMemOp& op : staged_mem_)
        functional_global_access(*op.warp, *op.inst, op.iter);
    staged_mem_.clear();
    for (GridRun* grid : staged_cta_done_) {
        if (++grid->ctas_done == grid->kernel->grid_ctas)
            grid->finish_cycle = now_;
    }
    staged_cta_done_.clear();
}

bool
SM::busy() const
{
    for (const auto& sc : subcores_)
        if (sc->busy())
            return true;
    return !mio_shared_.empty() || !mio_global_.empty();
}

uint64_t
SM::next_event(uint64_t now) const
{
    if (!busy())
        return UINT64_MAX;
    if (progress_)
        return now + 1;
    uint64_t e = UINT64_MAX;
    if (!mio_shared_.empty())
        e = std::min(e, std::max(mio_shared_free_, now + 1));
    if (!mio_global_.empty()) {
        // A head blocked by memory back-pressure cannot progress
        // before its retry cycle; jumping straight there is exact
        // because queue slots free only at already-scheduled times.
        uint64_t t = std::max(mio_global_free_, mio_global_retry_);
        e = std::min(e, std::max(t, now + 1));
    }
    for (const auto& sc : subcores_)
        e = std::min(e, sc->next_event(now));
    return e;
}

void
SM::account_skipped(uint64_t cycles)
{
    for (auto& sc : subcores_)
        sc->account_skipped(cycles);
}

uint64_t
SM::issued() const
{
    uint64_t total = 0;
    for (const auto& sc : subcores_)
        total += sc->issued();
    return total;
}

StallReason
SM::mio_push(int subcore, int warp_slot, const Instruction* inst, int iter)
{
    auto& queue = inst->is_shared_space() ? mio_shared_ : mio_global_;
    if (static_cast<int>(queue.size()) >= cfg_.ldst_queue_depth) {
        // A full global queue caused by a refused head transaction
        // surfaces the memory system's reason, so the warp's stall is
        // attributed to the level that is actually back-pressuring.
        if (!inst->is_shared_space() &&
            mio_block_reason_ != StallReason::kNone)
            return mio_block_reason_;
        return StallReason::kMioFull;
    }
    queue.push_back(MioEntry{subcore, warp_slot, inst, iter});
    return StallReason::kNone;
}

void
SM::process_mio()
{
    // Shared-memory pipe.
    if (!mio_shared_.empty() && now_ >= mio_shared_free_) {
        MioEntry entry = mio_shared_.front();
        mio_shared_.pop_front();
        progress_ = true;
        const Instruction& inst = *entry.inst;
        int degree = shared_bank_conflict_degree(inst, cfg_.shared_mem_banks,
                                                 entry.iter);
        int words = std::max(1, inst.width_bits / 32);
        // Each conflict replay and each extra 32-bit phase serializes.
        uint64_t occupancy = static_cast<uint64_t>(degree) * words;
        uint64_t done = now_ + static_cast<uint64_t>(cfg_.shared_mem_latency) +
                        occupancy - 1;
        mio_shared_free_ = now_ + occupancy;
        subcores_[static_cast<size_t>(entry.subcore)]->register_writeback(
            done, entry.warp_slot, entry.inst, entry.iter);
    }
    // L1/global pipe: drive the head entry's sectors through the
    // transaction path.  A refused sector (MSHR / NoC / DRAM-queue
    // back-pressure) leaves the entry at the head with its progress;
    // the retry cycle feeds next_event so idle-skip stays exact.
    if (!mio_global_.empty() &&
        now_ >= std::max(mio_global_free_, mio_global_retry_)) {
        MioEntry& entry = mio_global_.front();
        if (!entry.primed) {
            entry.sectors = coalesce_sectors(*entry.inst,
                                             cfg_.l1_sector_bytes,
                                             entry.iter);
            entry.port_next = now_;
            entry.primed = true;
        }
        const bool is_write = entry.inst->op == Opcode::kStg;
        mio_global_retry_ = 0;
        mio_block_reason_ = StallReason::kNone;
        size_t accepted = 0;
        while (entry.next_sector < entry.sectors.size()) {
            // The L1 tag port serializes: one sector per cycle.
            uint64_t t0 = std::max(entry.port_next, now_);
            MemAccessResult r = mem_->access_sector(
                id_, entry.sectors[entry.next_sector], is_write, t0);
            if (r.status != MemAccept::kAccepted) {
                mio_global_retry_ = std::max(r.cycle, now_ + 1);
                mio_block_reason_ = stall_reason_of(r.status);
                break;
            }
            entry.done = std::max(entry.done, r.cycle);
            entry.port_next = t0 + 1;
            ++entry.next_sector;
            ++accepted;
        }
        if (accepted > 0)
            progress_ = true;
        // The LDST port accepts ~2 sectors per cycle.
        if (accepted > 0)
            mio_global_free_ = now_ + std::max<uint64_t>(1, accepted / 2);
        if (entry.next_sector == entry.sectors.size()) {
            progress_ = true;
            uint64_t done = std::max(entry.done, now_);
            subcores_[static_cast<size_t>(entry.subcore)]->register_writeback(
                done, entry.warp_slot, entry.inst, entry.iter);
            mio_global_.pop_front();
        }
    }
}

StallReason
SM::stall_reason_of(MemAccept status)
{
    switch (status) {
      case MemAccept::kMshrFull: return StallReason::kMshrFull;
      case MemAccept::kNocBusy: return StallReason::kNocBusy;
      case MemAccept::kDramQueue: return StallReason::kDramQueue;
      case MemAccept::kAccepted: break;
    }
    return StallReason::kNone;
}

void
SM::barrier_arrive(int cta_slot)
{
    CtaSlot& cta = cta_slots_[static_cast<size_t>(cta_slot)];
    TCSIM_CHECK(cta.valid);
    if (++cta.barrier_arrived < cta.live_warps)
        return;
    cta.barrier_arrived = 0;
    for (auto [sc, slot] : cta_warps_[static_cast<size_t>(cta_slot)])
        subcores_[static_cast<size_t>(sc)]->release_barrier(slot);
}

void
SM::warp_finished(int cta_slot)
{
    CtaSlot& cta = cta_slots_[static_cast<size_t>(cta_slot)];
    TCSIM_CHECK(cta.valid && cta.live_warps > 0);
    if (--cta.live_warps > 0)
        return;

    ++ctas_completed_;
    GridRun* grid = cta.grid;
    const KernelDesc& k = *grid->kernel;
    --used_ctas_;
    used_warps_ -= k.warps_per_cta;
    used_smem_ -= k.shared_mem_bytes;
    used_regs_ -= cta_registers(k);
    cta.valid = false;
    cta.grid = nullptr;
    cta.shared.reset();

    // ctas_done / finish_cycle are shared by every SM hosting this
    // grid: the increment applies at commit_tick, in SM-index order.
    staged_cta_done_.push_back(grid);
}

void
SM::count_issue(const Warp& w, const Instruction& inst)
{
    RunStatsShard& s = w.grid->stats.shard(id_);
    ++s.instructions;
    if (inst.op == Opcode::kHmma)
        ++s.hmma_instructions;
}

SharedMemoryStorage*
SM::shared(int cta_slot)
{
    return cta_slots_[static_cast<size_t>(cta_slot)].shared.get();
}

void
SM::execute_functional(Warp& w, const Instruction& inst)
{
    if (!w.regs)
        return;
    WarpRegState& regs = *w.regs;

    switch (inst.op) {
      case Opcode::kHmma: {
        // Per-SM memo of the shared executor cache: kernels switch
        // HMMA configurations rarely, and skipping the reader lock
        // keeps worker threads off a shared cache line in the
        // functional hot path (same pattern as timing_for).
        uint64_t key = ExecutorCache::key(cfg_.arch, inst.hmma);
        if (executor_memo_ == nullptr || key != executor_memo_key_) {
            executor_memo_ = &executors_->get(cfg_.arch, inst.hmma);
            executor_memo_key_ = key;
        }
        executor_memo_->execute_step(inst.hmma, regs);
        break;
      }

      case Opcode::kLdg:
      case Opcode::kStg:
        // Global memory is shared across SMs: stage the access and
        // apply it in commit_tick (engine thread, SM-index order).
        // Nothing can observe the warp's registers or the addressed
        // bytes between issue and commit — the warp issues at most
        // one instruction per tick and dependents are scoreboarded —
        // so the deferral is invisible to a serial run.
        TCSIM_CHECK(inst.addr);
        staged_mem_.push_back(StagedMemOp{&w, &inst, w.iter});
        break;

      case Opcode::kLds: {
        TCSIM_CHECK(inst.addr);
        const int bytes = inst.width_bits / 8;
        SharedMemoryStorage* shm = shared(w.cta_slot);
        TCSIM_CHECK(shm != nullptr);
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, w.iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4] = {0, 0, 0, 0};
            shm->read(a, buf, static_cast<size_t>(bytes));
            int nregs = std::max(1, inst.width_bits / 32);
            for (int r = 0; r < nregs; ++r)
                regs.write(lane, inst.dst[0] + r, buf[r]);
        }
        break;
      }

      case Opcode::kSts: {
        TCSIM_CHECK(inst.addr);
        const int bytes = inst.width_bits / 8;
        SharedMemoryStorage* shm = shared(w.cta_slot);
        TCSIM_CHECK(shm != nullptr);
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, w.iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4];
            int nregs = std::max(1, inst.width_bits / 32);
            for (int r = 0; r < nregs; ++r)
                buf[r] = regs.read(lane, inst.src[0] + r);
            shm->write(a, buf, static_cast<size_t>(bytes));
        }
        break;
      }

      case Opcode::kFfma:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            float v = regs.read_f32(lane, inst.src[0]) *
                          regs.read_f32(lane, inst.src[1]) +
                      regs.read_f32(lane, inst.src[2]);
            regs.write_f32(lane, inst.dst[0], v);
        }
        break;

      case Opcode::kFadd:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write_f32(lane, inst.dst[0],
                           regs.read_f32(lane, inst.src[0]) +
                               regs.read_f32(lane, inst.src[1]));
        }
        break;

      case Opcode::kHfma2:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            for (int hi = 0; hi < 2; ++hi) {
                half v(regs.read_h16(lane, inst.src[0], hi).to_float() *
                           regs.read_h16(lane, inst.src[1], hi).to_float() +
                       regs.read_h16(lane, inst.src[2], hi).to_float());
                regs.write_h16(lane, inst.dst[0], hi, v);
            }
        }
        break;

      case Opcode::kIadd:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write(lane, inst.dst[0],
                       regs.read(lane, inst.src[0]) +
                           regs.read(lane, inst.src[1]));
        }
        break;

      case Opcode::kImad:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            regs.write(lane, inst.dst[0],
                       regs.read(lane, inst.src[0]) *
                               regs.read(lane, inst.src[1]) +
                           regs.read(lane, inst.src[2]));
        }
        break;

      case Opcode::kMov:
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint32_t v = inst.n_src == 0 ? inst.imm
                                         : regs.read(lane, inst.src[0]);
            regs.write(lane, inst.dst[0], v);
        }
        break;

      case Opcode::kCs2r:
        for (int lane = 0; lane < kWarpSize; ++lane)
            regs.write(lane, inst.dst[0], static_cast<uint32_t>(now_));
        break;

      case Opcode::kBarSync:
      case Opcode::kNop:
      case Opcode::kLoopBegin:
      case Opcode::kLoopEnd:
      case Opcode::kExit:
        break;
    }
}

void
SM::functional_global_access(Warp& w, const Instruction& inst, int iter)
{
    WarpRegState& regs = *w.regs;
    const int bytes = inst.width_bits / 8;
    const int nregs = std::max(1, inst.width_bits / 32);
    if (inst.op == Opcode::kLdg) {
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, iter);
            if (a == kNoAddr)
                continue;
            uint32_t buf[4] = {0, 0, 0, 0};
            mem_->global().read(a, buf, static_cast<size_t>(bytes));
            for (int r = 0; r < nregs; ++r)
                regs.write(lane, inst.dst[0] + r, buf[r]);
        }
        return;
    }
    TCSIM_CHECK(inst.op == Opcode::kStg);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        uint64_t a = inst.effective_addr(lane, iter);
        if (a == kNoAddr)
            continue;
        uint32_t buf[4];
        for (int r = 0; r < nregs; ++r)
            buf[r] = regs.read(lane, inst.src[0] + r);
        mem_->global().write(a, buf, static_cast<size_t>(bytes));
    }
}

}  // namespace tcsim
