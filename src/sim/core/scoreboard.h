#pragma once
/**
 * @file
 * Per-warp register scoreboard.  Tracks registers with writes in
 * flight; an instruction may not issue while any of its source (RAW)
 * or destination (WAW) registers are pending, mirroring the paper's
 * "updated the scoreboard to check for RAW and WAW hazard associated
 * with wmma.mma instructions".
 */

#include <bitset>
#include <vector>

#include "isa/instruction.h"
#include "sim/snapshot_io.h"

namespace tcsim {

/** Scoreboard over up to 256 registers for a set of warps. */
class Scoreboard
{
  public:
    explicit Scoreboard(int num_warps) : pending_(num_warps) {}

    /** Grow tracking state for a newly resident warp. */
    void add_warp() { pending_.emplace_back(); }

    /** Clear state when a finished warp's slot is recycled. */
    void reset_warp(int w) { pending_[w].reset(); }

    /** True if @p inst of warp @p w has no RAW/WAW hazard.  HMMA
     *  instructions that are not first in their group bypass operand
     *  checks: the tensor core forwards the accumulator internally. */
    bool can_issue(int w, const Instruction& inst) const;

    /** Mark destination registers pending at issue. */
    void issue(int w, const Instruction& inst);

    /** Clear pending destinations at writeback. */
    void complete(int w, const Instruction& inst);

    bool reg_pending(int w, int reg) const { return pending_[w][reg]; }
    bool any_pending(int w) const { return pending_[w].any(); }

    /** Serialize/restore the pending bitsets (snapshot support). */
    void save_state(SnapshotWriter& w) const
    {
        w.u64(pending_.size());
        for (const auto& bits : pending_)
            for (int word = 0; word < 4; ++word) {
                uint64_t v = 0;
                for (int bit = 0; bit < 64; ++bit)
                    if (bits[word * 64 + bit])
                        v |= uint64_t{1} << bit;
                w.u64(v);
            }
    }

    void load_state(SnapshotReader& r)
    {
        pending_.assign(r.u64(), {});
        for (auto& bits : pending_)
            for (int word = 0; word < 4; ++word) {
                uint64_t v = r.u64();
                for (int bit = 0; bit < 64; ++bit)
                    if (v & (uint64_t{1} << bit))
                        bits.set(word * 64 + bit);
            }
    }

  private:
    /** Destination register ranges of @p inst (HMMA: the D fragment;
     *  loads: width-derived span). */
    static void for_each_dst(const Instruction& inst, auto&& fn);
    static void for_each_src(const Instruction& inst, auto&& fn);

    std::vector<std::bitset<256>> pending_;
};

}  // namespace tcsim
