#pragma once
/**
 * @file
 * Generic pipelined SIMD execution unit (FP32 / INT / FP64 / MUFU
 * paths of the sub-core, Fig 1) and the issue-interval bookkeeping
 * they share.
 */

#include <cstdint>

#include "sim/snapshot_io.h"

namespace tcsim {

/**
 * A fully pipelined unit with a warp-level initiation interval and a
 * fixed latency.  A 32-lane warp on a 16-lane FP32 path has II = 2.
 */
class ExecUnit
{
  public:
    ExecUnit() = default;
    ExecUnit(int initiation_interval, int latency)
        : ii_(initiation_interval), latency_(latency)
    {
    }

    bool ready(uint64_t now) const { return now >= next_free_; }

    /** Issue at @p now; returns the completion (writeback) cycle. */
    uint64_t issue(uint64_t now)
    {
        next_free_ = now + static_cast<uint64_t>(ii_);
        return now + static_cast<uint64_t>(latency_);
    }

    int latency() const { return latency_; }
    int initiation_interval() const { return ii_; }

    /** Earliest cycle a new issue can be accepted (event-driven main
     *  loop: the time a unit-busy stall resolves). */
    uint64_t next_free() const { return next_free_; }

    /** Snapshot support: next_free_ is the only runtime state (the
     *  II/latency come from construction). */
    void save_state(SnapshotWriter& w) const { w.u64(next_free_); }
    void load_state(SnapshotReader& r) { next_free_ = r.u64(); }

  private:
    int ii_ = 1;
    int latency_ = 1;
    uint64_t next_free_ = 0;
};

}  // namespace tcsim
