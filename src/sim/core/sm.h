#pragma once
/**
 * @file
 * Streaming multiprocessor model: four sub-cores, the shared MIO
 * (memory input/output) path, CTA residency and barrier handling, and
 * per-SM statistics.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "arch/gpu_config.h"
#include "common/stats.h"
#include "sass/hmma_executor.h"
#include "sim/core/subcore.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"

namespace tcsim {

/** Grid-wide CTA dispenser shared by all SMs. */
struct GridState
{
    const KernelDesc* kernel = nullptr;
    int next_cta = 0;

    bool pending() const { return next_cta < kernel->grid_ctas; }
};

/** Chip-wide collected statistics (single-threaded simulation). */
struct RunStatsCollector
{
    uint64_t instructions = 0;
    uint64_t hmma_instructions = 0;
    /** Latency histograms of the WMMA macro classes (Figs 15/16). */
    std::map<MacroClass, Histogram> macro_latency;

    void record_macro(MacroClass mc, uint64_t latency)
    {
        macro_latency[mc].add(static_cast<double>(latency));
    }
};

/** Cache of functional HMMA executors keyed by configuration. */
class ExecutorCache
{
  public:
    HmmaExecutor& get(Arch arch, const HmmaInfo& info);

  private:
    std::map<uint64_t, std::unique_ptr<HmmaExecutor>> cache_;
};

/** One streaming multiprocessor. */
class SM
{
  public:
    SM(int id, const GpuConfig& cfg, MemorySystem* mem, GridState* grid,
       RunStatsCollector* stats, ExecutorCache* executors,
       SchedulerPolicy policy);

    /** Advance one core clock. */
    void cycle(uint64_t now);

    /** True while CTAs are resident or traffic is in flight. */
    bool busy() const;

    // ---- Interface used by SubCore ----
    const GpuConfig& config() const { return cfg_; }
    bool functional() const { return grid_->kernel->functional; }
    MemorySystem& mem() { return *mem_; }
    uint64_t now() const { return now_; }
    int id() const { return id_; }

    /** Enqueue a memory instruction into the MIO path; false if the
     *  queue is full (the warp stalls). */
    bool mio_push(int subcore, int warp_slot, const Instruction* inst,
                  int iter);

    /** Functional execution of one instruction (loads/stores/ALU/HMMA). */
    void execute_functional(Warp& w, const Instruction& inst);

    void barrier_arrive(int cta_slot);
    void warp_finished(int cta_slot);
    void count_issue(const Instruction& inst);
    void record_macro(MacroClass mc, uint64_t latency)
    {
        stats_->record_macro(mc, latency);
    }
    SharedMemoryStorage* shared(int cta_slot);

    /** Instructions issued by this SM. */
    uint64_t issued() const;

    /** CTAs completed by this SM. */
    int ctas_completed() const { return ctas_completed_; }

    /** Sum of sub-core issue-stall counters (index = StallReason). */
    void add_stalls(uint64_t* out) const
    {
        for (const auto& sc : subcores_)
            for (int i = 0; i < 8; ++i)
                out[i] += sc->stall_counts()[i];
    }

  private:
    void try_launch_ctas();
    void launch_cta(int slot, int cta_id);
    void process_mio();
    int max_concurrent_ctas() const;

    struct MioEntry
    {
        int subcore;
        int warp_slot;
        const Instruction* inst;
        int iter;
    };

    int id_;
    GpuConfig cfg_;
    MemorySystem* mem_;
    GridState* grid_;
    RunStatsCollector* stats_;
    ExecutorCache* executors_;
    uint64_t now_ = 0;

    std::vector<std::unique_ptr<SubCore>> subcores_;
    std::vector<CtaSlot> cta_slots_;
    /** (subcore, warp_slot) pairs per CTA slot, for barrier release. */
    std::vector<std::vector<std::pair<int, int>>> cta_warps_;

    /** Separate shared-memory and L1/global pipes behind the MIO
     *  scheduler (each accepts one warp instruction per cycle). */
    std::deque<MioEntry> mio_shared_;
    std::deque<MioEntry> mio_global_;
    uint64_t mio_shared_free_ = 0;
    uint64_t mio_global_free_ = 0;
    int ctas_completed_ = 0;
};

}  // namespace tcsim
