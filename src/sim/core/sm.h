#pragma once
/**
 * @file
 * Streaming multiprocessor model: four sub-cores, the shared MIO
 * (memory input/output) path, CTA residency and barrier handling, and
 * per-SM statistics.
 *
 * An SM is grid-agnostic: CTAs from several resident grids (concurrent
 * kernel execution across streams) may co-exist, gated by additive
 * warp/shared-memory/register/slot accounting.  Statistics are
 * attributed to each warp's owning GridRun.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "arch/gpu_config.h"
#include "common/stats.h"
#include "sass/hmma_executor.h"
#include "sim/core/subcore.h"
#include "sim/grid_run.h"
#include "sim/kernel_desc.h"
#include "sim/mem/memory_system.h"

namespace tcsim {

/** Cache of functional HMMA executors keyed by configuration.
 *  Thread-safe: SMs on different worker threads share one cache
 *  (executors are immutable after construction), so lookups take a
 *  reader lock and only a first-use miss takes the writer lock. */
class ExecutorCache
{
  public:
    HmmaExecutor& get(Arch arch, const HmmaInfo& info);

    /** Cache key of (arch, info) — exposed so callers can memoize the
     *  executor pointer and skip the lock when the key repeats. */
    static uint64_t key(Arch arch, const HmmaInfo& info);

  private:
    std::shared_mutex mutex_;
    std::map<uint64_t, std::unique_ptr<HmmaExecutor>> cache_;
};

/** One CTA that finished this tick (sampled-mode latency sampling). */
struct CtaCompletion
{
    GridRun* grid;
    uint64_t latency;  ///< Completion cycle minus dispatch cycle.
};

/** One streaming multiprocessor. */
class SM
{
  public:
    SM(int id, const GpuConfig& cfg, MemorySystem* mem,
       ExecutorCache* executors, SchedulerPolicy policy);

    /**
     * Advance one core clock.  Equivalent to the three tick phases
     * back-to-back; the engine calls the phases separately so that
     * tick_compute() of many SMs can run on a worker pool while the
     * phases that touch shared state stay on the engine thread in
     * canonical SM-index order.
     */
    void cycle(uint64_t now);

    // ---- Two-phase tick (deterministic parallel simulation) ----
    //
    // Phase A  begin_tick():   drains the MIO heads through the shared
    //                          MemorySystem.  Engine thread, ascending
    //                          SM-index order — acceptance/refusal and
    //                          retry cycles match a serial run exactly.
    // Phase B  tick_compute(): sub-core writebacks + issue.  Touches
    //                          only SM-local state, this SM's shard of
    //                          per-grid statistics, and SM-local
    //                          staging buffers — safe to run for all
    //                          SMs concurrently.
    // Phase C  commit_tick():  applies the staged functional
    //                          global-memory accesses and grid CTA
    //                          completions.  Engine thread, ascending
    //                          SM-index order — cross-SM data flow
    //                          through global memory replays in the
    //                          same order a serial run produced.

    /** Phase A: start the tick and service the MIO queues. */
    void begin_tick(uint64_t now);

    /** Phase B: parallel-safe compute; also caches busy()/next_event()
     *  so the engine's event scan does not touch SM internals. */
    void tick_compute(uint64_t now);

    /** Phase C: apply this tick's staged side effects.  When
     *  @p completions is non-null (sampled mode), each CTA that
     *  completed this tick is appended with its measured latency. */
    void commit_tick(std::vector<CtaCompletion>* completions = nullptr);

    /** True while CTAs are resident or traffic is in flight. */
    bool busy() const;

    /** busy() as of the end of the last tick_compute(). */
    bool busy_cached() const { return busy_cache_; }

    /** next_event() as of the end of the last tick_compute(): the
     *  engine's stalled-chip scan reads this O(1) cache instead of
     *  re-walking sub-core in-flight lists. */
    uint64_t next_event_cached() const { return next_event_cache_; }

    // ---- Engine-facing dispatch interface ----

    /** True if a CTA of @p k fits the SM's currently free resources. */
    bool can_accept(const KernelDesc& k) const;

    /** Place CTA @p cta_id of @p grid on this SM at cycle @p now.  The
     *  caller must have checked can_accept(); at most one CTA per SM
     *  per cycle (hardware rasterizer pacing). */
    void launch_cta(GridRun* grid, int cta_id, uint64_t now = 0);

    /** True if a CTA of @p k fits an empty SM of @p cfg.  The single
     *  source of truth for launchability — the scenario driver
     *  pre-checks with this to report instead of abort. */
    static bool fits(const GpuConfig& cfg, const KernelDesc& k);

    /** Throw SimError with a diagnostic if @p k cannot fit even an
     *  empty SM (scenario-reachable: the batch driver contains it to
     *  an error row). */
    static void check_fits(const GpuConfig& cfg, const KernelDesc& k);

    /**
     * Cap this SM's warp slots below the architectural maximum
     * (fault injection: a degraded SM).  Takes effect for future
     * can_accept() decisions only; must be set before any CTA is
     * dispatched.  Values <= 0 or >= max_warps_per_sm restore the
     * architectural cap.
     */
    void set_warp_cap(int warps)
    {
        warp_cap_ = (warps > 0 && warps < cfg_.max_warps_per_sm)
                        ? warps
                        : cfg_.max_warps_per_sm;
    }

    /**
     * Earliest future cycle this SM can make progress: now+1 after a
     * productive tick, otherwise the nearest writeback / MIO / unit
     * event, or UINT64_MAX when idle.  The engine's event-driven loop
     * skips the provably dead cycles in between.
     */
    uint64_t next_event(uint64_t now) const;

    /** Attribute @p cycles of skipped (provably stalled) time to the
     *  sub-cores' issue-stall counters. */
    void account_skipped(uint64_t cycles);

    // ---- Interface used by SubCore ----
    const GpuConfig& config() const { return cfg_; }
    MemorySystem& mem() { return *mem_; }
    uint64_t now() const { return now_; }
    int id() const { return id_; }

    /** Enqueue a memory instruction into the MIO path.  Returns
     *  StallReason::kNone on success; otherwise the reason the warp
     *  must stall — kMioFull when the finite load/store queue itself
     *  is full, or the downstream back-pressure reason (kMshrFull /
     *  kNocBusy / kDramQueue) when the queue is full *because* the
     *  memory system is refusing its head transaction. */
    StallReason mio_push(int subcore, int warp_slot, const Instruction* inst,
                         int iter);

    /** Functional execution of one instruction (loads/stores/ALU/HMMA). */
    void execute_functional(Warp& w, const Instruction& inst);

    void barrier_arrive(int cta_slot);
    void warp_finished(int cta_slot);
    /** Count one issued instruction against @p w's grid. */
    void count_issue(const Warp& w, const Instruction& inst);
    void record_macro(GridRun* grid, MacroClass mc, uint64_t latency)
    {
        grid->stats.shard(id_).record_macro(mc, latency);
    }
    SharedMemoryStorage* shared(int cta_slot);

    /** Instructions issued by this SM. */
    uint64_t issued() const;

    /** CTAs completed by this SM. */
    int ctas_completed() const { return ctas_completed_; }

    /** CTAs currently resident. */
    int resident_ctas() const { return used_ctas_; }

    /** Sum of sub-core issue-stall counters into @p out. */
    void add_stalls(StallCounts* out) const
    {
        for (const auto& sc : subcores_)
            out->add(sc->stall_counts());
    }

    /** @p grid is retiring: clear any sub-core stall-attribution
     *  pointers into it before the GridRun is destroyed. */
    void forget_grid(const GridRun* grid)
    {
        for (const auto& sc : subcores_)
            sc->forget_grid(grid);
    }

    /** Batched form: one pass for every grid retiring this tick (the
     *  engine collects retirements first instead of re-walking every
     *  SM once per retired launch). */
    void forget_grids(const std::vector<const GridRun*>& grids)
    {
        for (const GridRun* g : grids)
            forget_grid(g);
    }

    /** cta_id of CTA slot @p slot (SubCore::load_state regenerates
     *  warp programs from it). */
    int cta_id_of_slot(int slot) const
    {
        return cta_slots_[static_cast<size_t>(slot)].cta_id;
    }

    /**
     * Serialize/restore the full SM state (snapshot support).  Must
     * only run between engine ticks: the staged functional-memory and
     * CTA-completion buffers are required to be empty.  @p grids maps
     * resident GridRun pointers to stable indices.
     */
    void save_state(SnapshotWriter& w,
                    const std::vector<GridRun*>& grids) const;
    void load_state(SnapshotReader& r, const std::vector<GridRun*>& grids);

  private:
    void process_mio();

    /** Functional execution of one staged global LDG/STG. */
    void functional_global_access(Warp& w, const Instruction& inst,
                                  int iter);

    /** Pipeline stall reason for a memory-system refusal. */
    static StallReason stall_reason_of(MemAccept status);

    struct MioEntry
    {
        int subcore;
        int warp_slot;
        const Instruction* inst;
        int iter;
        /** Global-path transaction state: the warp's coalesced sectors
         *  (computed when the entry reaches the head of the queue) and
         *  how far admission has progressed.  A sector refused by the
         *  memory system leaves the entry at the head; it resumes from
         *  next_sector at the retry cycle. */
        std::vector<uint64_t> sectors;
        size_t next_sector = 0;
        uint64_t done = 0;       ///< Max completion across sectors so far.
        uint64_t port_next = 0;  ///< L1 port cycle of the next sector.
        bool primed = false;     ///< Sectors computed.
    };

    int id_;
    GpuConfig cfg_;
    MemorySystem* mem_;
    ExecutorCache* executors_;
    /** One-entry memo over executors_ (see the kHmma functional
     *  case): executors are immutable and never evicted, so the
     *  pointer stays valid for the cache's lifetime. */
    HmmaExecutor* executor_memo_ = nullptr;
    uint64_t executor_memo_key_ = 0;
    uint64_t now_ = 0;
    /** Anything happened this tick (issue/writeback/MIO pop)? */
    bool progress_ = false;

    std::vector<std::unique_ptr<SubCore>> subcores_;
    std::vector<CtaSlot> cta_slots_;
    /** (subcore, warp_slot) pairs per CTA slot, for barrier release. */
    std::vector<std::vector<std::pair<int, int>>> cta_warps_;

    /** Warp-slot cap for dispatch decisions (== max_warps_per_sm on a
     *  healthy SM; lower on a fault-degraded one). */
    int warp_cap_ = 0;

    /** Additive occupancy accounting across all resident grids. */
    int used_ctas_ = 0;
    int used_warps_ = 0;
    uint64_t used_smem_ = 0;
    uint64_t used_regs_ = 0;

    /** Separate shared-memory and L1/global pipes behind the MIO
     *  scheduler (each accepts one warp instruction per cycle). */
    std::deque<MioEntry> mio_shared_;
    std::deque<MioEntry> mio_global_;
    uint64_t mio_shared_free_ = 0;
    uint64_t mio_global_free_ = 0;
    /** Earliest cycle a refused head transaction may be retried (0 =
     *  head not blocked).  Folded into next_event so idle-skip jumps
     *  exactly to the retry. */
    uint64_t mio_global_retry_ = 0;
    /** Why the global head is blocked (memory back-pressure), for
     *  stall attribution when the LSQ backs up to the scheduler. */
    StallReason mio_block_reason_ = StallReason::kNone;
    int ctas_completed_ = 0;

    /** One global-memory instruction whose functional effect is
     *  deferred to commit_tick().  Issued this tick, applied this
     *  tick: nothing can observe the warp's registers or the target
     *  addresses in between, but deferral keeps the parallel compute
     *  phase free of cross-SM loads/stores. */
    struct StagedMemOp
    {
        Warp* warp;
        const Instruction* inst;
        int iter;
    };
    std::vector<StagedMemOp> staged_mem_;
    /** Grids whose CTAs completed this tick, with the CTA's measured
     *  latency (ctas_done / finish_cycle are grid-shared, so the
     *  increments apply at commit). */
    std::vector<CtaCompletion> staged_cta_done_;

    /** Tick-end caches consumed by the engine (see tick_compute). */
    bool busy_cache_ = false;
    uint64_t next_event_cache_ = UINT64_MAX;
};

}  // namespace tcsim
