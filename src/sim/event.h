#pragma once
/**
 * @file
 * CUDA-style event: a cycle-stamped synchronization point recorded
 * into a stream.  `Stream::record(Event&)` enqueues a record marker
 * that completes — and stamps the event with the engine cycle — once
 * every launch enqueued on that stream before it has retired.
 * `Stream::wait(const Event&)` gates all later work on that stream
 * until the event completes (cross-stream happens-before), and
 * `Event::elapsed_cycles()` is the cycle-domain analog of
 * `cudaEventElapsedTime`.
 *
 * Events are created by Gpu::create_event() and live as long as the
 * Gpu.  Re-recording an event resets it; the last record processed by
 * the engine wins.
 */

#include <cstdint>
#include <string>

#include "common/logging.h"

namespace tcsim {

/** A cycle-stamped cross-stream synchronization point. */
class Event
{
  public:
    Event(int id, std::string name)
        : id_(id), name_(std::move(name))
    {
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    int id() const { return id_; }
    const std::string& name() const { return name_; }

    /** A record for this event has been enqueued on some stream (it
     *  may not have been reached by the engine yet). */
    bool recorded() const { return recorded_; }

    /** The engine reached the (latest) record: all work enqueued
     *  before it has retired and cycle() is valid. */
    bool complete() const { return complete_; }

    /** Engine cycle the event completed at.  Only valid once
     *  complete(); stamps are in the timebase of the run that
     *  processed the record. */
    uint64_t cycle() const
    {
        TCSIM_CHECK(complete_);
        return cycle_;
    }

    /** Cycles between two completed events of the same run (the
     *  cudaEventElapsedTime analog, in core clocks). */
    static uint64_t elapsed_cycles(const Event& start, const Event& end)
    {
        TCSIM_CHECK(start.complete_ && end.complete_);
        TCSIM_CHECK(end.cycle_ >= start.cycle_);
        return end.cycle_ - start.cycle_;
    }

  private:
    friend class Stream;           // record() marks recorded_.
    friend class ExecutionEngine;  // Completion stamping.
    friend class Gpu;              // Snapshot/restore of event state.

    int id_;
    std::string name_;
    bool recorded_ = false;
    bool complete_ = false;
    uint64_t cycle_ = 0;
};

}  // namespace tcsim
