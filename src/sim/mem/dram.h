#pragma once
/**
 * @file
 * DRAM (HBM2) timing model: address-interleaved partitions, each with
 * a service rate in bytes/cycle and a fixed access latency.  Sector
 * requests queue at their partition; the returned completion time
 * reflects both bandwidth contention and latency.
 */

#include <cstdint>
#include <vector>

namespace tcsim {

/** Per-partition bandwidth/latency model. */
class DramModel
{
  public:
    DramModel(int num_partitions, double bytes_per_cycle, int latency,
              int interleave_bytes = 256);

    /**
     * Enqueue one sector request at cycle @p now; returns the cycle
     * the data is available at L2.
     */
    uint64_t access(uint64_t addr, int bytes, uint64_t now);

    uint64_t total_bytes() const { return total_bytes_; }
    uint64_t total_requests() const { return total_requests_; }

    /** Reset queue state between kernels. */
    void reset();

  private:
    int num_partitions_;
    double cycles_per_byte_;
    int latency_;
    int interleave_bytes_;
    std::vector<double> next_free_;  ///< Per-partition service horizon.
    uint64_t total_bytes_ = 0;
    uint64_t total_requests_ = 0;
};

}  // namespace tcsim
