#pragma once
/**
 * @file
 * DRAM (HBM2) timing model: address-interleaved partitions, each a
 * BoundedChannel (bytes/cycle service rate + bounded request queue)
 * plus a read/write bus-turnaround penalty and a fixed access latency.
 * Sector requests occupy a partition-queue slot from acceptance until
 * their service completes; when every slot of the addressed partition
 * is held the request is refused and the refusal propagates back up
 * the hierarchy as kDramQueue back-pressure.
 */

#include <cstdint>
#include <vector>

#include "sim/mem/queueing.h"

namespace tcsim {

class SnapshotReader;
class SnapshotWriter;

/** Per-partition bandwidth/latency/queueing model. */
class DramModel
{
  public:
    DramModel(int num_partitions, double bytes_per_cycle, int latency,
              int interleave_bytes = 256, int queue_depth = 32,
              int rw_turnaround = 0);

    /** Partition @p addr interleaves onto. */
    int partition(uint64_t addr) const
    {
        return static_cast<int>(
            (addr / static_cast<uint64_t>(interleave_bytes_)) %
            static_cast<uint64_t>(num_partitions_));
    }

    /** True when @p addr's partition has a free queue slot at @p now. */
    bool can_accept(uint64_t addr, uint64_t now)
    {
        return parts_[static_cast<size_t>(partition(addr))]
            .chan.can_accept(now);
    }

    /** First cycle a slot of @p addr's partition frees (call only
     *  when can_accept is false). */
    uint64_t retry_cycle(uint64_t addr, uint64_t now)
    {
        return parts_[static_cast<size_t>(partition(addr))]
            .chan.retry_cycle(now);
    }

    /**
     * Enqueue one sector request arriving at cycle @p now (the caller
     * has checked can_accept); returns the cycle the data is available
     * at L2 (stores: the cycle the write has drained).  Switching the
     * partition between reads and writes costs the turnaround penalty
     * (paid after any queue wait; not counted as queueing delay).
     */
    uint64_t access(uint64_t addr, int bytes, bool is_write, uint64_t now);

    uint64_t total_bytes() const;
    uint64_t total_requests() const;
    /** Cycles requests waited behind earlier work in partition queues
     *  (bus turnaround excluded). */
    uint64_t queue_cycles() const;
    /** Read<->write bus direction switches paid for. */
    uint64_t turnarounds() const { return turnarounds_; }

    /** Reset queue state between engine runs. */
    void reset();

    /** Serialize/restore per-partition queues, bus direction and
     *  turnaround counter (snapshot support). */
    void save_state(SnapshotWriter& w) const;
    void load_state(SnapshotReader& r);

  private:
    struct Partition
    {
        BoundedChannel chan;
        bool last_write = false;
        bool active = false;  ///< Any request serviced since reset.
    };

    int num_partitions_;
    int latency_;
    int interleave_bytes_;
    int rw_turnaround_;
    std::vector<Partition> parts_;
    uint64_t turnarounds_ = 0;
};

}  // namespace tcsim
