#include "sim/mem/mshr.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/snapshot_io.h"

namespace tcsim {

MshrFile::MshrFile(int entries, int line_bytes, int sector_bytes)
    : entries_(entries), line_bytes_(line_bytes), sector_bytes_(sector_bytes)
{
    TCSIM_CHECK(entries > 0);
    TCSIM_CHECK(line_bytes > 0 && sector_bytes > 0);
    TCSIM_CHECK(line_bytes % sector_bytes == 0);
    TCSIM_CHECK(line_bytes / sector_bytes <= 8);
    // Full reservation up front: entry pointers handed out by query()
    // stay valid across the push_back in track().
    active_.reserve(static_cast<size_t>(entries));
}

void
MshrFile::prune(uint64_t now)
{
    // An entry frees once its last sector fill has arrived.  Order is
    // irrelevant (lookup is by line), so swap-erase.
    for (size_t i = 0; i < active_.size();) {
        if (active_[i].last_fill <= now) {
            active_[i] = active_.back();
            active_.pop_back();
        } else {
            ++i;
        }
    }
}

MshrFile::Entry*
MshrFile::find(uint64_t line)
{
    for (Entry& e : active_)
        if (e.line == line)
            return &e;
    return nullptr;
}

MshrFile::Lookup
MshrFile::query(uint64_t addr, uint64_t now)
{
    prune(now);
    Lookup out;
    Entry* e = find(addr / static_cast<uint64_t>(line_bytes_));
    out.entry = e;
    if (e) {
        // Merge-on-sector: the line's entry absorbs new fills, and a
        // fill already in flight for this exact sector is ridden home.
        out.can_track = true;
        size_t sector = (addr % static_cast<uint64_t>(line_bytes_)) /
                        static_cast<uint64_t>(sector_bytes_);
        uint64_t fill = e->sector_fill[sector];
        if (fill > now) {
            out.pending_fill = fill;
            ++merges_;
        }
        return out;
    }
    out.can_track = active_.size() < static_cast<size_t>(entries_);
    return out;
}

uint64_t
MshrFile::retry_cycle(uint64_t now)
{
    prune(now);
    TCSIM_CHECK(active_.size() >= static_cast<size_t>(entries_));
    uint64_t first_free = UINT64_MAX;
    for (const Entry& e : active_)
        first_free = std::min(first_free, e.last_fill);
    return first_free;
}

void
MshrFile::track(uint64_t addr, const Lookup& found, uint64_t fill_done)
{
    Entry* e = static_cast<Entry*>(found.entry);
    if (!e) {
        TCSIM_CHECK(active_.size() < static_cast<size_t>(entries_));
        active_.push_back(Entry{});
        e = &active_.back();
        e->line = addr / static_cast<uint64_t>(line_bytes_);
        peak_ = std::max(peak_, active_.size());
    }
    size_t sector = (addr % static_cast<uint64_t>(line_bytes_)) /
                    static_cast<uint64_t>(sector_bytes_);
    e->sector_fill[sector] = std::max(e->sector_fill[sector], fill_done);
    e->last_fill = std::max(e->last_fill, fill_done);
}

size_t
MshrFile::occupancy(uint64_t now)
{
    prune(now);
    return active_.size();
}

void
MshrFile::reset()
{
    active_.clear();
    peak_ = 0;
    merges_ = 0;
}

void
MshrFile::save_state(SnapshotWriter& w) const
{
    w.u64(active_.size());
    for (const Entry& e : active_) {
        w.u64(e.line);
        for (uint64_t fill : e.sector_fill)
            w.u64(fill);
        w.u64(e.last_fill);
    }
    w.u64(peak_);
    w.u64(merges_);
}

void
MshrFile::load_state(SnapshotReader& r)
{
    uint64_t n = r.u64();
    if (n > static_cast<uint64_t>(entries_))
        throw SnapshotError("MSHR occupancy exceeds file size");
    active_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        Entry e;
        e.line = r.u64();
        for (uint64_t& fill : e.sector_fill)
            fill = r.u64();
        e.last_fill = r.u64();
        active_.push_back(e);
    }
    peak_ = r.u64();
    merges_ = r.u64();
}

}  // namespace tcsim
