#pragma once
/**
 * @file
 * Bounded service queues for the transaction-based memory hierarchy:
 * a BoundedChannel models one serialization point (the SM<->L2
 * interconnect, one L2 bank, one DRAM partition) with a bytes/cycle
 * service rate and a finite number of in-flight slots.
 *
 * A request occupies a slot from acceptance until its service
 * completes; when every slot is held by an unfinished request the
 * channel refuses new work and reports the first cycle a slot frees,
 * which is how back-pressure propagates up to the issuing warp.  All
 * state is pruned lazily against the query cycle, so the channel has
 * no autonomous clock and the engine's idle-skip stays exact.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sim/snapshot_io.h"

namespace tcsim {

/** One throttled, bounded service point. */
class BoundedChannel
{
  public:
    BoundedChannel() = default;

    /** @p retire_on_submit: retire completions older than each new
     *  request's arrival epoch at submit time.  Meant for levels whose
     *  admission check runs on an earlier clock than their arrivals
     *  (the DRAM partitions: admission happens at the L1 port cycle,
     *  arrival after the NoC/bank backlog) — slots that will have
     *  drained by the arrival epoch must not refuse the request. */
    BoundedChannel(double bytes_per_cycle, int depth,
                   bool retire_on_submit = false)
        : cycles_per_byte_(1.0 / bytes_per_cycle),
          depth_(static_cast<size_t>(depth)),
          retire_on_submit_(retire_on_submit),
          slots_(static_cast<size_t>(depth))
    {
        TCSIM_CHECK(bytes_per_cycle > 0.0);
        TCSIM_CHECK(depth > 0);
    }

    /** Requests still occupying a slot at cycle @p now. */
    size_t occupancy(uint64_t now)
    {
        prune(now);
        return count_;
    }

    /** True when a request arriving at @p now can take a slot. */
    bool can_accept(uint64_t now)
    {
        prune(now);
        return count_ < depth_;
    }

    /**
     * First cycle a slot frees (call only when full).  Completions are
     * fixed once scheduled and later submissions can only queue behind
     * them, so acceptance can never become possible earlier than this.
     */
    uint64_t retry_cycle(uint64_t now)
    {
        prune(now);
        TCSIM_CHECK(count_ >= depth_);
        // Completions are pushed in nondecreasing order (the horizon
        // is monotone); the slot frees when the oldest outstanding
        // request retires.
        double t = slots_[head_];
        uint64_t c = static_cast<uint64_t>(t);
        return c < t ? c + 1 : c;  // ceil: free strictly after t
    }

    /**
     * Accept a transfer of @p bytes arriving at cycle @p t (the caller
     * has checked can_accept).  Returns the service-*start* cycle —
     * the arrival time plus any queueing delay behind earlier work;
     * the level's fixed pipe latency rides on top at the caller, while
     * the service time itself only shapes the bandwidth horizon.
     *
     * @p pre_service_delay is extra setup the channel pays *after* the
     * queue wait and before service (the DRAM read/write bus
     * turnaround): it delays this request's service and every later
     * request's horizon, but is not counted as this request's queueing
     * delay.
     */
    double submit(uint64_t t, int bytes, double pre_service_delay = 0.0)
    {
        if (retire_on_submit_)
            prune(t);
        double start = std::max(static_cast<double>(t), horizon_);
        queue_cycles_ += static_cast<uint64_t>(start - static_cast<double>(t));
        start += pre_service_delay;
        horizon_ = start + bytes * cycles_per_byte_;
        total_bytes_ += static_cast<uint64_t>(bytes);
        ++total_requests_;
        // Every submit is preceded by a passing can_accept at an epoch
        // no later than the completions already queued, so a slot is
        // guaranteed; the ring therefore never grows past depth_.
        TCSIM_CHECK(count_ < depth_);
        slots_[(head_ + count_) % depth_] = horizon_;
        ++count_;
        return start;
    }

    /** Service completion of the most recently submitted request. */
    double horizon() const { return horizon_; }

    /** Cycles requests spent waiting behind earlier work. */
    uint64_t queue_cycles() const { return queue_cycles_; }
    uint64_t total_bytes() const { return total_bytes_; }
    uint64_t total_requests() const { return total_requests_; }

    void reset()
    {
        horizon_ = 0.0;
        head_ = 0;
        count_ = 0;
        queue_cycles_ = 0;
        total_bytes_ = 0;
        total_requests_ = 0;
    }

    /** Serialize the runtime state (not the construction-time config,
     *  which the restoring channel re-derives from GpuConfig; depth is
     *  written anyway as a cheap config-skew check).  Live slots are
     *  written in ring order and reloaded at head 0 — the physical
     *  ring position is not observable through prune/submit/retry. */
    void save_state(SnapshotWriter& w) const
    {
        w.u64(depth_);
        w.f64(horizon_);
        w.u64(count_);
        for (size_t i = 0; i < count_; ++i)
            w.f64(slots_[(head_ + i) % depth_]);
        w.u64(queue_cycles_);
        w.u64(total_bytes_);
        w.u64(total_requests_);
    }

    void load_state(SnapshotReader& r)
    {
        if (r.u64() != depth_)
            throw SnapshotError("BoundedChannel depth mismatch");
        horizon_ = r.f64();
        size_t count = r.u64();
        if (count > depth_)
            throw SnapshotError("BoundedChannel occupancy exceeds depth");
        head_ = 0;
        count_ = count;
        for (size_t i = 0; i < count_; ++i)
            slots_[i] = r.f64();
        queue_cycles_ = r.u64();
        total_bytes_ = r.u64();
        total_requests_ = r.u64();
    }

  private:
    void prune(uint64_t now)
    {
        // Completion times are nondecreasing around the ring, so
        // retiring from the head until it outlives `now` is exact.
        while (count_ > 0 && slots_[head_] <= static_cast<double>(now)) {
            head_ = (head_ + 1) % depth_;
            --count_;
        }
    }

    double cycles_per_byte_ = 1.0;
    size_t depth_ = 1;
    bool retire_on_submit_ = false;
    double horizon_ = 0.0;
    /**
     * Service-completion times of the requests holding slots, as a
     * fixed-capacity ring (a request occupies a slot from acceptance
     * to completion, so at most depth_ are ever live — the deque this
     * replaces paid an allocation every few hundred requests in the
     * engine's hottest loop).  Valid entries are the count_ ascending
     * values starting at head_.
     */
    std::vector<double> slots_ = std::vector<double>(1);
    size_t head_ = 0;
    size_t count_ = 0;
    uint64_t queue_cycles_ = 0;
    uint64_t total_bytes_ = 0;
    uint64_t total_requests_ = 0;
};

}  // namespace tcsim
