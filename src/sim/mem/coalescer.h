#pragma once
/**
 * @file
 * Memory access coalescer: collapses the 32 per-lane addresses of a
 * warp-wide load/store into the set of distinct 32-byte sectors it
 * touches, the granularity at which Volta's L1 moves data.
 */

#include <cstdint>
#include <vector>

#include "isa/instruction.h"

namespace tcsim {

/** Coalesce one warp-wide access into sorted unique sector addresses
 *  (byte address of each sector start).  @p iter is the loop
 *  iteration the instruction issued at. */
std::vector<uint64_t> coalesce_sectors(const Instruction& inst,
                                       int sector_bytes = 32, int iter = 0);

}  // namespace tcsim
