#include "sim/mem/dram.h"

#include <algorithm>

#include "common/logging.h"

namespace tcsim {

DramModel::DramModel(int num_partitions, double bytes_per_cycle, int latency,
                     int interleave_bytes)
    : num_partitions_(num_partitions), cycles_per_byte_(1.0 / bytes_per_cycle),
      latency_(latency), interleave_bytes_(interleave_bytes),
      next_free_(static_cast<size_t>(num_partitions), 0.0)
{
    TCSIM_CHECK(num_partitions > 0);
    TCSIM_CHECK(bytes_per_cycle > 0.0);
}

uint64_t
DramModel::access(uint64_t addr, int bytes, uint64_t now)
{
    int part = static_cast<int>((addr / interleave_bytes_) % num_partitions_);
    double start = std::max(static_cast<double>(now), next_free_[part]);
    double service = bytes * cycles_per_byte_;
    next_free_[part] = start + service;
    total_bytes_ += static_cast<uint64_t>(bytes);
    ++total_requests_;
    return static_cast<uint64_t>(start + service) + latency_;
}

void
DramModel::reset()
{
    std::fill(next_free_.begin(), next_free_.end(), 0.0);
    total_bytes_ = 0;
    total_requests_ = 0;
}

}  // namespace tcsim
