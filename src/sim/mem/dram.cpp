#include "sim/mem/dram.h"

#include "common/logging.h"
#include "sim/snapshot_io.h"

namespace tcsim {

DramModel::DramModel(int num_partitions, double bytes_per_cycle, int latency,
                     int interleave_bytes, int queue_depth, int rw_turnaround)
    : num_partitions_(num_partitions), latency_(latency),
      interleave_bytes_(interleave_bytes), rw_turnaround_(rw_turnaround)
{
    TCSIM_CHECK(num_partitions > 0);
    TCSIM_CHECK(rw_turnaround >= 0);
    parts_.resize(static_cast<size_t>(num_partitions));
    for (Partition& p : parts_)
        p.chan = BoundedChannel(bytes_per_cycle, queue_depth,
                                /*retire_on_submit=*/true);
}

uint64_t
DramModel::access(uint64_t addr, int bytes, bool is_write, uint64_t now)
{
    Partition& p = parts_[static_cast<size_t>(partition(addr))];
    double turnaround = 0.0;
    if (p.active && p.last_write != is_write && rw_turnaround_ > 0) {
        turnaround = static_cast<double>(rw_turnaround_);
        ++turnarounds_;
    }
    p.active = true;
    p.last_write = is_write;
    p.chan.submit(now, bytes, turnaround);
    return static_cast<uint64_t>(p.chan.horizon()) +
           static_cast<uint64_t>(latency_);
}

uint64_t
DramModel::total_bytes() const
{
    uint64_t n = 0;
    for (const Partition& p : parts_)
        n += p.chan.total_bytes();
    return n;
}

uint64_t
DramModel::total_requests() const
{
    uint64_t n = 0;
    for (const Partition& p : parts_)
        n += p.chan.total_requests();
    return n;
}

uint64_t
DramModel::queue_cycles() const
{
    uint64_t n = 0;
    for (const Partition& p : parts_)
        n += p.chan.queue_cycles();
    return n;
}

void
DramModel::reset()
{
    for (Partition& p : parts_) {
        p.chan.reset();
        p.last_write = false;
        p.active = false;
    }
    turnarounds_ = 0;
}

void
DramModel::save_state(SnapshotWriter& w) const
{
    w.u64(parts_.size());
    for (const Partition& p : parts_) {
        p.chan.save_state(w);
        w.b(p.last_write);
        w.b(p.active);
    }
    w.u64(turnarounds_);
}

void
DramModel::load_state(SnapshotReader& r)
{
    if (r.u64() != parts_.size())
        throw SnapshotError("DRAM partition count mismatch");
    for (Partition& p : parts_) {
        p.chan.load_state(r);
        p.last_write = r.b();
        p.active = r.b();
    }
    turnarounds_ = r.u64();
}

}  // namespace tcsim
