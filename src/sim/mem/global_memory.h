#pragma once
/**
 * @file
 * Functional global-memory backing store with a bump allocator.
 *
 * Simulated kernels address a flat 64-bit space; allocations are
 * 256-byte aligned (so tile base addresses behave like cudaMalloc
 * results with respect to coalescing).
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"

namespace tcsim {

/** Flat byte-addressable device memory (functional model). */
class GlobalMemory
{
  public:
    GlobalMemory() = default;

    /** Allocate @p bytes, 256-byte aligned; returns the device address.
     *  Address 0 is reserved (null). */
    uint64_t alloc(uint64_t bytes)
    {
        uint64_t addr = (next_ + 255) & ~uint64_t{255};
        next_ = addr + bytes;
        if (next_ > data_.size())
            data_.resize(next_);
        return addr;
    }

    /** Total allocated footprint in bytes. */
    uint64_t footprint() const { return next_; }

    void write(uint64_t addr, const void* src, size_t bytes)
    {
        TCSIM_CHECK(addr + bytes <= data_.size());
        std::memcpy(data_.data() + addr, src, bytes);
    }

    void read(uint64_t addr, void* dst, size_t bytes) const
    {
        TCSIM_CHECK(addr + bytes <= data_.size());
        std::memcpy(dst, data_.data() + addr, bytes);
    }

    uint32_t read_u32(uint64_t addr) const
    {
        uint32_t v;
        read(addr, &v, 4);
        return v;
    }

    void write_u32(uint64_t addr, uint32_t v) { write(addr, &v, 4); }

    /** Raw pointer for bulk host-side initialization. */
    uint8_t* raw(uint64_t addr, size_t bytes)
    {
        TCSIM_CHECK(addr + bytes <= data_.size());
        return data_.data() + addr;
    }

    /** Snapshot support: hand out the bump cursor and a copy of the
     *  contents.  Gpu::snapshot() wraps the copy in a shared immutable
     *  blob so every fork restores from the same bytes. */
    void save_state(uint64_t* next, std::vector<uint8_t>* data) const
    {
        *next = next_;
        *data = data_;
    }

    void load_state(uint64_t next, const std::vector<uint8_t>& data)
    {
        next_ = next;
        data_ = data;
    }

  private:
    // First allocation starts past null page.
    uint64_t next_ = 4096;
    std::vector<uint8_t> data_;
};

}  // namespace tcsim
