#pragma once
/**
 * @file
 * Per-CTA shared memory: functional storage plus the 32-bank conflict
 * model that determines access latency.
 */

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "isa/instruction.h"

namespace tcsim {

/**
 * Bank-conflict degree of one warp-wide shared access: the maximum
 * number of *distinct* 32-bit words any single bank must serve
 * (lanes reading the same word broadcast).  1 = conflict free.
 * Accesses wider than 4 bytes are split into 4-byte phases, matching
 * hardware behaviour for LDS.64/LDS.128.
 */
int shared_bank_conflict_degree(const Instruction& inst, int num_banks = 32,
                                int iter = 0);

/** Functional shared-memory array for one CTA. */
class SharedMemoryStorage
{
  public:
    explicit SharedMemoryStorage(uint32_t bytes) : data_(bytes, 0) {}

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

    void write(uint64_t addr, const void* src, size_t bytes)
    {
        TCSIM_CHECK(addr + bytes <= data_.size());
        std::memcpy(data_.data() + addr, src, bytes);
    }

    void read(uint64_t addr, void* dst, size_t bytes) const
    {
        TCSIM_CHECK(addr + bytes <= data_.size());
        std::memcpy(dst, data_.data() + addr, bytes);
    }

  private:
    std::vector<uint8_t> data_;
};

}  // namespace tcsim
