#include "sim/mem/coalescer.h"

#include <algorithm>

#include "common/logging.h"

namespace tcsim {

std::vector<uint64_t>
coalesce_sectors(const Instruction& inst, int sector_bytes, int iter)
{
    TCSIM_CHECK(is_memory_opcode(inst.op));
    TCSIM_CHECK(inst.addr != nullptr);
    TCSIM_CHECK(inst.width_bits >= 8);

    std::vector<uint64_t> sectors;
    sectors.reserve(kWarpSize);
    const uint64_t bytes = inst.width_bits / 8;
    const uint64_t mask = ~static_cast<uint64_t>(sector_bytes - 1);
    for (int lane = 0; lane < kWarpSize; ++lane) {
        uint64_t a = inst.effective_addr(lane, iter);
        if (a == kNoAddr)
            continue;
        uint64_t first = a & mask;
        uint64_t last = (a + bytes - 1) & mask;
        for (uint64_t s = first; s <= last;
             s += static_cast<uint64_t>(sector_bytes))
            sectors.push_back(s);
    }
    std::sort(sectors.begin(), sectors.end());
    sectors.erase(std::unique(sectors.begin(), sectors.end()), sectors.end());
    return sectors;
}

}  // namespace tcsim
