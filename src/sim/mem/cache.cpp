#include "sim/mem/cache.h"

#include "common/logging.h"

namespace tcsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg)
{
    TCSIM_CHECK(cfg.line_bytes % cfg.sector_bytes == 0);
    sectors_per_line_ = cfg.line_bytes / cfg.sector_bytes;
    TCSIM_CHECK(sectors_per_line_ <= 8);
    num_sets_ = static_cast<int>(cfg.size_bytes /
                                 (static_cast<uint32_t>(cfg.line_bytes) *
                                  cfg.assoc));
    TCSIM_CHECK(num_sets_ > 0);
    lines_.resize(static_cast<size_t>(num_sets_) * cfg.assoc);
}

CacheOutcome
Cache::access(uint64_t addr, bool is_write)
{
    ++tick_;
    uint64_t line_addr = addr / cfg_.line_bytes;
    // Modulo indexing (set counts need not be a power of two, e.g.
    // the Titan V's 4608 KB L2).
    int set = static_cast<int>(line_addr % static_cast<uint64_t>(num_sets_));
    uint64_t tag = line_addr / static_cast<uint64_t>(num_sets_);
    int sector = static_cast<int>((addr % cfg_.line_bytes) /
                                  cfg_.sector_bytes);
    uint8_t sector_bit = static_cast<uint8_t>(1u << sector);

    Line* entry = nullptr;
    for (int w = 0; w < cfg_.assoc; ++w) {
        Line& line = lines_[static_cast<size_t>(set) * cfg_.assoc + w];
        if (line.valid && line.tag == tag) {
            entry = &line;
            break;
        }
    }

    if (entry) {
        entry->lru = tick_;
        if (entry->sector_valid & sector_bit) {
            ++hits_;
            return CacheOutcome::kHit;
        }
        // Line present, sector absent: fetch one sector.
        if (!is_write || cfg_.write_allocate)
            entry->sector_valid |= sector_bit;
        ++misses_;
        return CacheOutcome::kSectorMiss;
    }

    ++misses_;
    if (is_write && !cfg_.write_allocate)
        return CacheOutcome::kLineMiss;  // write-through, no fill

    // Victim = LRU way.
    Line* victim = &lines_[static_cast<size_t>(set) * cfg_.assoc];
    for (int w = 1; w < cfg_.assoc; ++w) {
        Line& line = lines_[static_cast<size_t>(set) * cfg_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    victim->sector_valid = sector_bit;
    return CacheOutcome::kLineMiss;
}

void
Cache::flush()
{
    for (auto& line : lines_) {
        line.valid = false;
        line.sector_valid = 0;
    }
    hits_ = 0;
    misses_ = 0;
}

}  // namespace tcsim
