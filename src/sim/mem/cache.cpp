#include "sim/mem/cache.h"

#include "common/logging.h"
#include "sim/snapshot_io.h"

namespace tcsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg)
{
    TCSIM_CHECK(cfg.line_bytes % cfg.sector_bytes == 0);
    sectors_per_line_ = cfg.line_bytes / cfg.sector_bytes;
    TCSIM_CHECK(sectors_per_line_ <= 8);
    num_sets_ = static_cast<int>(cfg.size_bytes /
                                 (static_cast<uint32_t>(cfg.line_bytes) *
                                  cfg.assoc));
    TCSIM_CHECK(num_sets_ > 0);
    lines_.resize(static_cast<size_t>(num_sets_) * cfg.assoc);
}

Cache::Addr
Cache::decompose(uint64_t addr) const
{
    uint64_t line_addr = addr / cfg_.line_bytes;
    // Modulo indexing (set counts need not be a power of two, e.g.
    // the Titan V's 4608 KB L2).
    Addr a;
    a.set = static_cast<int>(line_addr % static_cast<uint64_t>(num_sets_));
    a.tag = line_addr / static_cast<uint64_t>(num_sets_);
    int sector = static_cast<int>((addr % cfg_.line_bytes) /
                                  cfg_.sector_bytes);
    a.sector_bit = static_cast<uint8_t>(1u << sector);
    return a;
}

const Cache::Line*
Cache::find(const Addr& a) const
{
    for (int w = 0; w < cfg_.assoc; ++w) {
        const Line& line =
            lines_[static_cast<size_t>(a.set) * cfg_.assoc + w];
        if (line.valid && line.tag == a.tag)
            return &line;
    }
    return nullptr;
}

CacheOutcome
Cache::access(uint64_t addr, bool is_write)
{
    ++tick_;
    Addr a = decompose(addr);
    Line* entry = const_cast<Line*>(find(a));

    if (entry) {
        entry->lru = tick_;
        if (entry->sector_valid & a.sector_bit) {
            ++hits_;
            return CacheOutcome::kHit;
        }
        // Line present, sector absent: fetch one sector.
        if (!is_write || cfg_.write_allocate)
            entry->sector_valid |= a.sector_bit;
        ++misses_;
        return CacheOutcome::kSectorMiss;
    }

    ++misses_;
    if (is_write && !cfg_.write_allocate)
        return CacheOutcome::kLineMiss;  // write-through, no fill

    // Victim = LRU way.
    Line* victim = &lines_[static_cast<size_t>(a.set) * cfg_.assoc];
    for (int w = 1; w < cfg_.assoc; ++w) {
        Line& line = lines_[static_cast<size_t>(a.set) * cfg_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = a.tag;
    victim->lru = tick_;
    victim->sector_valid = a.sector_bit;
    return CacheOutcome::kLineMiss;
}

CacheOutcome
Cache::probe(uint64_t addr, bool is_write) const
{
    (void)is_write;  // Same lookup either way; kept for symmetry.
    Addr a = decompose(addr);
    const Line* line = find(a);
    if (!line)
        return CacheOutcome::kLineMiss;
    return (line->sector_valid & a.sector_bit) ? CacheOutcome::kHit
                                               : CacheOutcome::kSectorMiss;
}

void
Cache::flush()
{
    // Reset the LRU clock alongside the tags: stale per-line `lru`
    // stamps and a still-running tick_ would make post-flush
    // replacement state depend on pre-flush history, so two engine
    // runs over the same workload could diverge from a fresh cache.
    for (auto& line : lines_)
        line = Line{};
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

void
Cache::save_state(SnapshotWriter& w) const
{
    w.u64(lines_.size());
    for (const Line& line : lines_) {
        w.u64(line.tag);
        w.u64(line.lru);
        w.u8(line.sector_valid);
        w.b(line.valid);
    }
    w.u64(tick_);
    w.u64(hits_);
    w.u64(misses_);
}

void
Cache::load_state(SnapshotReader& r)
{
    if (r.u64() != lines_.size())
        throw SnapshotError("cache geometry mismatch");
    for (Line& line : lines_) {
        line.tag = r.u64();
        line.lru = r.u64();
        line.sector_valid = r.u8();
        line.valid = r.b();
    }
    tick_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
}

}  // namespace tcsim
