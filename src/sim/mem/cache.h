#pragma once
/**
 * @file
 * Sectored set-associative cache timing model (tag store only; data
 * is held functionally in GlobalMemory).  Used for both the per-SM L1
 * and the shared L2.
 *
 * Lines are 128 B with four 32-byte sectors; a miss on a cached line
 * with an absent sector fetches just that sector (sector-miss), as in
 * Volta's L1 (Khairy et al.).
 */

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace tcsim {

class SnapshotReader;
class SnapshotWriter;

/** Outcome of a cache lookup. */
enum class CacheOutcome { kHit, kSectorMiss, kLineMiss };

/** Configuration of one cache instance. */
struct CacheConfig
{
    uint32_t size_bytes = 128 * 1024;
    int line_bytes = 128;
    int sector_bytes = 32;
    int assoc = 4;
    bool write_allocate = false;  ///< Streaming write-through when false.
};

/** Sectored set-associative tag store with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig& cfg);

    /**
     * Access one sector (byte address anywhere within it).  Updates
     * tags/LRU and returns the outcome.  Write misses do not allocate
     * unless configured.
     */
    CacheOutcome access(uint64_t addr, bool is_write);

    /**
     * Outcome access() would return, with no side effects (no LRU
     * update, no counters, no fill).  The transaction path probes
     * before committing so a refused (back-pressured) access can be
     * retried without perturbing replacement state.
     */
    CacheOutcome probe(uint64_t addr, bool is_write) const;

    /** Invalidate all lines and reset the LRU clock and counters
     *  (engine-run boundary). */
    void flush();

    int num_sets() const { return num_sets_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    /** Serialize/restore the full tag store, LRU clock and counters
     *  (snapshot support; the geometry must match). */
    void save_state(SnapshotWriter& w) const;
    void load_state(SnapshotReader& r);

  private:
    struct Line
    {
        uint64_t tag = ~uint64_t{0};
        uint64_t lru = 0;
        uint8_t sector_valid = 0;  ///< Bitmask over sectors.
        bool valid = false;
    };

    /** Decomposed address: the single source of the set/tag/sector
     *  math shared by access() and probe(). */
    struct Addr
    {
        int set;
        uint64_t tag;
        uint8_t sector_bit;
    };
    Addr decompose(uint64_t addr) const;
    /** Matching valid line in @p a's set, or nullptr. */
    const Line* find(const Addr& a) const;

    CacheConfig cfg_;
    int num_sets_;
    int sectors_per_line_;
    std::vector<Line> lines_;  // [set * assoc + way]
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

}  // namespace tcsim
