#include "sim/mem/memory_system.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/fault/fault_plan.h"
#include "sim/snapshot_io.h"

namespace tcsim {

MemorySystem::MemorySystem(const GpuConfig& cfg) : cfg_(cfg)
{
    CacheConfig l1cfg;
    l1cfg.size_bytes = cfg.l1_size;
    l1cfg.line_bytes = cfg.l1_line_bytes;
    l1cfg.sector_bytes = cfg.l1_sector_bytes;
    l1cfg.assoc = cfg.l1_assoc;
    l1cfg.write_allocate = false;  // Volta L1: write-through, no allocate
    l1_.reserve(static_cast<size_t>(cfg.num_sms));
    mshr_.reserve(static_cast<size_t>(cfg.num_sms));
    for (int i = 0; i < cfg.num_sms; ++i) {
        l1_.push_back(std::make_unique<Cache>(l1cfg));
        mshr_.push_back(std::make_unique<MshrFile>(
            cfg.l1_mshr_entries, cfg.l1_line_bytes, cfg.l1_sector_bytes));
    }

    CacheConfig l2cfg;
    l2cfg.size_bytes = cfg.l2_size;
    l2cfg.line_bytes = cfg.l1_line_bytes;
    l2cfg.sector_bytes = cfg.l1_sector_bytes;
    l2cfg.assoc = cfg.l2_assoc;
    l2cfg.write_allocate = true;
    l2_ = std::make_unique<Cache>(l2cfg);

    noc_ = BoundedChannel(cfg.noc_bytes_per_cycle, cfg.noc_queue_depth);
    TCSIM_CHECK(cfg.l2_banks > 0);
    l2_banks_.reserve(static_cast<size_t>(cfg.l2_banks));
    for (int b = 0; b < cfg.l2_banks; ++b)
        l2_banks_.emplace_back(cfg.l2_bank_bytes_per_cycle,
                               cfg.l2_bank_queue_depth);

    dram_ = std::make_unique<DramModel>(
        cfg.num_mem_partitions, cfg.dram_bytes_per_cycle_per_partition,
        cfg.dram_latency, /*interleave_bytes=*/256, cfg.dram_queue_depth,
        cfg.dram_rw_turnaround);
}

MemAccessResult
MemorySystem::access_sector(int sm, uint64_t addr, bool is_write,
                            uint64_t now)
{
    TCSIM_CHECK(sm >= 0 && sm < static_cast<int>(l1_.size()));
    Cache& l1 = *l1_[sm];
    MshrFile& mshr = *mshr_[sm];
    const uint64_t l1_lat = static_cast<uint64_t>(cfg_.l1_hit_latency);
    const uint64_t l2_lat = static_cast<uint64_t>(cfg_.l2_hit_latency);

    if (!is_write) {
        // One MSHR file scan answers merge + trackability; the entry
        // pointer is reused by track() below (no mutation between).
        MshrFile::Lookup mq = mshr.query(addr, now);
        // Hit-under-miss: a fill for this exact sector is already in
        // flight — ride it home (one MSHR entry, no new traffic).
        if (mq.pending_fill) {
            ++global_sectors_;
            return {MemAccept::kAccepted,
                    std::max(mq.pending_fill, now + l1_lat)};
        }
        if (l1.probe(addr, false) == CacheOutcome::kHit) {
            l1.access(addr, false);
            ++global_sectors_;
            return {MemAccept::kAccepted, now + l1_lat};
        }

        // Miss path admission: every level the transaction will
        // traverse must have a slot *before* anything is mutated, so
        // a refusal leaves no trace and the retry is a clean replay.
        if (!mq.can_track)
            return {MemAccept::kMshrFull,
                    std::max(mshr.retry_cycle(now), now + 1)};
        if (!noc_.can_accept(now))
            return {MemAccept::kNocBusy,
                    std::max(noc_.retry_cycle(now), now + 1)};
        BoundedChannel& bank = l2_banks_[static_cast<size_t>(l2_bank(addr))];
        if (!bank.can_accept(now))
            return {MemAccept::kNocBusy,
                    std::max(bank.retry_cycle(now), now + 1)};
        bool l2_hit = l2_->probe(addr, false) == CacheOutcome::kHit;
        if (!l2_hit && !dram_->can_accept(addr, now))
            return {MemAccept::kDramQueue,
                    std::max(dram_->retry_cycle(addr, now), now + 1)};

        // Commit: fix the transaction's timeline through the service
        // horizons.  Wire latency is folded into the L2/DRAM
        // latencies (as in the analytical model this replaces), so an
        // uncontended miss costs exactly what it used to; queueing
        // delay rides on top under contention.
        l1.access(addr, false);
        uint64_t noc_start = static_cast<uint64_t>(
            noc_.submit(now, cfg_.l1_sector_bytes));
        uint64_t bank_start = static_cast<uint64_t>(
            bank.submit(noc_start, cfg_.l1_sector_bytes));
        l2_->access(addr, false);
        uint64_t done;
        if (l2_hit) {
            done = bank_start + l2_lat;
        } else {
            uint64_t dram_done =
                dram_->access(addr, cfg_.l1_sector_bytes, false, bank_start);
            done = dram_done + l2_lat;
        }
        // Injected ECC retry: the fill completes late, and any
        // hit-under-miss riders on this MSHR entry inherit the delay
        // (the whole line re-read costs everyone, as on real silicon).
        if (fault_plan_)
            done += fault_plan_->ecc_delay(sm, addr, now);
        mshr.track(addr, mq, done);
        ++global_sectors_;
        return {MemAccept::kAccepted, done};
    }

    // Stores: write-through at the L1 (no allocate), acknowledged at
    // L1 latency; the drain through NoC/L2/DRAM happens in the
    // background but holds real queue slots, so a saturated write
    // path back-pressures the warp.
    if (!noc_.can_accept(now))
        return {MemAccept::kNocBusy,
                std::max(noc_.retry_cycle(now), now + 1)};
    BoundedChannel& bank = l2_banks_[static_cast<size_t>(l2_bank(addr))];
    if (!bank.can_accept(now))
        return {MemAccept::kNocBusy,
                std::max(bank.retry_cycle(now), now + 1)};
    bool l2_write_hit = l2_->probe(addr, true) == CacheOutcome::kHit;
    if (!l2_write_hit && !dram_->can_accept(addr, now))
        return {MemAccept::kDramQueue,
                std::max(dram_->retry_cycle(addr, now), now + 1)};

    l1.access(addr, true);
    uint64_t noc_start = static_cast<uint64_t>(
        noc_.submit(now, cfg_.l1_sector_bytes));
    uint64_t bank_start = static_cast<uint64_t>(
        bank.submit(noc_start, cfg_.l1_sector_bytes));
    CacheOutcome o2 = l2_->access(addr, true);
    if (o2 == CacheOutcome::kLineMiss || o2 == CacheOutcome::kSectorMiss)
        dram_->access(addr, cfg_.l1_sector_bytes, true, bank_start + l2_lat);
    ++global_sectors_;
    return {MemAccept::kAccepted, now + l1_lat};
}

void
MemorySystem::reset_timing()
{
    for (auto& c : l1_)
        c->flush();
    for (auto& m : mshr_)
        m->reset();
    l2_->flush();
    noc_.reset();
    for (auto& b : l2_banks_)
        b.reset();
    dram_->reset();
    global_sectors_ = 0;
}

MemStats
MemorySystem::stats() const
{
    MemStats s;
    for (const auto& c : l1_) {
        s.l1_hits += c->hits();
        s.l1_misses += c->misses();
    }
    for (const auto& m : mshr_) {
        s.mshr_merges += m->merges();
        s.mshr_peak = std::max(s.mshr_peak,
                               static_cast<uint64_t>(m->peak()));
    }
    s.l2_hits = l2_->hits();
    s.l2_misses = l2_->misses();
    s.dram_bytes = dram_->total_bytes();
    s.global_sectors = global_sectors_;
    s.noc_queue_cycles = noc_.queue_cycles();
    for (const auto& b : l2_banks_)
        s.l2_queue_cycles += b.queue_cycles();
    s.dram_queue_cycles = dram_->queue_cycles();
    s.dram_turnarounds = dram_->turnarounds();
    return s;
}

void
MemorySystem::save_state(SnapshotWriter& w) const
{
    w.tag(kTagMemSystem);
    w.u64(l1_.size());
    for (size_t i = 0; i < l1_.size(); ++i) {
        l1_[i]->save_state(w);
        mshr_[i]->save_state(w);
    }
    l2_->save_state(w);
    noc_.save_state(w);
    w.u64(l2_banks_.size());
    for (const BoundedChannel& b : l2_banks_)
        b.save_state(w);
    dram_->save_state(w);
    w.u64(global_sectors_);
}

void
MemorySystem::load_state(SnapshotReader& r)
{
    r.tag(kTagMemSystem);
    if (r.u64() != l1_.size())
        throw SnapshotError("per-SM cache count mismatch");
    for (size_t i = 0; i < l1_.size(); ++i) {
        l1_[i]->load_state(r);
        mshr_[i]->load_state(r);
    }
    l2_->load_state(r);
    noc_.load_state(r);
    if (r.u64() != l2_banks_.size())
        throw SnapshotError("L2 bank count mismatch");
    for (BoundedChannel& b : l2_banks_)
        b.load_state(r);
    dram_->load_state(r);
    global_sectors_ = r.u64();
}

}  // namespace tcsim
