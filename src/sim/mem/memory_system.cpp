#include "sim/mem/memory_system.h"

#include <algorithm>

#include "common/logging.h"

namespace tcsim {

MemorySystem::MemorySystem(const GpuConfig& cfg) : cfg_(cfg)
{
    CacheConfig l1cfg;
    l1cfg.size_bytes = cfg.l1_size;
    l1cfg.line_bytes = cfg.l1_line_bytes;
    l1cfg.sector_bytes = cfg.l1_sector_bytes;
    l1cfg.assoc = cfg.l1_assoc;
    l1cfg.write_allocate = false;  // Volta L1: write-through, no allocate
    l1_.reserve(static_cast<size_t>(cfg.num_sms));
    for (int i = 0; i < cfg.num_sms; ++i)
        l1_.push_back(std::make_unique<Cache>(l1cfg));

    CacheConfig l2cfg;
    l2cfg.size_bytes = cfg.l2_size;
    l2cfg.line_bytes = cfg.l1_line_bytes;
    l2cfg.sector_bytes = cfg.l1_sector_bytes;
    l2cfg.assoc = cfg.l2_assoc;
    l2cfg.write_allocate = true;
    l2_ = std::make_unique<Cache>(l2cfg);

    dram_ = std::make_unique<DramModel>(
        cfg.num_mem_partitions, cfg.dram_bytes_per_cycle_per_partition,
        cfg.dram_latency);
}

uint64_t
MemorySystem::access_global(int sm, const std::vector<uint64_t>& sectors,
                            bool is_write, uint64_t now)
{
    TCSIM_CHECK(sm >= 0 && sm < static_cast<int>(l1_.size()));
    Cache& l1 = *l1_[sm];
    uint64_t done = now;
    global_sectors_ += sectors.size();

    // The L1 accepts one sector per cycle (port serialization).
    uint64_t port_cycle = now;
    for (uint64_t sector : sectors) {
        uint64_t t0 = port_cycle++;
        CacheOutcome o1 = l1.access(sector, is_write);
        uint64_t sector_done;
        if (is_write) {
            // Write-through: the warp's store is acknowledged at the
            // L1; the write drains through L2/DRAM in the background
            // but still consumes DRAM bandwidth.
            CacheOutcome o2 = l2_->access(sector, true);
            if (o2 == CacheOutcome::kLineMiss ||
                o2 == CacheOutcome::kSectorMiss) {
                dram_->access(sector, cfg_.l1_sector_bytes,
                              t0 + cfg_.l2_hit_latency);
            }
            sector_done = t0 + static_cast<uint64_t>(cfg_.l1_hit_latency);
        } else if (o1 == CacheOutcome::kHit) {
            sector_done = t0 + static_cast<uint64_t>(cfg_.l1_hit_latency);
        } else {
            CacheOutcome o2 = l2_->access(sector, false);
            if (o2 == CacheOutcome::kHit) {
                sector_done = t0 + static_cast<uint64_t>(cfg_.l2_hit_latency);
            } else {
                // DRAM round trip; the L2 transit cost rides on top.
                uint64_t dram_done =
                    dram_->access(sector, cfg_.l1_sector_bytes, t0);
                sector_done =
                    dram_done + static_cast<uint64_t>(cfg_.l2_hit_latency);
            }
        }
        done = std::max(done, sector_done);
    }
    return done;
}

void
MemorySystem::reset_timing()
{
    for (auto& c : l1_)
        c->flush();
    l2_->flush();
    dram_->reset();
    global_sectors_ = 0;
}

MemStats
MemorySystem::stats() const
{
    MemStats s;
    for (const auto& c : l1_) {
        s.l1_hits += c->hits();
        s.l1_misses += c->misses();
    }
    s.l2_hits = l2_->hits();
    s.l2_misses = l2_->misses();
    s.dram_bytes = dram_->total_bytes();
    s.global_sectors = global_sectors_;
    return s;
}

}  // namespace tcsim
