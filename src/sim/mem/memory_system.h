#pragma once
/**
 * @file
 * Chip-level memory system: per-SM sectored L1s with miss-status
 * holding registers, an SM<->L2 interconnect with bytes/cycle
 * throttling, a banked L2 with per-bank service queues, a partitioned
 * DRAM model with bounded request queues and read/write turnaround,
 * and the functional global memory backing store.
 *
 * Accesses are transactions, one 32-byte sector at a time: a sector is
 * either *accepted* — its completion cycle is fixed immediately from
 * the service horizons of every level it traverses (coalescer ->
 * L1/MSHR -> NoC -> L2 bank -> DRAM partition) — or *refused* when a
 * level's slots are exhausted, with the first cycle a retry can
 * succeed.  Refusals propagate back through the SM's MIO queue to the
 * issuing warp as kMshrFull / kNocBusy / kDramQueue stalls, which is
 * how memory back-pressure reaches the pipeline.  All queue state is
 * pruned lazily against the query cycle, so the engine's idle-skip
 * over stalled cycles stays bit-exact.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/gpu_config.h"
#include "sim/mem/cache.h"
#include "sim/mem/dram.h"
#include "sim/mem/global_memory.h"
#include "sim/mem/mshr.h"
#include "sim/mem/queueing.h"

namespace tcsim {

class FaultPlan;
class SnapshotReader;
class SnapshotWriter;

/** Why an access was refused (maps onto the pipeline StallReasons). */
enum class MemAccept : uint8_t {
    kAccepted,
    kMshrFull,   ///< The SM's L1 MSHR file has no free entry.
    kNocBusy,    ///< Interconnect or L2 bank queue slots exhausted.
    kDramQueue,  ///< The addressed DRAM partition's queue is full.
};

/** Outcome of one sector access. */
struct MemAccessResult
{
    MemAccept status = MemAccept::kAccepted;
    /** Accepted: cycle the data is available (loads) or the store is
     *  acknowledged.  Refused: first cycle a retry can succeed. */
    uint64_t cycle = 0;
};

/** Aggregated memory-system counters for one kernel or run window. */
struct MemStats
{
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_hits = 0;
    uint64_t l2_misses = 0;
    uint64_t dram_bytes = 0;
    uint64_t global_sectors = 0;
    /** Sector requests that merged with an in-flight MSHR fill
     *  (counted separately from l1_hits/l1_misses). */
    uint64_t mshr_merges = 0;
    /** Cycles transactions queued at each level (service start minus
     *  arrival, summed). */
    uint64_t noc_queue_cycles = 0;
    uint64_t l2_queue_cycles = 0;
    uint64_t dram_queue_cycles = 0;
    /** DRAM read<->write bus direction switches paid for. */
    uint64_t dram_turnarounds = 0;
    /** High-water MSHR occupancy across all SMs (not windowed:
     *  since() reports the current peak). */
    uint64_t mshr_peak = 0;

    /** Counters accumulated since snapshot @p base (per-kernel window
     *  attribution within a multi-launch engine run). */
    MemStats since(const MemStats& base) const
    {
        MemStats s;
        s.l1_hits = l1_hits - base.l1_hits;
        s.l1_misses = l1_misses - base.l1_misses;
        s.l2_hits = l2_hits - base.l2_hits;
        s.l2_misses = l2_misses - base.l2_misses;
        s.dram_bytes = dram_bytes - base.dram_bytes;
        s.global_sectors = global_sectors - base.global_sectors;
        s.mshr_merges = mshr_merges - base.mshr_merges;
        s.noc_queue_cycles = noc_queue_cycles - base.noc_queue_cycles;
        s.l2_queue_cycles = l2_queue_cycles - base.l2_queue_cycles;
        s.dram_queue_cycles = dram_queue_cycles - base.dram_queue_cycles;
        s.dram_turnarounds = dram_turnarounds - base.dram_turnarounds;
        s.mshr_peak = mshr_peak;  // A high-water mark does not window.
        return s;
    }

    /** Accumulate @p other into this (replayed-launch deltas folding
     *  into run totals).  mshr_peak takes the max: it is a high-water
     *  mark, not a flow counter. */
    void add(const MemStats& other)
    {
        l1_hits += other.l1_hits;
        l1_misses += other.l1_misses;
        l2_hits += other.l2_hits;
        l2_misses += other.l2_misses;
        dram_bytes += other.dram_bytes;
        global_sectors += other.global_sectors;
        mshr_merges += other.mshr_merges;
        noc_queue_cycles += other.noc_queue_cycles;
        l2_queue_cycles += other.l2_queue_cycles;
        dram_queue_cycles += other.dram_queue_cycles;
        dram_turnarounds += other.dram_turnarounds;
        mshr_peak = mshr_peak > other.mshr_peak ? mshr_peak
                                                : other.mshr_peak;
    }
};

/** Timing + functional chip memory. */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig& cfg);

    GlobalMemory& global() { return gmem_; }
    const GpuConfig& config() const { return cfg_; }

    /**
     * Timed access of one sector (sector-aligned byte address) from SM
     * @p sm at cycle @p now (the SM's port cycle for this sector).
     * Either accepts the transaction — booking it through L1/MSHR,
     * NoC, L2 bank and DRAM queues and returning its completion cycle
     * — or refuses it with the blocking level and the earliest retry
     * cycle.  A refused access has no side effects.
     */
    MemAccessResult access_sector(int sm, uint64_t addr, bool is_write,
                                  uint64_t now);

    /** Invalidate caches and reset queue state.  Called at engine-run
     *  boundaries, not per kernel: launches within one stream run see
     *  each other's warm caches (Gpu::launch() wraps a single-kernel
     *  run and so keeps the old cold-cache per-launch behaviour). */
    void reset_timing();

    MemStats stats() const;

    /** Serialize/restore the whole timing hierarchy — L1s, MSHRs, L2,
     *  NoC, bank queues, DRAM partitions and counters.  Global memory
     *  contents are snapshotted separately (copy-on-write blob). */
    void save_state(SnapshotWriter& w) const;
    void load_state(SnapshotReader& r);

    /** Install a fault-injection plan (borrowed; null = healthy).
     *  Accepted L1-miss transactions — the ones that traverse the
     *  L2/DRAM path — then suffer the plan's per-sector "ECC retry"
     *  extra latency.  Timing-only; refusals and functional data are
     *  untouched. */
    void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  private:
    int l2_bank(uint64_t addr) const
    {
        return static_cast<int>(
            (addr / static_cast<uint64_t>(cfg_.l1_line_bytes)) %
            static_cast<uint64_t>(cfg_.l2_banks));
    }

    GpuConfig cfg_;
    GlobalMemory gmem_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<MshrFile>> mshr_;
    std::unique_ptr<Cache> l2_;
    BoundedChannel noc_;
    std::vector<BoundedChannel> l2_banks_;
    std::unique_ptr<DramModel> dram_;
    uint64_t global_sectors_ = 0;
    /** ECC-retry fault injection (see set_fault_plan). */
    FaultPlan* fault_plan_ = nullptr;
};

}  // namespace tcsim
