#pragma once
/**
 * @file
 * Chip-level memory system: per-SM sectored L1s in front of a shared
 * L2 and the partitioned DRAM model, plus the functional global
 * memory backing store.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/gpu_config.h"
#include "sim/mem/cache.h"
#include "sim/mem/dram.h"
#include "sim/mem/global_memory.h"

namespace tcsim {

/** Aggregated memory-system counters for one kernel or run window. */
struct MemStats
{
    uint64_t l1_hits = 0;
    uint64_t l1_misses = 0;
    uint64_t l2_hits = 0;
    uint64_t l2_misses = 0;
    uint64_t dram_bytes = 0;
    uint64_t global_sectors = 0;

    /** Counters accumulated since snapshot @p base (per-kernel window
     *  attribution within a multi-launch engine run). */
    MemStats since(const MemStats& base) const
    {
        return MemStats{l1_hits - base.l1_hits,
                        l1_misses - base.l1_misses,
                        l2_hits - base.l2_hits,
                        l2_misses - base.l2_misses,
                        dram_bytes - base.dram_bytes,
                        global_sectors - base.global_sectors};
    }
};

/** Timing + functional chip memory. */
class MemorySystem
{
  public:
    explicit MemorySystem(const GpuConfig& cfg);

    GlobalMemory& global() { return gmem_; }
    const GpuConfig& config() const { return cfg_; }

    /**
     * Timed warp-wide global access of @p sectors (sector-aligned byte
     * addresses) from SM @p sm at cycle @p now.  Returns the cycle the
     * last sector's data is available (loads) or accepted (stores).
     */
    uint64_t access_global(int sm, const std::vector<uint64_t>& sectors,
                           bool is_write, uint64_t now);

    /** Invalidate caches and reset queue state.  Called at engine-run
     *  boundaries, not per kernel: launches within one stream run see
     *  each other's warm caches (Gpu::launch() wraps a single-kernel
     *  run and so keeps the old cold-cache per-launch behaviour). */
    void reset_timing();

    MemStats stats() const;

  private:
    GpuConfig cfg_;
    GlobalMemory gmem_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<DramModel> dram_;
    uint64_t global_sectors_ = 0;
};

}  // namespace tcsim
