#include "sim/mem/shared_memory.h"

#include <algorithm>
#include <array>

namespace tcsim {

int
shared_bank_conflict_degree(const Instruction& inst, int num_banks, int iter)
{
    TCSIM_CHECK(inst.addr != nullptr);
    TCSIM_CHECK(num_banks <= 32);
    const int word_bytes = 4;
    const int words = std::max(1, inst.width_bits / 32);

    int worst = 1;
    // Each 4-byte phase is a separate shared-memory cycle.
    for (int phase = 0; phase < words; ++phase) {
        // Distinct words requested per bank in this phase.
        std::array<std::vector<uint64_t>, 32> bank_words;
        for (int lane = 0; lane < kWarpSize; ++lane) {
            uint64_t a = inst.effective_addr(lane, iter);
            if (a == kNoAddr)
                continue;
            uint64_t word_addr = a / word_bytes + phase;
            int bank = static_cast<int>(word_addr % num_banks);
            auto& v = bank_words[static_cast<size_t>(bank)];
            if (std::find(v.begin(), v.end(), word_addr) == v.end())
                v.push_back(word_addr);
        }
        for (const auto& v : bank_words)
            worst = std::max(worst, static_cast<int>(v.size()));
    }
    return worst;
}

}  // namespace tcsim
