#pragma once
/**
 * @file
 * Per-SM L1 miss-status holding registers.  Every outstanding line
 * fill holds one entry; sector misses to a line that already has an
 * entry merge into it (one entry per line, per-sector fill times), and
 * a request to a sector whose fill is already in flight completes at
 * that fill's arrival without generating new downstream traffic.
 *
 * When every entry is held by an unfinished fill the file is full and
 * the access is refused — the refusal propagates through the SM's MIO
 * queue back to the issuing warp as a kMshrFull stall.  Entries are
 * pruned lazily against the query cycle (an entry frees once its last
 * sector fill has arrived), so the file has no autonomous clock.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcsim {

class SnapshotReader;
class SnapshotWriter;

/** The miss-status holding register file of one L1. */
class MshrFile
{
  public:
    MshrFile(int entries, int line_bytes, int sector_bytes);

    /** What one file scan found for an address (see query()). */
    struct Lookup
    {
        /** Fill-arrival cycle of the exact sector when a fill for it
         *  is already in flight (the access merges — no MSHR slot, no
         *  downstream traffic); 0 otherwise. */
        uint64_t pending_fill = 0;
        /** The line already holds an entry (merge-on-sector), or a
         *  free entry exists for a new fill. */
        bool can_track = false;
        /** Internal: the line's entry, for a following track(). */
        void* entry = nullptr;
    };

    /**
     * One prune + one scan answering everything the access path needs
     * about @p addr at @p now.  The result (and its entry pointer) is
     * valid until the next mutating call on this file.  Finding an
     * in-flight fill for the exact sector counts as a merge.
     */
    Lookup query(uint64_t addr, uint64_t now);

    /** Convenience wrappers over query() (tests, simple callers). */
    uint64_t merge(uint64_t addr, uint64_t now)
    {
        return query(addr, now).pending_fill;
    }
    bool can_track(uint64_t addr, uint64_t now)
    {
        return query(addr, now).can_track;
    }

    /** First cycle an entry frees (call only when can_track is
     *  false).  Fill times are fixed once scheduled, so tracking can
     *  never become possible earlier than this. */
    uint64_t retry_cycle(uint64_t now);

    /** Record a sector fill for @p addr arriving at @p fill_done,
     *  reusing @p found from the immediately preceding query() (whose
     *  can_track was true, with no mutation in between). */
    void track(uint64_t addr, const Lookup& found, uint64_t fill_done);

    /** Standalone track: queries, then records (tests). */
    void track(uint64_t addr, uint64_t now, uint64_t fill_done)
    {
        track(addr, query(addr, now), fill_done);
    }

    /** Entries currently held by unfinished fills. */
    size_t occupancy(uint64_t now);

    /** High-water mark of occupancy since the last reset. */
    size_t peak() const { return peak_; }

    /** Sector requests that merged with an in-flight fill. */
    uint64_t merges() const { return merges_; }

    int entries() const { return entries_; }

    void reset();

    /** Serialize/restore active entries (in scan order — find() walks
     *  the vector linearly, so order is behaviour) and counters. */
    void save_state(SnapshotWriter& w) const;
    void load_state(SnapshotReader& r);

  private:
    struct Entry
    {
        uint64_t line = 0;
        /** Fill-arrival cycle per sector; 0 = no fill in flight. */
        std::array<uint64_t, 8> sector_fill{};
        /** Latest fill of the entry; the entry frees when it passes. */
        uint64_t last_fill = 0;
    };

    void prune(uint64_t now);
    Entry* find(uint64_t line);

    int entries_;
    int line_bytes_;
    int sector_bytes_;
    std::vector<Entry> active_;
    size_t peak_ = 0;
    uint64_t merges_ = 0;
};

}  // namespace tcsim
