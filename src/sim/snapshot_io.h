#pragma once
/**
 * @file
 * Byte-archive primitives behind Gpu::snapshot() / Gpu::restore().
 *
 * SnapshotWriter appends little-endian scalars to a growable byte
 * buffer; SnapshotReader is a *const view* over such a buffer with its
 * own cursor, so one captured snapshot can be restored many times
 * (possibly concurrently from several fork workers) without mutating
 * shared state.  Every read is bounds-checked and every subsystem
 * section is framed by a tag byte, so a version skew or a
 * serialization-order bug surfaces as a SnapshotError instead of a
 * silently corrupted simulation.
 *
 * The format is deliberately dumb: no varints, no schema evolution
 * beyond the whole-snapshot version number in Snapshot.  Snapshots are
 * in-memory fork points for sweep batches, not an interchange format.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace tcsim {

/** Thrown on malformed, truncated, or incompatible snapshots. */
class SnapshotError : public std::runtime_error
{
public:
    explicit SnapshotError(const std::string& what)
        : std::runtime_error("snapshot: " + what)
    {
    }
};

/** Append-only little-endian encoder. */
class SnapshotWriter
{
public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }

    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string& s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void bytes(const void* p, size_t n)
    {
        const uint8_t* b = static_cast<const uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** Section framing: a tag byte that the reader must re-match.
     *  Cheap insurance that save_state and load_state walk the same
     *  field order. */
    void tag(uint8_t t) { u8(t); }

    std::vector<uint8_t> take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian decoder over a const byte buffer. */
class SnapshotReader
{
public:
    explicit SnapshotReader(const std::vector<uint8_t>& data)
        : data_(&data)
    {
    }

    uint8_t u8()
    {
        need(1);
        return (*data_)[pos_++];
    }

    bool b() { return u8() != 0; }

    uint32_t u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>((*data_)[pos_++]) << (8 * i);
        return v;
    }

    uint64_t u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>((*data_)[pos_++]) << (8 * i);
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    double f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str()
    {
        uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_->data()) + pos_,
                      static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return s;
    }

    void bytes(void* p, size_t n)
    {
        need(n);
        std::memcpy(p, data_->data() + pos_, n);
        pos_ += n;
    }

    /** Match a section tag written by SnapshotWriter::tag(). */
    void tag(uint8_t want)
    {
        uint8_t got = u8();
        if (got != want)
            throw SnapshotError("section tag mismatch (want " +
                                std::to_string(want) + ", got " +
                                std::to_string(got) + ")");
    }

    bool done() const { return pos_ == data_->size(); }

private:
    void need(uint64_t n) const
    {
        if (n > data_->size() - pos_)
            throw SnapshotError("truncated archive (need " +
                                std::to_string(n) + " bytes at offset " +
                                std::to_string(pos_) + ")");
    }

    const std::vector<uint8_t>* data_;
    size_t pos_ = 0;
};

/** Section tags, one per subsystem, in serialization order. */
enum : uint8_t {
    kTagMemSystem = 0x4d,    // 'M'
    kTagEvents = 0x45,       // 'E'
    kTagStreams = 0x53,      // 'S'
    kTagEngine = 0x47,       // 'G'
    kTagSm = 0x73,           // 's'
    kTagSubCore = 0x63,      // 'c'
    kTagWarp = 0x77,         // 'w'
    kTagShadow = 0x68,       // 'h'
    kTagReplay = 0x72,       // 'r'
    kTagEnd = 0x5a,          // 'Z'
};

}  // namespace tcsim
