#include "sim/graph/task_graph.h"

#include <algorithm>
#include <set>
#include <tuple>

namespace tcsim {

namespace {

constexpr uint64_t kArenaAlign = 256;

uint64_t
align_up(uint64_t v)
{
    return (v + kArenaAlign - 1) & ~(kArenaAlign - 1);
}

/** Dense bitset over task indices, one word row per task. */
class ReachSet
{
  public:
    ReachSet(size_t tasks)
        : words_((tasks + 63) / 64), bits_(tasks * words_, 0)
    {
    }

    void add(size_t row, size_t bit)
    {
        bits_[row * words_ + bit / 64] |= uint64_t{1} << (bit % 64);
    }

    bool has(size_t row, size_t bit) const
    {
        return bits_[row * words_ + bit / 64] >> (bit % 64) & 1;
    }

    /** row |= other row. */
    void merge(size_t row, size_t from)
    {
        for (size_t w = 0; w < words_; ++w)
            bits_[row * words_ + w] |= bits_[from * words_ + w];
    }

  private:
    size_t words_;
    std::vector<uint64_t> bits_;
};

}  // namespace

const char*
hazard_kind_name(HazardKind kind)
{
    switch (kind) {
      case HazardKind::kRaw: return "raw";
      case HazardKind::kWar: return "war";
      case HazardKind::kWaw: return "waw";
    }
    return "?";
}

int
TaskGraph::check_tensor(int t, const char* what) const
{
    if (t < 0 || static_cast<size_t>(t) >= tensors_.size())
        throw TaskGraphError(std::string(what) + ": tensor index " +
                                 std::to_string(t) + " out of range",
                             -1, t);
    return t;
}

int
TaskGraph::check_task(int t, const char* what) const
{
    if (t < 0 || static_cast<size_t>(t) >= tasks_.size())
        throw TaskGraphError(std::string(what) + ": task index " +
                                 std::to_string(t) + " out of range",
                             t, -1);
    return t;
}

int
TaskGraph::declare_tensor(std::string name, uint64_t bytes)
{
    if (bytes == 0)
        throw TaskGraphError("tensor \"" + name + "\": bytes must be > 0",
                             -1, static_cast<int>(tensors_.size()));
    Tensor t;
    t.name = std::move(name);
    t.address = arena_next_;
    t.bytes = bytes;
    arena_next_ = align_up(arena_next_ + bytes);
    tensors_.push_back(std::move(t));
    return static_cast<int>(tensors_.size()) - 1;
}

int
TaskGraph::declare_view(std::string name, int base, uint64_t offset,
                        uint64_t bytes)
{
    check_tensor(base, "declare_view");
    const Tensor& b = tensors_[static_cast<size_t>(base)];
    if (bytes == 0)
        throw TaskGraphError("view \"" + name + "\": bytes must be > 0",
                             -1, static_cast<int>(tensors_.size()));
    if (offset + bytes > b.bytes)
        throw TaskGraphError(
            "view \"" + name + "\" [" + std::to_string(offset) + ", " +
                std::to_string(offset + bytes) + ") does not fit in base \"" +
                b.name + "\" (" + std::to_string(b.bytes) + " bytes)",
            -1, static_cast<int>(tensors_.size()));
    Tensor t;
    t.name = std::move(name);
    t.address = b.address + offset;
    t.bytes = bytes;
    t.base = base;
    tensors_.push_back(std::move(t));
    return static_cast<int>(tensors_.size()) - 1;
}

int
TaskGraph::place_tensor(std::string name, uint64_t address, uint64_t bytes)
{
    if (bytes == 0)
        throw TaskGraphError("tensor \"" + name + "\": bytes must be > 0",
                             -1, static_cast<int>(tensors_.size()));
    Tensor t;
    t.name = std::move(name);
    t.address = address;
    t.bytes = bytes;
    t.placed = true;
    // Keep bump placement clear of explicit placements.
    arena_next_ = std::max(arena_next_, align_up(address + bytes));
    tensors_.push_back(std::move(t));
    return static_cast<int>(tensors_.size()) - 1;
}

int
TaskGraph::find_tensor(const std::string& name) const
{
    for (size_t i = 0; i < tensors_.size(); ++i)
        if (tensors_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

int
TaskGraph::add_task(std::string name)
{
    Task t;
    t.name = std::move(name);
    tasks_.push_back(std::move(t));
    return static_cast<int>(tasks_.size()) - 1;
}

void
TaskGraph::task_reads(int task, int tensor)
{
    check_task(task, "task_reads");
    check_tensor(tensor, "task_reads");
    std::vector<int>& r = tasks_[static_cast<size_t>(task)].reads;
    if (std::find(r.begin(), r.end(), tensor) == r.end())
        r.push_back(tensor);
}

void
TaskGraph::task_writes(int task, int tensor)
{
    check_task(task, "task_writes");
    check_tensor(tensor, "task_writes");
    std::vector<int>& w = tasks_[static_cast<size_t>(task)].writes;
    if (std::find(w.begin(), w.end(), tensor) == w.end())
        w.push_back(tensor);
}

void
TaskGraph::declare_edge(int from, int to)
{
    check_task(from, "declare_edge");
    check_task(to, "declare_edge");
    declared_edges_.push_back(FalseEdge{from, to});
}

bool
TaskGraph::view_related(int a, int b) const
{
    // Root of the view chain (views of views allowed).
    auto root = [&](int t) {
        while (tensors_[static_cast<size_t>(t)].base >= 0)
            t = tensors_[static_cast<size_t>(t)].base;
        return t;
    };
    return root(a) == root(b);
}

TaskGraph::Compiled
TaskGraph::compile() const
{
    const size_t n = tasks_.size();
    Compiled out;
    out.stream_of.assign(n, 0);
    out.record_event.assign(n, "");
    out.wait_events.assign(n, {});

    auto overlap = [&](int a, int b) -> uint64_t {
        const Tensor& ta = tensors_[static_cast<size_t>(a)];
        const Tensor& tb = tensors_[static_cast<size_t>(b)];
        uint64_t lo = std::max(ta.address, tb.address);
        uint64_t hi =
            std::min(ta.address + ta.bytes, tb.address + tb.bytes);
        return hi > lo ? hi - lo : 0;
    };

    // Undeclared aliasing: overlapping ranges must share a view chain.
    // Bump-placed tensors never overlap each other, so only explicit
    // placements can trip this.
    for (size_t a = 0; a < tensors_.size(); ++a) {
        for (size_t b = a + 1; b < tensors_.size(); ++b) {
            if (overlap(static_cast<int>(a), static_cast<int>(b)) &&
                !view_related(static_cast<int>(a), static_cast<int>(b)))
                throw TaskGraphError(
                    "tensors \"" + tensors_[a].name + "\" and \"" +
                        tensors_[b].name +
                        "\" overlap without a declared view relationship "
                        "(undeclared aliasing; use alias_of to declare it)",
                    -1, static_cast<int>(b));
        }
    }

    for (size_t t = 0; t < n; ++t)
        if (tasks_[t].reads.empty() && tasks_[t].writes.empty())
            throw TaskGraphError("task \"" + tasks_[t].name +
                                     "\" declares no reads or writes",
                                 static_cast<int>(t), -1);

    // Multi-writer ambiguity: i and j blind-write the same bytes with
    // no intervening reader (k == j covers read-modify-write).
    auto reads_overlapping = [&](size_t k, int wa, int wb) {
        const Tensor& a = tensors_[static_cast<size_t>(wa)];
        const Tensor& b = tensors_[static_cast<size_t>(wb)];
        uint64_t lo = std::max(a.address, b.address);
        uint64_t hi =
            std::min(a.address + a.bytes, b.address + b.bytes);
        for (int r : tasks_[k].reads) {
            const Tensor& tr = tensors_[static_cast<size_t>(r)];
            if (std::max(tr.address, lo) <
                std::min(tr.address + tr.bytes, hi))
                return true;
        }
        return false;
    };
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            for (int wi : tasks_[i].writes) {
                for (int wj : tasks_[j].writes) {
                    if (!overlap(wi, wj))
                        continue;
                    bool consumed = false;
                    for (size_t k = i + 1; k <= j && !consumed; ++k)
                        consumed = reads_overlapping(k, wi, wj);
                    if (!consumed)
                        throw TaskGraphError(
                            "tasks \"" + tasks_[i].name + "\" and \"" +
                                tasks_[j].name +
                                "\" both write tensor bytes (\"" +
                                tensors_[static_cast<size_t>(wi)].name +
                                "\" overlaps \"" +
                                tensors_[static_cast<size_t>(wj)].name +
                                "\") that nothing in between reads — the "
                                "final contents would depend on scheduling "
                                "(multi-writer ambiguity)",
                            static_cast<int>(j), wj);
                }
            }
        }
    }

    // Pairwise hazard edges.  Declaration order is program order, so
    // every edge points forward and the order is already topological.
    std::set<std::tuple<int, int, HazardKind>> seen;
    auto add_edge = [&](size_t i, size_t j, HazardKind kind, int tensor) {
        if (!seen.insert({static_cast<int>(i), static_cast<int>(j), kind})
                 .second)
            return;
        Edge e;
        e.from = static_cast<int>(i);
        e.to = static_cast<int>(j);
        e.kind = kind;
        e.tensor = tensor;
        out.edges.push_back(e);
    };
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            for (int wi : tasks_[i].writes)
                for (int rj : tasks_[j].reads)
                    if (overlap(wi, rj))
                        add_edge(i, j, HazardKind::kRaw, wi);
            for (int ri : tasks_[i].reads)
                for (int wj : tasks_[j].writes)
                    if (overlap(ri, wj))
                        add_edge(i, j, HazardKind::kWar, ri);
            for (int wi : tasks_[i].writes)
                for (int wj : tasks_[j].writes)
                    if (overlap(wi, wj))
                        add_edge(i, j, HazardKind::kWaw, wi);
        }
    }

    // Hazard-DAG ancestor sets (anc[j] = every i with a path i -> j).
    ReachSet anc(n);
    for (const Edge& e : out.edges) {
        anc.merge(static_cast<size_t>(e.to), static_cast<size_t>(e.from));
        anc.add(static_cast<size_t>(e.to), static_cast<size_t>(e.from));
    }

    // Greedy chain decomposition: append to the first stream whose
    // latest task is an ancestor (its FIFO order is then implied by
    // the DAG); otherwise open a new stream.  Scanning streams in
    // creation order keeps the assignment deterministic.
    std::vector<int> stream_last;  ///< Latest task per stream.
    for (size_t t = 0; t < n; ++t) {
        int assigned = -1;
        for (size_t s = 0; s < stream_last.size(); ++s) {
            if (anc.has(t, static_cast<size_t>(stream_last[s]))) {
                assigned = static_cast<int>(s);
                break;
            }
        }
        if (assigned < 0) {
            assigned = static_cast<int>(stream_last.size());
            stream_last.push_back(static_cast<int>(t));
        } else {
            stream_last[static_cast<size_t>(assigned)] =
                static_cast<int>(t);
        }
        out.stream_of[t] = assigned + 1;
    }
    out.num_streams = static_cast<int>(stream_last.size());

    // Order relation R = hazard edges + same-stream succession; an
    // edge implied through R needs no event of its own.  Direct R
    // predecessors of j: its hazard parents plus the previous task on
    // its stream.
    ReachSet anc_r(n);
    std::vector<std::vector<int>> parents(n);
    {
        std::vector<int> prev_on_stream(
            static_cast<size_t>(out.num_streams), -1);
        std::vector<std::vector<int>> hazard_parents(n);
        for (const Edge& e : out.edges)
            hazard_parents[static_cast<size_t>(e.to)].push_back(e.from);
        for (size_t t = 0; t < n; ++t) {
            parents[t] = hazard_parents[t];
            int& prev = prev_on_stream[static_cast<size_t>(
                out.stream_of[t] - 1)];
            if (prev >= 0)
                parents[t].push_back(prev);
            prev = static_cast<int>(t);
            for (int p : parents[t]) {
                anc_r.merge(t, static_cast<size_t>(p));
                anc_r.add(t, static_cast<size_t>(p));
            }
        }
    }

    for (Edge& e : out.edges) {
        size_t i = static_cast<size_t>(e.from);
        size_t j = static_cast<size_t>(e.to);
        e.cross_stream = out.stream_of[i] != out.stream_of[j];
        if (!e.cross_stream)
            continue;  // Stream FIFO order covers it.
        bool implied = false;
        for (int p : parents[j]) {
            if (p != e.from && anc_r.has(static_cast<size_t>(p), i)) {
                implied = true;
                break;
            }
        }
        if (implied)
            continue;
        e.needs_event = true;
        if (out.record_event[i].empty())
            out.record_event[i] = tasks_[i].name + "_done";
        out.wait_events[j].push_back(out.record_event[i]);
    }
    // Pairwise dedup can still route two edges through one producer
    // event (different tensors, same task pair is deduped by kind —
    // but RAW + WAW between one pair both need the same event).
    for (std::vector<std::string>& waits : out.wait_events) {
        std::vector<std::string> unique;
        for (std::string& w : waits)
            if (std::find(unique.begin(), unique.end(), w) == unique.end())
                unique.push_back(std::move(w));
        waits = std::move(unique);
    }

    // Audit declared edges: report the ones no hazard path backs.
    for (const FalseEdge& d : declared_edges_) {
        bool backed =
            d.from != d.to &&
            anc.has(static_cast<size_t>(d.to), static_cast<size_t>(d.from));
        if (!backed)
            out.false_serialization.push_back(d);
    }
    return out;
}

}  // namespace tcsim
