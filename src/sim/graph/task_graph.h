#pragma once
/**
 * @file
 * Declarative task graph: tasks (kernel launches) declare the tensors
 * they read and write, and compile() derives everything the hand
 * written event plumbing used to spell out — RAW/WAR/WAW hazard
 * edges from byte-range overlap, a stream assignment that maximizes
 * overlap, and the exact record/wait operation sequence the execution
 * engine already runs.  The engine is untouched: a compiled graph is
 * just streams + events, so cycle semantics are bit-identical to the
 * same DAG written by hand (render-graph style, after Adria's
 * RenderGraph: passes declare resource sets, the graph derives
 * barriers).
 *
 * Tensors live in a *virtual arena* — hazard metadata, not backing
 * storage.  Plain tensors are bump-placed (256-byte aligned, never
 * overlapping); views alias a slice of a base tensor (declared
 * overlap); absolutely placed tensors may not overlap anything they
 * are not a declared view of.  Hazards are computed on byte-range
 * overlap, so two tasks writing disjoint halves of one tensor run in
 * parallel while a reader of the whole tensor orders after both.
 *
 * Rejected at compile time (TaskGraphError, with the task/tensor
 * indices so the scenario layer can attach source line:col):
 *  - multi-writer ambiguity: two tasks write overlapping bytes and
 *    nothing in between reads them (a blind double write — the final
 *    contents depend on scheduling);
 *  - undeclared aliasing: absolutely placed tensors overlap without a
 *    view relationship;
 *  - tasks that touch no tensors, views outside their base, unknown
 *    tensor indices.
 *
 * Stream assignment is greedy chain decomposition over the hazard DAG
 * (interval-coloring flavour): tasks are scanned in declaration order
 * and appended to the first stream whose most recent task is an
 * ancestor — stream FIFO order then adds no serialization the DAG did
 * not already imply — else a new stream opens.  Cross-stream edges not
 * implied transitively get one event each, recorded after the
 * producer; same-stream edges ride stream order for free.  compile()
 * never emits a same-stream wait.
 *
 * Declared edges (the legacy record/wait plumbing, kept for audit)
 * are checked against the hazard DAG: an edge with no hazard path
 * from producer to consumer is *false serialization* — ordering the
 * data flow does not require — and is reported, not silently obeyed.
 */

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tcsim {

/** Why one task must order after another. */
enum class HazardKind : uint8_t {
    kRaw,  ///< Read-after-write: consumer reads the producer's bytes.
    kWar,  ///< Write-after-read: writer overwrites bytes a reader saw.
    kWaw,  ///< Write-after-write: ordered overwrite (reader between).
};

const char* hazard_kind_name(HazardKind kind);

/** Compile-time rejection.  @p task / @p tensor are indices into the
 *  builder's declaration order (-1 when not applicable), so callers
 *  that know source positions can re-throw with line:col attached. */
class TaskGraphError : public std::runtime_error
{
  public:
    explicit TaskGraphError(const std::string& what, int task = -1,
                            int tensor = -1)
        : std::runtime_error(what), task_(task), tensor_(tensor)
    {
    }

    /** Declaration index of the offending task (-1 = none). */
    int task() const { return task_; }
    /** Declaration index of the offending tensor (-1 = none). */
    int tensor() const { return tensor_; }

  private:
    int task_;
    int tensor_;
};

/** Builder + compiler for a declarative task graph. */
class TaskGraph
{
  public:
    /** One derived hazard edge (task declaration indices). */
    struct Edge
    {
        int from = 0;
        int to = 0;
        HazardKind kind = HazardKind::kRaw;
        int tensor = 0;     ///< The overlapping tensor (from's side).
        bool cross_stream = false;
        bool needs_event = false;  ///< Not implied by order/transitivity.
    };

    /** A declared (audit-only) edge the hazard analysis proved
     *  unnecessary: no data flows from @p from to @p to. */
    struct FalseEdge
    {
        int from = 0;
        int to = 0;
    };

    /** compile() output: everything needed to enqueue the graph. */
    struct Compiled
    {
        /** Per task: 1-based stream index (dense, declaration order of
         *  first use). */
        std::vector<int> stream_of;
        int num_streams = 0;
        /** Every derived hazard edge (transitive ones included, for
         *  the DAG dump; needs_event marks the emitted subset). */
        std::vector<Edge> edges;
        /** Per task: event name recorded after it ("" = none) and the
         *  events its launch waits on (producers on other streams). */
        std::vector<std::string> record_event;
        std::vector<std::vector<std::string>> wait_events;
        /** Declared edges the hazard DAG does not require. */
        std::vector<FalseEdge> false_serialization;
    };

    // ---- Tensor arena ---------------------------------------------------

    /** Declare a tensor of @p bytes, bump-placed in the virtual arena
     *  (256-byte aligned; never overlaps other bump-placed tensors).
     *  Returns its tensor index. */
    int declare_tensor(std::string name, uint64_t bytes);

    /** Declare a view of @p bytes into @p base at relative byte
     *  @p offset.  The view must lie entirely inside the base; the
     *  overlap with the base (and sibling views) is *declared*, so it
     *  feeds hazard analysis instead of being rejected. */
    int declare_view(std::string name, int base, uint64_t offset,
                     uint64_t bytes);

    /** Declare a tensor at absolute arena address @p address.  Any
     *  overlap with a tensor it is not view-related to is undeclared
     *  aliasing and rejected by compile(). */
    int place_tensor(std::string name, uint64_t address, uint64_t bytes);

    /** Tensor index by name, -1 when absent. */
    int find_tensor(const std::string& name) const;

    size_t num_tensors() const { return tensors_.size(); }
    const std::string& tensor_name(int t) const
    {
        return tensors_[static_cast<size_t>(t)].name;
    }
    uint64_t tensor_address(int t) const
    {
        return tensors_[static_cast<size_t>(t)].address;
    }
    uint64_t tensor_bytes(int t) const
    {
        return tensors_[static_cast<size_t>(t)].bytes;
    }

    // ---- Tasks ----------------------------------------------------------

    /** Append a task (declaration order is program order for hazard
     *  purposes).  Returns its task index. */
    int add_task(std::string name);

    void task_reads(int task, int tensor);
    void task_writes(int task, int tensor);

    /** Declare an explicit ordering edge (legacy record/wait kept for
     *  audit).  compile() honours nothing here — it only reports the
     *  edge as false serialization when no hazard path backs it. */
    void declare_edge(int from, int to);

    size_t num_tasks() const { return tasks_.size(); }
    const std::string& task_name(int t) const
    {
        return tasks_[static_cast<size_t>(t)].name;
    }
    const std::vector<int>& reads_of(int t) const
    {
        return tasks_[static_cast<size_t>(t)].reads;
    }
    const std::vector<int>& writes_of(int t) const
    {
        return tasks_[static_cast<size_t>(t)].writes;
    }

    /** Derive hazards, reject ambiguity, color streams, place events.
     *  Deterministic: same declarations, same output. */
    Compiled compile() const;

  private:
    struct Tensor
    {
        std::string name;
        uint64_t address = 0;  ///< Virtual arena byte address.
        uint64_t bytes = 0;
        int base = -1;         ///< View: index of the base tensor.
        bool placed = false;   ///< Absolutely placed (alias audit).
    };

    struct Task
    {
        std::string name;
        std::vector<int> reads;
        std::vector<int> writes;
    };

    int check_tensor(int t, const char* what) const;
    int check_task(int t, const char* what) const;
    /** @p a and @p b overlap through a declared view chain. */
    bool view_related(int a, int b) const;

    std::vector<Tensor> tensors_;
    std::vector<Task> tasks_;
    std::vector<FalseEdge> declared_edges_;
    uint64_t arena_next_ = 0;  ///< Bump pointer for declare_tensor.
};

}  // namespace tcsim
