#pragma once
/**
 * @file
 * Mini-CUTLASS: a configurable tiled GEMM template in the structure
 * of NVIDIA's CUTLASS library (threadblock tile -> warp tile -> WMMA
 * instruction tile), with shared-memory staging and software
 * pipelining (double-buffered prefetch).  This is the kernel family
 * the paper's Fig 14b/14c IPC-correlation experiments run, and the
 * configuration space our CUTLASS-style unit-test sweep covers.
 */

#include <string>

#include "arch/gpu_config.h"
#include "kernels/gemm_problem.h"
#include "sim/kernel_desc.h"
#include "tensor/types.h"

namespace tcsim {
namespace cutlass {

/** One instantiation of the GEMM template. */
struct GemmTemplate
{
    Arch arch = Arch::kVolta;
    TcMode mode = TcMode::kMixed;
    Layout a_layout = Layout::kRowMajor;
    Layout b_layout = Layout::kRowMajor;
    Layout cd_layout = Layout::kRowMajor;

    /** Threadblock tile. */
    int block_m = 128, block_n = 128, block_k = 32;
    /** Warp tile (must divide the threadblock tile). */
    int warp_m = 32, warp_n = 64;
    /** Software pipelining: prefetch the next K block into the
     *  alternate shared buffer while computing the current one. */
    bool double_buffer = true;

    /** Warps per CTA implied by the tiling. */
    int warps_per_cta() const
    {
        return (block_m / warp_m) * (block_n / warp_n);
    }

    /** Template "mangled name" for reporting. */
    std::string name() const;

    /** Validate divisibility and resource constraints; panics with a
     *  diagnostic on an unsupported configuration. */
    void validate() const;
};

/** Instantiate the template for a problem size. */
KernelDesc make_gemm(const GemmTemplate& t, int m, int n, int k,
                     const GemmBuffers& buf, bool functional = true);

/**
 * The default configuration sweep used by the test suite and the
 * Fig 14b correlation experiment (a spread of threadblock/warp tiles
 * and pipelining choices, in the spirit of CUTLASS's unit tests).
 */
std::vector<GemmTemplate> default_sweep(TcMode mode);

}  // namespace cutlass
}  // namespace tcsim
