#include "cutlass/gemm.h"

#include "common/logging.h"
#include "kernels/kernel_builder.h"
#include "kernels/staging.h"
#include "sass/hmma_decomposer.h"
#include "tensor/transactions.h"

namespace tcsim {
namespace cutlass {

std::string
GemmTemplate::name() const
{
    std::string s = "cutlass_gemm_";
    s += tc_mode_name(mode);
    s += "_" + std::to_string(block_m) + "x" + std::to_string(block_n) + "x" +
         std::to_string(block_k);
    s += "_w" + std::to_string(warp_m) + "x" + std::to_string(warp_n);
    s += std::string("_") + layout_name(a_layout) + layout_name(b_layout);
    s += double_buffer ? "_pipe2" : "_pipe1";
    return s;
}

void
GemmTemplate::validate() const
{
    TCSIM_CHECK(mode == TcMode::kMixed || mode == TcMode::kFp16);
    TCSIM_CHECK(block_m % warp_m == 0 && block_n % warp_n == 0);
    TCSIM_CHECK(warp_m % 16 == 0 && warp_n % 16 == 0);
    TCSIM_CHECK(block_k % 16 == 0);
    TCSIM_CHECK(warps_per_cta() >= 1 && warps_per_cta() <= 16);
    // Register budget: accumulators + one A/B fragment row/col set.
    WmmaFragRegCounts fr = wmma_fragment_regs(arch, mode, kShape16x16x16);
    int tiles = (warp_m / 16) * (warp_n / 16);
    int regs = 8 + tiles * fr.c + (warp_m / 16) * fr.a + (warp_n / 16) * fr.b;
    TCSIM_CHECK(regs <= 246);
}

KernelDesc
make_gemm(const GemmTemplate& t, int m, int n, int k, const GemmBuffers& buf,
          bool functional)
{
    t.validate();
    TCSIM_CHECK(m % t.block_m == 0);
    TCSIM_CHECK(n % t.block_n == 0);
    TCSIM_CHECK(k % t.block_k == 0);

    const int a_ld = t.a_layout == Layout::kRowMajor ? k : m;
    const int b_ld = t.b_layout == Layout::kRowMajor ? n : k;
    const int cd_ld = t.cd_layout == Layout::kRowMajor ? n : m;
    const int e = element_bytes(WmmaOperand::kA, t.mode);
    const int cd_e = element_bytes(WmmaOperand::kC, t.mode);
    constexpr int kPad = 8;

    // Shared layout: [A stage0][A stage1][B stage0][B stage1] (single
    // buffered: one stage each).
    const uint32_t a_stage =
        staged_block_bytes(t.a_layout, t.block_m, t.block_k, e, kPad);
    const uint32_t b_stage =
        staged_block_bytes(t.b_layout, t.block_k, t.block_n, e, kPad);
    const int stages = t.double_buffer ? 2 : 1;
    const uint32_t a_base = 0;
    const uint32_t b_base = a_stage * static_cast<uint32_t>(stages);
    const uint32_t smem = (a_stage + b_stage) *
                          static_cast<uint32_t>(stages);
    const int a_sld = (t.a_layout == Layout::kRowMajor ? t.block_k
                                                       : t.block_m) +
                      kPad;
    const int b_sld = (t.b_layout == Layout::kRowMajor ? t.block_n
                                                       : t.block_k) +
                      kPad;

    // Register plan.
    WmmaFragRegCounts fr = wmma_fragment_regs(t.arch, t.mode, kShape16x16x16);
    const int wtiles_m = t.warp_m / 16;
    const int wtiles_n = t.warp_n / 16;
    const uint8_t acc0 = 4;
    const uint8_t a_frag0 =
        static_cast<uint8_t>(acc0 + wtiles_m * wtiles_n * fr.c);
    const uint8_t b_frag0 = static_cast<uint8_t>(a_frag0 + wtiles_m * fr.a);
    const uint8_t stage_a_reg =
        static_cast<uint8_t>(b_frag0 + wtiles_n * fr.b);
    // Up to four 4-register staging windows per operand.
    const uint8_t stage_b_reg = static_cast<uint8_t>(stage_a_reg + 16);
    const int regs = stage_b_reg + 16 + 2;

    const int grid_m = m / t.block_m;
    const int grid_n = n / t.block_n;
    const int warps = t.warps_per_cta();
    const int wgrid_n = t.block_n / t.warp_n;

    const int kblocks = k / t.block_k;
    const int subk = t.block_k / 16;

    KernelDesc kd;
    kd.name = t.name();
    kd.grid_ctas = grid_m * grid_n;
    kd.warps_per_cta = warps;
    kd.shared_mem_bytes = smem;
    kd.regs_per_thread = regs;
    kd.functional = functional;
    kd.trace = [=](int cta, int w) -> WarpProgram {
        WarpBuilder bld(t.arch);
        const int bm = cta / grid_n;
        const int bn = cta % grid_n;
        const int wm0 = (w / wgrid_n) * t.warp_m;  // block-local rows
        const int wn0 = (w % wgrid_n) * t.warp_n;  // block-local cols

        auto acc_reg = [&](int tm, int tn) {
            return static_cast<uint8_t>(acc0 + (tm * wtiles_n + tn) * fr.c);
        };

        // Epilogue source: load C into the accumulators.
        for (int tm = 0; tm < wtiles_m; ++tm) {
            for (int tn = 0; tn < wtiles_n; ++tn) {
                bld.wmma_load(
                    WmmaOperand::kC, t.mode, kShape16x16x16, t.cd_layout,
                    acc_reg(tm, tn),
                    device_elem_addr(buf.c, t.cd_layout, cd_ld,
                                     bm * t.block_m + wm0 + 16 * tm,
                                     bn * t.block_n + wn0 + 16 * tn, cd_e),
                    cd_ld, false);
            }
        }

        // Stage parameters for the A and B block copies.
        StageBlockParams pa;
        pa.layout = t.a_layout;
        pa.ld_global = a_ld;
        pa.rows = t.block_m;
        pa.cols = t.block_k;
        pa.warp = w;
        pa.num_warps = warps;
        pa.ebytes = e;
        pa.reg = stage_a_reg;
        pa.pad = kPad;
        pa.k_stride =
            (t.a_layout == Layout::kRowMajor
                 ? static_cast<int64_t>(t.block_k)
                 : static_cast<int64_t>(t.block_k) * a_ld) *
            e;
        StageBlockParams pb;
        pb.layout = t.b_layout;
        pb.ld_global = b_ld;
        pb.rows = t.block_k;
        pb.cols = t.block_n;
        pb.warp = w;
        pb.num_warps = warps;
        pb.ebytes = e;
        pb.reg = stage_b_reg;
        pb.pad = kPad;
        pb.k_stride =
            (t.b_layout == Layout::kRowMajor
                 ? static_cast<int64_t>(t.block_k) * b_ld
                 : static_cast<int64_t>(t.block_k)) *
            e;

        const uint64_t a_block0 =
            device_elem_addr(buf.a, t.a_layout, a_ld, bm * t.block_m, 0, e);
        const uint64_t b_block0 =
            device_elem_addr(buf.b, t.b_layout, b_ld, 0, bn * t.block_n, e);

        // Compute phase for one staged buffer.
        auto compute = [&](uint32_t a_buf, uint32_t b_buf, int64_t a_pp,
                           int64_t b_pp) {
            for (int kk = 0; kk < subk; ++kk) {
                for (int tm = 0; tm < wtiles_m; ++tm) {
                    bld.wmma_load(
                        WmmaOperand::kA, t.mode, kShape16x16x16, t.a_layout,
                        static_cast<uint8_t>(a_frag0 + tm * fr.a),
                        device_elem_addr(a_buf, t.a_layout, a_sld,
                                         wm0 + 16 * tm, 16 * kk, e),
                        a_sld, true, 0, a_pp);
                }
                for (int tn = 0; tn < wtiles_n; ++tn) {
                    bld.wmma_load(
                        WmmaOperand::kB, t.mode, kShape16x16x16, t.b_layout,
                        static_cast<uint8_t>(b_frag0 + tn * fr.b),
                        device_elem_addr(b_buf, t.b_layout, b_sld, 16 * kk,
                                         wn0 + 16 * tn, e),
                        b_sld, true, 0, b_pp);
                }
                for (int tm = 0; tm < wtiles_m; ++tm) {
                    for (int tn = 0; tn < wtiles_n; ++tn) {
                        bld.wmma_mma(
                            t.mode, kShape16x16x16,
                            WmmaRegs{.a = static_cast<uint8_t>(a_frag0 +
                                                               tm * fr.a),
                                     .b = static_cast<uint8_t>(b_frag0 +
                                                               tn * fr.b),
                                     .c = acc_reg(tm, tn),
                                     .d = acc_reg(tm, tn)},
                            t.a_layout, t.b_layout);
                    }
                }
            }
        };

        if (t.double_buffer && kblocks > 1) {
            // Software-pipelined: prologue stages block 0 into buffer
            // 0; iteration i stages block i+1 into buffer (i+1)%2 and
            // computes block i from buffer i%2.
            pa.block_base = a_block0;
            pb.block_base = b_block0;
            pa.shared_base = a_base;
            pb.shared_base = b_base;
            pa.k_stride = 0;  // prologue: fixed addresses
            pb.k_stride = 0;
            stage_block(&bld, pa);
            stage_block(&bld, pb);
            bld.bar();

            // Loop iterations 0 .. kblocks-2.
            pa.k_stride =
                (t.a_layout == Layout::kRowMajor
                     ? static_cast<int64_t>(t.block_k)
                     : static_cast<int64_t>(t.block_k) * a_ld) *
                e;
            pb.k_stride =
                (t.b_layout == Layout::kRowMajor
                     ? static_cast<int64_t>(t.block_k) * b_ld
                     : static_cast<int64_t>(t.block_k)) *
                e;
            // Stage target: buffer 1 on even iters, buffer 0 on odd.
            pa.block_base = a_block0 + static_cast<uint64_t>(pa.k_stride);
            pb.block_base = b_block0 + static_cast<uint64_t>(pb.k_stride);
            pa.shared_base = a_base + a_stage;
            pb.shared_base = b_base + b_stage;
            pa.ping_pong = -static_cast<int64_t>(a_stage);
            pb.ping_pong = -static_cast<int64_t>(b_stage);

            bld.loop_begin(kblocks - 1);
            // Prefetch block i+1 into registers, compute block i from
            // shared, then commit the prefetch to the alternate buffer
            // (the math hides the global-load latency, as CUTLASS's
            // software pipelining does).
            stage_block_ldg(&bld, pa);
            stage_block_ldg(&bld, pb);
            // Compute source: buffer 0 on even iters, buffer 1 on odd.
            compute(a_base, b_base, static_cast<int64_t>(a_stage),
                    static_cast<int64_t>(b_stage));
            stage_block_sts(&bld, pa);
            stage_block_sts(&bld, pb);
            bld.bar();
            bld.loop_end();

            // Epilogue: compute the final staged block, buffer
            // (kblocks-1) % 2.  LDS ping-pong no longer applies (we
            // are outside the loop), so address the buffer directly.
            uint32_t last = static_cast<uint32_t>((kblocks - 1) % 2);
            compute(a_base + last * a_stage, b_base + last * b_stage, 0, 0);
        } else {
            // Single buffered.
            pa.block_base = a_block0;
            pb.block_base = b_block0;
            pa.shared_base = a_base;
            pb.shared_base = b_base;
            bld.loop_begin(kblocks);
            stage_block(&bld, pa);
            stage_block(&bld, pb);
            bld.bar();
            compute(a_base, b_base, 0, 0);
            bld.bar();
            bld.loop_end();
        }

        // Store D.
        for (int tm = 0; tm < wtiles_m; ++tm) {
            for (int tn = 0; tn < wtiles_n; ++tn) {
                bld.wmma_store(
                    t.mode, kShape16x16x16, t.cd_layout, acc_reg(tm, tn),
                    device_elem_addr(buf.d, t.cd_layout, cd_ld,
                                     bm * t.block_m + wm0 + 16 * tm,
                                     bn * t.block_n + wn0 + 16 * tn, cd_e),
                    cd_ld, false);
            }
        }
        return bld.take();
    };
    return kd;
}

std::vector<GemmTemplate>
default_sweep(TcMode mode)
{
    std::vector<GemmTemplate> out;
    struct Tiling
    {
        int bm, bn, bk, wm, wn;
    };
    const Tiling tilings[] = {
        {64, 64, 16, 32, 32},   {64, 64, 32, 32, 32},
        {128, 64, 32, 32, 32},  {64, 128, 32, 32, 64},
        {128, 128, 32, 32, 64}, {128, 128, 32, 64, 64},
    };
    for (const auto& tl : tilings) {
        for (Layout a : {Layout::kRowMajor, Layout::kColMajor}) {
            for (Layout b : {Layout::kRowMajor, Layout::kColMajor}) {
                for (bool pipe : {false, true}) {
                    GemmTemplate t;
                    t.mode = mode;
                    t.a_layout = a;
                    t.b_layout = b;
                    t.block_m = tl.bm;
                    t.block_n = tl.bn;
                    t.block_k = tl.bk;
                    t.warp_m = tl.wm;
                    t.warp_n = tl.wn;
                    t.double_buffer = pipe;
                    out.push_back(t);
                }
            }
        }
    }
    return out;
}

}  // namespace cutlass
}  // namespace tcsim
