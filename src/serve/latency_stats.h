/**
 * @file
 * Latency and queueing statistics for the serving simulator.
 *
 * All percentiles use the nearest-rank definition (the smallest value
 * with at least p% of the sample at or below it): integer-exact on
 * cycle counts, no interpolation, so committed assertion bands and
 * bench baselines gate exactly.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace tcsim::serve {

/** Lifecycle of one request through the serving loop. */
struct RequestRecord
{
    int id = 0;
    uint64_t arrival_cycle = 0;
    uint64_t admit_cycle = 0;   ///< Cycle its batch launched.
    uint64_t finish_cycle = 0;  ///< Cycle its batch's last kernel retired.
    int batch = -1;             ///< Batch (wavefront) id it rode in.
    // Resilience lifecycle (all zero/false on the happy path; only
    // emitted in reports when resilience features are enabled).
    int retries = 0;      ///< Times its batch was killed and it re-queued.
    bool shed = false;    ///< Rejected at the door by admission control.
    bool dropped = false; ///< Gave up: retry budget exhausted.
    bool deadline_missed = false;  ///< Finished (or died) past deadline.
};

/** One admitted batch. */
struct BatchRecord
{
    int id = 0;
    uint64_t admit_cycle = 0;
    uint64_t finish_cycle = 0;  ///< Kill cycle when `killed`.
    int size = 0;
    bool killed = false;  ///< Batch timeout expired; requests re-queued.
};

/** Queue depth after a change at `cycle` (arrival or admission). */
struct QueueSample
{
    uint64_t cycle = 0;
    int depth = 0;
};

/** Concurrently running kernels after a change at `cycle`. */
struct OccupancySample
{
    uint64_t cycle = 0;
    int running = 0;
};

/**
 * Nearest-rank percentile of @p values (any order); 0 when empty.
 * @p pct is in percent, e.g. 99.0.
 */
uint64_t percentile_nearest_rank(std::vector<uint64_t> values, double pct);

/** Aggregate latency/queueing metrics of one serving run. */
struct LatencySummary
{
    // End-to-end latency (finish - arrival) in cycles.
    uint64_t latency_p50 = 0;
    uint64_t latency_p95 = 0;
    uint64_t latency_p99 = 0;
    uint64_t latency_p999 = 0;
    uint64_t latency_max = 0;
    double latency_mean = 0;
    /** Caller-requested extra latency percentiles, as (pct, value)
     *  pairs in request order (e.g. {99.5, cycles}). */
    std::vector<std::pair<double, uint64_t>> latency_extra;
    // Time in queue (admit - arrival) in cycles.
    uint64_t queue_wait_p50 = 0;
    uint64_t queue_wait_p99 = 0;
    uint64_t queue_wait_max = 0;
    double queue_wait_mean = 0;
    // Queue-depth timeline aggregates.
    int queue_depth_peak = 0;
    /** Time-weighted mean depth over [0, makespan]. */
    double queue_depth_mean = 0;
};

/** Summarize completed requests + the queue-depth timeline.
 *  @p extra_percentiles requests additional end-to-end latency
 *  percentiles (in percent, e.g. 99.5) beyond the fixed p50/95/99/99.9
 *  set; they land in LatencySummary::latency_extra in given order. */
LatencySummary summarize_latency(
    const std::vector<RequestRecord>& requests,
    const std::vector<QueueSample>& queue, uint64_t makespan_cycles,
    const std::vector<double>& extra_percentiles = {});

}  // namespace tcsim::serve
