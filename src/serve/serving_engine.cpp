#include "serve/serving_engine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/logging.h"
#include "kernels/kernel_registry.h"
#include "sim/gpu.h"
#include "sim/graph/task_graph.h"

namespace tcsim::serve {

namespace {

class ServingLoop
{
  public:
    ServingLoop(const GpuConfig& cfg, const SimOptions& sim,
                const model::ModelGraph& graph,
                const std::vector<Request>& trace,
                const BatchingPolicy& policy,
                const std::vector<double>& extra_percentiles,
                const ServingResilience& res, const FaultSpec& faults)
        : cfg_(cfg), sim_(sim), graph_(graph), trace_(trace),
          extra_percentiles_(extra_percentiles), res_(res),
          gpu_(cfg, sim, faults)
    {
        // Load shedding is admission control, so it lives in the
        // policy: wrap the user's policy when a depth cap is set.
        if (res_.shed_queue_depth > 0) {
            shedder_ = std::make_unique<LoadSheddingPolicy>(
                policy, res_.shed_queue_depth);
            policy_ = shedder_.get();
        } else {
            policy_ = &policy;
        }
    }

    ServingResult run();

  private:
    BatchingState state() const;
    void ingest_due(uint64_t now);
    void try_admit(uint64_t now);
    void launch_wavefront(std::vector<int> reqs, uint64_t now);
    KernelDesc make_desc(const model::LoweredKernel& lk);
    void on_wavefront_done(int wid, uint64_t cycle);
    void kill_due_wavefronts(uint64_t now);
    int finished() const { return completed_ + shed_count_ + dropped_; }
    std::string loop_state_string(uint64_t now) const;
    void finalize(ServingResult* out);

    const GpuConfig& cfg_;
    const SimOptions& sim_;
    const model::ModelGraph& graph_;
    const std::vector<Request>& trace_;
    const std::vector<double>& extra_percentiles_;
    const ServingResilience res_;
    /** Set when shedding is on (policy_ then points at it). */
    std::unique_ptr<LoadSheddingPolicy> shedder_;
    const BatchingPolicy* policy_ = nullptr;
    Gpu gpu_;

    Event* shutdown_ = nullptr;
    size_t next_arrival_ = 0;
    std::deque<int> queue_;  ///< Request indices, FIFO.
    /** Killed-batch requests awaiting re-queue: ready cycle -> index
     *  (multimap: equal ready cycles keep insertion order). */
    std::multimap<uint64_t, int> retry_ready_;
    int in_flight_ = 0;
    int completed_ = 0;
    int shed_count_ = 0;
    int dropped_ = 0;
    int total_retries_ = 0;
    int killed_batches_ = 0;
    int next_wavefront_ = 0;
    std::vector<RequestRecord> records_;
    std::vector<BatchRecord> batches_;
    std::vector<QueueSample> queue_timeline_;
    /** Request indices of each in-flight wavefront. */
    std::map<int, std::vector<int>> wavefront_reqs_;
    /** Streams of each in-flight wavefront (for batch kills). */
    std::map<int, std::vector<Stream*>> wavefront_streams_;
    double total_flops_ = 0;
};

BatchingState
ServingLoop::state() const
{
    BatchingState s;
    s.queued = static_cast<int>(queue_.size());
    s.oldest_arrival =
        queue_.empty()
            ? 0
            : records_[static_cast<size_t>(queue_.front())].arrival_cycle;
    s.in_flight = in_flight_;
    return s;
}

void
ServingLoop::ingest_due(uint64_t now)
{
    // Merge trace arrivals and due retries in cycle order (retry
    // first on ties: it is older work) so the queue timeline stays
    // non-decreasing.  A shed arrival never enters the queue — it is
    // finished on the spot, and retries bypass admission control
    // (they were accepted once already).
    for (;;) {
        const uint64_t a = next_arrival_ < trace_.size()
                               ? trace_[next_arrival_].arrival_cycle
                               : UINT64_MAX;
        const uint64_t r = retry_ready_.empty()
                               ? UINT64_MAX
                               : retry_ready_.begin()->first;
        if (a > now && r > now)
            break;
        if (r <= a) {
            queue_.push_back(retry_ready_.begin()->second);
            retry_ready_.erase(retry_ready_.begin());
            queue_timeline_.push_back({r, static_cast<int>(queue_.size())});
        } else {
            const int ridx = static_cast<int>(next_arrival_++);
            if (!policy_->accept_arrival(static_cast<int>(queue_.size()))) {
                RequestRecord& rec = records_[static_cast<size_t>(ridx)];
                rec.shed = true;
                rec.deadline_missed = true;
                ++shed_count_;
                continue;
            }
            queue_.push_back(ridx);
            queue_timeline_.push_back({a, static_cast<int>(queue_.size())});
        }
    }
}

KernelDesc
ServingLoop::make_desc(const model::LoweredKernel& lk)
{
    const KernelFamilyInfo* info = find_kernel_family(lk.family);
    TCSIM_CHECK(info != nullptr && info->is_gemm);
    // Timing-only launches: bare allocations give each kernel valid,
    // distinct address ranges (the driver's alloc_only pattern).
    const uint64_t ab = static_cast<uint64_t>(info->ab_elem_bytes);
    uint64_t cd = static_cast<uint64_t>(info->cd_elem_bytes);
    if (info->supports_functional && lk.mode == TcMode::kFp16)
        cd = 2;
    GlobalMemory& mem = gpu_.mem();
    GemmBuffers buf;
    buf.a = mem.alloc(static_cast<uint64_t>(lk.m) * lk.k * ab);
    buf.b = mem.alloc(static_cast<uint64_t>(lk.k) * lk.n * ab);
    buf.c = mem.alloc(static_cast<uint64_t>(lk.m) * lk.n * cd);
    buf.d = mem.alloc(static_cast<uint64_t>(lk.m) * lk.n * cd);
    GemmKernelConfig kc;
    kc.arch = cfg_.arch;
    kc.mode = lk.mode;
    kc.m = lk.m;
    kc.n = lk.n;
    kc.k = lk.k;
    kc.functional = false;
    KernelDesc desc = build_gemm_kernel(info->family, kc, buf,
                                        /*warps_per_cta=*/8);
    desc.name = lk.name;
    return desc;
}

void
ServingLoop::launch_wavefront(std::vector<int> reqs, uint64_t now)
{
    const int wid = next_wavefront_++;
    const std::string prefix = "b" + std::to_string(wid) + ".";
    model::LoweredModel lowered =
        model::lower_model(graph_, static_cast<int>(reqs.size()), prefix);
    total_flops_ += lowered.total_flops;

    TaskGraph g;
    std::map<std::string, int> tensor_ids;
    for (const model::LoweredTensor& t : lowered.tensors)
        tensor_ids[t.name] = g.declare_tensor(t.name, t.bytes);
    for (const model::LoweredKernel& lk : lowered.kernels) {
        const int t = g.add_task(lk.name);
        for (const std::string& r : lk.reads)
            g.task_reads(t, tensor_ids.at(r));
        for (const std::string& w : lk.writes)
            g.task_writes(t, tensor_ids.at(w));
    }
    TaskGraph::Compiled plan = g.compile();

    std::vector<Stream*> streams;
    streams.reserve(static_cast<size_t>(plan.num_streams));
    for (int s = 0; s < plan.num_streams; ++s)
        streams.push_back(&gpu_.create_stream());

    std::vector<bool> layer_last(lowered.kernels.size(), false);
    for (int idx : lowered.last_kernel_of_layer)
        layer_last[static_cast<size_t>(idx)] = true;
    const int final_idx = lowered.last_kernel_of_layer.back();

    // The launch_graph enqueue pattern, plus decision-point callbacks:
    // after each layer's last kernel the continuous batcher may join
    // new work, and after the final kernel the wavefront completes.
    std::map<std::string, Event*> events;
    for (size_t t = 0; t < lowered.kernels.size(); ++t) {
        Stream& s = *streams[static_cast<size_t>(plan.stream_of[t] - 1)];
        for (const std::string& w : plan.wait_events[t])
            s.wait(*events.at(w));
        s.enqueue(make_desc(lowered.kernels[t]));
        if (!plan.record_event[t].empty()) {
            Event& ev = gpu_.create_event(prefix + plan.record_event[t]);
            events[plan.record_event[t]] = &ev;
            s.record(ev);
        }
        if (static_cast<int>(t) == final_idx)
            s.add_callback([this, wid](uint64_t cycle) {
                on_wavefront_done(wid, cycle);
            });
        else if (layer_last[t])
            s.add_callback([this](uint64_t cycle) { try_admit(cycle); });
    }

    for (int ridx : reqs) {
        RequestRecord& r = records_[static_cast<size_t>(ridx)];
        r.admit_cycle = now;
        r.batch = wid;
    }
    BatchRecord b;
    b.id = wid;
    b.admit_cycle = now;
    b.size = static_cast<int>(reqs.size());
    batches_.push_back(b);
    wavefront_reqs_[wid] = std::move(reqs);
    wavefront_streams_[wid] = std::move(streams);
    ++in_flight_;
}

void
ServingLoop::try_admit(uint64_t now)
{
    // A callback may fire past pending arrivals (the engine jumps the
    // clock event-to-event): fold everything due in before deciding,
    // so joins see the true queue and the timeline stays ordered.
    ingest_due(now);
    for (;;) {
        const int n = policy_->admit(now, state());
        if (n <= 0)
            break;
        TCSIM_CHECK(n <= static_cast<int>(queue_.size()));
        std::vector<int> reqs;
        reqs.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            reqs.push_back(queue_.front());
            queue_.pop_front();
        }
        queue_timeline_.push_back({now, static_cast<int>(queue_.size())});
        launch_wavefront(std::move(reqs), now);
    }
}

void
ServingLoop::on_wavefront_done(int wid, uint64_t cycle)
{
    auto it = wavefront_reqs_.find(wid);
    TCSIM_CHECK(it != wavefront_reqs_.end());
    for (int ridx : it->second) {
        records_[static_cast<size_t>(ridx)].finish_cycle = cycle;
        ++completed_;
    }
    for (BatchRecord& b : batches_)
        if (b.id == wid)
            b.finish_cycle = cycle;
    wavefront_reqs_.erase(it);
    wavefront_streams_.erase(wid);
    --in_flight_;
    // A completed batch frees capacity: the policy may admit again.
    try_admit(cycle);
}

void
ServingLoop::kill_due_wavefronts(uint64_t now)
{
    // Batch timeout: a wavefront admitted more than
    // batch_timeout_cycles ago is presumed hung.  Kill it only once
    // every one of its streams is quiescent (a fault-hung launch is
    // quiescent by construction; a stream still executing CTAs
    // postpones the kill to a later loop iteration — the engine
    // drains CTAs on its own, so the wait is bounded).
    std::vector<int> due;
    for (const auto& [wid, streams] : wavefront_streams_) {
        uint64_t admit = 0;
        for (const BatchRecord& b : batches_)
            if (b.id == wid)
                admit = b.admit_cycle;
        if (now < admit + res_.batch_timeout_cycles)
            continue;
        bool quiescent = true;
        for (Stream* s : streams)
            quiescent &= gpu_.stream_quiescent(*s);
        if (quiescent)
            due.push_back(wid);
    }
    for (int wid : due) {
        for (Stream* s : wavefront_streams_[wid])
            gpu_.kill_stream(*s);
        ++killed_batches_;
        for (BatchRecord& b : batches_)
            if (b.id == wid) {
                b.killed = true;
                b.finish_cycle = now;
            }
        for (int ridx : wavefront_reqs_[wid]) {
            RequestRecord& r = records_[static_cast<size_t>(ridx)];
            if (r.retries >= res_.max_retries) {
                // Budget exhausted: this kill is a drop, not another
                // re-queue (retries counts re-queues only).
                r.dropped = true;
                r.deadline_missed = true;
                ++dropped_;
            } else {
                ++r.retries;
                ++total_retries_;
                // Linear backoff per attempt; re-queued via
                // ingest_due when the ready cycle comes due.
                retry_ready_.emplace(
                    now + res_.retry_backoff_cycles *
                              static_cast<uint64_t>(r.retries),
                    ridx);
            }
        }
        wavefront_reqs_.erase(wid);
        wavefront_streams_.erase(wid);
        --in_flight_;
    }
    if (!due.empty())
        try_admit(now);
}

std::string
ServingLoop::loop_state_string(uint64_t now) const
{
    const BatchingState s = state();
    std::string msg = detail::format(
        "[serving state: cycle=%llu queued=%d oldest_arrival=%llu "
        "in_flight=%d pending_retries=%zu completed=%d shed=%d "
        "dropped=%d of %zu; policy \"%s\" next_deadline=",
        static_cast<unsigned long long>(now), s.queued,
        static_cast<unsigned long long>(s.oldest_arrival), s.in_flight,
        retry_ready_.size(), completed_, shed_count_, dropped_,
        trace_.size(), policy_->name());
    const uint64_t dl = policy_->next_deadline(s);
    msg += dl == UINT64_MAX ? "none" : std::to_string(dl);
    msg += "]";
    return msg;
}

void
ServingLoop::finalize(ServingResult* out)
{
    ServingReport& rep = out->report;
    rep.policy = policy_->name();
    rep.requests = static_cast<int>(trace_.size());
    rep.completed = completed_;
    rep.batches = static_cast<int>(batches_.size());
    if (!batches_.empty())
        rep.mean_batch_size = static_cast<double>(completed_) /
                              static_cast<double>(batches_.size());
    rep.makespan_cycles = out->totals.cycles;
    rep.total_flops = total_flops_;

    // Resilience accounting.  Deadline misses are judged here, when
    // every finish cycle is known: a completed request misses if its
    // end-to-end latency exceeds the deadline; shed and dropped
    // requests missed by definition (flagged where they died).
    // Goodput is the in-deadline completion fraction.
    rep.resilience = res_.enabled();
    if (res_.deadline_cycles > 0)
        for (RequestRecord& r : records_)
            if (!r.shed && !r.dropped &&
                r.finish_cycle - r.arrival_cycle > res_.deadline_cycles)
                r.deadline_missed = true;
    int good = 0;
    for (const RequestRecord& r : records_)
        good += !r.deadline_missed;
    rep.deadline_miss = static_cast<int>(records_.size()) - good;
    if (!records_.empty())
        rep.goodput = static_cast<double>(good) /
                      static_cast<double>(records_.size());
    rep.retries = total_retries_;
    rep.shed = shed_count_;
    rep.dropped = dropped_;
    rep.killed_batches = killed_batches_;

    rep.request_records = std::move(records_);
    rep.batch_records = std::move(batches_);
    rep.queue_timeline = std::move(queue_timeline_);
    rep.latency = summarize_latency(rep.request_records, rep.queue_timeline,
                                    rep.makespan_cycles, extra_percentiles_);

    // SM-occupancy over time: concurrently resident launches, rebuilt
    // from the per-kernel cycle windows (+1 at start, -1 past finish).
    std::vector<std::pair<uint64_t, int>> deltas;
    deltas.reserve(out->totals.kernels.size() * 2);
    for (const LaunchStats& k : out->totals.kernels) {
        deltas.emplace_back(k.start_cycle, 1);
        deltas.emplace_back(k.finish_cycle + 1, -1);
    }
    std::sort(deltas.begin(), deltas.end());
    int running = 0;
    uint64_t busy_from = 0;
    for (size_t i = 0; i < deltas.size();) {
        const uint64_t cycle = deltas[i].first;
        const int before = running;
        while (i < deltas.size() && deltas[i].first == cycle)
            running += deltas[i++].second;
        if (before == 0 && running > 0)
            busy_from = cycle;
        else if (before > 0 && running == 0)
            rep.busy_cycles += cycle - busy_from;
        rep.occupancy.push_back({cycle, running});
    }
    if (rep.makespan_cycles > 0)
        rep.busy_frac = static_cast<double>(rep.busy_cycles) /
                        static_cast<double>(rep.makespan_cycles);
}

ServingResult
ServingLoop::run()
{
    const size_t total = trace_.size();
    records_.resize(total);
    for (size_t i = 0; i < total; ++i) {
        TCSIM_CHECK(i == 0 || trace_[i].arrival_cycle >=
                                  trace_[i - 1].arrival_cycle);
        records_[i].id = trace_[i].id;
        records_[i].arrival_cycle = trace_[i].arrival_cycle;
    }

    // Keepalive: a stream blocked on a never-recorded event keeps the
    // resumable run open (monotonic clock, persistent memory timing)
    // across idle gaps between batches.
    shutdown_ = &gpu_.create_event("serve.shutdown");
    gpu_.create_stream().wait(*shutdown_);
    gpu_.run_until(0);

    while (finished() < static_cast<int>(total)) {
        const uint64_t now = gpu_.current_cycle();
        if (res_.batch_timeout_cycles > 0)
            kill_due_wavefronts(now);
        ingest_due(now);
        try_admit(now);
        if (finished() == static_cast<int>(total))
            break;

        uint64_t next = next_arrival_ < trace_.size()
                            ? trace_[next_arrival_].arrival_cycle
                            : UINT64_MAX;
        if (!queue_.empty())
            next = std::min(next, policy_->next_deadline(state()));
        if (!retry_ready_.empty())
            next = std::min(next, retry_ready_.begin()->first);
        if (res_.batch_timeout_cycles > 0)
            for (const BatchRecord& b : batches_)
                if (wavefront_streams_.count(b.id))
                    next = std::min(
                        next, b.admit_cycle + res_.batch_timeout_cycles);
        // A stimulus past the simulation horizon is no stimulus.
        if (next == UINT64_MAX || next > sim_.max_cycles) {
            if (in_flight_ == 0) {
                if (finished() == static_cast<int>(total))
                    break;
                // No reachable arrival or deadline, nothing running,
                // yet requests remain: they will never be admitted.
                throw ServingError(detail::format(
                    "serving loop wedged at cycle %llu: %zu request(s) "
                    "queued, policy \"%s\" admits nothing and its next "
                    "deadline is unreachable %s",
                    static_cast<unsigned long long>(now), queue_.size(),
                    policy_->name(), loop_state_string(now).c_str()));
            }
            // All remaining progress is on-chip; completion callbacks
            // will fire (and may admit) inside this advance.
            const uint64_t before_cycle = gpu_.current_cycle();
            const int before_finished = finished();
            gpu_.run_until(sim_.max_cycles);
            if (gpu_.current_cycle() == before_cycle &&
                finished() == before_finished) {
                // The chip is blocked (every resident kernel is an
                // injected hang) and no batch timeout is armed to
                // recover it: the in-flight requests can never
                // finish.
                throw ServingError(detail::format(
                    "serving loop wedged at cycle %llu: %d batch(es) "
                    "in flight but the GPU is blocked and no batch "
                    "timeout is configured to kill them %s",
                    static_cast<unsigned long long>(before_cycle),
                    in_flight_, loop_state_string(before_cycle).c_str()));
            }
            continue;
        }
        if (next <= now) {
            // The policy reported a due deadline but admitted nothing
            // this round; re-decide strictly later to guarantee
            // progress.
            next = now + 1;
        }
        gpu_.run_until(next - 1);
        if (gpu_.current_cycle() < next)
            gpu_.advance_idle_to(next);
    }

    // Shutdown: release the keepalive and drain the run to get the
    // complete statistics (makespan, per-kernel windows).
    gpu_.default_stream().record(*shutdown_);
    ServingResult out;
    out.totals = gpu_.run();
    out.faults_enabled = gpu_.faults_enabled();
    if (out.faults_enabled)
        out.faults = gpu_.fault_counters();
    finalize(&out);
    return out;
}

}  // namespace

ServingResult
run_serving(const GpuConfig& cfg, const SimOptions& sim,
            const model::ModelGraph& graph,
            const std::vector<Request>& trace,
            const BatchingPolicy& policy,
            const std::vector<double>& extra_percentiles,
            const ServingResilience& resilience, const FaultSpec& faults)
{
    return ServingLoop(cfg, sim, graph, trace, policy, extra_percentiles,
                       resilience, faults)
        .run();
}

}  // namespace tcsim::serve
