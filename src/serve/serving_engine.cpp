#include "serve/serving_engine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/logging.h"
#include "kernels/kernel_registry.h"
#include "sim/gpu.h"
#include "sim/graph/task_graph.h"

namespace tcsim::serve {

namespace {

class ServingLoop
{
  public:
    ServingLoop(const GpuConfig& cfg, const SimOptions& sim,
                const model::ModelGraph& graph,
                const std::vector<Request>& trace,
                const BatchingPolicy& policy,
                const std::vector<double>& extra_percentiles)
        : cfg_(cfg), sim_(sim), graph_(graph), trace_(trace),
          policy_(policy), extra_percentiles_(extra_percentiles),
          gpu_(cfg, sim)
    {
    }

    ServingResult run();

  private:
    BatchingState state() const;
    void ingest_arrivals(uint64_t now);
    void try_admit(uint64_t now);
    void launch_wavefront(std::vector<int> reqs, uint64_t now);
    KernelDesc make_desc(const model::LoweredKernel& lk);
    void on_wavefront_done(int wid, uint64_t cycle);
    void finalize(ServingResult* out);

    const GpuConfig& cfg_;
    const SimOptions& sim_;
    const model::ModelGraph& graph_;
    const std::vector<Request>& trace_;
    const BatchingPolicy& policy_;
    const std::vector<double>& extra_percentiles_;
    Gpu gpu_;

    Event* shutdown_ = nullptr;
    size_t next_arrival_ = 0;
    std::deque<int> queue_;  ///< Request indices, FIFO.
    int in_flight_ = 0;
    int completed_ = 0;
    int next_wavefront_ = 0;
    std::vector<RequestRecord> records_;
    std::vector<BatchRecord> batches_;
    std::vector<QueueSample> queue_timeline_;
    /** Request indices of each in-flight wavefront. */
    std::map<int, std::vector<int>> wavefront_reqs_;
    double total_flops_ = 0;
};

BatchingState
ServingLoop::state() const
{
    BatchingState s;
    s.queued = static_cast<int>(queue_.size());
    s.oldest_arrival =
        queue_.empty()
            ? 0
            : records_[static_cast<size_t>(queue_.front())].arrival_cycle;
    s.in_flight = in_flight_;
    return s;
}

void
ServingLoop::ingest_arrivals(uint64_t now)
{
    while (next_arrival_ < trace_.size() &&
           trace_[next_arrival_].arrival_cycle <= now) {
        queue_.push_back(static_cast<int>(next_arrival_));
        queue_timeline_.push_back({trace_[next_arrival_].arrival_cycle,
                                   static_cast<int>(queue_.size())});
        ++next_arrival_;
    }
}

KernelDesc
ServingLoop::make_desc(const model::LoweredKernel& lk)
{
    const KernelFamilyInfo* info = find_kernel_family(lk.family);
    TCSIM_CHECK(info != nullptr && info->is_gemm);
    // Timing-only launches: bare allocations give each kernel valid,
    // distinct address ranges (the driver's alloc_only pattern).
    const uint64_t ab = static_cast<uint64_t>(info->ab_elem_bytes);
    uint64_t cd = static_cast<uint64_t>(info->cd_elem_bytes);
    if (info->supports_functional && lk.mode == TcMode::kFp16)
        cd = 2;
    GlobalMemory& mem = gpu_.mem();
    GemmBuffers buf;
    buf.a = mem.alloc(static_cast<uint64_t>(lk.m) * lk.k * ab);
    buf.b = mem.alloc(static_cast<uint64_t>(lk.k) * lk.n * ab);
    buf.c = mem.alloc(static_cast<uint64_t>(lk.m) * lk.n * cd);
    buf.d = mem.alloc(static_cast<uint64_t>(lk.m) * lk.n * cd);
    GemmKernelConfig kc;
    kc.arch = cfg_.arch;
    kc.mode = lk.mode;
    kc.m = lk.m;
    kc.n = lk.n;
    kc.k = lk.k;
    kc.functional = false;
    KernelDesc desc = build_gemm_kernel(info->family, kc, buf,
                                        /*warps_per_cta=*/8);
    desc.name = lk.name;
    return desc;
}

void
ServingLoop::launch_wavefront(std::vector<int> reqs, uint64_t now)
{
    const int wid = next_wavefront_++;
    const std::string prefix = "b" + std::to_string(wid) + ".";
    model::LoweredModel lowered =
        model::lower_model(graph_, static_cast<int>(reqs.size()), prefix);
    total_flops_ += lowered.total_flops;

    TaskGraph g;
    std::map<std::string, int> tensor_ids;
    for (const model::LoweredTensor& t : lowered.tensors)
        tensor_ids[t.name] = g.declare_tensor(t.name, t.bytes);
    for (const model::LoweredKernel& lk : lowered.kernels) {
        const int t = g.add_task(lk.name);
        for (const std::string& r : lk.reads)
            g.task_reads(t, tensor_ids.at(r));
        for (const std::string& w : lk.writes)
            g.task_writes(t, tensor_ids.at(w));
    }
    TaskGraph::Compiled plan = g.compile();

    std::vector<Stream*> streams;
    streams.reserve(static_cast<size_t>(plan.num_streams));
    for (int s = 0; s < plan.num_streams; ++s)
        streams.push_back(&gpu_.create_stream());

    std::vector<bool> layer_last(lowered.kernels.size(), false);
    for (int idx : lowered.last_kernel_of_layer)
        layer_last[static_cast<size_t>(idx)] = true;
    const int final_idx = lowered.last_kernel_of_layer.back();

    // The launch_graph enqueue pattern, plus decision-point callbacks:
    // after each layer's last kernel the continuous batcher may join
    // new work, and after the final kernel the wavefront completes.
    std::map<std::string, Event*> events;
    for (size_t t = 0; t < lowered.kernels.size(); ++t) {
        Stream& s = *streams[static_cast<size_t>(plan.stream_of[t] - 1)];
        for (const std::string& w : plan.wait_events[t])
            s.wait(*events.at(w));
        s.enqueue(make_desc(lowered.kernels[t]));
        if (!plan.record_event[t].empty()) {
            Event& ev = gpu_.create_event(prefix + plan.record_event[t]);
            events[plan.record_event[t]] = &ev;
            s.record(ev);
        }
        if (static_cast<int>(t) == final_idx)
            s.add_callback([this, wid](uint64_t cycle) {
                on_wavefront_done(wid, cycle);
            });
        else if (layer_last[t])
            s.add_callback([this](uint64_t cycle) { try_admit(cycle); });
    }

    for (int ridx : reqs) {
        RequestRecord& r = records_[static_cast<size_t>(ridx)];
        r.admit_cycle = now;
        r.batch = wid;
    }
    BatchRecord b;
    b.id = wid;
    b.admit_cycle = now;
    b.size = static_cast<int>(reqs.size());
    batches_.push_back(b);
    wavefront_reqs_[wid] = std::move(reqs);
    ++in_flight_;
}

void
ServingLoop::try_admit(uint64_t now)
{
    // A callback may fire past pending arrivals (the engine jumps the
    // clock event-to-event): fold everything due in before deciding,
    // so joins see the true queue and the timeline stays ordered.
    ingest_arrivals(now);
    for (;;) {
        const int n = policy_.admit(now, state());
        if (n <= 0)
            break;
        TCSIM_CHECK(n <= static_cast<int>(queue_.size()));
        std::vector<int> reqs;
        reqs.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            reqs.push_back(queue_.front());
            queue_.pop_front();
        }
        queue_timeline_.push_back({now, static_cast<int>(queue_.size())});
        launch_wavefront(std::move(reqs), now);
    }
}

void
ServingLoop::on_wavefront_done(int wid, uint64_t cycle)
{
    auto it = wavefront_reqs_.find(wid);
    TCSIM_CHECK(it != wavefront_reqs_.end());
    for (int ridx : it->second) {
        records_[static_cast<size_t>(ridx)].finish_cycle = cycle;
        ++completed_;
    }
    for (BatchRecord& b : batches_)
        if (b.id == wid)
            b.finish_cycle = cycle;
    wavefront_reqs_.erase(it);
    --in_flight_;
    // A completed batch frees capacity: the policy may admit again.
    try_admit(cycle);
}

void
ServingLoop::finalize(ServingResult* out)
{
    ServingReport& rep = out->report;
    rep.policy = policy_.name();
    rep.requests = static_cast<int>(trace_.size());
    rep.completed = completed_;
    rep.batches = static_cast<int>(batches_.size());
    if (!batches_.empty())
        rep.mean_batch_size = static_cast<double>(completed_) /
                              static_cast<double>(batches_.size());
    rep.makespan_cycles = out->totals.cycles;
    rep.total_flops = total_flops_;
    rep.request_records = std::move(records_);
    rep.batch_records = std::move(batches_);
    rep.queue_timeline = std::move(queue_timeline_);
    rep.latency = summarize_latency(rep.request_records, rep.queue_timeline,
                                    rep.makespan_cycles, extra_percentiles_);

    // SM-occupancy over time: concurrently resident launches, rebuilt
    // from the per-kernel cycle windows (+1 at start, -1 past finish).
    std::vector<std::pair<uint64_t, int>> deltas;
    deltas.reserve(out->totals.kernels.size() * 2);
    for (const LaunchStats& k : out->totals.kernels) {
        deltas.emplace_back(k.start_cycle, 1);
        deltas.emplace_back(k.finish_cycle + 1, -1);
    }
    std::sort(deltas.begin(), deltas.end());
    int running = 0;
    uint64_t busy_from = 0;
    for (size_t i = 0; i < deltas.size();) {
        const uint64_t cycle = deltas[i].first;
        const int before = running;
        while (i < deltas.size() && deltas[i].first == cycle)
            running += deltas[i++].second;
        if (before == 0 && running > 0)
            busy_from = cycle;
        else if (before > 0 && running == 0)
            rep.busy_cycles += cycle - busy_from;
        rep.occupancy.push_back({cycle, running});
    }
    if (rep.makespan_cycles > 0)
        rep.busy_frac = static_cast<double>(rep.busy_cycles) /
                        static_cast<double>(rep.makespan_cycles);
}

ServingResult
ServingLoop::run()
{
    const size_t total = trace_.size();
    records_.resize(total);
    for (size_t i = 0; i < total; ++i) {
        TCSIM_CHECK(i == 0 || trace_[i].arrival_cycle >=
                                  trace_[i - 1].arrival_cycle);
        records_[i].id = trace_[i].id;
        records_[i].arrival_cycle = trace_[i].arrival_cycle;
    }

    // Keepalive: a stream blocked on a never-recorded event keeps the
    // resumable run open (monotonic clock, persistent memory timing)
    // across idle gaps between batches.
    shutdown_ = &gpu_.create_event("serve.shutdown");
    gpu_.create_stream().wait(*shutdown_);
    gpu_.run_until(0);

    while (completed_ < static_cast<int>(total)) {
        const uint64_t now = gpu_.current_cycle();
        ingest_arrivals(now);
        try_admit(now);

        uint64_t next = next_arrival_ < trace_.size()
                            ? trace_[next_arrival_].arrival_cycle
                            : UINT64_MAX;
        if (!queue_.empty())
            next = std::min(next, policy_.next_deadline(state()));
        // A stimulus past the simulation horizon is no stimulus.
        if (next == UINT64_MAX || next > sim_.max_cycles) {
            if (in_flight_ == 0) {
                if (completed_ == static_cast<int>(total))
                    break;
                // No reachable arrival or deadline, nothing running,
                // yet requests remain: they will never be admitted.
                throw ServingError(detail::format(
                    "serving loop wedged at cycle %llu: %zu request(s) "
                    "queued, policy \"%s\" admits nothing and its next "
                    "deadline is unreachable",
                    static_cast<unsigned long long>(now), queue_.size(),
                    policy_.name()));
            }
            // All remaining progress is on-chip; completion callbacks
            // will fire (and may admit) inside this advance.
            gpu_.run_until(sim_.max_cycles);
            continue;
        }
        if (next <= now) {
            // The policy reported a due deadline but admitted nothing
            // this round; re-decide strictly later to guarantee
            // progress.
            next = now + 1;
        }
        gpu_.run_until(next - 1);
        if (gpu_.current_cycle() < next)
            gpu_.advance_idle_to(next);
    }

    // Shutdown: release the keepalive and drain the run to get the
    // complete statistics (makespan, per-kernel windows).
    gpu_.default_stream().record(*shutdown_);
    ServingResult out;
    out.totals = gpu_.run();
    finalize(&out);
    return out;
}

}  // namespace

ServingResult
run_serving(const GpuConfig& cfg, const SimOptions& sim,
            const model::ModelGraph& graph,
            const std::vector<Request>& trace,
            const BatchingPolicy& policy,
            const std::vector<double>& extra_percentiles)
{
    return ServingLoop(cfg, sim, graph, trace, policy, extra_percentiles)
        .run();
}

}  // namespace tcsim::serve
