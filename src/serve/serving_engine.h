/**
 * @file
 * The inference-serving simulator: maps a request arrival trace onto
 * the resumable execution engine and measures request latency under a
 * batching policy.
 *
 * Mechanism.  One Gpu hosts the whole serving run.  A keepalive
 * stream waits on a never-recorded "shutdown" event, which keeps the
 * resumable run open (and the clock monotonic) across idle gaps
 * between batches.  The loop interleaves three stimuli, all expressed
 * in simulated cycles:
 *
 *  - request arrivals (from the trace);
 *  - batching-policy deadlines (timeout flushes);
 *  - in-flight batch progress: stream callbacks planted after each
 *    layer's last kernel (the continuous batcher's join points) and
 *    after the final kernel (request completion).
 *
 * Between stimuli the engine either simulates forward (run_until) or,
 * when the chip is fully idle, fast-forwards with
 * Gpu::advance_idle_to — so a sparse trace costs simulation time
 * proportional to work, not to wall-clock span.
 *
 * Each admitted batch ("wavefront") is lowered from the declarative
 * ModelGraph with a per-wavefront name prefix, compiled through the
 * task-graph compiler, and enqueued on fresh streams — so intra-batch
 * dependencies are derived from tensor hazards and different
 * wavefronts are automatically independent, overlapping on the GPU
 * exactly as far as SM capacity allows.
 *
 * Every decision is a function of simulated cycles and queue state,
 * and callbacks fire on the engine thread in canonical order, so
 * serving results are bit-identical across `--jobs`/`--sim-threads`.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/gpu_config.h"
#include "model/model_graph.h"
#include "serve/batching.h"
#include "serve/latency_stats.h"
#include "serve/request_trace.h"
#include "sim/engine.h"

namespace tcsim::serve {

/** The serving loop wedged itself (requests that can never finish). */
class ServingError : public std::runtime_error
{
  public:
    explicit ServingError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Everything the driver reports about one serving run. */
struct ServingReport
{
    std::string policy;
    int requests = 0;
    int completed = 0;
    int batches = 0;
    double mean_batch_size = 0;
    LatencySummary latency;
    /** Cycle the last kernel retired, plus one (0 for empty traces). */
    uint64_t makespan_cycles = 0;
    /** Cycles with >= 1 kernel resident, and that as a fraction of
     *  the makespan (SM-occupancy over time is in `occupancy`). */
    uint64_t busy_cycles = 0;
    double busy_frac = 0;
    double total_flops = 0;
    // Timelines, all in canonical (deterministic) order.
    std::vector<RequestRecord> request_records;
    std::vector<BatchRecord> batch_records;
    std::vector<QueueSample> queue_timeline;
    std::vector<OccupancySample> occupancy;
};

/** Report plus the raw engine statistics of the underlying run. */
struct ServingResult
{
    ServingReport report;
    EngineStats totals;
};

/**
 * Simulate serving @p trace against @p graph under @p policy on a GPU
 * of @p cfg.  Throws ModelError/ServingError on invalid input or a
 * wedged loop, std::runtime_error when sim.max_cycles is exceeded.
 * @p extra_percentiles requests additional end-to-end latency
 * percentiles (see summarize_latency).
 */
ServingResult run_serving(const GpuConfig& cfg, const SimOptions& sim,
                          const model::ModelGraph& graph,
                          const std::vector<Request>& trace,
                          const BatchingPolicy& policy,
                          const std::vector<double>& extra_percentiles = {});

}  // namespace tcsim::serve
