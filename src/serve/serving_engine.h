/**
 * @file
 * The inference-serving simulator: maps a request arrival trace onto
 * the resumable execution engine and measures request latency under a
 * batching policy.
 *
 * Mechanism.  One Gpu hosts the whole serving run.  A keepalive
 * stream waits on a never-recorded "shutdown" event, which keeps the
 * resumable run open (and the clock monotonic) across idle gaps
 * between batches.  The loop interleaves three stimuli, all expressed
 * in simulated cycles:
 *
 *  - request arrivals (from the trace);
 *  - batching-policy deadlines (timeout flushes);
 *  - in-flight batch progress: stream callbacks planted after each
 *    layer's last kernel (the continuous batcher's join points) and
 *    after the final kernel (request completion).
 *
 * Between stimuli the engine either simulates forward (run_until) or,
 * when the chip is fully idle, fast-forwards with
 * Gpu::advance_idle_to — so a sparse trace costs simulation time
 * proportional to work, not to wall-clock span.
 *
 * Each admitted batch ("wavefront") is lowered from the declarative
 * ModelGraph with a per-wavefront name prefix, compiled through the
 * task-graph compiler, and enqueued on fresh streams — so intra-batch
 * dependencies are derived from tensor hazards and different
 * wavefronts are automatically independent, overlapping on the GPU
 * exactly as far as SM capacity allows.
 *
 * Every decision is a function of simulated cycles and queue state,
 * and callbacks fire on the engine thread in canonical order, so
 * serving results are bit-identical across `--jobs`/`--sim-threads`.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "arch/gpu_config.h"
#include "model/model_graph.h"
#include "serve/batching.h"
#include "serve/latency_stats.h"
#include "serve/request_trace.h"
#include "sim/engine.h"
#include "sim/fault/fault_plan.h"

namespace tcsim::serve {

/** The serving loop wedged itself (requests that can never finish). */
class ServingError : public std::runtime_error
{
  public:
    explicit ServingError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Resilience knobs for the serving loop, all in simulated cycles.
 * Every feature defaults to off, in which case the loop behaves (and
 * reports) exactly as it did without this struct — the happy path
 * stays byte-identical.
 */
struct ServingResilience
{
    /** Per-request end-to-end deadline; 0 = none.  A request whose
     *  finish - arrival exceeds this is counted as a deadline miss
     *  (shed and dropped requests always miss). */
    uint64_t deadline_cycles = 0;
    /** Kill an in-flight batch this many cycles after admission if it
     *  has not finished (the injected-kernel-hang escape hatch);
     *  0 = never kill. */
    uint64_t batch_timeout_cycles = 0;
    /** Times a request whose batch was killed may re-queue before it
     *  is dropped. */
    int max_retries = 0;
    /** Re-queue delay after a kill: backoff * (retry attempt). */
    uint64_t retry_backoff_cycles = 0;
    /** Shed arrivals once this many requests are queued; 0 = never
     *  (applied by wrapping the policy in LoadSheddingPolicy). */
    int shed_queue_depth = 0;

    bool enabled() const
    {
        return deadline_cycles != 0 || batch_timeout_cycles != 0 ||
               max_retries != 0 || retry_backoff_cycles != 0 ||
               shed_queue_depth != 0;
    }
};

/** Everything the driver reports about one serving run. */
struct ServingReport
{
    std::string policy;
    int requests = 0;
    int completed = 0;
    int batches = 0;
    double mean_batch_size = 0;
    LatencySummary latency;
    /** Cycle the last kernel retired, plus one (0 for empty traces). */
    uint64_t makespan_cycles = 0;
    /** Cycles with >= 1 kernel resident, and that as a fraction of
     *  the makespan (SM-occupancy over time is in `occupancy`). */
    uint64_t busy_cycles = 0;
    double busy_frac = 0;
    double total_flops = 0;
    // Resilience outcome (all zero when `resilience` is false; the
    // driver omits these fields from reports so happy-path output is
    // byte-identical to builds before fault injection existed).
    bool resilience = false;
    int deadline_miss = 0;   ///< Requests that finished late or never.
    double goodput = 0;      ///< In-deadline completions / requests.
    int retries = 0;         ///< Total request re-queues after kills.
    int shed = 0;            ///< Arrivals rejected by admission control.
    int dropped = 0;         ///< Requests whose retry budget ran out.
    int killed_batches = 0;  ///< Batches killed by the batch timeout.
    // Timelines, all in canonical (deterministic) order.
    std::vector<RequestRecord> request_records;
    std::vector<BatchRecord> batch_records;
    std::vector<QueueSample> queue_timeline;
    std::vector<OccupancySample> occupancy;
};

/** Report plus the raw engine statistics of the underlying run. */
struct ServingResult
{
    ServingReport report;
    EngineStats totals;
    /** Injected-fault telemetry of the underlying Gpu (meaningful
     *  only when `faults_enabled`). */
    bool faults_enabled = false;
    FaultCounters faults;
};

/**
 * Simulate serving @p trace against @p graph under @p policy on a GPU
 * of @p cfg.  Throws ModelError/ServingError on invalid input or a
 * wedged loop, SimHangError when a watchdog fires (unless the batch
 * timeout recovers the run first), std::runtime_error when
 * sim.max_cycles is exceeded.  @p extra_percentiles requests
 * additional end-to-end latency percentiles (see summarize_latency).
 * @p resilience enables deadlines/retries/shedding (defaults: all
 * off); @p faults injects deterministic hardware faults into the
 * underlying Gpu (default: none).
 */
ServingResult run_serving(const GpuConfig& cfg, const SimOptions& sim,
                          const model::ModelGraph& graph,
                          const std::vector<Request>& trace,
                          const BatchingPolicy& policy,
                          const std::vector<double>& extra_percentiles = {},
                          const ServingResilience& resilience = {},
                          const FaultSpec& faults = {});

}  // namespace tcsim::serve
