/**
 * @file
 * Batching policies for the serving simulator.
 *
 * A policy is consulted at every decision point — request arrival,
 * layer boundary of an in-flight batch, batch completion, and timeout
 * deadline — and answers one question: how many queued requests to
 * admit as the next batch *right now* (0 = keep waiting).  Policies
 * see only the queue state and the simulated clock, so their
 * decisions are bit-deterministic across `--jobs`/`--sim-threads`.
 *
 *  - StaticBatcher(batch, timeout): the classic server-side batcher.
 *    Waits until `batch` requests are queued, or until the oldest
 *    queued request has waited `timeout` cycles (flushing a partial
 *    batch).  One batch in flight at a time: batches serialize.
 *
 *  - ContinuousBatcher(max_batch, max_in_flight): vLLM-style
 *    continuous batching.  Admits whatever is queued (up to
 *    max_batch) at every decision point while fewer than
 *    max_in_flight batches are running — in particular at the *layer
 *    boundaries* of in-flight batches, so late arrivals join the GPU
 *    mid-model instead of waiting for the previous batch to drain.
 */
#pragma once

#include <cstdint>

namespace tcsim::serve {

/** Queue state a policy decides on. */
struct BatchingState
{
    int queued = 0;
    /** Arrival cycle of the oldest queued request (undefined when
     *  queued == 0). */
    uint64_t oldest_arrival = 0;
    /** Batches currently running on the GPU. */
    int in_flight = 0;
};

class BatchingPolicy
{
  public:
    virtual ~BatchingPolicy() = default;

    virtual const char* name() const = 0;

    /** Requests to admit as one batch at cycle @p now (0 = wait). */
    virtual int admit(uint64_t now, const BatchingState& s) const = 0;

    /**
     * The next cycle the policy wants to be woken at absent any other
     * stimulus (UINT64_MAX = none).  Used for timeout flushes: the
     * serving engine fast-forwards the clock here when the GPU is
     * idle and no arrival comes sooner.
     */
    virtual uint64_t next_deadline(const BatchingState& s) const = 0;

    /**
     * Admission control: may a newly arrived request join the queue
     * when @p queue_depth requests are already waiting?  The default
     * accepts everything; LoadSheddingPolicy rejects past a depth cap
     * (the request is counted as shed and never admitted).
     */
    virtual bool accept_arrival(int queue_depth) const
    {
        (void)queue_depth;
        return true;
    }
};

/**
 * Queue-depth load shedding as a policy wrapper: batching decisions
 * delegate to the inner policy untouched, but arrivals that would
 * push the queue past @p max_queue_depth are shed at the door.  Under
 * overload this trades completion rate for bounded queue wait — the
 * classic admission-control knee — and keeps the wedge detector
 * honest: a shed request is resolved, not forgotten.
 */
class LoadSheddingPolicy : public BatchingPolicy
{
  public:
    LoadSheddingPolicy(const BatchingPolicy& inner, int max_queue_depth)
        : inner_(inner), max_queue_depth_(max_queue_depth)
    {
    }

    const char* name() const override { return inner_.name(); }
    int admit(uint64_t now, const BatchingState& s) const override
    {
        return inner_.admit(now, s);
    }
    uint64_t next_deadline(const BatchingState& s) const override
    {
        return inner_.next_deadline(s);
    }
    bool accept_arrival(int queue_depth) const override
    {
        return queue_depth < max_queue_depth_;
    }

  private:
    const BatchingPolicy& inner_;
    int max_queue_depth_;
};

/** Fixed batch size with a timeout flush; one batch in flight. */
class StaticBatcher : public BatchingPolicy
{
  public:
    StaticBatcher(int batch, uint64_t timeout_cycles)
        : batch_(batch), timeout_(timeout_cycles)
    {
    }

    const char* name() const override { return "static"; }
    int admit(uint64_t now, const BatchingState& s) const override;
    uint64_t next_deadline(const BatchingState& s) const override;

  private:
    int batch_;
    uint64_t timeout_;
};

/** Continuous batching: admit at every decision point while capacity
 *  remains. */
class ContinuousBatcher : public BatchingPolicy
{
  public:
    ContinuousBatcher(int max_batch, int max_in_flight)
        : max_batch_(max_batch), max_in_flight_(max_in_flight)
    {
    }

    const char* name() const override { return "continuous"; }
    int admit(uint64_t now, const BatchingState& s) const override;
    uint64_t next_deadline(const BatchingState& s) const override;

  private:
    int max_batch_;
    int max_in_flight_;
};

}  // namespace tcsim::serve
