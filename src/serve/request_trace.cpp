#include "serve/request_trace.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace tcsim::serve {

std::vector<Request>
poisson_trace(uint64_t seed, int requests, double mean_interarrival_cycles)
{
    TCSIM_CHECK(requests >= 0);
    TCSIM_CHECK(mean_interarrival_cycles >= 0.0);
    std::vector<Request> trace;
    trace.reserve(static_cast<size_t>(requests));
    // Dedicated RNG stream 0 of the seed: more draws (or other
    // consumers on other streams) never perturb an existing trace.
    Pcg32 rng(seed, /*stream=*/0);
    double t = 0.0;
    for (int i = 0; i < requests; ++i) {
        t += rng.exponential(mean_interarrival_cycles);
        Request r;
        r.id = i;
        r.arrival_cycle = static_cast<uint64_t>(std::llround(t));
        trace.push_back(r);
    }
    return trace;
}

}  // namespace tcsim::serve
