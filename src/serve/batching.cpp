#include "serve/batching.h"

#include <algorithm>

namespace tcsim::serve {

int
StaticBatcher::admit(uint64_t now, const BatchingState& s) const
{
    if (s.in_flight > 0 || s.queued == 0)
        return 0;
    if (s.queued >= batch_)
        return batch_;
    // Timeout flush: the oldest request has waited long enough —
    // launch the partial batch rather than hold it hostage.
    if (now >= s.oldest_arrival + timeout_)
        return s.queued;
    return 0;
}

uint64_t
StaticBatcher::next_deadline(const BatchingState& s) const
{
    if (s.in_flight > 0 || s.queued == 0)
        return UINT64_MAX;
    return s.oldest_arrival + timeout_;
}

int
ContinuousBatcher::admit(uint64_t now, const BatchingState& s) const
{
    (void)now;
    if (s.in_flight >= max_in_flight_)
        return 0;
    return std::min(s.queued, max_batch_);
}

uint64_t
ContinuousBatcher::next_deadline(const BatchingState& s) const
{
    // Purely reactive: arrivals, layer boundaries and completions are
    // the only stimuli.
    (void)s;
    return UINT64_MAX;
}

}  // namespace tcsim::serve
