#include "serve/latency_stats.h"

#include <algorithm>
#include <cmath>

namespace tcsim::serve {

uint64_t
percentile_nearest_rank(std::vector<uint64_t> values, double pct)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const auto n = static_cast<double>(values.size());
    // ceil(pct/100 * n), robust against the product landing an ulp
    // above an exact integer rank (99.9% of 1000 samples is rank 999,
    // but 99.9 / 100.0 * 1000.0 evaluates to 999.0000000000001).
    const double exact = pct / 100.0 * n;
    auto rank = static_cast<size_t>(std::ceil(exact * (1.0 - 1e-12)));
    rank = std::min(std::max<size_t>(rank, 1), values.size());
    return values[rank - 1];
}

LatencySummary
summarize_latency(const std::vector<RequestRecord>& requests,
                  const std::vector<QueueSample>& queue,
                  uint64_t makespan_cycles,
                  const std::vector<double>& extra_percentiles)
{
    LatencySummary s;
    std::vector<uint64_t> latency, wait;
    latency.reserve(requests.size());
    wait.reserve(requests.size());
    double lat_sum = 0, wait_sum = 0;
    for (const RequestRecord& r : requests) {
        // Shed and dropped requests never finished: they have no
        // latency sample (goodput metrics count them separately).
        if (r.shed || r.dropped)
            continue;
        const uint64_t l = r.finish_cycle - r.arrival_cycle;
        const uint64_t w = r.admit_cycle - r.arrival_cycle;
        latency.push_back(l);
        wait.push_back(w);
        lat_sum += static_cast<double>(l);
        wait_sum += static_cast<double>(w);
        s.latency_max = std::max(s.latency_max, l);
        s.queue_wait_max = std::max(s.queue_wait_max, w);
    }
    if (!latency.empty()) {
        const auto n = static_cast<double>(latency.size());
        s.latency_mean = lat_sum / n;
        s.queue_wait_mean = wait_sum / n;
    }
    s.latency_p50 = percentile_nearest_rank(latency, 50.0);
    s.latency_p95 = percentile_nearest_rank(latency, 95.0);
    s.latency_p99 = percentile_nearest_rank(latency, 99.0);
    s.latency_p999 = percentile_nearest_rank(latency, 99.9);
    s.latency_extra.reserve(extra_percentiles.size());
    for (double pct : extra_percentiles)
        s.latency_extra.emplace_back(pct,
                                     percentile_nearest_rank(latency, pct));
    s.queue_wait_p50 = percentile_nearest_rank(wait, 50.0);
    s.queue_wait_p99 = percentile_nearest_rank(wait, 99.0);

    // Queue-depth timeline: samples are depth-after-change points in
    // non-decreasing cycle order; integrate depth over [0, makespan].
    double area = 0;
    int depth = 0;
    uint64_t prev = 0;
    for (const QueueSample& q : queue) {
        s.queue_depth_peak = std::max(s.queue_depth_peak, q.depth);
        const uint64_t at = std::min(q.cycle, makespan_cycles);
        area += static_cast<double>(depth) *
                static_cast<double>(at - std::min(prev, at));
        prev = at;
        depth = q.depth;
    }
    if (makespan_cycles > prev)
        area += static_cast<double>(depth) *
                static_cast<double>(makespan_cycles - prev);
    if (makespan_cycles > 0)
        s.queue_depth_mean = area / static_cast<double>(makespan_cycles);
    return s;
}

}  // namespace tcsim::serve
