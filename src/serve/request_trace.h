/**
 * @file
 * Request arrival traces for the serving simulator.
 *
 * A trace is just a sorted list of (id, arrival_cycle) pairs in the
 * simulated-cycle timebase.  Two sources exist:
 *
 *  - poisson_trace(): seeded Poisson process (exponential
 *    inter-arrival times via src/common/rng.h's Pcg32), bit-identical
 *    for a given (seed, requests, mean) triple on every platform and
 *    thread count;
 *  - file-driven JSONL arrivals, parsed by the scenario driver (one
 *    object per line with "arrival_cycle" or "arrival_us") — the
 *    format `simrunner --trace-out` emits, so a recorded trace can be
 *    replayed.
 *
 * Wall-clock arrival timestamps are mapped onto cycles by the caller
 * (cycles = microseconds * clock_ghz * 1000), which makes the trace
 * independent of the simulated GPU's clock once materialized.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace tcsim::serve {

/** One inference request. */
struct Request
{
    int id = 0;
    uint64_t arrival_cycle = 0;
};

/**
 * Generate @p requests Poisson arrivals with the given mean
 * inter-arrival gap in cycles.  Deterministic in @p seed; arrivals
 * are non-decreasing and ids are 0..requests-1 in arrival order.
 */
std::vector<Request> poisson_trace(uint64_t seed, int requests,
                                   double mean_interarrival_cycles);

}  // namespace tcsim::serve
