#pragma once
/**
 * @file
 * GPU architecture configuration presets.
 *
 * Models the resources the paper's experiments exercise: the Titan V
 * (Volta, CUDA capability 7.0) used for all validation runs and the
 * RTX 2080 (Turing) used for the instruction-level analysis.
 */

#include <cstdint>
#include <string>

namespace tcsim {

/** GPU architecture generation. */
enum class Arch { kVolta, kTuring };

/** Tensor core numeric operating mode. */
enum class TcMode {
    kFp16,    ///< A,B,C,D all FP16 ("HMMA.884.F16.F16").
    kMixed,   ///< A,B FP16; C,D FP32 ("HMMA.884.F32.F32").
    kInt8,    ///< Turing: A,B INT8; C,D INT32.
    kInt4,    ///< Turing: A,B INT4; C,D INT32.
};

/** Returns a short human-readable mode name. */
const char* tc_mode_name(TcMode mode);

/**
 * Architecture + resource description of one GPU.
 *
 * Field values for the presets follow NVIDIA's published numbers for
 * the Titan V / RTX 2080 plus the latencies measured by the paper and
 * by Jia et al. (arXiv:1804.06826).
 */
struct GpuConfig
{
    std::string name;
    Arch arch = Arch::kVolta;

    // --- Chip-level resources ---
    int num_sms = 80;
    int subcores_per_sm = 4;
    int tensor_cores_per_subcore = 2;
    int max_warps_per_sm = 64;
    int max_ctas_per_sm = 32;
    uint32_t registers_per_sm = 65536;      ///< 32-bit registers.
    uint32_t shared_mem_per_sm = 96 * 1024; ///< Bytes.
    double clock_ghz = 1.530;

    // --- Sub-core execution resources (Fig 1 of the paper) ---
    int fp32_lanes = 16;  ///< FFMA/clk per sub-core.
    int int_lanes = 16;
    int fp64_lanes = 8;
    int mufu_lanes = 4;

    // --- Pipeline latencies (cycles) ---
    int fp32_latency = 4;
    int int_latency = 4;
    int fp64_latency = 8;
    int mufu_latency = 21;

    // --- Tensor core (Section IV of the paper) ---
    int fedp_units_per_tc = 16;   ///< Four-element dot product units.
    int fedp_pipeline_stages = 4; ///< 1 multiply + 3 accumulate stages.
    int hmma_issue_interval = 2;  ///< Min cycles between HMMA issues.
    /** Max warps concurrently executing HMMA per SM (Fig 12c). */
    int max_tc_warps_per_sm = 4;

    // --- Memory system ---
    int ldst_queue_depth = 32;
    int shared_mem_banks = 32;
    int shared_mem_latency = 25;
    uint32_t l1_size = 128 * 1024;
    int l1_line_bytes = 128;
    int l1_sector_bytes = 32;
    int l1_assoc = 4;
    int l1_hit_latency = 28;
    uint32_t l2_size = 4608 * 1024;
    int l2_assoc = 16;
    int l2_hit_latency = 193;
    int dram_latency = 220;       ///< Added on L2 miss.
    int num_mem_partitions = 24;
    double dram_bytes_per_cycle_per_partition = 16.0;
    int mio_bytes_per_cycle = 64; ///< MIO datapath width (Fig 1).

    // --- Transaction-queued memory path (MSHRs, NoC, banked L2,
    //     DRAM queueing).  Misses travel coalescer -> L1/MSHR -> NoC
    //     -> L2 bank -> DRAM partition as queued transactions; when a
    //     stage's slots are exhausted the refusal propagates back to
    //     the issuing warp as back-pressure. ---
    int l1_mshr_entries = 256;      ///< Outstanding line fills per SM.
    int l2_banks = 48;              ///< L2 service banks (2 per partition).
    double l2_bank_bytes_per_cycle = 32.0;  ///< Per-bank service rate.
    int l2_bank_queue_depth = 64;   ///< Requests queued per bank.
    double noc_bytes_per_cycle = 2048.0;    ///< SM<->L2 crossbar bisection.
    int noc_queue_depth = 1024;     ///< In-flight NoC transfers.
    int dram_queue_depth = 64;      ///< Requests queued per partition.
    int dram_rw_turnaround = 8;     ///< Bus-direction switch penalty.

    /** Peak tensor-core TFLOPS implied by the configuration. */
    double peak_tensor_tflops() const;
    /** Peak FP32 (non tensor core) TFLOPS. */
    double peak_fp32_tflops() const;
    /** Total tensor cores on the chip. */
    int total_tensor_cores() const
    {
        return num_sms * subcores_per_sm * tensor_cores_per_subcore;
    }
};

/** NVIDIA Titan V (Volta, 80 SMs, 640 tensor cores, 125 TFLOPS peak). */
GpuConfig titan_v_config();

/** NVIDIA RTX 2080 (Turing, 46 SMs, 368 tensor cores). */
GpuConfig rtx2080_config();

/**
 * FNV-1a digest of every timing-relevant GpuConfig field (the name is
 * cosmetic and excluded: renamed-but-identical configs may exchange
 * snapshots and replay profiles).  Snapshot restore and the kernel
 * replay-cache fingerprint both key on it.
 */
uint64_t hash_config(const GpuConfig& c);

}  // namespace tcsim
