#include "arch/gpu_config.h"

#include "common/logging.h"

namespace tcsim {

const char*
tc_mode_name(TcMode mode)
{
    switch (mode) {
      case TcMode::kFp16: return "fp16";
      case TcMode::kMixed: return "mixed";
      case TcMode::kInt8: return "int8";
      case TcMode::kInt4: return "int4";
    }
    panic("unknown TcMode");
}

double
GpuConfig::peak_tensor_tflops() const
{
    // Each tensor core completes one 4x4x4 MACC per cycle:
    // 64 multiplies + 64 adds = 128 FLOPs.
    double flops_per_cycle = static_cast<double>(total_tensor_cores()) * 128.0;
    return flops_per_cycle * clock_ghz / 1000.0;
}

double
GpuConfig::peak_fp32_tflops() const
{
    double ffma_per_cycle =
        static_cast<double>(num_sms * subcores_per_sm * fp32_lanes);
    return ffma_per_cycle * 2.0 * clock_ghz / 1000.0;
}

GpuConfig
titan_v_config()
{
    GpuConfig c;
    c.name = "Titan V";
    c.arch = Arch::kVolta;
    c.num_sms = 80;
    c.clock_ghz = 1.530;
    return c;
}

GpuConfig
rtx2080_config()
{
    GpuConfig c;
    c.name = "RTX 2080";
    c.arch = Arch::kTuring;
    c.num_sms = 46;
    c.clock_ghz = 1.710;
    c.l2_size = 4 * 1024 * 1024;
    c.num_mem_partitions = 16;
    c.l2_banks = 32;  // 2 per partition, as on the Titan V.
    c.noc_bytes_per_cycle = 1024.0;
    return c;
}

}  // namespace tcsim
