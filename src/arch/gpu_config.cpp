#include "arch/gpu_config.h"

#include <cstring>

#include "common/logging.h"

namespace tcsim {

const char*
tc_mode_name(TcMode mode)
{
    switch (mode) {
      case TcMode::kFp16: return "fp16";
      case TcMode::kMixed: return "mixed";
      case TcMode::kInt8: return "int8";
      case TcMode::kInt4: return "int4";
    }
    panic("unknown TcMode");
}

double
GpuConfig::peak_tensor_tflops() const
{
    // Each tensor core completes one 4x4x4 MACC per cycle:
    // 64 multiplies + 64 adds = 128 FLOPs.
    double flops_per_cycle = static_cast<double>(total_tensor_cores()) * 128.0;
    return flops_per_cycle * clock_ghz / 1000.0;
}

double
GpuConfig::peak_fp32_tflops() const
{
    double ffma_per_cycle =
        static_cast<double>(num_sms * subcores_per_sm * fp32_lanes);
    return ffma_per_cycle * 2.0 * clock_ghz / 1000.0;
}

GpuConfig
titan_v_config()
{
    GpuConfig c;
    c.name = "Titan V";
    c.arch = Arch::kVolta;
    c.num_sms = 80;
    c.clock_ghz = 1.530;
    return c;
}

namespace {

/** FNV-1a accumulator over GpuConfig fields. */
class ConfigHasher
{
  public:
    void bytes(const void* p, size_t n)
    {
        const uint8_t* b = static_cast<const uint8_t*>(p);
        for (size_t i = 0; i < n; ++i)
            h_ = (h_ ^ b[i]) * 0x100000001b3ull;
    }
    void u64(uint64_t v) { bytes(&v, sizeof v); }
    void i(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void d(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace

uint64_t
hash_config(const GpuConfig& c)
{
    ConfigHasher h;
    h.i(static_cast<int>(c.arch));
    h.i(c.num_sms);
    h.i(c.subcores_per_sm);
    h.i(c.tensor_cores_per_subcore);
    h.i(c.max_warps_per_sm);
    h.i(c.max_ctas_per_sm);
    h.i(c.registers_per_sm);
    h.i(c.shared_mem_per_sm);
    h.d(c.clock_ghz);
    h.i(c.fp32_lanes);
    h.i(c.int_lanes);
    h.i(c.fp64_lanes);
    h.i(c.mufu_lanes);
    h.i(c.fp32_latency);
    h.i(c.int_latency);
    h.i(c.fp64_latency);
    h.i(c.mufu_latency);
    h.i(c.fedp_units_per_tc);
    h.i(c.fedp_pipeline_stages);
    h.i(c.hmma_issue_interval);
    h.i(c.max_tc_warps_per_sm);
    h.i(c.ldst_queue_depth);
    h.i(c.shared_mem_banks);
    h.i(c.shared_mem_latency);
    h.i(c.l1_size);
    h.i(c.l1_line_bytes);
    h.i(c.l1_sector_bytes);
    h.i(c.l1_assoc);
    h.i(c.l1_hit_latency);
    h.i(c.l2_size);
    h.i(c.l2_assoc);
    h.i(c.l2_hit_latency);
    h.i(c.dram_latency);
    h.i(c.num_mem_partitions);
    h.d(c.dram_bytes_per_cycle_per_partition);
    h.i(c.mio_bytes_per_cycle);
    h.i(c.l1_mshr_entries);
    h.i(c.l2_banks);
    h.d(c.l2_bank_bytes_per_cycle);
    h.i(c.l2_bank_queue_depth);
    h.d(c.noc_bytes_per_cycle);
    h.i(c.noc_queue_depth);
    h.i(c.dram_queue_depth);
    h.i(c.dram_rw_turnaround);
    return h.value();
}

GpuConfig
rtx2080_config()
{
    GpuConfig c;
    c.name = "RTX 2080";
    c.arch = Arch::kTuring;
    c.num_sms = 46;
    c.clock_ghz = 1.710;
    c.l2_size = 4 * 1024 * 1024;
    c.num_mem_partitions = 16;
    c.l2_banks = 32;  // 2 per partition, as on the Titan V.
    c.noc_bytes_per_cycle = 1024.0;
    return c;
}

}  // namespace tcsim
